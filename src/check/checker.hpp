// The checker: wires a workload, the serialized executor, a policy, and the
// oracles into one deterministic run, and builds explore / replay / shrink
// on top of it.
//
// One run = one Runtime + one TxIntSet + `threads` virtual worker threads,
// each executing a pre-generated deterministic op sequence (derived from
// CheckConfig::seed). After the workers join, two oracles judge the run:
//
//  1. the linearizability oracle (history.hpp) over the recorded set
//     history, with the quiescent contents as the final-state constraint;
//  2. for window contention managers, trace::ScheduleChecker replays the
//     recorded trace and asserts the window invariants of paper Section II.
//
// Determinism contract: a RunResult's Schedule (config + decision log)
// replayed through replay() reproduces the identical run — same grants,
// same history, same verdict — because the executor serializes all workers,
// the virtual clock removes real time, and every RNG is seeded from config.
#pragma once

#include <cstdint>
#include <string>

#include "check/history.hpp"
#include "check/policy.hpp"
#include "check/schedule.hpp"
#include "stm/metrics.hpp"

namespace wstm::check {

struct RunResult {
  bool violation = false;
  /// The step budget ran out and the executor free-ran to termination; the
  /// decision log no longer captures the full interleaving.
  bool over_budget = false;
  std::uint64_t steps = 0;
  std::uint64_t divergences = 0;  // replay runs only
  std::string diagnosis;          // non-empty iff violation
  /// The run's config plus the decision log actually executed.
  Schedule schedule;
  stm::ThreadMetrics metrics;
  /// Serial-fallback token counters (meaningful iff config.liveness):
  /// how often the token was acquired, the maximum number of simultaneous
  /// holders ever observed (must be <= 1), and how often an acquire saw
  /// another holder already inside (must be 0).
  std::uint64_t token_acquisitions = 0;
  std::uint64_t max_token_holders = 0;
  std::uint64_t token_overlap_violations = 0;
};

struct ExploreResult {
  unsigned schedules_run = 0;
  unsigned violations = 0;
  RunResult first_violation;  // meaningful iff violations > 0
};

class Checker {
 public:
  explicit Checker(CheckConfig config) : config_(std::move(config)) {}

  /// One exploration run. `schedule_seed` seeds only the policy; the
  /// workload op streams stay fixed by config.seed, so two seeds explore
  /// two interleavings of the same program.
  RunResult run_once(std::uint64_t schedule_seed);

  /// Re-executes a recorded schedule bit-identically (same config, decision
  /// list replayed verbatim; divergences counted in the result).
  RunResult replay(const Schedule& schedule);

  /// Runs num_schedules policy seeds derived from config.seed.
  ExploreResult explore(unsigned num_schedules, bool stop_on_violation = true);

  struct ShrinkResult {
    Schedule schedule;
    unsigned replays = 0;
    /// False when the input schedule did not reproduce its violation.
    bool still_fails = false;
  };
  /// Greedy minimization of a failing schedule: drop injected faults, then
  /// binary-search the shortest failing prefix, then delete single
  /// decisions. Every kept candidate was re-verified to still fail.
  ShrinkResult shrink(const Schedule& failing, unsigned max_replays = 500);

  const CheckConfig& config() const noexcept { return config_; }

  /// The policy seed explore() uses for round `index`.
  static std::uint64_t derive_policy_seed(std::uint64_t base_seed, std::uint64_t index);

 private:
  RunResult run_with_policy(Policy& policy, const CheckConfig& cfg);

  CheckConfig config_;
};

}  // namespace wstm::check
