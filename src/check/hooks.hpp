// Schedule-point hook: the one interface the STM core knows about the
// deterministic concurrency checker.
//
// The Runtime holds a `SchedulerHook*` that is null in normal operation —
// the same presence-toggle idiom as trace::Recorder — so every
// instrumentation site costs one predictable null branch when no checker is
// installed. With a hook installed (src/check/executor.hpp), each call
// blocks the calling thread until the checker's strategy grants it the
// right to run, serializing all workers through these points; the returned
// Action additionally lets the checker inject protocol faults at the exact
// boundary the point names.
//
// This header is included by stm/runtime.hpp and must stay dependency-free
// (plain enums + an abstract class).
#pragma once

#include <cstdint>

namespace wstm::check {

/// Where in the transaction protocol a schedule point sits. Every
/// potentially unbounded loop in the runtime contains a point, so a
/// serialized executor always regains control (a spinning transaction
/// cannot hold the token forever).
enum class Point : std::uint8_t {
  kThreadStart = 0,  // worker registered, before its first transaction
  kBegin,            // top of begin_attempt
  kRead,             // each iteration of the open_read loop (both modes)
  kWrite,            // each iteration of the open_write loop
  kCas,              // immediately before the Locator install CAS
  kCommit,           // top of finish_attempt_commit, before the status CAS
  kAbort,            // top of finish_attempt_abort
  kReaderResolve,    // each iteration of the visible-reader resolve loop
  kOrecLock,         // orec backend: each commit-time lock-acquire iteration
  kOrecValidate,     // orec backend: each read-set validation entry check
  kPark,             // requester-waits arbitration: a transaction parks on an
                     // enemy descriptor (object = ParkEdge). The executor
                     // marks the thread blocked-on-enemy; it becomes
                     // ineligible until a matching kUnpark (or the
                     // lost-wakeup oracle force-wakes it).
  kUnpark,           // a status transition fired the unpark edge for a
                     // descriptor (object = the TxDesc whose waiters wake)
};

inline constexpr unsigned kNumPoints = 12;

const char* point_name(Point p) noexcept;

/// Payload handed to on_point at kPark: which descriptor is about to wait on
/// which enemy. Pointers are valid for the duration of the call only (the
/// caller holds an EBR pin / owns `self`).
struct ParkEdge {
  const void* self = nullptr;   ///< parking TxDesc
  const void* enemy = nullptr;  ///< descriptor whose completion wakes it
};

/// What the checker tells the arriving thread to do as it resumes.
enum class Action : std::uint8_t {
  kProceed = 0,
  /// Abort the current attempt as if an enemy had killed it (spurious
  /// abort). Honored at kRead/kWrite/kCas/kCommit; ignored elsewhere.
  kInjectAbort,
  /// Take the CAS-failure path without performing the CAS (a lost install
  /// race that never happened). Honored only at kCas.
  kFailCas,
};

class SchedulerHook {
 public:
  virtual ~SchedulerHook() = default;

  /// Called by the runtime at every schedule point. May block (the
  /// serialized executor parks the thread until granted); returns the
  /// action the thread must take as it resumes. Threads the hook does not
  /// know about (e.g. the main thread populating a structure) pass through
  /// with kProceed.
  virtual Action on_point(Point p, const void* object) noexcept = 0;

  /// Called by the runtime's checker-gated ghost checks (invisible-read
  /// opacity oracle) when a just-returned or fast-path-skipped read is not
  /// the current committed version. Only invoked while the caller holds the
  /// schedule token, so implementations need no extra synchronization.
  /// Default no-op keeps existing hooks source-compatible. `what` is a
  /// static diagnostic string.
  virtual void on_opacity_violation(const char* what) noexcept { (void)what; }
};

}  // namespace wstm::check
