#include "check/history.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "structs/sequential_set.hpp"

namespace wstm::check {

const char* op_kind_name(OpKind k) noexcept {
  switch (k) {
    case OpKind::kInsert: return "insert";
    case OpKind::kRemove: return "remove";
    case OpKind::kContains: return "contains";
    case OpKind::kMove: return "move";
    case OpKind::kPairRead: return "pair-read";
  }
  return "?";
}

std::size_t HistoryRecorder::invoke(int vid, OpKind kind, long a, long b) {
  std::lock_guard lock(mu_);
  Op op;
  op.kind = kind;
  op.vid = vid;
  op.a = a;
  op.b = b;
  op.invoke = seq_++;
  ops_.push_back(op);
  return ops_.size() - 1;
}

void HistoryRecorder::respond(std::size_t index, bool r0, bool r1) {
  std::lock_guard lock(mu_);
  Op& op = ops_[index];
  op.r0 = r0;
  op.r1 = r1;
  op.response = seq_++;
  op.complete = true;
}

std::vector<Op> HistoryRecorder::take() noexcept {
  std::lock_guard lock(mu_);
  seq_ = 0;
  return std::move(ops_);
}

std::uint64_t mask_of(const std::vector<long>& elements) {
  std::uint64_t m = 0;
  for (long e : elements) {
    if (e >= 0 && e < 64) m |= std::uint64_t{1} << e;
  }
  return m;
}

namespace {

constexpr std::uint64_t bit(long key) { return std::uint64_t{1} << key; }

/// Applies `op` to membership mask `s`. Returns false when a *complete*
/// op's recorded results contradict the sequential semantics in this state
/// (incomplete ops have no observable results to contradict).
bool apply_op(const Op& op, std::uint64_t s, std::uint64_t& next) {
  switch (op.kind) {
    case OpKind::kInsert: {
      const bool res = (s & bit(op.a)) == 0;
      next = s | bit(op.a);
      return !op.complete || op.r0 == res;
    }
    case OpKind::kRemove: {
      const bool res = (s & bit(op.a)) != 0;
      next = s & ~bit(op.a);
      return !op.complete || op.r0 == res;
    }
    case OpKind::kContains: {
      next = s;
      return !op.complete || op.r0 == ((s & bit(op.a)) != 0);
    }
    case OpKind::kMove: {
      // remove(a) then insert(b), atomically.
      const bool removed = (s & bit(op.a)) != 0;
      const std::uint64_t mid = s & ~bit(op.a);
      const bool inserted = (mid & bit(op.b)) == 0;
      next = mid | bit(op.b);
      return !op.complete || (op.r0 == removed && op.r1 == inserted);
    }
    case OpKind::kPairRead: {
      next = s;
      return !op.complete ||
             (op.r0 == ((s & bit(op.a)) != 0) && op.r1 == ((s & bit(op.b)) != 0));
    }
  }
  next = s;
  return false;
}

/// Exact memo key: the linearized-op bitset words followed by the state.
std::string memo_key(const std::vector<std::uint64_t>& linearized, std::uint64_t state) {
  std::string key;
  key.reserve((linearized.size() + 1) * sizeof(std::uint64_t));
  for (std::uint64_t w : linearized) {
    key.append(reinterpret_cast<const char*>(&w), sizeof(w));
  }
  key.append(reinterpret_cast<const char*>(&state), sizeof(state));
  return key;
}

std::string describe_op(const Op& op, std::size_t index) {
  std::ostringstream out;
  out << '#' << index << " vid" << op.vid << ' ' << op_kind_name(op.kind) << '(' << op.a;
  if (op.kind == OpKind::kMove || op.kind == OpKind::kPairRead) out << ',' << op.b;
  out << ')';
  if (op.complete) {
    out << "->" << (op.r0 ? 'T' : 'F');
    if (op.kind == OpKind::kMove || op.kind == OpKind::kPairRead) out << (op.r1 ? 'T' : 'F');
  } else {
    out << "->?";
  }
  out << " [" << op.invoke << ',' << (op.complete ? std::to_string(op.response) : "inf") << ')';
  return out.str();
}

class WglSearch {
 public:
  WglSearch(const std::vector<Op>& ops, std::uint64_t final_state)
      : ops_(ops), final_state_(final_state), linearized_((ops.size() + 63) / 64, 0) {
    complete_count_ = 0;
    for (const Op& op : ops_) {
      if (op.complete) ++complete_count_;
    }
  }

  bool run(std::uint64_t initial, std::vector<std::size_t>& witness, std::size_t& explored) {
    const bool ok = search(initial, 0);
    explored = memo_.size();
    if (ok) witness = witness_;
    return ok;
  }

 private:
  bool is_linearized(std::size_t i) const {
    return (linearized_[i / 64] >> (i % 64)) & 1;
  }
  void set_linearized(std::size_t i, bool v) {
    if (v) {
      linearized_[i / 64] |= std::uint64_t{1} << (i % 64);
    } else {
      linearized_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
    }
  }

  /// An op is a linearization candidate iff no other pending op *responded*
  /// before it was invoked (real-time order must be preserved).
  std::uint64_t min_pending_response() const {
    std::uint64_t min_resp = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (is_linearized(i) || !ops_[i].complete) continue;
      min_resp = std::min(min_resp, ops_[i].response);
    }
    return min_resp;
  }

  bool search(std::uint64_t state, std::size_t done_complete) {
    // All observable ops placed: done, unless an incomplete op still needs
    // to take effect to reach the observed final contents (they are free to
    // linearize or not, so the loop below keeps trying them).
    if (done_complete == complete_count_ && state == final_state_) return true;
    if (!memo_.insert(memo_key(linearized_, state)).second) return false;
    const std::uint64_t min_resp = min_pending_response();
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (is_linearized(i)) continue;
      const Op& op = ops_[i];
      if (op.invoke > min_resp) continue;  // some pending op finished first
      std::uint64_t next = 0;
      if (!apply_op(op, state, next)) continue;
      set_linearized(i, true);
      witness_.push_back(i);
      if (search(next, done_complete + (op.complete ? 1 : 0))) return true;
      witness_.pop_back();
      set_linearized(i, false);
    }
    return false;
  }

  const std::vector<Op>& ops_;
  const std::uint64_t final_state_;
  std::vector<std::uint64_t> linearized_;
  std::size_t complete_count_ = 0;
  std::vector<std::size_t> witness_;
  std::unordered_set<std::string> memo_;
};

/// Replays the witness through the reference implementation; any mismatch
/// means the oracle itself is wrong, which we refuse to paper over.
bool verify_witness(const std::vector<Op>& ops, const std::vector<std::size_t>& witness,
                    std::uint64_t initial, std::uint64_t final_state, std::string& error) {
  structs::SequentialSet set;
  for (long k = 0; k < 64; ++k) {
    if (initial & bit(k)) set.insert(k);
  }
  for (std::size_t index : witness) {
    const Op& op = ops[index];
    bool r0 = false, r1 = false;
    switch (op.kind) {
      case OpKind::kInsert: r0 = set.insert(op.a); break;
      case OpKind::kRemove: r0 = set.remove(op.a); break;
      case OpKind::kContains: r0 = set.contains(op.a); break;
      case OpKind::kMove:
        r0 = set.remove(op.a);
        r1 = set.insert(op.b);
        break;
      case OpKind::kPairRead:
        r0 = set.contains(op.a);
        r1 = set.contains(op.b);
        break;
    }
    if (op.complete && (r0 != op.r0 || r1 != op.r1)) {
      error = "witness replay mismatch at " + describe_op(op, index);
      return false;
    }
  }
  if (mask_of(set.elements()) != final_state) {
    error = "witness replay does not reach the observed final contents";
    return false;
  }
  return true;
}

}  // namespace

LinearizabilityResult check_linearizable(const std::vector<Op>& ops, std::uint64_t initial,
                                         std::uint64_t final_state, long key_range) {
  LinearizabilityResult result;
  if (key_range <= 0 || key_range > 64) {
    result.diagnosis = "key_range must be in [1, 64] for mask-based checking";
    return result;
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    const bool b_used = op.kind == OpKind::kMove || op.kind == OpKind::kPairRead;
    if (op.a < 0 || op.a >= key_range || (b_used && (op.b < 0 || op.b >= key_range))) {
      result.diagnosis = "op key out of range: " + describe_op(op, i);
      return result;
    }
  }
  WglSearch search(ops, final_state);
  std::vector<std::size_t> witness;
  std::size_t explored = 0;
  if (!search.run(initial, witness, explored)) {
    result.states_explored = explored;
    std::ostringstream out;
    out << "no legal linearization exists (" << ops.size() << " ops, " << explored
        << " states explored). History:";
    for (std::size_t i = 0; i < ops.size(); ++i) out << "\n  " << describe_op(ops[i], i);
    result.diagnosis = out.str();
    return result;
  }
  std::string error;
  if (!verify_witness(ops, witness, initial, final_state, error)) {
    result.diagnosis = "oracle self-check failed: " + error;
    return result;
  }
  result.ok = true;
  result.witness = std::move(witness);
  result.states_explored = explored;
  return result;
}

}  // namespace wstm::check
