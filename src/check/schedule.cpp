#include "check/schedule.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace wstm::check {
namespace {

constexpr char kMagic[] = "wstm-schedule v1";

// One letter per Point keeps decision lines at ~8 bytes.
constexpr char kPointLetters[kNumPoints] = {'S', 'B', 'R', 'W', 'C', 'M',
                                            'A', 'V', 'L', 'D', 'P', 'U'};

char point_letter(Point p) { return kPointLetters[static_cast<unsigned>(p)]; }

Point point_from_letter(char c) {
  for (unsigned i = 0; i < kNumPoints; ++i) {
    if (kPointLetters[i] == c) return static_cast<Point>(i);
  }
  throw std::runtime_error(std::string("schedule: unknown point letter '") + c + "'");
}

char action_letter(Action a) {
  switch (a) {
    case Action::kProceed: return 'p';
    case Action::kInjectAbort: return 'a';
    case Action::kFailCas: return 'f';
  }
  return '?';
}

Action action_from_letter(char c) {
  switch (c) {
    case 'p': return Action::kProceed;
    case 'a': return Action::kInjectAbort;
    case 'f': return Action::kFailCas;
    default:
      throw std::runtime_error(std::string("schedule: unknown action letter '") + c + "'");
  }
}

[[noreturn]] void bad_line(std::size_t lineno, const std::string& line) {
  throw std::runtime_error("schedule: malformed line " + std::to_string(lineno) + ": \"" + line +
                           "\"");
}

}  // namespace

const char* point_name(Point p) noexcept {
  switch (p) {
    case Point::kThreadStart: return "thread-start";
    case Point::kBegin: return "begin";
    case Point::kRead: return "read";
    case Point::kWrite: return "write";
    case Point::kCas: return "cas";
    case Point::kCommit: return "commit";
    case Point::kAbort: return "abort";
    case Point::kReaderResolve: return "reader-resolve";
    case Point::kOrecLock: return "orec-lock";
    case Point::kOrecValidate: return "orec-validate";
    case Point::kPark: return "park";
    case Point::kUnpark: return "unpark";
  }
  return "?";
}

std::size_t Schedule::context_switches() const noexcept {
  std::size_t n = 0;
  for (std::size_t i = 1; i < decisions.size(); ++i) {
    if (decisions[i].vid != decisions[i - 1].vid) ++n;
  }
  return n;
}

std::size_t Schedule::injected_faults() const noexcept {
  std::size_t n = 0;
  for (const Decision& d : decisions) {
    if (d.action != Action::kProceed) ++n;
  }
  return n;
}

std::string to_text(const Schedule& schedule) {
  const CheckConfig& c = schedule.config;
  std::ostringstream out;
  out << kMagic << '\n';
  out << "structure " << c.structure << '\n';
  out << "cm " << c.cm << '\n';
  out << "threads " << c.threads << '\n';
  out << "ops_per_thread " << c.ops_per_thread << '\n';
  out << "key_range " << c.key_range << '\n';
  out << "visible_reads " << (c.visible_reads ? 1 : 0) << '\n';
  out << "snapshot_ext " << (c.snapshot_ext ? 1 : 0) << '\n';
  out << "deferred_clock " << (c.deferred_clock ? 1 : 0) << '\n';
  out << "prefill " << (c.prefill ? 1 : 0) << '\n';
  out << "op_mix " << c.op_mix << '\n';
  out << "update_percent " << c.update_percent << '\n';
  out << "pair_percent " << c.pair_percent << '\n';
  out << "seed " << c.seed << '\n';
  out << "strategy " << c.strategy << '\n';
  out << "pct_depth " << c.pct_depth << '\n';
  out << "max_steps " << c.max_steps << '\n';
  out << "tick_ns " << c.tick_ns << '\n';
  out << "window_n " << c.window_n << '\n';
  out << "backend " << c.backend << '\n';
  out << "arbitration " << c.arbitration << '\n';
  out << "p_abort " << c.faults.p_abort << '\n';
  out << "p_fail_cas " << c.faults.p_fail_cas << '\n';
  out << "p_stall " << c.faults.p_stall << '\n';
  out << "p_stall_any " << c.faults.p_stall_any << '\n';
  out << "stall_steps " << c.faults.stall_steps << '\n';
  out << "liveness " << (c.liveness ? 1 : 0) << '\n';
  out << "bug " << c.bug << '\n';
  for (const Decision& d : schedule.decisions) {
    out << "g " << d.vid << ' ' << point_letter(d.point) << ' ' << action_letter(d.action) << '\n';
  }
  return out.str();
}

Schedule schedule_from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw std::runtime_error("schedule: missing \"" + std::string(kMagic) + "\" header");
  }
  Schedule s;
  CheckConfig& c = s.config;
  // Files predating the deferred clock were recorded against the eager
  // clock, whose commit path has one fewer schedule point — replaying them
  // under the new default (on) would diverge decision-for-decision. Absent
  // key ⇒ the behavior those runs actually had; new files always carry it.
  c.deferred_clock = false;
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "g") {
      unsigned vid = 0;
      char pt = 0, act = 0;
      if (!(ls >> vid >> pt >> act)) bad_line(lineno, line);
      s.decisions.push_back(Decision{static_cast<std::uint16_t>(vid), point_from_letter(pt),
                                     action_from_letter(act)});
      continue;
    }
    std::string sval;
    if (!(ls >> sval)) bad_line(lineno, line);
    auto as_u64 = [&]() -> std::uint64_t { return std::stoull(sval); };
    auto as_u32 = [&]() -> std::uint32_t { return static_cast<std::uint32_t>(std::stoul(sval)); };
    auto as_f = [&]() -> double { return std::stod(sval); };
    try {
      if (key == "structure") c.structure = sval;
      else if (key == "cm") c.cm = sval;
      else if (key == "threads") c.threads = as_u32();
      else if (key == "ops_per_thread") c.ops_per_thread = as_u32();
      else if (key == "key_range") c.key_range = std::stol(sval);
      else if (key == "visible_reads") c.visible_reads = sval != "0";
      // Absent in pre-fast-path files: they default to 1, matching the
      // runtime default those runs implicitly had once the flag exists.
      else if (key == "snapshot_ext") c.snapshot_ext = sval != "0";
      else if (key == "deferred_clock") c.deferred_clock = sval != "0";
      else if (key == "prefill") c.prefill = sval != "0";
      else if (key == "op_mix") c.op_mix = sval;
      else if (key == "update_percent") c.update_percent = as_u32();
      else if (key == "pair_percent") c.pair_percent = as_u32();
      else if (key == "seed") c.seed = as_u64();
      else if (key == "strategy") c.strategy = sval;
      else if (key == "pct_depth") c.pct_depth = as_u32();
      else if (key == "max_steps") c.max_steps = as_u64();
      else if (key == "tick_ns") c.tick_ns = std::stoll(sval);
      else if (key == "window_n") c.window_n = as_u32();
      // Absent in pre-backend files ⇒ the DSTM engine those runs used.
      else if (key == "backend") c.backend = sval;
      // Absent in pre-parking files ⇒ the abort-only arbitration they used
      // (the CheckConfig default; no preset needed before the parse).
      else if (key == "arbitration") c.arbitration = sval;
      else if (key == "p_abort") c.faults.p_abort = as_f();
      else if (key == "p_fail_cas") c.faults.p_fail_cas = as_f();
      else if (key == "p_stall") c.faults.p_stall = as_f();
      else if (key == "p_stall_any") c.faults.p_stall_any = as_f();
      else if (key == "stall_steps") c.faults.stall_steps = as_u32();
      else if (key == "liveness") c.liveness = sval != "0";
      else if (key == "bug") c.bug = sval;
      else throw std::runtime_error("schedule: unknown key \"" + key + "\" at line " +
                                    std::to_string(lineno));
    } catch (const std::invalid_argument&) {
      bad_line(lineno, line);
    } catch (const std::out_of_range&) {
      bad_line(lineno, line);
    }
  }
  return s;
}

bool save_schedule(const std::string& path, const Schedule& schedule) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_text(schedule);
  return static_cast<bool>(out);
}

Schedule load_schedule(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("schedule: cannot open \"" + path + "\"");
  std::ostringstream buf;
  buf << in.rdbuf();
  return schedule_from_text(buf.str());
}

}  // namespace wstm::check
