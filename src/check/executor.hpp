// Serialized cooperative executor: the SchedulerHook implementation.
//
// All worker threads funnel through one token. A worker arriving at a
// schedule point parks (mutex + condvar); the executor asks its Policy which
// parked thread runs next, logs the decision, advances the virtual clock by
// one tick, and wakes exactly that thread with the chosen Action. Between
// two schedule points exactly one worker executes, so the decision log fully
// determines the interleaving — that is what makes replay bit-identical.
//
// Threads that never registered (the main/populate thread, or any thread of
// a Runtime without this hook installed) pass straight through: on_point
// keys off a thread_local vid that defaults to "not a virtual thread".
//
// Budget exhaustion: after max_steps decisions the executor flips to
// free-run — every parked thread is released and all further points return
// kProceed without parking — so a schedule that reaches a livelock-prone
// region still terminates (nondeterministically, but the run is then
// reported as over-budget, never as a verdict).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "check/policy.hpp"
#include "check/schedule.hpp"

namespace wstm::check {

class VirtualExecutor final : public SchedulerHook {
 public:
  /// The executor installs the virtual clock (util/timing.hpp) on
  /// construction and removes it on destruction; at most one may exist at a
  /// time per process.
  VirtualExecutor(unsigned num_threads, Policy& policy, std::uint64_t max_steps,
                  std::int64_t tick_ns);
  ~VirtualExecutor() override;

  VirtualExecutor(const VirtualExecutor&) = delete;
  VirtualExecutor& operator=(const VirtualExecutor&) = delete;

  /// Worker-side: adopt virtual thread id `vid` (0-based, unique). Blocks
  /// until all num_threads workers have registered and the policy grants
  /// this one its first quantum. On return the caller holds the token; its
  /// first actions (Runtime::attach_thread, etc.) run in schedule order.
  void register_thread(int vid);

  /// Worker-side: this virtual thread finished its ops. Releases the token
  /// permanently; the calling OS thread reverts to pass-through.
  void thread_done();

  /// Runtime-side (via RuntimeConfig::checker): park, wait for a grant,
  /// return the granted action.
  Action on_point(Point p, const void* object) noexcept override;

  /// Runtime-side: ghost opacity oracle report (token held — see hooks.hpp).
  void on_opacity_violation(const char* what) noexcept override;

  const std::vector<Decision>& log() const noexcept { return log_; }
  std::uint64_t steps() const noexcept { return step_; }
  /// True once the step budget forced free-running (run verdicts are void).
  bool over_budget() const noexcept { return free_run_.load(std::memory_order_relaxed); }

  /// Ghost opacity-oracle reports collected this run (see
  /// Runtime::open_read_invisible / validate_or_extend); nonzero means the
  /// run observed a torn invisible-read snapshot even if the committed
  /// history still linearizes. Read after workers have joined.
  std::uint64_t opacity_violations() const noexcept {
    return opacity_violations_.load(std::memory_order_acquire);
  }
  /// Diagnostic string of the first report (static storage), or null.
  const char* first_opacity_violation() const noexcept {
    return first_opacity_what_.load(std::memory_order_acquire);
  }

  /// Requester-waits oracle: number of times every runnable thread was
  /// parked on a descriptor with no unpark edge left to fire — a lost
  /// wakeup or a park cycle, either way a deadlock-freedom violation. The
  /// executor force-wakes all parked threads when it fires (deterministic
  /// under replay: the wake happens at the same decision index), so the run
  /// still terminates and can be shrunk. Read after workers have joined.
  std::uint64_t park_deadlocks() const noexcept {
    return park_deadlocks_.load(std::memory_order_acquire);
  }

 private:
  enum class State : std::uint8_t { kUnregistered, kWaiting, kRunning, kDone };

  /// Picks and wakes the next thread. Requires mu_ held. No-op when no
  /// thread is waiting (the last runnable worker just finished).
  void grant_next_locked();
  void enter_free_run_locked();

  const unsigned num_threads_;
  Policy& policy_;
  const std::uint64_t max_steps_;
  const std::int64_t tick_ns_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<State> state_;
  std::vector<Point> parked_;         // valid while kWaiting
  std::vector<Action> granted_;       // action handed to the last grantee
  std::vector<std::uint64_t> stalled_until_;  // step before which vid is ineligible
  /// Requester-waits model: enemy TxDesc a vid is parked on (set at kPark
  /// arrival, cleared when a kUnpark for that descriptor arrives or the
  /// deadlock oracle force-wakes). Non-null ⇒ ineligible.
  std::vector<const void*> blocked_on_;
  unsigned registered_ = 0;
  int running_ = -1;
  std::uint64_t step_ = 0;
  std::vector<Decision> log_;
  std::atomic<bool> free_run_{false};
  std::atomic<std::int64_t> vnow_;
  // Atomic despite the token: reports can also arrive while free-running
  // (over budget), where no token serializes the callers.
  std::atomic<std::uint64_t> opacity_violations_{0};
  std::atomic<const char*> first_opacity_what_{nullptr};
  std::atomic<std::uint64_t> park_deadlocks_{0};
};

}  // namespace wstm::check
