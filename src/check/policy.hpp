// Exploration policies: who runs next, and with which injected fault.
//
// The VirtualExecutor serializes all workers and, at every schedule point,
// asks its Policy to pick one of the parked ("eligible") virtual threads.
// The policy answers with a Choice: grant vid and resume it with an Action
// (proceed / inject-abort / fail-CAS), or stall it — leave it parked for
// `stall_steps` further decisions while others run (stalled-commit
// injection). Policies are the only source of randomness in a checker run;
// each is seeded explicitly, so a (policy, seed) pair defines the schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "check/schedule.hpp"
#include "util/rng.hpp"

namespace wstm::check {

struct Choice {
  int vid = -1;
  Action action = Action::kProceed;
  /// When > 0: do not grant `vid`; keep it parked for this many further
  /// scheduling decisions (the executor then re-asks with it ineligible).
  std::uint32_t stall_steps = 0;
};

class Policy {
 public:
  virtual ~Policy() = default;

  /// Picks from `eligible` (non-empty, ascending vids). `points[vid]` is the
  /// schedule point each thread is parked at.
  virtual Choice choose(std::uint64_t step, const std::vector<int>& eligible,
                        const std::vector<Point>& points) = 0;

 protected:
  Policy(std::uint64_t seed, const FaultOptions& faults) : rng_(seed), faults_(faults) {}

  /// Rolls the fault dice for a thread parked at `p`. Returns a stall as
  /// Choice{vid, kProceed, stall_steps}; otherwise a grant with the rolled
  /// action (kProceed when no fault fires or none applies at `p`).
  Choice roll_faults(int vid, Point p);

  Xoshiro256 rng_;
  FaultOptions faults_;
};

/// Uniform random walk: every eligible thread is equally likely at every
/// step. Good at shallow orderings; the baseline strategy.
class RandomWalkPolicy final : public Policy {
 public:
  RandomWalkPolicy(std::uint64_t seed, const FaultOptions& faults) : Policy(seed, faults) {}

  Choice choose(std::uint64_t step, const std::vector<int>& eligible,
                const std::vector<Point>& points) override;
};

/// PCT (Burckhardt et al., ASPLOS 2010): random distinct priorities, run the
/// highest-priority eligible thread, and at d-1 pre-chosen steps demote the
/// running thread below everyone else. Finds any bug of depth <= d with
/// probability >= 1/(n * k^(d-1)).
class PctPolicy final : public Policy {
 public:
  /// `k_estimate` is the a-priori run length used to place change points.
  PctPolicy(std::uint64_t seed, const FaultOptions& faults, unsigned num_threads, unsigned depth,
            std::uint64_t k_estimate);

  Choice choose(std::uint64_t step, const std::vector<int>& eligible,
                const std::vector<Point>& points) override;

 private:
  std::vector<std::uint64_t> priority_;     // higher value = runs first
  std::vector<std::uint64_t> change_steps_;  // sorted, ascending
  std::size_t next_change_ = 0;
  std::uint64_t low_water_ = 0;  // next demotion priority (counts down)
};

/// Replays a recorded decision list verbatim. After the list is exhausted —
/// or on divergence (the recorded thread is not parked where the log says) —
/// falls back to run-to-completion: keep granting the last thread while it
/// is eligible, else the lowest vid. Divergence is counted, not fatal, so
/// shrinking can probe "almost the same" schedules.
class ReplayPolicy final : public Policy {
 public:
  explicit ReplayPolicy(std::vector<Decision> decisions)
      : Policy(0, FaultOptions{}), decisions_(std::move(decisions)) {}

  Choice choose(std::uint64_t step, const std::vector<int>& eligible,
                const std::vector<Point>& points) override;

  std::uint64_t divergences() const noexcept { return divergences_; }

 private:
  std::vector<Decision> decisions_;
  std::size_t next_ = 0;
  std::uint64_t divergences_ = 0;
  int last_vid_ = -1;
};

}  // namespace wstm::check
