#include "check/checker.hpp"

#include <stdexcept>
#include <thread>
#include <utility>

#include "check/executor.hpp"
#include "cm/registry.hpp"
#include "stm/runtime.hpp"
#include "structs/intset.hpp"
#include "trace/recorder.hpp"
#include "trace/schedule_checker.hpp"
#include "util/rng.hpp"

namespace wstm::check {
namespace {

struct OpSpec {
  OpKind kind;
  long a;
  long b;
};

/// The deterministic op stream of virtual thread `vid`. Only CheckConfig
/// fields feed the generator, so every run (explore or replay) of the same
/// config executes the same program.
std::vector<OpSpec> make_ops(const CheckConfig& c, int vid) {
  Xoshiro256 rng(c.seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(vid) + 1);
  const bool insert_heavy = c.op_mix == "insert-heavy";
  const auto range = static_cast<std::uint64_t>(c.key_range);
  std::vector<OpSpec> ops;
  ops.reserve(c.ops_per_thread);
  for (unsigned i = 0; i < c.ops_per_thread; ++i) {
    const std::uint64_t roll = rng.below(100);
    OpSpec op{};
    if (roll < c.pair_percent) {
      const bool move = !insert_heavy && rng.below(2) == 0;
      op.kind = move ? OpKind::kMove : OpKind::kPairRead;
      op.a = static_cast<long>(rng.below(range));
      op.b = static_cast<long>(rng.below(range));
    } else if (roll < c.pair_percent + c.update_percent) {
      op.kind = (insert_heavy || rng.below(2) == 0) ? OpKind::kInsert : OpKind::kRemove;
      op.a = static_cast<long>(rng.below(range));
    } else {
      op.kind = OpKind::kContains;
      op.a = static_cast<long>(rng.below(range));
    }
    ops.push_back(op);
  }
  return ops;
}

stm::RuntimeConfig::DebugFaults parse_bug(const std::string& bug) {
  stm::RuntimeConfig::DebugFaults b;
  if (bug == "none" || bug.empty()) return b;
  if (bug == "blind-commit") {
    b.blind_commit = true;
  } else if (bug == "skip-reader-abort") {
    b.skip_reader_abort = true;
  } else if (bug == "skip-cas-recheck") {
    b.skip_cas_recheck = true;
  } else if (bug == "stamp-no-pending") {
    b.stamp_no_pending = true;
  } else if (bug == "skip-read-validation") {
    b.orec_skip_validation = true;  // orec backend only; a no-op under dstm
  } else if (bug == "park-lost-wakeup") {
    b.park_lost_wakeup = true;  // meaningful only with arbitration=wait
  } else {
    throw std::invalid_argument("unknown seeded bug \"" + bug +
                                "\" (none|blind-commit|skip-reader-abort|skip-cas-recheck|"
                                "stamp-no-pending|skip-read-validation|park-lost-wakeup)");
  }
  return b;
}

void run_op(stm::Runtime& rt, stm::ThreadCtx& tc, structs::TxIntSet& set, HistoryRecorder& hist,
            int vid, const OpSpec& op) {
  const std::size_t idx = hist.invoke(vid, op.kind, op.a, op.b);
  switch (op.kind) {
    case OpKind::kInsert:
      hist.respond(idx, rt.atomically(tc, [&](stm::Tx& tx) { return set.insert(tx, op.a); }));
      break;
    case OpKind::kRemove:
      hist.respond(idx, rt.atomically(tc, [&](stm::Tx& tx) { return set.remove(tx, op.a); }));
      break;
    case OpKind::kContains:
      hist.respond(idx, rt.atomically(tc, [&](stm::Tx& tx) { return set.contains(tx, op.a); }));
      break;
    case OpKind::kMove: {
      const auto [removed, inserted] = rt.atomically(tc, [&](stm::Tx& tx) {
        const bool r = set.remove(tx, op.a);
        const bool i = set.insert(tx, op.b);
        return std::pair{r, i};
      });
      hist.respond(idx, removed, inserted);
      break;
    }
    case OpKind::kPairRead: {
      const auto [in_a, in_b] = rt.atomically(tc, [&](stm::Tx& tx) {
        const bool r0 = set.contains(tx, op.a);
        const bool r1 = set.contains(tx, op.b);
        return std::pair{r0, r1};
      });
      hist.respond(idx, in_a, in_b);
      break;
    }
  }
}

}  // namespace

std::uint64_t Checker::derive_policy_seed(std::uint64_t base_seed, std::uint64_t index) {
  std::uint64_t state = base_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  return splitmix64(state);
}

RunResult Checker::run_with_policy(Policy& policy, const CheckConfig& cfg) {
  RunResult rr;
  rr.schedule.config = cfg;

  stm::RuntimeConfig rtc;
  rtc.seed = cfg.seed;
  rtc.backend = stm::parse_backend(cfg.backend);
  rtc.arbitration = stm::parse_arbitration(cfg.arbitration);
  rtc.visible_reads = cfg.visible_reads;
  rtc.snapshot_ext = cfg.snapshot_ext;
  rtc.deferred_clock = cfg.deferred_clock;
  rtc.bugs = parse_bug(cfg.bug);
  if (cfg.liveness) {
    // Checker-friendly liveness: tight thresholds so short runs reach the
    // serial-fallback level, no real-time sleeps (the executor owns time),
    // no watchdog thread (the Runtime skips it under a checker anyway),
    // and no deadline (virtual clocks make wall deadlines meaningless).
    rtc.liveness.enabled = true;
    rtc.liveness.backoff_after = 2;
    rtc.liveness.boost_after = 3;
    rtc.liveness.serial_after = 4;
    rtc.liveness.backoff_base_us = 0;
    rtc.liveness.deadline_ns = 0;
    rtc.liveness.watchdog_period_ns = 0;
  }

  trace::Recorder recorder(
      {.threads = cfg.threads, .capacity_per_thread = std::size_t{1} << 14});
  rtc.recorder = &recorder;

  VirtualExecutor exec(cfg.threads, policy, cfg.effective_max_steps(), cfg.tick_ns);
  rtc.checker = &exec;

  cm::Params params;
  params.threads = cfg.threads;
  params.window_n = cfg.window_n;
  params.requester_waits = rtc.arbitration == stm::ArbitrationMode::kWait;

  // Destruction order matters: the Runtime must die before the set (its EBR
  // drain frees retired nodes the set no longer owns) and before the
  // executor/recorder it holds pointers into.
  auto set = structs::make_intset(cfg.structure);
  stm::Runtime rt(cm::make_manager(cfg.cm, params), rtc);

  std::uint64_t initial = 0;
  if (cfg.prefill) {
    // The main thread is not a virtual thread, so it passes through every
    // schedule point; this runs before the workers exist.
    stm::ThreadCtx& tc = rt.attach_thread();
    for (long k = 0; k < cfg.key_range; k += 2) {
      rt.atomically(tc, [&](stm::Tx& tx) { return set->insert(tx, k); });
      initial |= std::uint64_t{1} << k;
    }
    rt.detach_thread(tc);
    recorder.clear();
  }

  std::vector<std::vector<OpSpec>> program;
  program.reserve(cfg.threads);
  for (unsigned vid = 0; vid < cfg.threads; ++vid) {
    program.push_back(make_ops(cfg, static_cast<int>(vid)));
  }

  HistoryRecorder hist;
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);
  for (unsigned vid = 0; vid < cfg.threads; ++vid) {
    workers.emplace_back([&, vid] {
      exec.register_thread(static_cast<int>(vid));
      // Attached while holding the token, so slot assignment follows the
      // grant order and replays deterministically.
      stm::ThreadCtx& tc = rt.attach_thread();
      for (const OpSpec& op : program[vid]) {
        run_op(rt, tc, *set, hist, static_cast<int>(vid), op);
      }
      exec.thread_done();
      // Stay attached: metrics are read after the join; the Runtime
      // destructor retires the context.
    });
  }
  for (std::thread& w : workers) w.join();

  rr.steps = exec.steps();
  rr.over_budget = exec.over_budget();
  rr.schedule.decisions = exec.log();
  rr.metrics = rt.total_metrics();
  if (const resilience::LivenessManager* lm = rt.liveness()) {
    const resilience::LivenessManager::Stats ls = lm->stats();
    rr.token_acquisitions = ls.token_acquisitions;
    rr.max_token_holders = ls.max_token_holders;
    rr.token_overlap_violations = ls.token_overlap_violations;
  }
  if (const auto* rp = dynamic_cast<const ReplayPolicy*>(&policy)) {
    rr.divergences = rp->divergences();
  }

  const std::uint64_t final_mask = mask_of(set->quiescent_elements());
  const LinearizabilityResult lin =
      check_linearizable(hist.take(), initial, final_mask, cfg.key_range);
  if (!lin.ok) {
    rr.violation = true;
    rr.diagnosis = "linearizability: " + lin.diagnosis;
  }

  // Ghost opacity oracle: a torn invisible-read snapshot is a violation even
  // when the committed history still linearizes (commit-time validation
  // usually aborts the victim before its stale view reaches the history —
  // exactly why skip_cas_recheck-class bugs need this oracle, not the
  // history check).
  if (const std::uint64_t ov = exec.opacity_violations()) {
    rr.violation = true;
    if (!rr.diagnosis.empty()) rr.diagnosis += "\n";
    const char* what = exec.first_opacity_violation();
    rr.diagnosis += "opacity: " + std::to_string(ov) + " ghost-check failure(s): " +
                    (what != nullptr ? what : "(unknown)");
  }

  // Requester-waits deadlock-freedom oracle: the executor observed a state
  // where every runnable thread was parked on a descriptor with no unpark
  // edge left to fire — a lost wakeup (a commit/abort path skipped its
  // signal_status_change) or a cycle of parked descriptors.
  if (const std::uint64_t pd = exec.park_deadlocks()) {
    rr.violation = true;
    if (!rr.diagnosis.empty()) rr.diagnosis += "\n";
    rr.diagnosis += "park-deadlock: " + std::to_string(pd) +
                    " state(s) with every runnable thread parked and no unpark edge "
                    "pending (lost wakeup or park cycle)";
  }

  if (cm::is_window_manager(cfg.cm)) {
    bool dropped = false;
    for (unsigned s = 0; s < recorder.threads(); ++s) dropped |= recorder.dropped(s) > 0;
    if (!dropped) {
      const trace::CheckResult cr = trace::ScheduleChecker::check(recorder.drain_sorted());
      if (!cr.ok()) {
        rr.violation = true;
        if (!rr.diagnosis.empty()) rr.diagnosis += "\n";
        rr.diagnosis += "window invariants: " + cr.to_string();
      }
    }
  }

  if (rr.violation && rr.over_budget) {
    rr.diagnosis +=
        "\n(note: step budget was exhausted mid-run; this schedule may not replay "
        "deterministically)";
  }
  return rr;
}

RunResult Checker::run_once(std::uint64_t schedule_seed) {
  if (config_.strategy == "pct") {
    PctPolicy policy(schedule_seed, config_.faults, config_.threads, config_.pct_depth,
                     config_.estimated_steps());
    return run_with_policy(policy, config_);
  }
  if (config_.strategy != "random") {
    throw std::invalid_argument("unknown strategy \"" + config_.strategy + "\" (random|pct)");
  }
  RandomWalkPolicy policy(schedule_seed, config_.faults);
  return run_with_policy(policy, config_);
}

RunResult Checker::replay(const Schedule& schedule) {
  ReplayPolicy policy(schedule.decisions);
  return run_with_policy(policy, schedule.config);
}

ExploreResult Checker::explore(unsigned num_schedules, bool stop_on_violation) {
  ExploreResult er;
  for (unsigned i = 0; i < num_schedules; ++i) {
    RunResult r = run_once(derive_policy_seed(config_.seed, i));
    ++er.schedules_run;
    if (r.violation) {
      ++er.violations;
      if (er.violations == 1) er.first_violation = std::move(r);
      if (stop_on_violation) break;
    }
  }
  return er;
}

Checker::ShrinkResult Checker::shrink(const Schedule& failing, unsigned max_replays) {
  ShrinkResult sr;
  auto fails = [&](const Schedule& cand) -> bool {
    if (sr.replays >= max_replays) return false;
    ++sr.replays;
    return replay(cand).violation;
  };

  Schedule best = failing;
  if (!fails(best)) {
    sr.schedule = std::move(best);
    return sr;  // still_fails = false: nothing to shrink
  }
  sr.still_fails = true;

  // Pass A: drop injected faults one at a time (fewer faults = simpler
  // repro; many are incidental noise from the exploration policy).
  for (std::size_t i = 0; i < best.decisions.size(); ++i) {
    if (best.decisions[i].action == Action::kProceed) continue;
    Schedule cand = best;
    cand.decisions[i].action = Action::kProceed;
    if (fails(cand)) best = std::move(cand);
  }

  // Pass B: shortest failing prefix (replay deterministically pads past the
  // log's end with run-to-completion, so a prefix is a complete schedule).
  {
    std::size_t lo = 0;
    std::size_t hi = best.decisions.size();  // invariant: prefix of hi fails
    while (lo < hi && sr.replays < max_replays) {
      const std::size_t mid = lo + (hi - lo) / 2;
      Schedule cand;
      cand.config = best.config;
      cand.decisions.assign(best.decisions.begin(),
                            best.decisions.begin() + static_cast<std::ptrdiff_t>(mid));
      if (fails(cand)) {
        best = std::move(cand);
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
  }

  // Pass C: single-decision deletion sweep, back to front (later decisions
  // are the cheapest to drop after truncation).
  for (std::size_t i = best.decisions.size(); i-- > 0 && sr.replays < max_replays;) {
    Schedule cand = best;
    cand.decisions.erase(cand.decisions.begin() + static_cast<std::ptrdiff_t>(i));
    if (fails(cand)) best = std::move(cand);
  }

  sr.schedule = std::move(best);
  return sr;
}

}  // namespace wstm::check
