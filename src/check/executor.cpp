#include "check/executor.hpp"

#include "util/timing.hpp"

namespace wstm::check {
namespace {

/// -1 = not a virtual thread (main thread, or a worker after thread_done).
thread_local int tl_vid = -1;

}  // namespace

VirtualExecutor::VirtualExecutor(unsigned num_threads, Policy& policy, std::uint64_t max_steps,
                                 std::int64_t tick_ns)
    : num_threads_(num_threads),
      policy_(policy),
      max_steps_(max_steps),
      tick_ns_(tick_ns),
      state_(num_threads, State::kUnregistered),
      parked_(num_threads, Point::kThreadStart),
      granted_(num_threads, Action::kProceed),
      stalled_until_(num_threads, 0),
      blocked_on_(num_threads, nullptr),
      // Nonzero epoch so virtual timestamps never collide with the "unset"
      // zero that some metrics fields start from.
      vnow_(1'000'000) {
  log_.reserve(4096);
  set_virtual_clock(&vnow_);
}

VirtualExecutor::~VirtualExecutor() { set_virtual_clock(nullptr); }

void VirtualExecutor::register_thread(int vid) {
  tl_vid = vid;
  std::unique_lock lock(mu_);
  state_[static_cast<std::size_t>(vid)] = State::kWaiting;
  parked_[static_cast<std::size_t>(vid)] = Point::kThreadStart;
  if (++registered_ == num_threads_) grant_next_locked();
  cv_.wait(lock, [&] {
    return running_ == vid || free_run_.load(std::memory_order_relaxed);
  });
}

void VirtualExecutor::thread_done() {
  const int vid = tl_vid;
  tl_vid = -1;
  if (vid < 0) return;
  std::unique_lock lock(mu_);
  state_[static_cast<std::size_t>(vid)] = State::kDone;
  if (running_ == vid) {
    running_ = -1;
    grant_next_locked();
  }
}

Action VirtualExecutor::on_point(Point p, const void* object) noexcept {
  const int vid = tl_vid;
  if (vid < 0) return Action::kProceed;
  if (free_run_.load(std::memory_order_relaxed)) return Action::kProceed;
  std::unique_lock lock(mu_);
  if (free_run_.load(std::memory_order_relaxed)) return Action::kProceed;
  // Park/unpark side effects apply at *arrival*, not at grant: only one
  // thread runs between two grants, so arrival order is itself determined
  // by the decision log and replay stays bit-identical.
  if (p == Point::kUnpark && object != nullptr) {
    for (unsigned i = 0; i < num_threads_; ++i) {
      if (blocked_on_[i] == object) blocked_on_[i] = nullptr;
    }
  } else if (p == Point::kPark && object != nullptr) {
    const auto* edge = static_cast<const ParkEdge*>(object);
    blocked_on_[static_cast<std::size_t>(vid)] = edge->enemy;
  }
  state_[static_cast<std::size_t>(vid)] = State::kWaiting;
  parked_[static_cast<std::size_t>(vid)] = p;
  if (running_ == vid) running_ = -1;
  grant_next_locked();
  cv_.wait(lock, [&] {
    return running_ == vid || free_run_.load(std::memory_order_relaxed);
  });
  if (running_ != vid) return Action::kProceed;  // released by free-run
  blocked_on_[static_cast<std::size_t>(vid)] = nullptr;  // granted ⇒ woken
  return granted_[static_cast<std::size_t>(vid)];
}

void VirtualExecutor::on_opacity_violation(const char* what) noexcept {
  opacity_violations_.fetch_add(1, std::memory_order_acq_rel);
  const char* expected = nullptr;
  first_opacity_what_.compare_exchange_strong(expected, what, std::memory_order_acq_rel);
}

void VirtualExecutor::grant_next_locked() {
  if (registered_ < num_threads_) return;  // still in the start barrier
  for (;;) {
    std::vector<int> eligible;
    bool any_waiting = false;
    bool any_stalled = false;
    bool any_parked = false;
    for (unsigned i = 0; i < num_threads_; ++i) {
      if (state_[i] != State::kWaiting) continue;
      any_waiting = true;
      if (blocked_on_[i] != nullptr) {
        any_parked = true;
        continue;
      }
      if (stalled_until_[i] <= step_) eligible.push_back(static_cast<int>(i));
      else any_stalled = true;
    }
    if (!any_waiting) return;  // everyone done (or running, impossible here)
    if (eligible.empty()) {
      if (any_stalled) {
        // Every runnable thread is stalled; forcing the stalls to expire
        // keeps the run live without making any of them spuriously eligible
        // earlier in a *replayed* schedule (replay never stalls).
        for (unsigned i = 0; i < num_threads_; ++i) stalled_until_[i] = 0;
        continue;
      }
      // Every waiting thread is parked on a descriptor and no unpark edge
      // can ever fire (the would-be wakers are all parked or done): a lost
      // wakeup or a park cycle. Record the deadlock-freedom violation and
      // force-wake everyone so the run terminates — the wake lands at this
      // exact decision index on replay, keeping the repro deterministic.
      (void)any_parked;  // implied: any_waiting && !any_stalled && no eligible
      park_deadlocks_.fetch_add(1, std::memory_order_acq_rel);
      for (unsigned i = 0; i < num_threads_; ++i) blocked_on_[i] = nullptr;
      continue;
    }
    const Choice c = policy_.choose(step_, eligible, parked_);
    const auto uvid = static_cast<std::size_t>(c.vid);
    if (c.stall_steps > 0) {
      stalled_until_[uvid] = step_ + c.stall_steps;
      continue;  // decision not logged: stalls only reshape later grants
    }
    log_.push_back(Decision{static_cast<std::uint16_t>(c.vid), parked_[uvid], c.action});
    granted_[uvid] = c.action;
    state_[uvid] = State::kRunning;
    running_ = c.vid;
    ++step_;
    vnow_.fetch_add(tick_ns_, std::memory_order_relaxed);
    if (step_ >= max_steps_) {
      enter_free_run_locked();
      return;
    }
    cv_.notify_all();
    return;
  }
}

void VirtualExecutor::enter_free_run_locked() {
  free_run_.store(true, std::memory_order_relaxed);
  // Real time must flow again or CM waits spin on a frozen clock.
  set_virtual_clock(nullptr);
  for (unsigned i = 0; i < num_threads_; ++i) {
    blocked_on_[i] = nullptr;
    if (state_[i] == State::kWaiting) state_[i] = State::kRunning;
  }
  cv_.notify_all();
}

}  // namespace wstm::check
