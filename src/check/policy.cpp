#include "check/policy.hpp"

#include <algorithm>

namespace wstm::check {
namespace {

bool abort_applies(Point p) {
  return p == Point::kRead || p == Point::kWrite || p == Point::kCas || p == Point::kCommit ||
         p == Point::kOrecLock || p == Point::kOrecValidate;
}

}  // namespace

Choice Policy::roll_faults(int vid, Point p) {
  Choice c{vid, Action::kProceed, 0};
  if (!faults_.any()) return c;
  if (faults_.p_stall_any > 0 && rng_.uniform01() < faults_.p_stall_any) {
    c.stall_steps = faults_.stall_steps;
    return c;
  }
  if (p == Point::kCommit && faults_.p_stall > 0 && rng_.uniform01() < faults_.p_stall) {
    c.stall_steps = faults_.stall_steps;
    return c;
  }
  if (p == Point::kCas && faults_.p_fail_cas > 0 && rng_.uniform01() < faults_.p_fail_cas) {
    c.action = Action::kFailCas;
    return c;
  }
  if (abort_applies(p) && faults_.p_abort > 0 && rng_.uniform01() < faults_.p_abort) {
    c.action = Action::kInjectAbort;
  }
  return c;
}

// ---- RandomWalkPolicy -----------------------------------------------------

Choice RandomWalkPolicy::choose(std::uint64_t /*step*/, const std::vector<int>& eligible,
                                const std::vector<Point>& points) {
  const int vid = eligible[rng_.below(eligible.size())];
  return roll_faults(vid, points[static_cast<std::size_t>(vid)]);
}

// ---- PctPolicy ------------------------------------------------------------

PctPolicy::PctPolicy(std::uint64_t seed, const FaultOptions& faults, unsigned num_threads,
                     unsigned depth, std::uint64_t k_estimate)
    : Policy(seed, faults) {
  // Random distinct initial priorities: a shuffled [d, d + n). Values below
  // d are reserved for demotions, so a demoted thread always sinks under
  // every initial priority.
  priority_.resize(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) priority_[i] = depth + i;
  for (unsigned i = num_threads; i > 1; --i) {
    std::swap(priority_[i - 1], priority_[rng_.below(i)]);
  }
  low_water_ = depth;  // demotions hand out depth-1, depth-2, ..., 1
  const unsigned changes = depth > 0 ? depth - 1 : 0;
  change_steps_.reserve(changes);
  for (unsigned i = 0; i < changes; ++i) change_steps_.push_back(rng_.below(k_estimate));
  std::sort(change_steps_.begin(), change_steps_.end());
}

Choice PctPolicy::choose(std::uint64_t step, const std::vector<int>& eligible,
                         const std::vector<Point>& points) {
  int best = eligible[0];
  for (int vid : eligible) {
    if (priority_[static_cast<std::size_t>(vid)] >
        priority_[static_cast<std::size_t>(best)]) {
      best = vid;
    }
  }
  if (next_change_ < change_steps_.size() && step >= change_steps_[next_change_]) {
    ++next_change_;
    if (low_water_ > 1) --low_water_;
    priority_[static_cast<std::size_t>(best)] = low_water_;
    // Re-pick under the demoted priority so the change point takes effect
    // at this very step, as in the paper's scheduler.
    for (int vid : eligible) {
      if (priority_[static_cast<std::size_t>(vid)] >
          priority_[static_cast<std::size_t>(best)]) {
        best = vid;
      }
    }
  }
  return roll_faults(best, points[static_cast<std::size_t>(best)]);
}

// ---- ReplayPolicy ---------------------------------------------------------

Choice ReplayPolicy::choose(std::uint64_t /*step*/, const std::vector<int>& eligible,
                            const std::vector<Point>& points) {
  if (next_ < decisions_.size()) {
    const Decision& d = decisions_[next_];
    const int vid = d.vid;
    const bool parked_there =
        std::find(eligible.begin(), eligible.end(), vid) != eligible.end() &&
        points[static_cast<std::size_t>(vid)] == d.point;
    if (parked_there) {
      ++next_;
      last_vid_ = vid;
      return Choice{vid, d.action, 0};
    }
    // Divergence: skip the whole remaining log (mixed replay would only
    // compound the drift) and fall through to run-to-completion.
    ++divergences_;
    next_ = decisions_.size();
  }
  int vid = last_vid_;
  if (std::find(eligible.begin(), eligible.end(), vid) == eligible.end()) vid = eligible[0];
  last_vid_ = vid;
  (void)points;
  return Choice{vid, Action::kProceed, 0};
}

}  // namespace wstm::check
