// Concurrent history recording and the linearizability oracle.
//
// Workers record each set operation's invocation and response against a
// global sequence counter; the oracle then searches for a legal
// linearization (Wing & Gong's algorithm with the memoized state pruning of
// Lowe's "Testing for linearizability"): an order consistent with the
// real-time precedence of the recorded intervals in which every operation's
// observed results match the sequential set semantics, and which ends in the
// set contents observed at quiescence. Set states are memoized as one
// 64-bit membership mask (hence key_range <= 64), so a failed search prefix
// is never re-explored.
//
// The op vocabulary deliberately includes two composite operations — an
// atomic move(a, b) and an atomic pair-read(a, b) — because single-key ops
// rarely witness atomicity violations: a stale snapshot shows up as a
// pair-read observing states from two different moments.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace wstm::check {

enum class OpKind : std::uint8_t { kInsert, kRemove, kContains, kMove, kPairRead };

const char* op_kind_name(OpKind k) noexcept;

struct Op {
  OpKind kind = OpKind::kContains;
  int vid = 0;
  long a = 0;
  long b = 0;  // second key (move / pair-read only)
  /// Observed results. Single-key ops use r0. move: r0 = removed(a),
  /// r1 = inserted(b). pair-read: r0 = contains(a), r1 = contains(b).
  bool r0 = false;
  bool r1 = false;
  std::uint64_t invoke = 0;    // global sequence number at invocation
  std::uint64_t response = 0;  // global sequence number at response
  bool complete = false;
};

/// Thread-safe append-only history log. The mutex is uncontended under the
/// serialized executor (one runnable thread); it exists so the recorder
/// stays correct if the executor falls into free-run.
class HistoryRecorder {
 public:
  /// Records the invocation; returns the op's index for respond().
  std::size_t invoke(int vid, OpKind kind, long a, long b = 0);
  void respond(std::size_t index, bool r0, bool r1 = false);

  /// Quiescent-only.
  const std::vector<Op>& ops() const noexcept { return ops_; }
  std::vector<Op> take() noexcept;

 private:
  std::mutex mu_;
  std::vector<Op> ops_;
  std::uint64_t seq_ = 0;
};

struct LinearizabilityResult {
  bool ok = false;
  /// On success: op indices in linearization order (completed ops all
  /// appear; incomplete ops appear only if linearized).
  std::vector<std::size_t> witness;
  /// On failure: human-readable explanation of where the search got stuck.
  std::string diagnosis;
  std::size_t states_explored = 0;
};

/// Membership mask helper: bit k of the mask = key k is in the set.
std::uint64_t mask_of(const std::vector<long>& elements);

/// Checks the history against sequential set semantics. `initial` and
/// `final_state` are membership masks (mask_of of the pre/post contents);
/// key_range must be <= 64. A returned witness is additionally re-verified
/// op by op through structs::SequentialSet, so an oracle bug cannot
/// silently bless a bad history.
LinearizabilityResult check_linearizable(const std::vector<Op>& ops, std::uint64_t initial,
                                         std::uint64_t final_state, long key_range);

}  // namespace wstm::check
