// Schedules: the serializable record of one deterministic checker run.
//
// A schedule is (a) the full CheckConfig — workload shape, contention
// manager, read mode, seeds, fault probabilities, seeded bug — and (b) the
// decision log: for every scheduling step, which virtual thread was granted
// the token, at which protocol point it was parked, and which action it was
// told to take as it resumed. Because the executor serializes all workers
// and virtualizes the clock, (a) + (b) reproduce a run bit-identically:
// replaying the decision list yields the same transaction interleaving, the
// same history, and the same violations (see checker.hpp).
//
// The on-disk format is a compact line-oriented text file (schedules are a
// few KB; diffable repros beat opaque blobs):
//
//     wstm-schedule v1
//     # one "key value" config line per field
//     structure list
//     ...
//     g <vid> <point-letter> <action-letter>     # one line per decision
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/hooks.hpp"

namespace wstm::check {

/// One scheduling decision (see file comment).
struct Decision {
  std::uint16_t vid = 0;
  Point point = Point::kThreadStart;
  Action action = Action::kProceed;

  bool operator==(const Decision&) const = default;
};

/// Fault-injection probabilities, consulted by the exploration policies at
/// every grant. All default to 0 (pure schedule exploration).
struct FaultOptions {
  /// Spurious-abort probability at read/write/CAS/commit points.
  double p_abort = 0.0;
  /// Forced Locator-CAS failure probability at CAS points.
  double p_fail_cas = 0.0;
  /// Stalled-commit probability: park the thread at its commit point for
  /// `stall_steps` scheduling decisions while others run.
  double p_stall = 0.0;
  /// Stall probability at ANY protocol point (read/write/CAS/commit/begin),
  /// modelling a thread preempted mid-transaction rather than only at
  /// commit. Exercises the liveness layer's stall detection.
  double p_stall_any = 0.0;
  std::uint32_t stall_steps = 24;

  bool any() const noexcept {
    return p_abort > 0 || p_fail_cas > 0 || p_stall > 0 || p_stall_any > 0;
  }
};

/// Everything needed to rebuild a checker run from scratch. Serialized into
/// the schedule file so `wstm-check replay file` needs no other flags.
struct CheckConfig {
  std::string structure = "list";  // list | rbtree | skiplist | hashtable
  std::string cm = "Adaptive";
  unsigned threads = 3;
  unsigned ops_per_thread = 24;
  /// Keys are drawn from [0, key_range); must be <= 64 so the oracle can
  /// memoize set states as one 64-bit mask.
  long key_range = 16;
  bool visible_reads = true;
  /// Invisible-read snapshot-extension fast path (see
  /// stm::RuntimeConfig::snapshot_ext). On by default to match the runtime;
  /// serialized so a repro replays with the exact validation behavior, and
  /// togglable so explore can prove ext-on/ext-off histories coincide.
  bool snapshot_ext = true;
  /// Deferred commit clock (see stm::RuntimeConfig::deferred_clock). On by
  /// default to match the runtime; only effective with snapshot_ext and
  /// invisible reads. Serialized because deferred mode has an extra commit
  /// schedule point — a repro must replay with the same point stream.
  bool deferred_clock = true;
  bool prefill = true;
  /// Op mix: "default" = insert/remove/contains/move/pair-read,
  /// "insert-heavy" = insert/contains/pair-read only (no node retirement —
  /// used with memory-unsafe seeded bugs like blind-commit).
  std::string op_mix = "default";
  std::uint32_t update_percent = 50;
  /// Percent of ops that are composite (atomic move / pair-read, half
  /// each). Composite ops are what turn stale snapshots into oracle-visible
  /// atomicity violations.
  std::uint32_t pair_percent = 30;
  std::uint64_t seed = 42;  // workload op streams + runtime RNGs
  std::string strategy = "random";  // random | pct (replay ignores it)
  std::uint32_t pct_depth = 3;
  std::uint64_t max_steps = 0;  // scheduling-step budget; 0 = auto
  std::int64_t tick_ns = 1000;  // virtual-clock advance per decision
  std::uint32_t window_n = 8;   // small windows so variants roll over in-run
  /// Execution engine under test: dstm | orec (stm::RuntimeConfig::backend).
  /// Absent from pre-backend schedule files, which default here.
  std::string backend = "dstm";
  /// Conflict-arbitration mode: abort | wait (stm::RuntimeConfig::
  /// arbitration). Wait mode adds kPark/kUnpark schedule points, so a repro
  /// must replay with the same mode. Absent from pre-parking schedule
  /// files, which default here.
  std::string arbitration = "abort";
  /// Arm the resilience liveness layer (escalation ladder + irrevocable
  /// serial-fallback token) with checker-friendly settings: tight
  /// escalation thresholds, no real-time backoff sleeps, no watchdog
  /// thread, no deadline. Used to verify the single-token invariant under
  /// schedule exploration.
  bool liveness = false;
  FaultOptions faults;
  /// Seeded protocol bug to arm (stm::RuntimeConfig::DebugFaults):
  /// none | blind-commit | skip-reader-abort | skip-cas-recheck |
  /// stamp-no-pending | skip-read-validation (orec backend).
  std::string bug = "none";

  std::uint64_t effective_max_steps() const noexcept {
    if (max_steps > 0) return max_steps;
    return 5000 + static_cast<std::uint64_t>(threads) * ops_per_thread * 600;
  }
  /// PCT's a-priori estimate of the run length (k in the PCT paper).
  std::uint64_t estimated_steps() const noexcept {
    const std::uint64_t est = static_cast<std::uint64_t>(threads) * ops_per_thread * 48;
    return est < 1000 ? 1000 : est;
  }
};

struct Schedule {
  CheckConfig config;
  std::vector<Decision> decisions;

  std::size_t context_switches() const noexcept;
  std::size_t injected_faults() const noexcept;
};

std::string to_text(const Schedule& schedule);
/// Throws std::runtime_error on malformed input.
Schedule schedule_from_text(const std::string& text);

/// Returns false on I/O failure.
bool save_schedule(const std::string& path, const Schedule& schedule);
/// Throws std::runtime_error on I/O failure or malformed content.
Schedule load_schedule(const std::string& path);

}  // namespace wstm::check
