#include "harness/workload.hpp"

#include <algorithm>
#include <stdexcept>

#include "harness/kmeans.hpp"

namespace wstm::harness {

IntSetWorkload::IntSetWorkload(IntSetConfig config)
    : config_(std::move(config)), set_(structs::make_intset(config_.kind)) {
  if (config_.key_range <= 0) throw std::invalid_argument("key_range must be positive");
  if (config_.zipf_alpha > 0.0) {
    zipf_ = std::make_unique<ZipfSampler>(static_cast<std::uint64_t>(config_.key_range),
                                          config_.zipf_alpha);
  }
}

long IntSetWorkload::draw_key(Xoshiro256& rng) const {
  if (zipf_ != nullptr) return static_cast<long>(zipf_->sample(rng));
  return static_cast<long>(rng.below(static_cast<std::uint64_t>(config_.key_range)));
}

std::uint32_t IntSetWorkload::draw_op(Xoshiro256& rng) const {
  const std::uint64_t dice = rng.below(100);
  if (dice < config_.update_percent / 2) return 1;  // insert
  if (dice < config_.update_percent) return 2;      // remove
  return 0;                                         // contains
}

void IntSetWorkload::populate(stm::Runtime& rt, stm::ThreadCtx& tc) {
  if (!config_.prefill) return;
  // Every other key: deterministic initial size of range/2, which keeps the
  // insert/remove mix balanced in steady state.
  for (long key = 0; key < config_.key_range; key += 2) {
    rt.atomically(tc, [&](stm::Tx& tx) { set_->insert(tx, key); });
    ++initial_size_;
  }
}

void IntSetWorkload::run_one(stm::Runtime& rt, stm::ThreadCtx& tc, Xoshiro256& rng) {
  const std::uint32_t op = draw_op(rng);
  const long key = draw_key(rng);
  if (op == 1) {
    const bool inserted = rt.atomically(tc, [&](stm::Tx& tx) { return set_->insert(tx, key); });
    if (inserted) net_inserts_.fetch_add(1, std::memory_order_relaxed);
  } else if (op == 2) {
    const bool removed = rt.atomically(tc, [&](stm::Tx& tx) { return set_->remove(tx, key); });
    if (removed) net_inserts_.fetch_sub(1, std::memory_order_relaxed);
  } else {
    rt.atomically(tc, [&](stm::Tx& tx) { return set_->contains(tx, key); });
  }
}

serve::TxRequest IntSetWorkload::build_request(Xoshiro256& rng) {
  const std::uint32_t op = draw_op(rng);
  const long key = draw_key(rng);
  serve::TxRequest req;
  req.arg = (static_cast<std::uint64_t>(key) << 2) | op;
  req.key = static_cast<std::uint64_t>(key);
  req.ctx = this;
  req.fn = [](stm::Tx& tx, void* ctx, std::uint64_t arg) -> std::uint64_t {
    auto* self = static_cast<IntSetWorkload*>(ctx);
    const long k = static_cast<long>(arg >> 2);
    switch (arg & 3) {
      case 1: return self->set_->insert(tx, k) ? 1 : 0;
      case 2: return self->set_->remove(tx, k) ? 1 : 0;
      default: return self->set_->contains(tx, k) ? 1 : 0;
    }
  };
  // The worker runs this exactly once post-commit, so the net-inserts
  // ledger stays exact and validate() holds for served runs too.
  req.done = [](void* ctx, std::uint64_t arg, std::uint64_t result) {
    if (result == 0) return;
    auto* self = static_cast<IntSetWorkload*>(ctx);
    if ((arg & 3) == 1) self->net_inserts_.fetch_add(1, std::memory_order_relaxed);
    if ((arg & 3) == 2) self->net_inserts_.fetch_sub(1, std::memory_order_relaxed);
  };
  return req;
}

bool IntSetWorkload::validate(std::string* why) const {
  const auto elements = set_->quiescent_elements();
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  for (std::size_t i = 1; i < elements.size(); ++i) {
    if (elements[i - 1] >= elements[i]) {
      return fail("elements not strictly sorted at index " + std::to_string(i));
    }
  }
  const long expected = static_cast<long>(initial_size_) +
                        net_inserts_.load(std::memory_order_relaxed);
  if (static_cast<long>(elements.size()) != expected) {
    return fail("size " + std::to_string(elements.size()) + " != expected " +
                std::to_string(expected));
  }
  if (config_.kind == "rbtree") {
    const auto* tree = dynamic_cast<const structs::RBTreeSet*>(set_.get());
    std::string tree_why;
    if (tree != nullptr && !tree->map().quiescent_invariants_ok(&tree_why)) {
      return fail("rbtree invariants: " + tree_why);
    }
  }
  return true;
}

VacationWorkload::VacationWorkload(vacation::ClientConfig config)
    : client_(manager_, config) {}

void VacationWorkload::populate(stm::Runtime& rt, stm::ThreadCtx& tc) {
  client_.populate(rt, tc);
}

void VacationWorkload::run_one(stm::Runtime& rt, stm::ThreadCtx& tc, Xoshiro256& rng) {
  client_.run_one(rt, tc, rng);
}

bool VacationWorkload::validate(std::string* why) const {
  return manager_.quiescent_consistent(why);
}

std::unique_ptr<Workload> make_workload(const std::string& benchmark,
                                        std::uint32_t update_percent, long key_range,
                                        double zipf_alpha) {
  if (benchmark == "list" || benchmark == "rbtree" || benchmark == "skiplist" ||
      benchmark == "hashtable") {
    IntSetConfig cfg;
    cfg.kind = benchmark;
    cfg.key_range = key_range;
    cfg.update_percent = update_percent;
    cfg.zipf_alpha = zipf_alpha;
    return std::make_unique<IntSetWorkload>(cfg);
  }
  if (benchmark == "kmeans") {
    KMeansConfig cfg;
    // Map update_percent to write hotness: high update share = few clusters.
    cfg.clusters = update_percent >= 100 ? 4 : update_percent >= 60 ? 8 : 16;
    return std::make_unique<KMeansWorkload>(cfg);
  }
  if (benchmark == "vacation") {
    vacation::ClientConfig cfg = vacation::high_contention_config();
    // Map the paper's "percent update operations" onto the vacation mix:
    // more updates = fewer pure MakeReservation queries succeed as reads,
    // so scale the admin share with update_percent.
    cfg.user_percent = 100 - std::min<std::uint32_t>(80, update_percent * 2 / 5);
    return std::make_unique<VacationWorkload>(cfg);
  }
  throw std::invalid_argument("unknown benchmark: " + benchmark);
}

}  // namespace wstm::harness
