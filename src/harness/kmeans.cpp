#include "harness/kmeans.hpp"

#include <cmath>
#include <stdexcept>

namespace wstm::harness {

KMeansWorkload::KMeansWorkload(KMeansConfig config) : config_(config) {
  if (config_.dims == 0 || config_.dims > kMaxDims) {
    throw std::invalid_argument("kmeans dims must be in [1, 8]");
  }
  if (config_.clusters == 0) throw std::invalid_argument("kmeans needs at least one cluster");
  Xoshiro256 rng(config_.seed);
  points_.reserve(config_.points);
  for (std::uint32_t p = 0; p < config_.points; ++p) {
    std::vector<double> pt(config_.dims);
    for (auto& x : pt) x = rng.uniform01();
    points_.push_back(std::move(pt));
  }
}

void KMeansWorkload::populate(stm::Runtime& rt, stm::ThreadCtx& tc) {
  (void)rt, (void)tc;
  Xoshiro256 rng(config_.seed ^ 0xabcdefULL);
  clusters_.clear();
  for (std::uint32_t k = 0; k < config_.clusters; ++k) {
    Cluster c;
    for (std::uint32_t d = 0; d < config_.dims; ++d) c.center[d] = rng.uniform01();
    clusters_.push_back(std::make_unique<stm::TObject<Cluster>>(c));
  }
}

void KMeansWorkload::run_one(stm::Runtime& rt, stm::ThreadCtx& tc, Xoshiro256& rng) {
  const auto& point = points_[rng.below(points_.size())];
  rt.atomically(tc, [&](stm::Tx& tx) {
    // Read phase: nearest centroid over all K clusters.
    std::uint32_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::uint32_t k = 0; k < config_.clusters; ++k) {
      const Cluster* c = clusters_[k]->open_read(tx);
      double dist = 0.0;
      for (std::uint32_t d = 0; d < config_.dims; ++d) {
        const double delta = point[d] - c->center[d];
        dist += delta * delta;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = k;
      }
    }
    // Write phase: fold the point into the winner and refresh its center.
    Cluster* c = clusters_[best]->open_write(tx);
    c->count += 1;
    for (std::uint32_t d = 0; d < config_.dims; ++d) {
      c->sums[d] += point[d];
      c->center[d] = c->sums[d] / static_cast<double>(c->count);
    }
  });
  assignments_.fetch_add(1, std::memory_order_relaxed);
}

bool KMeansWorkload::validate(std::string* why) const {
  long total = 0;
  for (const auto& cluster : clusters_) {
    const Cluster* c = cluster->peek();
    if (c->count < 0) {
      if (why != nullptr) *why = "negative cluster count";
      return false;
    }
    for (std::uint32_t d = 0; d < config_.dims; ++d) {
      // Sums of points in [0,1) per dimension can never exceed the count.
      if (c->sums[d] < -1e-9 || c->sums[d] > static_cast<double>(c->count) + 1e-9) {
        if (why != nullptr) *why = "cluster sums out of range";
        return false;
      }
    }
    total += c->count;
  }
  const long expected = assignments_.load(std::memory_order_relaxed);
  if (total != expected) {
    if (why != nullptr) {
      *why = "assignment count " + std::to_string(total) + " != committed " +
             std::to_string(expected);
    }
    return false;
  }
  return true;
}

std::vector<double> KMeansWorkload::quiescent_centroid(std::uint32_t k) const {
  const Cluster* c = clusters_[k]->peek();
  std::vector<double> out(config_.dims);
  for (std::uint32_t d = 0; d < config_.dims; ++d) out[d] = c->center[d];
  return out;
}

}  // namespace wstm::harness
