#include "harness/open_loop.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "trace/recorder.hpp"
#include "trace/sink.hpp"
#include "util/affinity.hpp"
#include "util/stats.hpp"
#include "util/timing.hpp"

namespace wstm::harness {

namespace {

/// Hybrid wait until absolute time `when`: sleep for the bulk, spin the
/// last stretch so arrival timing stays tight at high rates.
void wait_until_ns(std::int64_t when) {
  for (;;) {
    const std::int64_t now = now_ns();
    if (now >= when) return;
    const std::int64_t left = when - now;
    if (left > 200'000) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(left - 100'000));
    } else {
      std::this_thread::yield();
    }
  }
}

}  // namespace

OpenLoopResult run_open_loop(const std::string& cm_name, cm::Params cm_params,
                             Workload& workload, const RunConfig& run,
                             const ServeConfig& serve) {
  if (!workload.open_loop_capable()) {
    throw std::invalid_argument("workload '" + workload.name() +
                                "' cannot run open-loop (no request support)");
  }
  if (serve.arrival_rate <= 0.0) throw std::invalid_argument("arrival_rate must be > 0");
  const unsigned producers = serve.producers == 0 ? 1 : serve.producers;

  cm_params.threads = run.threads;
  stm::RuntimeConfig rt_config;
  rt_config.seed = run.seed;
  rt_config.backend = stm::parse_backend(run.backend);
  rt_config.arbitration = stm::parse_arbitration(run.arbitration);
  cm_params.requester_waits = rt_config.arbitration == stm::ArbitrationMode::kWait;
  rt_config.visible_reads = run.visible_reads;
  rt_config.pooling = run.pooling;
  rt_config.snapshot_ext = run.snapshot_ext;
  rt_config.deferred_clock = run.deferred_clock;
  // Same auto rule as the closed-loop runner: on a host with fewer CPUs
  // than workers, emulate preemption so served transactions still overlap.
  rt_config.preempt_yield_permille =
      run.preempt_permille < 0
          ? (hardware_cpus() < run.threads ? 25 : 0)
          : static_cast<std::uint32_t>(run.preempt_permille);
  rt_config.liveness = run.liveness;
  rt_config.chaos = run.chaos;

  std::unique_ptr<trace::Recorder> recorder;
  if (!run.trace_path.empty()) {
    trace::Recorder::Options opts;
    const unsigned rings = run.threads + producers + 1;  // workers + producers + populate
    opts.threads = rings > stm::Runtime::kMaxThreads ? stm::Runtime::kMaxThreads : rings;
    opts.capacity_per_thread = run.trace_events_per_thread;
    recorder = std::make_unique<trace::Recorder>(opts);
    rt_config.recorder = recorder.get();
  }
  stm::Runtime rt(cm::make_manager(cm_name, cm_params), rt_config);

  {
    stm::ThreadCtx& main_tc = rt.attach_thread();
    workload.populate(rt, main_tc);
    rt.detach_thread(main_tc);
  }
  rt.reset_metrics();
  if (recorder) recorder->clear();

  LatencyReservoir latency(4096, run.seed);

  serve::ServerConfig server_config;
  server_config.n_workers = run.threads;
  server_config.n_queues = serve.n_queues;
  server_config.queue_capacity = serve.queue_capacity;
  server_config.backpressure = serve.backpressure;
  server_config.policy = serve.policy;
  server_config.seed = run.seed;
  server_config.worker.steal = serve.steal;
  server_config.worker.latency = &latency;
  server_config.worker.recorder = recorder.get();
  serve::TxServer server(rt, server_config);
  server.start();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> offered{0};
  const double rate_per_producer = serve.arrival_rate / producers;
  const std::int64_t deadline_rel_ns = serve.deadline_ms * 1'000'000;

  std::vector<std::thread> producer_threads;
  producer_threads.reserve(producers);
  const std::int64_t begin = now_ns();
  for (unsigned p = 0; p < producers; ++p) {
    producer_threads.emplace_back([&, p] {
      // A producer attaches only when tracing, to give kEnqueue a ring slot.
      unsigned slot = serve::TxServer::kNoProducerSlot;
      stm::ThreadCtx* tc = nullptr;
      if (recorder) {
        tc = &rt.attach_thread();
        slot = tc->slot();
      }
      Xoshiro256 rng(run.seed * 0x9e3779b97f4a7c15ULL + p + 0x0feed);
      std::int64_t next = begin;
      while (!stop.load(std::memory_order_acquire)) {
        // Exponential inter-arrival gap: memoryless Poisson stream. When
        // the producer falls behind schedule it submits immediately,
        // preserving the open-loop property that load does not slow down
        // because the system did.
        const double gap = -std::log(1.0 - rng.uniform01()) * 1e9 / rate_per_producer;
        next += static_cast<std::int64_t>(gap);
        if (next > now_ns()) wait_until_ns(next);
        serve::TxRequest req = workload.build_request(rng);
        if (deadline_rel_ns > 0) req.deadline_ns = now_ns() + deadline_rel_ns;
        offered.fetch_add(1, std::memory_order_relaxed);
        server.submit(req, slot);
      }
      if (tc != nullptr) rt.detach_thread(*tc);
    });
  }

  wait_until_ns(begin + run.duration_ms * 1'000'000);
  stop.store(true, std::memory_order_release);
  for (auto& t : producer_threads) t.join();
  const std::int64_t produce_window = now_ns() - begin;

  server.stop();  // closes queues; workers drain the backlog, then join
  const std::int64_t elapsed = now_ns() - begin;

  OpenLoopResult result;
  result.base.totals = rt.total_metrics();
  result.base.elapsed_ns = elapsed;
  result.base.summary = stm::summarize(result.base.totals, elapsed);
  result.base.p50_us = latency.percentile_ns(50) / 1e3;
  result.base.p95_us = latency.percentile_ns(95) / 1e3;
  result.base.p99_us = latency.percentile_ns(99) / 1e3;
  result.base.latency_count = latency.count();
  result.server = server.stats();
  result.offered = offered.load(std::memory_order_relaxed);
  result.expired = result.base.totals.serve_expired;
  result.deadline_misses = result.base.totals.serve_deadline_misses;
  result.cancelled = result.base.totals.serve_cancelled;
  const double window_s = ns_to_s(produce_window);
  const double elapsed_s = ns_to_s(elapsed);
  if (window_s > 0) {
    result.offered_per_s = static_cast<double>(result.offered) / window_s;
    result.accepted_per_s = static_cast<double>(result.server.accepted) / window_s;
  }
  if (elapsed_s > 0) {
    result.completed_per_s =
        static_cast<double>(result.base.totals.serve_completed) / elapsed_s;
  }

  if (run.validate) {
    std::string why;
    if (!workload.validate(&why)) {
      result.base.valid = false;
      result.base.why = why;
    }
  }
  if (recorder) {
    try {
      if (!trace::write_trace_file(run.trace_path, recorder->drain_sorted())) {
        throw std::runtime_error("cannot write trace file " + run.trace_path);
      }
    } catch (const std::exception& e) {
      result.base.valid = false;
      result.base.why = result.base.why.empty() ? e.what()
                                                : result.base.why + "; " + e.what();
    }
  }
  return result;
}

}  // namespace wstm::harness
