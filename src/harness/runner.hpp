// The experiment runner: executes a workload on M worker threads under a
// chosen contention manager and reports the paper's metrics.
//
// Two stop conditions cover all figures:
//  * timed run (`duration_ms`)           — Figs. 2, 3, 4 (throughput,
//    aborts/commit over a fixed wall-clock interval);
//  * fixed commit count (`fixed_commits`) — Fig. 5 (total time to commit
//    20 000 transactions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cm/registry.hpp"
#include "harness/workload.hpp"
#include "resilience/chaos.hpp"
#include "resilience/liveness.hpp"
#include "stm/metrics.hpp"

namespace wstm::harness {

struct RunConfig {
  std::uint32_t threads = 4;  // M
  std::int64_t duration_ms = 1000;
  /// When > 0, ignore duration and run until this many transactions
  /// committed across all threads.
  std::uint64_t fixed_commits = 0;
  std::uint64_t seed = 42;
  bool pin_threads = true;
  /// Validate the workload after the run (strongly recommended; adds a
  /// quiescent pass over the structure).
  bool validate = true;
  /// Preemption emulation (see stm::RuntimeConfig::preempt_yield_permille).
  /// -1 = auto: 25 permille when the host has fewer hardware threads than
  /// `threads`, otherwise 0.
  std::int32_t preempt_permille = -1;
  /// Read mode (see stm::RuntimeConfig::visible_reads). The paper used
  /// visible reads; invisible trades reader bitmaps for validation.
  bool visible_reads = true;
  /// Execution engine: "dstm" (eager locator protocol) or "orec" (lazy
  /// TL2-style redo logging). Parsed with stm::parse_backend; the CM layer
  /// is identical on both. See DESIGN.md §12.
  std::string backend = "dstm";
  /// Conflict arbitration: "abort" (losers retry immediately, the paper's
  /// baseline) or "wait" (requester-waits: losers park on the winner's
  /// descriptor until its status transition). Parsed with
  /// stm::parse_arbitration. See DESIGN.md §13.
  std::string arbitration = "abort";
  /// Recycle protocol metadata through per-thread pools (see
  /// stm::RuntimeConfig::pooling). Off reproduces the allocator-bound
  /// pre-pooling numbers for overhead comparisons.
  bool pooling = true;
  /// Invisible-read snapshot-extension fast path (see
  /// stm::RuntimeConfig::snapshot_ext). Off reproduces the
  /// validate-on-every-open O(R²) numbers for overhead comparisons;
  /// no effect with visible reads.
  bool snapshot_ext = true;
  /// GV5-style deferred commit clock (see stm::RuntimeConfig::deferred_clock
  /// and DESIGN.md §11). Off reproduces the eager one-fetch_add-per-commit
  /// shared line for A/B scaling comparisons; only effective with
  /// snapshot_ext and invisible reads.
  bool deferred_clock = true;
  /// When non-empty, record transaction events during the measured interval
  /// and write them here after the run: Chrome trace_event JSON if the path
  /// ends in ".json", the compact binary format otherwise (read it back
  /// with trace::read_binary or the wstm-trace CLI).
  std::string trace_path;
  /// Ring capacity per thread (rounded up to a power of two); when the ring
  /// overflows the oldest events are dropped.
  std::size_t trace_events_per_thread = std::size_t{1} << 16;
  /// Liveness layer (watchdog + escalation ladder + serial fallback); off
  /// by default, enabled by the --watchdog flag. See resilience/liveness.hpp.
  resilience::LivenessConfig liveness;
  /// Live fault injection; off by default, enabled by --chaos. See
  /// resilience/chaos.hpp.
  resilience::ChaosConfig chaos;
};

struct RunResult {
  stm::MetricsSummary summary;
  stm::ThreadMetrics totals;
  std::int64_t elapsed_ns = 0;
  /// Per-operation latency percentiles from a bounded-memory reservoir
  /// (util::LatencyReservoir): closed loop samples run_one wall time,
  /// open loop samples submit-to-completion sojourn. 0 without samples.
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  /// Operations offered to the reservoir (not just the ones retained).
  std::uint64_t latency_count = 0;
  bool valid = true;
  std::string why;
  /// One entry per worker thread that died on an exception (formatted
  /// "thread N: what"). Non-empty implies !valid.
  std::vector<std::string> thread_errors;
  /// Snapshot of the liveness manager's counters (token acquisitions,
  /// watchdog detections); all zero when the liveness layer was off.
  resilience::LivenessManager::Stats liveness_stats;
};

/// Builds a fresh Runtime with `cm_name` (threads taken from `run`),
/// populates `workload`, runs it, validates, and returns the metrics.
/// The measured interval excludes populate and teardown.
RunResult run_workload(const std::string& cm_name, cm::Params cm_params, Workload& workload,
                       const RunConfig& run);

/// Averages `repetitions` runs of the same configuration on fresh workload
/// instances built by `factory`. Metrics are averaged; `valid` is the
/// conjunction.
struct RepeatedResult {
  double mean_throughput = 0.0;
  double throughput_stddev = 0.0;
  double mean_aborts_per_commit = 0.0;
  double mean_elapsed_ms = 0.0;
  double mean_wasted_fraction = 0.0;
  double mean_response_us = 0.0;
  double mean_repeat_conflicts = 0.0;
  /// Means of the per-run reservoir percentiles (runner.cpp samples every
  /// run_one into a LatencyReservoir).
  double mean_p50_us = 0.0;
  double mean_p95_us = 0.0;
  double mean_p99_us = 0.0;
  bool valid = true;
  std::string why;
};

template <typename WorkloadFactory>
RepeatedResult run_repeated(const std::string& cm_name, cm::Params cm_params,
                            WorkloadFactory&& factory, const RunConfig& run,
                            unsigned repetitions);

}  // namespace wstm::harness

#include "harness/runner_impl.hpp"
