#include "harness/runner.hpp"

#include <atomic>
#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "trace/recorder.hpp"
#include "trace/sink.hpp"
#include "util/affinity.hpp"
#include "util/stats.hpp"
#include "util/timing.hpp"

namespace wstm::harness {

RunResult run_workload(const std::string& cm_name, cm::Params cm_params, Workload& workload,
                       const RunConfig& run) {
  cm_params.threads = run.threads;
  stm::RuntimeConfig rt_config;
  rt_config.seed = run.seed;
  rt_config.backend = stm::parse_backend(run.backend);
  rt_config.arbitration = stm::parse_arbitration(run.arbitration);
  cm_params.requester_waits = rt_config.arbitration == stm::ArbitrationMode::kWait;
  rt_config.visible_reads = run.visible_reads;
  rt_config.pooling = run.pooling;
  rt_config.snapshot_ext = run.snapshot_ext;
  rt_config.deferred_clock = run.deferred_clock;
  if (run.preempt_permille < 0) {
    rt_config.preempt_yield_permille = hardware_cpus() < run.threads ? 25 : 0;
  } else {
    rt_config.preempt_yield_permille = static_cast<std::uint32_t>(run.preempt_permille);
  }
  rt_config.liveness = run.liveness;
  rt_config.chaos = run.chaos;

  // The recorder outlives the Runtime (the config holds a raw pointer).
  std::unique_ptr<trace::Recorder> recorder;
  if (!run.trace_path.empty()) {
    trace::Recorder::Options opts;
    opts.threads = run.threads;
    opts.capacity_per_thread = run.trace_events_per_thread;
    recorder = std::make_unique<trace::Recorder>(opts);
    rt_config.recorder = recorder.get();
  }
  stm::Runtime rt(cm::make_manager(cm_name, cm_params), rt_config);

  {
    stm::ThreadCtx& main_tc = rt.attach_thread();
    workload.populate(rt, main_tc);
    rt.detach_thread(main_tc);
  }
  rt.reset_metrics();
  if (recorder) recorder->clear();  // populate is not part of the measured run

  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> committed{0};
  // Per-operation latency: every worker samples into one shared bounded
  // reservoir, so percentile reporting costs fixed memory however long the
  // run is (two clock reads + a fetch_add per operation).
  LatencyReservoir latency(4096, run.seed);

  // An exception escaping a worker used to std::terminate the whole
  // benchmark; instead each worker records its error here (slot i), the
  // cell fails with a readable report, and the other workers wind down.
  std::vector<std::string> worker_errors(run.threads);

  std::vector<std::thread> workers;
  workers.reserve(run.threads);
  for (std::uint32_t i = 0; i < run.threads; ++i) {
    workers.emplace_back([&, i] {
      if (run.pin_threads) pin_current_thread(i);
      stm::ThreadCtx& tc = rt.attach_thread();
      Xoshiro256 rng(run.seed * 0x9e3779b97f4a7c15ULL + i + 0xabcd);
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      try {
        while (!stop.load(std::memory_order_acquire)) {
          const std::int64_t op_begin = now_ns();
          workload.run_one(rt, tc, rng);
          latency.record(now_ns() - op_begin);
          // Relaxed: `committed` is a pure tally — nothing is published
          // through it (the RMW total order alone guarantees exactly the
          // fixed_commits-th increment crosses the threshold), and the
          // shutdown handshake is carried by the release store / acquire
          // loads on `stop`, not by this counter.
          if (run.fixed_commits > 0 &&
              committed.fetch_add(1, std::memory_order_relaxed) + 1 >= run.fixed_commits) {
            stop.store(true, std::memory_order_release);
          }
        }
      } catch (const resilience::TxTimeoutError& e) {
        worker_errors[i] = std::string("TxTimeoutError: ") + e.what();
      } catch (const std::exception& e) {
        worker_errors[i] = e.what();
      } catch (...) {
        worker_errors[i] = "unknown exception escaped the workload";
      }
      if (!worker_errors[i].empty()) stop.store(true, std::memory_order_release);
      // ThreadCtx stays attached so the runtime can aggregate its metrics;
      // Runtime teardown detaches it.
    });
  }

  const std::int64_t begin = now_ns();
  start.store(true, std::memory_order_release);
  if (run.fixed_commits == 0) {
    const std::int64_t deadline = begin + run.duration_ms * 1'000'000;
    while (now_ns() < deadline && !stop.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_release);
  }
  for (auto& w : workers) w.join();
  const std::int64_t elapsed = now_ns() - begin;

  RunResult result;
  result.totals = rt.total_metrics();
  result.elapsed_ns = elapsed;
  result.summary = stm::summarize(result.totals, elapsed);
  result.p50_us = latency.percentile_ns(50) / 1e3;
  result.p95_us = latency.percentile_ns(95) / 1e3;
  result.p99_us = latency.percentile_ns(99) / 1e3;
  result.latency_count = latency.count();
  if (const resilience::LivenessManager* lm = rt.liveness()) {
    result.liveness_stats = lm->stats();
  }
  for (std::uint32_t i = 0; i < run.threads; ++i) {
    if (worker_errors[i].empty()) continue;
    result.thread_errors.push_back("thread " + std::to_string(i) + ": " + worker_errors[i]);
  }
  if (!result.thread_errors.empty()) {
    result.valid = false;
    std::string report = std::to_string(result.thread_errors.size()) +
                         " worker thread(s) died on an exception";
    for (const std::string& e : result.thread_errors) report += "\n  " + e;
    result.why = report;
  }
  if (run.validate) {
    std::string why;
    if (!workload.validate(&why)) {
      result.valid = false;
      result.why = result.why.empty() ? why : result.why + "; " + why;
    }
  }
  if (recorder) {
    // Workers are joined, so drain_sorted() sees every ring quiescent.
    try {
      if (!trace::write_trace_file(run.trace_path, recorder->drain_sorted())) {
        throw std::runtime_error("cannot write trace file " + run.trace_path);
      }
    } catch (const std::exception& e) {
      result.valid = false;
      result.why = result.why.empty() ? e.what() : result.why + "; " + e.what();
    }
  }
  return result;
}

}  // namespace wstm::harness
