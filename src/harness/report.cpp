#include "harness/report.hpp"

#include <cstdio>
#include <ostream>

#include "trace/sink.hpp"
#include "util/table.hpp"

namespace wstm::harness {

std::string metric_name(Metric metric) {
  switch (metric) {
    case Metric::kThroughput:
      return "throughput (commits/s)";
    case Metric::kAbortsPerCommit:
      return "aborts per commit";
    case Metric::kElapsedMs:
      return "elapsed (ms)";
    case Metric::kWastedFraction:
      return "wasted-work fraction";
    case Metric::kResponseUs:
      return "mean response (us)";
    case Metric::kRepeatConflictsPerCommit:
      return "repeat conflicts per commit";
    case Metric::kP50Us:
      return "p50 latency (us)";
    case Metric::kP95Us:
      return "p95 latency (us)";
    case Metric::kP99Us:
      return "p99 latency (us)";
  }
  return "?";
}

void register_matrix_flags(Cli& cli, const std::string& default_benchmarks,
                           const std::string& default_cms, const std::string& default_threads,
                           std::int64_t default_ms, unsigned default_runs) {
  cli.add_flag("benchmarks", "comma-separated: list,rbtree,skiplist,vacation",
               default_benchmarks);
  cli.add_flag("cms", "comma-separated contention manager names", default_cms);
  cli.add_flag("threads", "comma-separated thread counts (M)", default_threads);
  cli.add_flag("ms", "measured milliseconds per run (paper: 10000)", default_ms);
  cli.add_flag("runs", "repetitions per point (paper: 6)",
               static_cast<std::int64_t>(default_runs));
  cli.add_flag("fixed-commits", "when > 0, run until this many commits instead of --ms",
               static_cast<std::int64_t>(0));
  cli.add_flag("key-range", "int-set key range", static_cast<std::int64_t>(256));
  cli.add_flag("update-percent", "percent of update transactions (int-set benchmarks)",
               static_cast<std::int64_t>(100));
  cli.add_flag("window-n", "window length N (paper: 50)", static_cast<std::int64_t>(50));
  cli.add_flag("frame-factor", "frame length factor phi", 1.0);
  cli.add_flag("frame-log-exp", "exponent e in ln(MN)^e for the frame length", 1.0);
  cli.add_flag("initial-c", "initial contention estimate C_i (0 = variant default)", 0.0);
  cli.add_flag("ci-alpha", "CI smoothing alpha (Adaptive-Improved)", 0.75);
  cli.add_flag("seed", "base RNG seed", static_cast<std::int64_t>(42));
  cli.add_flag("preempt-permille",
               "yield probability (permille) at each open, to emulate multicore "
               "interleaving on undersubscribed hosts; -1 = auto",
               static_cast<std::int64_t>(-1));
  cli.add_flag("backend", "execution engine: dstm (eager locator) | orec (lazy TL2-style)",
               std::string("dstm"));
  cli.add_flag("arbitration",
               "conflict arbitration: abort (losers retry immediately) | wait "
               "(requester-waits: losers park until the winner's status transition)",
               std::string("abort"));
  cli.add_flag("visible-reads", "visible (paper) vs invisible (validated) reads", true);
  cli.add_flag("pooling", "recycle TxDesc/Locator/clone blocks through thread pools", true);
  cli.add_flag("snapshot-ext",
               "commit-clock snapshot extension for invisible reads (off = validate "
               "the read set on every open)",
               true);
  cli.add_flag("deferred-clock",
               "GV5-style deferred commit clock: write-commits stamp clock+1 without "
               "bumping the shared line, which only moves on snapshot extension (off = "
               "eager fetch_add per commit; needs --snapshot-ext, invisible reads)",
               true);
  cli.add_flag("validate", "check structure invariants after each run", true);
  cli.add_flag("csv", "emit CSV instead of aligned tables", false);
  cli.add_flag("trace",
               "write per-cell event traces; .json = Chrome trace_event, else binary "
               "(a -<benchmark>-<cm>-M<threads> suffix is inserted per cell)",
               std::string{});
  cli.add_flag("trace-events", "trace ring capacity per thread",
               static_cast<std::int64_t>(1 << 16));
  cli.add_flag("watchdog",
               "enable the liveness layer: starvation watchdog + escalation ladder "
               "(backoff -> priority boost -> irrevocable serial fallback)",
               false);
  cli.add_flag("deadline-ms", "hard per-transaction deadline with --watchdog (0 = none)",
               static_cast<std::int64_t>(10'000));
  cli.add_flag("chaos",
               "inject live faults (thread stalls, spurious aborts, delayed commits, "
               "EBR pressure); implies nothing about --watchdog, combine them to "
               "exercise the escalation ladder",
               false);
  cli.add_flag("chaos-intensity", "scale factor for --chaos fault probabilities", 1.0);
  cli.add_flag("zipf-alpha",
               "Zipfian key skew for the int-set benchmarks (0 = uniform; serve "
               "experiments conventionally use 0.99)",
               0.0);
  cli.add_flag("serve",
               "open-loop mode: Poisson arrivals through the serving front-end "
               "(src/serve/) instead of closed-loop self-execution; --threads "
               "becomes the worker count",
               false);
  cli.add_flag("arrival-rate", "total offered load with --serve, requests/second", 100'000.0);
  cli.add_flag("policy",
               "admission policy with --serve: round-robin | key-hash | "
               "conflict-graph | window-frame",
               std::string("round-robin"));
  cli.add_flag("producers", "arrival-generator threads with --serve",
               static_cast<std::int64_t>(1));
  cli.add_flag("queues", "submit queues with --serve (0 = one per worker)",
               static_cast<std::int64_t>(0));
  cli.add_flag("queue-capacity", "bounded submit-queue capacity with --serve",
               static_cast<std::int64_t>(1024));
  cli.add_flag("serve-deadline-ms",
               "relative per-request deadline with --serve (0 = none); queued "
               "requests past it are shed",
               static_cast<std::int64_t>(0));
  cli.add_flag("steal", "idle serve workers steal from other queues", false);
  cli.add_flag("block",
               "full submit queue blocks the producer instead of shedding "
               "(turns --serve back into a coupled loop; off = reject)",
               false);
}

MatrixSpec matrix_from_cli(const Cli& cli) {
  MatrixSpec spec;
  spec.benchmarks = cli.get_string_list("benchmarks");
  spec.cms = cli.get_string_list("cms");
  spec.thread_counts = cli.get_int_list("threads");
  spec.base.duration_ms = cli.get_int("ms");
  spec.base.fixed_commits = static_cast<std::uint64_t>(cli.get_int("fixed-commits"));
  spec.base.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  spec.base.preempt_permille = static_cast<std::int32_t>(cli.get_int("preempt-permille"));
  spec.base.backend = cli.get_string("backend");
  spec.base.arbitration = cli.get_string("arbitration");
  spec.base.visible_reads = cli.get_bool("visible-reads");
  spec.base.pooling = cli.get_bool("pooling");
  spec.base.snapshot_ext = cli.get_bool("snapshot-ext");
  spec.base.deferred_clock = cli.get_bool("deferred-clock");
  spec.base.validate = cli.get_bool("validate");
  spec.repetitions = static_cast<unsigned>(cli.get_int("runs"));
  spec.key_range = cli.get_int("key-range");
  spec.update_percent = static_cast<std::uint32_t>(cli.get_int("update-percent"));
  spec.params.window_n = static_cast<std::uint32_t>(cli.get_int("window-n"));
  spec.params.frame_factor = cli.get_double("frame-factor");
  spec.params.frame_log_exponent = cli.get_double("frame-log-exp");
  spec.params.initial_c = cli.get_double("initial-c");
  spec.params.ci_alpha = cli.get_double("ci-alpha");
  spec.csv = cli.get_bool("csv");
  spec.base.trace_path = cli.get_string("trace");
  spec.base.trace_events_per_thread =
      static_cast<std::size_t>(cli.get_int("trace-events"));
  if (cli.get_bool("watchdog")) {
    spec.base.liveness.enabled = true;
    spec.base.liveness.deadline_ns = cli.get_int("deadline-ms") * 1'000'000;
  }
  if (cli.get_bool("chaos")) {
    spec.base.chaos = resilience::default_chaos(cli.get_double("chaos-intensity"));
  }
  spec.zipf_alpha = cli.get_double("zipf-alpha");
  spec.serve = cli.get_bool("serve");
  spec.serve_config.arrival_rate = cli.get_double("arrival-rate");
  spec.serve_config.policy = cli.get_string("policy");
  spec.serve_config.producers = static_cast<unsigned>(cli.get_int("producers"));
  spec.serve_config.n_queues = static_cast<unsigned>(cli.get_int("queues"));
  spec.serve_config.queue_capacity = static_cast<std::size_t>(cli.get_int("queue-capacity"));
  spec.serve_config.deadline_ms = cli.get_int("serve-deadline-ms");
  spec.serve_config.steal = cli.get_bool("steal");
  spec.serve_config.backpressure =
      cli.get_bool("block") ? serve::Backpressure::kBlock : serve::Backpressure::kReject;
  return spec;
}

namespace {

/// Serve-mode cell: averages open-loop runs into the RepeatedResult shape
/// the table printer already consumes. kThroughput maps to sustained
/// completions/s; the percentile metrics to sojourn percentiles.
RepeatedResult run_serve_repeated(const std::string& cm_name, const MatrixSpec& spec,
                                  const std::string& benchmark, const RunConfig& base) {
  RepeatedResult agg;
  RunningStats thr, aborts, elapsed_ms, wasted, response, repeats, p50, p95, p99;
  for (unsigned i = 0; i < spec.repetitions; ++i) {
    auto workload =
        make_workload(benchmark, spec.update_percent, spec.key_range, spec.zipf_alpha);
    RunConfig cfg = base;
    cfg.seed = base.seed + i * 7919;
    if (!base.trace_path.empty() && spec.repetitions > 1) {
      cfg.trace_path = trace::path_with_suffix(base.trace_path, "-r" + std::to_string(i));
    }
    const OpenLoopResult r = run_open_loop(cm_name, spec.params, *workload, cfg,
                                           spec.serve_config);
    thr.add(r.completed_per_s);
    aborts.add(r.base.summary.aborts_per_commit);
    elapsed_ms.add(static_cast<double>(r.base.elapsed_ns) / 1e6);
    wasted.add(r.base.summary.wasted_fraction);
    response.add(r.base.summary.mean_response_us);
    repeats.add(r.base.summary.repeat_conflicts_per_commit);
    p50.add(r.base.p50_us);
    p95.add(r.base.p95_us);
    p99.add(r.base.p99_us);
    if (!r.base.valid) {
      agg.valid = false;
      agg.why = r.base.why;
    }
  }
  agg.mean_throughput = thr.mean();
  agg.throughput_stddev = thr.stddev();
  agg.mean_aborts_per_commit = aborts.mean();
  agg.mean_elapsed_ms = elapsed_ms.mean();
  agg.mean_wasted_fraction = wasted.mean();
  agg.mean_response_us = response.mean();
  agg.mean_repeat_conflicts = repeats.mean();
  agg.mean_p50_us = p50.mean();
  agg.mean_p95_us = p95.mean();
  agg.mean_p99_us = p99.mean();
  return agg;
}

}  // namespace

bool run_matrix_and_print(const MatrixSpec& spec, Metric metric, std::ostream& out) {
  bool all_valid = true;
  for (const std::string& benchmark : spec.benchmarks) {
    std::vector<std::string> header{"CM \\ M"};
    for (const auto m : spec.thread_counts) header.push_back(std::to_string(m));
    Table table(header);

    for (const std::string& cm_name : spec.cms) {
      std::vector<std::string> row{cm_name};
      for (const auto m : spec.thread_counts) {
        RunConfig cfg = spec.base;
        cfg.threads = static_cast<std::uint32_t>(m);
        if (!spec.base.trace_path.empty()) {
          cfg.trace_path = trace::path_with_suffix(
              spec.base.trace_path,
              "-" + benchmark + "-" + cm_name + "-M" + std::to_string(m));
        }
        std::fprintf(stderr, "[%s] %s M=%lld ...\n", benchmark.c_str(), cm_name.c_str(),
                     static_cast<long long>(m));
        const RepeatedResult r =
            spec.serve
                ? run_serve_repeated(cm_name, spec, benchmark, cfg)
                : run_repeated(
                      cm_name, spec.params,
                      [&] {
                        return make_workload(benchmark, spec.update_percent, spec.key_range,
                                             spec.zipf_alpha);
                      },
                      cfg, spec.repetitions);
        if (!r.valid) {
          all_valid = false;
          std::fprintf(stderr, "VALIDATION FAILED [%s/%s/M=%lld]: %s\n", benchmark.c_str(),
                       cm_name.c_str(), static_cast<long long>(m), r.why.c_str());
        }
        double value = 0.0;
        int precision = 2;
        switch (metric) {
          case Metric::kThroughput:
            value = r.mean_throughput;
            precision = 0;
            break;
          case Metric::kAbortsPerCommit:
            value = r.mean_aborts_per_commit;
            precision = 3;
            break;
          case Metric::kElapsedMs:
            value = r.mean_elapsed_ms;
            precision = 1;
            break;
          case Metric::kWastedFraction:
            value = r.mean_wasted_fraction;
            precision = 4;
            break;
          case Metric::kResponseUs:
            value = r.mean_response_us;
            precision = 1;
            break;
          case Metric::kRepeatConflictsPerCommit:
            value = r.mean_repeat_conflicts;
            precision = 3;
            break;
          case Metric::kP50Us:
            value = r.mean_p50_us;
            precision = 1;
            break;
          case Metric::kP95Us:
            value = r.mean_p95_us;
            precision = 1;
            break;
          case Metric::kP99Us:
            value = r.mean_p99_us;
            precision = 1;
            break;
        }
        row.push_back(Table::num(value, precision));
      }
      table.add_row(std::move(row));
    }

    out << "# " << benchmark << " — " << metric_name(metric) << "\n"
        << (spec.csv ? table.to_csv() : table.to_text()) << "\n";
  }
  return all_valid;
}

}  // namespace wstm::harness
