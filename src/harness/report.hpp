// Shared experiment-matrix driver for the figure-reproduction benches:
// every bench binary is "sweep benchmarks × contention managers × thread
// counts, print one table per benchmark" with a different metric and CM
// set, so the sweep and the CLI plumbing live here.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cm/registry.hpp"
#include "harness/open_loop.hpp"
#include "harness/runner.hpp"
#include "util/cli.hpp"

namespace wstm::harness {

enum class Metric {
  kThroughput,      // commits per second (Figs. 2, 3); open loop: sustained completions/s
  kAbortsPerCommit, // Fig. 4
  kElapsedMs,       // Fig. 5 (fixed-commit runs)
  kWastedFraction,
  kResponseUs,
  kRepeatConflictsPerCommit,
  // Reservoir percentiles: per-operation wall time in the closed loop,
  // submit-to-completion sojourn in --serve mode.
  kP50Us,
  kP95Us,
  kP99Us,
};

std::string metric_name(Metric metric);

struct MatrixSpec {
  std::vector<std::string> benchmarks;
  std::vector<std::string> cms;
  std::vector<std::int64_t> thread_counts;
  RunConfig base;
  cm::Params params;
  unsigned repetitions = 1;
  std::uint32_t update_percent = 100;
  long key_range = 256;
  double zipf_alpha = 0.0;
  bool csv = false;
  /// Open-loop mode (--serve): each cell runs run_open_loop with
  /// `serve_config` instead of the closed-loop runner. The table's
  /// kThroughput becomes sustained completions/s and the percentile
  /// metrics become sojourn times.
  bool serve = false;
  ServeConfig serve_config;
};

/// Registers the flags shared by all figure benches (threads, seconds,
/// runs, key-range, update%, window knobs, csv, ...).
void register_matrix_flags(Cli& cli, const std::string& default_benchmarks,
                           const std::string& default_cms, const std::string& default_threads,
                           std::int64_t default_ms, unsigned default_runs);

/// Builds a spec from parsed flags.
MatrixSpec matrix_from_cli(const Cli& cli);

/// Runs the whole matrix and prints one table per benchmark to `out`
/// (columns = thread counts, rows = CMs). Progress notes go to stderr.
/// Returns false if any run failed validation.
bool run_matrix_and_print(const MatrixSpec& spec, Metric metric, std::ostream& out);

}  // namespace wstm::harness
