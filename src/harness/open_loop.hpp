// Open-loop experiment driver: Poisson arrivals served through TxServer.
//
// The closed-loop runner (runner.cpp) measures capacity — M threads retry
// as fast as they can, so offered load always equals completion rate. An
// open-loop run decouples them: producer threads submit requests at a fixed
// arrival rate regardless of how fast the system drains, which is how real
// traffic behaves and the only way to observe queueing delay, shed load,
// and the saturation point. Below saturation, completion rate tracks the
// arrival rate and latency is flat; past it, queues fill, the backpressure
// policy sheds requests, and p99 explodes — fig_serve_scaling sweeps the
// rate to chart exactly that transition per admission policy.
//
// Arrival gaps are exponential (rate λ split evenly over the producers),
// giving the memoryless bursts that distinguish an open-loop experiment
// from a metered closed loop.
#pragma once

#include <cstdint>
#include <string>

#include "harness/runner.hpp"
#include "serve/server.hpp"

namespace wstm::harness {

struct ServeConfig {
  /// Total arrival rate, requests/second, across all producers.
  double arrival_rate = 100'000.0;
  unsigned producers = 1;
  std::string policy = "round-robin";
  /// 0 = one queue per worker.
  unsigned n_queues = 0;
  std::size_t queue_capacity = 1024;
  /// Relative deadline per request; 0 = none. Queued requests past it are
  /// shed, completed ones past it count as misses.
  std::int64_t deadline_ms = 0;
  /// Full queue: shed (reject, the open-loop default — a blocked producer
  /// would turn the experiment back into a closed loop) or block.
  serve::Backpressure backpressure = serve::Backpressure::kReject;
  /// Idle workers steal from other queues (see worker_pool.hpp).
  bool steal = false;
};

struct OpenLoopResult {
  /// Metrics/validation/latency as in the closed loop; p50/p95/p99 are
  /// submit-to-completion sojourn times.
  RunResult base;
  serve::TxServer::Stats server;
  double offered_per_s = 0.0;    ///< submit() calls per second
  double accepted_per_s = 0.0;   ///< accepted into a queue per second
  double completed_per_s = 0.0;  ///< committed per second (sustained throughput)
  std::uint64_t offered = 0;
  std::uint64_t expired = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t cancelled = 0;
};

/// Open-loop counterpart of run_workload: builds the runtime (threads =
/// run.threads workers) and a TxServer with `serve.policy`, then drives it
/// with Poisson arrivals for run.duration_ms. The workload must be
/// open_loop_capable(); throws std::invalid_argument otherwise.
OpenLoopResult run_open_loop(const std::string& cm_name, cm::Params cm_params,
                             Workload& workload, const RunConfig& run, const ServeConfig& serve);

}  // namespace wstm::harness
