// Extension benchmark: a kmeans-style clustering workload (the paper's
// conclusion defers evaluation on STAMP's kmeans to future work; this is
// the transactional kernel of that application).
//
// Shared state: K cluster accumulators, each a TObject holding the member
// count and per-dimension coordinate sums. A transaction takes one random
// point, reads every centroid to find the nearest (a K-object read phase),
// then updates that cluster's accumulator (a single-object write). Small K
// concentrates writes on a few hot objects — a conflict profile distinct
// from the pointer-chasing int-set benchmarks: wide read sets, pointy
// write sets.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "harness/workload.hpp"

namespace wstm::harness {

struct KMeansConfig {
  std::uint32_t clusters = 8;     // K: fewer clusters = hotter writes
  std::uint32_t points = 2048;    // generated uniformly in [0,1)^dims
  std::uint32_t dims = 4;
  std::uint64_t seed = 9;
};

class KMeansWorkload final : public Workload {
 public:
  static constexpr std::uint32_t kMaxDims = 8;

  explicit KMeansWorkload(KMeansConfig config);

  std::string name() const override { return "kmeans"; }
  void populate(stm::Runtime& rt, stm::ThreadCtx& tc) override;
  void run_one(stm::Runtime& rt, stm::ThreadCtx& tc, Xoshiro256& rng) override;
  bool validate(std::string* why) const override;

  /// Current centroid estimate of cluster k (sums/count), for inspection.
  std::vector<double> quiescent_centroid(std::uint32_t k) const;

 private:
  struct Cluster {
    long count = 0;
    std::array<double, kMaxDims> sums{};
    std::array<double, kMaxDims> center{};
  };

  KMeansConfig config_;
  std::vector<std::vector<double>> points_;
  std::vector<std::unique_ptr<stm::TObject<Cluster>>> clusters_;
  std::atomic<long> assignments_{0};
};

}  // namespace wstm::harness
