// Benchmark workloads: the paper's four benchmarks behind one interface.
//
// A workload owns its shared data structure; the runner gives every worker
// thread its own RNG and calls run_one() in a loop. validate() is checked
// after the threads have joined — it is how the harness proves the STM
// preserved the structure's invariants under the measured contention.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "serve/request.hpp"
#include "stm/runtime.hpp"
#include "structs/intset.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"
#include "vacation/client.hpp"

namespace wstm::harness {

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  /// Fills the structure to its initial state (single-threaded).
  virtual void populate(stm::Runtime& rt, stm::ThreadCtx& tc) = 0;

  /// Executes one logical transaction.
  virtual void run_one(stm::Runtime& rt, stm::ThreadCtx& tc, Xoshiro256& rng) = 0;

  /// Quiescent consistency check; stores a diagnostic in `why` on failure.
  virtual bool validate(std::string* why) const = 0;

  // --- open-loop serving support (src/serve/, harness/open_loop.cpp) ---

  /// True when the workload can package its operations as TxRequests.
  virtual bool open_loop_capable() const { return false; }

  /// Builds one random operation as a request (fn/ctx/arg/key filled; the
  /// driver stamps enqueue/deadline). The request's ctx points into this
  /// workload, so it must not outlive it. Only valid when
  /// open_loop_capable(); the default returns an empty request.
  virtual serve::TxRequest build_request(Xoshiro256& rng) {
    (void)rng;
    return {};
  }
};

/// Int-set workload (List / RBTree / SkipList): update_percent of the
/// transactions are updates (half inserts, half removes) on uniform random
/// keys in [0, key_range); the rest are lookups. The paper's throughput
/// figures use 50/50 insert/delete (update_percent = 100); Fig. 5 sweeps
/// update_percent over {20, 60, 100}.
struct IntSetConfig {
  std::string kind = "list";  // list | rbtree | skiplist
  long key_range = 256;
  std::uint32_t update_percent = 100;
  /// Keys initially present (every other key, deterministic): range/2.
  bool prefill = true;
  /// Zipfian key skew (0 = uniform, the closed-loop default; the serve
  /// benchmarks use 0.99). Key 0 is the hottest rank — see util/zipf.hpp.
  double zipf_alpha = 0.0;
};

class IntSetWorkload final : public Workload {
 public:
  explicit IntSetWorkload(IntSetConfig config);

  std::string name() const override { return config_.kind; }
  void populate(stm::Runtime& rt, stm::ThreadCtx& tc) override;
  void run_one(stm::Runtime& rt, stm::ThreadCtx& tc, Xoshiro256& rng) override;
  bool validate(std::string* why) const override;

  bool open_loop_capable() const override { return true; }
  /// Request arg encodes (key << 2) | op; the conflict-key hint is the
  /// intset key, and the done hook maintains net_inserts_ so validate()
  /// works for served runs exactly as for closed-loop ones.
  serve::TxRequest build_request(Xoshiro256& rng) override;

  const structs::TxIntSet& set() const noexcept { return *set_; }

 private:
  /// Uniform or Zipfian per config_.zipf_alpha.
  long draw_key(Xoshiro256& rng) const;
  /// op for a mix dice roll: 1 = insert, 2 = remove, 0 = contains.
  std::uint32_t draw_op(Xoshiro256& rng) const;

  IntSetConfig config_;
  std::unique_ptr<structs::TxIntSet> set_;
  std::unique_ptr<ZipfSampler> zipf_;  // null when zipf_alpha == 0
  std::size_t initial_size_ = 0;
  std::atomic<long> net_inserts_{0};
};

/// Vacation workload wrapping the Manager + Client pair.
class VacationWorkload final : public Workload {
 public:
  explicit VacationWorkload(vacation::ClientConfig config = vacation::high_contention_config());

  std::string name() const override { return "vacation"; }
  void populate(stm::Runtime& rt, stm::ThreadCtx& tc) override;
  void run_one(stm::Runtime& rt, stm::ThreadCtx& tc, Xoshiro256& rng) override;
  bool validate(std::string* why) const override;

  const vacation::Manager& manager() const noexcept { return manager_; }

 private:
  vacation::Manager manager_;
  vacation::Client client_;
};

/// Factory by benchmark name: list | rbtree | skiplist | vacation (the
/// paper's four) | kmeans (extension, see harness/kmeans.hpp).
/// update_percent applies to the int-set benchmarks; for vacation it scales
/// the admin share of the mix, for kmeans the cluster-count hotness.
/// zipf_alpha skews the int-set key distribution (ignored elsewhere).
std::unique_ptr<Workload> make_workload(const std::string& benchmark,
                                        std::uint32_t update_percent = 100,
                                        long key_range = 256, double zipf_alpha = 0.0);

}  // namespace wstm::harness
