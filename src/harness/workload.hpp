// Benchmark workloads: the paper's four benchmarks behind one interface.
//
// A workload owns its shared data structure; the runner gives every worker
// thread its own RNG and calls run_one() in a loop. validate() is checked
// after the threads have joined — it is how the harness proves the STM
// preserved the structure's invariants under the measured contention.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "stm/runtime.hpp"
#include "structs/intset.hpp"
#include "util/rng.hpp"
#include "vacation/client.hpp"

namespace wstm::harness {

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  /// Fills the structure to its initial state (single-threaded).
  virtual void populate(stm::Runtime& rt, stm::ThreadCtx& tc) = 0;

  /// Executes one logical transaction.
  virtual void run_one(stm::Runtime& rt, stm::ThreadCtx& tc, Xoshiro256& rng) = 0;

  /// Quiescent consistency check; stores a diagnostic in `why` on failure.
  virtual bool validate(std::string* why) const = 0;
};

/// Int-set workload (List / RBTree / SkipList): update_percent of the
/// transactions are updates (half inserts, half removes) on uniform random
/// keys in [0, key_range); the rest are lookups. The paper's throughput
/// figures use 50/50 insert/delete (update_percent = 100); Fig. 5 sweeps
/// update_percent over {20, 60, 100}.
struct IntSetConfig {
  std::string kind = "list";  // list | rbtree | skiplist
  long key_range = 256;
  std::uint32_t update_percent = 100;
  /// Keys initially present (every other key, deterministic): range/2.
  bool prefill = true;
};

class IntSetWorkload final : public Workload {
 public:
  explicit IntSetWorkload(IntSetConfig config);

  std::string name() const override { return config_.kind; }
  void populate(stm::Runtime& rt, stm::ThreadCtx& tc) override;
  void run_one(stm::Runtime& rt, stm::ThreadCtx& tc, Xoshiro256& rng) override;
  bool validate(std::string* why) const override;

  const structs::TxIntSet& set() const noexcept { return *set_; }

 private:
  IntSetConfig config_;
  std::unique_ptr<structs::TxIntSet> set_;
  std::size_t initial_size_ = 0;
  std::atomic<long> net_inserts_{0};
};

/// Vacation workload wrapping the Manager + Client pair.
class VacationWorkload final : public Workload {
 public:
  explicit VacationWorkload(vacation::ClientConfig config = vacation::high_contention_config());

  std::string name() const override { return "vacation"; }
  void populate(stm::Runtime& rt, stm::ThreadCtx& tc) override;
  void run_one(stm::Runtime& rt, stm::ThreadCtx& tc, Xoshiro256& rng) override;
  bool validate(std::string* why) const override;

  const vacation::Manager& manager() const noexcept { return manager_; }

 private:
  vacation::Manager manager_;
  vacation::Client client_;
};

/// Factory by benchmark name: list | rbtree | skiplist | vacation (the
/// paper's four) | kmeans (extension, see harness/kmeans.hpp).
/// update_percent applies to the int-set benchmarks; for vacation it scales
/// the admin share of the mix, for kmeans the cluster-count hotness.
std::unique_ptr<Workload> make_workload(const std::string& benchmark,
                                        std::uint32_t update_percent = 100,
                                        long key_range = 256);

}  // namespace wstm::harness
