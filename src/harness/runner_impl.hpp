// Template implementation detail of harness/runner.hpp.
#pragma once

#include "trace/sink.hpp"
#include "util/stats.hpp"

namespace wstm::harness {

template <typename WorkloadFactory>
RepeatedResult run_repeated(const std::string& cm_name, cm::Params cm_params,
                            WorkloadFactory&& factory, const RunConfig& run,
                            unsigned repetitions) {
  RepeatedResult agg;
  RunningStats throughput;
  RunningStats aborts;
  RunningStats elapsed_ms;
  RunningStats wasted;
  RunningStats response;
  RunningStats repeats;
  RunningStats p50;
  RunningStats p95;
  RunningStats p99;
  for (unsigned i = 0; i < repetitions; ++i) {
    auto workload = factory();
    RunConfig cfg = run;
    cfg.seed = run.seed + i * 7919;
    if (!run.trace_path.empty() && repetitions > 1) {
      cfg.trace_path = trace::path_with_suffix(run.trace_path, "-r" + std::to_string(i));
    }
    const RunResult r = run_workload(cm_name, cm_params, *workload, cfg);
    throughput.add(r.summary.throughput_per_s);
    aborts.add(r.summary.aborts_per_commit);
    elapsed_ms.add(static_cast<double>(r.elapsed_ns) / 1e6);
    wasted.add(r.summary.wasted_fraction);
    response.add(r.summary.mean_response_us);
    repeats.add(r.summary.repeat_conflicts_per_commit);
    p50.add(r.p50_us);
    p95.add(r.p95_us);
    p99.add(r.p99_us);
    if (!r.valid) {
      agg.valid = false;
      agg.why = r.why;
    }
  }
  agg.mean_throughput = throughput.mean();
  agg.throughput_stddev = throughput.stddev();
  agg.mean_aborts_per_commit = aborts.mean();
  agg.mean_elapsed_ms = elapsed_ms.mean();
  agg.mean_wasted_fraction = wasted.mean();
  agg.mean_response_us = response.mean();
  agg.mean_repeat_conflicts = repeats.mean();
  agg.mean_p50_us = p50.mean();
  agg.mean_p95_us = p95.mean();
  agg.mean_p99_us = p99.mean();
  return agg;
}

}  // namespace wstm::harness
