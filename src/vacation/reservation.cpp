// Explicit instantiation of the reservation-table map, so every TU using
// the Manager shares one copy of the tree code for this value type.
#include "structs/rbtree.hpp"
#include "vacation/types.hpp"

namespace wstm::structs {
template class RBMapT<vacation::Reservation>;
}  // namespace wstm::structs
