#include "vacation/manager.hpp"

#include <array>
#include <map>

namespace wstm::vacation {

bool Manager::add_reservation(stm::Tx& tx, ReservationType type, long id, long num,
                              long price) {
  Table& t = table(type);
  Reservation* row = t.get_for_update(tx, id);
  if (row == nullptr) {
    if (num <= 0 || price < 0) return false;
    Reservation fresh;
    fresh.num_free = fresh.num_total = num;
    fresh.price = price;
    return t.insert(tx, id, fresh);
  }
  if (!row->add_capacity(num)) return false;
  if (price >= 0) row->price = price;
  if (row->num_total == 0) return t.erase(tx, id);
  return true;
}

bool Manager::add_customer(stm::Tx& tx, long customer_id) {
  return customers_.insert(tx, customer_id, CustomerData{});
}

std::optional<long> Manager::delete_customer(stm::Tx& tx, long customer_id) {
  std::optional<CustomerData> customer = customers_.get(tx, customer_id);
  if (!customer.has_value()) return std::nullopt;
  long bill = 0;
  for (const ReservationInfo& info : customer->reservations) {
    bill += info.price;
    Reservation* row = table(info.type).get_for_update(tx, info.id);
    // The row must exist while bookings reference it: add_reservation can
    // never retire used capacity.
    if (row != nullptr) row->cancel();
  }
  customers_.erase(tx, customer_id);
  return bill;
}

long Manager::query_free(stm::Tx& tx, ReservationType type, long id) {
  std::optional<Reservation> row = table(type).get(tx, id);
  return row.has_value() ? row->num_free : -1;
}

long Manager::query_price(stm::Tx& tx, ReservationType type, long id) {
  std::optional<Reservation> row = table(type).get(tx, id);
  return row.has_value() ? row->price : -1;
}

std::optional<long> Manager::query_customer_bill(stm::Tx& tx, long customer_id) {
  std::optional<CustomerData> customer = customers_.get(tx, customer_id);
  if (!customer.has_value()) return std::nullopt;
  return customer->total_bill();
}

bool Manager::reserve(stm::Tx& tx, ReservationType type, long customer_id, long id) {
  CustomerData* customer = customers_.get_for_update(tx, customer_id);
  if (customer == nullptr) return false;
  Reservation* row = table(type).get_for_update(tx, id);
  if (row == nullptr || !row->make()) return false;
  customer->reservations.push_back(ReservationInfo{type, id, row->price});
  return true;
}

bool Manager::cancel(stm::Tx& tx, ReservationType type, long customer_id, long id) {
  CustomerData* customer = customers_.get_for_update(tx, customer_id);
  if (customer == nullptr) return false;
  auto& list = customer->reservations;
  for (auto it = list.begin(); it != list.end(); ++it) {
    if (it->type == type && it->id == id) {
      Reservation* row = table(type).get_for_update(tx, id);
      if (row == nullptr || !row->cancel()) return false;
      list.erase(it);
      return true;
    }
  }
  return false;
}

bool Manager::quiescent_consistent(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };

  // Bookings held by customers, per (type, id).
  std::map<std::pair<int, long>, long> booked;
  for (const auto& [cid, customer] : customers_.quiescent_entries()) {
    for (const ReservationInfo& info : customer.reservations) {
      booked[{static_cast<int>(info.type), info.id}]++;
    }
  }

  for (int t = 0; t < kNumReservationTypes; ++t) {
    const auto type = static_cast<ReservationType>(t);
    std::string inv_why;
    if (!table(type).quiescent_invariants_ok(&inv_why)) {
      return fail("table " + std::to_string(t) + ": " + inv_why);
    }
    for (const auto& [id, row] : table(type).quiescent_entries()) {
      if (!row.invariant_ok()) {
        return fail("row invariant broken: type " + std::to_string(t) + " id " +
                    std::to_string(id));
      }
      const auto it = booked.find({t, id});
      const long held = it != booked.end() ? it->second : 0;
      if (row.num_used != held) {
        return fail("used/bookings mismatch: type " + std::to_string(t) + " id " +
                    std::to_string(id) + " used=" + std::to_string(row.num_used) +
                    " held=" + std::to_string(held));
      }
      if (it != booked.end()) booked.erase(it);
    }
  }
  if (!booked.empty()) return fail("customer holds a booking for a missing row");
  std::string cust_why;
  if (!customers_.quiescent_invariants_ok(&cust_why)) return fail("customers: " + cust_why);
  return true;
}

}  // namespace wstm::vacation
