// Vacation client: generates and executes the benchmark's transaction mix
// (after STAMP's client.c):
//
//   MakeReservation — query `queries_per_tx` random rows across the three
//     tables, remember the highest-priced row with free capacity per type,
//     then create the customer if needed and book those rows;
//   DeleteCustomer  — compute a random customer's bill and remove them,
//     releasing their bookings;
//   UpdateTables    — add or retire capacity on random rows.
//
// The paper's "high contention" configuration means many queries per
// transaction over a small id range with a high update share.
#pragma once

#include <cstdint>

#include "stm/runtime.hpp"
#include "util/rng.hpp"
#include "vacation/manager.hpp"

namespace wstm::vacation {

struct ClientConfig {
  long relations = 128;          // rows per table (and customer-id range)
  std::uint32_t query_percent = 60;   // share of the id range a tx may touch
  std::uint32_t queries_per_tx = 4;   // queries per MakeReservation / UpdateTables
  std::uint32_t user_percent = 80;    // share of MakeReservation actions; the
                                      // remainder splits evenly between
                                      // DeleteCustomer and UpdateTables
  std::uint64_t seed = 1;
};

/// The paper's high-contention setup: few rows, whole range queried, many
/// modifications per transaction.
ClientConfig high_contention_config();

class Client {
 public:
  Client(Manager& manager, ClientConfig config) : manager_(&manager), config_(config) {}

  /// Populates the tables and customers (run once, single-threaded,
  /// inside the given runtime).
  void populate(stm::Runtime& rt, stm::ThreadCtx& tc);

  enum class Action { kMakeReservation, kDeleteCustomer, kUpdateTables };

  /// Picks an action from the mix and runs it as one transaction.
  Action run_one(stm::Runtime& rt, stm::ThreadCtx& tc, Xoshiro256& rng);

  const ClientConfig& config() const noexcept { return config_; }

 private:
  long random_id(Xoshiro256& rng) const;

  void make_reservation(stm::Runtime& rt, stm::ThreadCtx& tc, Xoshiro256& rng);
  void delete_customer(stm::Runtime& rt, stm::ThreadCtx& tc, Xoshiro256& rng);
  void update_tables(stm::Runtime& rt, stm::ThreadCtx& tc, Xoshiro256& rng);

  Manager* manager_;
  ClientConfig config_;
};

}  // namespace wstm::vacation
