// Explicit instantiation of the customer-table map (value = CustomerData).
#include "structs/rbtree.hpp"
#include "vacation/types.hpp"

namespace wstm::structs {
template class RBMapT<vacation::CustomerData>;
}  // namespace wstm::structs
