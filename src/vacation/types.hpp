// Core data types of the Vacation benchmark: a travel-booking database with
// car/flight/room reservation tables and a customer table (after STAMP's
// vacation application, Cao Minh et al., IISWC'08).
#pragma once

#include <cstdint>
#include <vector>

namespace wstm::vacation {

enum class ReservationType : std::uint8_t { kCar = 0, kFlight = 1, kRoom = 2 };
inline constexpr int kNumReservationTypes = 3;

/// One row of a reservation table. Invariant: used + free == total,
/// all non-negative.
struct Reservation {
  long num_used = 0;
  long num_free = 0;
  long num_total = 0;
  long price = 0;

  bool invariant_ok() const noexcept {
    return num_used >= 0 && num_free >= 0 && num_total == num_used + num_free && price >= 0;
  }

  /// Adds (num > 0) or retires (num < 0) capacity. Fails — returning false,
  /// leaving the row unchanged — if it would retire seats that are in use.
  bool add_capacity(long num) noexcept {
    if (num_free + num < 0) return false;
    num_free += num;
    num_total += num;
    return true;
  }

  /// Books one unit; false when sold out.
  bool make() noexcept {
    if (num_free <= 0) return false;
    --num_free;
    ++num_used;
    return true;
  }

  /// Releases one booked unit; false when none are in use.
  bool cancel() noexcept {
    if (num_used <= 0) return false;
    ++num_free;
    --num_used;
    return true;
  }
};

/// A booking held by a customer.
struct ReservationInfo {
  ReservationType type = ReservationType::kCar;
  long id = 0;
  long price = 0;

  friend bool operator==(const ReservationInfo&, const ReservationInfo&) = default;
};

/// A customer row: the list of bookings. Copied on clone-on-write — the
/// list stays short (one entry per booked type per transaction).
struct CustomerData {
  std::vector<ReservationInfo> reservations;

  long total_bill() const noexcept {
    long sum = 0;
    for (const auto& r : reservations) sum += r.price;
    return sum;
  }
};

}  // namespace wstm::vacation
