#include "vacation/client.hpp"

#include <algorithm>
#include <array>

namespace wstm::vacation {

ClientConfig high_contention_config() {
  ClientConfig c;
  c.relations = 64;
  c.query_percent = 100;
  c.queries_per_tx = 8;
  c.user_percent = 60;  // 20% DeleteCustomer + 20% UpdateTables
  return c;
}

long Client::random_id(Xoshiro256& rng) const {
  const long range =
      std::max<long>(1, config_.relations * static_cast<long>(config_.query_percent) / 100);
  return static_cast<long>(rng.below(static_cast<std::uint64_t>(range)));
}

void Client::populate(stm::Runtime& rt, stm::ThreadCtx& tc) {
  Xoshiro256 rng(config_.seed);
  for (long id = 0; id < config_.relations; ++id) {
    const long num = 100 * (1 + static_cast<long>(rng.below(5)));
    for (int t = 0; t < kNumReservationTypes; ++t) {
      const long price = 50 + static_cast<long>(rng.below(5)) * 10;
      rt.atomically(tc, [&](stm::Tx& tx) {
        manager_->add_reservation(tx, static_cast<ReservationType>(t), id, num, price);
      });
    }
    rt.atomically(tc, [&](stm::Tx& tx) { manager_->add_customer(tx, id); });
  }
}

Client::Action Client::run_one(stm::Runtime& rt, stm::ThreadCtx& tc, Xoshiro256& rng) {
  const std::uint64_t r = rng.below(100);
  if (r < config_.user_percent) {
    make_reservation(rt, tc, rng);
    return Action::kMakeReservation;
  }
  const std::uint64_t rest = 100 - config_.user_percent;
  if (r < config_.user_percent + rest / 2) {
    delete_customer(rt, tc, rng);
    return Action::kDeleteCustomer;
  }
  update_tables(rt, tc, rng);
  return Action::kUpdateTables;
}

void Client::make_reservation(stm::Runtime& rt, stm::ThreadCtx& tc, Xoshiro256& rng) {
  // Draw the query plan outside the transaction (it must be identical
  // across retries so aborted attempts redo the same logical work).
  struct Query {
    ReservationType type;
    long id;
  };
  std::array<Query, 64> queries;
  const std::uint32_t n = std::min<std::uint32_t>(
      queries.size(), 1 + static_cast<std::uint32_t>(rng.below(config_.queries_per_tx)));
  for (std::uint32_t i = 0; i < n; ++i) {
    queries[i] = {static_cast<ReservationType>(rng.below(3)), random_id(rng)};
  }
  const long customer_id = random_id(rng);

  rt.atomically(tc, [&](stm::Tx& tx) {
    std::array<long, kNumReservationTypes> best_id{-1, -1, -1};
    std::array<long, kNumReservationTypes> best_price{-1, -1, -1};
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto t = static_cast<std::size_t>(queries[i].type);
      const long price = manager_->query_price(tx, queries[i].type, queries[i].id);
      if (price > best_price[t] &&
          manager_->query_free(tx, queries[i].type, queries[i].id) > 0) {
        best_price[t] = price;
        best_id[t] = queries[i].id;
      }
    }
    bool any = false;
    for (int t = 0; t < kNumReservationTypes; ++t) any = any || best_id[t] >= 0;
    if (!any) return;
    manager_->add_customer(tx, customer_id);  // ok if already present
    for (int t = 0; t < kNumReservationTypes; ++t) {
      if (best_id[t] >= 0) {
        manager_->reserve(tx, static_cast<ReservationType>(t), customer_id, best_id[t]);
      }
    }
  });
}

void Client::delete_customer(stm::Runtime& rt, stm::ThreadCtx& tc, Xoshiro256& rng) {
  const long customer_id = random_id(rng);
  rt.atomically(tc, [&](stm::Tx& tx) {
    const auto bill = manager_->query_customer_bill(tx, customer_id);
    if (bill.has_value()) manager_->delete_customer(tx, customer_id);
  });
}

void Client::update_tables(stm::Runtime& rt, stm::ThreadCtx& tc, Xoshiro256& rng) {
  struct Update {
    ReservationType type;
    long id;
    bool add;
    long price;
  };
  std::array<Update, 64> updates;
  const std::uint32_t n = std::min<std::uint32_t>(
      updates.size(), 1 + static_cast<std::uint32_t>(rng.below(config_.queries_per_tx)));
  for (std::uint32_t i = 0; i < n; ++i) {
    updates[i] = {static_cast<ReservationType>(rng.below(3)), random_id(rng),
                  rng.below(2) == 0, 50 + static_cast<long>(rng.below(5)) * 10};
  }
  rt.atomically(tc, [&](stm::Tx& tx) {
    for (std::uint32_t i = 0; i < n; ++i) {
      if (updates[i].add) {
        manager_->add_reservation(tx, updates[i].type, updates[i].id, 100, updates[i].price);
      } else {
        manager_->add_reservation(tx, updates[i].type, updates[i].id, -100, -1);
      }
    }
  });
}

}  // namespace wstm::vacation
