// The Vacation database manager: three reservation tables plus a customer
// table, all transactional red-black maps. Mirrors STAMP's manager.c —
// every method runs inside a caller transaction so a client action can
// compose several queries and reservations atomically.
#pragma once

#include <optional>
#include <string>

#include "structs/rbtree.hpp"
#include "vacation/types.hpp"

namespace wstm::structs {
extern template class RBMapT<vacation::Reservation>;
extern template class RBMapT<vacation::CustomerData>;
}  // namespace wstm::structs

namespace wstm::vacation {

class Manager {
 public:
  using Table = structs::RBMapT<Reservation>;
  using CustomerTable = structs::RBMapT<CustomerData>;

  /// Adds (num > 0) or retires (num < 0) capacity of row `id`; creates the
  /// row on first add, removes it when its total drops to zero. A price
  /// >= 0 also reprices the row. Returns false when the request is
  /// unsatisfiable (absent row, seats in use, bad arguments).
  bool add_reservation(stm::Tx& tx, ReservationType type, long id, long num, long price);

  bool add_customer(stm::Tx& tx, long customer_id);

  /// Cancels all of the customer's bookings and removes the customer.
  /// Returns the released bill, or nullopt if the customer is unknown.
  std::optional<long> delete_customer(stm::Tx& tx, long customer_id);

  /// -1 when the row does not exist (STAMP convention).
  long query_free(stm::Tx& tx, ReservationType type, long id);
  long query_price(stm::Tx& tx, ReservationType type, long id);
  /// Total bill of a customer, or nullopt if unknown.
  std::optional<long> query_customer_bill(stm::Tx& tx, long customer_id);

  /// Books one unit of row `id` for the customer; false when the customer
  /// or row is unknown or the row is sold out.
  bool reserve(stm::Tx& tx, ReservationType type, long customer_id, long id);

  /// Releases one booking (the inverse of reserve).
  bool cancel(stm::Tx& tx, ReservationType type, long customer_id, long id);

  /// Quiescent consistency check: every table row satisfies the Reservation
  /// invariant and the sum of customer bookings per row equals its
  /// num_used. On failure stores a diagnostic in `why`.
  bool quiescent_consistent(std::string* why = nullptr) const;

  Table& table(ReservationType type) noexcept {
    return tables_[static_cast<std::size_t>(type)];
  }
  const Table& table(ReservationType type) const noexcept {
    return tables_[static_cast<std::size_t>(type)];
  }
  CustomerTable& customers() noexcept { return customers_; }

 private:
  Table tables_[kNumReservationTypes];
  CustomerTable customers_;
};

}  // namespace wstm::vacation
