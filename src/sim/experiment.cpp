#include "sim/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace wstm::sim {

AveragedSim average_runs(const SimWindow& window, const ConflictGraph& graph,
                         const SchedulerOptions& options, unsigned repetitions,
                         std::uint64_t seed) {
  RunningStats makespan;
  RunningStats aborts;
  RunningStats throughput;
  for (unsigned i = 0; i < repetitions; ++i) {
    Xoshiro256 rng(seed + 0x9e3779b97f4a7c15ULL * (i + 1));
    const SimResult r = run_scheduler(window, graph, options, rng);
    makespan.add(static_cast<double>(r.makespan));
    aborts.add(r.aborts_per_commit());
    throughput.add(r.throughput());
  }
  AveragedSim out;
  out.makespan = makespan.mean();
  out.makespan_stddev = makespan.stddev();
  out.aborts_per_commit = aborts.mean();
  out.throughput = throughput.mean();
  return out;
}

double offline_bound(std::uint32_t m, std::uint32_t n, std::uint32_t c) {
  const double mn = std::max(2.0, static_cast<double>(m) * n);
  return static_cast<double>(c) + static_cast<double>(n) * std::log(mn);
}

double online_bound(std::uint32_t m, std::uint32_t n, std::uint32_t c) {
  const double mn = std::max(2.0, static_cast<double>(m) * n);
  const double log_mn = std::log(mn);
  return static_cast<double>(c) * log_mn + static_cast<double>(n) * log_mn * log_mn;
}

}  // namespace wstm::sim
