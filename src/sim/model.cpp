#include "sim/model.hpp"

#include <algorithm>

namespace wstm::sim {

namespace {

std::vector<std::uint32_t> draw_distinct(Xoshiro256& rng, std::uint32_t pool_base,
                                         std::uint32_t pool_size, std::uint32_t count) {
  count = std::min(count, pool_size);
  std::vector<std::uint32_t> out;
  out.reserve(count);
  while (out.size() < count) {
    const auto r = pool_base + static_cast<std::uint32_t>(rng.below(pool_size));
    if (std::find(out.begin(), out.end(), r) == out.end()) out.push_back(r);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

SimWindow make_random_window(std::uint32_t m, std::uint32_t n, std::uint32_t resources,
                             std::uint32_t accesses, std::uint64_t seed) {
  SimWindow w;
  w.m = m;
  w.n = n;
  w.num_resources = resources;
  w.txs.reserve(static_cast<std::size_t>(m) * n);
  Xoshiro256 rng(seed);
  for (std::uint32_t i = 0; i < m; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      w.txs.push_back(SimTransaction{i, j, draw_distinct(rng, 0, resources, accesses)});
    }
  }
  return w;
}

SimWindow make_columnar_window(std::uint32_t m, std::uint32_t n,
                               std::uint32_t resources_per_column, std::uint32_t accesses,
                               std::uint64_t seed) {
  SimWindow w;
  w.m = m;
  w.n = n;
  w.num_resources = resources_per_column * n;
  w.txs.reserve(static_cast<std::size_t>(m) * n);
  Xoshiro256 rng(seed);
  for (std::uint32_t i = 0; i < m; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      w.txs.push_back(SimTransaction{
          i, j, draw_distinct(rng, j * resources_per_column, resources_per_column, accesses)});
    }
  }
  return w;
}

}  // namespace wstm::sim
