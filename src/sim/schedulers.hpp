// Discrete-time schedulers over a SimWindow.
//
// All schedulers share one step engine: each virtual step, every thread's
// front transaction attempts to run; a greedy maximal independent set in
// priority order commits (τ = 1 step), everything that conflicted with a
// winner counts one abort and retries next step. Threads execute their N
// transactions serially, exactly as in the window model.
//
// Scheduler          priority key per front transaction
// ------------------ ----------------------------------------------------
// SimOffline         (π1 from frames, thread id)        — Algorithm 1 [36]
// SimOnline          (π1 from frames, random π2)        — Algorithm 2 [36]
// SimOneshotRR       (random π2)             — RandomizedRounds, no window
// SimGreedy          (first-issue timestamp) — Greedy-style oldest-first
//
// The frame-based schedulers support static frames (advance every Φ =
// frame_factor · ln(MN)^e steps) and dynamic frames (advance as soon as the
// current frame has drained — the paper's contraction/expansion).
#pragma once

#include <cstdint>
#include <string>

#include "sim/conflict_graph.hpp"
#include "sim/model.hpp"

namespace wstm::sim {

struct SimResult {
  std::uint64_t makespan = 0;  // steps until every transaction committed
  std::uint64_t aborts = 0;
  std::uint64_t commits = 0;

  double aborts_per_commit() const {
    return commits == 0 ? 0.0 : static_cast<double>(aborts) / static_cast<double>(commits);
  }
  /// Committed transactions per step — the virtual-time throughput.
  double throughput() const {
    return makespan == 0 ? 0.0 : static_cast<double>(commits) / static_cast<double>(makespan);
  }
};

struct SchedulerOptions {
  enum class Mode { kOffline, kOnline, kOneshotRR, kGreedyTimestamp };
  Mode mode = Mode::kOnline;
  bool dynamic_frames = false;
  double frame_factor = 1.0;
  double frame_log_exponent = 1.0;  // Offline theory: 1; Online theory: 2
  /// Override the per-thread contention estimate used for the delay draw;
  /// 0 = measure C_i from the conflict graph (the "known C_i" assumption).
  double c_override = 0.0;
};

std::string scheduler_name(const SchedulerOptions& options);

/// Runs the window to completion. `graph` must be the conflict graph of
/// `window`.
SimResult run_scheduler(const SimWindow& window, const ConflictGraph& graph,
                        const SchedulerOptions& options, Xoshiro256& rng);

}  // namespace wstm::sim
