#include "sim/conflict_graph.hpp"

#include <algorithm>
#include <numeric>

namespace wstm::sim {

ConflictGraph::ConflictGraph(const SimWindow& window) : n_(window.n) {
  const std::uint32_t total = window.total();
  adj_.resize(total);

  // Invert: resource -> transactions using it; then join all pairs.
  std::vector<std::vector<std::uint32_t>> users(window.num_resources);
  for (std::uint32_t t = 0; t < total; ++t) {
    for (const std::uint32_t r : window.txs[t].resources) users[r].push_back(t);
  }
  for (const auto& group : users) {
    for (std::size_t a = 0; a < group.size(); ++a) {
      for (std::size_t b = a + 1; b < group.size(); ++b) {
        adj_[group[a]].push_back(group[b]);
        adj_[group[b]].push_back(group[a]);
      }
    }
  }
  for (auto& nbrs : adj_) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
}

bool ConflictGraph::conflicts(std::uint32_t a, std::uint32_t b) const {
  const auto& nbrs = adj_[a];
  return std::binary_search(nbrs.begin(), nbrs.end(), b);
}

std::uint32_t ConflictGraph::max_degree() const {
  std::uint32_t best = 0;
  for (const auto& nbrs : adj_) best = std::max(best, static_cast<std::uint32_t>(nbrs.size()));
  return best;
}

std::uint32_t ConflictGraph::max_degree_of_thread(std::uint32_t thread) const {
  std::uint32_t best = 0;
  for (std::uint32_t j = 0; j < n_; ++j) {
    best = std::max(best, degree(thread * n_ + j));
  }
  return best;
}

std::uint32_t ConflictGraph::greedy_coloring(std::vector<std::uint32_t>* colors) const {
  const std::uint32_t total = size();
  std::vector<std::uint32_t> order(total);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) { return degree(a) > degree(b); });

  std::vector<std::uint32_t> color(total, UINT32_MAX);
  std::uint32_t num_colors = 0;
  std::vector<bool> used;
  for (const std::uint32_t v : order) {
    used.assign(num_colors + 1, false);
    for (const std::uint32_t w : adj_[v]) {
      if (color[w] != UINT32_MAX && color[w] <= num_colors) used[color[w]] = true;
    }
    std::uint32_t c = 0;
    while (c < used.size() && used[c]) ++c;
    color[v] = c;
    num_colors = std::max(num_colors, c + 1);
  }
  if (colors != nullptr) *colors = std::move(color);
  return num_colors;
}

}  // namespace wstm::sim
