// Conflict graph over a SimWindow: transactions are nodes, an edge joins
// any two that share a resource. C (the paper's contention measure) is the
// maximum degree; C_i the maximum degree among thread i's transactions.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/model.hpp"

namespace wstm::sim {

class ConflictGraph {
 public:
  explicit ConflictGraph(const SimWindow& window);

  /// Neighbors of the transaction at flat index `t` (= thread * n + index).
  const std::vector<std::uint32_t>& neighbors(std::uint32_t t) const { return adj_[t]; }

  bool conflicts(std::uint32_t a, std::uint32_t b) const;

  std::uint32_t degree(std::uint32_t t) const {
    return static_cast<std::uint32_t>(adj_[t].size());
  }
  /// C = max degree over the whole window.
  std::uint32_t max_degree() const;
  /// C_i = max degree among thread i's transactions.
  std::uint32_t max_degree_of_thread(std::uint32_t thread) const;

  std::uint32_t size() const { return static_cast<std::uint32_t>(adj_.size()); }

  /// Greedy coloring (largest-first); returns the number of colors — an
  /// upper bound on the optimal one-shot schedule length used by the
  /// coloring reduction the paper discusses.
  std::uint32_t greedy_coloring(std::vector<std::uint32_t>* colors = nullptr) const;

 private:
  std::uint32_t n_ = 0;  // txs per thread, to recover (thread, index)
  std::vector<std::vector<std::uint32_t>> adj_;
};

}  // namespace wstm::sim
