// Helpers shared by the simulator benches (theory validation and virtual-
// time scaling): repetition averaging and the paper's makespan bounds.
#pragma once

#include <cstdint>

#include "sim/schedulers.hpp"

namespace wstm::sim {

struct AveragedSim {
  double makespan = 0.0;
  double makespan_stddev = 0.0;
  double aborts_per_commit = 0.0;
  double throughput = 0.0;  // commits per virtual step
};

/// Runs the scheduler `repetitions` times with distinct RNG streams (the
/// window is fixed; the schedulers' random delays/priorities vary).
AveragedSim average_runs(const SimWindow& window, const ConflictGraph& graph,
                         const SchedulerOptions& options, unsigned repetitions,
                         std::uint64_t seed);

/// Theorem 2.1: makespan of Offline is O(τ (C + N log MN)), τ = 1 step.
double offline_bound(std::uint32_t m, std::uint32_t n, std::uint32_t c);
/// Theorem 2.3: makespan of Online is O(τ (C log MN + N log² MN)).
double online_bound(std::uint32_t m, std::uint32_t n, std::uint32_t c);

}  // namespace wstm::sim
