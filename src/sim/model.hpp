// Discrete-time model of the execution-window world of the paper's theory
// (Section II): an M × N window of unit-duration (τ = 1 step) transactions
// with explicit resource sets. The simulator complements the real STM
// benches in two ways:
//  * it can run the *Offline* algorithm, which needs the conflict graph and
//    was therefore not evaluated in the paper's DSTM2 experiments;
//  * it measures makespan in virtual steps, so the scaling shape over
//    M = 1..32 is exact even on a host with a single hardware thread.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace wstm::sim {

struct SimTransaction {
  std::uint32_t thread = 0;
  std::uint32_t index = 0;  // position j within the thread's window
  std::vector<std::uint32_t> resources;
};

struct SimWindow {
  std::uint32_t m = 0;  // threads
  std::uint32_t n = 0;  // transactions per thread
  std::uint32_t num_resources = 0;
  std::vector<SimTransaction> txs;  // row-major: tx(i, j) = txs[i * n + j]

  const SimTransaction& tx(std::uint32_t thread, std::uint32_t index) const {
    return txs[static_cast<std::size_t>(thread) * n + index];
  }
  std::uint32_t total() const { return m * n; }
};

/// Uniform workload: every transaction draws `accesses` distinct resources
/// from one global pool of `resources` — conflicts scattered everywhere.
SimWindow make_random_window(std::uint32_t m, std::uint32_t n, std::uint32_t resources,
                             std::uint32_t accesses, std::uint64_t seed);

/// Columnar workload (the favorable scenario the paper motivates: conflicts
/// frequent inside the same column, absent across columns): column j draws
/// from its private pool of `resources_per_column` resources.
SimWindow make_columnar_window(std::uint32_t m, std::uint32_t n,
                               std::uint32_t resources_per_column, std::uint32_t accesses,
                               std::uint64_t seed);

}  // namespace wstm::sim
