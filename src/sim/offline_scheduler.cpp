// The shared step engine for all discrete-time schedulers (see
// schedulers.hpp for the model).
#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "sim/schedulers.hpp"
#include "window/frame_clock.hpp"

namespace wstm::sim {

std::string scheduler_name(const SchedulerOptions& options) {
  using Mode = SchedulerOptions::Mode;
  switch (options.mode) {
    case Mode::kOffline:
      return options.dynamic_frames ? "Sim-Offline-Dynamic" : "Sim-Offline";
    case Mode::kOnline:
      return options.dynamic_frames ? "Sim-Online-Dynamic" : "Sim-Online";
    case Mode::kOneshotRR:
      return "Sim-OneshotRR";
    case Mode::kGreedyTimestamp:
      return "Sim-Greedy";
  }
  return "?";
}

SimResult run_scheduler(const SimWindow& window, const ConflictGraph& graph,
                        const SchedulerOptions& options, Xoshiro256& rng) {
  using Mode = SchedulerOptions::Mode;
  const std::uint32_t m = window.m;
  const std::uint32_t n = window.n;
  const bool frames = options.mode == Mode::kOffline || options.mode == Mode::kOnline;

  const double mn = std::max(2.0, static_cast<double>(m) * n);
  const double log_mn = std::log(mn);
  const auto phi = static_cast<std::uint64_t>(std::max(
      1.0, options.frame_factor * std::pow(log_mn, options.frame_log_exponent)));

  // Per-thread state.
  std::vector<std::uint32_t> next(m, 0);     // front index
  std::vector<std::uint64_t> q(m, 0);        // initial delay in frames
  std::vector<std::uint64_t> prio2(m, 0);    // RandomizedRounds priority
  std::vector<std::uint64_t> issue(m, 0);    // timestamp of the front tx
  if (frames) {
    for (std::uint32_t i = 0; i < m; ++i) {
      const double ci = options.c_override > 0.0
                            ? options.c_override
                            : std::max<double>(1.0, graph.max_degree_of_thread(i));
      const std::uint64_t alpha = window::delay_range_alpha(ci, m, n);
      q[i] = rng.below(alpha);
    }
  }
  for (std::uint32_t i = 0; i < m; ++i) prio2[i] = 1 + rng.below(m);

  SimResult result;
  std::uint64_t step = 0;
  std::uint64_t dyn_frame = 0;
  std::uint32_t done_threads = 0;

  std::vector<std::uint32_t> fronts;
  std::vector<std::uint32_t> selected;
  fronts.reserve(m);
  selected.reserve(m);

  while (done_threads < m) {
    // Current frame.
    std::uint64_t cur_frame = 0;
    if (frames) {
      if (options.dynamic_frames) {
        // Contraction/expansion: the frame is always the earliest one that
        // still has an uncommitted assigned transaction.
        std::uint64_t min_assigned = UINT64_MAX;
        for (std::uint32_t i = 0; i < m; ++i) {
          if (next[i] < n) min_assigned = std::min(min_assigned, q[i] + next[i]);
        }
        dyn_frame = std::max(dyn_frame, min_assigned);
        cur_frame = dyn_frame;
      } else {
        cur_frame = step / phi;
      }
    }

    // Gather fronts with their priority keys.
    fronts.clear();
    for (std::uint32_t i = 0; i < m; ++i) {
      if (next[i] < n) fronts.push_back(i);
    }
    auto key_less = [&](std::uint32_t a, std::uint32_t b) {
      auto pi1 = [&](std::uint32_t i) -> std::uint64_t {
        if (!frames) return 0;
        return q[i] + next[i] <= cur_frame ? 0 : 1;  // 0 = high priority
      };
      std::uint64_t ka1 = pi1(a), kb1 = pi1(b);
      if (ka1 != kb1) return ka1 < kb1;
      std::uint64_t ka2 = 0, kb2 = 0;
      switch (options.mode) {
        case Mode::kOffline:
          break;  // deterministic tie-break below
        case Mode::kOnline:
        case Mode::kOneshotRR:
          ka2 = prio2[a];
          kb2 = prio2[b];
          break;
        case Mode::kGreedyTimestamp:
          ka2 = issue[a];
          kb2 = issue[b];
          break;
      }
      if (ka2 != kb2) return ka2 < kb2;
      return a < b;
    };
    std::sort(fronts.begin(), fronts.end(), key_less);

    // Greedy maximal independent set in priority order.
    selected.clear();
    for (const std::uint32_t i : fronts) {
      const std::uint32_t t = i * n + next[i];
      bool blocked = false;
      for (const std::uint32_t s : selected) {
        if (graph.conflicts(t, s * n + next[s])) {
          blocked = true;
          break;
        }
      }
      if (!blocked) selected.push_back(i);
    }

    // Winners commit, everyone else aborted this step.
    for (const std::uint32_t i : fronts) {
      const bool won = std::find(selected.begin(), selected.end(), i) != selected.end();
      if (won) {
        ++result.commits;
        ++next[i];
        if (next[i] == n) ++done_threads;
        issue[i] = step + 1;
        prio2[i] = 1 + rng.below(m);
      } else {
        ++result.aborts;
        prio2[i] = 1 + rng.below(m);  // RandomizedRounds redraw after abort
      }
    }
    ++step;
  }
  result.makespan = step;
  return result;
}

}  // namespace wstm::sim
