// Liveness layer: starvation watchdog + serial-fallback token (mechanism).
//
// The *policy* — when a transaction climbs the escalation ladder
// (backoff -> CM priority boost -> irrevocable serial fallback -> hard
// timeout) — lives in Runtime (src/stm/runtime.cpp), which owns the
// attempt lifecycle. This file owns the shared *mechanism*:
//
//   - per-slot progress beacons, written by the owning worker thread and
//     scanned by the watchdog (each beacon on its own cache line);
//   - the single global irrevocable token (non-blocking acquire: a failed
//     CAS means "stay at the boost level this attempt", never "wait while
//     holding the scheduler" — blocking here would deadlock the serialized
//     deterministic executor);
//   - the watchdog thread itself, which flags abort storms and stalled
//     attempts and optionally kicks a stalled victim via a Runtime-provided
//     callback (the callback aborts the slot's current descriptor under an
//     EBR pin; the watchdog never dereferences TxDesc pointers itself).
//
// Everything here follows the null-pointer-toggle idiom from trace/check:
// when LivenessConfig::enabled is false, Runtime keeps a null
// LivenessManager* and the hot path pays one predictable branch.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "util/cacheline.hpp"

namespace wstm::resilience {

struct LivenessConfig {
  bool enabled = false;

  // Escalation ladder thresholds, in consecutive aborts of one logical
  // transaction. backoff_after <= boost_after <= serial_after.
  std::uint32_t backoff_after = 4;    ///< level 1: randomized exponential backoff
  std::uint32_t boost_after = 12;     ///< level 2: CM priority boost
  std::uint32_t serial_after = 24;    ///< level 3: try the irrevocable token

  // Backoff shape: sleep a uniform-random number of microseconds in
  // [0, min(backoff_base_us << excess, backoff_cap_us)]. base 0 disables
  // the sleep entirely (used by the deterministic checker).
  std::uint32_t backoff_base_us = 2;
  std::uint32_t backoff_cap_us = 500;

  /// Hard per-transaction deadline across attempts; 0 disables. On expiry
  /// the attempt unwinds and atomically() throws TxTimeoutError.
  std::int64_t deadline_ns = 10'000'000'000;

  /// Watchdog scan period; 0 disables the monitor thread (escalation and
  /// the token still work — they are driven by the worker threads).
  std::int64_t watchdog_period_ns = 5'000'000;

  /// An attempt with no schedule-point progress for this long is "stalled"
  /// (descheduled thread, runaway user code). 0 disables stall detection.
  std::int64_t stall_timeout_ns = 200'000'000;

  /// Consecutive aborts at which the watchdog flags an abort storm. This is
  /// observability (trace/metrics); the ladder thresholds above are the
  /// remediation and are usually tighter.
  std::uint32_t storm_threshold = 16;

  /// Kick (abort) stalled victims so their conflicts drain. Irrevocable
  /// holders are never kicked.
  bool kick_stalled = true;
};

class LivenessManager {
 public:
  static constexpr unsigned kMaxSlots = 64;

  // Beacon flag bits, set by the watchdog and collected by the owning
  // worker (take_flags) so the trace event lands in the owner's ring.
  static constexpr std::uint8_t kFlagStorm = 1;
  static constexpr std::uint8_t kFlagStall = 2;

  struct Stats {
    std::uint64_t token_acquisitions = 0;
    std::uint64_t max_token_holders = 0;      ///< must stay <= 1
    std::uint64_t token_overlap_violations = 0;  ///< must stay 0
    std::uint64_t storms_flagged = 0;
    std::uint64_t stalls_flagged = 0;
    std::uint64_t kicks = 0;
    std::uint64_t scans = 0;
  };

  explicit LivenessManager(const LivenessConfig& config) : config_(config) {}
  ~LivenessManager() { stop_watchdog(); }

  LivenessManager(const LivenessManager&) = delete;
  LivenessManager& operator=(const LivenessManager&) = delete;

  const LivenessConfig& config() const noexcept { return config_; }

  // ---- owner-side beacons (called by the slot's worker thread) ----------

  void note_attempt_begin(unsigned slot, std::int64_t now, std::int64_t first_begin,
                          std::uint32_t consecutive_aborts) noexcept {
    Beacon& b = *beacons_[slot];
    b.first_begin_ns.store(first_begin, std::memory_order_relaxed);
    b.last_progress_ns.store(now, std::memory_order_relaxed);
    b.consecutive_aborts.store(consecutive_aborts, std::memory_order_relaxed);
    b.in_attempt.store(1, std::memory_order_release);
  }

  /// Schedule-point progress (object opens). Keeps stall detection honest.
  void heartbeat(unsigned slot, std::int64_t now) noexcept {
    beacons_[slot]->last_progress_ns.store(now, std::memory_order_relaxed);
  }

  /// Marks the slot as parked in requester-waits arbitration (DESIGN.md
  /// §13): a parked thread is waiting, not stalled, so the watchdog must
  /// neither flag nor kick it — parks are bounded and the waker's unpark
  /// edge (or the slice timeout) is the progress signal. Owner-written.
  void set_parked(unsigned slot, bool parked) noexcept {
    beacons_[slot]->parked.store(parked ? 1 : 0, std::memory_order_release);
  }

  void note_attempt_end(unsigned slot, bool committed) noexcept {
    Beacon& b = *beacons_[slot];
    b.in_attempt.store(0, std::memory_order_release);
    // Progress happened, so any stall episode is over; a commit also ends
    // the storm episode. Re-arm the corresponding reported bits.
    std::uint8_t clear = kFlagStall;
    if (committed) clear |= kFlagStorm;
    b.reported.fetch_and(static_cast<std::uint8_t>(~clear), std::memory_order_relaxed);
  }

  /// Collects and clears watchdog detections for this slot, so the owning
  /// thread can record them into its own trace ring (rings are strictly
  /// single-writer). Returns a bitmask of kFlagStorm / kFlagStall.
  std::uint8_t take_flags(unsigned slot) noexcept {
    Beacon& b = *beacons_[slot];
    if (b.flags.load(std::memory_order_relaxed) == 0) return 0;
    return b.flags.exchange(0, std::memory_order_acq_rel);
  }

  // ---- irrevocable serial-fallback token --------------------------------

  /// Single global token; at most one holder. Non-blocking by design (see
  /// file comment). Counts acquisitions and tracks the observed maximum
  /// number of simultaneous holders as a live invariant check.
  bool try_acquire_token(unsigned slot) noexcept {
    int expected = -1;
    if (!token_owner_.compare_exchange_strong(expected, static_cast<int>(slot),
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
      return false;
    }
    const std::uint32_t holders = holders_.fetch_add(1, std::memory_order_acq_rel) + 1;
    std::uint64_t seen = max_holders_.load(std::memory_order_relaxed);
    while (holders > seen &&
           !max_holders_.compare_exchange_weak(seen, holders, std::memory_order_relaxed)) {
    }
    if (holders != 1) overlap_violations_.fetch_add(1, std::memory_order_relaxed);
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  void release_token(unsigned slot) noexcept {
    if (token_owner_.load(std::memory_order_acquire) != static_cast<int>(slot)) return;
    holders_.fetch_sub(1, std::memory_order_acq_rel);
    token_owner_.store(-1, std::memory_order_release);
  }

  /// Slot currently holding the token, or -1.
  int token_owner() const noexcept { return token_owner_.load(std::memory_order_acquire); }

  // ---- watchdog ---------------------------------------------------------

  /// `kicker(slot)` is invoked (from the watchdog thread) for stalled slots
  /// when config().kick_stalled; Runtime supplies a callback that aborts the
  /// slot's current descriptor under an EBR pin. No-op when the period is 0.
  void start_watchdog(std::function<void(unsigned)> kicker);
  void stop_watchdog();

  Stats stats() const noexcept {
    Stats s;
    s.token_acquisitions = acquisitions_.load(std::memory_order_relaxed);
    s.max_token_holders = max_holders_.load(std::memory_order_relaxed);
    s.token_overlap_violations = overlap_violations_.load(std::memory_order_relaxed);
    s.storms_flagged = storms_.load(std::memory_order_relaxed);
    s.stalls_flagged = stalls_.load(std::memory_order_relaxed);
    s.kicks = kicks_.load(std::memory_order_relaxed);
    s.scans = scans_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Beacon {
    std::atomic<std::int64_t> first_begin_ns{0};
    std::atomic<std::int64_t> last_progress_ns{0};
    std::atomic<std::uint32_t> consecutive_aborts{0};
    std::atomic<std::uint8_t> in_attempt{0};
    std::atomic<std::uint8_t> parked{0};    ///< parked-not-stalled (set_parked)
    std::atomic<std::uint8_t> flags{0};     ///< pending, owner collects via take_flags
    std::atomic<std::uint8_t> reported{0};  ///< episode already counted (re-armed on progress)
  };

  void scan_once(const std::function<void(unsigned)>& kicker);

  LivenessConfig config_;
  CacheAligned<Beacon> beacons_[kMaxSlots];

  std::atomic<int> token_owner_{-1};
  std::atomic<std::uint32_t> holders_{0};
  std::atomic<std::uint64_t> acquisitions_{0};
  std::atomic<std::uint64_t> max_holders_{0};
  std::atomic<std::uint64_t> overlap_violations_{0};

  std::atomic<std::uint64_t> storms_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> kicks_{0};
  std::atomic<std::uint64_t> scans_{0};

  std::thread watchdog_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
};

}  // namespace wstm::resilience
