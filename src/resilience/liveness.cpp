#include "resilience/liveness.hpp"

#include <chrono>
#include <utility>

#include "util/timing.hpp"

namespace wstm::resilience {

void LivenessManager::start_watchdog(std::function<void(unsigned)> kicker) {
  if (config_.watchdog_period_ns <= 0 || watchdog_.joinable()) return;
  stop_requested_ = false;
  watchdog_ = std::thread([this, kicker = std::move(kicker)] {
    std::unique_lock<std::mutex> lock(wake_mutex_);
    while (!stop_requested_) {
      wake_.wait_for(lock, std::chrono::nanoseconds(config_.watchdog_period_ns),
                     [this] { return stop_requested_; });
      if (stop_requested_) break;
      lock.unlock();
      scan_once(kicker);
      lock.lock();
    }
  });
}

void LivenessManager::stop_watchdog() {
  if (!watchdog_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_requested_ = true;
  }
  wake_.notify_all();
  watchdog_.join();
}

void LivenessManager::scan_once(const std::function<void(unsigned)>& kicker) {
  scans_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t now = now_ns();
  for (unsigned slot = 0; slot < kMaxSlots; ++slot) {
    Beacon& b = *beacons_[slot];
    if (b.in_attempt.load(std::memory_order_acquire) == 0) continue;

    // Abort storm: the slot's logical transaction keeps getting killed.
    // Counted once per episode (reported bit re-armed when the tx commits).
    if (config_.storm_threshold > 0 &&
        b.consecutive_aborts.load(std::memory_order_relaxed) >= config_.storm_threshold) {
      const std::uint8_t rep = b.reported.fetch_or(kFlagStorm, std::memory_order_relaxed);
      if ((rep & kFlagStorm) == 0) {
        storms_.fetch_add(1, std::memory_order_relaxed);
        b.flags.fetch_or(kFlagStorm, std::memory_order_release);
      }
    }

    // Stall: an attempt that has made no schedule-point progress for too
    // long (descheduled thread, long-running user code). Kick it so the
    // objects it holds open become available again; the victim retries.
    // A parked slot is waiting by design, not stalled: its wait is bounded
    // by the park slice and it heartbeats on wakeup, so skip it here.
    if (b.parked.load(std::memory_order_acquire) != 0) continue;
    if (config_.stall_timeout_ns > 0 &&
        now - b.last_progress_ns.load(std::memory_order_relaxed) >= config_.stall_timeout_ns) {
      const std::uint8_t rep = b.reported.fetch_or(kFlagStall, std::memory_order_relaxed);
      if ((rep & kFlagStall) == 0) {
        stalls_.fetch_add(1, std::memory_order_relaxed);
        b.flags.fetch_or(kFlagStall, std::memory_order_release);
        if (config_.kick_stalled && kicker) {
          kicks_.fetch_add(1, std::memory_order_relaxed);
          kicker(slot);
        }
      }
    }
  }
}

}  // namespace wstm::resilience
