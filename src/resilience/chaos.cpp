#include "resilience/chaos.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace wstm::resilience {

namespace {

void sleep_us(std::uint32_t us) {
  if (us == 0) {
    std::this_thread::yield();
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

double clamp01(double p) { return std::min(1.0, std::max(0.0, p)); }

}  // namespace

ChaosConfig default_chaos(double intensity) {
  ChaosConfig c;
  c.enabled = true;
  c.p_stall = clamp01(0.002 * intensity);
  c.stall_max_us = 200;
  c.p_abort = clamp01(0.01 * intensity);
  c.p_delay_commit = clamp01(0.01 * intensity);
  c.delay_max_us = 50;
  c.p_stall_dequeue = clamp01(0.005 * intensity);
  c.dequeue_stall_max_us = 500;
  c.ebr_pressure_every = 32;
  c.ebr_pressure_burst = 64;
  return c;
}

ChaosInjector::Injection ChaosInjector::at_open(Xoshiro256& rng) {
  Injection inj;
  if (config_.p_stall > 0 && rng.uniform01() < config_.p_stall) {
    inj.fault = Fault::kStall;
    inj.slept_us = config_.stall_max_us > 0 ? rng.below(config_.stall_max_us + 1) : 0;
    stalls_.fetch_add(1, std::memory_order_relaxed);
    sleep_us(inj.slept_us);
    return inj;
  }
  if (config_.p_abort > 0 && rng.uniform01() < config_.p_abort) {
    inj.fault = Fault::kSpuriousAbort;
    spurious_aborts_.fetch_add(1, std::memory_order_relaxed);
    return inj;
  }
  return inj;
}

ChaosInjector::Injection ChaosInjector::at_commit(Xoshiro256& rng, bool irrevocable) {
  Injection inj;
  if (config_.p_delay_commit > 0 && rng.uniform01() < config_.p_delay_commit) {
    inj.fault = Fault::kDelayCommit;
    inj.slept_us = config_.delay_max_us > 0 ? rng.below(config_.delay_max_us + 1) : 0;
    delayed_commits_.fetch_add(1, std::memory_order_relaxed);
    sleep_us(inj.slept_us);
    return inj;
  }
  if (!irrevocable && config_.p_abort > 0 && rng.uniform01() < config_.p_abort) {
    inj.fault = Fault::kSpuriousAbort;
    spurious_aborts_.fetch_add(1, std::memory_order_relaxed);
  }
  return inj;
}

ChaosInjector::Injection ChaosInjector::at_dequeue(Xoshiro256& rng) {
  Injection inj;
  if (config_.p_stall_dequeue > 0 && rng.uniform01() < config_.p_stall_dequeue) {
    inj.fault = Fault::kStallDequeue;
    inj.slept_us =
        config_.dequeue_stall_max_us > 0 ? rng.below(config_.dequeue_stall_max_us + 1) : 0;
    dequeue_stalls_.fetch_add(1, std::memory_order_relaxed);
    sleep_us(inj.slept_us);
  }
  return inj;
}

std::uint32_t ChaosInjector::ebr_pressure_due(unsigned slot) noexcept {
  if (config_.ebr_pressure_every == 0 || slot >= 64) return 0;
  if (++commit_count_[slot] % config_.ebr_pressure_every != 0) return 0;
  ebr_bursts_.fetch_add(1, std::memory_order_relaxed);
  return config_.ebr_pressure_burst;
}

}  // namespace wstm::resilience
