// Live chaos injection for the real multithreaded runtime.
//
// Unlike the deterministic checker's fault injector (src/check/policy.cpp),
// which perturbs a serialized virtual execution, this injector perturbs
// *real* concurrent runs: worker threads are stalled mid-transaction (a
// stand-in for OS descheduling), aborted spuriously, delayed between
// deciding to commit and publishing it, and subjected to EBR reclamation
// pressure. The point is to exercise the liveness layer and the CMs under
// the kind of adversarial timing a benchmark machine never produces on its
// own, while the harness asserts progress floors (tools/wstm-chaos).
//
// All randomness comes from the calling thread's runtime RNG, so a chaos
// run is as repeatable as any other seeded harness run modulo OS timing.
// Disabled (the default) it is a null pointer on Runtime — zero hot-path
// cost beyond one branch.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/rng.hpp"

namespace wstm::resilience {

struct ChaosConfig {
  bool enabled = false;

  double p_stall = 0.0;            ///< per-open chance to sleep the thread mid-tx
  std::uint32_t stall_max_us = 200;

  double p_abort = 0.0;            ///< per-open chance of a spurious self-abort

  double p_delay_commit = 0.0;     ///< per-commit chance to sleep before the status CAS
  std::uint32_t delay_max_us = 50;

  /// Per-dequeue chance that a serve worker (src/serve/worker_pool.cpp)
  /// stalls between pulling a request off its queue and starting the
  /// transaction — a stand-in for a descheduled worker, exercising the
  /// deadline path (requests age in the queue behind the stalled one).
  double p_stall_dequeue = 0.0;
  std::uint32_t dequeue_stall_max_us = 500;

  /// Every N commits per slot, retire a burst of dummy blocks through the
  /// thread's EBR handle to stress epoch advancement. 0 disables.
  std::uint32_t ebr_pressure_every = 0;
  std::uint32_t ebr_pressure_burst = 64;
};

/// Moderate all-faults-on profile used by --chaos. `intensity` scales the
/// probabilities (clamped to [0,1]); 1.0 is the CI default.
ChaosConfig default_chaos(double intensity = 1.0);

class ChaosInjector {
 public:
  enum class Fault : std::uint8_t {
    kNone = 0,
    kStall = 1,
    kSpuriousAbort = 2,
    kDelayCommit = 3,
    kEbrPressure = 4,
    kStallDequeue = 5,
  };

  struct Injection {
    Fault fault = Fault::kNone;
    std::uint32_t slept_us = 0;
  };

  struct Stats {
    std::uint64_t stalls = 0;
    std::uint64_t spurious_aborts = 0;
    std::uint64_t delayed_commits = 0;
    std::uint64_t ebr_bursts = 0;
    std::uint64_t dequeue_stalls = 0;
  };

  explicit ChaosInjector(const ChaosConfig& config) : config_(config) {}

  const ChaosConfig& config() const noexcept { return config_; }

  /// Rolled at every object open. Performs the stall sleep inline; a
  /// kSpuriousAbort result is acted on by the caller (Runtime skips it for
  /// irrevocable transactions — the token means "cannot be aborted").
  Injection at_open(Xoshiro256& rng);

  /// Rolled in finish_attempt_commit before the status CAS. The delay is
  /// slept inline; `irrevocable` suppresses the spurious-abort roll.
  Injection at_commit(Xoshiro256& rng, bool irrevocable);

  /// Commit-count-driven EBR pressure; returns the burst size to retire
  /// (0 = none this commit). Caller retires while still pinned.
  std::uint32_t ebr_pressure_due(unsigned slot) noexcept;

  /// Rolled by serve workers right after pulling a request off a queue.
  /// The stall is slept inline, outside any transaction.
  Injection at_dequeue(Xoshiro256& rng);

  Stats stats() const noexcept {
    Stats s;
    s.stalls = stalls_.load(std::memory_order_relaxed);
    s.spurious_aborts = spurious_aborts_.load(std::memory_order_relaxed);
    s.delayed_commits = delayed_commits_.load(std::memory_order_relaxed);
    s.ebr_bursts = ebr_bursts_.load(std::memory_order_relaxed);
    s.dequeue_stalls = dequeue_stalls_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  ChaosConfig config_;
  std::uint32_t commit_count_[64] = {};  // per-slot, owner-thread only
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> spurious_aborts_{0};
  std::atomic<std::uint64_t> delayed_commits_{0};
  std::atomic<std::uint64_t> ebr_bursts_{0};
  std::atomic<std::uint64_t> dequeue_stalls_{0};
};

}  // namespace wstm::resilience
