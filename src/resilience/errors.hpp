// Structured liveness errors surfaced out of Runtime::atomically().
//
// Both derive from std::runtime_error so harness code that only knows about
// std::exception still prints something readable, while resilience-aware
// callers (the benchmark runner, tools/wstm-chaos) can catch the concrete
// types and report slot/attempt context.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace wstm::resilience {

/// Thrown (instead of retrying forever) when a logical transaction has been
/// running — across all of its attempts — for longer than
/// LivenessConfig::deadline_ns. The transaction's side effects have been
/// rolled back; the operation simply did not happen.
class TxTimeoutError : public std::runtime_error {
 public:
  TxTimeoutError(unsigned slot, std::uint32_t consecutive_aborts, std::int64_t age_ns)
      : std::runtime_error("transaction deadline exceeded on thread slot " +
                           std::to_string(slot) + " after " +
                           std::to_string(consecutive_aborts) + " consecutive aborts (age " +
                           std::to_string(age_ns / 1000000) + " ms)"),
        slot_(slot),
        consecutive_aborts_(consecutive_aborts),
        age_ns_(age_ns) {}

  unsigned slot() const noexcept { return slot_; }
  std::uint32_t consecutive_aborts() const noexcept { return consecutive_aborts_; }
  std::int64_t age_ns() const noexcept { return age_ns_; }

 private:
  unsigned slot_;
  std::uint32_t consecutive_aborts_;
  std::int64_t age_ns_;
};

/// Thrown by Runtime::atomically() when a new attempt is started after
/// Runtime::shutdown() has been initiated. Workers should catch this and
/// exit their work loop; the transaction that threw did not run.
class RuntimeStoppedError : public std::runtime_error {
 public:
  explicit RuntimeStoppedError(unsigned slot)
      : std::runtime_error("runtime is shutting down; transaction refused on thread slot " +
                           std::to_string(slot)),
        slot_(slot) {}

  unsigned slot() const noexcept { return slot_; }

 private:
  unsigned slot_;
};

}  // namespace wstm::resilience
