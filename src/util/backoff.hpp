// Yielding exponential backoff.
//
// This host (like many CI containers) may have fewer hardware threads than
// benchmark threads, so a waiting transaction must let its enemy actually
// run: every backoff step beyond a short spin burst yields to the OS
// scheduler. Pure spinning would deadlock progress under oversubscription.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace wstm {

/// Exponential backoff: spin briefly, then yield, then sleep with
/// exponentially growing caps. Suitable for contention-manager WAIT
/// decisions and for the retry loop between transaction attempts.
class Backoff {
 public:
  explicit Backoff(std::uint32_t spin_limit = 64, std::uint32_t max_exponent = 16) noexcept
      : spin_limit_(spin_limit), max_exponent_(max_exponent) {}

  /// One backoff step; successive calls wait longer.
  void pause() noexcept {
    if (round_ < spin_limit_) {
      cpu_relax();
    } else if (round_ < spin_limit_ + 32) {
      std::this_thread::yield();
    } else {
      const std::uint32_t exp = round_ - spin_limit_ - 32;
      const std::uint32_t capped = exp > max_exponent_ ? max_exponent_ : exp;
      std::this_thread::sleep_for(std::chrono::nanoseconds(250ULL << capped));
    }
    ++round_;
  }

  void reset() noexcept { round_ = 0; }

  std::uint32_t rounds() const noexcept { return round_; }

  static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  }

 private:
  std::uint32_t spin_limit_;
  std::uint32_t max_exponent_;
  std::uint32_t round_ = 0;
};

/// Sleep for a bounded duration while yielding; used by contention managers
/// that grant an enemy a time slice (Polka, Polite). Returns early if
/// `done()` becomes true.
template <typename Predicate>
bool yield_until(std::chrono::nanoseconds budget, Predicate&& done) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::yield();
  }
  return done();
}

}  // namespace wstm
