// Monotonic time helpers. All durations in the library are nanoseconds as
// int64 ticks from std::chrono::steady_clock; this header centralizes the
// conversions so call sites stay readable.
//
// Deterministic checking (src/check/) virtualizes this clock: the
// serialized executor installs an atomic counter it advances by a fixed
// tick per scheduling decision, so every time-derived decision (Greedy /
// Timestamp ordering, window frame transitions, τ estimates) replays
// bit-identically. The disabled cost is one relaxed load of a never-written
// pointer plus a predicted branch per now_ns() call.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace wstm {

using Clock = std::chrono::steady_clock;
using Nanos = std::chrono::nanoseconds;

namespace detail {
/// Non-null ⇒ now_ns() reads this counter instead of the real clock.
inline std::atomic<const std::atomic<std::int64_t>*> g_virtual_now{nullptr};
}  // namespace detail

/// Installs (or, with nullptr, removes) a virtual clock. Only the
/// deterministic checker uses this; install before worker threads spawn and
/// remove after they join — concurrent runs with different clocks in one
/// process are not supported.
inline void set_virtual_clock(const std::atomic<std::int64_t>* clock) noexcept {
  detail::g_virtual_now.store(clock, std::memory_order_release);
}

/// Nanoseconds since an arbitrary (but fixed) epoch.
inline std::int64_t now_ns() noexcept {
  const std::atomic<std::int64_t>* v =
      detail::g_virtual_now.load(std::memory_order_relaxed);
  if (v != nullptr) [[unlikely]] {
    return v->load(std::memory_order_relaxed);
  }
  return std::chrono::duration_cast<Nanos>(Clock::now().time_since_epoch()).count();
}

inline double ns_to_ms(std::int64_t ns) noexcept { return static_cast<double>(ns) / 1e6; }
inline double ns_to_s(std::int64_t ns) noexcept { return static_cast<double>(ns) / 1e9; }

/// Scope timer accumulating elapsed nanoseconds into a sink on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::int64_t& sink) noexcept : sink_(sink), start_(now_ns()) {}
  ~ScopedTimer() { sink_ += now_ns() - start_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::int64_t& sink_;
  std::int64_t start_;
};

}  // namespace wstm
