// Monotonic time helpers. All durations in the library are nanoseconds as
// int64 ticks from std::chrono::steady_clock; this header centralizes the
// conversions so call sites stay readable.
#pragma once

#include <chrono>
#include <cstdint>

namespace wstm {

using Clock = std::chrono::steady_clock;
using Nanos = std::chrono::nanoseconds;

/// Nanoseconds since an arbitrary (but fixed) epoch.
inline std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<Nanos>(Clock::now().time_since_epoch()).count();
}

inline double ns_to_ms(std::int64_t ns) noexcept { return static_cast<double>(ns) / 1e6; }
inline double ns_to_s(std::int64_t ns) noexcept { return static_cast<double>(ns) / 1e9; }

/// Scope timer accumulating elapsed nanoseconds into a sink on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::int64_t& sink) noexcept : sink_(sink), start_(now_ns()) {}
  ~ScopedTimer() { sink_ += now_ns() - start_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::int64_t& sink_;
  std::int64_t start_;
};

}  // namespace wstm
