// Minimal command-line flag parser for the bench/example binaries.
//
// Supports --name=value, --name value, and boolean --name / --no-name.
// Unknown flags are an error (typos in experiment parameters must not
// silently run the wrong configuration).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wstm {

class Cli {
 public:
  /// Register flags before parse(). `help` is printed by usage().
  void add_flag(const std::string& name, const std::string& help, std::string default_value);
  void add_flag(const std::string& name, const std::string& help, std::int64_t default_value);
  void add_flag(const std::string& name, const std::string& help, double default_value);
  void add_flag(const std::string& name, const std::string& help, bool default_value);

  /// Parses argv. Returns false (after printing usage) on error or --help.
  bool parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Comma-separated integer list, e.g. --threads=1,2,4,8.
  std::vector<std::int64_t> get_int_list(const std::string& name) const;
  /// Comma-separated string list.
  std::vector<std::string> get_string_list(const std::string& name) const;

  std::string usage(const std::string& program) const;

 private:
  struct Flag {
    std::string help;
    std::string value;
    bool is_bool = false;
  };

  const Flag& flag_or_throw(const std::string& name) const;

  std::map<std::string, Flag> flags_;
};

}  // namespace wstm
