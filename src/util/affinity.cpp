#include "util/affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace wstm {

unsigned hardware_cpus() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

bool pin_current_thread(unsigned index) noexcept {
#if defined(__linux__)
  const unsigned cpus = hardware_cpus();
  if (cpus <= 1) return true;  // nothing to choose between
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(index % cpus, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)index;
  return false;
#endif
}

}  // namespace wstm
