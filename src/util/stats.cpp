#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace wstm {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_half_width() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (p <= 0) return samples.front();
  if (p >= 100) return samples.back();
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

double mean_of(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

double geomean_of(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double log_sum = 0.0;
  for (double s : samples) log_sum += std::log(s);
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

}  // namespace wstm
