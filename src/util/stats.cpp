#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace wstm {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_half_width() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

LatencyReservoir::LatencyReservoir(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity < 16 ? 16 : capacity),
      seed_(seed),
      slots_(std::make_unique<std::atomic<std::int64_t>[]>(capacity_)) {
  for (std::size_t i = 0; i < capacity_; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
}

void LatencyReservoir::record(std::int64_t value_ns) noexcept {
  const std::uint64_t n = n_.fetch_add(1, std::memory_order_relaxed);
  if (n < capacity_) {
    slots_[n].store(value_ns, std::memory_order_relaxed);
    return;
  }
  // Algorithm R: keep with probability capacity/(n+1), replacing a uniform
  // slot. The "coin" is splitmix64 over the admission number, so the
  // decision sequence is deterministic per seed.
  std::uint64_t s = n ^ seed_;
  const std::uint64_t j = splitmix64(s) % (n + 1);
  if (j < capacity_) {
    slots_[j].store(value_ns, std::memory_order_relaxed);
  }
}

std::vector<double> LatencyReservoir::samples() const {
  const std::uint64_t n = n_.load(std::memory_order_relaxed);
  const std::size_t held = n < capacity_ ? static_cast<std::size_t>(n) : capacity_;
  std::vector<double> out;
  out.reserve(held);
  for (std::size_t i = 0; i < held; ++i) {
    out.push_back(static_cast<double>(slots_[i].load(std::memory_order_relaxed)));
  }
  return out;
}

double LatencyReservoir::percentile_ns(double p) const { return percentile(samples(), p); }

void LatencyReservoir::reset() noexcept {
  n_.store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < capacity_; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (p <= 0) return samples.front();
  if (p >= 100) return samples.back();
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

double mean_of(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

double geomean_of(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double log_sum = 0.0;
  for (double s : samples) log_sum += std::log(s);
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

}  // namespace wstm
