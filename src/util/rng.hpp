// Small, fast pseudo-random number generators.
//
// Benchmarks and the window algorithms draw random numbers on the hot path
// (random priorities are redrawn after every abort), so we use xoshiro256**
// seeded through splitmix64 instead of std::mt19937 — same statistical
// quality for this purpose at a fraction of the state and cost, and fully
// deterministic across platforms for reproducible experiments.
#pragma once

#include <cstdint>

namespace wstm {

/// splitmix64: used to expand a single seed into generator state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (the public-domain reference constants).
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) word = splitmix64(seed);
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept {
    __uint128_t m = static_cast<__uint128_t>(operator()()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        m = static_cast<__uint128_t>(operator()()) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace wstm
