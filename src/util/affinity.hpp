// Thread-affinity helper. On multi-core hosts pinning benchmark threads
// round-robin to cores reduces run-to-run variance; on single-core hosts it
// is a no-op. Failures are ignored on purpose (containers often forbid
// sched_setaffinity).
#pragma once

#include <cstdint>

namespace wstm {

/// Number of CPUs visible to this process.
unsigned hardware_cpus() noexcept;

/// Pin the calling thread to cpu `index % hardware_cpus()`.
/// Returns true on success; false is non-fatal.
bool pin_current_thread(unsigned index) noexcept;

}  // namespace wstm
