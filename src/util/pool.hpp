// Thread-local slab/freelist pools for protocol metadata.
//
// The DSTM hot path creates and destroys three short-lived objects per write
// (TxDesc, Locator, payload clone) plus EBR retire-list chunks. Routing them
// through the global allocator serializes every thread on the malloc arena
// locks at exactly the thread counts the figures sweep; these pools make the
// steady-state attempt allocation-free instead.
//
// Layout: every allocation is a *headered block* — one cache line of header
// followed by the 64-byte-aligned payload. The header names the owning pool
// and the size class, so `Pool::deallocate(payload)` works from any thread
// and any context (EBR deleters, destructors) without carrying a pool
// pointer around:
//
//   * freeing thread == owning thread  → plain push onto the pool's intrusive
//     per-class free list (no atomics);
//   * any other thread                 → CAS-push onto the pool's lock-free
//     remote-free (Treiber) stack, drained wholesale by the owner on its next
//     free-list miss (push-only + exchange(nullptr) pop ⇒ no ABA);
//   * owner == nullptr                 → the block came straight from
//     ::operator new (pool-less call sites, oversize payloads); freed there.
//
// Lifetime: pools are owned by a process-wide registry and are only ever
// *parked* (returned for reuse by the next attaching thread), never deleted
// until process exit. Blocks may therefore safely outlive the Runtime and
// the thread that allocated them — a committed version clone lives inside a
// TObject until the structure drops it, long after the cloning transaction's
// thread detached. The one rule this leaves: transactional objects must not
// have static storage duration (their destructor could then run after the
// registry's).
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

#include "util/cacheline.hpp"

namespace wstm::util {

class Pool {
 public:
  /// Alignment of every payload (and of the header line before it).
  static constexpr std::size_t kBlockAlign = kCacheLine;
  /// One cache line of header precedes each payload.
  static constexpr std::size_t kHeaderSize = kCacheLine;
  /// Size classes: 64, 128, 256, 512, 1024, 2048, 4096 bytes.
  static constexpr std::size_t kMinBlock = 64;
  static constexpr std::size_t kMaxBlock = 4096;
  static constexpr unsigned kNumClasses = 7;
  /// Carve granularity for fresh slabs.
  static constexpr std::size_t kSlabBytes = std::size_t{1} << 16;

  Pool() = default;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;
  ~Pool() {
    for (void* slab : slabs_) ::operator delete(slab, std::align_val_t{kBlockAlign});
  }

  /// Allocates `size` bytes, kBlockAlign-aligned. With a pool and a size
  /// within kMaxBlock this recycles through the pool's free lists; with
  /// `pool == nullptr` (or oversize) it is a headered pass-through to the
  /// global allocator. Either way the result is freed with deallocate().
  static void* allocate(Pool* pool, std::size_t size) {
    if (pool == nullptr || size > kMaxBlock) return direct_allocate(size);
    return pool->allocate_local(size);
  }

  /// Returns a block from allocate() to wherever it came from. Callable from
  /// any thread; only the owning thread's frees are atomics-free.
  static void deallocate(void* payload) noexcept {
    Header* h = header_of(payload);
    assert(h->magic == kMagic);
    Pool* owner = h->owner;
    if (owner == nullptr) {
      ::operator delete(h, std::align_val_t{kBlockAlign});
      return;
    }
    if (owner->owner_key_.load(std::memory_order_relaxed) == this_thread_key()) {
      h->next = owner->free_[h->size_class];
      owner->free_[h->size_class] = h;
      return;
    }
    owner->remote_frees_.fetch_add(1, std::memory_order_relaxed);
    Header* head = owner->remote_head_->load(std::memory_order_relaxed);
    do {
      h->next = head;
    } while (!owner->remote_head_->compare_exchange_weak(head, h, std::memory_order_release,
                                                         std::memory_order_relaxed));
  }

  /// Adopts a parked pool (or creates one) for the calling thread. Only the
  /// adopting thread may call allocate() on it until it is parked again.
  static Pool* acquire();

  /// Returns a pool to the registry for reuse. The pool's blocks stay valid;
  /// subsequent deallocate() calls route through the remote-free stack.
  static void park(Pool* pool);

  // --- owner-thread statistics (for tests and benches) ---

  /// Blocks carved from slabs (i.e. not satisfied by recycling).
  std::uint64_t carved() const noexcept { return carved_; }
  /// Allocations satisfied from a free list.
  std::uint64_t reused() const noexcept { return reused_; }
  /// Blocks that came back through the remote-free stack.
  std::uint64_t remote_freed() const noexcept {
    return remote_frees_.load(std::memory_order_relaxed);
  }
  std::size_t slab_count() const noexcept { return slabs_.size(); }

 private:
  struct Header {
    Pool* owner;               // nullptr → direct ::operator new block
    std::uint32_t size_class;  // index into free_ (meaningless when direct)
    std::uint32_t magic;       // corruption canary (assert-checked on free)
    Header* next;              // intrusive link while on a free list
  };
  static_assert(sizeof(Header) <= kHeaderSize);

  static constexpr std::uint32_t kMagic = 0x9001beefu;

  static Header* header_of(void* payload) noexcept {
    return reinterpret_cast<Header*>(static_cast<char*>(payload) - kHeaderSize);
  }
  static void* payload_of(Header* h) noexcept {
    return reinterpret_cast<char*>(h) + kHeaderSize;
  }

  /// Size class index for `size` (≤ kMaxBlock): smallest power of two ≥ size,
  /// floored at kMinBlock.
  static unsigned class_of(std::size_t size) noexcept {
    if (size <= kMinBlock) return 0;
    return static_cast<unsigned>(std::bit_width(size - 1)) - 6;
  }
  static constexpr std::size_t class_bytes(unsigned cls) noexcept { return kMinBlock << cls; }

  /// A distinct, stable key per live thread (the address of a TLS anchor).
  static std::uintptr_t this_thread_key() noexcept {
    static thread_local char anchor;
    return reinterpret_cast<std::uintptr_t>(&anchor);
  }

  static void* direct_allocate(std::size_t size) {
    auto* h = static_cast<Header*>(
        ::operator new(kHeaderSize + size, std::align_val_t{kBlockAlign}));
    h->owner = nullptr;
    h->size_class = 0;
    h->magic = kMagic;
    h->next = nullptr;
    return payload_of(h);
  }

  void* allocate_local(std::size_t size) {
    const unsigned cls = class_of(size);
    Header* h = free_[cls];
    if (h == nullptr) {
      drain_remote();
      h = free_[cls];
    }
    if (h != nullptr) {
      free_[cls] = h->next;
      ++reused_;
      return payload_of(h);
    }
    return carve(cls);
  }

  /// Moves everything on the remote-free stack onto the local free lists.
  void drain_remote() noexcept {
    Header* h = remote_head_->exchange(nullptr, std::memory_order_acquire);
    while (h != nullptr) {
      Header* next = h->next;
      h->next = free_[h->size_class];
      free_[h->size_class] = h;
      ++remote_drained_;
      h = next;
    }
  }

  void* carve(unsigned cls) {
    const std::size_t stride = kHeaderSize + class_bytes(cls);
    if (static_cast<std::size_t>(bump_end_ - bump_) < stride) {
      static_assert(kSlabBytes >= kHeaderSize + kMaxBlock);
      void* slab = ::operator new(kSlabBytes, std::align_val_t{kBlockAlign});
      slabs_.push_back(slab);
      bump_ = static_cast<char*>(slab);
      bump_end_ = bump_ + kSlabBytes;
    }
    auto* h = reinterpret_cast<Header*>(bump_);
    bump_ += stride;
    h->owner = this;
    h->size_class = cls;
    h->magic = kMagic;
    h->next = nullptr;
    ++carved_;
    return payload_of(h);
  }

  // --- owner-thread state ---
  Header* free_[kNumClasses] = {};
  char* bump_ = nullptr;
  char* bump_end_ = nullptr;
  std::vector<void*> slabs_;
  std::uint64_t carved_ = 0;
  std::uint64_t reused_ = 0;
  std::uint64_t remote_drained_ = 0;

  // --- shared state (own line: remote frees must not invalidate free_) ---
  CacheAligned<std::atomic<Header*>> remote_head_{};
  std::atomic<std::uintptr_t> owner_key_{0};
  std::atomic<std::uint64_t> remote_frees_{0};
};

namespace detail {
/// Process-wide pool registry, sharded by CPU. A single {mutex, parked}
/// pair made every thread's attach/detach serialize on one lock and bounce
/// one cache line across sockets — measurable at exactly the thread counts
/// the scaling matrix sweeps, because open-loop serving churns worker pools.
/// Each shard owns its own mutex, ownership list, and parked stack; a
/// thread parks to and acquires from the shard covering its current CPU
/// (NUMA-friendly block reuse) and only steals round-robin from other
/// shards when its own has nothing parked.
struct PoolRegistry {
  static constexpr unsigned kShards = 8;

  struct alignas(kCacheLine) Shard {
    std::mutex mutex;
    std::vector<std::unique_ptr<Pool>> all;  // owns every pool created here
    std::vector<Pool*> parked;
  };
  Shard shards[kShards];

  static PoolRegistry& instance() {
    static PoolRegistry registry;
    return registry;
  }

  /// Shard for the calling thread: current CPU on Linux (pools parked by a
  /// thread on this node are re-acquired on the same node), a stable thread
  /// hash elsewhere (no locality, but the lock traffic still spreads).
  static unsigned home_shard() noexcept;
};

inline unsigned PoolRegistry::home_shard() noexcept {
#if defined(__linux__)
  const int cpu = sched_getcpu();
  if (cpu >= 0) return static_cast<unsigned>(cpu) % kShards;
#endif
  const auto tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return static_cast<unsigned>(tid) % kShards;
}
}  // namespace detail

inline Pool* Pool::acquire() {
  auto& reg = detail::PoolRegistry::instance();
  const unsigned home = reg.home_shard();
  Pool* pool = nullptr;
  // Pass 1: try each shard's parked stack, own shard first.
  for (unsigned s = 0; s < detail::PoolRegistry::kShards && pool == nullptr; ++s) {
    auto& shard = reg.shards[(home + s) % detail::PoolRegistry::kShards];
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (!shard.parked.empty()) {
      pool = shard.parked.back();
      shard.parked.pop_back();
    }
  }
  // Nothing parked anywhere: create in the home shard.
  if (pool == nullptr) {
    auto& shard = reg.shards[home % detail::PoolRegistry::kShards];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.all.push_back(std::make_unique<Pool>());
    pool = shard.all.back().get();
  }
  pool->owner_key_.store(this_thread_key(), std::memory_order_relaxed);
  return pool;
}

inline void Pool::park(Pool* pool) {
  if (pool == nullptr) return;
  pool->owner_key_.store(0, std::memory_order_relaxed);
  auto& reg = detail::PoolRegistry::instance();
  auto& shard = reg.shards[reg.home_shard() % detail::PoolRegistry::kShards];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.parked.push_back(pool);
}

/// Placement-constructs a T in a pool block (deallocate-on-throw). Free with
/// `p->~T(); Pool::deallocate(p);`.
template <typename T, typename... Args>
T* pool_new(Pool* pool, Args&&... args) {
  static_assert(alignof(T) <= Pool::kBlockAlign);
  void* mem = Pool::allocate(pool, sizeof(T));
  try {
    return ::new (mem) T(std::forward<Args>(args)...);
  } catch (...) {
    Pool::deallocate(mem);
    throw;
  }
}

}  // namespace wstm::util
