// Cache-line alignment helpers.
//
// Shared mutable state that is written by different threads is padded to a
// cache line to avoid false sharing (Per.19 / CP.203 in the C++ Core
// Guidelines sense: measure first, but per-thread counters and per-object
// ownership words are the canonical justified cases in an STM).
#pragma once

#include <cstddef>
#include <new>

namespace wstm {

// Fixed 64 rather than std::hardware_destructive_interference_size: the
// value participates in struct layouts across TUs, and GCC warns that the
// standard constant can drift with -mtune (ABI hazard). 64 is correct for
// every x86-64 and the common AArch64 parts this library targets.
inline constexpr std::size_t kCacheLine = 64;

/// Wraps a value in its own cache line. Use for per-thread slots in shared
/// arrays (metrics counters, transaction-descriptor pointers, epoch slots).
template <typename T>
struct alignas(kCacheLine) CacheAligned {
  T value{};

  CacheAligned() = default;
  explicit CacheAligned(const T& v) : value(v) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

}  // namespace wstm
