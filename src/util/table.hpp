// Aligned text tables + CSV emission for the benchmark reports.
//
// Every figure-reproduction binary prints one of these tables; keeping the
// formatting in one place makes the bench outputs uniform and diffable.
#pragma once

#include <string>
#include <vector>

namespace wstm {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// All rows must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 2);

  /// Renders with padded columns, a rule under the header.
  std::string to_text() const;

  /// RFC-4180-ish CSV (values containing commas/quotes are quoted).
  std::string to_csv() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wstm
