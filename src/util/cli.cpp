#include "util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace wstm {

void Cli::add_flag(const std::string& name, const std::string& help, std::string default_value) {
  flags_[name] = Flag{help, std::move(default_value), false};
}

void Cli::add_flag(const std::string& name, const std::string& help, std::int64_t default_value) {
  flags_[name] = Flag{help, std::to_string(default_value), false};
}

void Cli::add_flag(const std::string& name, const std::string& help, double default_value) {
  std::ostringstream os;
  os << default_value;
  flags_[name] = Flag{help, os.str(), false};
}

void Cli::add_flag(const std::string& name, const std::string& help, bool default_value) {
  flags_[name] = Flag{help, default_value ? "true" : "false", true};
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n%s", arg.c_str(),
                   usage(argv[0]).c_str());
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    bool negated = false;
    auto it = flags_.find(arg);
    if (it == flags_.end() && arg.rfind("no-", 0) == 0) {
      it = flags_.find(arg.substr(3));
      negated = it != flags_.end() && it->second.is_bool;
    }
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n%s", arg.c_str(), usage(argv[0]).c_str());
      return false;
    }
    Flag& flag = it->second;
    if (flag.is_bool) {
      if (negated) {
        flag.value = "false";
      } else if (has_value) {
        flag.value = (value == "true" || value == "1") ? "true" : "false";
      } else {
        flag.value = "true";
      }
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s expects a value\n", arg.c_str());
        return false;
      }
      value = argv[++i];
    }
    flag.value = value;
  }
  return true;
}

const Cli::Flag& Cli::flag_or_throw(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) throw std::logic_error("flag not registered: " + name);
  return it->second;
}

std::string Cli::get_string(const std::string& name) const { return flag_or_throw(name).value; }

std::int64_t Cli::get_int(const std::string& name) const {
  return std::stoll(flag_or_throw(name).value);
}

double Cli::get_double(const std::string& name) const {
  return std::stod(flag_or_throw(name).value);
}

bool Cli::get_bool(const std::string& name) const { return flag_or_throw(name).value == "true"; }

std::vector<std::int64_t> Cli::get_int_list(const std::string& name) const {
  std::vector<std::int64_t> out;
  std::stringstream ss(flag_or_throw(name).value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoll(item));
  }
  return out;
}

std::vector<std::string> Cli::get_string_list(const std::string& name) const {
  std::vector<std::string> out;
  std::stringstream ss(flag_or_throw(name).value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string Cli::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.value << ")\n      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace wstm
