// Zipfian key sampling for skewed-contention workloads.
//
// Rank r (0-based) is drawn with probability proportional to
// 1/(r+1)^alpha via a precomputed CDF and binary search — O(log n) per
// sample, no rejection, bit-reproducible for a given RNG stream. Rank maps
// to key identically (rank 0 = key 0 is the hottest), which callers should
// remember when structural locality matters (a sorted list clusters the hot
// ranks at its head; a hashtable spreads them across buckets).
//
// alpha = 0 degenerates to uniform; the serving benchmarks default to the
// YCSB-conventional 0.99.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace wstm {

class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double alpha) {
    if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
    cdf_.reserve(static_cast<std::size_t>(n));
    double total = 0.0;
    for (std::uint64_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  /// Rank in [0, n); thread-safe (the CDF is immutable after construction).
  std::uint64_t sample(Xoshiro256& rng) const noexcept {
    const double u = rng.uniform01();
    // First index with cdf >= u.
    std::size_t lo = 0;
    std::size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  std::uint64_t n() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace wstm
