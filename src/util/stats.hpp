// Summary statistics for repeated experiment runs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace wstm {

/// Streaming mean/variance (Welford) plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  /// Half-width of an approximate 95% confidence interval (1.96 * sem).
  double ci95_half_width() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Bounded-memory uniform sample of a latency stream, shared by all
/// threads: Vitter's Algorithm R over a fixed slot array, so percentile
/// reporting costs O(capacity) memory no matter how many operations a run
/// executes. Writers are lock-free — the admission counter is one
/// fetch_add and slots are relaxed atomics (a torn pair of concurrent
/// replacements just means one sample wins, which Algorithm R tolerates).
/// The replacement index comes from a hash of the admission number rather
/// than a shared RNG, keeping record() stateless and runs reproducible.
/// Snapshot only after writers quiesce (end of the measured phase).
class LatencyReservoir {
 public:
  explicit LatencyReservoir(std::size_t capacity = 4096, std::uint64_t seed = 0x1a7e);

  /// Records one latency sample (any int64 unit; callers use ns).
  void record(std::int64_t value_ns) noexcept;

  /// Total values offered (not just retained).
  std::uint64_t count() const noexcept { return n_.load(std::memory_order_relaxed); }

  /// Retained samples as doubles (unsorted) — feed to percentile().
  std::vector<double> samples() const;

  /// percentile() over the retained samples; 0 when empty.
  double percentile_ns(double p) const;

  void reset() noexcept;

 private:
  std::size_t capacity_;
  std::uint64_t seed_;
  std::unique_ptr<std::atomic<std::int64_t>[]> slots_;
  std::atomic<std::uint64_t> n_{0};
};

/// Percentile of a sample set (nearest-rank on a copy; p in [0,100]).
double percentile(std::vector<double> samples, double p);

/// Arithmetic mean of a sample set; 0 for empty input.
double mean_of(const std::vector<double>& samples);

/// Geometric mean; input values must be positive. 0 for empty input.
double geomean_of(const std::vector<double>& samples);

}  // namespace wstm
