// Summary statistics for repeated experiment runs.
#pragma once

#include <cstddef>
#include <vector>

namespace wstm {

/// Streaming mean/variance (Welford) plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  /// Half-width of an approximate 95% confidence interval (1.96 * sem).
  double ci95_half_width() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set (nearest-rank on a copy; p in [0,100]).
double percentile(std::vector<double> samples, double p);

/// Arithmetic mean of a sample set; 0 for empty input.
double mean_of(const std::vector<double>& samples);

/// Geometric mean; input values must be positive. 0 for empty input.
double geomean_of(const std::vector<double>& samples);

}  // namespace wstm
