#include "util/table.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace wstm {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("table row arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << quote(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace wstm
