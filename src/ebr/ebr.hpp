// Epoch-based memory reclamation (EBR).
//
// DSTM-style STMs continually supersede object versions and locators that
// concurrent readers may still be traversing. DSTM2 (the paper's platform)
// leaned on the JVM garbage collector for this; in C++ we use classic
// three-epoch EBR (Fraser): threads "pin" the global epoch around every
// transaction, retired memory is tagged with the epoch it was retired in,
// and a tagged batch is freed once the global epoch has advanced twice —
// at which point no pinned thread can still hold a reference.
//
// Usage:
//   ebr::Domain domain;
//   ebr::Handle h = domain.attach();            // once per thread
//   { ebr::Guard g(h);                          // around each critical region
//     ... read shared structures ...
//     h.retire(old_version);                    // unlink, defer free
//   }
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/cacheline.hpp"
#include "util/pool.hpp"

namespace wstm::ebr {

/// One deferred deallocation.
struct Retired {
  void* ptr;
  void (*deleter)(void*);
};

class Domain;

/// Per-thread participation in a Domain. Not thread-safe; each thread uses
/// its own Handle. Movable so the owning thread context can hold it by value.
class Handle {
 public:
  Handle() = default;
  Handle(Handle&& other) noexcept;
  Handle& operator=(Handle&& other) noexcept;
  Handle(const Handle&) = delete;
  Handle& operator=(const Handle&) = delete;
  ~Handle();

  bool attached() const noexcept { return domain_ != nullptr; }

  /// Enter a critical region: after pin() returns, memory retired by other
  /// threads from this point on will not be freed until unpin().
  void pin() noexcept;
  void unpin() noexcept;
  bool pinned() const noexcept { return pinned_; }

  /// Defer deallocation of `ptr` until two epoch advances have passed.
  /// Must be called while pinned (the caller just unlinked the object).
  void retire(void* ptr, void (*deleter)(void*));

  template <typename T>
  void retire(T* ptr) {
    retire(ptr, [](void* p) { delete static_cast<T*>(p); });
  }

  /// Number of retirements not yet freed through this handle.
  std::size_t pending() const noexcept;

  /// Route retire-list chunks through `pool` (see util/pool.hpp) instead of
  /// the global allocator. Optional; null keeps per-chunk global allocations
  /// (still amortized over Chunk::kCapacity retirements).
  void set_pool(util::Pool* pool) noexcept { pool_ = pool; }

  /// Optional metrics hook: incremented once per successful full-domain
  /// epoch sync this handle's retires triggered (the `ebr_shard_syncs`
  /// counter — how often this thread paid for the cross-shard scan + global
  /// epoch CAS). The pointee must outlive the handle.
  void set_sync_counter(std::uint64_t* counter) noexcept { sync_counter_ = counter; }

  /// Detach from the domain; pending garbage is handed to the domain and
  /// freed at domain destruction or quiescent drain.
  void detach();

 private:
  friend class Domain;
  Handle(Domain* domain, unsigned slot) noexcept : domain_(domain), slot_(slot) {}

  /// Fixed-capacity retirement batch. Retired nodes are tracked in chunks
  /// (not per-node heap records) so the steady-state retire path allocates
  /// once per kCapacity nodes, from the recycling pool.
  struct Chunk {
    static constexpr std::uint32_t kCapacity = 63;  // block is exactly 1 KiB
    Chunk* next;
    std::uint32_t count;
    Retired items[kCapacity];
  };

  struct Bin {
    std::uint64_t epoch = 0;
    Chunk* chunks = nullptr;
  };

  void push_retired(Bin& bin, Retired r);
  /// Runs the deleters of everything in `bin` and recycles its chunks.
  void free_bin(Bin& bin);
  void collect(std::uint64_t global_epoch);

  Domain* domain_ = nullptr;
  unsigned slot_ = 0;
  bool pinned_ = false;
  unsigned retire_count_ = 0;
  util::Pool* pool_ = nullptr;
  std::uint64_t* sync_counter_ = nullptr;
  std::array<Bin, 3> bins_{};
};

/// RAII pin/unpin.
class Guard {
 public:
  explicit Guard(Handle& h) noexcept : h_(h) { h_.pin(); }
  ~Guard() { h_.unpin(); }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

 private:
  Handle& h_;
};

class Domain {
 public:
  static constexpr unsigned kMaxThreads = 128;
  /// Thread slots are grouped into contiguous shards (stmgc-style). attach()
  /// steers a thread toward the shard covering its current CPU, so the
  /// epoch-advance scan touches slot lines with some NUMA locality and —
  /// more importantly — can skip whole shards with no attached threads via
  /// a per-shard population hint instead of walking all kMaxThreads slots.
  /// Orphaned garbage (detached handles) is likewise binned per shard under
  /// per-shard locks, so concurrent thread churn in different shards never
  /// serializes on one process-wide mutex.
  static constexpr unsigned kShards = 8;
  static constexpr unsigned kSlotsPerShard = kMaxThreads / kShards;
  static_assert(kMaxThreads % kShards == 0, "shards must tile the slot array");
  /// retire() attempts an epoch advance every this many retirements.
  static constexpr unsigned kAdvanceInterval = 64;

  static constexpr unsigned shard_of(unsigned slot) noexcept {
    return slot / kSlotsPerShard;
  }

  Domain() = default;
  ~Domain();
  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  /// Claim a thread slot, preferring the shard covering the calling CPU.
  /// Throws std::runtime_error when all slots are taken.
  Handle attach();

  std::uint64_t epoch() const noexcept { return global_epoch_.load(std::memory_order_acquire); }

  /// Advance the epoch if every pinned thread has observed the current one.
  /// Scans shard by shard, skipping shards whose population hint is zero.
  /// Returns true when the epoch moved (a full cross-shard sync happened).
  bool try_advance() noexcept;

  /// Free everything immediately. Caller must guarantee no thread is pinned
  /// (quiescence) — used between benchmark phases and in tests.
  void drain();

 private:
  friend class Handle;

  void release_slot(unsigned slot, std::array<Handle::Bin, 3>&& bins);

  /// Per-shard state: a population hint for the advance scan's skip test
  /// and a private orphan bin so detach churn in one shard never contends
  /// with another. The hint is advisory for *speed* only — correctness of
  /// try_advance rests on slot_used_/slots_, which the hint conservatively
  /// over-approximates: it is raised (seq_cst) before the claiming thread
  /// can first pin and lowered only after its slot is fully released, so a
  /// scan that observes 0 is seq_cst-ordered before any pin in that shard.
  struct alignas(kCacheLine) Shard {
    std::atomic<unsigned> attached{0};
    std::mutex orphan_mutex;
    std::vector<Retired> orphans;
  };

  // Slot value: (epoch << 1) | active-bit.
  std::array<CacheAligned<std::atomic<std::uint64_t>>, kMaxThreads> slots_{};
  std::array<std::atomic<bool>, kMaxThreads> slot_used_{};
  std::atomic<std::uint64_t> global_epoch_{1};

  std::array<Shard, kShards> shards_{};
};

}  // namespace wstm::ebr
