#include "ebr/ebr.hpp"

#include <stdexcept>
#include <utility>

namespace wstm::ebr {

// ---------------------------------------------------------------- Handle --

Handle::Handle(Handle&& other) noexcept
    : domain_(std::exchange(other.domain_, nullptr)),
      slot_(other.slot_),
      pinned_(std::exchange(other.pinned_, false)),
      retire_count_(other.retire_count_),
      pool_(std::exchange(other.pool_, nullptr)),
      bins_(other.bins_) {
  for (Bin& bin : other.bins_) bin = Bin{};
}

Handle& Handle::operator=(Handle&& other) noexcept {
  if (this != &other) {
    detach();
    domain_ = std::exchange(other.domain_, nullptr);
    slot_ = other.slot_;
    pinned_ = std::exchange(other.pinned_, false);
    retire_count_ = other.retire_count_;
    pool_ = std::exchange(other.pool_, nullptr);
    bins_ = other.bins_;
    for (Bin& bin : other.bins_) bin = Bin{};
  }
  return *this;
}

Handle::~Handle() { detach(); }

void Handle::pin() noexcept {
  auto& slot = *domain_->slots_[slot_];
  // Publish the observed epoch with the active bit, then verify the epoch
  // did not advance past us before the store became visible. seq_cst on the
  // store orders it against the subsequent global re-load on every platform.
  std::uint64_t e = domain_->global_epoch_.load(std::memory_order_acquire);
  for (;;) {
    slot.store((e << 1) | 1ULL, std::memory_order_seq_cst);
    const std::uint64_t now = domain_->global_epoch_.load(std::memory_order_seq_cst);
    if (now == e) break;
    e = now;
  }
  pinned_ = true;
}

void Handle::unpin() noexcept {
  domain_->slots_[slot_]->store(0, std::memory_order_release);
  pinned_ = false;
}

void Handle::push_retired(Bin& bin, Retired r) {
  Chunk* chunk = bin.chunks;
  if (chunk == nullptr || chunk->count == Chunk::kCapacity) {
    chunk = static_cast<Chunk*>(util::Pool::allocate(pool_, sizeof(Chunk)));
    chunk->next = bin.chunks;
    chunk->count = 0;
    bin.chunks = chunk;
  }
  chunk->items[chunk->count++] = r;
}

void Handle::free_bin(Bin& bin) {
  Chunk* chunk = bin.chunks;
  bin.chunks = nullptr;
  while (chunk != nullptr) {
    for (std::uint32_t i = 0; i < chunk->count; ++i) chunk->items[i].deleter(chunk->items[i].ptr);
    Chunk* next = chunk->next;
    util::Pool::deallocate(chunk);
    chunk = next;
  }
}

void Handle::retire(void* ptr, void (*deleter)(void*)) {
  const std::uint64_t e = domain_->global_epoch_.load(std::memory_order_acquire);
  Bin& bin = bins_[e % bins_.size()];
  if (bin.epoch != e) {
    // The bin was last used at e - 3k (k >= 1), i.e. at least two epochs
    // ago: its contents are unreachable by any pinned thread.
    free_bin(bin);
    bin.epoch = e;
  }
  push_retired(bin, Retired{ptr, deleter});
  if (++retire_count_ % Domain::kAdvanceInterval == 0) {
    domain_->try_advance();
    collect(domain_->global_epoch_.load(std::memory_order_acquire));
  }
}

void Handle::collect(std::uint64_t global_epoch) {
  for (Bin& bin : bins_) {
    if (bin.chunks != nullptr && bin.epoch + 2 <= global_epoch) free_bin(bin);
  }
}

std::size_t Handle::pending() const noexcept {
  std::size_t n = 0;
  for (const Bin& bin : bins_) {
    for (const Chunk* c = bin.chunks; c != nullptr; c = c->next) n += c->count;
  }
  return n;
}

void Handle::detach() {
  if (domain_ == nullptr) return;
  if (pinned_) unpin();
  domain_->release_slot(slot_, std::move(bins_));
  domain_ = nullptr;
}

// ---------------------------------------------------------------- Domain --

Domain::~Domain() { drain(); }

Handle Domain::attach() {
  for (unsigned i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (slot_used_[i].compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
      slots_[i]->store(0, std::memory_order_release);
      return Handle(this, i);
    }
  }
  throw std::runtime_error("ebr::Domain: all thread slots in use");
}

bool Domain::try_advance() noexcept {
  const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
  for (unsigned i = 0; i < kMaxThreads; ++i) {
    if (!slot_used_[i].load(std::memory_order_acquire)) continue;
    const std::uint64_t v = slots_[i]->load(std::memory_order_acquire);
    if ((v & 1ULL) != 0 && (v >> 1) != e) return false;  // pinned in an older epoch
  }
  std::uint64_t expected = e;
  return global_epoch_.compare_exchange_strong(expected, e + 1, std::memory_order_acq_rel);
}

void Domain::drain() {
  std::lock_guard<std::mutex> lock(orphan_mutex_);
  for (const Retired& r : orphans_) r.deleter(r.ptr);
  orphans_.clear();
}

void Domain::release_slot(unsigned slot, std::array<Handle::Bin, 3>&& bins) {
  {
    std::lock_guard<std::mutex> lock(orphan_mutex_);
    for (Handle::Bin& bin : bins) {
      Handle::Chunk* chunk = bin.chunks;
      bin.chunks = nullptr;
      while (chunk != nullptr) {
        for (std::uint32_t i = 0; i < chunk->count; ++i) orphans_.push_back(chunk->items[i]);
        Handle::Chunk* next = chunk->next;
        util::Pool::deallocate(chunk);
        chunk = next;
      }
    }
  }
  slots_[slot]->store(0, std::memory_order_release);
  slot_used_[slot].store(false, std::memory_order_release);
}

}  // namespace wstm::ebr
