#include "ebr/ebr.hpp"

#include <functional>
#include <stdexcept>
#include <thread>
#include <utility>

#if defined(__linux__)
#include <sched.h>
#endif

namespace wstm::ebr {

namespace {

/// Shard the calling thread most plausibly shares a NUMA node with: its
/// current CPU on Linux, a stable hash of the thread identity elsewhere
/// (still spreads attach traffic, just without locality).
unsigned home_shard() noexcept {
#if defined(__linux__)
  const int cpu = sched_getcpu();
  if (cpu >= 0) return static_cast<unsigned>(cpu) % Domain::kShards;
#endif
  const auto tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return static_cast<unsigned>(tid) % Domain::kShards;
}

}  // namespace

// ---------------------------------------------------------------- Handle --

Handle::Handle(Handle&& other) noexcept
    : domain_(std::exchange(other.domain_, nullptr)),
      slot_(other.slot_),
      pinned_(std::exchange(other.pinned_, false)),
      retire_count_(other.retire_count_),
      pool_(std::exchange(other.pool_, nullptr)),
      sync_counter_(std::exchange(other.sync_counter_, nullptr)),
      bins_(other.bins_) {
  for (Bin& bin : other.bins_) bin = Bin{};
}

Handle& Handle::operator=(Handle&& other) noexcept {
  if (this != &other) {
    detach();
    domain_ = std::exchange(other.domain_, nullptr);
    slot_ = other.slot_;
    pinned_ = std::exchange(other.pinned_, false);
    retire_count_ = other.retire_count_;
    pool_ = std::exchange(other.pool_, nullptr);
    sync_counter_ = std::exchange(other.sync_counter_, nullptr);
    bins_ = other.bins_;
    for (Bin& bin : other.bins_) bin = Bin{};
  }
  return *this;
}

Handle::~Handle() { detach(); }

void Handle::pin() noexcept {
  auto& slot = *domain_->slots_[slot_];
  // Publish the observed epoch with the active bit, then verify the epoch
  // did not advance past us before the store became visible. seq_cst on the
  // store orders it against the subsequent global re-load on every platform.
  std::uint64_t e = domain_->global_epoch_.load(std::memory_order_acquire);
  for (;;) {
    slot.store((e << 1) | 1ULL, std::memory_order_seq_cst);
    const std::uint64_t now = domain_->global_epoch_.load(std::memory_order_seq_cst);
    if (now == e) break;
    e = now;
  }
  pinned_ = true;
}

void Handle::unpin() noexcept {
  domain_->slots_[slot_]->store(0, std::memory_order_release);
  pinned_ = false;
}

void Handle::push_retired(Bin& bin, Retired r) {
  Chunk* chunk = bin.chunks;
  if (chunk == nullptr || chunk->count == Chunk::kCapacity) {
    chunk = static_cast<Chunk*>(util::Pool::allocate(pool_, sizeof(Chunk)));
    chunk->next = bin.chunks;
    chunk->count = 0;
    bin.chunks = chunk;
  }
  chunk->items[chunk->count++] = r;
}

void Handle::free_bin(Bin& bin) {
  Chunk* chunk = bin.chunks;
  bin.chunks = nullptr;
  while (chunk != nullptr) {
    for (std::uint32_t i = 0; i < chunk->count; ++i) chunk->items[i].deleter(chunk->items[i].ptr);
    Chunk* next = chunk->next;
    util::Pool::deallocate(chunk);
    chunk = next;
  }
}

void Handle::retire(void* ptr, void (*deleter)(void*)) {
  const std::uint64_t e = domain_->global_epoch_.load(std::memory_order_acquire);
  Bin& bin = bins_[e % bins_.size()];
  if (bin.epoch != e) {
    // The bin was last used at e - 3k (k >= 1), i.e. at least two epochs
    // ago: its contents are unreachable by any pinned thread.
    free_bin(bin);
    bin.epoch = e;
  }
  push_retired(bin, Retired{ptr, deleter});
  if (++retire_count_ % Domain::kAdvanceInterval == 0) {
    if (domain_->try_advance() && sync_counter_ != nullptr) ++*sync_counter_;
    collect(domain_->global_epoch_.load(std::memory_order_acquire));
  }
}

void Handle::collect(std::uint64_t global_epoch) {
  for (Bin& bin : bins_) {
    if (bin.chunks != nullptr && bin.epoch + 2 <= global_epoch) free_bin(bin);
  }
}

std::size_t Handle::pending() const noexcept {
  std::size_t n = 0;
  for (const Bin& bin : bins_) {
    for (const Chunk* c = bin.chunks; c != nullptr; c = c->next) n += c->count;
  }
  return n;
}

void Handle::detach() {
  if (domain_ == nullptr) return;
  if (pinned_) unpin();
  domain_->release_slot(slot_, std::move(bins_));
  domain_ = nullptr;
}

// ---------------------------------------------------------------- Domain --

Domain::~Domain() { drain(); }

Handle Domain::attach() {
  // Start in the shard covering the calling CPU and wrap: threads attaching
  // from different NUMA nodes land in different slot regions, and a sparse
  // process keeps whole shards empty for try_advance to skip.
  const unsigned home = home_shard();
  for (unsigned s = 0; s < kShards; ++s) {
    const unsigned shard = (home + s) % kShards;
    for (unsigned j = 0; j < kSlotsPerShard; ++j) {
      const unsigned i = shard * kSlotsPerShard + j;
      bool expected = false;
      if (slot_used_[i].compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
        slots_[i]->store(0, std::memory_order_release);
        // seq_cst: the population hint must precede this thread's first pin
        // in the single total order so an advance scan that skips the shard
        // on hint==0 is ordered before the pin (see Shard's comment).
        shards_[shard].attached.fetch_add(1, std::memory_order_seq_cst);
        return Handle(this, i);
      }
    }
  }
  throw std::runtime_error("ebr::Domain: all thread slots in use");
}

bool Domain::try_advance() noexcept {
  const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
  for (unsigned shard = 0; shard < kShards; ++shard) {
    // Empty shards contribute nothing to the epoch condition; skipping them
    // turns the scan cost from O(kMaxThreads) cache misses into O(occupied
    // slots) — the point of sharding the slot array.
    if (shards_[shard].attached.load(std::memory_order_seq_cst) == 0) continue;
    const unsigned base = shard * kSlotsPerShard;
    for (unsigned j = 0; j < kSlotsPerShard; ++j) {
      const unsigned i = base + j;
      if (!slot_used_[i].load(std::memory_order_acquire)) continue;
      const std::uint64_t v = slots_[i]->load(std::memory_order_acquire);
      if ((v & 1ULL) != 0 && (v >> 1) != e) return false;  // pinned in an older epoch
    }
  }
  std::uint64_t expected = e;
  return global_epoch_.compare_exchange_strong(expected, e + 1, std::memory_order_acq_rel);
}

void Domain::drain() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.orphan_mutex);
    for (const Retired& r : shard.orphans) r.deleter(r.ptr);
    shard.orphans.clear();
  }
}

void Domain::release_slot(unsigned slot, std::array<Handle::Bin, 3>&& bins) {
  Shard& shard = shards_[shard_of(slot)];
  {
    std::lock_guard<std::mutex> lock(shard.orphan_mutex);
    for (Handle::Bin& bin : bins) {
      Handle::Chunk* chunk = bin.chunks;
      bin.chunks = nullptr;
      while (chunk != nullptr) {
        for (std::uint32_t i = 0; i < chunk->count; ++i)
          shard.orphans.push_back(chunk->items[i]);
        Handle::Chunk* next = chunk->next;
        util::Pool::deallocate(chunk);
        chunk = next;
      }
    }
  }
  slots_[slot]->store(0, std::memory_order_release);
  slot_used_[slot].store(false, std::memory_order_release);
  shard.attached.fetch_sub(1, std::memory_order_seq_cst);
}

}  // namespace wstm::ebr
