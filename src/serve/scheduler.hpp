// Admission scheduling: which submit queue a request lands in.
//
// Queue placement is the serving layer's counterpart of contention
// management — instead of resolving conflicts after they happen (CMs), the
// admission scheduler tries to keep likely-conflicting requests from
// running concurrently at all, by steering them into the same queue (one
// worker drains a queue, so same-queue requests serialize). "Improving
// High Contention OLTP Performance via Transaction Scheduling" (PAPERS.md)
// shows this beats pure contention management under high contention; the
// policies here span that design space:
//
//   round-robin     spread everything (pure load balance, no isolation)
//   key-hash        static sharding by conflict key (full isolation, no
//                   balance — a Zipfian head overloads one queue)
//   conflict-graph  ATS-style hot-key clustering: per-key abort-rate EWMAs
//                   decide which keys need isolation; hot keys hash into a
//                   small set of serialization lanes (generalizing
//                   src/cm/ats.cpp's single lane), cold keys round-robin
//   window-frame    the window CMs' frame assignment reused as a queue
//                   placement: a request's key draws a delay q_k in
//                   [0, alpha) exactly like a window thread draws q_i, its
//                   frame is current_frame + q_k, and its queue is
//                   frame mod n_queues — same-frame requests share a queue,
//                   and the assignment rotates as the frame clock advances
//                   (see cm::ContentionManager::frame_schedule)
//
// place() is called by submitters (any thread) and the feedback hooks by
// workers, so implementations must be thread-safe; all built-ins are
// lock-free over atomics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace wstm::cm {
class ContentionManager;
}

namespace wstm::serve {

class AdmissionScheduler {
 public:
  virtual ~AdmissionScheduler() = default;

  virtual std::string name() const = 0;

  /// Queue index in [0, n_queues) for `req`. Thread-safe.
  virtual unsigned place(const TxRequest& req) = 0;

  /// Execution feedback from a worker: the request on `key` committed after
  /// `aborts` aborted attempts. Default ignores it (stateless policies).
  virtual void on_executed(std::uint64_t key, std::uint32_t aborts) {
    (void)key, (void)aborts;
  }

  unsigned n_queues() const noexcept { return n_queues_; }

 protected:
  explicit AdmissionScheduler(unsigned n_queues) : n_queues_(n_queues) {}

  unsigned n_queues_;
};

struct SchedulerConfig {
  unsigned n_queues = 1;
  std::uint64_t seed = 1;

  /// Contention manager of the serving runtime; the window-frame policy
  /// introspects its frame schedule (null or a non-window manager degrades
  /// it to static key-hash placement). Non-owning.
  const cm::ContentionManager* manager = nullptr;

  // conflict-graph knobs
  /// EWMA aborts-per-request above which a key counts as hot.
  double hot_threshold = 0.25;
  /// Hot-key table size (open-addressed, fixed; rounded up to a power of 2).
  std::uint32_t table_size = 4096;
  /// Fraction of queues reserved as hot-key serialization lanes when the
  /// global contention estimate is high (at least one).
  double hot_lane_fraction = 0.25;
};

/// Factory by policy name: round-robin | key-hash | conflict-graph |
/// window-frame. Throws std::invalid_argument otherwise.
std::unique_ptr<AdmissionScheduler> make_scheduler(const std::string& policy,
                                                   const SchedulerConfig& config);

/// All built-in policy names (CLI help, sweeps).
std::vector<std::string> scheduler_names();

}  // namespace wstm::serve
