// Transaction request: the unit of work clients submit to the serving
// front-end (src/serve/server.hpp).
//
// A request is a trivially-copyable POD so the bounded MPMC queues can move
// it by memcpy with no per-request allocation: the transaction body is a
// plain function pointer plus a context pointer and one integer argument —
// enough to express every intset/OLTP-style operation — rather than a
// std::function (whose capture would allocate on every submit at high
// arrival rates). The body runs inside Runtime::atomically on a worker
// thread and may execute many times (aborts retry it), so it must be pure
// apart from TObject accesses; externally-visible effects belong in the
// optional `done` hook, which the worker invokes exactly once after the
// commit.
#pragma once

#include <cstdint>
#include <type_traits>

namespace wstm::stm {
class Tx;
}

namespace wstm::serve {

struct TxRequest {
  /// Transaction body, run under atomically(); the return value is passed
  /// to `done` and otherwise ignored.
  using Fn = std::uint64_t (*)(stm::Tx& tx, void* ctx, std::uint64_t arg);
  /// Post-commit completion hook (worker thread, outside any transaction).
  /// Not called for requests that are shed (rejected, expired, cancelled).
  using Done = void (*)(void* ctx, std::uint64_t arg, std::uint64_t result);

  Fn fn = nullptr;
  Done done = nullptr;
  void* ctx = nullptr;
  std::uint64_t arg = 0;

  /// Conflict-key hint: an application-level identifier of the data this
  /// transaction is likely to touch (intset key, account id, row id). The
  /// admission scheduler clusters requests by this hint; it never affects
  /// correctness, only queue placement.
  std::uint64_t key = 0;

  /// Stamped by TxServer::submit (util/timing.hpp epoch): sojourn time is
  /// measured from here to completion.
  std::int64_t enqueue_ns = 0;

  /// Absolute deadline; 0 = none. A request still queued past its deadline
  /// is shed (counted as expired, `done` not called); one that completes
  /// after it counts as a deadline miss in the metrics.
  std::int64_t deadline_ns = 0;
};

static_assert(std::is_trivially_copyable_v<TxRequest>,
              "TxRequest rides through the MPMC ring by plain copy");

/// Outcome of TxServer::submit.
enum class SubmitResult : std::uint8_t {
  kAccepted = 0,
  kRejectedFull,      // bounded queue full in kReject mode
  kRejectedStopping,  // server (or runtime) is shutting down
};

/// What a full submit queue does to the producer.
enum class Backpressure : std::uint8_t {
  kReject = 0,  // shed the request (open-loop load testing, default)
  kBlock,       // block the producer until space frees (closed coupling)
};

}  // namespace wstm::serve
