// Worker pool: runtime-attached threads that drain the submit queues.
//
// Each worker owns one primary queue (worker i drains queue i mod n_queues)
// and runs every request through Runtime::atomically, so the full protocol
// stack — contention manager, escalation ladder, irrevocable fallback —
// applies to served transactions exactly as it does to closed-loop ones.
// Optional stealing lets an idle worker pull from other queues; it is off
// by default because cross-queue stealing re-mixes requests an admission
// policy deliberately separated (the policy comparison in
// bench/fig_serve_scaling.cpp needs placement to mean something).
//
// Shutdown has two flavors the workers distinguish:
//  * TxServer::stop() closes the queues; workers drain every remaining
//    request, then exit ("graceful").
//  * Runtime::shutdown() makes atomically() throw RuntimeStoppedError;
//    workers shed the backlog as cancelled (done hooks not called) and
//    exit, so a dying runtime never strands a parked worker.
#pragma once

#include <cstdint>
#include <thread>
#include <vector>

#include "serve/queue.hpp"
#include "serve/scheduler.hpp"
#include "util/stats.hpp"

namespace wstm::stm {
class Runtime;
class ThreadCtx;
}  // namespace wstm::stm
namespace wstm::trace {
class Recorder;
}

namespace wstm::serve {

struct WorkerOptions {
  /// Park bound for an empty-queue wait; workers wake at least this often
  /// to re-check shutdown.
  std::int64_t pop_timeout_ns = 1'000'000;
  /// Idle workers pull from other queues (see file comment; default off).
  bool steal = false;
  /// Sojourn-latency sink (submit to completion), shared by all workers.
  /// Non-owning; null disables sampling.
  LatencyReservoir* latency = nullptr;
  /// kDequeue tracing. Non-owning; null disables.
  trace::Recorder* recorder = nullptr;
};

class WorkerPool {
 public:
  /// `queues` and `scheduler` are non-owning and must outlive the pool.
  WorkerPool(stm::Runtime& rt, std::vector<std::unique_ptr<BoundedQueue>>& queues,
             AdmissionScheduler& scheduler, WorkerOptions options);
  /// Joins if still running (queues must be closed by then — TxServer's
  /// destructor ordering guarantees it).
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void start(unsigned n_workers);

  /// Waits for all workers to exit. Workers only exit once their queues are
  /// closed (and drained) or the runtime is stopping; close first.
  void join();

  unsigned n_workers() const noexcept { return static_cast<unsigned>(threads_.size()); }

 private:
  void worker_main(unsigned idx);
  void execute(stm::ThreadCtx& tc, unsigned queue_idx, const TxRequest& req);

  stm::Runtime& rt_;
  std::vector<std::unique_ptr<BoundedQueue>>& queues_;
  AdmissionScheduler& scheduler_;
  WorkerOptions options_;
  std::vector<std::thread> threads_;
};

}  // namespace wstm::serve
