// TxServer: the serving front-end façade.
//
// Composes the pieces of src/serve/ — bounded MPMC submit queues
// (queue.hpp), an admission scheduler deciding queue placement
// (scheduler.hpp), and a pool of runtime-attached workers draining the
// queues through atomically() (worker_pool.hpp) — behind a two-call API:
//
//   serve::TxServer server(rt, {.n_workers = 8, .policy = "window-frame"});
//   server.start();
//   ... server.submit(req) from any thread ...
//   server.stop();   // closes queues, drains, joins
//
// This is the open-loop counterpart of harness/runner.cpp's closed loop:
// there, M threads generate and execute their own transactions; here,
// arrival and execution are decoupled so load beyond capacity shows up as
// queue growth, shed requests, and latency — the quantities a production
// deployment actually observes (see harness/open_loop.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"
#include "serve/worker_pool.hpp"

namespace wstm::stm {
class Runtime;
}

namespace wstm::serve {

struct ServerConfig {
  unsigned n_workers = 1;
  /// 0 = one queue per worker (the normal shape; policies assume it).
  unsigned n_queues = 0;
  std::size_t queue_capacity = 1024;
  Backpressure backpressure = Backpressure::kReject;

  /// Admission policy name (scheduler.hpp) and its knobs.
  std::string policy = "round-robin";
  std::uint64_t seed = 0x5e12e;
  double hot_threshold = 0.25;
  std::uint32_t table_size = 4096;
  double hot_lane_fraction = 0.25;

  WorkerOptions worker;  ///< latency sink, tracing, steal, park bound
};

class TxServer {
 public:
  /// Builds queues, scheduler (wired to the runtime's contention manager
  /// for the window-frame policy), and the worker pool. Throws
  /// std::invalid_argument for an unknown policy.
  TxServer(stm::Runtime& rt, ServerConfig config);
  ~TxServer();  // stop() if still running

  TxServer(const TxServer&) = delete;
  TxServer& operator=(const TxServer&) = delete;

  void start();

  /// Graceful shutdown: no new submits, queues closed, workers drain every
  /// queued request, pool joined. Idempotent.
  void stop();

  /// Places `req` via the admission scheduler and enqueues it. Stamps
  /// req.enqueue_ns; the caller sets deadline_ns (absolute, 0 = none).
  /// Thread-safe. `producer_slot`, when given, traces a kEnqueue event in
  /// that slot's ring (producers attach to the runtime to get one).
  SubmitResult submit(TxRequest req, unsigned producer_slot = kNoProducerSlot);

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected_full = 0;
    std::uint64_t rejected_stopping = 0;
    std::uint64_t enqueued = 0;   ///< sum over queues
    std::uint64_t dequeued = 0;   ///< sum over queues
    std::uint64_t max_depth = 0;  ///< max over queues' high-water marks
  };
  Stats stats() const;

  AdmissionScheduler& scheduler() noexcept { return *scheduler_; }
  unsigned n_queues() const noexcept { return static_cast<unsigned>(queues_.size()); }
  BoundedQueue& queue(unsigned i) noexcept { return *queues_[i]; }
  const ServerConfig& config() const noexcept { return config_; }

  static constexpr unsigned kNoProducerSlot = ~0u;

 private:
  stm::Runtime& rt_;
  ServerConfig config_;
  std::vector<std::unique_ptr<BoundedQueue>> queues_;
  std::unique_ptr<AdmissionScheduler> scheduler_;
  std::unique_ptr<WorkerPool> pool_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_stopping_{0};
};

}  // namespace wstm::serve
