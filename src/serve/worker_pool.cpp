#include "serve/worker_pool.hpp"

#include "resilience/chaos.hpp"
#include "resilience/errors.hpp"
#include "stm/runtime.hpp"
#include "trace/recorder.hpp"
#include "util/timing.hpp"

namespace wstm::serve {

WorkerPool::WorkerPool(stm::Runtime& rt, std::vector<std::unique_ptr<BoundedQueue>>& queues,
                       AdmissionScheduler& scheduler, WorkerOptions options)
    : rt_(rt), queues_(queues), scheduler_(scheduler), options_(options) {}

WorkerPool::~WorkerPool() { join(); }

void WorkerPool::start(unsigned n_workers) {
  threads_.reserve(n_workers);
  for (unsigned i = 0; i < n_workers; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

void WorkerPool::join() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void WorkerPool::worker_main(unsigned idx) {
  stm::ThreadCtx& tc = rt_.attach_thread();
  const unsigned nq = static_cast<unsigned>(queues_.size());
  const unsigned own_idx = idx % nq;
  BoundedQueue& own = *queues_[own_idx];
  TxRequest req;
  for (;;) {
    unsigned from = own_idx;
    bool got = own.try_pop(&req);
    if (!got && options_.steal) {
      for (unsigned k = 1; k < nq && !got; ++k) {
        from = (own_idx + k) % nq;
        got = queues_[from]->try_pop(&req);
      }
    }
    if (!got) {
      // Exit conditions are only checked at empty: a closed queue is
      // drained first, a stopping runtime sheds its backlog via execute().
      if (rt_.stopping() || own.closed()) break;
      from = own_idx;
      got = own.pop_wait(&req, options_.pop_timeout_ns);
      if (!got) continue;
    }
    execute(tc, from, req);
  }
  // The context stays attached: Runtime teardown (or the harness) aggregates
  // metrics after join, matching the closed-loop worker idiom.
}

void WorkerPool::execute(stm::ThreadCtx& tc, unsigned queue_idx, const TxRequest& req) {
  stm::ThreadMetrics& m = tc.metrics();
  m.serve_dequeued++;

  if (resilience::ChaosInjector* chaos = rt_.chaos()) {
    const auto inj = chaos->at_dequeue(tc.rng());
    if (inj.fault != resilience::ChaosInjector::Fault::kNone) m.chaos_faults++;
  }

  const std::int64_t dequeue_ns = now_ns();
  const std::int64_t wait_ns = dequeue_ns - req.enqueue_ns;
  if (wait_ns > 0) m.serve_queue_wait_ns += wait_ns;
  const bool expired = req.deadline_ns != 0 && dequeue_ns > req.deadline_ns;
  if (options_.recorder != nullptr) {
    options_.recorder->record(tc.slot(), trace::EventKind::kDequeue, req.key, expired ? 1 : 0,
                              trace::kNoEnemy, queue_idx,
                              wait_ns > 0 ? static_cast<std::uint64_t>(wait_ns) : 0);
  }
  if (expired) {
    // Shed: running a transaction whose result nobody can use anymore only
    // steals cycles from requests still inside their deadlines.
    m.serve_expired++;
    return;
  }

  const std::uint64_t aborts_before = m.aborts;
  std::uint64_t result;
  try {
    result = rt_.atomically(tc, [&](stm::Tx& tx) { return req.fn(tx, req.ctx, req.arg); });
  } catch (const resilience::RuntimeStoppedError&) {
    m.serve_cancelled++;
    return;
  } catch (const resilience::TxTimeoutError&) {
    // The runtime already counted the timeout; the scheduler still gets the
    // abort feedback — a timed-out key is the hottest signal there is.
    scheduler_.on_executed(req.key, static_cast<std::uint32_t>(m.aborts - aborts_before));
    return;
  }

  const std::int64_t done_ns = now_ns();
  m.serve_completed++;
  if (req.deadline_ns != 0 && done_ns > req.deadline_ns) m.serve_deadline_misses++;
  if (options_.latency != nullptr) options_.latency->record(done_ns - req.enqueue_ns);
  scheduler_.on_executed(req.key, static_cast<std::uint32_t>(m.aborts - aborts_before));
  if (req.done != nullptr) req.done(req.ctx, req.arg, result);
}

}  // namespace wstm::serve
