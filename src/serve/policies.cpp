// The four built-in admission policies (see scheduler.hpp for the design
// space they span). All state is atomic and placement is lock-free: place()
// runs on every submit and on_executed() on every completion, so neither may
// serialize producers or workers.
#include "serve/scheduler.hpp"

#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "cm/manager.hpp"
#include "util/cacheline.hpp"
#include "util/rng.hpp"

namespace wstm::serve {

namespace {

/// One splitmix64 round as a stateless mixer: full-avalanche, so adjacent
/// intset keys spread uniformly over queues.
std::uint64_t mix(std::uint64_t key, std::uint64_t seed) noexcept {
  std::uint64_t s = key ^ (seed * 0x9e3779b97f4a7c15ULL);
  return splitmix64(s);
}

std::uint32_t round_up_pow2_u32(std::uint32_t v) noexcept {
  std::uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// --- round-robin -----------------------------------------------------------

class RoundRobin final : public AdmissionScheduler {
 public:
  explicit RoundRobin(const SchedulerConfig& config) : AdmissionScheduler(config.n_queues) {}

  std::string name() const override { return "round-robin"; }

  unsigned place(const TxRequest& req) override {
    (void)req;
    return static_cast<unsigned>(next_.fetch_add(1, std::memory_order_relaxed) % n_queues_);
  }

 private:
  std::atomic<std::uint64_t> next_{0};
};

// --- key-hash --------------------------------------------------------------

class KeyHash final : public AdmissionScheduler {
 public:
  explicit KeyHash(const SchedulerConfig& config)
      : AdmissionScheduler(config.n_queues), seed_(config.seed | 1) {}

  std::string name() const override { return "key-hash"; }

  unsigned place(const TxRequest& req) override {
    return static_cast<unsigned>(mix(req.key, seed_) % n_queues_);
  }

 private:
  std::uint64_t seed_;
};

// --- conflict-graph --------------------------------------------------------

// ATS-style hot-key clustering. The CI estimator in src/cm/ats.cpp decides
// *when* to serialize (one global lane once contention is high); here the
// decision is *per key*: a fixed open-addressed table of abort-rate EWMAs,
// fed by worker feedback, marks keys hot, and hot keys hash into a set of
// serialization lanes while cold keys round-robin for load balance. When the
// global abort rate is high the lane set shrinks to hot_lane_fraction of the
// queues, concentrating conflicting work on few workers — the ATS limit
// (one lane) falls out at n_queues * fraction <= 1.
//
// Heat is 8.8 fixed point (1.0 == 256) so the table stays one atomic word
// per key and updates are plain CAS loops.
class ConflictGraph final : public AdmissionScheduler {
 public:
  explicit ConflictGraph(const SchedulerConfig& config)
      : AdmissionScheduler(config.n_queues),
        seed_(config.seed | 1),
        mask_(round_up_pow2_u32(config.table_size < 64 ? 64 : config.table_size) - 1),
        hot_threshold_fp_(static_cast<std::uint32_t>(config.hot_threshold * 256.0)),
        hot_lanes_(std::max(1U, static_cast<unsigned>(
                                    std::lround(config.n_queues * config.hot_lane_fraction)))),
        slots_(std::make_unique<Slot[]>(static_cast<std::size_t>(mask_) + 1)) {}

  std::string name() const override { return "conflict-graph"; }

  unsigned place(const TxRequest& req) override {
    const std::uint64_t h = mix(req.key, seed_);
    if (heat_of(req.key) >= hot_threshold_fp_) {
      // Hot key: serialize by key. Under high global contention the lane
      // set shrinks so hot keys also stop running beside *each other*.
      const bool contended = global_heat_.load(std::memory_order_relaxed) >= hot_threshold_fp_;
      const unsigned lanes = contended ? hot_lanes_ : n_queues_;
      return static_cast<unsigned>(h % lanes);
    }
    return static_cast<unsigned>(next_.fetch_add(1, std::memory_order_relaxed) % n_queues_);
  }

  void on_executed(std::uint64_t key, std::uint32_t aborts) override {
    // Global abort-rate EWMA (per executed request, 1/16 smoothing).
    const std::uint32_t sample_fp = aborts > 255 ? 255U * 256U : aborts * 256U;
    ewma_update(global_heat_, sample_fp);

    // Per-key EWMA. Keys that never abort are not tracked: the table only
    // holds keys that have shown contention, so a Zipfian tail can't evict
    // the hot head.
    Slot* slot = find(key);
    if (slot == nullptr) {
      if (aborts == 0) return;
      slot = claim(key);
      if (slot == nullptr) return;  // probe window full of hotter keys
    }
    ewma_update(slot->heat_fp, sample_fp);
  }

  /// Test/diagnostic hook: current heat of `key` in aborts-per-request.
  double heat(std::uint64_t key) const {
    return static_cast<double>(const_cast<ConflictGraph*>(this)->heat_of(key)) / 256.0;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> key{0};  // key + 1; 0 = empty
    std::atomic<std::uint32_t> heat_fp{0};
  };

  static constexpr unsigned kProbes = 8;
  static constexpr unsigned kEwmaShift = 4;  // 1/16 smoothing

  static void ewma_update(std::atomic<std::uint32_t>& cell, std::uint32_t sample_fp) noexcept {
    std::uint32_t cur = cell.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint32_t next = cur - (cur >> kEwmaShift) + (sample_fp >> kEwmaShift);
      if (cell.compare_exchange_weak(cur, next, std::memory_order_relaxed)) return;
    }
  }

  Slot* find(std::uint64_t key) noexcept {
    const std::uint64_t tagged = key + 1;
    std::uint64_t idx = mix(key, seed_ ^ 0xc0ffee);
    for (unsigned p = 0; p < kProbes; ++p, ++idx) {
      Slot& s = slots_[idx & mask_];
      if (s.key.load(std::memory_order_acquire) == tagged) return &s;
    }
    return nullptr;
  }

  /// Claims an empty slot in the probe window, or evicts the coldest slot
  /// if its heat has decayed below the hot threshold (hot keys are never
  /// evicted). Racy eviction can lose one key's history — it re-learns.
  Slot* claim(std::uint64_t key) noexcept {
    const std::uint64_t tagged = key + 1;
    std::uint64_t idx = mix(key, seed_ ^ 0xc0ffee);
    Slot* coldest = nullptr;
    std::uint32_t coldest_heat = ~0U;
    for (unsigned p = 0; p < kProbes; ++p, ++idx) {
      Slot& s = slots_[idx & mask_];
      std::uint64_t expected = 0;
      if (s.key.compare_exchange_strong(expected, tagged, std::memory_order_acq_rel)) {
        return &s;
      }
      if (expected == tagged) return &s;  // someone else claimed it for us
      const std::uint32_t h = s.heat_fp.load(std::memory_order_relaxed);
      if (h < coldest_heat) {
        coldest_heat = h;
        coldest = &s;
      }
    }
    if (coldest != nullptr && coldest_heat < hot_threshold_fp_) {
      coldest->heat_fp.store(0, std::memory_order_relaxed);
      coldest->key.store(tagged, std::memory_order_release);
      return coldest;
    }
    return nullptr;
  }

  std::uint32_t heat_of(std::uint64_t key) noexcept {
    Slot* s = find(key);
    return s != nullptr ? s->heat_fp.load(std::memory_order_relaxed) : 0;
  }

  std::uint64_t seed_;
  std::uint32_t mask_;
  std::uint32_t hot_threshold_fp_;
  unsigned hot_lanes_;
  std::unique_ptr<Slot[]> slots_;
  alignas(kCacheLine) std::atomic<std::uint64_t> next_{0};
  alignas(kCacheLine) std::atomic<std::uint32_t> global_heat_{0};
};

// --- window-frame ----------------------------------------------------------

// Maps the window CMs' frame assignment onto queue placement: a request's
// key draws a deterministic pseudo-delay q_k in [0, α) — the same range a
// window thread draws its q_i from — and is assigned frame
// current_frame + q_k, landing in queue (frame mod n_queues). Two requests
// on the same key always share a frame, hence a queue (serialized); keys
// with different q_k land in different frames, hence — while α spans several
// queues — different queues (spread). As the frame clock advances the whole
// assignment rotates across workers, so no queue is permanently hot even
// under a skewed key distribution: that rotation is exactly what the static
// key-hash policy lacks. Against a non-window manager there is no frame
// clock and the policy degrades to key-hash placement.
class WindowFrame final : public AdmissionScheduler {
 public:
  explicit WindowFrame(const SchedulerConfig& config)
      : AdmissionScheduler(config.n_queues),
        seed_(config.seed | 1),
        manager_(config.manager) {}

  std::string name() const override { return "window-frame"; }

  unsigned place(const TxRequest& req) override {
    cm::FrameSchedule fs;
    if (manager_ == nullptr || !manager_->frame_schedule(&fs)) {
      return static_cast<unsigned>(mix(req.key, seed_) % n_queues_);
    }
    const std::uint64_t alpha = fs.alpha == 0 ? 1 : fs.alpha;
    const std::uint64_t q_k = mix(req.key, seed_) % alpha;
    return static_cast<unsigned>((fs.current_frame + q_k) % n_queues_);
  }

 private:
  std::uint64_t seed_;
  const cm::ContentionManager* manager_;
};

}  // namespace

std::unique_ptr<AdmissionScheduler> make_scheduler(const std::string& policy,
                                                   const SchedulerConfig& config) {
  if (config.n_queues == 0) throw std::invalid_argument("make_scheduler: n_queues must be > 0");
  if (policy == "round-robin") return std::make_unique<RoundRobin>(config);
  if (policy == "key-hash") return std::make_unique<KeyHash>(config);
  if (policy == "conflict-graph") return std::make_unique<ConflictGraph>(config);
  if (policy == "window-frame") return std::make_unique<WindowFrame>(config);
  throw std::invalid_argument("unknown admission policy: " + policy);
}

std::vector<std::string> scheduler_names() {
  return {"round-robin", "key-hash", "conflict-graph", "window-frame"};
}

}  // namespace wstm::serve
