// Bounded MPMC submit queue for the serving front-end.
//
// The fast path is Vyukov's bounded MPMC ring (per-cell sequence counters,
// one CAS per push/pop, no locks), so producers and consumers scale without
// a queue-global mutex. Blocking is layered on top as a slow path only:
// waiters park on a condvar with a short timeout and re-poll, and pushers
// touch the mutex only when a waiter count says someone is parked — an
// empty-queue worker costs a futex wait, a busy queue costs nothing beyond
// the ring CAS. The timeout (not just the notify) makes missed wakeups a
// bounded-latency event instead of a hang, which keeps shutdown and chaos
// runs honest.
//
// close() wakes everything; after it, push fails with kClosed and pop
// drains the remaining items before returning false.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

#include "serve/request.hpp"
#include "util/cacheline.hpp"

namespace wstm::serve {

class BoundedQueue {
 public:
  enum class PushResult : std::uint8_t { kOk = 0, kFull, kClosed };

  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t rejected_full = 0;
    std::uint64_t max_depth = 0;  ///< high-water mark of the queue depth
  };

  /// Capacity is rounded up to a power of two (minimum 2).
  explicit BoundedQueue(std::size_t capacity);

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking push; kFull applies reject-mode backpressure.
  PushResult try_push(const TxRequest& req);

  /// Blocking push: waits for space (block-mode backpressure). Returns
  /// kOk or kClosed, never kFull.
  PushResult push_wait(const TxRequest& req);

  /// Non-blocking pop.
  bool try_pop(TxRequest* out);

  /// Blocking pop with a bounded park: returns true with an item, or false
  /// after `timeout_ns` without one (spurious-wakeup safe) or once the
  /// queue is closed *and* drained. Workers loop on this so they can
  /// interleave stealing and shutdown checks.
  bool pop_wait(TxRequest* out, std::int64_t timeout_ns);

  /// Marks the queue closed and wakes all waiters. Idempotent.
  void close();
  bool closed() const noexcept { return closed_.load(std::memory_order_acquire); }

  /// Approximate instantaneous depth (racy by nature; monitoring only).
  std::size_t depth() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail > head ? static_cast<std::size_t>(tail - head) : 0;
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Counter snapshot (racy but monotone; exact once quiescent).
  Stats stats() const noexcept;

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq;
    TxRequest req;
  };

  void note_depth(std::uint64_t depth) noexcept;
  void wake_consumer() noexcept;
  void wake_producer() noexcept;

  std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};  // next push slot
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};  // next pop slot
  alignas(kCacheLine) std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> rejected_full_{0};
  std::atomic<std::uint64_t> max_depth_{0};

  // Parking slow path (consumers waiting for items, producers for space).
  std::mutex wait_mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::atomic<std::uint32_t> pop_waiters_{0};
  std::atomic<std::uint32_t> push_waiters_{0};
};

}  // namespace wstm::serve
