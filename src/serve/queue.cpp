#include "serve/queue.hpp"

#include <chrono>

namespace wstm::serve {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 2;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

BoundedQueue::BoundedQueue(std::size_t capacity) {
  const std::size_t cap = round_up_pow2(capacity < 2 ? 2 : capacity);
  mask_ = cap - 1;
  cells_ = std::make_unique<Cell[]>(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    cells_[i].seq.store(i, std::memory_order_relaxed);
  }
}

BoundedQueue::PushResult BoundedQueue::try_push(const TxRequest& req) {
  if (closed_.load(std::memory_order_acquire)) return PushResult::kClosed;
  std::uint64_t pos = tail_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const std::int64_t dif = static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
    if (dif == 0) {
      if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
        cell.req = req;
        cell.seq.store(pos + 1, std::memory_order_release);
        note_depth(pos + 1 - head_.load(std::memory_order_acquire));
        wake_consumer();
        return PushResult::kOk;
      }
    } else if (dif < 0) {
      rejected_full_.fetch_add(1, std::memory_order_relaxed);
      return PushResult::kFull;
    } else {
      pos = tail_.load(std::memory_order_relaxed);
    }
  }
}

BoundedQueue::PushResult BoundedQueue::push_wait(const TxRequest& req) {
  for (;;) {
    const PushResult r = try_push(req);
    if (r != PushResult::kFull) {
      // kOk, or kClosed; a rejected-full count from the failed probe stays —
      // it records real backpressure pressure even in block mode.
      return r;
    }
    // seq_cst: Dekker pair with the consumer's seq_cst load in
    // wake_producer(). Both sides must agree on a single order between
    // "waiter count raised" and "slot freed", or the consumer could read
    // push_waiters_ == 0 while this thread misses the freed slot and
    // sleeps through the only wakeup. Audited for PR 7: NOT relaxable.
    push_waiters_.fetch_add(1, std::memory_order_seq_cst);
    std::unique_lock<std::mutex> lk(wait_mutex_);
    // Re-check closed_ under the mutex: close() stores it before taking
    // wait_mutex_ to notify, so either it is visible here (skip the wait;
    // the next try_push returns kClosed) or the notify_all is ordered
    // after this thread blocks and wakes it. Without this, a close()
    // landing between the waiter announcement and the wait is a lost
    // wakeup and the producer sleeps through the shutdown edge.
    if (!closed_.load(std::memory_order_acquire)) {
      not_full_.wait_for(lk, std::chrono::milliseconds(1));
    }
    lk.unlock();
    push_waiters_.fetch_sub(1, std::memory_order_relaxed);
  }
}

bool BoundedQueue::try_pop(TxRequest* out) {
  std::uint64_t pos = head_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const std::int64_t dif =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
    if (dif == 0) {
      if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
        *out = cell.req;
        cell.seq.store(pos + mask_ + 1, std::memory_order_release);
        wake_producer();
        return true;
      }
    } else if (dif < 0) {
      return false;  // empty
    } else {
      pos = head_.load(std::memory_order_relaxed);
    }
  }
}

bool BoundedQueue::pop_wait(TxRequest* out, std::int64_t timeout_ns) {
  if (try_pop(out)) return true;
  if (closed_.load(std::memory_order_acquire)) return try_pop(out);
  // seq_cst: Dekker pair with the producer's seq_cst load in
  // wake_consumer() (same shape as push_wait/wake_producer). Audited for
  // PR 7: NOT relaxable — acq_rel on the two sides would still allow both
  // the producer to read pop_waiters_ == 0 and this thread's re-check to
  // miss the pushed item, losing the wakeup.
  pop_waiters_.fetch_add(1, std::memory_order_seq_cst);
  // Re-check after announcing the wait: a push racing with the increment
  // either sees the waiter (and notifies) or its item is visible here.
  if (try_pop(out)) {
    pop_waiters_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  {
    std::unique_lock<std::mutex> lk(wait_mutex_);
    // Re-check closed_ under the mutex (same shape as push_wait): a close()
    // racing this parking consumer either published closed_ before we got
    // the mutex — visible here, skip the wait — or notifies after we block.
    // Without this, the close() edge between the pop_waiters_ announcement
    // and the wait is lost and the drain stalls for the full timeout.
    if (!closed_.load(std::memory_order_acquire)) {
      not_empty_.wait_for(lk, std::chrono::nanoseconds(timeout_ns));
    }
  }
  pop_waiters_.fetch_sub(1, std::memory_order_relaxed);
  return try_pop(out);
}

void BoundedQueue::close() {
  closed_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lk(wait_mutex_);
  not_empty_.notify_all();
  not_full_.notify_all();
}

void BoundedQueue::note_depth(std::uint64_t depth) noexcept {
  std::uint64_t seen = max_depth_.load(std::memory_order_relaxed);
  while (depth > seen &&
         !max_depth_.compare_exchange_weak(seen, depth, std::memory_order_relaxed)) {
  }
}

void BoundedQueue::wake_consumer() noexcept {
  // seq_cst: the other half of the pop_wait() Dekker pair — this load must
  // be ordered after the seq.store(release) that published the item in the
  // single total order, so either the waiter's re-check pops the item or
  // this load sees the waiter. Audited for PR 7: NOT relaxable.
  if (pop_waiters_.load(std::memory_order_seq_cst) == 0) return;
  std::lock_guard<std::mutex> lk(wait_mutex_);
  not_empty_.notify_one();
}

void BoundedQueue::wake_producer() noexcept {
  // seq_cst: other half of the push_wait() Dekker pair (see wake_consumer).
  if (push_waiters_.load(std::memory_order_seq_cst) == 0) return;
  std::lock_guard<std::mutex> lk(wait_mutex_);
  not_full_.notify_one();
}

BoundedQueue::Stats BoundedQueue::stats() const noexcept {
  Stats s;
  s.enqueued = tail_.load(std::memory_order_acquire);
  s.dequeued = head_.load(std::memory_order_acquire);
  s.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  s.max_depth = max_depth_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace wstm::serve
