#include "serve/server.hpp"

#include <stdexcept>

#include "stm/runtime.hpp"
#include "trace/recorder.hpp"
#include "util/timing.hpp"

namespace wstm::serve {

TxServer::TxServer(stm::Runtime& rt, ServerConfig config) : rt_(rt), config_(std::move(config)) {
  if (config_.n_workers == 0) throw std::invalid_argument("TxServer: n_workers must be > 0");
  const unsigned nq = config_.n_queues != 0 ? config_.n_queues : config_.n_workers;
  queues_.reserve(nq);
  for (unsigned i = 0; i < nq; ++i) {
    queues_.push_back(std::make_unique<BoundedQueue>(config_.queue_capacity));
  }
  SchedulerConfig sc;
  sc.n_queues = nq;
  sc.seed = config_.seed;
  sc.manager = &rt_.manager();
  sc.hot_threshold = config_.hot_threshold;
  sc.table_size = config_.table_size;
  sc.hot_lane_fraction = config_.hot_lane_fraction;
  scheduler_ = make_scheduler(config_.policy, sc);
  pool_ = std::make_unique<WorkerPool>(rt_, queues_, *scheduler_, config_.worker);
}

TxServer::~TxServer() { stop(); }

void TxServer::start() {
  if (started_.exchange(true)) return;
  pool_->start(config_.n_workers);
}

void TxServer::stop() {
  if (stopped_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& q : queues_) q->close();
  if (started_.load(std::memory_order_acquire)) pool_->join();
  stopped_.store(true, std::memory_order_release);
}

SubmitResult TxServer::submit(TxRequest req, unsigned producer_slot) {
  if (stopping_.load(std::memory_order_acquire) || rt_.stopping()) {
    rejected_stopping_.fetch_add(1, std::memory_order_relaxed);
    return SubmitResult::kRejectedStopping;
  }
  req.enqueue_ns = now_ns();
  const unsigned qi = scheduler_->place(req) % n_queues();
  BoundedQueue& q = *queues_[qi];
  const BoundedQueue::PushResult r =
      config_.backpressure == Backpressure::kBlock ? q.push_wait(req) : q.try_push(req);
  switch (r) {
    case BoundedQueue::PushResult::kOk:
      accepted_.fetch_add(1, std::memory_order_relaxed);
      if (config_.worker.recorder != nullptr && producer_slot != kNoProducerSlot) {
        config_.worker.recorder->record(producer_slot, trace::EventKind::kEnqueue, req.key, 0,
                                        trace::kNoEnemy, qi, q.depth());
      }
      return SubmitResult::kAccepted;
    case BoundedQueue::PushResult::kFull:
      return SubmitResult::kRejectedFull;
    case BoundedQueue::PushResult::kClosed:
      rejected_stopping_.fetch_add(1, std::memory_order_relaxed);
      return SubmitResult::kRejectedStopping;
  }
  return SubmitResult::kRejectedStopping;  // unreachable
}

TxServer::Stats TxServer::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected_stopping = rejected_stopping_.load(std::memory_order_relaxed);
  for (const auto& q : queues_) {
    const BoundedQueue::Stats qs = q->stats();
    s.enqueued += qs.enqueued;
    s.dequeued += qs.dequeued;
    s.rejected_full += qs.rejected_full;
    s.max_depth = qs.max_depth > s.max_depth ? qs.max_depth : s.max_depth;
  }
  return s;
}

}  // namespace wstm::serve
