// Ownership-record table for the lazy TL2-style engine (DESIGN.md §12).
//
// One orec is a versioned write-lock packed into a single atomic word:
//
//   unlocked:  (version << 1)        version = commit-clock value of the
//                                    last write-back covering this orec
//                                    (0 = never written)
//   locked:    (TxDesc* | 1)         the committing owner
//
// A single CAS transitions unlocked -> locked, so there is never a state
// where the lock is taken but the owner unknown — every intermediate state
// names an enemy to arbitrate against, which both the contention managers
// and the serialized deterministic checker rely on. TxDesc blocks are
// allocated with at least pointer alignment, so bit 0 is free for the tag.
//
// Objects hash to orecs by address; the table is power-of-two sized and
// deliberately unpadded (TL2-style): false sharing of *lock words* is a
// bounded commit-time cost, while padding 2^16 entries to cache lines would
// blow the table out of L2 entirely.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "stm/tx.hpp"

namespace wstm::stm {

class OrecTable {
 public:
  static constexpr std::uint64_t kLockBit = 1;

  explicit OrecTable(std::uint32_t log2_size)
      : mask_((std::size_t{1} << log2_size) - 1),
        words_(new std::atomic<std::uint64_t>[std::size_t{1} << log2_size]) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      words_[i].store(0, std::memory_order_relaxed);
    }
  }

  static bool locked(std::uint64_t w) noexcept { return (w & kLockBit) != 0; }
  static TxDesc* owner_of(std::uint64_t w) noexcept {
    return reinterpret_cast<TxDesc*>(w & ~kLockBit);
  }
  static std::uint64_t version_of(std::uint64_t w) noexcept { return w >> 1; }
  static std::uint64_t pack_version(std::uint64_t version) noexcept { return version << 1; }
  static std::uint64_t pack_owner(const TxDesc* owner) noexcept {
    return reinterpret_cast<std::uint64_t>(owner) | kLockBit;
  }

  /// The orec covering the object with first-touch id `id` (see
  /// TObjectBase::orec_id_ — ids rather than addresses keep the mapping
  /// deterministic across runs). Objects sharing a slot share the lock and
  /// the version — a false conflict, never a correctness problem (the
  /// engine dedups lock acquisition by orec address).
  std::atomic<std::uint64_t>& of_id(std::uint64_t id) noexcept {
    // Fibonacci hash; take high output bits, which mix best.
    const std::uint64_t v = id * 0x9e3779b97f4a7c15ULL;
    return words_[static_cast<std::size_t>(v >> 32) & mask_];
  }

  std::size_t size() const noexcept { return mask_ + 1; }

 private:
  std::size_t mask_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> words_;
};

}  // namespace wstm::stm
