// TL2-style lazy engine. Protocol summary (DESIGN.md §12):
//
//   begin     rv := commit clock (the attempt's read version)
//   read      (orec, body, orec) sandwich; locked-by-active → CM conflict;
//             version > rv → extend (sample clock, revalidate set, raise rv)
//   write     read protocol to snapshot the base, then buffer a redo clone
//   commit    sort write set by orec address → CAS-acquire each lock (CM
//             arbitration on contention) → validate read set → wv :=
//             ++clock → status CAS → write back bodies → release at wv
//   abort     restore the saved pre-lock words, drop unapplied clones
//
// Safety leans on two invariants. (V) Validation invariant: every read
// entry's orec still carries the word observed at first read — checked
// whenever rv advances and once under locks at commit, so the read set is a
// consistent snapshot at the attempt's serialization point. (L) Lock-order
// invariant: commit locks are acquired in global orec-address order, so
// committers cannot deadlock among themselves; every wait loop carries a
// schedule point, so the serialized checker always regains control.
#include "stm/orec/engine.hpp"

#include <algorithm>

#include "trace/recorder.hpp"

namespace wstm::stm {

OrecEngine::OrecEngine(Runtime& rt, std::uint32_t log2_orecs)
    : rt_(rt), table_(log2_orecs) {}

OrecEngine::~OrecEngine() = default;

OrecEngine::TxLogs& OrecEngine::logs(ThreadCtx& tc) {
  std::unique_ptr<TxLogs>& slot = logs_[tc.slot_];
  if (!slot) slot = std::make_unique<TxLogs>();
  return *slot;
}

std::atomic<std::uint64_t>& OrecEngine::orec_of(TObjectBase& obj) {
  std::uint64_t id = obj.orec_id_.load(std::memory_order_relaxed);
  if (id == 0) [[unlikely]] {
    // First touch: claim an id. A racing loser adopts the winner's — the
    // skipped id is just a gap. Under the serialized checker the fetch_add
    // order equals the (deterministic) first-access order, which is what
    // makes the whole orec mapping replay-stable.
    const std::uint64_t fresh = next_obj_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (obj.orec_id_.compare_exchange_strong(id, fresh, std::memory_order_relaxed)) {
      id = fresh;
    }
  }
  return table_.of_id(id);
}

const void* OrecEngine::committed_body(const TObjectBase& obj) noexcept {
  // The write-back store is release; pairing acquire makes the payload's
  // contents visible. Null means "never written back": the committed
  // payload is the initial locator's version, frozen in orec mode.
  if (const void* b = obj.orec_body_.load(std::memory_order_acquire)) return b;
  return obj.loc_.load(std::memory_order_relaxed)->new_version;
}

void OrecEngine::begin(ThreadCtx& tc) {
  TxLogs& lg = logs(tc);
  lg.reads.clear();
  lg.read_index.reset();
  lg.writes.clear();  // clones were freed by end(); entries are stale
  lg.write_index.reset();
  lg.locks.clear();
  lg.lock_order.clear();
  // rv: every version <= rv was written back before this attempt began, so
  // reading it can never observe a half-committed write set.
  tc.snapshot_clock_ = rt_.commit_clock_->load(std::memory_order_seq_cst);
}

const void* OrecEngine::read_consistent(ThreadCtx& tc, TObjectBase& obj,
                                        std::atomic<std::uint64_t>& orec, check::Point point,
                                        ConflictKind kind, std::uint64_t& word_out) {
  TxDesc* me = tc.current_;
  for (;;) {
    if (rt_.sched_point(point, &obj) == check::Action::kInjectAbort) {
      rt_.injected_abort(tc);
    }
    rt_.ensure_alive(tc);
    const std::uint64_t w1 = orec.load(std::memory_order_seq_cst);
    if (OrecTable::locked(w1)) {
      // Owner descriptors stay valid while we are EBR-pinned (the published
      // slot reference is only dropped through an EBR retire), and statuses
      // are absorbing, so a stale owner can never read back as kActive.
      TxDesc* owner = OrecTable::owner_of(w1);
      if (owner == me) {
        // Already ours (an irrevocable encounter-time lock, or a colliding
        // object sharing the orec with our commit): the committed body is
        // unchanged until write-back, and the read set must record the
        // pre-lock word so validation compares like with like.
        word_out = saved_word_of(logs(tc), &orec);
        return committed_body(obj);
      }
      const TxStatus st = owner->status.load(std::memory_order_acquire);
      if (st != TxStatus::kActive) {
        // Resolved mid-commit: a committed owner is writing back (release
        // imminent), an aborted one is restoring the saved word. Re-read;
        // the schedule point above keeps the checker's executor live.
        continue;
      }
      if (kind == ConflictKind::kWriteWrite) {
        tc.metrics_.ww_conflicts++;
      } else {
        tc.metrics_.rw_conflicts++;
      }
      rt_.note_conflict(tc, *owner);
      const Resolution res = rt_.arbitrate(tc, *me, *owner, kind);
      rt_.trace_conflict(tc, *owner, kind, res);
      if (res == Resolution::kAbortEnemy) {
        // Loop re-reads; the rollback restores the word. The kill is a
        // status transition, so fire its unpark edge.
        if (owner->try_abort()) rt_.signal_status_change(&tc, owner);
      } else if (res == Resolution::kAbortSelf) {
        rt_.abort_self(tc);
      } else {
        tc.waited_this_attempt_ = true;
      }
      continue;
    }
    const void* payload = committed_body(obj);
    // Sandwich recheck: an unchanged word brackets the payload load — a
    // concurrent committer's lock CAS is seq_cst and precedes its body
    // store, so reading its body here forces the re-read below to see the
    // lock. Unchanged ⟹ `payload` is the committed version for w1.
    if (orec.load(std::memory_order_seq_cst) != w1) continue;
    if (OrecTable::version_of(w1) > tc.snapshot_clock_) {
      // Version younger than rv: the snapshot cannot absorb it directly.
      // Extend rv (full revalidation; aborts on failure) and re-read.
      extend(tc);
      continue;
    }
    if (me->irrevocable.load(std::memory_order_relaxed)) [[unlikely]] {
      // Serial-fallback token holder: a lazy engine's conflicts normally
      // surface only at commit — too late for a transaction that is
      // forbidden to abort (commit-time validation failure would have
      // nowhere to go). So an irrevocable attempt locks every touched orec
      // at encounter time, DSTM-eager style: its validation then trivially
      // passes (everything is locked by itself), enemies wait or lose at
      // their own opens, and nobody can steal the locks (try_abort refuses
      // irrevocable targets).
      std::uint64_t expected = w1;
      if (!orec.compare_exchange_strong(expected, OrecTable::pack_owner(me),
                                        std::memory_order_seq_cst)) {
        continue;  // lost a race; re-examine the new word
      }
      logs(tc).locks.push_back({&orec, w1});
      tc.metrics_.orec_lock_acquires++;
    }
    word_out = w1;
    return payload;
  }
}

void OrecEngine::record_read(ThreadCtx& tc, std::atomic<std::uint64_t>& orec,
                             std::uint64_t word) {
  TxLogs& lg = logs(tc);
  const std::uint32_t idx = lg.read_index.find(&orec);
  if (idx != InvisReadIndex::kNotFound) {
    // Objects sharing this orec were read under one version. A mismatch is
    // unreachable while (V) holds — any version move past the recorded word
    // either trips the rv check (extend revalidates this entry) or shows a
    // lock (arbitrated) — so it is defense in depth: abort, don't assert.
    if (lg.reads[idx].seen != word) rt_.abort_self(tc);
    tc.metrics_.dup_reads++;
    return;
  }
  lg.read_index.insert(&orec, static_cast<std::uint32_t>(lg.reads.size()));
  lg.reads.push_back({&orec, word});
}

void OrecEngine::extend(ThreadCtx& tc) {
  // Sample first, then validate: entries proven unchanged after the sample
  // held their versions continuously from first read through the pass, in
  // particular at the sample instant — so the whole set is consistent there
  // and rv may advance to it (the TL2 extension argument).
  const std::uint64_t clock = rt_.commit_clock_->load(std::memory_order_seq_cst);
  validate_read_set(tc);
  tc.snapshot_clock_ = clock;
  tc.metrics_.extensions++;
  if (trace::Recorder* rec = rt_.config_.recorder) {
    rec->record(tc.slot_, trace::EventKind::kSnapshotExtend, tc.current_->serial, 1,
                trace::kNoEnemy, static_cast<std::uint64_t>(logs(tc).reads.size()), clock);
  }
}

void OrecEngine::validate_read_set(ThreadCtx& tc) {
  TxLogs& lg = logs(tc);
  TxDesc* me = tc.current_;
  tc.metrics_.validations++;
  tc.metrics_.validated_reads += lg.reads.size();
  for (const ReadEntry& r : lg.reads) {
    for (;;) {
      if (rt_.sched_point(check::Point::kOrecValidate, r.orec) ==
          check::Action::kInjectAbort) {
        rt_.injected_abort(tc);
      }
      rt_.ensure_alive(tc);
      const std::uint64_t w = r.orec->load(std::memory_order_seq_cst);
      if (w == r.seen) break;
      if (!OrecTable::locked(w)) {
        // The version moved past what we read: the snapshot is stale and
        // cannot be repaired (the old version is gone for good).
        rt_.abort_self(tc);
      }
      TxDesc* owner = OrecTable::owner_of(w);
      if (owner == me) {
        // Locked by our own commit: compare the pre-lock word we replaced.
        if (saved_word_of(lg, r.orec) == r.seen) break;
        rt_.abort_self(tc);
      }
      const TxStatus st = owner->status.load(std::memory_order_acquire);
      if (st != TxStatus::kActive) continue;  // releasing/restoring; re-read
      // An active committer holds a lock over something we read — the same
      // read-write conflict the open path arbitrates.
      tc.metrics_.rw_conflicts++;
      rt_.note_conflict(tc, *owner);
      const Resolution res = rt_.arbitrate(tc, *me, *owner, ConflictKind::kReadWrite);
      rt_.trace_conflict(tc, *owner, ConflictKind::kReadWrite, res);
      if (res == Resolution::kAbortEnemy) {
        if (owner->try_abort()) rt_.signal_status_change(&tc, owner);
      } else if (res == Resolution::kAbortSelf) {
        rt_.abort_self(tc);
      } else {
        tc.waited_this_attempt_ = true;
      }
    }
  }
}

bool OrecEngine::ghost_read_set_valid(ThreadCtx& tc) {
  TxLogs& lg = logs(tc);
  TxDesc* me = tc.current_;
  for (const ReadEntry& r : lg.reads) {
    const std::uint64_t w = r.orec->load(std::memory_order_seq_cst);
    if (w == r.seen) continue;
    if (OrecTable::locked(w) && OrecTable::owner_of(w) == me &&
        saved_word_of(lg, r.orec) == r.seen) {
      continue;
    }
    return false;
  }
  return true;
}

std::uint64_t OrecEngine::saved_word_of(const TxLogs& lg,
                                        const std::atomic<std::uint64_t>* orec) const {
  for (const LockEntry& l : lg.locks) {
    if (l.orec == orec) return l.saved;
  }
  return UINT64_MAX;  // never equals an unlocked word (those have bit0 == 0)
}

const void* OrecEngine::open_read(ThreadCtx& tc, TObjectBase& obj) {
  TxLogs& lg = logs(tc);
  TxDesc* me = tc.current_;
  // Read-own-writes: the redo clone is this attempt's view of the object.
  const std::uint32_t widx = lg.write_index.find(&obj);
  if (widx != InvisReadIndex::kNotFound) {
    rt_.manager_->on_open(tc, *me);
    return lg.writes[widx].clone;
  }
  std::atomic<std::uint64_t>& orec = orec_of(obj);
  std::uint64_t word = 0;
  const void* payload =
      read_consistent(tc, obj, orec, check::Point::kRead, ConflictKind::kReadWrite, word);
  record_read(tc, orec, word);
  // Ghost opacity oracle (checker builds only, under the schedule token):
  // no schedule point sits between read_consistent's sandwich recheck and
  // here, so the payload must still be the committed body — a mismatch
  // means the sandwich argument regressed.
  if (rt_.config_.checker != nullptr && committed_body(obj) != payload) {
    rt_.config_.checker->on_opacity_violation(
        "orec open_read returned a payload superseded before return");
  }
  rt_.manager_->on_open(tc, *me);
  return payload;
}

void* OrecEngine::open_write(ThreadCtx& tc, TObjectBase& obj) {
  TxLogs& lg = logs(tc);
  TxDesc* me = tc.current_;
  const std::uint32_t widx = lg.write_index.find(&obj);
  if (widx != InvisReadIndex::kNotFound) {
    rt_.manager_->on_open(tc, *me);
    return lg.writes[widx].clone;
  }
  // Lazy acquisition: snapshot a consistent base (recorded as a read — the
  // commit-time validation then proves the clone was derived from the
  // still-current version), buffer a private clone, lock nothing yet.
  std::atomic<std::uint64_t>& orec = orec_of(obj);
  std::uint64_t word = 0;
  const void* base =
      read_consistent(tc, obj, orec, check::Point::kWrite, ConflictKind::kWriteWrite, word);
  record_read(tc, orec, word);
  void* clone = obj.make_clone(tc.pool_, base);
  lg.write_index.insert(&obj, static_cast<std::uint32_t>(lg.writes.size()));
  lg.writes.push_back({&obj, &orec, clone});
  tc.wrote_this_attempt_ = true;
  rt_.manager_->on_open(tc, *me);
  return clone;
}

void OrecEngine::acquire_locks(ThreadCtx& tc) {
  TxLogs& lg = logs(tc);
  TxDesc* me = tc.current_;
  // Canonical global order (orec address) makes concurrent committers
  // deadlock-free; objects hashed to one orec collapse to a single lock
  // (equal pointers sort adjacent and are skipped).
  lg.lock_order.resize(lg.writes.size());
  for (std::uint32_t i = 0; i < lg.writes.size(); ++i) lg.lock_order[i] = i;
  std::sort(lg.lock_order.begin(), lg.lock_order.end(),
            [&lg](std::uint32_t a, std::uint32_t b) {
              return lg.writes[a].orec < lg.writes[b].orec;
            });
  const std::atomic<std::uint64_t>* prev = nullptr;
  for (const std::uint32_t idx : lg.lock_order) {
    std::atomic<std::uint64_t>& orec = *lg.writes[idx].orec;
    if (&orec == prev) continue;
    prev = &orec;
    for (;;) {
      if (rt_.sched_point(check::Point::kOrecLock, lg.writes[idx].obj) ==
          check::Action::kInjectAbort) {
        rt_.injected_abort(tc);  // end() releases whatever is already held
      }
      rt_.ensure_alive(tc);
      std::uint64_t w = orec.load(std::memory_order_seq_cst);
      if (!OrecTable::locked(w)) {
        // One CAS is both acquisition and owner publication: losers always
        // see who beat them, so there is an enemy to arbitrate against.
        if (orec.compare_exchange_strong(w, OrecTable::pack_owner(me),
                                         std::memory_order_seq_cst)) {
          lg.locks.push_back({&orec, w});
          tc.metrics_.orec_lock_acquires++;
          break;
        }
        continue;  // contended CAS; re-examine the new word
      }
      TxDesc* owner = OrecTable::owner_of(w);
      // Already ours: an irrevocable attempt encounter-locked it at open
      // time (the LockEntry with the saved word exists since then).
      if (owner == me) break;
      const TxStatus st = owner->status.load(std::memory_order_acquire);
      if (st != TxStatus::kActive) continue;  // releasing/restoring; re-read
      // Commit-time write-write conflict. arbitrate() keeps the liveness
      // contract intact here: an irrevocable self short-circuits to
      // kAbortEnemy (lock "stealing" happens only by killing the holder,
      // which try_abort refuses for irrevocable enemies), and an
      // irrevocable enemy short-circuits to kRetry — so the serial-fallback
      // token holder's locks can never be stolen and it never waits forever.
      tc.metrics_.ww_conflicts++;
      tc.metrics_.orec_lock_waits++;
      rt_.note_conflict(tc, *owner);
      const Resolution res = rt_.arbitrate(tc, *me, *owner, ConflictKind::kWriteWrite);
      rt_.trace_conflict(tc, *owner, ConflictKind::kWriteWrite, res);
      if (res == Resolution::kAbortEnemy) {
        // Its rollback restores the word; loop re-reads. Fire the unpark
        // edge for waiters parked on the killed holder.
        if (owner->try_abort()) rt_.signal_status_change(&tc, owner);
      } else if (res == Resolution::kAbortSelf) {
        rt_.abort_self(tc);
      } else {
        tc.waited_this_attempt_ = true;
      }
    }
  }
}

bool OrecEngine::commit(ThreadCtx& tc) {
  TxLogs& lg = logs(tc);
  TxDesc* me = tc.current_;
  if (rt_.chaos_ != nullptr) [[unlikely]] rt_.chaos_at_commit(tc);
  if (lg.writes.empty()) {
    // Read-only: every read was rv-consistent at open, so the attempt
    // serializes at its last extension (or begin). The status CAS is still
    // required — a remote kill must not be reported as a commit.
    TxStatus expected = TxStatus::kActive;
    const bool won = me->status.compare_exchange_strong(expected, TxStatus::kCommitted,
                                                        std::memory_order_seq_cst);
    // SEEDED BUG (park-lost-wakeup): the elided edge is the commit one.
    if (won && !rt_.config_.bugs.park_lost_wakeup) rt_.signal_status_change(&tc, me);
    return won;
  }
  acquire_locks(tc);
  if (rt_.config_.bugs.orec_skip_validation) [[unlikely]] {
    // SEEDED BUG: commit without the read-set validation, publishing writes
    // derived from a snapshot that may have been overwritten since — the
    // exact unsoundness invariant (V) protects against. Under the checker a
    // ghost pass evaluates the skipped validation: a would-have-failed
    // commit is reported as the opacity violation and then aborted rather
    // than published, so exploration observes the bug deterministically
    // instead of crashing on the downstream use-after-free (a stale commit
    // can resurrect an already-EBR-retired node).
    if (rt_.config_.checker != nullptr && !ghost_read_set_valid(tc)) {
      rt_.config_.checker->on_opacity_violation(
          "orec commit skipped a read-set validation that would have failed");
      rt_.abort_self(tc);  // throws; end() releases the held locks
    }
  } else {
    validate_read_set(tc);
  }
  // wv: eager bump on the shared clock, the PR 5 protocol. The PR 7
  // deferred-stamping machinery stays DSTM-only — orec readers key
  // validation off orec words, which must carry a real clock value at
  // release time, so there is no orec-side consumer for a lazy stamp
  // (DESIGN.md §12).
  const std::uint64_t wv = rt_.commit_clock_->fetch_add(1, std::memory_order_seq_cst) + 1;
  tc.metrics_.clock_bumps++;
  TxStatus expected = TxStatus::kActive;
  if (!me->status.compare_exchange_strong(expected, TxStatus::kCommitted,
                                          std::memory_order_seq_cst)) {
    return false;  // remote kill between the last open and here; end() unlocks
  }
  writeback_and_release(tc, wv);
  // Unpark after write-back, not right at the status CAS: waiters waking
  // into still-locked orecs would only spin on the releasing owner. The
  // seeded park-lost-wakeup bug elides exactly this commit-path edge.
  if (!rt_.config_.bugs.park_lost_wakeup) rt_.signal_status_change(&tc, me);
  return true;
}

void OrecEngine::writeback_and_release(ThreadCtx& tc, std::uint64_t wv) {
  TxLogs& lg = logs(tc);
  for (const WriteEntry& w : lg.writes) {
    TObjectBase& obj = *w.obj;
    void* old = obj.orec_body_.load(std::memory_order_relaxed);
    // Release store: a reader whose sandwich admits this body also sees its
    // contents. The replaced body may still be referenced by pinned readers
    // — EBR-retire it. The initial version (old == null) stays owned by the
    // locator and dies with the object.
    obj.orec_body_.store(w.clone, std::memory_order_release);
    if (old != nullptr) tc.ebr_.retire(old, obj.destroy_);
    tc.metrics_.orec_write_backs++;
  }
  // Release write-covering orecs at wv; locks that cover only reads (an
  // irrevocable attempt's encounter-time read locks) go back to their saved
  // word — the body never changed, and a spurious version bump would only
  // force other readers into needless extensions/aborts.
  const std::uint64_t packed = OrecTable::pack_version(wv);
  for (const LockEntry& l : lg.locks) {
    bool covers_write = false;
    for (const WriteEntry& w : lg.writes) {
      if (w.orec == l.orec) {
        covers_write = true;
        break;
      }
    }
    l.orec->store(covers_write ? packed : l.saved, std::memory_order_seq_cst);
  }
  lg.locks.clear();
  lg.writes.clear();  // clone ownership passed to the objects
  lg.write_index.reset();
}

void OrecEngine::end(ThreadCtx& tc, bool /*committed*/) {
  TxLogs& lg = logs(tc);
  // Locks still held ⟹ the attempt died mid-commit (validation failure,
  // remote kill, injected abort): restore the pre-lock words so waiting
  // committers and validators resume. Restoring the exact saved word keeps
  // every reader sandwich honest — the body never changed under this lock.
  for (auto it = lg.locks.rbegin(); it != lg.locks.rend(); ++it) {
    it->orec->store(it->saved, std::memory_order_seq_cst);
  }
  lg.locks.clear();
  // Unapplied redo clones were never published; free them directly.
  for (const WriteEntry& w : lg.writes) {
    if (w.clone != nullptr) w.obj->destroy_(w.clone);
  }
  lg.writes.clear();
  lg.write_index.reset();
  lg.reads.clear();
  lg.read_index.reset();
}

}  // namespace wstm::stm
