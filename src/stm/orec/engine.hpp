// Lazy TL2-style execution engine over the Backend concept (DESIGN.md §12).
//
// Reads sample (orec, body, orec) sandwiches against an attempt-local read
// version rv (ThreadCtx::snapshot_clock_, the same field the DSTM snapshot
// fast path uses) and extend rv by revalidating the read set when they trip
// over a younger version. Writes buffer redo-log clones — nothing is locked
// until commit, where the engine acquires the write set's orecs in address
// order, validates the read set, takes a commit timestamp from the shared
// commit clock, flips status, writes back and releases. Conflicts (a locked
// orec at read/lock time, a locked entry at validation time) go through
// Runtime::arbitrate, so the whole CM family — window managers, frame
// scheduling, the escalation ladder and the irrevocable serial-fallback
// token — applies to this engine exactly as it does to DSTM.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "stm/backend.hpp"
#include "stm/orec/orec.hpp"
#include "stm/runtime.hpp"

namespace wstm::stm {

class OrecEngine final : public Backend {
 public:
  OrecEngine(Runtime& rt, std::uint32_t log2_orecs);
  ~OrecEngine() override;

  BackendKind kind() const noexcept override { return BackendKind::kOrec; }
  void begin(ThreadCtx& tc) override;
  const void* open_read(ThreadCtx& tc, TObjectBase& obj) override;
  void* open_write(ThreadCtx& tc, TObjectBase& obj) override;
  bool commit(ThreadCtx& tc) override;
  void end(ThreadCtx& tc, bool committed) override;

  OrecTable& table() noexcept { return table_; }

 private:
  struct ReadEntry {
    std::atomic<std::uint64_t>* orec;
    std::uint64_t seen;  // unlocked word observed at first read (version<<1)
  };
  struct WriteEntry {
    TObjectBase* obj;
    std::atomic<std::uint64_t>* orec;
    void* clone;  // redo-log payload (pool block via TObjectBase::make_clone)
  };
  struct LockEntry {
    std::atomic<std::uint64_t>* orec;
    std::uint64_t saved;  // unlocked word our lock CAS replaced
  };

  /// Per-slot transaction logs, owned by the engine and reused across
  /// attempts (vectors and index maps keep their capacity, clones come from
  /// the thread's slab pool — the hot path allocates nothing in steady
  /// state). Indexed by ThreadCtx::slot(), so slot recycling reuses logs;
  /// begin() resets them.
  struct TxLogs {
    std::vector<ReadEntry> reads;
    InvisReadIndex read_index;  // orec address -> reads index (dedup)
    std::vector<WriteEntry> writes;
    InvisReadIndex write_index;  // object address -> writes index
    std::vector<std::uint32_t> lock_order;  // writes indexes, orec-sorted
    std::vector<LockEntry> locks;           // held commit locks, in order
  };

  TxLogs& logs(ThreadCtx& tc);

  /// The orec covering `obj`, assigning its first-touch id on demand.
  std::atomic<std::uint64_t>& orec_of(TObjectBase& obj);

  /// The committed payload of `obj`: the write-back slot when a committer
  /// has ever published one, else the (frozen) initial version.
  static const void* committed_body(const TObjectBase& obj) noexcept;

  /// One consistent (orec word, payload) sample of `obj`, arbitrating
  /// against active lock holders and extending rv past younger versions.
  /// `point`/`kind` make the loop read like the matching DSTM open
  /// (kRead/kReadWrite for reads, kWrite/kWriteWrite for write opens).
  const void* read_consistent(ThreadCtx& tc, TObjectBase& obj,
                              std::atomic<std::uint64_t>& orec, check::Point point,
                              ConflictKind kind, std::uint64_t& word_out);

  /// Record (orec, word) in the read log, deduplicating by orec address.
  void record_read(ThreadCtx& tc, std::atomic<std::uint64_t>& orec, std::uint64_t word);

  /// Extend rv: sample the clock, revalidate the whole read set (aborts
  /// self on failure), advance rv to the sample.
  void extend(ThreadCtx& tc);

  /// Revalidate every read entry against its recorded word. Entries locked
  /// by an active enemy are CM-arbitrated (the enemy is mid-commit over
  /// something we read); entries locked by ourselves compare the pre-lock
  /// saved word. Aborts self on any entry whose version moved on.
  void validate_read_set(ThreadCtx& tc);

  /// Non-aborting ghost pass for the checker: would validate_read_set
  /// succeed right now? (Used to flag the seeded skip-validation bug.)
  bool ghost_read_set_valid(ThreadCtx& tc);

  /// Sorted, CM-arbitrated acquisition of the write set's orecs. Fills
  /// lg.locks; throws TxAbort on kAbortSelf (end() releases whatever was
  /// already held).
  void acquire_locks(ThreadCtx& tc);

  /// Install redo-log clones as the committed bodies (retiring replaced
  /// ones through EBR) and release all locks at version `wv`.
  void writeback_and_release(ThreadCtx& tc, std::uint64_t wv);

  /// The saved pre-lock word for an orec we hold (linear scan of lg.locks;
  /// the held set is small).
  std::uint64_t saved_word_of(const TxLogs& lg, const std::atomic<std::uint64_t>* orec) const;

  Runtime& rt_;
  OrecTable table_;
  /// First-touch id source for orec_of (ids start at 1; 0 = unassigned).
  std::atomic<std::uint64_t> next_obj_id_{0};
  std::array<std::unique_ptr<TxLogs>, Runtime::kMaxThreads> logs_;
};

}  // namespace wstm::stm
