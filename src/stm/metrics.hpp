// Per-thread transactional metrics and their aggregation.
//
// Counters are written only by the owning thread (each slot is cache-line
// padded) and read by the harness after the threads have joined, so plain
// non-atomic fields suffice for the hot path except where noted.
#pragma once

#include <cstdint>
#include <string>

namespace wstm::stm {

/// Counters for one thread. Reset between measurement phases.
struct ThreadMetrics {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;

  // Conflicts seen at open time, by kind (from the opener's perspective).
  std::uint64_t ww_conflicts = 0;
  std::uint64_t wr_conflicts = 0;
  std::uint64_t rw_conflicts = 0;
  /// Conflicts against the same enemy attempt as the previous conflict on
  /// this thread ("repeat conflicts" — time spent fighting one enemy).
  std::uint64_t repeat_conflicts = 0;

  /// Wall time spent in attempts that ended in abort ("wasted work").
  std::int64_t wasted_ns = 0;
  /// Wall time spent in attempts that committed.
  std::int64_t committed_ns = 0;
  /// Sum over committed transactions of (commit time - first attempt begin):
  /// response time, including all retries.
  std::int64_t response_ns = 0;
  /// Total attempts whose conflict loop waited at least once.
  std::uint64_t waits = 0;

  // Requester-waits arbitration (src/stm/park.hpp; all 0 in abort mode).
  /// Parks taken (both real futex-style waits and checker kPark points).
  std::uint64_t parks = 0;
  /// Wall time spent parked (real mode only — checker parks are virtual).
  std::int64_t park_ns = 0;
  /// Waiters this thread's status transitions woke (commit/abort/kill).
  std::uint64_t unparks = 0;
  /// Parks that woke with the enemy still active (site collision, timeout
  /// slice expiry, or a missed edge degrading to the bounded timeout).
  std::uint64_t spurious_wakeups = 0;
  /// Aborts forced by the deterministic checker's fault injector (a subset
  /// of `aborts`; always 0 outside checker runs).
  std::uint64_t injected_aborts = 0;

  // Invisible-read validation; all 0 in visible-read mode.
  /// Full read-set validation passes executed (each O(R)).
  std::uint64_t validations = 0;
  /// Read-set entries checked across those passes (the real validation
  /// cost: O(reads * R) without the commit-clock fast path).
  std::uint64_t validated_reads = 0;
  /// Passes that ran because the commit clock advanced past the attempt's
  /// snapshot (LSA/TL2-style snapshot extension; subset of `validations`).
  std::uint64_t extensions = 0;
  /// Validation passes skipped by the snapshot fast path (clock unchanged).
  std::uint64_t validations_skipped = 0;
  /// Estimated time saved by skipped passes (skips x EWMA of measured
  /// extension-pass cost; 0 until the first extension pass calibrates it).
  std::int64_t validation_saved_ns = 0;
  /// Re-opens of an object already in the read set (deduplicated, not
  /// appended — without dedup R becomes the read *count*).
  std::uint64_t dup_reads = 0;

  // Shared-line contention (see DESIGN.md §11). These separate "how often a
  // thread wrote a process-wide cache line" from "how often it wanted to".
  /// Writes to the shared commit-clock line: eager mode counts one per
  /// write-commit (the PR 5 fetch_add); deferred mode counts only the
  /// extension-path CAS advances — the whole point of GV5-style deferral.
  std::uint64_t clock_bumps = 0;
  /// Write-commits that stamped `clock+1` into their descriptor without
  /// touching the shared clock line (deferred mode only).
  std::uint64_t deferred_stamps = 0;
  /// Snapshot establishments retried or refused because a commit completed
  /// mid-scan (the deferred clock's interference rule; see DESIGN.md §11).
  std::uint64_t snapshot_interference = 0;
  /// Failed CAS iterations on the striped visible-reader records: the
  /// residual announce/clear contention the stripes exist to spread.
  std::uint64_t reader_stripe_retries = 0;
  /// Cross-shard EBR epoch syncs (full-domain scans that advanced the
  /// epoch) triggered by this thread's retires.
  std::uint64_t ebr_shard_syncs = 0;

  // Orec backend (src/stm/orec/); all 0 under the DSTM engine. The shared
  // validation counters above (validations, validated_reads, extensions,
  // dup_reads, clock_bumps) are reused with the same meaning.
  /// Orec write-locks successfully acquired at commit time.
  std::uint64_t orec_lock_acquires = 0;
  /// Lock-acquire iterations that found the orec held by an active enemy
  /// (each one is a CM-arbitrated write-write conflict).
  std::uint64_t orec_lock_waits = 0;
  /// Redo-log entries written back under lock by committed transactions.
  std::uint64_t orec_write_backs = 0;

  // Liveness layer (src/resilience/); all 0 unless the watchdog/escalation
  // ladder or chaos injection is enabled on the RuntimeConfig.
  /// Attempts that started at escalation level >= 1 (backoff or above).
  std::uint64_t escalations = 0;
  /// Attempts that ran irrevocably under the serial-fallback token.
  std::uint64_t serial_fallbacks = 0;
  /// Logical transactions abandoned with TxTimeoutError.
  std::uint64_t timeouts = 0;
  /// Watchdog detections (storm/stall episodes) collected by this thread.
  std::uint64_t watchdog_flags = 0;
  /// Chaos faults suffered by this thread (stalls, spurious aborts, delays,
  /// EBR pressure bursts).
  std::uint64_t chaos_faults = 0;

  // Serving front-end (src/serve/), counted by worker threads; all 0 in
  // closed-loop runs.
  /// Requests this worker pulled off a submit queue.
  std::uint64_t serve_dequeued = 0;
  /// Requests that committed (the only ones whose `done` hook ran).
  std::uint64_t serve_completed = 0;
  /// Requests shed at dequeue because their deadline had already passed.
  std::uint64_t serve_expired = 0;
  /// Requests that completed, but after their deadline.
  std::uint64_t serve_deadline_misses = 0;
  /// Requests dropped because the runtime was shutting down.
  std::uint64_t serve_cancelled = 0;
  /// Submit-to-dequeue wall time summed over dequeued requests.
  std::int64_t serve_queue_wait_ns = 0;

  void reset() { *this = ThreadMetrics{}; }

  ThreadMetrics& operator+=(const ThreadMetrics& other) {
    commits += other.commits;
    aborts += other.aborts;
    ww_conflicts += other.ww_conflicts;
    wr_conflicts += other.wr_conflicts;
    rw_conflicts += other.rw_conflicts;
    repeat_conflicts += other.repeat_conflicts;
    wasted_ns += other.wasted_ns;
    committed_ns += other.committed_ns;
    response_ns += other.response_ns;
    waits += other.waits;
    parks += other.parks;
    park_ns += other.park_ns;
    unparks += other.unparks;
    spurious_wakeups += other.spurious_wakeups;
    injected_aborts += other.injected_aborts;
    validations += other.validations;
    validated_reads += other.validated_reads;
    extensions += other.extensions;
    validations_skipped += other.validations_skipped;
    validation_saved_ns += other.validation_saved_ns;
    dup_reads += other.dup_reads;
    clock_bumps += other.clock_bumps;
    deferred_stamps += other.deferred_stamps;
    snapshot_interference += other.snapshot_interference;
    reader_stripe_retries += other.reader_stripe_retries;
    ebr_shard_syncs += other.ebr_shard_syncs;
    orec_lock_acquires += other.orec_lock_acquires;
    orec_lock_waits += other.orec_lock_waits;
    orec_write_backs += other.orec_write_backs;
    escalations += other.escalations;
    serial_fallbacks += other.serial_fallbacks;
    timeouts += other.timeouts;
    watchdog_flags += other.watchdog_flags;
    chaos_faults += other.chaos_faults;
    serve_dequeued += other.serve_dequeued;
    serve_completed += other.serve_completed;
    serve_expired += other.serve_expired;
    serve_deadline_misses += other.serve_deadline_misses;
    serve_cancelled += other.serve_cancelled;
    serve_queue_wait_ns += other.serve_queue_wait_ns;
    return *this;
  }
};

/// Derived quantities the paper reports.
struct MetricsSummary {
  double throughput_per_s = 0.0;     // commits / elapsed seconds
  double aborts_per_commit = 0.0;    // Fig. 4's metric
  double wasted_fraction = 0.0;      // wasted / (wasted + committed) time
  double mean_response_us = 0.0;     // mean committed response time
  double repeat_conflicts_per_commit = 0.0;  // paper §IV "repeat conflicts"
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;

  // Shared-line contention totals (DESIGN.md §11); all zero when the
  // relevant subsystem is off, and then omitted from to_string().
  std::uint64_t clock_bumps = 0;
  std::uint64_t deferred_stamps = 0;
  std::uint64_t snapshot_interference = 0;
  std::uint64_t reader_stripe_retries = 0;
  std::uint64_t ebr_shard_syncs = 0;

  // Orec-backend totals; zero (and omitted from to_string()) under DSTM.
  std::uint64_t orec_lock_acquires = 0;
  std::uint64_t orec_lock_waits = 0;
  std::uint64_t orec_write_backs = 0;

  // Requester-waits arbitration totals; zero (and omitted from to_string())
  // in abort mode.
  std::uint64_t parks = 0;
  std::int64_t park_ns = 0;
  std::uint64_t unparks = 0;
  std::uint64_t spurious_wakeups = 0;

  std::string to_string() const;
};

/// Summarizes a totals struct over an elapsed wall-clock duration.
MetricsSummary summarize(const ThreadMetrics& totals, std::int64_t elapsed_ns);

}  // namespace wstm::stm
