#include "stm/tobject.hpp"

namespace wstm::stm {

void Locator::reclaim(void* locator_ptr) {
  auto* l = static_cast<Locator*>(locator_ptr);
  if (l->dead_version != nullptr) l->destroy(l->dead_version);
  if (l->owner != nullptr) l->owner->release();
  util::Pool::deallocate(l);
}

}  // namespace wstm::stm
