// Transaction descriptors.
//
// A TxDesc is allocated per attempt (like DSTM's per-attempt Transaction
// objects) out of the owning thread's pool and is shared state: locators
// point at it, and enemy threads read/CAS its status and read its priority
// fields. It is reclaimed by reference count — one reference held by the
// executing thread for the duration of the attempt, plus one per locator
// that names it as owner (dropped when the locator itself is reclaimed
// through EBR) — and recycled through the pool when the count hits zero.
#pragma once

#include <atomic>
#include <cstdint>

#include "stm/fwd.hpp"
#include "util/cacheline.hpp"
#include "util/pool.hpp"

namespace wstm::stm {

struct alignas(kCacheLine) TxDesc {
  std::atomic<TxStatus> status{TxStatus::kActive};

  /// Thread slot in [0, Runtime::kMaxThreads); also indexes the striped
  /// visible-reader records (stripe = slot % K, bit = slot / K).
  std::uint32_t thread_slot = 0;
  /// Attempt number within the thread (diagnostics / tie-breaking).
  std::uint64_t serial = 0;

  /// Deferred commit clock (DESIGN.md §11): the stamp `G+1` this write-
  /// commit claims, written by the owner between its commit-pending
  /// announcement and its status CAS. Readers load it only after observing
  /// status == kCommitted (the CAS's release publishes the relaxed store),
  /// so the value is final whenever it is consulted. Stays 0 for read-only
  /// attempts and in eager-clock mode.
  std::atomic<std::uint64_t> commit_stamp{0};

  /// Start of this attempt (steady-clock ns).
  std::int64_t begin_ns = 0;
  /// Start of the *first* attempt of this logical transaction; survives
  /// retries. This is the timestamp Greedy and Priority arbitrate on.
  std::int64_t first_begin_ns = 0;

  // --- contention-manager scratch, readable by enemies ---

  /// Karma/Polka priority: number of objects opened so far (all attempts).
  std::atomic<std::uint32_t> karma{0};
  /// Greedy's "waiting" flag: set while the transaction is blocked inside a
  /// contention-manager wait; a waiting transaction may be killed by anyone.
  std::atomic<bool> waiting{false};

  /// Window pi(1): 1 = low priority (before the assigned frame), 0 = high.
  std::atomic<std::uint32_t> prio_class{1};
  /// Window pi(2): RandomizedRounds priority in [1, M]; redrawn on frame
  /// start and after every abort. Lower value wins.
  std::atomic<std::uint64_t> rand_prio{0};

  /// Escalation-ladder priority boost (0 = none). Read by enemies through
  /// ContentionManager::resolve_with_boost: a higher boost wins outright,
  /// regardless of the manager's own policy. Written only by the owning
  /// thread before the descriptor is published.
  std::atomic<std::uint32_t> boost{0};
  /// Serial-fallback mode: the holder of the global irrevocable token
  /// cannot be aborted by enemies (try_abort refuses), so its conflicts
  /// must wait. Written only by the owning thread before publication;
  /// cleared by the owner before any abort of its own finalizes (abort_self
  /// and finish_attempt_abort both demote before their try_abort).
  std::atomic<bool> irrevocable{false};

  /// Identity of the transaction that aborted this one, registered by
  /// scheduler-style managers (Steal-On-Abort) before the kill; carries one
  /// reference, released by the victim's cleanup (runtime) or its manager's
  /// on_abort, whichever claims it first via exchange.
  std::atomic<TxDesc*> aborted_by{nullptr};

  // --- lifetime ---
  std::atomic<std::int32_t> refs{1};

  void add_ref() noexcept { refs.fetch_add(1, std::memory_order_relaxed); }

  /// Drops one reference; recycles the descriptor's block when it was the
  /// last. Runtime-created descriptors live in pool blocks (see
  /// Runtime::begin_attempt); a remote release routes the block back to the
  /// owning thread's pool through its remote-free stack.
  void release() noexcept {
    if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      this->~TxDesc();
      util::Pool::deallocate(this);
    }
  }

  bool is_active() const noexcept {
    return status.load(std::memory_order_acquire) == TxStatus::kActive;
  }

  /// Tries to kill this transaction. Returns true if the transaction ends
  /// up aborted (whether we did it or it already was), false if it managed
  /// to commit first. An irrevocable transaction (serial-fallback token
  /// holder) refuses remote kills; its owner demotes it (clears the flag)
  /// before any self-abort, so the refusal only ever blocks enemies.
  bool try_abort() noexcept {
    if (irrevocable.load(std::memory_order_acquire)) {
      return status.load(std::memory_order_acquire) == TxStatus::kAborted;
    }
    TxStatus expected = TxStatus::kActive;
    return status.compare_exchange_strong(expected, TxStatus::kAborted,
                                          std::memory_order_acq_rel) ||
           expected == TxStatus::kAborted;
  }
};

}  // namespace wstm::stm
