// Transactional objects: the DSTM locator protocol (Herlihy, Luchangco,
// Moir, Scherer, PODC'03), as used by DSTM2 with visible reads.
//
// Every TObject holds an atomic pointer to an immutable Locator naming an
// owner transaction and two versions of the payload:
//
//     current committed version =  new_version  if owner committed (or none)
//                                  old_version  if owner aborted or active
//
// A writer acquires the object by CASing in a fresh locator whose
// old_version is the current committed version and whose new_version is a
// private clone it then mutates. An *active* previous owner is a conflict
// handed to the contention manager; because ownership can be stolen right
// after a remote status CAS, the protocol is obstruction-free — nobody ever
// waits for a preempted thread unless the contention manager chooses to.
//
// Visible reads: striped per-object reader records with one bit per thread
// slot, spread over K cache-line-padded words (stripe = slot % K, bit =
// slot / K). Writers resolve against every active reader in their
// acquire-time snapshot by scanning the stripes; combined with the "check
// own status before every open" rule in the runtime this yields consistent
// views without read-set validation (see DESIGN.md §5, §11).
#pragma once

#include <atomic>
#include <cstdint>
#include <new>
#include <utility>

#include "stm/fwd.hpp"
#include "stm/tx.hpp"
#include "util/cacheline.hpp"
#include "util/pool.hpp"

namespace wstm::stm {

class Tx;

/// Striped visible-reader records (SNZI-lite). The old single 64-bit bitmap
/// made every reader of a hot object RMW the same cache line — a CAS retry
/// storm at high thread counts — and capped the process at 64 visible
/// readers. K independent cache-line-padded words indexed by thread slot
/// spread the announce/clear traffic K ways and raise the ceiling to
/// K * 64 slots. Writers resolve readers by scanning all K stripes; the
/// scan is K cache-line loads, paid only on write acquisition.
struct ReaderStripes {
  static constexpr unsigned kStripes = 4;
  /// Max thread slots representable (must cover Runtime::kMaxThreads).
  static constexpr unsigned kCapacity = kStripes * 64;

  static constexpr unsigned stripe_of(unsigned slot) noexcept {
    return slot % kStripes;
  }
  static constexpr std::uint64_t bit_of(unsigned slot) noexcept {
    return std::uint64_t{1} << (slot / kStripes);
  }
  /// Inverse of (stripe_of, bit index): the slot a set bit belongs to.
  static constexpr unsigned slot_at(unsigned stripe, unsigned bit) noexcept {
    return bit * kStripes + stripe;
  }

  /// Tests `slot`'s bit without ordering (the owner is the only writer of
  /// its own bit, so a relaxed self-test cannot race).
  bool announced(unsigned slot) const noexcept {
    return (stripe_[stripe_of(slot)]->load(std::memory_order_relaxed) &
            bit_of(slot)) != 0;
  }

  /// Sets `slot`'s bit. seq_cst on success: the visible-read flag protocol
  /// requires the announcement to be ordered before the subsequent locator
  /// load in the single total order (see DESIGN.md §5). Returns the number
  /// of failed CAS iterations — the residual stripe contention metric.
  unsigned announce(unsigned slot) noexcept {
    std::atomic<std::uint64_t>& s = *stripe_[stripe_of(slot)];
    const std::uint64_t bit = bit_of(slot);
    unsigned retries = 0;
    std::uint64_t cur = s.load(std::memory_order_relaxed);
    while (!s.compare_exchange_weak(cur, cur | bit, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
      ++retries;
    }
    return retries;
  }

  /// Clears `slot`'s bit (attempt cleanup). acq_rel: pairs with a resolving
  /// writer's stripe scan so a cleared reader is never resolved against a
  /// stale snapshot longer than necessary; no seq_cst needed because a
  /// spurious extra resolution is benign. Returns failed CAS iterations.
  unsigned clear(unsigned slot) noexcept {
    std::atomic<std::uint64_t>& s = *stripe_[stripe_of(slot)];
    const std::uint64_t mask = ~bit_of(slot);
    unsigned retries = 0;
    std::uint64_t cur = s.load(std::memory_order_relaxed);
    while (!s.compare_exchange_weak(cur, cur & mask, std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      ++retries;
    }
    return retries;
  }

  /// Snapshot of one stripe's word (writer-side resolve scan).
  std::uint64_t load_stripe(unsigned stripe, std::memory_order mo) const noexcept {
    return stripe_[stripe]->load(mo);
  }

 private:
  CacheAligned<std::atomic<std::uint64_t>> stripe_[kStripes]{};
};

/// Type-erased locator. Lives in a pool block (see util/pool.hpp); immutable
/// after installation except for `dead_version`, written exactly once by the
/// (single) replacing writer just before the locator is retired; concurrent
/// readers never touch it.
struct Locator {
  TxDesc* owner;        // nullptr for the initial "stable" locator
  void* old_version;    // committed version before `owner` (may be null)
  void* new_version;    // owner's private clone / the committed version
  void* dead_version;   // set by the replacer: the version that lost
  void (*destroy)(void*);
  /// Commit-clock value at install time (0 for the initial locator and when
  /// the snapshot-extension fast path is off). Diagnostics only: tells the
  /// checker's opacity oracle and the trace how recent an acquisition is
  /// relative to a reader's validated snapshot; never load-bearing for the
  /// protocol itself.
  std::uint64_t stamp;

  /// EBR deleter: frees the superseded version, drops the owner ref, and
  /// recycles the locator's block.
  static void reclaim(void* locator_ptr);
};

/// Non-template core of a transactional object. All protocol logic lives in
/// the runtime (one non-template translation unit); this class only owns
/// the locator chain head and the striped visible-reader records.
class TObjectBase {
 public:
  /// Clones `src` into a block of `pool` (nullptr → global allocation); the
  /// result must be freed with `destroy`.
  using CloneFn = void* (*)(const void* src, util::Pool* pool);
  using DestroyFn = void (*)(void*);

  /// Takes ownership of `initial_version` (a pool_new-style headered block).
  /// `payload_size` is sizeof the concrete payload — the size-class hint
  /// that lets the runtime route clones through the per-thread pools.
  TObjectBase(void* initial_version, CloneFn clone, DestroyFn destroy,
              std::uint32_t payload_size)
      : loc_(util::pool_new<Locator>(
            nullptr, Locator{nullptr, nullptr, initial_version, nullptr, destroy, 0})),
        clone_(clone),
        destroy_(destroy),
        payload_size_(payload_size) {}

  /// Must only run at quiescence (e.g. after EBR grace for an unlinked
  /// node): frees the installed locator and every surviving version. Under
  /// the orec backend the latest committed payload lives in orec_body_ (the
  /// locator then still owns the initial version).
  ~TObjectBase() {
    if (void* b = orec_body_.load(std::memory_order_relaxed)) destroy_(b);
    Locator* l = loc_.load(std::memory_order_relaxed);
    if (l->owner != nullptr) l->owner->release();
    if (l->old_version != nullptr) destroy_(l->old_version);
    if (l->new_version != nullptr) destroy_(l->new_version);
    util::Pool::deallocate(l);
  }

  TObjectBase(const TObjectBase&) = delete;
  TObjectBase& operator=(const TObjectBase&) = delete;

  /// Unsynchronized read of the current committed version. Only meaningful
  /// at quiescence (validation in tests, sizing between benchmark phases).
  const void* quiescent_version() const noexcept {
    // Orec backend: the redo-log write-back target supersedes the (frozen)
    // initial locator. Null outside orec mode, so DSTM pays one load.
    if (const void* b = orec_body_.load(std::memory_order_acquire)) return b;
    const Locator* l = loc_.load(std::memory_order_acquire);
    if (l->owner == nullptr) return l->new_version;
    return l->owner->status.load(std::memory_order_acquire) == TxStatus::kCommitted
               ? l->new_version
               : l->old_version;
  }

 private:
  friend class Runtime;
  friend class Tx;
  friend class DstmBackend;
  friend class OrecEngine;

  /// Clone for acquisition: pooled when the payload fits a size class,
  /// global pass-through otherwise (the hint keeps oversize payloads off the
  /// pool path without a per-clone branch in the template).
  void* make_clone(util::Pool* pool, const void* src) const {
    return clone_(src, payload_size_ <= util::Pool::kMaxBlock ? pool : nullptr);
  }

  std::atomic<Locator*> loc_;
  ReaderStripes readers_;
  CloneFn clone_;
  DestroyFn destroy_;
  std::uint32_t payload_size_;
  /// Orec backend only: the latest committed payload, installed by a
  /// committer's write-back while it holds this object's orec lock; null
  /// means "still the initial version" (owned by loc_). A TObject belongs
  /// to exactly one Runtime, so the two engines never mix on one object.
  std::atomic<void*> orec_body_{nullptr};
  /// Orec backend only: first-touch id driving the object -> orec hash
  /// (0 = not yet assigned). Ids, not addresses, so the orec mapping — and
  /// with it every conflict and lock-acquisition order — is identical
  /// across runs and processes, which the deterministic checker's replay
  /// and the cross-variant decision-parity tests rely on.
  std::atomic<std::uint64_t> orec_id_{0};
};

/// Typed transactional object. T must be copy-constructible (clone-on-write).
template <typename T>
class TObject : public TObjectBase {
 public:
  template <typename... Args>
  explicit TObject(Args&&... args)
      : TObjectBase(util::pool_new<T>(nullptr, std::forward<Args>(args)...), &clone_impl,
                    &destroy_impl, static_cast<std::uint32_t>(sizeof(T))) {}

  /// Opens for reading inside `tx`; the returned snapshot is valid for the
  /// duration of the transaction attempt.
  const T* open_read(Tx& tx);

  /// Opens for writing inside `tx`; returns the private mutable clone that
  /// becomes the committed version if the transaction commits.
  T* open_write(Tx& tx);

  const T* peek() const noexcept { return static_cast<const T*>(quiescent_version()); }

 private:
  static void* clone_impl(const void* p, util::Pool* pool) {
    return util::pool_new<T>(pool, *static_cast<const T*>(p));
  }
  static void destroy_impl(void* p) {
    static_cast<T*>(p)->~T();
    util::Pool::deallocate(p);
  }
};

}  // namespace wstm::stm
