// Transactional objects: the DSTM locator protocol (Herlihy, Luchangco,
// Moir, Scherer, PODC'03), as used by DSTM2 with visible reads.
//
// Every TObject holds an atomic pointer to an immutable Locator naming an
// owner transaction and two versions of the payload:
//
//     current committed version =  new_version  if owner committed (or none)
//                                  old_version  if owner aborted or active
//
// A writer acquires the object by CASing in a fresh locator whose
// old_version is the current committed version and whose new_version is a
// private clone it then mutates. An *active* previous owner is a conflict
// handed to the contention manager; because ownership can be stolen right
// after a remote status CAS, the protocol is obstruction-free — nobody ever
// waits for a preempted thread unless the contention manager chooses to.
//
// Visible reads: a 64-bit per-object bitmap with one bit per thread slot.
// Writers resolve against every active reader in their acquire-time
// snapshot; combined with the "check own status before every open" rule in
// the runtime this yields consistent views without read-set validation
// (see DESIGN.md §5).
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "stm/fwd.hpp"
#include "stm/tx.hpp"

namespace wstm::stm {

class Tx;

/// Type-erased locator. Immutable after installation except for
/// `dead_version`, written exactly once by the (single) replacing writer
/// just before the locator is retired; concurrent readers never touch it.
struct Locator {
  TxDesc* owner;        // nullptr for the initial "stable" locator
  void* old_version;    // committed version before `owner` (may be null)
  void* new_version;    // owner's private clone / the committed version
  void* dead_version;   // set by the replacer: the version that lost
  void (*destroy)(void*);

  /// EBR deleter: frees the superseded version and drops the owner ref.
  static void reclaim(void* locator_ptr);
};

/// Non-template core of a transactional object. All protocol logic lives in
/// the runtime (one non-template translation unit); this class only owns
/// the locator chain head and the visible-reader bitmap.
class TObjectBase {
 public:
  using CloneFn = void* (*)(const void*);
  using DestroyFn = void (*)(void*);

  /// Takes ownership of `initial_version` (heap-allocated payload).
  TObjectBase(void* initial_version, CloneFn clone, DestroyFn destroy)
      : loc_(new Locator{nullptr, nullptr, initial_version, nullptr, destroy}),
        clone_(clone),
        destroy_(destroy) {}

  /// Must only run at quiescence (e.g. after EBR grace for an unlinked
  /// node): frees the installed locator and every surviving version.
  ~TObjectBase() {
    Locator* l = loc_.load(std::memory_order_relaxed);
    if (l->owner != nullptr) l->owner->release();
    if (l->old_version != nullptr) destroy_(l->old_version);
    if (l->new_version != nullptr) destroy_(l->new_version);
    delete l;
  }

  TObjectBase(const TObjectBase&) = delete;
  TObjectBase& operator=(const TObjectBase&) = delete;

  /// Unsynchronized read of the current committed version. Only meaningful
  /// at quiescence (validation in tests, sizing between benchmark phases).
  const void* quiescent_version() const noexcept {
    const Locator* l = loc_.load(std::memory_order_acquire);
    if (l->owner == nullptr) return l->new_version;
    return l->owner->status.load(std::memory_order_acquire) == TxStatus::kCommitted
               ? l->new_version
               : l->old_version;
  }

 private:
  friend class Runtime;
  friend class Tx;

  std::atomic<Locator*> loc_;
  std::atomic<std::uint64_t> readers_{0};
  CloneFn clone_;
  DestroyFn destroy_;
};

/// Typed transactional object. T must be copy-constructible (clone-on-write).
template <typename T>
class TObject : public TObjectBase {
 public:
  template <typename... Args>
  explicit TObject(Args&&... args)
      : TObjectBase(new T(std::forward<Args>(args)...), &clone_impl, &destroy_impl) {}

  /// Opens for reading inside `tx`; the returned snapshot is valid for the
  /// duration of the transaction attempt.
  const T* open_read(Tx& tx);

  /// Opens for writing inside `tx`; returns the private mutable clone that
  /// becomes the committed version if the transaction commits.
  T* open_write(Tx& tx);

  const T* peek() const noexcept { return static_cast<const T*>(quiescent_version()); }

 private:
  static void* clone_impl(const void* p) { return new T(*static_cast<const T*>(p)); }
  static void destroy_impl(void* p) { delete static_cast<T*>(p); }
};

}  // namespace wstm::stm
