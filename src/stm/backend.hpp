// Execution-engine concept (DESIGN.md §12). A Backend owns the object-level
// synchronization protocol of one Runtime — how an attempt snapshots the
// world, resolves reads and writes, and publishes at commit — while the
// Runtime keeps everything engine-agnostic above it: CM arbitration,
// metrics, tracing, liveness escalation, chaos and the deterministic
// checker. The two engines are DstmBackend (eager obstruction-free
// locators, runtime.cpp) and OrecEngine (lazy TL2-style redo logs,
// orec/engine.cpp).
#pragma once

#include <stdexcept>
#include <string>

#include "stm/fwd.hpp"

namespace wstm::stm {

inline const char* backend_name(BackendKind k) noexcept {
  return k == BackendKind::kOrec ? "orec" : "dstm";
}

inline BackendKind parse_backend(const std::string& name) {
  if (name == "dstm") return BackendKind::kDstm;
  if (name == "orec") return BackendKind::kOrec;
  throw std::invalid_argument("unknown backend '" + name + "' (expected dstm|orec)");
}

inline const char* arbitration_name(ArbitrationMode m) noexcept {
  return m == ArbitrationMode::kWait ? "wait" : "abort";
}

inline ArbitrationMode parse_arbitration(const std::string& name) {
  if (name == "abort") return ArbitrationMode::kAbort;
  if (name == "wait") return ArbitrationMode::kWait;
  throw std::invalid_argument("unknown arbitration mode '" + name +
                              "' (expected abort|wait)");
}

class Backend {
 public:
  virtual ~Backend() = default;
  virtual BackendKind kind() const noexcept = 0;

  /// Attempt-local engine state reset (snapshot establishment, log reset).
  /// Called by Runtime::begin_attempt after the descriptor is published and
  /// before the CM's on_begin hook.
  virtual void begin(ThreadCtx& tc) = 0;

  /// Resolve a transactional read to a payload the attempt may dereference
  /// until it ends. Throws TxAbort when the attempt must die; conflicts go
  /// through Runtime::arbitrate so CM decisions (and the irrevocability
  /// short-circuits) apply identically on both engines.
  virtual const void* open_read(ThreadCtx& tc, TObjectBase& obj) = 0;

  /// Resolve a transactional write to a private mutable payload.
  virtual void* open_write(ThreadCtx& tc, TObjectBase& obj) = 0;

  /// Engine-specific commit protocol through the status transition.
  /// Returns false when the attempt lost its commit race to a remote kill;
  /// throws TxAbort when validation/acquisition aborts the attempt.
  virtual bool commit(ThreadCtx& tc) = 0;

  /// Per-attempt teardown on both outcomes (drop read/write sets, release
  /// anything still held after a mid-commit death). Runs at the top of
  /// Runtime::cleanup_attempt, while the attempt is still EBR-pinned.
  virtual void end(ThreadCtx& tc, bool committed) = 0;
};

}  // namespace wstm::stm
