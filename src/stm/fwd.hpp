// Shared enums and forward declarations for the STM core.
#pragma once

#include <cstdint>

namespace wstm::stm {

class Runtime;
class Tx;
class ThreadCtx;
struct TxDesc;
class TObjectBase;
class Backend;
class DstmBackend;
class OrecEngine;

/// Which execution engine a Runtime drives (DESIGN.md §12). The CM layer,
/// metrics, trace, liveness and checker sit above this choice.
enum class BackendKind : std::uint8_t {
  kDstm = 0,  // eager, obstruction-free per-object locators (the paper's substrate)
  kOrec = 1,  // lazy TL2-style redo logs over a striped orec table
};

/// Lifecycle of one transaction attempt. Committed/Aborted are absorbing:
/// the only transitions are Active -> Committed (self, at commit) and
/// Active -> Aborted (self or any enemy, via CAS).
enum class TxStatus : std::uint32_t { kActive = 0, kCommitted = 1, kAborted = 2 };

/// What kind of conflict a contention manager is asked to resolve, always
/// from the perspective of the transaction doing the open.
enum class ConflictKind : std::uint8_t {
  kWriteWrite,  // I want to acquire; enemy is the active owner
  kWriteRead,   // I want to acquire; enemy is an active visible reader
  kReadWrite,   // I want to read; enemy is the active owner
};

/// How the runtime lets a losing transaction wait out a conflict
/// (RuntimeConfig::arbitration). kAbort is the historical behavior: every
/// kRetry resolution spins/yields in the CM or burns an abort. kWait arms
/// the parking layer (src/stm/park.hpp): losers block futex-style on the
/// enemy descriptor's status word and the winner's commit/abort path wakes
/// them, trading CPU burn for a condvar round trip.
enum class ArbitrationMode : std::uint8_t {
  kAbort = 0,  // requester-wins/aborts; waits are spin/yield loops
  kWait = 1,   // requester-waits; losers park at safe points
};

/// Contention-manager verdict for one conflict.
enum class Resolution : std::uint8_t {
  kAbortEnemy,  // runtime CASes the enemy's status to Aborted and proceeds
  kAbortSelf,   // runtime aborts the calling transaction (it will retry)
  kRetry,       // state may have changed (enemy finished / after a wait);
                // runtime re-examines the conflict from scratch
};

}  // namespace wstm::stm
