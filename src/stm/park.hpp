// Futex-style parking for requester-waits arbitration (DESIGN.md §13).
//
// A loser that must wait for an enemy transaction parks on a WaitSite keyed
// on the enemy's TxDesc; the winner's commit/abort/status-CAS path fires
// unpark_all for that descriptor. The protocol is the classic epoch-word
// futex shape (cf. pypy/stmgc contention.c):
//
//   waiter:  e = site.epoch (seq_cst)          waker:  status transition
//            recheck enemy.status != Active            site.epoch++ (seq_cst)
//            cv.wait_for(pred: epoch != e)             lock; cv.notify_all
//
// The seq_cst epoch read *before* the status recheck pairs with the waker's
// status-store → epoch-increment order: if the waiter misses the status
// change, the waker's increment happens after the waiter's epoch read, so
// the predicate flips and the wait returns — no lost wakeup. Every wait is
// additionally bounded by a timeout slice, so even a missed edge (a crashed
// waker, or the seeded park-lost-wakeup bug) degrades to a bounded stall,
// never a hang.
//
// Sites are a small hashed array, not per-descriptor state: collisions only
// cause spurious wakeups (the waiter re-checks its own enemy and re-parks),
// which the protocol tolerates by construction. waiters_ lets the waker skip
// the lock + notify entirely on the (overwhelmingly common) nobody-parked
// path, so abort-mode-equivalent workloads pay one relaxed load per commit.
//
// Deadlock freedom: Runtime maintains a parked_on_[] slot → enemy-descriptor
// table and refuses any park whose enemy chain reaches back to the
// requester (see Runtime::park_until_inactive). Combined with bounded
// slices this makes every park finite.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "stm/tx.hpp"
#include "util/cacheline.hpp"

namespace wstm::stm {

class ParkingLot {
 public:
  static constexpr unsigned kSites = 64;

  struct ParkResult {
    bool waited = false;    ///< a timed wait actually happened
    bool spurious = false;  ///< woke with the enemy still Active (collision
                            ///< or timeout slice expiry)
  };

  /// Parks until the site's epoch moves past the pre-read value, the enemy
  /// leaves Active, or `max_wait_ns` elapses — whichever is first. Never
  /// blocks unboundedly. The caller re-examines the conflict afterwards
  /// regardless of the outcome (spurious-wakeup semantics).
  ParkResult park(const TxDesc& enemy, std::int64_t max_wait_ns) noexcept {
    Site& site = *sites_[site_index(&enemy)];
    // Dekker pairing with unpark_all's waiters fast path: register BEFORE
    // the status recheck, so either the waker sees waiters > 0 (and bumps
    // the epoch + notifies) or this recheck sees the new status (and skips
    // the wait). Rechecking first would open a lost-wakeup window between
    // the recheck and the registration.
    site.waiters.fetch_add(1, std::memory_order_seq_cst);
    const std::uint64_t e = site.epoch.load(std::memory_order_seq_cst);
    if (enemy.status.load(std::memory_order_acquire) != TxStatus::kActive) {
      site.waiters.fetch_sub(1, std::memory_order_relaxed);
      return ParkResult{};  // already finished; nothing to wait for
    }
    ParkResult r;
    r.waited = true;
    {
      std::unique_lock lk(site.mu);
      site.cv.wait_for(lk, std::chrono::nanoseconds(max_wait_ns), [&] {
        return site.epoch.load(std::memory_order_relaxed) != e;
      });
    }
    site.waiters.fetch_sub(1, std::memory_order_relaxed);
    r.spurious = enemy.status.load(std::memory_order_acquire) == TxStatus::kActive;
    return r;
  }

  /// Status-transition edge for `desc`: wakes every waiter parked on its
  /// site. Returns the number of waiters present (0 on the fast path, which
  /// touches only one cache line). Safe from any thread, including the
  /// watchdog and shutdown drains.
  unsigned unpark_all(const TxDesc* desc) noexcept {
    Site& site = *sites_[site_index(desc)];
    // seq_cst pairs with the waiter's epoch-read → status-recheck order; a
    // relaxed load here could miss a waiter between its recheck and wait.
    const auto waiters =
        static_cast<unsigned>(site.waiters.load(std::memory_order_seq_cst));
    if (waiters == 0) return 0;
    site.epoch.fetch_add(1, std::memory_order_seq_cst);
    {
      // Empty critical section: orders the notify after any waiter that has
      // passed the predicate check but not yet blocked inside wait_for.
      std::lock_guard lk(site.mu);
    }
    site.cv.notify_all();
    return waiters;
  }

 private:
  struct Site {
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint32_t> waiters{0};
    std::mutex mu;
    std::condition_variable cv;
  };

  static std::size_t site_index(const TxDesc* desc) noexcept {
    auto h = reinterpret_cast<std::uintptr_t>(desc);
    h ^= h >> 9;  // descriptors are pool-allocated; drop alignment zeros
    h *= 0x9e3779b97f4a7c15ULL;
    return (h >> 32) & (kSites - 1);
  }

  CacheAligned<Site> sites_[kSites];
};

}  // namespace wstm::stm
