// STM runtime: thread registry, transaction execution loop, and the
// open-for-read / open-for-write protocol entry points.
//
// Typical use:
//
//   stm::Runtime rt(cm::make_manager("Polka", cm::Params{.threads = 4}));
//   stm::ThreadCtx& tc = rt.attach_thread();     // once per OS thread
//   int found = rt.atomically(tc, [&](stm::Tx& tx) {
//     const Node* head = list.head.open_read(tx);
//     ...
//     Node* n = node.open_write(tx);
//     n->value = 7;
//     return 1;
//   });
//
// The lambda may run many times (every abort restarts it — greedy
// contention management); it must be pure apart from TObject accesses and
// tx.make / tx.retire_on_commit allocations.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "check/hooks.hpp"
#include "cm/manager.hpp"
#include "stm/backend.hpp"
#include "stm/park.hpp"
#include "ebr/ebr.hpp"
#include "resilience/chaos.hpp"
#include "resilience/errors.hpp"
#include "resilience/liveness.hpp"
#include "stm/fwd.hpp"
#include "stm/metrics.hpp"
#include "stm/tobject.hpp"
#include "stm/tx.hpp"
#include "util/cacheline.hpp"
#include "util/pool.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"

namespace wstm::trace {
class Recorder;
}

namespace wstm::stm {

/// Thrown (internally) to unwind an aborted attempt. User code should let
/// it propagate out of the atomically() lambda.
struct TxAbort {};

/// Open-addressed pointer→index map, generation-stamped so the per-attempt
/// reset is O(1) (no clearing); capacity persists across attempts, matching
/// the log vectors' allocation discipline. Used by open_read_invisible to
/// dedup re-reads and by the orec engine to index its read/write logs —
/// keys are opaque pointers (TObjectBase* or orec-word addresses).
class InvisReadIndex {
 public:
  static constexpr std::uint32_t kNotFound = UINT32_MAX;

  void reset() noexcept {
    ++gen_;
    size_ = 0;
  }

  /// Index of `obj` in the read set, or kNotFound when absent.
  std::uint32_t find(const void* obj) const noexcept {
    if (slots_.empty()) return kNotFound;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash(obj) & mask;; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (s.gen != gen_) return kNotFound;  // empty in this generation
      if (s.obj == obj) return s.idx;
    }
  }

  /// Pre: `obj` is absent. `idx` is its position in the indexed log.
  void insert(const void* obj, std::uint32_t idx) {
    if (slots_.empty() || (size_ + 1) * 2 > slots_.size()) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(obj) & mask;
    while (slots_[i].gen == gen_) i = (i + 1) & mask;
    slots_[i] = Slot{obj, idx, gen_};
    ++size_;
  }

 private:
  struct Slot {
    const void* obj;
    std::uint32_t idx;
    std::uint64_t gen;
  };

  static std::size_t hash(const void* obj) noexcept {
    // Fibonacci hash over the pointer bits above the allocation alignment.
    std::uint64_t v = reinterpret_cast<std::uintptr_t>(obj) >> 4;
    v *= 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(v ^ (v >> 29));
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    // gen_ starts at 1, so zero-filled slots read as empty.
    slots_.assign(old.empty() ? 64 : old.size() * 2, Slot{nullptr, 0, 0});
    const std::size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.gen != gen_) continue;
      std::size_t i = hash(s.obj) & mask;
      while (slots_[i].gen == gen_) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::uint64_t gen_ = 1;
};

/// Per-OS-thread context. Obtain via Runtime::attach_thread(); not
/// thread-safe, use only from the owning thread.
class ThreadCtx {
 public:
  unsigned slot() const noexcept { return slot_; }
  ThreadMetrics& metrics() noexcept { return metrics_; }
  Xoshiro256& rng() noexcept { return rng_; }
  Runtime& runtime() noexcept { return *rt_; }
  /// The attempt currently executing on this thread (null between
  /// transactions). Enemies access descriptors via Runtime::tx_of_slot.
  TxDesc* current() noexcept { return current_; }

 private:
  friend class Runtime;
  friend class Tx;
  friend class DstmBackend;
  friend class OrecEngine;

  struct TrackedAlloc {
    void* ptr;
    void (*deleter)(void*);
  };

  ThreadCtx(Runtime* rt, unsigned slot, ebr::Handle handle, std::uint64_t seed)
      : rt_(rt), slot_(slot), ebr_(std::move(handle)), rng_(seed) {}

  Runtime* rt_;
  unsigned slot_;
  ebr::Handle ebr_;
  Xoshiro256 rng_;
  /// Slab pool for TxDesc/Locator/clone blocks (null when
  /// RuntimeConfig::pooling is off → per-object global allocations).
  util::Pool* pool_ = nullptr;
  /// Set once by detach_thread; makes a second detach a safe no-op.
  bool detached_ = false;
  TxDesc* current_ = nullptr;
  std::uint64_t serial_ = 0;
  ThreadMetrics metrics_;
  std::vector<TObjectBase*> read_set_;  // visible mode: objects with our bit
  struct InvisRead {
    TObjectBase* obj;
    const void* version;  // committed version observed at open
  };
  std::vector<InvisRead> invis_reads_;  // invisible mode: validation set
  InvisReadIndex invis_index_;          // dedup map over invis_reads_
  // Snapshot-extension fast path (invisible mode; see DESIGN.md §5).
  /// Commit-clock value as of this attempt's last full read-set validation:
  /// clock still equal ⟹ every recorded version is still the committed one.
  std::uint64_t snapshot_clock_ = 0;
  /// Acquired at least one object this attempt → bump the clock on commit.
  bool wrote_this_attempt_ = false;
  // Deferred-clock snapshot state (DESIGN.md §11). A snapshot is the pair
  // (snapshot_clock_, pending_at_snapshot_): commits with stamp <=
  // snapshot_clock_ whose owner is not in the pending set are provably
  // ordered before the snapshot instant and may be fast-accepted per open
  // without touching the shared clock line.
  /// False until an establishment completes without mid-scan interference;
  /// while false every open takes the extension path.
  bool snapshot_valid_ = false;
  /// Descriptors announced in commit_pending_ at establishment time. Raw
  /// identities, compared only (never dereferenced) — pool recycling can
  /// only cause a spurious refusal, which is the safe direction.
  std::vector<const TxDesc*> pending_at_snapshot_;
  /// Establishment scratch (per-slot sequence pre-scan + candidate pending
  /// set), kept allocated across attempts like the read-set vectors.
  std::vector<std::uint64_t> pending_seq_scratch_;
  std::vector<const TxDesc*> pending_scratch_;
  /// EWMA of the measured extension-pass cost, feeding the
  /// validation_saved_ns estimate for skipped passes.
  std::int64_t validate_pass_ewma_ns_ = 0;
  std::vector<TrackedAlloc> allocs_;
  std::vector<TrackedAlloc> commit_retires_;
  bool waited_this_attempt_ = false;
  /// The current attempt is dying from a checker-injected fault (recorded
  /// as detail bit0 of the kAbort trace event, then cleared).
  bool injected_abort_ = false;
  /// Watchdog detections collected by liveness_pre_begin, recorded into the
  /// trace once the attempt's descriptor (and serial) exists.
  std::uint8_t pending_watchdog_flags_ = 0;
  // Identity of the last conflicting enemy attempt (repeat-conflict metric).
  std::uint32_t last_enemy_slot_ = UINT32_MAX;
  std::uint64_t last_enemy_serial_ = 0;
  // Liveness escalation state for the in-flight *logical* transaction
  // (survives attempt retries, reset on commit/timeout). All owner-thread
  // only; the shared view enemies arbitrate on lives in TxDesc.
  std::uint32_t consecutive_aborts_ = 0;
  std::uint32_t escalation_level_ = 0;
  bool attempt_irrevocable_ = false;
};

/// Handle passed to the user's transaction body.
class Tx {
 public:
  const void* open_read(TObjectBase& obj);  // defined after Runtime below
  void* open_write(TObjectBase& obj);

  /// Allocate an object tied to this transaction: deleted automatically if
  /// the transaction aborts, kept (caller/structure owns it) on commit.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    T* p = new T(std::forward<Args>(args)...);
    tc_->allocs_.push_back({p, [](void* q) { delete static_cast<T*>(q); }});
    return p;
  }

  /// Defer deletion of `obj` (typically an unlinked node) until after this
  /// transaction commits *and* an EBR grace period has passed. No-op if the
  /// transaction aborts.
  template <typename T>
  void retire_on_commit(T* obj) {
    tc_->commit_retires_.push_back({obj, [](void* q) { delete static_cast<T*>(q); }});
  }

  /// Explicitly abort and retry this transaction (e.g. user-level retry).
  /// Routed through Runtime::abort_self so an irrevocable (serial-fallback)
  /// transaction is demoted and releases the token first. Defined after
  /// Runtime below.
  [[noreturn]] void restart();

  TxDesc& desc() noexcept { return *desc_; }
  ThreadCtx& thread() noexcept { return *tc_; }
  Xoshiro256& rng() noexcept { return tc_->rng(); }

 private:
  friend class Runtime;
  Tx(Runtime* rt, ThreadCtx* tc, TxDesc* desc) : rt_(rt), tc_(tc), desc_(desc) {}

  Runtime* rt_;
  ThreadCtx* tc_;
  TxDesc* desc_;
};

struct RuntimeConfig {
  std::uint64_t seed = 0x5eed;  // base seed for per-thread RNGs

  /// Execution engine (DESIGN.md §12). kDstm: eager obstruction-free
  /// per-object locators — the paper's substrate, with all the read-mode /
  /// snapshot / deferred-clock knobs below. kOrec: lazy TL2-style engine
  /// (redo-log write buffering over a striped orec table, commit-time lock
  /// acquisition, timestamp read-set validation against the same commit
  /// clock). The CM family, liveness ladder, metrics, trace and checker
  /// apply identically to both.
  BackendKind backend = BackendKind::kDstm;

  /// Conflict-arbitration mode (DESIGN.md §13). kAbort: the historical
  /// requester-wins behavior — kRetry resolutions spin/yield inside the CM.
  /// kWait: requester-waits — losing transactions park futex-style on the
  /// enemy descriptor (src/stm/park.hpp) and the enemy's commit/abort path
  /// wakes them, so contended cores sleep instead of burning. Parking is
  /// bounded by the liveness deadline and visible to the watchdog; serial-
  /// token holders never park. Under the checker, parks become kPark/kUnpark
  /// schedule points with a deadlock-freedom oracle.
  ArbitrationMode arbitration = ArbitrationMode::kAbort;

  /// log2 of the orec-table size (orec backend only). Every TObject hashes
  /// to one of 2^bits versioned write-locks; smaller tables raise false
  /// sharing of locks, which the engine must (and tests do) tolerate.
  std::uint32_t orec_table_bits = 16;

  /// Preemption emulation for hosts with fewer hardware threads than
  /// benchmark threads: with probability permille/1000, yield the CPU at
  /// each object open. On a single-core host OS timeslices (~ms) dwarf
  /// transaction lengths (~us), so transactions almost never interleave
  /// and conflicts vanish; yielding at open granularity restores the
  /// interleaving a multicore would produce, at the exact points where
  /// conflicts arise. 0 disables (the default; use 0 on real multicore).
  std::uint32_t preempt_yield_permille = 0;

  /// Read mode, mirroring DSTM2's two options (the paper used visible):
  ///  * visible (default): readers announce themselves in the per-object
  ///    reader bitmap; writers abort them eagerly, no validation needed.
  ///  * invisible: readers leave no trace; instead the read set
  ///    (object, observed version) is re-validated on every subsequent
  ///    open and at commit — O(R) per open, the classic DSTM trade-off.
  ///    Writers never see readers, so read-write conflicts surface as the
  ///    reader's own validation aborts.
  bool visible_reads = true;

  /// Optional event recorder (non-owning; must outlive the Runtime). Null
  /// disables tracing: every instrumentation site then costs one
  /// predictable null-pointer branch. See trace/recorder.hpp.
  trace::Recorder* recorder = nullptr;

  /// Recycle TxDesc/Locator/version-clone blocks and EBR retire chunks
  /// through per-thread slab pools (util/pool.hpp), making the steady-state
  /// attempt allocation-free. Off = one global allocation per protocol
  /// object (the pre-pooling behavior), kept selectable so figures can
  /// report both sides of the ablation.
  bool pooling = true;

  /// Invisible-read snapshot-extension fast path: a process-wide commit
  /// clock (bumped by every successful write-commit) lets open_read skip
  /// read-set validation while no write has committed since the attempt's
  /// last full pass — amortized O(1) per open instead of O(R), the LSA/TL2
  /// idea grafted onto the DSTM locator protocol (see DESIGN.md §5).
  /// Ignored in visible mode. Off = validate on every open (the pre-clock
  /// behavior), kept selectable so figures can A/B the pathology.
  bool snapshot_ext = true;

  /// TL2-GV5-style deferred commit clock (see DESIGN.md §11): write-commits
  /// stamp `clock+1` into their descriptor without incrementing the shared
  /// line; only snapshot-extension passes that trip over a fresh stamp
  /// advance the clock (one CAS per clock generation instead of one
  /// fetch_add per write-commit). Opens fast-accept per object via the
  /// owner's commit stamp and the attempt's commit-pending set, so the
  /// fast path performs no shared-clock access at all. Off = PR 5's eager
  /// bump-before-CAS, kept selectable for the A/B contention metric and
  /// the checker's cross-mode identity tests. Only meaningful when
  /// `snapshot_ext` is on in invisible mode.
  bool deferred_clock = true;

  /// Optional deterministic-checker hook (non-owning; must outlive the
  /// Runtime). Null disables checking: every schedule point then costs one
  /// predictable null-pointer branch, mirroring `recorder`. See
  /// check/hooks.hpp and src/check/executor.hpp.
  check::SchedulerHook* checker = nullptr;

  /// Deliberately seeded protocol bugs, off by default. They exist so the
  /// checker (and CI) can prove it finds real abort/commit boundary bugs —
  /// never enable outside tests. Each one removes a recheck the protocol's
  /// safety argument depends on.
  struct DebugFaults {
    /// Commit with a plain store instead of the Active→Committed CAS,
    /// skipping the recheck that detects a remote kill between the last
    /// open and the commit point (lost-update bug).
    bool blind_commit = false;
    /// Visible reads: acquire without resolving the reader bitmap, letting
    /// announced readers keep stale snapshots (atomicity bug).
    bool skip_reader_abort = false;
    /// Invisible reads: skip the locator recheck after read-set validation
    /// in open_read, breaking the snapshot argument (opacity bug).
    bool skip_cas_recheck = false;
    /// Deferred clock: fast-accept a committed stamp without checking the
    /// commit-pending set, treating a writer that was still mid-commit at
    /// snapshot establishment as if its switch preceded the snapshot
    /// (opacity bug — the exact staleness window the pending rule closes;
    /// see DESIGN.md §11).
    bool stamp_no_pending = false;
    /// Orec backend: commit after lock acquisition WITHOUT the read-set
    /// timestamp validation, publishing writes derived from a snapshot that
    /// may already be stale (the classic TL2 validation invariant, broken
    /// on purpose; serializability bug).
    bool orec_skip_validation = false;
    /// Requester-waits arbitration: skip the unpark edge on COMMIT paths
    /// (both backends), keeping only the abort-path edges — the classic
    /// lost-wakeup bug. In real mode every park is slice-bounded, so the
    /// effect degrades to timeout stalls; under the checker the parked
    /// thread stays blocked and the deadlock-freedom oracle fires.
    bool park_lost_wakeup = false;
  };
  DebugFaults bugs;

  /// Liveness layer (src/resilience/): starvation watchdog + escalation
  /// ladder + irrevocable serial fallback. Disabled by default; when
  /// enabled the Runtime owns a LivenessManager and keeps a raw pointer on
  /// the hot path (same null-toggle idiom as `recorder` and `checker`).
  resilience::LivenessConfig liveness;

  /// Live chaos injection (src/resilience/chaos.hpp): thread stalls,
  /// spurious aborts, delayed commits, EBR reclamation pressure. Disabled
  /// by default; never combine with `checker` (the deterministic executor
  /// has its own fault injector).
  resilience::ChaosConfig chaos;

  /// Bound on how long Runtime::shutdown() waits for in-flight attempts to
  /// drain before teardown proceeds anyway.
  std::int64_t shutdown_drain_timeout_ns = 1'000'000'000;
};

class Runtime {
 public:
  static constexpr unsigned kMaxThreads = 128;
  static_assert(kMaxThreads <= ReaderStripes::kCapacity,
                "striped reader records must cover every thread slot");

  using Config = RuntimeConfig;

  explicit Runtime(cm::ManagerPtr manager, Config config = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Claims a thread slot. The returned context stays valid until the
  /// Runtime is destroyed (detach_thread retires it but does not free it,
  /// so a stale reference cannot dangle).
  ThreadCtx& attach_thread();
  /// Releases `tc`'s slot for reuse and drops its published descriptor.
  /// Idempotent: detaching an already-detached context is a no-op, and the
  /// destructor skips contexts that were detached explicitly. The context's
  /// metrics leave the total_metrics() sum at this point (callers aggregate
  /// before detaching, as the harness does).
  void detach_thread(ThreadCtx& tc);

  cm::ContentionManager& manager() noexcept { return *manager_; }
  ebr::Domain& ebr_domain() noexcept { return ebr_; }

  /// The currently-published attempt of thread `slot` (may be finished; may
  /// be null). Only call while pinned (i.e. inside a transaction) — the
  /// pointer is protected by EBR.
  TxDesc* tx_of_slot(unsigned slot) noexcept {
    return current_tx_[slot]->load(std::memory_order_acquire);
  }

  /// Runs `fn(Tx&)` as a transaction, retrying on aborts until it commits.
  /// Returns fn's result.
  template <typename F>
  auto atomically(ThreadCtx& tc, F&& fn) {
    using Result = std::invoke_result_t<F&, Tx&>;
    const std::int64_t first_begin = now_ns();
    bool is_retry = false;
    for (;;) {
      TxDesc* desc = begin_attempt(tc, first_begin, is_retry);
      Tx tx(this, &tc, desc);
      try {
        if constexpr (std::is_void_v<Result>) {
          fn(tx);
          if (finish_attempt_commit(tc)) return;
        } else {
          Result result = fn(tx);
          if (finish_attempt_commit(tc)) return result;
        }
        // Lost the commit race (killed between the last open and the commit
        // point); finish_attempt_commit already cleaned up as an abort.
      } catch (const TxAbort&) {
        finish_attempt_abort(tc);
      } catch (...) {
        // Any escaping exception (a user error, resilience::TxTimeoutError)
        // ends the logical transaction, so the escalation ladder must not
        // carry into the next one — cleanup_attempt just counted the
        // aborted attempt, undoing e.g. arbitrate()'s pre-throw reset.
        finish_attempt_abort(tc);
        tc.consecutive_aborts_ = 0;
        tc.escalation_level_ = 0;
        throw;
      }
      is_retry = true;
    }
  }

  /// Sum of metrics over all ever-attached threads. Call after workers have
  /// joined (or accept slightly stale per-thread values).
  ThreadMetrics total_metrics() const;
  /// Clears all per-thread metrics (between warmup and measurement).
  void reset_metrics();

  /// Quiescence-safe teardown, also run by the destructor. Marks the
  /// runtime as stopping (any later begin_attempt throws
  /// resilience::RuntimeStoppedError), then drains in-flight attempts with
  /// a bounded timeout (RuntimeConfig::shutdown_drain_timeout_ns), kicking
  /// non-irrevocable stragglers via try_abort so contention-manager waits
  /// unwind. Idempotent and safe to call concurrently with workers; callers
  /// must still stop *invoking* atomically() (i.e. observe the error and
  /// exit their loops) before the Runtime object itself is destroyed.
  void shutdown() noexcept;
  bool stopping() const noexcept { return stopping_.load(std::memory_order_acquire); }

  /// Liveness manager when RuntimeConfig::liveness.enabled, else null.
  const resilience::LivenessManager* liveness() const noexcept { return liveness_; }
  /// Chaos injector when RuntimeConfig::chaos.enabled, else null. The
  /// non-const overload exists for the serve worker pool, whose at_dequeue
  /// roll happens outside the Runtime's own hot path.
  const resilience::ChaosInjector* chaos() const noexcept { return chaos_; }
  resilience::ChaosInjector* chaos() noexcept { return chaos_; }

  /// Which execution engine this runtime was built with (DESIGN.md §12).
  BackendKind backend_kind() const noexcept { return backend_->kind(); }

 private:
  friend class Tx;
  friend class DstmBackend;
  friend class OrecEngine;

  /// Engine dispatch: shared prologue (preemption emulation, liveness
  /// heartbeat, chaos), then the backend's open protocol.
  const void* open_read(ThreadCtx& tc, TObjectBase& obj) {
    open_prologue(tc);
    return backend_->open_read(tc, obj);
  }
  void* open_write(ThreadCtx& tc, TObjectBase& obj) {
    open_prologue(tc);
    return backend_->open_write(tc, obj);
  }

  // DSTM (locator) protocol bodies, called by DstmBackend.
  const void* dstm_open_read(ThreadCtx& tc, TObjectBase& obj);
  const void* dstm_open_read_invisible(ThreadCtx& tc, TObjectBase& obj);
  void* dstm_open_write(ThreadCtx& tc, TObjectBase& obj);
  bool dstm_commit(ThreadCtx& tc);

  TxDesc* begin_attempt(ThreadCtx& tc, std::int64_t first_begin, bool is_retry);
  bool finish_attempt_commit(ThreadCtx& tc);  // false = lost the commit race
  void finish_attempt_abort(ThreadCtx& tc);

  /// See RuntimeConfig::preempt_yield_permille.
  void maybe_emulate_preemption(ThreadCtx& tc);

  /// Repeat-conflict accounting: conflicts against the same enemy attempt
  /// as the previous conflict on this thread.
  void note_conflict(ThreadCtx& tc, const TxDesc& enemy);

  /// Tracing: records the resolved conflict (and a wait event when the
  /// manager chose kRetry). No-op when no recorder is configured.
  void trace_conflict(ThreadCtx& tc, const TxDesc& enemy, ConflictKind kind, Resolution res);

  /// Deterministic-checker schedule point: blocks until the installed hook
  /// grants this thread the token (no-op without a hook) and returns the
  /// action to take. Callers handle kInjectAbort/kFailCas where meaningful.
  check::Action sched_point(check::Point p, const void* obj = nullptr) {
    check::SchedulerHook* h = config_.checker;
    if (h == nullptr) [[likely]] return check::Action::kProceed;
    return h->on_point(p, obj);
  }

  /// Acts on a kInjectAbort directive: marks the abort as injected (traced
  /// in the kAbort event detail) and unwinds via abort_self.
  [[noreturn]] void injected_abort(ThreadCtx& tc);

  /// Invisible-read mode: the committed version of `obj` as of now, plus
  /// whether an *active* owner was pending on it (its commit CAS may land
  /// after a clock bump we already sampled — see validate_or_extend).
  /// Re-loads the locator after the owner-status read and retries on change,
  /// so a commit that lands between the two loads is never misread as the
  /// old version. Never blocks.
  struct CommittedView {
    const void* version;
    bool pending;
  };
  CommittedView committed_view(TxDesc* me, TObjectBase& obj) const;
  /// CommittedView::version shorthand for callers without a pending check.
  const void* committed_version(TxDesc* me, TObjectBase& obj) const {
    return committed_view(me, obj).version;
  }
  /// Invisible-read mode: abort self unless every recorded read still
  /// matches the object's current committed version.
  void validate_reads(ThreadCtx& tc);
  /// Snapshot-extension front end for validate_reads: skips the O(R) pass
  /// while commit_clock_ still equals the attempt's validated snapshot,
  /// otherwise runs one full extension pass and advances the snapshot —
  /// unless a pending writer made the sampled clock value unclaimable.
  void validate_or_extend(ThreadCtx& tc);
  /// Deferred-clock front end (DESIGN.md §11): decides per opened object
  /// whether its resolved version's producing switch is provably ordered
  /// before the attempt's snapshot (owner committed with stamp <=
  /// snapshot_clock_ and not in the pending set → skip, no shared-line
  /// access), otherwise raises the clock to cover the triggering stamp and
  /// runs one extension pass + snapshot re-establishment. `owner`/`st` are
  /// the replaced/loaded locator's owner and its status as resolved by the
  /// caller; `st` is stable here because kActive owners were already
  /// handled as conflicts.
  void validate_or_extend_deferred(ThreadCtx& tc, TxDesc* owner, TxStatus st);
  /// One extension pass under the deferred clock: raise the clock to
  /// `trigger_stamp` if needed, re-establish the snapshot (sample + pending
  /// scan with the interference rule), and run the full validation pass.
  void extend_deferred(ThreadCtx& tc, std::uint64_t trigger_stamp);
  /// Establishes the raw material for (snapshot_clock_, pending_at_snapshot_):
  /// per-slot sequence pre-scan, clock sample, pending scan, sequence
  /// re-scan. Returns true with the sampled clock in `clock_out` and the
  /// mid-commit writers in tc.pending_scratch_ when the bracket was stable;
  /// false on mid-scan interference (a commit retracted inside the bracket),
  /// in which case the caller must leave the old snapshot untouched — it
  /// stays sound for its own clock value. Does NOT validate the read set;
  /// callers pair it with validate_pass.
  bool snapshot_establish(ThreadCtx& tc, std::uint64_t& clock_out);
  /// validate_reads body: one full pass over invis_reads_ (aborts self on
  /// any mismatch), returning whether the whole set was free of pending
  /// writers (the extension pass may only advance the snapshot if so).
  bool validate_pass(ThreadCtx& tc);

  /// Shared open_read/open_write prologue: preemption emulation, liveness
  /// heartbeat (one now_ns, taken only when the watchdog consumes it), and
  /// chaos injection.
  void open_prologue(ThreadCtx& tc);

  /// Throws TxAbort if the calling transaction has been killed remotely.
  void ensure_alive(ThreadCtx& tc);
  /// Kills the own transaction and throws TxAbort.
  [[noreturn]] void abort_self(ThreadCtx& tc);

  /// Resolve the visible readers present at acquire time.
  void resolve_readers(ThreadCtx& tc, TObjectBase& obj);

  /// Conflict arbitration front end: plain manager resolve() when the
  /// liveness layer is off; otherwise irrevocability short-circuits
  /// (an irrevocable self wins, an irrevocable enemy is waited on) and
  /// escalation boosts override the manager (resolve_with_boost).
  Resolution arbitrate(ThreadCtx& tc, TxDesc& me, TxDesc& enemy, ConflictKind kind);

  // ---- requester-waits arbitration (DESIGN.md §13) ------------------------

  /// cm::WaitHooks body: parks the calling thread on `enemy` until its
  /// status leaves Active, an unpark edge fires, or the slice expires.
  /// Returns false without waiting when parking is unavailable (abort mode,
  /// irrevocable self, exhausted deadline, would-be waiter cycle). Real
  /// mode parks on the ParkingLot with the beacon marked parked; checker
  /// mode blocks at a kPark schedule point instead.
  bool park_until_inactive(ThreadCtx& tc, const TxDesc& me, const TxDesc& enemy,
                           std::int64_t max_wait_ns) noexcept;

  /// cm::WaitHooks body: yields only when no checker is installed.
  void yield_safe() noexcept {
    if (config_.checker == nullptr) std::this_thread::yield();
  }

  /// Unpark edge: called right after any status transition of `desc`
  /// (commit CAS, self-abort, enemy kill, watchdog kick, shutdown drain).
  /// No-op in abort mode; fires a kUnpark schedule point under the checker,
  /// otherwise wakes the descriptor's WaitSite. `tc` is the transitioning
  /// thread's context when available (metrics/trace), null from the
  /// watchdog and shutdown paths.
  void signal_status_change(ThreadCtx* tc, const TxDesc* desc) noexcept;

  /// True when parking `waiter_slot` on `enemy_slot` would close a cycle in
  /// the thread-level wait-for graph (slot-indexed, so no descriptor is
  /// ever dereferenced; slot reuse can only cause a spurious refusal).
  bool park_would_cycle(unsigned waiter_slot, unsigned enemy_slot) const noexcept;

  /// Escalation-ladder policy, run at the top of begin_attempt: deadline
  /// check (throws resilience::TxTimeoutError), watchdog flag collection,
  /// backoff sleep, serial-fallback token acquisition. Returns the level
  /// this attempt runs at (0 = normal ... 3 = irrevocable).
  std::uint32_t liveness_pre_begin(ThreadCtx& tc, std::int64_t first_begin);

  /// Chaos injection hooks (no-ops when chaos_ is null).
  void chaos_at_open(ThreadCtx& tc);
  void chaos_at_commit(ThreadCtx& tc);

  /// Watchdog callback: aborts slot's current attempt (stall remediation).
  void watchdog_kick(unsigned slot);

  void cleanup_attempt(ThreadCtx& tc, bool committed);

  /// Clears `desc`'s irrevocable flag and releases the serial-fallback
  /// token (with a trace event). Owner-thread only; no-op when the liveness
  /// layer is off or the flag is already clear. Every path out of an
  /// irrevocable attempt funnels through this before (or instead of) a
  /// try_abort, which refuses while the flag is set.
  void demote_irrevocable(ThreadCtx& tc, TxDesc* desc);

  /// detach_thread body; requires attach_mutex_ held.
  void detach_locked(ThreadCtx& tc);

  cm::ManagerPtr manager_;
  Config config_;
  /// The execution engine (DstmBackend or OrecEngine per config_.backend),
  /// constructed once in the ctor; never null after construction.
  std::unique_ptr<Backend> backend_;
  /// config_.snapshot_ext && !config_.visible_reads, cached so visible-mode
  /// runs never touch the shared clock line. Forced off under the orec
  /// backend (which validates against orec words, not locators).
  bool snapshot_ext_on_ = false;
  /// snapshot_ext_on_ && config_.deferred_clock, cached likewise.
  bool deferred_clock_on_ = false;
  ebr::Domain ebr_;
  /// Process-wide commit clock. Eager mode (PR 5): advanced by every
  /// successful write-commit. Deferred mode (DESIGN.md §11): advanced only
  /// by extension passes that trip over a fresh commit stamp. All
  /// protocol-relevant accesses are seq_cst — the opacity argument leans on
  /// the single total order over {bump, reader clock sample, commit-pending
  /// announce/retract, locator install/load}.
  CacheAligned<std::atomic<std::uint64_t>> commit_clock_{};
  /// Deferred-clock commit-pending slots, one cache line per thread. `desc`
  /// is non-null from just before a write-commit reads its stamp until just
  /// after its status CAS; `seq` counts completed retractions so a snapshot
  /// establishment can detect a commit that started *and* finished inside
  /// its scan bracket (the interference rule, DESIGN.md §11).
  struct alignas(kCacheLine) CommitPending {
    std::atomic<TxDesc*> desc{nullptr};
    std::atomic<std::uint64_t> seq{0};
  };
  std::array<CommitPending, kMaxThreads> commit_pending_{};
  /// One past the highest slot ever attached; bounds the pending scans.
  /// Monotone, updated under attach_mutex_, read with acquire.
  std::atomic<unsigned> attached_high_water_{0};
  std::array<CacheAligned<std::atomic<TxDesc*>>, kMaxThreads> current_tx_{};
  std::array<std::unique_ptr<ThreadCtx>, kMaxThreads> threads_{};
  /// Detached contexts, kept until Runtime destruction so references held by
  /// callers (and a double detach_thread) stay safe after the slot recycles.
  std::vector<std::unique_ptr<ThreadCtx>> retired_threads_;
  std::array<std::atomic<bool>, kMaxThreads> slot_used_{};
  mutable std::mutex attach_mutex_;

  // Liveness/chaos (owned; the raw pointers are the hot-path toggles).
  std::unique_ptr<resilience::LivenessManager> liveness_owned_;
  resilience::LivenessManager* liveness_ = nullptr;
  std::unique_ptr<resilience::ChaosInjector> chaos_owned_;
  resilience::ChaosInjector* chaos_ = nullptr;
  /// EBR handle for the watchdog thread (it dereferences published TxDesc
  /// pointers when kicking); used only from the watchdog thread while it
  /// runs, detached by the destructor after the watchdog has joined.
  /// Absent (never attached) when the domain had no free slot.
  ebr::Handle watchdog_ebr_;

  // Shutdown gate: Dekker-style with the per-slot attempt_active_ flags
  // (begin_attempt stores its flag seq_cst then loads stopping_; shutdown
  // stores stopping_ seq_cst then scans the flags).
  std::atomic<bool> stopping_{false};
  std::array<CacheAligned<std::atomic<std::uint8_t>>, kMaxThreads> attempt_active_{};

  // ---- requester-waits state (DESIGN.md §13; inert in abort mode) ---------

  /// Adapter handing the Runtime's wait verb to the CM seam (attached in
  /// the ctor next to attach_recorder).
  class ParkWaiter final : public cm::WaitHooks {
   public:
    explicit ParkWaiter(Runtime* rt) noexcept : rt_(rt) {}
    bool park_until_inactive(ThreadCtx& self, const TxDesc& tx, const TxDesc& enemy,
                             std::int64_t max_wait_ns) noexcept override {
      return rt_->park_until_inactive(self, tx, enemy, max_wait_ns);
    }
    void yield_safe() noexcept override { rt_->yield_safe(); }

   private:
    Runtime* rt_;
  };
  ParkWaiter park_waiter_{this};

  /// Hashed WaitSites the losers block on; unpark edges fan out from here.
  ParkingLot parking_lot_;
  /// Thread-level wait-for graph: slot a parked thread is waiting on, -1
  /// when not parked. Written by the parking thread around its park, read
  /// by park_would_cycle. Slot-indexed on purpose — the cycle walk never
  /// dereferences a descriptor.
  std::array<CacheAligned<std::atomic<int>>, kMaxThreads> parked_on_{};
};

inline const void* Tx::open_read(TObjectBase& obj) { return rt_->open_read(*tc_, obj); }
inline void* Tx::open_write(TObjectBase& obj) { return rt_->open_write(*tc_, obj); }
inline void Tx::restart() { rt_->abort_self(*tc_); }

// ---- TObject template methods (need the complete Tx) ----------------------

template <typename T>
const T* TObject<T>::open_read(Tx& tx) {
  return static_cast<const T*>(tx.open_read(*this));
}

template <typename T>
T* TObject<T>::open_write(Tx& tx) {
  return static_cast<T*>(tx.open_write(*this));
}

}  // namespace wstm::stm
