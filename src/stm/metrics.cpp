#include "stm/metrics.hpp"

#include <cstdio>

namespace wstm::stm {

std::string MetricsSummary::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "throughput=%.0f tx/s  aborts/commit=%.3f  wasted=%.1f%%  response=%.1fus",
                throughput_per_s, aborts_per_commit, wasted_fraction * 100.0, mean_response_us);
  return buf;
}

MetricsSummary summarize(const ThreadMetrics& totals, std::int64_t elapsed_ns) {
  MetricsSummary s;
  s.commits = totals.commits;
  s.aborts = totals.aborts;
  if (elapsed_ns > 0) {
    s.throughput_per_s = static_cast<double>(totals.commits) /
                         (static_cast<double>(elapsed_ns) / 1e9);
  }
  if (totals.commits > 0) {
    s.aborts_per_commit = static_cast<double>(totals.aborts) / static_cast<double>(totals.commits);
    s.mean_response_us =
        static_cast<double>(totals.response_ns) / static_cast<double>(totals.commits) / 1e3;
    s.repeat_conflicts_per_commit =
        static_cast<double>(totals.repeat_conflicts) / static_cast<double>(totals.commits);
  }
  const std::int64_t busy = totals.wasted_ns + totals.committed_ns;
  if (busy > 0) {
    s.wasted_fraction = static_cast<double>(totals.wasted_ns) / static_cast<double>(busy);
  }
  return s;
}

}  // namespace wstm::stm
