#include "stm/metrics.hpp"

#include <cstddef>
#include <cstdio>

namespace wstm::stm {

std::string MetricsSummary::to_string() const {
  char buf[512];
  int n = std::snprintf(buf, sizeof(buf),
                        "throughput=%.0f tx/s  aborts/commit=%.3f  wasted=%.1f%%  response=%.1fus",
                        throughput_per_s, aborts_per_commit, wasted_fraction * 100.0,
                        mean_response_us);
  // Shared-line contention (DESIGN.md §11): only shown when the deferred
  // clock / stripes / sharded EBR actually fired, so eager visible-read
  // runs keep the familiar one-line summary.
  if (n > 0 && (clock_bumps | deferred_stamps | snapshot_interference | reader_stripe_retries |
                ebr_shard_syncs) != 0) {
    std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                  "  clock_bumps=%llu deferred_stamps=%llu snapshot_interference=%llu "
                  "stripe_retries=%llu ebr_syncs=%llu",
                  static_cast<unsigned long long>(clock_bumps),
                  static_cast<unsigned long long>(deferred_stamps),
                  static_cast<unsigned long long>(snapshot_interference),
                  static_cast<unsigned long long>(reader_stripe_retries),
                  static_cast<unsigned long long>(ebr_shard_syncs));
  }
  if ((orec_lock_acquires | orec_lock_waits | orec_write_backs) != 0) {
    const std::size_t used = std::char_traits<char>::length(buf);
    std::snprintf(buf + used, sizeof(buf) - used,
                  "  orec_locks=%llu orec_lock_waits=%llu orec_write_backs=%llu",
                  static_cast<unsigned long long>(orec_lock_acquires),
                  static_cast<unsigned long long>(orec_lock_waits),
                  static_cast<unsigned long long>(orec_write_backs));
  }
  if ((parks | unparks | spurious_wakeups) != 0) {
    const std::size_t used = std::char_traits<char>::length(buf);
    std::snprintf(buf + used, sizeof(buf) - used,
                  "  parks=%llu park_ms=%.1f unparks=%llu spurious=%llu",
                  static_cast<unsigned long long>(parks),
                  static_cast<double>(park_ns) / 1e6,
                  static_cast<unsigned long long>(unparks),
                  static_cast<unsigned long long>(spurious_wakeups));
  }
  return buf;
}

MetricsSummary summarize(const ThreadMetrics& totals, std::int64_t elapsed_ns) {
  MetricsSummary s;
  s.commits = totals.commits;
  s.aborts = totals.aborts;
  s.clock_bumps = totals.clock_bumps;
  s.deferred_stamps = totals.deferred_stamps;
  s.snapshot_interference = totals.snapshot_interference;
  s.reader_stripe_retries = totals.reader_stripe_retries;
  s.ebr_shard_syncs = totals.ebr_shard_syncs;
  s.orec_lock_acquires = totals.orec_lock_acquires;
  s.orec_lock_waits = totals.orec_lock_waits;
  s.orec_write_backs = totals.orec_write_backs;
  s.parks = totals.parks;
  s.park_ns = totals.park_ns;
  s.unparks = totals.unparks;
  s.spurious_wakeups = totals.spurious_wakeups;
  if (elapsed_ns > 0) {
    s.throughput_per_s = static_cast<double>(totals.commits) /
                         (static_cast<double>(elapsed_ns) / 1e9);
  }
  if (totals.commits > 0) {
    s.aborts_per_commit = static_cast<double>(totals.aborts) / static_cast<double>(totals.commits);
    s.mean_response_us =
        static_cast<double>(totals.response_ns) / static_cast<double>(totals.commits) / 1e3;
    s.repeat_conflicts_per_commit =
        static_cast<double>(totals.repeat_conflicts) / static_cast<double>(totals.commits);
  }
  const std::int64_t busy = totals.wasted_ns + totals.committed_ns;
  if (busy > 0) {
    s.wasted_fraction = static_cast<double>(totals.wasted_ns) / static_cast<double>(busy);
  }
  return s;
}

}  // namespace wstm::stm
