// The DSTM locator protocol with visible reads. See tobject.hpp for the
// protocol overview and DESIGN.md §5 for the consistency argument.
#include "stm/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <new>
#include <stdexcept>
#include <thread>

#include "stm/orec/engine.hpp"
#include "trace/recorder.hpp"

namespace wstm::stm {

namespace {
/// Releases the slot reference held by the current_tx_ published pointer;
/// deferred through EBR so enemies dereferencing the pointer stay safe.
void release_desc_ref(void* desc_ptr) { static_cast<TxDesc*>(desc_ptr)->release(); }
}  // namespace

/// The DSTM locator engine behind the Backend interface (DESIGN.md §12):
/// thin forwarding onto the Runtime protocol bodies below, kept as Runtime
/// methods so porting the engine onto the backend concept stayed
/// behavior-preserving line for line.
class DstmBackend final : public Backend {
 public:
  explicit DstmBackend(Runtime& rt) : rt_(rt) {}
  BackendKind kind() const noexcept override { return BackendKind::kDstm; }

  void begin(ThreadCtx& tc) override {
    if (!rt_.snapshot_ext_on_) return;
    if (rt_.deferred_clock_on_) {
      // Refresh the (clock, pending-set) snapshot for this attempt's
      // fast-accepts. A snapshot's claim — "every commit with stamp <=
      // snapshot_clock_ whose owner is not in the pending set completed
      // before the establishment instant" — is about the global commit
      // order, not about any one attempt, so on mid-scan interference the
      // previous attempt's snapshot is kept: older merely accepts fewer
      // stamps (DESIGN.md §11).
      std::uint64_t clock = 0;
      if (rt_.snapshot_establish(tc, clock)) {
        tc.snapshot_clock_ = clock;
        tc.pending_at_snapshot_.swap(tc.pending_scratch_);
        tc.snapshot_valid_ = true;
      } else {
        tc.metrics_.snapshot_interference++;
      }
    } else {
      // Validated-snapshot timestamp: the read set is empty, so invariant I
      // (DESIGN.md §5) holds vacuously at this sample and every later open
      // may skip validation until the clock moves past it.
      tc.snapshot_clock_ = rt_.commit_clock_->load(std::memory_order_seq_cst);
    }
  }

  const void* open_read(ThreadCtx& tc, TObjectBase& obj) override {
    return rt_.dstm_open_read(tc, obj);
  }
  void* open_write(ThreadCtx& tc, TObjectBase& obj) override {
    return rt_.dstm_open_write(tc, obj);
  }
  bool commit(ThreadCtx& tc) override { return rt_.dstm_commit(tc); }

  void end(ThreadCtx& tc, bool /*committed*/) override {
    for (TObjectBase* obj : tc.read_set_) {
      tc.metrics_.reader_stripe_retries += obj->readers_.clear(tc.slot_);
    }
    tc.read_set_.clear();
    tc.invis_reads_.clear();
    tc.invis_index_.reset();
  }

 private:
  Runtime& rt_;
};

Runtime::Runtime(cm::ManagerPtr manager, Config config)
    : manager_(std::move(manager)), config_(config) {
  if (!manager_) throw std::invalid_argument("Runtime requires a contention manager");
  // Visible mode never validates, so the clock would be pure cache-line
  // traffic there; cache the combined toggle for the hot paths.
  snapshot_ext_on_ = config_.snapshot_ext && !config_.visible_reads;
  deferred_clock_on_ = snapshot_ext_on_ && config_.deferred_clock;
  if (config_.backend == BackendKind::kOrec) {
    // The orec engine validates against orec words and the commit clock
    // directly; the locator-mode read knobs (visible_reads, snapshot_ext,
    // deferred_clock) have no orec-side consumer and stay off so no DSTM
    // machinery runs by accident (see DESIGN.md §12 on the clock).
    snapshot_ext_on_ = false;
    deferred_clock_on_ = false;
    backend_ = std::make_unique<OrecEngine>(*this, config_.orec_table_bits);
  } else {
    backend_ = std::make_unique<DstmBackend>(*this);
  }
  manager_->attach_recorder(config_.recorder);
  manager_->attach_wait_hooks(&park_waiter_);
  for (auto& p : parked_on_) p->store(-1, std::memory_order_relaxed);
  if (config_.liveness.enabled) {
    liveness_owned_ = std::make_unique<resilience::LivenessManager>(config_.liveness);
    liveness_ = liveness_owned_.get();
    // The monitor thread is a real-time mechanism; under the deterministic
    // checker it would observe the virtual clock racily and break replay,
    // so only the worker-driven parts of the ladder run there.
    if (config_.checker == nullptr && config_.liveness.watchdog_period_ns > 0) {
      try {
        // The watchdog dereferences published descriptors when kicking, so
        // it needs its own EBR slot (workers are then capped at 63). If the
        // domain is full, detection still runs but kicks are disabled.
        watchdog_ebr_ = ebr_.attach();
      } catch (...) {
      }
      liveness_->start_watchdog([this](unsigned slot) { watchdog_kick(slot); });
    }
  }
  if (config_.chaos.enabled && config_.checker == nullptr) {
    chaos_owned_ = std::make_unique<resilience::ChaosInjector>(config_.chaos);
    chaos_ = chaos_owned_.get();
  }
}

Runtime::~Runtime() {
  // Quiescence-safe teardown: refuse new attempts and drain in-flight ones
  // (bounded) before the watchdog and the thread registry go away.
  shutdown();
  if (liveness_ != nullptr) liveness_->stop_watchdog();
  if (watchdog_ebr_.attached()) watchdog_ebr_.detach();
  std::lock_guard<std::mutex> lock(attach_mutex_);
  for (unsigned i = 0; i < kMaxThreads; ++i) {
    // detach_locked skips contexts the caller already detached (the slot
    // array only holds live ones, so no double handling is possible).
    if (threads_[i]) detach_locked(*threads_[i]);
  }
}

void Runtime::shutdown() noexcept {
  stopping_.store(true, std::memory_order_seq_cst);
  const std::int64_t deadline = now_ns() + config_.shutdown_drain_timeout_ns;
  // Kicking stragglers requires dereferencing published descriptors, which
  // needs an EBR pin; use a scratch handle so shutdown works from any
  // thread. With all kMaxThreads slots taken we only wait (attach throws).
  ebr::Handle scratch;
  bool have_scratch = false;
  try {
    scratch = ebr_.attach();
    have_scratch = true;
  } catch (...) {
  }
  for (;;) {
    bool active = false;
    for (unsigned i = 0; i < kMaxThreads; ++i) {
      if (attempt_active_[i]->load(std::memory_order_seq_cst) != 0) {
        active = true;
        break;
      }
    }
    if (!active) break;
    if (config_.shutdown_drain_timeout_ns > 0 && now_ns() >= deadline) break;
    if (have_scratch) {
      // Abort in-flight stragglers so contention-manager waits unwind into
      // the retry loop, where the stopping gate turns them into
      // RuntimeStoppedError. Irrevocable holders refuse the kill and drain
      // by committing.
      scratch.pin();
      for (unsigned i = 0; i < kMaxThreads; ++i) {
        if (attempt_active_[i]->load(std::memory_order_acquire) == 0) continue;
        if (TxDesc* d = current_tx_[i]->load(std::memory_order_acquire)) {
          if (d->try_abort()) signal_status_change(nullptr, d);
        }
      }
      scratch.unpin();
    }
    std::this_thread::yield();
  }
  if (have_scratch) scratch.detach();
}

void Runtime::watchdog_kick(unsigned slot) {
  if (!watchdog_ebr_.attached()) return;
  watchdog_ebr_.pin();
  // A stalled attempt holds objects open; aborting it lets conflicting
  // threads proceed, and the victim unwinds at its next schedule point.
  // try_abort refuses irrevocable holders by itself.
  if (TxDesc* d = current_tx_[slot]->load(std::memory_order_acquire)) {
    if (d->try_abort()) signal_status_change(nullptr, d);
  }
  watchdog_ebr_.unpin();
}

ThreadCtx& Runtime::attach_thread() {
  std::lock_guard<std::mutex> lock(attach_mutex_);
  for (unsigned i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (slot_used_[i].compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
      const std::uint64_t seed = config_.seed * 0x9e3779b97f4a7c15ULL + i + 1;
      threads_[i].reset(new ThreadCtx(this, i, ebr_.attach(), seed));
      if (config_.pooling) {
        threads_[i]->pool_ = util::Pool::acquire();
        threads_[i]->ebr_.set_pool(threads_[i]->pool_);
      }
      threads_[i]->ebr_.set_sync_counter(&threads_[i]->metrics_.ebr_shard_syncs);
      // Bounds the deferred-clock pending scans; monotone under the mutex.
      if (i + 1 > attached_high_water_.load(std::memory_order_relaxed)) {
        attached_high_water_.store(i + 1, std::memory_order_release);
      }
      return *threads_[i];
    }
  }
  throw std::runtime_error("Runtime: all thread slots in use");
}

void Runtime::detach_thread(ThreadCtx& tc) {
  std::lock_guard<std::mutex> lock(attach_mutex_);
  detach_locked(tc);
}

void Runtime::detach_locked(ThreadCtx& tc) {
  const unsigned slot = tc.slot_;
  // Idempotence: a second detach of the same context (or a detach racing
  // the destructor) must not touch a slot that has moved on.
  if (tc.detached_ || threads_[slot].get() != &tc) return;
  // Drop the published descriptor's slot reference (no enemy can be pinned
  // on it once this thread has stopped running transactions and the caller
  // serializes detach with workload completion).
  TxDesc* prev = current_tx_[slot]->exchange(nullptr, std::memory_order_acq_rel);
  if (prev != nullptr) prev->release();
  tc.detached_ = true;
  // Release the EBR slot now (pending garbage moves to the domain) and park
  // the pool for the next attacher; the context itself is retired, not
  // destroyed, so stale references stay valid until Runtime teardown.
  tc.ebr_.detach();
  if (tc.pool_ != nullptr) {
    util::Pool::park(tc.pool_);
    tc.pool_ = nullptr;
  }
  retired_threads_.push_back(std::move(threads_[slot]));
  slot_used_[slot].store(false, std::memory_order_release);
}

std::uint32_t Runtime::liveness_pre_begin(ThreadCtx& tc, std::int64_t first_begin) {
  const resilience::LivenessConfig& lc = liveness_->config();

  // Hard deadline across attempts: surface a structured error instead of
  // retrying forever. The logical transaction ends here; its escalation
  // state resets so the *next* transaction starts clean.
  if (lc.deadline_ns > 0) {
    const std::int64_t age = now_ns() - first_begin;
    if (age > lc.deadline_ns) {
      const std::uint32_t aborts = tc.consecutive_aborts_;
      tc.metrics_.timeouts++;
      tc.consecutive_aborts_ = 0;
      tc.escalation_level_ = 0;
      throw resilience::TxTimeoutError(tc.slot_, aborts, age);
    }
  }

  // Collect watchdog detections here so the trace event is recorded by the
  // ring's owning thread (once the attempt's serial exists).
  tc.pending_watchdog_flags_ = liveness_->take_flags(tc.slot_);
  if (tc.pending_watchdog_flags_ != 0) tc.metrics_.watchdog_flags++;

  const std::uint32_t aborts = tc.consecutive_aborts_;
  std::uint32_t level = 0;
  if (aborts >= lc.serial_after) {
    level = 3;
  } else if (aborts >= lc.boost_after) {
    level = 2;
  } else if (aborts >= lc.backoff_after) {
    level = 1;
  }
  tc.escalation_level_ = level;
  tc.attempt_irrevocable_ = false;
  if (level == 0) return 0;

  tc.metrics_.escalations++;
  if (level < 3 && lc.backoff_base_us > 0) {
    // Capped randomized exponential backoff, drawn from the thread RNG so
    // seeded runs stay reproducible. Skipped at level 3: the transaction is
    // about to run serially, delaying it only extends the storm.
    const std::uint32_t over = aborts - lc.backoff_after;
    const std::uint64_t cap =
        std::min<std::uint64_t>(static_cast<std::uint64_t>(lc.backoff_base_us)
                                    << std::min<std::uint32_t>(over, 10),
                                lc.backoff_cap_us);
    const std::uint64_t us = tc.rng_.below(cap + 1);
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
  if (level >= 3 && liveness_->try_acquire_token(tc.slot_)) {
    // Token acquisition is strictly non-blocking: a failed CAS means "run
    // this attempt boosted"; blocking here would deadlock the serialized
    // deterministic executor (the waiter holds the execution token).
    tc.attempt_irrevocable_ = true;
    tc.metrics_.serial_fallbacks++;
  }
  return level;
}

TxDesc* Runtime::begin_attempt(ThreadCtx& tc, std::int64_t first_begin, bool is_retry) {
  sched_point(check::Point::kBegin);  // no descriptor yet: directives ignored

  // Shutdown gate, Dekker-paired with shutdown(): our seq_cst store of the
  // active flag is ordered against its seq_cst store of stopping_, so
  // either we observe stopping_ and refuse, or the drain loop observes our
  // flag and waits for this attempt to finish.
  attempt_active_[tc.slot_]->store(1, std::memory_order_seq_cst);
  if (stopping_.load(std::memory_order_seq_cst)) [[unlikely]] {
    attempt_active_[tc.slot_]->store(0, std::memory_order_release);
    throw resilience::RuntimeStoppedError(tc.slot_);
  }

  // Unwind protection until the descriptor is published: anything that
  // throws in between (the liveness deadline check, the EBR pin, the pool
  // allocation) must not leak the active flag — shutdown() would spin on it
  // until the drain timeout — nor the serial-fallback token, which has no
  // other release path and would disable serial fallback for the rest of
  // the run.
  struct BeginGuard {
    Runtime* rt;
    ThreadCtx* tc;
    bool pinned = false;
    bool armed = true;
    ~BeginGuard() {
      if (!armed) return;
      if (tc->attempt_irrevocable_) {
        tc->attempt_irrevocable_ = false;
        rt->liveness_->release_token(tc->slot_);
      }
      if (pinned) tc->ebr_.unpin();
      rt->attempt_active_[tc->slot_]->store(0, std::memory_order_release);
    }
  } guard{this, &tc};

  std::uint32_t level = 0;
  if (liveness_ != nullptr) level = liveness_pre_begin(tc, first_begin);

  tc.ebr_.pin();
  guard.pinned = true;

  auto* desc = new (util::Pool::allocate(tc.pool_, sizeof(TxDesc))) TxDesc();
  desc->thread_slot = tc.slot_;
  desc->serial = ++tc.serial_;
  // First attempts reuse the timestamp atomically() just took; only retries
  // need a fresh clock read.
  desc->begin_ns = is_retry ? now_ns() : first_begin;
  desc->first_begin_ns = first_begin;
  if (level >= 2) {
    // Escalation state becomes visible to enemies with the descriptor
    // itself: both fields are set before the publishing exchange below, so
    // no enemy ever observes a half-escalated attempt. Level 1 is purely a
    // backoff stage (already slept in liveness_pre_begin) and carries no
    // arbitration boost.
    desc->boost.store(level, std::memory_order_relaxed);
    if (tc.attempt_irrevocable_) desc->irrevocable.store(true, std::memory_order_relaxed);
  }

  // Publish: one reference for the slot pointer (released via EBR when the
  // next attempt replaces it) plus the constructor's own reference for the
  // executing thread.
  desc->add_ref();
  TxDesc* prev = current_tx_[tc.slot_]->exchange(desc, std::memory_order_acq_rel);
  if (prev != nullptr) tc.ebr_.retire(prev, &release_desc_ref);

  tc.current_ = desc;
  guard.armed = false;  // published: commit/abort cleanup owns the state now
  tc.waited_this_attempt_ = false;
  tc.wrote_this_attempt_ = false;
  backend_->begin(tc);
  if (trace::Recorder* rec = config_.recorder) {
    rec->record(tc.slot_, trace::EventKind::kBegin, desc->serial, is_retry ? 1 : 0);
    if (liveness_ != nullptr) {
      if (tc.pending_watchdog_flags_ != 0) {
        rec->record(tc.slot_, trace::EventKind::kWatchdog, desc->serial,
                    tc.pending_watchdog_flags_, trace::kNoEnemy, tc.consecutive_aborts_,
                    static_cast<std::uint64_t>(desc->begin_ns - first_begin));
      }
      if (level > 0) {
        rec->record(tc.slot_, trace::EventKind::kEscalate, desc->serial,
                    static_cast<std::uint8_t>(level), trace::kNoEnemy, tc.consecutive_aborts_);
      }
      if (tc.attempt_irrevocable_) {
        rec->record(tc.slot_, trace::EventKind::kSerialToken, desc->serial, 1);
      }
    }
  }
  tc.pending_watchdog_flags_ = 0;
  if (liveness_ != nullptr) {
    liveness_->note_attempt_begin(tc.slot_, desc->begin_ns, first_begin,
                                  tc.consecutive_aborts_);
  }
  manager_->on_begin(tc, *desc, is_retry);
  // After on_begin: the manager resets per-attempt priority state there
  // (WindowCM redraws pi2 and drops to low), so the boost must land last.
  if (level >= 2) manager_->on_boost(tc, *desc, level);
  return desc;
}

bool Runtime::finish_attempt_commit(ThreadCtx& tc) {
  if (sched_point(check::Point::kCommit) == check::Action::kInjectAbort) {
    injected_abort(tc);  // spurious abort at the commit boundary
  }
  const bool committed = backend_->commit(tc);
  cleanup_attempt(tc, committed);
  return committed;
}

bool Runtime::dstm_commit(ThreadCtx& tc) {
  TxDesc* desc = tc.current_;
  // Invisible reads: the read set must still be current at the commit
  // point (throws TxAbort into the atomically() retry loop on failure).
  if (!config_.visible_reads) {
    if (deferred_clock_on_) {
      // Deferred clock (DESIGN.md §11): a read-only attempt serializes at
      // its snapshot-establishment instant — every fast-accepted read was
      // proven ordered before it, every extension re-validated the whole
      // set — so no commit-time pass is needed. A writing attempt runs one
      // full pass: that last validation is its serialization point (the
      // classic DSTM doctrine for the validation→status-CAS window).
      if (tc.wrote_this_attempt_) {
        validate_pass(tc);
      } else {
        tc.metrics_.validations_skipped++;
        tc.metrics_.validation_saved_ns += tc.validate_pass_ewma_ns_;
      }
    } else {
      // Eager clock: a skipped pass means no write committed since the last
      // full validation, and this skip-check is then the attempt's
      // serialization instant.
      validate_or_extend(tc);
    }
  }
  // Chaos: delayed commit (sleep between the decision and the status CAS —
  // the classic window for lost-update bugs) or a spurious late abort.
  if (chaos_ != nullptr) [[unlikely]] chaos_at_commit(tc);
  // Retraction guard for the deferred-clock commit-pending slot: every exit
  // (status CAS taken or lost, blind-commit bug, checker-injected abort
  // unwinding from the schedule point below) must clear the announcement
  // and bump the slot's retraction sequence, or snapshot establishments
  // would refuse this thread's stamps forever.
  struct PendingGuard {
    CommitPending* slot = nullptr;
    void fire() noexcept {
      if (slot == nullptr) return;
      slot->desc.store(nullptr, std::memory_order_seq_cst);
      slot->seq.store(slot->seq.load(std::memory_order_relaxed) + 1,
                      std::memory_order_seq_cst);
      slot = nullptr;
    }
    ~PendingGuard() { fire(); }
  } pending_guard;
  if (snapshot_ext_on_ && tc.wrote_this_attempt_) {
    if (deferred_clock_on_) {
      // Deferred stamping (TL2-GV5 adapted to the locator protocol; proof
      // in DESIGN.md §11). Order matters and is all seq_cst: announce in
      // the per-thread commit-pending slot, read the clock, stamp G+1 into
      // the descriptor, status-CAS, retract. A snapshot establishment that
      // could mis-order this commit either scans the announcement (the
      // stamp lands in its pending set) or brackets the retraction (its
      // per-slot sequence check detects the interference); in every other
      // interleaving the stamp-read follows the establishment's clock
      // sample, so the stamp exceeds its snapshot and is refused by value.
      CommitPending& cp = commit_pending_[tc.slot_];
      cp.desc.store(desc, std::memory_order_seq_cst);
      pending_guard.slot = &cp;
      const std::uint64_t g = commit_clock_->load(std::memory_order_seq_cst);
      // Relaxed store: readers load the stamp only after an acquire load of
      // status observes kCommitted, so the CAS below publishes it.
      desc->commit_stamp.store(g + 1, std::memory_order_relaxed);
      tc.metrics_.deferred_stamps++;
      // The stamp→CAS window is exactly what the commit-pending rule
      // closes; give the checker a schedule point inside it so exploration
      // (and the seeded stamp_no_pending bug) can stall a writer here.
      if (sched_point(check::Point::kCommit) == check::Action::kInjectAbort) {
        injected_abort(tc);  // PendingGuard retracts during unwind
      }
    } else {
      // Eager clock: bump *before* the status transition, so in the seq_cst
      // total order any reader that still samples the pre-bump value is
      // ordered before this commit's version switch and its skipped
      // validation stays sound (DESIGN.md §5). A bump for a CAS that then
      // loses to a remote kill is harmless — the clock only has to dominate
      // the set of successful write-commits, and spurious advances merely
      // force an extra extension pass somewhere.
      commit_clock_->fetch_add(1, std::memory_order_seq_cst);
      tc.metrics_.clock_bumps++;
    }
  }
  if (config_.bugs.blind_commit) [[unlikely]] {
    // SEEDED BUG: a plain store cannot detect a remote kill that landed
    // between the last open and here — the enemy already proceeded on our
    // old version, so "committing" anyway loses the update.
    desc->status.store(TxStatus::kCommitted, std::memory_order_seq_cst);
    pending_guard.fire();
    // SEEDED BUG (park-lost-wakeup): drop the commit-path unpark edge.
    if (!config_.bugs.park_lost_wakeup) signal_status_change(&tc, desc);
    return true;
  }
  TxStatus expected = TxStatus::kActive;
  const bool committed = desc->status.compare_exchange_strong(
      expected, TxStatus::kCommitted, std::memory_order_seq_cst);
  // Retract promptly (a lost CAS retracts too — the spurious sequence bump
  // at worst costs somebody one establishment retry).
  pending_guard.fire();
  // Commit is a status transition: waiters parked on this descriptor must
  // wake. The seeded park-lost-wakeup bug elides exactly this edge (the
  // abort-path edges stay), turning a missed commit notification into
  // bounded timeout stalls in real mode and a detected violation under the
  // checker. A lost CAS means a remote killer owns the transition — and the
  // unpark — instead.
  if (committed && !config_.bugs.park_lost_wakeup) [[likely]] {
    signal_status_change(&tc, desc);
  }
  // false: killed by an enemy between the last open and the commit point.
  return committed;
}

void Runtime::finish_attempt_abort(ThreadCtx& tc) {
  sched_point(check::Point::kAbort);  // visibility only: directives ignored
  TxDesc* desc = tc.current_;
  // Demote before the kill, mirroring abort_self: a user exception escaping
  // the lambda of an irrevocable attempt lands here with the flag still
  // set, and try_abort refuses irrevocable descriptors — without the
  // demotion the status would stay kActive forever and enemies would wait
  // on the dead attempt indefinitely.
  demote_irrevocable(tc, desc);
  desc->try_abort();  // may already be aborted (remote kill or restart())
  signal_status_change(&tc, desc);
  cleanup_attempt(tc, /*committed=*/false);
}

void Runtime::demote_irrevocable(ThreadCtx& tc, TxDesc* desc) {
  if (liveness_ == nullptr || !desc->irrevocable.load(std::memory_order_relaxed)) return;
  desc->irrevocable.store(false, std::memory_order_release);
  liveness_->release_token(tc.slot_);
  if (trace::Recorder* rec = config_.recorder) {
    rec->record(tc.slot_, trace::EventKind::kSerialToken, desc->serial, 0);
  }
}

void Runtime::cleanup_attempt(ThreadCtx& tc, bool committed) {
  TxDesc* desc = tc.current_;
  // Engine teardown first, while still pinned: DSTM clears reader stripes
  // and the invisible read set; orec releases still-held commit locks and
  // drops unapplied redo-log clones.
  backend_->end(tc, committed);

  // One clock read serves elapsed-time and response-time accounting (and
  // the trace event) — now_ns() is a measurable cost at millions of
  // attempts per second.
  const std::int64_t end_ns = now_ns();
  const std::int64_t elapsed = end_ns - desc->begin_ns;
  if (committed) {
    for (const auto& r : tc.commit_retires_) tc.ebr_.retire(r.ptr, r.deleter);
    tc.commit_retires_.clear();
    tc.allocs_.clear();  // ownership passed to the data structure
    tc.metrics_.commits++;
    tc.metrics_.committed_ns += elapsed;
    tc.metrics_.response_ns += end_ns - desc->first_begin_ns;
    if (trace::Recorder* rec = config_.recorder) {
      rec->record(tc.slot_, trace::EventKind::kCommit, desc->serial, 0, trace::kNoEnemy,
                  static_cast<std::uint64_t>(elapsed),
                  static_cast<std::uint64_t>(end_ns - desc->first_begin_ns));
    }
    manager_->on_commit(tc, *desc);
    // Chaos: EBR reclamation pressure — retire a burst of dummy blocks
    // while still pinned, stressing epoch advancement and the retire-chunk
    // machinery under concurrent load.
    if (chaos_ != nullptr) [[unlikely]] {
      if (const std::uint32_t burst = chaos_->ebr_pressure_due(tc.slot_)) {
        tc.metrics_.chaos_faults++;
        for (std::uint32_t i = 0; i < burst; ++i) {
          tc.ebr_.retire(::operator new(64), [](void* p) { ::operator delete(p); });
        }
        if (trace::Recorder* rec = config_.recorder) {
          rec->record(tc.slot_, trace::EventKind::kChaos, desc->serial,
                      static_cast<std::uint8_t>(resilience::ChaosInjector::Fault::kEbrPressure),
                      trace::kNoEnemy, burst);
        }
      }
    }
  } else {
    for (const auto& a : tc.allocs_) a.deleter(a.ptr);
    tc.allocs_.clear();
    tc.commit_retires_.clear();
    tc.metrics_.aborts++;
    tc.metrics_.wasted_ns += elapsed;
    if (trace::Recorder* rec = config_.recorder) {
      // Best-effort killer attribution from a manager-registered aborter
      // (Steal-On-Abort); the offline analyzer joins the winner's conflict
      // events for the general case.
      std::uint32_t killer = trace::kNoEnemy;
      std::uint64_t killer_serial = 0;
      if (const TxDesc* by = desc->aborted_by.load(std::memory_order_acquire)) {
        killer = by->thread_slot;
        killer_serial = by->serial;
      }
      rec->record(tc.slot_, trace::EventKind::kAbort, desc->serial,
                  tc.injected_abort_ ? 1 : 0, killer,
                  static_cast<std::uint64_t>(elapsed), killer_serial);
    }
    manager_->on_abort(tc, *desc);
  }
  if (tc.waited_this_attempt_) tc.metrics_.waits++;

  // Release a leftover aborter registration the manager did not claim
  // (e.g. the registering enemy lost the kill race and we committed).
  if (TxDesc* by = desc->aborted_by.exchange(nullptr, std::memory_order_acq_rel)) {
    by->release();
  }

  // Escalation bookkeeping for the logical transaction (cheap enough to
  // keep unconditional; only the liveness layer reads it).
  if (committed) {
    tc.consecutive_aborts_ = 0;
    tc.escalation_level_ = 0;
  } else {
    tc.consecutive_aborts_++;
  }
  if (liveness_ != nullptr) {
    // The commit path releases the serial-fallback token here; every abort
    // path (abort_self, finish_attempt_abort) already demoted before its
    // try_abort, for which demote_irrevocable is a no-op.
    demote_irrevocable(tc, desc);
    tc.attempt_irrevocable_ = false;
    liveness_->note_attempt_end(tc.slot_, committed);
  }

  tc.injected_abort_ = false;
  tc.current_ = nullptr;
  desc->release();  // the executing thread's reference
  tc.ebr_.unpin();
  attempt_active_[tc.slot_]->store(0, std::memory_order_release);
}

void Runtime::maybe_emulate_preemption(ThreadCtx& tc) {
  const std::uint32_t permille = config_.preempt_yield_permille;
  if (permille != 0 && tc.rng_.below(1000) < permille) std::this_thread::yield();
}

void Runtime::note_conflict(ThreadCtx& tc, const TxDesc& enemy) {
  if (tc.last_enemy_slot_ == enemy.thread_slot && tc.last_enemy_serial_ == enemy.serial) {
    tc.metrics_.repeat_conflicts++;
  } else {
    tc.last_enemy_slot_ = enemy.thread_slot;
    tc.last_enemy_serial_ = enemy.serial;
  }
}

void Runtime::trace_conflict(ThreadCtx& tc, const TxDesc& enemy, ConflictKind kind,
                             Resolution res) {
  trace::Recorder* rec = config_.recorder;
  if (rec == nullptr) return;
  const std::uint64_t serial = tc.current_->serial;
  rec->record(tc.slot_, trace::EventKind::kConflict, serial, trace::pack_conflict(kind, res),
              enemy.thread_slot, enemy.serial);
  if (res == Resolution::kRetry) {
    rec->record(tc.slot_, trace::EventKind::kWait, serial, 0, enemy.thread_slot, enemy.serial);
  }
}

void Runtime::ensure_alive(ThreadCtx& tc) {
  if (!tc.current_->is_active()) throw TxAbort{};
}

void Runtime::abort_self(ThreadCtx& tc) {
  TxDesc* desc = tc.current_;
  // Irrevocability means "enemies cannot kill us", not "we cannot fail
  // ourselves" (invisible-read validation, restart(), injected faults).
  // Demote first so try_abort goes through and the token frees up.
  demote_irrevocable(tc, desc);
  desc->try_abort();
  signal_status_change(&tc, desc);
  throw TxAbort{};
}

Resolution Runtime::arbitrate(ThreadCtx& tc, TxDesc& me, TxDesc& enemy, ConflictKind kind) {
  if (liveness_ == nullptr) [[likely]] {
    return manager_->resolve(tc, me, enemy, kind);
  }
  // Serial fallback short-circuits every manager policy: the token holder
  // cannot lose a conflict, and everyone else waits for it. `me` reads its
  // own flag (owner-written), `enemy` needs acquire.
  if (me.irrevocable.load(std::memory_order_relaxed)) return Resolution::kAbortEnemy;
  // The hard deadline is also enforced here: conflict loops (a Greedy-style
  // kRetry spin, or parking behind the token holder) are the one place an
  // attempt can wait unboundedly without reaching begin_attempt again.
  const resilience::LivenessConfig& lc = liveness_->config();
  if (lc.deadline_ns > 0) {
    const std::int64_t age = now_ns() - me.first_begin_ns;
    if (age > lc.deadline_ns) {
      const std::uint32_t aborts = tc.consecutive_aborts_;
      tc.metrics_.timeouts++;
      tc.consecutive_aborts_ = 0;
      tc.escalation_level_ = 0;
      // Unwinds through atomically()'s catch(...): finish_attempt_abort
      // cleans the attempt, then the error reaches the caller.
      throw resilience::TxTimeoutError(tc.slot_, aborts, age);
    }
  }
  if (enemy.irrevocable.load(std::memory_order_acquire)) {
    // Waiting out the serial-token holder. In wait mode the holder's commit
    // fires this descriptor's unpark edge, so park instead of burning the
    // scheduler; the 100µs slice only bounds a missed edge.
    if (!park_until_inactive(tc, me, enemy, 100'000)) yield_safe();
    return Resolution::kRetry;  // the caller's loop re-examines the enemy
  }
  return manager_->resolve_with_boost(tc, me, enemy, kind);
}

bool Runtime::park_until_inactive(ThreadCtx& tc, const TxDesc& me, const TxDesc& enemy,
                                  std::int64_t max_wait_ns) noexcept {
  if (config_.arbitration != ArbitrationMode::kWait) [[likely]] return false;
  // Serial-token holders never park: the token's contract is that the
  // attempt runs to completion, and everyone else waits for *it*.
  if (tc.attempt_irrevocable_) return false;
  if (max_wait_ns <= 0 || &me == &enemy) return false;
  const unsigned enemy_slot = enemy.thread_slot;
  if (enemy_slot >= kMaxThreads) return false;
  // Deadlock freedom by refusal: if the enemy's park chain already reaches
  // back to this slot, parking would close a waiter cycle — fall back to
  // the caller's abort/yield path instead. The walk follows thread slots
  // only (never descriptor pointers, whose pool storage may be recycled);
  // slot reuse can at worst refuse a safe park, never admit a cycle.
  if (park_would_cycle(tc.slot_, enemy_slot)) return false;

  if (config_.checker != nullptr) {
    // Checker mode: the park is a schedule point. The executor marks this
    // virtual thread blocked at kPark arrival and keeps it ineligible until
    // the enemy's kUnpark edge (or a deadlock-oracle force-wake) clears it.
    // Spurious-wakeup semantics as in real mode: the caller re-checks.
    if (enemy.status.load(std::memory_order_acquire) != TxStatus::kActive) return true;
    parked_on_[tc.slot_]->store(static_cast<int>(enemy_slot), std::memory_order_seq_cst);
    check::ParkEdge edge{&me, &enemy};
    sched_point(check::Point::kPark, &edge);
    parked_on_[tc.slot_]->store(-1, std::memory_order_release);
    tc.metrics_.parks++;
    return true;
  }

  // Bound the slice by the liveness deadline: a parked transaction must
  // still reach its TxTimeoutError, so never sleep past the attempt's
  // remaining budget.
  std::int64_t slice = max_wait_ns;
  std::int64_t t0 = 0;
  if (liveness_ != nullptr) {
    const std::int64_t deadline_ns = liveness_->config().deadline_ns;
    if (deadline_ns > 0) {
      t0 = now_ns();
      const std::int64_t remaining = me.first_begin_ns + deadline_ns - t0;
      if (remaining <= 0) return false;  // arbitrate()'s deadline check fires
      slice = std::min(slice, remaining);
    }
  }
  if (t0 == 0) t0 = now_ns();
  // seq_cst publish before the wait: two threads parking on each other both
  // publish before they walk (inside park_would_cycle on the next attempt)
  // — at least one of any forming cycle observes the other and refuses.
  parked_on_[tc.slot_]->store(static_cast<int>(enemy_slot), std::memory_order_seq_cst);
  if (liveness_ != nullptr) liveness_->set_parked(tc.slot_, true);
  const ParkingLot::ParkResult r = parking_lot_.park(enemy, slice);
  const std::int64_t woke = now_ns();
  if (liveness_ != nullptr) {
    liveness_->set_parked(tc.slot_, false);
    liveness_->heartbeat(tc.slot_, woke);  // waking *is* progress
  }
  parked_on_[tc.slot_]->store(-1, std::memory_order_release);
  tc.metrics_.parks++;
  tc.metrics_.park_ns += static_cast<std::uint64_t>(woke - t0);
  if (r.spurious) tc.metrics_.spurious_wakeups++;
  if (trace::Recorder* rec = config_.recorder) {
    rec->record(tc.slot_, trace::EventKind::kPark, me.serial, r.spurious ? 1 : 0,
                enemy_slot, static_cast<std::uint64_t>(woke - t0), enemy.serial);
  }
  return true;
}

void Runtime::signal_status_change(ThreadCtx* tc, const TxDesc* desc) noexcept {
  if (config_.arbitration != ArbitrationMode::kWait) [[likely]] return;
  if (desc == nullptr) return;
  if (config_.checker != nullptr) {
    // The unpark edge is a schedule point: the executor wakes every virtual
    // thread blocked on `desc` at arrival. Watchdog/shutdown callers pass a
    // null tc and never run under the checker, so sched_point's thread-local
    // vid is always valid here.
    sched_point(check::Point::kUnpark, desc);
    return;
  }
  const unsigned woken = parking_lot_.unpark_all(desc);
  if (woken == 0 || tc == nullptr) return;
  tc->metrics_.unparks += woken;
  if (trace::Recorder* rec = config_.recorder) {
    rec->record(tc->slot_, trace::EventKind::kUnpark, desc->serial, 0, desc->thread_slot,
                woken);
  }
}

bool Runtime::park_would_cycle(unsigned waiter_slot, unsigned enemy_slot) const noexcept {
  unsigned cur = enemy_slot;
  for (unsigned hops = 0; hops < kMaxThreads; ++hops) {
    if (cur == waiter_slot) return true;
    const int next = parked_on_[cur]->load(std::memory_order_seq_cst);
    if (next < 0 || static_cast<unsigned>(next) >= kMaxThreads) return false;
    cur = static_cast<unsigned>(next);
  }
  return true;  // chain longer than the thread count: refuse conservatively
}

void Runtime::chaos_at_open(ThreadCtx& tc) {
  const auto inj = chaos_->at_open(tc.rng_);
  if (inj.fault == resilience::ChaosInjector::Fault::kNone) return;
  tc.metrics_.chaos_faults++;
  if (trace::Recorder* rec = config_.recorder) {
    rec->record(tc.slot_, trace::EventKind::kChaos, tc.current_->serial,
                static_cast<std::uint8_t>(inj.fault), trace::kNoEnemy, inj.slept_us);
  }
  // The serial-fallback holder is exempt from spurious aborts: the token's
  // contract is that the attempt runs to completion.
  if (inj.fault == resilience::ChaosInjector::Fault::kSpuriousAbort &&
      !tc.current_->irrevocable.load(std::memory_order_relaxed)) {
    abort_self(tc);
  }
}

void Runtime::chaos_at_commit(ThreadCtx& tc) {
  const auto inj = chaos_->at_commit(tc.rng_, tc.attempt_irrevocable_);
  if (inj.fault == resilience::ChaosInjector::Fault::kNone) return;
  tc.metrics_.chaos_faults++;
  if (trace::Recorder* rec = config_.recorder) {
    rec->record(tc.slot_, trace::EventKind::kChaos, tc.current_->serial,
                static_cast<std::uint8_t>(inj.fault), trace::kNoEnemy, inj.slept_us);
  }
  if (inj.fault == resilience::ChaosInjector::Fault::kSpuriousAbort) {
    abort_self(tc);  // same unwinding as a failed commit-time validation
  }
}

void Runtime::injected_abort(ThreadCtx& tc) {
  tc.injected_abort_ = true;
  tc.metrics_.injected_aborts++;
  abort_self(tc);
}

void Runtime::open_prologue(ThreadCtx& tc) {
  maybe_emulate_preemption(tc);
  // One clock read per open, taken only when the watchdog consumes it —
  // the same one-read discipline cleanup_attempt uses; configurations
  // without the liveness layer never pay for now_ns() here.
  if (liveness_ != nullptr) liveness_->heartbeat(tc.slot_, now_ns());
  if (chaos_ != nullptr) [[unlikely]] chaos_at_open(tc);
}

const void* Runtime::dstm_open_read(ThreadCtx& tc, TObjectBase& obj) {
  if (!config_.visible_reads) return dstm_open_read_invisible(tc, obj);
  TxDesc* me = tc.current_;

  // Announce visibility first (flag protocol: the stripe bit-set must
  // precede the locator load so an acquiring writer either sees our bit in
  // its stripe scan or we see its locator — both orders get the conflict
  // resolved).
  if (!obj.readers_.announced(tc.slot_)) {
    tc.metrics_.reader_stripe_retries += obj.readers_.announce(tc.slot_);
    tc.read_set_.push_back(&obj);
  }

  for (;;) {
    if (sched_point(check::Point::kRead, &obj) == check::Action::kInjectAbort) {
      injected_abort(tc);
    }
    ensure_alive(tc);
    Locator* l = obj.loc_.load(std::memory_order_seq_cst);
    TxDesc* owner = l->owner;
    if (owner == nullptr || owner == me) {
      manager_->on_open(tc, *me);
      return l->new_version;
    }
    const TxStatus st = owner->status.load(std::memory_order_acquire);
    if (st == TxStatus::kCommitted) {
      manager_->on_open(tc, *me);
      return l->new_version;
    }
    if (st == TxStatus::kAborted) {
      manager_->on_open(tc, *me);
      return l->old_version;
    }
    // Active enemy writer.
    tc.metrics_.rw_conflicts++;
    note_conflict(tc, *owner);
    const Resolution res = arbitrate(tc, *me, *owner, ConflictKind::kReadWrite);
    trace_conflict(tc, *owner, ConflictKind::kReadWrite, res);
    if (res == Resolution::kAbortEnemy) {
      // Loop re-reads; even if the enemy committed we proceed. The kill is
      // a status transition, so fire its unpark edge.
      if (owner->try_abort()) signal_status_change(&tc, owner);
    } else if (res == Resolution::kAbortSelf) {
      abort_self(tc);
    } else {
      tc.waited_this_attempt_ = true;  // kRetry after an internal wait
    }
  }
}

const void* Runtime::dstm_open_read_invisible(ThreadCtx& tc, TObjectBase& obj) {
  TxDesc* me = tc.current_;
  for (;;) {
    if (sched_point(check::Point::kRead, &obj) == check::Action::kInjectAbort) {
      injected_abort(tc);
    }
    ensure_alive(tc);
    Locator* l = obj.loc_.load(std::memory_order_seq_cst);
    TxDesc* owner = l->owner;
    const void* version = nullptr;
    // Resolved status of a foreign owner (only consulted then); kActive
    // never reaches the validation below — it is arbitrated away first.
    TxStatus owner_st = TxStatus::kCommitted;
    if (owner == nullptr || owner == me) {
      version = l->new_version;
    } else {
      const TxStatus st = owner->status.load(std::memory_order_acquire);
      owner_st = st;
      if (st == TxStatus::kCommitted) {
        version = l->new_version;
      } else if (st == TxStatus::kAborted) {
        version = l->old_version;
      } else {
        // Eager conflict with an active writer, same arbitration as the
        // visible path.
        tc.metrics_.rw_conflicts++;
        note_conflict(tc, *owner);
        const Resolution res = arbitrate(tc, *me, *owner, ConflictKind::kReadWrite);
        trace_conflict(tc, *owner, ConflictKind::kReadWrite, res);
        if (res == Resolution::kAbortEnemy) {
          if (owner->try_abort()) signal_status_change(&tc, owner);
        } else if (res == Resolution::kAbortSelf) {
          abort_self(tc);
        } else {
          tc.waited_this_attempt_ = true;
        }
        continue;
      }
    }
    // Incremental validation (DSTM): everything read so far must still be
    // current, and this object's locator must not have changed while we
    // validated — then the whole read set is a snapshot as of this instant.
    // With the snapshot-extension fast path this is O(R) only when a write
    // committed since the attempt's last full pass; otherwise the clock
    // comparison (eager) or the per-object stamp check (deferred — no
    // shared-line access at all) stands in for the pass (amortized O(1)).
    if (deferred_clock_on_) {
      validate_or_extend_deferred(tc, owner, owner_st);
    } else {
      validate_or_extend(tc);
    }
    // Schedule point inside the validate→recheck window: this is the exact
    // preemption the recheck below exists to survive, so the checker must be
    // able to interleave a writer here.
    if (sched_point(check::Point::kRead, &obj) == check::Action::kInjectAbort) {
      injected_abort(tc);
    }
    // SEEDED BUG (skip_cas_recheck): dropping the locator recheck lets a
    // writer slip between the validation above and our use of `version`,
    // so the read set is no longer a snapshot of one instant.
    if (!config_.bugs.skip_cas_recheck &&
        obj.loc_.load(std::memory_order_seq_cst) != l) {
      continue;
    }
    // Ghost opacity oracle (checker builds only, under the schedule token
    // so it cannot perturb exploration): the version about to be handed to
    // the user must still be the committed one — no schedule point sits
    // between the recheck above and the return, so a mismatch means the
    // recheck was skipped (seeded skip_cas_recheck) or regressed and a
    // writer slipped its commit into the validate→recheck window. Own
    // acquisitions are exempt: they legitimately return the pre-acquire
    // version via new_version while committed_view reports old_version.
    if (config_.checker != nullptr && owner != me &&
        committed_version(me, obj) != version) {
      config_.checker->on_opacity_violation(
          "open_read_invisible returned a version superseded before return");
    }
    // Own acquisitions are protected by ownership, not validation.
    if (owner != me) {
      const std::uint32_t idx = tc.invis_index_.find(&obj);
      if (idx != InvisReadIndex::kNotFound) {
        // Re-read: the set already covers this object; appending again
        // would make R the read *count* and validation O(reads · R). The
        // recorded version must match what we just resolved — validation
        // (or the fast-path invariant) keeps the entry current and the
        // recheck pinned `version` to the same instant, so a mismatch is a
        // torn snapshot. Defense in depth: abort rather than assert.
        if (tc.invis_reads_[idx].version != version) abort_self(tc);
        tc.metrics_.dup_reads++;
      } else {
        tc.invis_index_.insert(&obj, static_cast<std::uint32_t>(tc.invis_reads_.size()));
        tc.invis_reads_.push_back({&obj, version});
      }
    }
    manager_->on_open(tc, *me);
    return version;
  }
}

Runtime::CommittedView Runtime::committed_view(TxDesc* me, TObjectBase& obj) const {
  for (;;) {
    Locator* l = obj.loc_.load(std::memory_order_seq_cst);
    TxDesc* owner = l->owner;
    if (owner == nullptr) return {l->new_version, false};
    // If we acquired the object after reading it, the version we observed
    // became our locator's old_version (clone-on-write keeps it in place).
    if (owner == me) return {l->old_version, false};
    const TxStatus st = owner->status.load(std::memory_order_acquire);
    // A replacer may have swapped the locator between the two loads above
    // (only possible once `owner` resolved, i.e. committed or aborted): the
    // status we just read then describes a superseded locator generation,
    // and pairing it with l's version pointers can report a version that
    // was already replaced — re-read instead of relying on lucky ordering.
    // No schedule point separates the two loads, so the serialized checker
    // cannot pin this window; it is exercised by the real-thread churn tests
    // (InvisibleReads.ReadersSeeConsistentPairsUnderChurn, under TSan in CI).
    // The analogous validate->recheck window in open_read_invisible does
    // have a point and is pinned by
    // InvisibleChecker.CommitInValidateRecheckWindowIsCaught.
    if (obj.loc_.load(std::memory_order_seq_cst) != l) continue;
    if (st == TxStatus::kCommitted) return {l->new_version, false};
    // An *active* owner leaves old_version current, but its commit CAS may
    // land at any moment — flag it so an extension pass cannot claim a
    // clock value whose bump belongs to this still-pending writer.
    return {l->old_version, st == TxStatus::kActive};
  }
}

void Runtime::validate_reads(ThreadCtx& tc) { validate_pass(tc); }

bool Runtime::validate_pass(ThreadCtx& tc) {
  TxDesc* me = tc.current_;
  tc.metrics_.validations++;
  tc.metrics_.validated_reads += tc.invis_reads_.size();
  bool no_pending = true;
  for (const auto& r : tc.invis_reads_) {
    const CommittedView v = committed_view(me, *r.obj);
    if (v.version != r.version) abort_self(tc);
    no_pending &= !v.pending;
  }
  return no_pending;
}

void Runtime::validate_or_extend(ThreadCtx& tc) {
  if (!snapshot_ext_on_) {
    validate_pass(tc);
    return;
  }
  const std::uint64_t clock = commit_clock_->load(std::memory_order_seq_cst);
  if (clock == tc.snapshot_clock_) {
    // Fast path: every successful write-commit bumps the clock before its
    // status CAS, so an unchanged clock means no committed version anywhere
    // has changed since the snapshot was validated (invariant I, DESIGN.md
    // §5) — the pass would succeed and is skipped; this sample is the
    // attempt's serialization instant.
    tc.metrics_.validations_skipped++;
    tc.metrics_.validation_saved_ns += tc.validate_pass_ewma_ns_;
    if (config_.checker != nullptr) {
      // Ghost check (checker builds only, under the schedule token): the
      // skipped pass must have been guaranteed to succeed — a mismatch here
      // is an opacity bug in the fast path itself, not in user schedules.
      TxDesc* me = tc.current_;
      for (const auto& r : tc.invis_reads_) {
        if (committed_view(me, *r.obj).version != r.version) {
          config_.checker->on_opacity_violation(
              "snapshot fast path skipped a validation that would have failed");
          break;
        }
      }
    }
    return;
  }
  // Extension pass (LSA/TL2-style): some write committed since the last
  // pass, so validate the whole set once; on success it is a snapshot as of
  // the sample above and the snapshot may advance to `clock` — unless a
  // pending writer was seen: its bump may be the very advance we sampled
  // with the commit CAS still in flight, and claiming `clock` would let
  // that commit invalidate an entry while the clock appears unchanged.
  const std::int64_t t0 = now_ns();
  const bool no_pending = validate_pass(tc);
  const std::int64_t pass_ns = now_ns() - t0;
  tc.validate_pass_ewma_ns_ = tc.validate_pass_ewma_ns_ == 0
                                  ? pass_ns
                                  : (3 * tc.validate_pass_ewma_ns_ + pass_ns) / 4;
  tc.metrics_.extensions++;
  if (no_pending) tc.snapshot_clock_ = clock;
  if (trace::Recorder* rec = config_.recorder) {
    rec->record(tc.slot_, trace::EventKind::kSnapshotExtend, tc.current_->serial,
                no_pending ? 1 : 0, trace::kNoEnemy,
                static_cast<std::uint64_t>(tc.invis_reads_.size()), clock);
  }
}

bool Runtime::snapshot_establish(ThreadCtx& tc, std::uint64_t& clock_out) {
  const unsigned hi = attached_high_water_.load(std::memory_order_acquire);
  auto& seqs = tc.pending_seq_scratch_;
  seqs.resize(hi);
  // Pass 1, before the clock sample: per-slot retraction sequences. A
  // commit whose status CAS could land after the sample but whose slot the
  // pending scan would find already retracted is exactly the one a single
  // scan mis-orders; it necessarily bumps its sequence inside this bracket.
  for (unsigned i = 0; i < hi; ++i) {
    seqs[i] = commit_pending_[i].seq.load(std::memory_order_seq_cst);
  }
  const std::uint64_t clock = commit_clock_->load(std::memory_order_seq_cst);
  // Pass 2, after the sample: the commit-pending set, then the sequence
  // re-read (per slot, in that order — the proof needs the re-read to
  // follow the slot's pending read). Case analysis per announced writer W
  // with stamp <= clock whose switch might postdate the sample: W still
  // announced here → lands in the pending set, refused by identity; W
  // retracted first → its sequence bump is inside the bracket, detected as
  // interference; W announced only after its slot was scanned → its clock
  // read follows our sample, so its stamp exceeds `clock` and is refused
  // by value. (DESIGN.md §11.)
  tc.pending_scratch_.clear();
  bool stable = true;
  for (unsigned i = 0; i < hi; ++i) {
    const CommitPending& cp = commit_pending_[i];
    if (const TxDesc* w = cp.desc.load(std::memory_order_seq_cst)) {
      if (w != tc.current_) tc.pending_scratch_.push_back(w);
    }
    stable &= cp.seq.load(std::memory_order_seq_cst) == seqs[i];
  }
  clock_out = clock;
  return stable;
}

void Runtime::validate_or_extend_deferred(ThreadCtx& tc, TxDesc* owner, TxStatus st) {
  TxDesc* me = tc.current_;
  if (owner == me) {
    // Own acquisition: the returned clone is transaction-local, so this
    // open adds no new shared observation and the recorded set cannot have
    // become newly inconsistent through it — nothing to validate.
    tc.metrics_.validations_skipped++;
    tc.metrics_.validation_saved_ns += tc.validate_pass_ewma_ns_;
    return;
  }
  std::uint64_t trigger = 0;
  bool fast = false;
  bool owner_pending = false;
  if (tc.snapshot_valid_) {
    if (owner == nullptr) {
      // Initial locator: never switched. The version has been current since
      // the object was published, and whichever validated read led us to
      // this object proves the publishing commit precedes the snapshot.
      fast = true;
    } else if (st == TxStatus::kCommitted) {
      trigger = owner->commit_stamp.load(std::memory_order_acquire);
      for (const TxDesc* w : tc.pending_at_snapshot_) owner_pending |= (w == owner);
      // SEEDED BUG (stamp_no_pending): dropping the pending-set membership
      // check treats a writer that was still mid-commit at snapshot
      // establishment — its status CAS possibly after the establishment
      // instant — as pre-snapshot (opacity bug, DESIGN.md §11).
      fast = trigger <= tc.snapshot_clock_ &&
             (!owner_pending || config_.bugs.stamp_no_pending);
    }
    // st == kAborted: old_version is current, but its *producing* writer's
    // identity is gone (only its stamp could be carried, and the pending
    // rule needs the identity) — take the extension path. Rare: an aborted
    // locator is replaced by the next acquirer.
  }
  if (fast) {
    tc.metrics_.validations_skipped++;
    tc.metrics_.validation_saved_ns += tc.validate_pass_ewma_ns_;
    if (config_.checker != nullptr && owner_pending) {
      // Ghost oracle (checker builds only): a fast-accept's soundness
      // precondition is that the owner's switch is provably ordered before
      // the snapshot instant; an owner recorded as mid-commit at
      // establishment has no such proof — its status CAS may have landed
      // after the establishment, which is the exact staleness window the
      // seeded stamp_no_pending bug opens. (Unlike the eager fast path,
      // recorded entries may here be legitimately superseded — the attempt
      // serializes at its snapshot instant — so no full-set re-check.)
      config_.checker->on_opacity_violation(
          "deferred-clock fast path accepted a stamp from a writer that was "
          "mid-commit at snapshot establishment");
    }
    return;
  }
  extend_deferred(tc, trigger);
}

void Runtime::extend_deferred(ThreadCtx& tc, std::uint64_t trigger_stamp) {
  // Raise the clock to cover the triggering stamp first, so this extension
  // is the one shared-line write amortized over the whole clock generation:
  // every other thread tripping over the same generation finds the clock
  // already raised, re-establishes, and fast-accepts from then on. Stamps
  // are G+1 for some observed clock G <= current, so the raise is by one.
  if (trigger_stamp != 0) {
    std::uint64_t cur = commit_clock_->load(std::memory_order_seq_cst);
    while (cur < trigger_stamp) {
      if (commit_clock_->compare_exchange_weak(cur, trigger_stamp,
                                               std::memory_order_seq_cst)) {
        tc.metrics_.clock_bumps++;
        if (trace::Recorder* rec = config_.recorder) {
          rec->record(tc.slot_, trace::EventKind::kClockBump, tc.current_->serial, 0,
                      trace::kNoEnemy, trigger_stamp);
        }
        break;
      }
    }
  }
  std::uint64_t clock = 0;
  const bool stable = snapshot_establish(tc, clock);
  const std::int64_t t0 = now_ns();
  validate_pass(tc);  // aborts self on any stale entry
  const std::int64_t pass_ns = now_ns() - t0;
  tc.validate_pass_ewma_ns_ = tc.validate_pass_ewma_ns_ == 0
                                  ? pass_ns
                                  : (3 * tc.validate_pass_ewma_ns_ + pass_ns) / 4;
  tc.metrics_.extensions++;
  if (stable) {
    // Advance. Eager mode's per-entry pending-writer rule is subsumed by
    // the commit-pending scan: an entry's still-active owner either had
    // announced before the scan (its commits stay refusable by identity)
    // or will read its stamp after our sample (refusable by value) — see
    // DESIGN.md §11.
    tc.snapshot_clock_ = clock;
    tc.pending_at_snapshot_.swap(tc.pending_scratch_);
    tc.snapshot_valid_ = true;
  } else {
    tc.metrics_.snapshot_interference++;
  }
  if (trace::Recorder* rec = config_.recorder) {
    rec->record(tc.slot_, trace::EventKind::kSnapshotExtend, tc.current_->serial,
                stable ? 1 : 0, trace::kNoEnemy,
                static_cast<std::uint64_t>(tc.invis_reads_.size()), clock);
  }
}

void* Runtime::dstm_open_write(ThreadCtx& tc, TObjectBase& obj) {
  TxDesc* me = tc.current_;

  for (;;) {
    if (sched_point(check::Point::kWrite, &obj) == check::Action::kInjectAbort) {
      injected_abort(tc);
    }
    ensure_alive(tc);
    Locator* l = obj.loc_.load(std::memory_order_seq_cst);
    TxDesc* owner = l->owner;
    if (owner == me) {
      manager_->on_open(tc, *me);
      return l->new_version;  // already acquired in this attempt
    }

    void* current = nullptr;
    void* dead = nullptr;
    // Resolved status of the replaced locator's owner (stable: it already
    // left kActive); feeds the deferred-clock validation below, which
    // treats the clone's base as a fresh shared observation.
    TxStatus prev_st = TxStatus::kCommitted;
    if (owner == nullptr) {
      current = l->new_version;
    } else {
      const TxStatus st = owner->status.load(std::memory_order_acquire);
      prev_st = st;
      if (st == TxStatus::kCommitted) {
        current = l->new_version;
        dead = l->old_version;
      } else if (st == TxStatus::kAborted) {
        current = l->old_version;
        dead = l->new_version;
      } else {
        tc.metrics_.ww_conflicts++;
        note_conflict(tc, *owner);
        const Resolution res = arbitrate(tc, *me, *owner, ConflictKind::kWriteWrite);
        trace_conflict(tc, *owner, ConflictKind::kWriteWrite, res);
        if (res == Resolution::kAbortEnemy) {
          if (owner->try_abort()) signal_status_change(&tc, owner);
        } else if (res == Resolution::kAbortSelf) {
          abort_self(tc);
        } else {
          tc.waited_this_attempt_ = true;
        }
        continue;
      }
    }

    void* clone = obj.make_clone(tc.pool_, current);
    auto* fresh = new (util::Pool::allocate(tc.pool_, sizeof(Locator)))
        Locator{me, current, clone, nullptr, obj.destroy_,
                snapshot_ext_on_ ? commit_clock_->load(std::memory_order_relaxed) : 0};
    me->add_ref();
    const check::Action cas_act = sched_point(check::Point::kCas, &obj);
    if (cas_act == check::Action::kInjectAbort) {
      obj.destroy_(fresh->new_version);
      util::Pool::deallocate(fresh);
      me->release();
      injected_abort(tc);
    }
    if (cas_act != check::Action::kFailCas &&
        obj.loc_.compare_exchange_strong(l, fresh, std::memory_order_seq_cst)) {
      // `l` is now unreachable for new opens; readers pinned in EBR may
      // still hold it, so retire rather than free. The losing version dies
      // with it.
      l->dead_version = dead;
      tc.ebr_.retire(l, &Locator::reclaim);
      tc.wrote_this_attempt_ = true;  // commit must bump the snapshot clock
      if (config_.visible_reads) {
        // SEEDED BUG (skip_reader_abort): acquiring without resolving the
        // visible readers leaves them on snapshots this write supersedes.
        if (!config_.bugs.skip_reader_abort) resolve_readers(tc, obj);
      } else {
        // DSTM validates on every open: the clone's base (the replaced
        // locator's committed version) is a fresh shared observation the
        // user code is about to see, so the set + base must still be one
        // snapshot. The deferred fast path keys off the *replaced*
        // locator's owner — the producer of the base version.
        if (deferred_clock_on_) {
          validate_or_extend_deferred(tc, owner, prev_st);
        } else {
          validate_or_extend(tc);
        }
      }
      manager_->on_open(tc, *me);
      return fresh->new_version;
    }
    // Lost the install race; roll back the speculative locator.
    obj.destroy_(fresh->new_version);
    util::Pool::deallocate(fresh);
    me->release();
  }
}

void Runtime::resolve_readers(ThreadCtx& tc, TObjectBase& obj) {
  TxDesc* me = tc.current_;
  // Scan all stripes of the acquire-time reader snapshot (the flag
  // protocol's seq_cst pairing is per stripe word; a reader announcing
  // after its stripe was scanned sees our installed locator instead).
  for (unsigned stripe = 0; stripe < ReaderStripes::kStripes; ++stripe) {
    std::uint64_t bits = obj.readers_.load_stripe(stripe, std::memory_order_seq_cst);
    if (stripe == ReaderStripes::stripe_of(tc.slot_)) {
      bits &= ~ReaderStripes::bit_of(tc.slot_);
    }
    while (bits != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctzll(bits));
      bits &= bits - 1;
      const unsigned slot = ReaderStripes::slot_at(stripe, bit);
      for (;;) {
        if (sched_point(check::Point::kReaderResolve, &obj) ==
            check::Action::kInjectAbort) {
          injected_abort(tc);
        }
        ensure_alive(tc);
        TxDesc* enemy = tx_of_slot(slot);
        if (enemy == nullptr || enemy == me || !enemy->is_active()) break;
        tc.metrics_.wr_conflicts++;
        note_conflict(tc, *enemy);
        const Resolution res = arbitrate(tc, *me, *enemy, ConflictKind::kWriteRead);
        trace_conflict(tc, *enemy, ConflictKind::kWriteRead, res);
        if (res == Resolution::kAbortEnemy) {
          if (enemy->try_abort()) signal_status_change(&tc, enemy);
          break;
        }
        if (res == Resolution::kAbortSelf) abort_self(tc);
        tc.waited_this_attempt_ = true;  // kRetry: re-examine this reader
      }
    }
  }
}

ThreadMetrics Runtime::total_metrics() const {
  std::lock_guard<std::mutex> lock(attach_mutex_);
  ThreadMetrics total;
  for (const auto& t : threads_) {
    if (t) total += t->metrics_;
  }
  return total;
}

void Runtime::reset_metrics() {
  std::lock_guard<std::mutex> lock(attach_mutex_);
  for (const auto& t : threads_) {
    if (t) t->metrics_.reset();
  }
}

}  // namespace wstm::stm
