// The DSTM locator protocol with visible reads. See tobject.hpp for the
// protocol overview and DESIGN.md §5 for the consistency argument.
#include "stm/runtime.hpp"

#include <new>
#include <stdexcept>
#include <thread>

#include "trace/recorder.hpp"

namespace wstm::stm {

namespace {
/// Releases the slot reference held by the current_tx_ published pointer;
/// deferred through EBR so enemies dereferencing the pointer stay safe.
void release_desc_ref(void* desc_ptr) { static_cast<TxDesc*>(desc_ptr)->release(); }
}  // namespace

Runtime::Runtime(cm::ManagerPtr manager, Config config)
    : manager_(std::move(manager)), config_(config) {
  if (!manager_) throw std::invalid_argument("Runtime requires a contention manager");
  manager_->attach_recorder(config_.recorder);
}

Runtime::~Runtime() {
  std::lock_guard<std::mutex> lock(attach_mutex_);
  for (unsigned i = 0; i < kMaxThreads; ++i) {
    // detach_locked skips contexts the caller already detached (the slot
    // array only holds live ones, so no double handling is possible).
    if (threads_[i]) detach_locked(*threads_[i]);
  }
}

ThreadCtx& Runtime::attach_thread() {
  std::lock_guard<std::mutex> lock(attach_mutex_);
  for (unsigned i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (slot_used_[i].compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
      const std::uint64_t seed = config_.seed * 0x9e3779b97f4a7c15ULL + i + 1;
      threads_[i].reset(new ThreadCtx(this, i, ebr_.attach(), seed));
      if (config_.pooling) {
        threads_[i]->pool_ = util::Pool::acquire();
        threads_[i]->ebr_.set_pool(threads_[i]->pool_);
      }
      return *threads_[i];
    }
  }
  throw std::runtime_error("Runtime: all thread slots in use");
}

void Runtime::detach_thread(ThreadCtx& tc) {
  std::lock_guard<std::mutex> lock(attach_mutex_);
  detach_locked(tc);
}

void Runtime::detach_locked(ThreadCtx& tc) {
  const unsigned slot = tc.slot_;
  // Idempotence: a second detach of the same context (or a detach racing
  // the destructor) must not touch a slot that has moved on.
  if (tc.detached_ || threads_[slot].get() != &tc) return;
  // Drop the published descriptor's slot reference (no enemy can be pinned
  // on it once this thread has stopped running transactions and the caller
  // serializes detach with workload completion).
  TxDesc* prev = current_tx_[slot]->exchange(nullptr, std::memory_order_acq_rel);
  if (prev != nullptr) prev->release();
  tc.detached_ = true;
  // Release the EBR slot now (pending garbage moves to the domain) and park
  // the pool for the next attacher; the context itself is retired, not
  // destroyed, so stale references stay valid until Runtime teardown.
  tc.ebr_.detach();
  if (tc.pool_ != nullptr) {
    util::Pool::park(tc.pool_);
    tc.pool_ = nullptr;
  }
  retired_threads_.push_back(std::move(threads_[slot]));
  slot_used_[slot].store(false, std::memory_order_release);
}

TxDesc* Runtime::begin_attempt(ThreadCtx& tc, std::int64_t first_begin, bool is_retry) {
  sched_point(check::Point::kBegin);  // no descriptor yet: directives ignored
  tc.ebr_.pin();

  auto* desc = new (util::Pool::allocate(tc.pool_, sizeof(TxDesc))) TxDesc();
  desc->thread_slot = tc.slot_;
  desc->serial = ++tc.serial_;
  // First attempts reuse the timestamp atomically() just took; only retries
  // need a fresh clock read.
  desc->begin_ns = is_retry ? now_ns() : first_begin;
  desc->first_begin_ns = first_begin;

  // Publish: one reference for the slot pointer (released via EBR when the
  // next attempt replaces it) plus the constructor's own reference for the
  // executing thread.
  desc->add_ref();
  TxDesc* prev = current_tx_[tc.slot_]->exchange(desc, std::memory_order_acq_rel);
  if (prev != nullptr) tc.ebr_.retire(prev, &release_desc_ref);

  tc.current_ = desc;
  tc.waited_this_attempt_ = false;
  if (trace::Recorder* rec = config_.recorder) {
    rec->record(tc.slot_, trace::EventKind::kBegin, desc->serial, is_retry ? 1 : 0);
  }
  manager_->on_begin(tc, *desc, is_retry);
  return desc;
}

bool Runtime::finish_attempt_commit(ThreadCtx& tc) {
  TxDesc* desc = tc.current_;
  if (sched_point(check::Point::kCommit) == check::Action::kInjectAbort) {
    injected_abort(tc);  // spurious abort at the commit boundary
  }
  // Invisible reads: the read set must still be current at the commit
  // point (throws TxAbort into the atomically() retry loop on failure).
  if (!config_.visible_reads) validate_reads(tc);
  if (config_.bugs.blind_commit) [[unlikely]] {
    // SEEDED BUG: a plain store cannot detect a remote kill that landed
    // between the last open and here — the enemy already proceeded on our
    // old version, so "committing" anyway loses the update.
    desc->status.store(TxStatus::kCommitted, std::memory_order_seq_cst);
    cleanup_attempt(tc, /*committed=*/true);
    return true;
  }
  TxStatus expected = TxStatus::kActive;
  const bool committed = desc->status.compare_exchange_strong(
      expected, TxStatus::kCommitted, std::memory_order_seq_cst);
  if (committed) {
    cleanup_attempt(tc, /*committed=*/true);
    return true;
  }
  // Killed by an enemy between the last open and the commit point.
  cleanup_attempt(tc, /*committed=*/false);
  return false;
}

void Runtime::finish_attempt_abort(ThreadCtx& tc) {
  sched_point(check::Point::kAbort);  // visibility only: directives ignored
  TxDesc* desc = tc.current_;
  desc->try_abort();  // may already be aborted (remote kill or restart())
  cleanup_attempt(tc, /*committed=*/false);
}

void Runtime::cleanup_attempt(ThreadCtx& tc, bool committed) {
  TxDesc* desc = tc.current_;
  const std::uint64_t clear_mask = ~(1ULL << tc.slot_);
  for (TObjectBase* obj : tc.read_set_) {
    obj->readers_.fetch_and(clear_mask, std::memory_order_acq_rel);
  }
  tc.read_set_.clear();
  tc.invis_reads_.clear();

  // One clock read serves elapsed-time and response-time accounting (and
  // the trace event) — now_ns() is a measurable cost at millions of
  // attempts per second.
  const std::int64_t end_ns = now_ns();
  const std::int64_t elapsed = end_ns - desc->begin_ns;
  if (committed) {
    for (const auto& r : tc.commit_retires_) tc.ebr_.retire(r.ptr, r.deleter);
    tc.commit_retires_.clear();
    tc.allocs_.clear();  // ownership passed to the data structure
    tc.metrics_.commits++;
    tc.metrics_.committed_ns += elapsed;
    tc.metrics_.response_ns += end_ns - desc->first_begin_ns;
    if (trace::Recorder* rec = config_.recorder) {
      rec->record(tc.slot_, trace::EventKind::kCommit, desc->serial, 0, trace::kNoEnemy,
                  static_cast<std::uint64_t>(elapsed),
                  static_cast<std::uint64_t>(end_ns - desc->first_begin_ns));
    }
    manager_->on_commit(tc, *desc);
  } else {
    for (const auto& a : tc.allocs_) a.deleter(a.ptr);
    tc.allocs_.clear();
    tc.commit_retires_.clear();
    tc.metrics_.aborts++;
    tc.metrics_.wasted_ns += elapsed;
    if (trace::Recorder* rec = config_.recorder) {
      // Best-effort killer attribution from a manager-registered aborter
      // (Steal-On-Abort); the offline analyzer joins the winner's conflict
      // events for the general case.
      std::uint32_t killer = trace::kNoEnemy;
      std::uint64_t killer_serial = 0;
      if (const TxDesc* by = desc->aborted_by.load(std::memory_order_acquire)) {
        killer = by->thread_slot;
        killer_serial = by->serial;
      }
      rec->record(tc.slot_, trace::EventKind::kAbort, desc->serial,
                  tc.injected_abort_ ? 1 : 0, killer,
                  static_cast<std::uint64_t>(elapsed), killer_serial);
    }
    manager_->on_abort(tc, *desc);
  }
  if (tc.waited_this_attempt_) tc.metrics_.waits++;

  // Release a leftover aborter registration the manager did not claim
  // (e.g. the registering enemy lost the kill race and we committed).
  if (TxDesc* by = desc->aborted_by.exchange(nullptr, std::memory_order_acq_rel)) {
    by->release();
  }

  tc.injected_abort_ = false;
  tc.current_ = nullptr;
  desc->release();  // the executing thread's reference
  tc.ebr_.unpin();
}

void Runtime::maybe_emulate_preemption(ThreadCtx& tc) {
  const std::uint32_t permille = config_.preempt_yield_permille;
  if (permille != 0 && tc.rng_.below(1000) < permille) std::this_thread::yield();
}

void Runtime::note_conflict(ThreadCtx& tc, const TxDesc& enemy) {
  if (tc.last_enemy_slot_ == enemy.thread_slot && tc.last_enemy_serial_ == enemy.serial) {
    tc.metrics_.repeat_conflicts++;
  } else {
    tc.last_enemy_slot_ = enemy.thread_slot;
    tc.last_enemy_serial_ = enemy.serial;
  }
}

void Runtime::trace_conflict(ThreadCtx& tc, const TxDesc& enemy, ConflictKind kind,
                             Resolution res) {
  trace::Recorder* rec = config_.recorder;
  if (rec == nullptr) return;
  const std::uint64_t serial = tc.current_->serial;
  rec->record(tc.slot_, trace::EventKind::kConflict, serial, trace::pack_conflict(kind, res),
              enemy.thread_slot, enemy.serial);
  if (res == Resolution::kRetry) {
    rec->record(tc.slot_, trace::EventKind::kWait, serial, 0, enemy.thread_slot, enemy.serial);
  }
}

void Runtime::ensure_alive(ThreadCtx& tc) {
  if (!tc.current_->is_active()) throw TxAbort{};
}

void Runtime::abort_self(ThreadCtx& tc) {
  tc.current_->try_abort();
  throw TxAbort{};
}

void Runtime::injected_abort(ThreadCtx& tc) {
  tc.injected_abort_ = true;
  tc.metrics_.injected_aborts++;
  abort_self(tc);
}

const void* Runtime::open_read(ThreadCtx& tc, TObjectBase& obj) {
  maybe_emulate_preemption(tc);
  if (!config_.visible_reads) return open_read_invisible(tc, obj);
  TxDesc* me = tc.current_;
  const std::uint64_t my_bit = 1ULL << tc.slot_;

  // Announce visibility first (flag protocol: bit-set must precede the
  // locator load so an acquiring writer either sees our bit in its snapshot
  // or we see its locator — both orders get the conflict resolved).
  if ((obj.readers_.load(std::memory_order_relaxed) & my_bit) == 0) {
    obj.readers_.fetch_or(my_bit, std::memory_order_seq_cst);
    tc.read_set_.push_back(&obj);
  }

  for (;;) {
    if (sched_point(check::Point::kRead, &obj) == check::Action::kInjectAbort) {
      injected_abort(tc);
    }
    ensure_alive(tc);
    Locator* l = obj.loc_.load(std::memory_order_seq_cst);
    TxDesc* owner = l->owner;
    if (owner == nullptr || owner == me) {
      manager_->on_open(tc, *me);
      return l->new_version;
    }
    const TxStatus st = owner->status.load(std::memory_order_acquire);
    if (st == TxStatus::kCommitted) {
      manager_->on_open(tc, *me);
      return l->new_version;
    }
    if (st == TxStatus::kAborted) {
      manager_->on_open(tc, *me);
      return l->old_version;
    }
    // Active enemy writer.
    tc.metrics_.rw_conflicts++;
    note_conflict(tc, *owner);
    const Resolution res = manager_->resolve(tc, *me, *owner, ConflictKind::kReadWrite);
    trace_conflict(tc, *owner, ConflictKind::kReadWrite, res);
    if (res == Resolution::kAbortEnemy) {
      owner->try_abort();  // loop re-reads; even if it committed we proceed
    } else if (res == Resolution::kAbortSelf) {
      abort_self(tc);
    } else {
      tc.waited_this_attempt_ = true;  // kRetry after an internal wait
    }
  }
}

const void* Runtime::open_read_invisible(ThreadCtx& tc, TObjectBase& obj) {
  TxDesc* me = tc.current_;
  for (;;) {
    if (sched_point(check::Point::kRead, &obj) == check::Action::kInjectAbort) {
      injected_abort(tc);
    }
    ensure_alive(tc);
    Locator* l = obj.loc_.load(std::memory_order_seq_cst);
    TxDesc* owner = l->owner;
    const void* version = nullptr;
    if (owner == nullptr || owner == me) {
      version = l->new_version;
    } else {
      const TxStatus st = owner->status.load(std::memory_order_acquire);
      if (st == TxStatus::kCommitted) {
        version = l->new_version;
      } else if (st == TxStatus::kAborted) {
        version = l->old_version;
      } else {
        // Eager conflict with an active writer, same arbitration as the
        // visible path.
        tc.metrics_.rw_conflicts++;
        note_conflict(tc, *owner);
        const Resolution res = manager_->resolve(tc, *me, *owner, ConflictKind::kReadWrite);
        trace_conflict(tc, *owner, ConflictKind::kReadWrite, res);
        if (res == Resolution::kAbortEnemy) {
          owner->try_abort();
        } else if (res == Resolution::kAbortSelf) {
          abort_self(tc);
        } else {
          tc.waited_this_attempt_ = true;
        }
        continue;
      }
    }
    // Incremental validation (DSTM): everything read so far must still be
    // current, and this object's locator must not have changed while we
    // validated — then the whole read set is a snapshot as of this instant.
    validate_reads(tc);
    // Schedule point inside the validate→recheck window: this is the exact
    // preemption the recheck below exists to survive, so the checker must be
    // able to interleave a writer here.
    if (sched_point(check::Point::kRead, &obj) == check::Action::kInjectAbort) {
      injected_abort(tc);
    }
    // SEEDED BUG (skip_cas_recheck): dropping the locator recheck lets a
    // writer slip between the validation above and our use of `version`,
    // so the read set is no longer a snapshot of one instant.
    if (!config_.bugs.skip_cas_recheck &&
        obj.loc_.load(std::memory_order_seq_cst) != l) {
      continue;
    }
    // Own acquisitions are protected by ownership, not validation.
    if (owner != me) tc.invis_reads_.push_back({&obj, version});
    manager_->on_open(tc, *me);
    return version;
  }
}

const void* Runtime::committed_version(TxDesc* me, TObjectBase& obj) const {
  Locator* l = obj.loc_.load(std::memory_order_acquire);
  TxDesc* owner = l->owner;
  if (owner == nullptr) return l->new_version;
  // If we acquired the object after reading it, the version we observed
  // became our locator's old_version (clone-on-write keeps it in place).
  if (owner == me) return l->old_version;
  return owner->status.load(std::memory_order_acquire) == TxStatus::kCommitted
             ? l->new_version
             : l->old_version;
}

void Runtime::validate_reads(ThreadCtx& tc) {
  TxDesc* me = tc.current_;
  for (const auto& r : tc.invis_reads_) {
    if (committed_version(me, *r.obj) != r.version) abort_self(tc);
  }
}

void* Runtime::open_write(ThreadCtx& tc, TObjectBase& obj) {
  maybe_emulate_preemption(tc);
  TxDesc* me = tc.current_;

  for (;;) {
    if (sched_point(check::Point::kWrite, &obj) == check::Action::kInjectAbort) {
      injected_abort(tc);
    }
    ensure_alive(tc);
    Locator* l = obj.loc_.load(std::memory_order_seq_cst);
    TxDesc* owner = l->owner;
    if (owner == me) {
      manager_->on_open(tc, *me);
      return l->new_version;  // already acquired in this attempt
    }

    void* current = nullptr;
    void* dead = nullptr;
    if (owner == nullptr) {
      current = l->new_version;
    } else {
      const TxStatus st = owner->status.load(std::memory_order_acquire);
      if (st == TxStatus::kCommitted) {
        current = l->new_version;
        dead = l->old_version;
      } else if (st == TxStatus::kAborted) {
        current = l->old_version;
        dead = l->new_version;
      } else {
        tc.metrics_.ww_conflicts++;
        note_conflict(tc, *owner);
        const Resolution res = manager_->resolve(tc, *me, *owner, ConflictKind::kWriteWrite);
        trace_conflict(tc, *owner, ConflictKind::kWriteWrite, res);
        if (res == Resolution::kAbortEnemy) {
          owner->try_abort();
        } else if (res == Resolution::kAbortSelf) {
          abort_self(tc);
        } else {
          tc.waited_this_attempt_ = true;
        }
        continue;
      }
    }

    void* clone = obj.make_clone(tc.pool_, current);
    auto* fresh = new (util::Pool::allocate(tc.pool_, sizeof(Locator)))
        Locator{me, current, clone, nullptr, obj.destroy_};
    me->add_ref();
    const check::Action cas_act = sched_point(check::Point::kCas, &obj);
    if (cas_act == check::Action::kInjectAbort) {
      obj.destroy_(fresh->new_version);
      util::Pool::deallocate(fresh);
      me->release();
      injected_abort(tc);
    }
    if (cas_act != check::Action::kFailCas &&
        obj.loc_.compare_exchange_strong(l, fresh, std::memory_order_seq_cst)) {
      // `l` is now unreachable for new opens; readers pinned in EBR may
      // still hold it, so retire rather than free. The losing version dies
      // with it.
      l->dead_version = dead;
      tc.ebr_.retire(l, &Locator::reclaim);
      if (config_.visible_reads) {
        // SEEDED BUG (skip_reader_abort): acquiring without resolving the
        // visible readers leaves them on snapshots this write supersedes.
        if (!config_.bugs.skip_reader_abort) resolve_readers(tc, obj);
      } else {
        validate_reads(tc);  // DSTM validates on every open
      }
      manager_->on_open(tc, *me);
      return fresh->new_version;
    }
    // Lost the install race; roll back the speculative locator.
    obj.destroy_(fresh->new_version);
    util::Pool::deallocate(fresh);
    me->release();
  }
}

void Runtime::resolve_readers(ThreadCtx& tc, TObjectBase& obj) {
  TxDesc* me = tc.current_;
  std::uint64_t bits =
      obj.readers_.load(std::memory_order_seq_cst) & ~(1ULL << tc.slot_);
  while (bits != 0) {
    const unsigned slot = static_cast<unsigned>(__builtin_ctzll(bits));
    bits &= bits - 1;
    for (;;) {
      if (sched_point(check::Point::kReaderResolve, &obj) == check::Action::kInjectAbort) {
        injected_abort(tc);
      }
      ensure_alive(tc);
      TxDesc* enemy = tx_of_slot(slot);
      if (enemy == nullptr || enemy == me || !enemy->is_active()) break;
      tc.metrics_.wr_conflicts++;
      note_conflict(tc, *enemy);
      const Resolution res = manager_->resolve(tc, *me, *enemy, ConflictKind::kWriteRead);
      trace_conflict(tc, *enemy, ConflictKind::kWriteRead, res);
      if (res == Resolution::kAbortEnemy) {
        enemy->try_abort();
        break;
      }
      if (res == Resolution::kAbortSelf) abort_self(tc);
      tc.waited_this_attempt_ = true;  // kRetry: re-examine this reader
    }
  }
}

ThreadMetrics Runtime::total_metrics() const {
  std::lock_guard<std::mutex> lock(attach_mutex_);
  ThreadMetrics total;
  for (const auto& t : threads_) {
    if (t) total += t->metrics_;
  }
  return total;
}

void Runtime::reset_metrics() {
  std::lock_guard<std::mutex> lock(attach_mutex_);
  for (const auto& t : threads_) {
    if (t) t->metrics_.reset();
  }
}

}  // namespace wstm::stm
