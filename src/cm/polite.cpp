#include <chrono>

#include "cm/classic.hpp"
#include "stm/runtime.hpp"
#include "util/backoff.hpp"

namespace wstm::cm {

// Polite (Herlihy et al., DSTM): back off exponentially a bounded number of
// times in the hope the enemy finishes, then abort it.
stm::Resolution Polite::resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                                stm::ConflictKind kind) {
  (void)self, (void)kind;
  constexpr std::uint32_t kMaxRounds = 8;
  for (std::uint32_t k = 0; k < kMaxRounds; ++k) {
    if (!tx.is_active()) return stm::Resolution::kAbortSelf;
    if (!enemy.is_active()) return stm::Resolution::kRetry;
    yield_until(std::chrono::nanoseconds(500ULL << k),
                [&] { return !enemy.is_active() || !tx.is_active(); });
  }
  if (!tx.is_active()) return stm::Resolution::kAbortSelf;
  if (!enemy.is_active()) return stm::Resolution::kRetry;
  return stm::Resolution::kAbortEnemy;
}

}  // namespace wstm::cm
