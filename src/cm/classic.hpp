// The classic contention managers the paper compares against (Section
// III-A) plus the other managers from the DSTM/DSTM2 literature that the
// paper cites — useful as additional baselines and in the ablation benches.
//
//   Polka       — Karma priorities + exponential backoff while waiting; the
//                 "published best" CM (Scherer & Scott, PODC'05).
//   Greedy      — static timestamps, abort the younger unless the older is
//                 waiting (Guerraoui, Herlihy, Pochon, PODC'05).
//   Priority    — static timestamps, younger always aborts itself.
//   Karma       — accrued-work priorities, fixed backoff while out-ranked.
//   Polite      — exponential backoff N times, then abort the enemy.
//   Aggressive  — always abort the enemy.
//   Timestamp   — like Greedy but with a bounded patience instead of the
//                 waiting flag.
//   RandomizedRounds — random priorities redrawn after every abort
//                 (Schneider & Wattenhofer, DISC'09); the subroutine the
//                 window Online algorithm builds on.
//
// All waiting is yielding (never a hard spin) so enemies can run even when
// software threads outnumber hardware threads.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "cm/manager.hpp"
#include "util/cacheline.hpp"

namespace wstm::cm {

class Polka final : public ContentionManager {
 public:
  std::string name() const override { return "Polka"; }
  stm::Resolution resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                          stm::ConflictKind kind) override;
  void on_begin(stm::ThreadCtx& self, stm::TxDesc& tx, bool is_retry) override;
  void on_open(stm::ThreadCtx& self, stm::TxDesc& tx) override;
  void on_commit(stm::ThreadCtx& self, stm::TxDesc& tx) override;

 private:
  // Karma persists across the retries of one logical transaction.
  std::array<CacheAligned<std::uint32_t>, 64> saved_karma_{};
};

class Greedy final : public ContentionManager {
 public:
  std::string name() const override { return "Greedy"; }
  stm::Resolution resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                          stm::ConflictKind kind) override;
};

class Priority final : public ContentionManager {
 public:
  std::string name() const override { return "Priority"; }
  stm::Resolution resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                          stm::ConflictKind kind) override;
};

class Karma final : public ContentionManager {
 public:
  std::string name() const override { return "Karma"; }
  stm::Resolution resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                          stm::ConflictKind kind) override;
  void on_begin(stm::ThreadCtx& self, stm::TxDesc& tx, bool is_retry) override;
  void on_open(stm::ThreadCtx& self, stm::TxDesc& tx) override;

 private:
  std::array<CacheAligned<std::uint32_t>, 64> saved_karma_{};
};

class Polite final : public ContentionManager {
 public:
  std::string name() const override { return "Polite"; }
  stm::Resolution resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                          stm::ConflictKind kind) override;
};

class Aggressive final : public ContentionManager {
 public:
  std::string name() const override { return "Aggressive"; }
  stm::Resolution resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                          stm::ConflictKind kind) override;
};

class Timestamp final : public ContentionManager {
 public:
  std::string name() const override { return "Timestamp"; }
  stm::Resolution resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                          stm::ConflictKind kind) override;
};

/// Kindergarten (Scherer & Scott): "take turns". Each thread keeps a list
/// of enemies in whose favor it previously backed off; meeting one of them
/// again means it is our turn, so the enemy is aborted. A fresh enemy gets
/// one deferral (we back off briefly and remember it), and repeated
/// patience is bounded.
class Kindergarten final : public ContentionManager {
 public:
  std::string name() const override { return "Kindergarten"; }
  stm::Resolution resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                          stm::ConflictKind kind) override;
  void on_begin(stm::ThreadCtx& self, stm::TxDesc& tx, bool is_retry) override;

 private:
  struct HitList {
    std::array<std::uint32_t, 64> deferred_to{};  // per enemy slot: count
  };
  std::array<CacheAligned<HitList>, 64> lists_{};
};

/// Eruption (Scherer & Scott): blocked transactions transfer their accrued
/// priority ("pressure") to the transaction blocking them, so a blocker at
/// the head of a long chain erupts through quickly. Pressure rides on the
/// karma field; waiting adds the waiter's karma to the enemy.
class Eruption final : public ContentionManager {
 public:
  std::string name() const override { return "Eruption"; }
  stm::Resolution resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                          stm::ConflictKind kind) override;
  void on_begin(stm::ThreadCtx& self, stm::TxDesc& tx, bool is_retry) override;
  void on_open(stm::ThreadCtx& self, stm::TxDesc& tx) override;

 private:
  std::array<CacheAligned<std::uint32_t>, 64> saved_karma_{};
};

class RandomizedRounds final : public ContentionManager {
 public:
  /// `threads` is M, the range of the random priority draw.
  explicit RandomizedRounds(std::uint32_t threads) : threads_(threads) {}

  std::string name() const override { return "RandomizedRounds"; }
  stm::Resolution resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                          stm::ConflictKind kind) override;
  void on_begin(stm::ThreadCtx& self, stm::TxDesc& tx, bool is_retry) override;
  void on_abort(stm::ThreadCtx& self, stm::TxDesc& tx) override;

 private:
  std::uint32_t threads_;
};

}  // namespace wstm::cm
