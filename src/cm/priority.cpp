#include "cm/classic.hpp"
#include "stm/runtime.hpp"

namespace wstm::cm {

// Priority (Scherer & Scott): the priority is the (first) start time; the
// lower-priority (younger) transaction is aborted outright. Unlike Greedy
// there is no waiting state — the younger side kills itself and retries,
// keeping its original timestamp, so it ages into the winner.
stm::Resolution Priority::resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                                  stm::ConflictKind kind) {
  (void)self, (void)kind;
  const bool i_am_older =
      tx.first_begin_ns < enemy.first_begin_ns ||
      (tx.first_begin_ns == enemy.first_begin_ns && tx.thread_slot < enemy.thread_slot);
  return i_am_older ? stm::Resolution::kAbortEnemy : stm::Resolution::kAbortSelf;
}

}  // namespace wstm::cm
