#include "cm/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "cm/classic.hpp"
#include "cm/schedulers.hpp"
#include "window/window_cm.hpp"

namespace wstm::cm {

namespace {

const std::vector<std::string> kWindowNames = {
    "Online",           "Online-Dynamic",    "Adaptive",
    "Adaptive-Dynamic", "Adaptive-Improved", "Adaptive-Improved-Dynamic",
};

const std::vector<std::string> kClassicNames = {
    "Polka", "Greedy", "Priority", "Karma", "Polite", "Aggressive", "Timestamp",
    "Kindergarten", "Eruption", "RandomizedRounds", "ATS", "Steal-On-Abort",
};

}  // namespace

ManagerPtr make_manager(const std::string& name, const Params& params) {
  if (is_window_manager(name)) {
    window::WindowOptions opt;
    opt.threads = params.threads;
    opt.window_n = params.window_n;
    opt.frame_factor = params.frame_factor;
    opt.frame_log_exponent = params.frame_log_exponent;
    opt.initial_c = params.initial_c;
    opt.ci_alpha = params.ci_alpha;
    opt.requester_waits = params.requester_waits;
    return window::make_window_manager(name, opt);
  }
  if (name == "Polka") return std::make_unique<Polka>();
  if (name == "Greedy") return std::make_unique<Greedy>();
  if (name == "Priority") return std::make_unique<Priority>();
  if (name == "Karma") return std::make_unique<Karma>();
  if (name == "Polite") return std::make_unique<Polite>();
  if (name == "Aggressive") return std::make_unique<Aggressive>();
  if (name == "Timestamp") return std::make_unique<Timestamp>();
  if (name == "Kindergarten") return std::make_unique<Kindergarten>();
  if (name == "Eruption") return std::make_unique<Eruption>();
  if (name == "ATS") return std::make_unique<Ats>(params.ats_ci_threshold, params.ci_alpha);
  if (name == "Steal-On-Abort") return std::make_unique<StealOnAbort>();
  if (name == "RandomizedRounds") return std::make_unique<RandomizedRounds>(params.threads);
  throw std::invalid_argument("unknown contention manager: " + name);
}

std::vector<std::string> manager_names() {
  std::vector<std::string> all = kWindowNames;
  all.insert(all.end(), kClassicNames.begin(), kClassicNames.end());
  return all;
}

std::vector<std::string> window_manager_names() { return kWindowNames; }

std::vector<std::string> classic_manager_names() { return kClassicNames; }

bool is_window_manager(const std::string& name) {
  return std::find(kWindowNames.begin(), kWindowNames.end(), name) != kWindowNames.end();
}

}  // namespace wstm::cm
