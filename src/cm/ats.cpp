#include <chrono>

#include "cm/schedulers.hpp"
#include "stm/runtime.hpp"
#include "util/backoff.hpp"

namespace wstm::cm {

void Ats::on_begin(stm::ThreadCtx& self, stm::TxDesc& tx, bool is_retry) {
  (void)tx, (void)is_retry;
  PerThread& st = *state_[self.slot()];
  if (!st.initialized) {
    st.ci.set_alpha(alpha_);
    st.initialized = true;
  }
  // High contention intensity: enter the serialization lane for the rest of
  // this logical transaction (held across retries, released at commit).
  if (!st.holds_lane && st.ci.value() > threshold_) {
    lane_.lock();
    st.holds_lane = true;
    serialized_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Ats::on_commit(stm::ThreadCtx& self, stm::TxDesc& tx) {
  (void)tx;
  PerThread& st = *state_[self.slot()];
  st.ci.on_attempt_end(st.conflicted);
  st.conflicted = false;
  if (st.holds_lane) {
    st.holds_lane = false;
    lane_.unlock();
  }
}

void Ats::on_abort(stm::ThreadCtx& self, stm::TxDesc& tx) {
  (void)tx;
  PerThread& st = *state_[self.slot()];
  st.ci.on_attempt_end(true);
  st.conflicted = false;
}

stm::Resolution Ats::resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                             stm::ConflictKind kind) {
  (void)kind;
  state_[self.slot()]->conflicted = true;
  // Timestamp-style arbitration underneath the scheduler.
  const bool i_am_older =
      tx.first_begin_ns < enemy.first_begin_ns ||
      (tx.first_begin_ns == enemy.first_begin_ns && tx.thread_slot < enemy.thread_slot);
  if (i_am_older) return stm::Resolution::kAbortEnemy;
  constexpr std::uint32_t kPatience = 8;
  for (std::uint32_t k = 0; k < kPatience; ++k) {
    if (!tx.is_active()) return stm::Resolution::kAbortSelf;
    if (!enemy.is_active()) return stm::Resolution::kRetry;
    yield_until(std::chrono::microseconds(4),
                [&] { return !enemy.is_active() || !tx.is_active(); });
  }
  if (!tx.is_active()) return stm::Resolution::kAbortSelf;
  if (!enemy.is_active()) return stm::Resolution::kRetry;
  return stm::Resolution::kAbortEnemy;
}

}  // namespace wstm::cm
