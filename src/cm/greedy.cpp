#include <thread>

#include "cm/classic.hpp"
#include "stm/runtime.hpp"

namespace wstm::cm {

// Greedy (Guerraoui, Herlihy, Pochon): the timestamp is the first-attempt
// begin time, so it only grows stale — an old transaction eventually
// out-ranks everything and commits (pending-commit property). Rule: abort
// the enemy when we are older, or when the enemy is itself blocked waiting;
// otherwise wait.
stm::Resolution Greedy::resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                                stm::ConflictKind kind) {
  (void)self, (void)kind;
  const bool i_am_older =
      tx.first_begin_ns < enemy.first_begin_ns ||
      (tx.first_begin_ns == enemy.first_begin_ns && tx.thread_slot < enemy.thread_slot);
  if (i_am_older) return stm::Resolution::kAbortEnemy;
  if (enemy.waiting.load(std::memory_order_acquire)) return stm::Resolution::kAbortEnemy;

  // Enemy is older and running: wait (visibly, so others may kill us).
  // Requester-waits parks on the enemy's descriptor; otherwise yield_safe
  // keeps the wait schedule-pure under the deterministic checker (a raw
  // yield there perturbs the serialized executor's interleaving). Bare
  // managers without a Runtime keep the historical yield.
  tx.waiting.store(true, std::memory_order_release);
  if (waiter_ != nullptr) {
    if (!waiter_->park_until_inactive(self, tx, enemy, 50'000)) waiter_->yield_safe();
  } else {
    std::this_thread::yield();
  }
  tx.waiting.store(false, std::memory_order_release);
  if (!tx.is_active()) return stm::Resolution::kAbortSelf;
  return stm::Resolution::kRetry;
}

}  // namespace wstm::cm
