#include "cm/classic.hpp"
#include "stm/runtime.hpp"

namespace wstm::cm {

// Aggressive (Herlihy et al., DSTM): the attacker always wins. Livelock-
// prone under symmetric contention, which is exactly why it is a useful
// lower-bound baseline.
stm::Resolution Aggressive::resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                                    stm::ConflictKind kind) {
  (void)self, (void)tx, (void)enemy, (void)kind;
  return stm::Resolution::kAbortEnemy;
}

}  // namespace wstm::cm
