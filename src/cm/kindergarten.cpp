#include <chrono>

#include "cm/classic.hpp"
#include "stm/runtime.hpp"
#include "util/backoff.hpp"

namespace wstm::cm {

void Kindergarten::on_begin(stm::ThreadCtx& self, stm::TxDesc& tx, bool is_retry) {
  (void)tx;
  // A fresh logical transaction starts a fresh round of turn-taking.
  if (!is_retry) lists_[self.slot()]->deferred_to.fill(0);
}

stm::Resolution Kindergarten::resolve(stm::ThreadCtx& self, stm::TxDesc& tx,
                                      stm::TxDesc& enemy, stm::ConflictKind kind) {
  (void)kind;
  HitList& list = *lists_[self.slot()];
  std::uint32_t& deferrals = list.deferred_to[enemy.thread_slot];

  // We already yielded to this thread before: now it is our turn.
  if (deferrals >= 1) return stm::Resolution::kAbortEnemy;

  // First encounter: remember the enemy, give it one brief slice, retry.
  deferrals++;
  yield_until(std::chrono::microseconds(4),
              [&] { return !enemy.is_active() || !tx.is_active(); });
  if (!tx.is_active()) return stm::Resolution::kAbortSelf;
  return stm::Resolution::kRetry;
}

}  // namespace wstm::cm
