// Contention-manager interface (DSTM2-style, eager conflict management).
//
// The runtime calls the manager the moment a conflict is discovered at open
// time ("eager"). resolve() may wait internally — yielding, never hard
// spinning — but must eventually return, and must return kAbortSelf
// promptly once the calling transaction has itself been killed (it can
// check `tx.is_active()`).
//
// Managers are shared by all threads of one Runtime; per-transaction state
// lives in TxDesc's scratch fields, per-thread state in slot-indexed arrays
// inside the concrete manager.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "stm/fwd.hpp"
#include "stm/tx.hpp"

namespace wstm::trace {
class Recorder;
}

namespace wstm::cm {

/// Snapshot of a window manager's frame assignment, exposed so the serving
/// layer (src/serve/) can reuse the frame schedule as a queue-placement
/// policy. Non-window managers have no schedule and return false from
/// frame_schedule().
struct FrameSchedule {
  std::uint64_t current_frame = 0;  ///< frame index "now" (global beacon)
  std::uint32_t window_n = 1;       ///< N, transactions (frames) per window
  std::uint64_t alpha = 1;          ///< delay range α = C/ln(MN), clamped [1, N]
};

/// Wait-capable arbitration verb the Runtime offers its managers
/// (requester-waits mode, DESIGN.md §13). Managers that would otherwise
/// spin/yield out a conflict call park_until_inactive and fall back to
/// their historical wait loop when it returns false. Implemented by the
/// Runtime (which owns the ParkingLot, the deadline bounds, the watchdog
/// beacons and the checker's kPark/kUnpark points); attached through the
/// same null-toggle idiom as trace::Recorder.
class WaitHooks {
 public:
  virtual ~WaitHooks() = default;

  /// Parks the calling thread until `enemy` leaves Active, an unpark edge
  /// fires, or `max_wait_ns` elapses — whichever is first; never unbounded.
  /// Returns false without waiting when parking is unavailable: abort-mode
  /// runtime, irrevocable (serial-token) self, non-positive budget, or a
  /// park that would close a waiter cycle. The caller re-examines the
  /// conflict afterwards either way (spurious-wakeup semantics).
  virtual bool park_until_inactive(stm::ThreadCtx& self, const stm::TxDesc& tx,
                                   const stm::TxDesc& enemy,
                                   std::int64_t max_wait_ns) noexcept = 0;

  /// Schedule-pure yield: a real std::this_thread::yield() in normal
  /// operation, a no-op under the deterministic checker (whose serialized
  /// executor owns all interleaving; a raw yield there is schedule-impure).
  virtual void yield_safe() noexcept = 0;
};

class ContentionManager {
 public:
  virtual ~ContentionManager() = default;

  virtual std::string name() const = 0;

  /// Decide one conflict between the calling transaction `tx` and an
  /// `enemy` that was active when the conflict was discovered.
  virtual stm::Resolution resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                                  stm::ConflictKind kind) = 0;

  /// Liveness-aware arbitration (src/resilience/): the escalation ladder's
  /// priority boost overrides any manager policy — a strictly higher boost
  /// wins the conflict outright, so every manager (all 11 classic CMs and
  /// the 5 window variants) honors escalation uniformly. Equal boosts
  /// (including the common 0 vs 0) fall through to the manager's resolve().
  /// Called by the Runtime only when the liveness layer is enabled.
  stm::Resolution resolve_with_boost(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                                     stm::ConflictKind kind) {
    const std::uint32_t mine = tx.boost.load(std::memory_order_acquire);
    const std::uint32_t theirs = enemy.boost.load(std::memory_order_acquire);
    if (mine != theirs) {
      return mine > theirs ? stm::Resolution::kAbortEnemy : stm::Resolution::kAbortSelf;
    }
    return resolve(self, tx, enemy, kind);
  }

  /// The escalation ladder boosted `tx` (level >= 2) for the attempt that
  /// just began; called after on_begin so managers can adjust per-attempt
  /// priority state. WindowCM switches the thread to high priority and pins
  /// its frame; classic managers need nothing beyond the boost field.
  virtual void on_boost(stm::ThreadCtx& self, stm::TxDesc& tx, std::uint32_t level) {
    (void)self, (void)tx, (void)level;
  }

  /// A new attempt begins (is_retry = false only for the first attempt of a
  /// logical transaction).
  virtual void on_begin(stm::ThreadCtx& self, stm::TxDesc& tx, bool is_retry) {
    (void)self, (void)tx, (void)is_retry;
  }

  /// An object was opened successfully (Karma-style priority accrual).
  virtual void on_open(stm::ThreadCtx& self, stm::TxDesc& tx) { (void)self, (void)tx; }

  virtual void on_commit(stm::ThreadCtx& self, stm::TxDesc& tx) { (void)self, (void)tx; }

  /// The attempt aborted; the manager may back off here before the runtime
  /// retries (greedy managers return immediately).
  virtual void on_abort(stm::ThreadCtx& self, stm::TxDesc& tx) { (void)self, (void)tx; }

  /// Window-model hook: thread `self` is about to execute a window of
  /// `n_transactions` transactions. Non-window managers ignore it.
  virtual void on_window_start(stm::ThreadCtx& self, std::uint32_t n_transactions) {
    (void)self, (void)n_transactions;
  }

  /// Fills `out` with the manager's current frame schedule and returns true,
  /// or returns false if the manager has none (all classic CMs). Callable
  /// from any thread, including ones not attached to the runtime — the
  /// serve-layer window-frame policy polls it on the submit path.
  virtual bool frame_schedule(FrameSchedule* out) const {
    (void)out;
    return false;
  }

  /// Wires the optional event recorder (called by the Runtime; null when
  /// tracing is off). Managers record backoff/priority events through it.
  void attach_recorder(trace::Recorder* recorder) noexcept { recorder_ = recorder; }

  /// Wires the Runtime's wait verb (always attached by the Runtime ctor;
  /// null only for managers constructed bare in unit tests, where waits
  /// fall back to the historical spin/yield loops).
  void attach_wait_hooks(WaitHooks* waiter) noexcept { waiter_ = waiter; }

 protected:
  /// Records a kBackoff event for a wait the manager performed on behalf of
  /// `tx` (no-op without a recorder). Defined in manager.cpp.
  void record_backoff(stm::ThreadCtx& self, const stm::TxDesc& tx, std::uint64_t waited_ns,
                      std::uint64_t rounds) noexcept;

  /// Null when tracing is disabled. Concrete managers gate every recording
  /// on this pointer so the untraced hot path stays branch-predictable.
  trace::Recorder* recorder_ = nullptr;

  /// Runtime wait verb, null only without a Runtime (bare unit tests).
  WaitHooks* waiter_ = nullptr;
};

using ManagerPtr = std::unique_ptr<ContentionManager>;

}  // namespace wstm::cm
