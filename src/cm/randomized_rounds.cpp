#include "cm/classic.hpp"
#include "stm/runtime.hpp"

namespace wstm::cm {

// RandomizedRounds (Schneider & Wattenhofer): every attempt draws a uniform
// priority in [1, M]; on conflict the lower draw wins and the loser aborts
// (and redraws at its retry). Ties break on the thread slot.
void RandomizedRounds::on_begin(stm::ThreadCtx& self, stm::TxDesc& tx, bool is_retry) {
  (void)is_retry;
  tx.rand_prio.store(1 + self.rng().below(threads_), std::memory_order_release);
}

void RandomizedRounds::on_abort(stm::ThreadCtx& self, stm::TxDesc& tx) {
  (void)self, (void)tx;  // redraw happens in on_begin of the retry
}

stm::Resolution RandomizedRounds::resolve(stm::ThreadCtx& self, stm::TxDesc& tx,
                                          stm::TxDesc& enemy, stm::ConflictKind kind) {
  (void)self, (void)kind;
  const std::uint64_t mine = tx.rand_prio.load(std::memory_order_acquire);
  const std::uint64_t theirs = enemy.rand_prio.load(std::memory_order_acquire);
  if (mine < theirs) return stm::Resolution::kAbortEnemy;
  if (mine > theirs) return stm::Resolution::kAbortSelf;
  return tx.thread_slot < enemy.thread_slot ? stm::Resolution::kAbortEnemy
                                            : stm::Resolution::kAbortSelf;
}

}  // namespace wstm::cm
