#include <chrono>

#include "cm/classic.hpp"
#include "stm/runtime.hpp"
#include "util/backoff.hpp"

namespace wstm::cm {

void Eruption::on_begin(stm::ThreadCtx& self, stm::TxDesc& tx, bool is_retry) {
  if (!is_retry) *saved_karma_[self.slot()] = 0;
  tx.karma.store(*saved_karma_[self.slot()], std::memory_order_release);
}

void Eruption::on_open(stm::ThreadCtx& self, stm::TxDesc& tx) {
  const std::uint32_t k = ++*saved_karma_[self.slot()];
  tx.karma.store(k, std::memory_order_release);
}

stm::Resolution Eruption::resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                                  stm::ConflictKind kind) {
  (void)self, (void)kind;
  const std::uint32_t mine = tx.karma.load(std::memory_order_acquire);
  const std::uint32_t theirs = enemy.karma.load(std::memory_order_acquire);
  if (mine > theirs) return stm::Resolution::kAbortEnemy;

  // Blocked: push our pressure onto the blocker so chains erupt, then give
  // it a short slice. The transferred karma stays with the enemy attempt —
  // if it aborts anyway, the pressure dissipates with it (as in the
  // original, which tolerates imprecise pressure accounting).
  enemy.karma.fetch_add(mine + 1, std::memory_order_acq_rel);
  yield_until(std::chrono::microseconds(4),
              [&] { return !enemy.is_active() || !tx.is_active(); });
  if (!tx.is_active()) return stm::Resolution::kAbortSelf;
  return stm::Resolution::kRetry;
}

}  // namespace wstm::cm
