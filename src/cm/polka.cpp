#include <chrono>
#include <thread>

#include "cm/classic.hpp"
#include "stm/runtime.hpp"
#include "util/backoff.hpp"

namespace wstm::cm {

void Polka::on_begin(stm::ThreadCtx& self, stm::TxDesc& tx, bool is_retry) {
  // Karma (the accrued-work priority) survives aborts of the same logical
  // transaction and resets when a fresh transaction starts.
  if (!is_retry) *saved_karma_[self.slot()] = 0;
  tx.karma.store(*saved_karma_[self.slot()], std::memory_order_release);
}

void Polka::on_open(stm::ThreadCtx& self, stm::TxDesc& tx) {
  const std::uint32_t k = ++*saved_karma_[self.slot()];
  tx.karma.store(k, std::memory_order_release);
}

void Polka::on_commit(stm::ThreadCtx& self, stm::TxDesc& tx) {
  (void)tx;
  *saved_karma_[self.slot()] = 0;
}

stm::Resolution Polka::resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                               stm::ConflictKind kind) {
  (void)self, (void)kind;
  const std::uint32_t mine = tx.karma.load(std::memory_order_acquire);
  const std::uint32_t theirs = enemy.karma.load(std::memory_order_acquire);
  if (theirs <= mine) return stm::Resolution::kAbortEnemy;

  // Give the higher-priority enemy exponentially growing slices of time to
  // finish, one slice per point of priority difference, then abort it.
  const std::uint32_t attempts = theirs - mine;
  const std::int64_t wait_begin = recorder_ != nullptr ? now_ns() : 0;
  const auto trace_wait = [&](std::uint32_t slices) {
    if (recorder_ != nullptr && slices > 0) {
      // The checker's virtual clock can rewind now_ns() past wait_begin;
      // clamp before the unsigned conversion or the event records ~2^64 ns.
      const std::int64_t waited = now_ns() - wait_begin;
      record_backoff(self, tx, waited > 0 ? static_cast<std::uint64_t>(waited) : 0, slices);
    }
  };
  for (std::uint32_t k = 0; k < attempts; ++k) {
    if (!tx.is_active()) {
      trace_wait(k);
      return stm::Resolution::kAbortSelf;
    }
    if (!enemy.is_active()) {
      trace_wait(k);
      return stm::Resolution::kRetry;
    }
    const std::uint32_t exp = k < 12 ? k : 12;  // cap one slice at ~4 ms
    const std::int64_t slice_ns = static_cast<std::int64_t>(1000ULL << exp);
    // Requester-waits: park the slice instead of burning it on yields (the
    // enemy's commit/abort fires the unpark edge). Falls back to the
    // historical yield loop in abort mode or without a Runtime.
    if (waiter_ == nullptr || !waiter_->park_until_inactive(self, tx, enemy, slice_ns)) {
      yield_until(std::chrono::nanoseconds(slice_ns),
                  [&] { return !enemy.is_active() || !tx.is_active(); });
    }
  }
  trace_wait(attempts);
  if (!tx.is_active()) return stm::Resolution::kAbortSelf;
  if (!enemy.is_active()) return stm::Resolution::kRetry;
  return stm::Resolution::kAbortEnemy;
}

}  // namespace wstm::cm
