#include <chrono>
#include <thread>

#include "cm/classic.hpp"
#include "stm/runtime.hpp"
#include "util/backoff.hpp"

namespace wstm::cm {

void Polka::on_begin(stm::ThreadCtx& self, stm::TxDesc& tx, bool is_retry) {
  // Karma (the accrued-work priority) survives aborts of the same logical
  // transaction and resets when a fresh transaction starts.
  if (!is_retry) *saved_karma_[self.slot()] = 0;
  tx.karma.store(*saved_karma_[self.slot()], std::memory_order_release);
}

void Polka::on_open(stm::ThreadCtx& self, stm::TxDesc& tx) {
  const std::uint32_t k = ++*saved_karma_[self.slot()];
  tx.karma.store(k, std::memory_order_release);
}

void Polka::on_commit(stm::ThreadCtx& self, stm::TxDesc& tx) {
  (void)tx;
  *saved_karma_[self.slot()] = 0;
}

stm::Resolution Polka::resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                               stm::ConflictKind kind) {
  (void)self, (void)kind;
  const std::uint32_t mine = tx.karma.load(std::memory_order_acquire);
  const std::uint32_t theirs = enemy.karma.load(std::memory_order_acquire);
  if (theirs <= mine) return stm::Resolution::kAbortEnemy;

  // Give the higher-priority enemy exponentially growing slices of time to
  // finish, one slice per point of priority difference, then abort it.
  const std::uint32_t attempts = theirs - mine;
  const std::int64_t wait_begin = recorder_ != nullptr ? now_ns() : 0;
  const auto trace_wait = [&](std::uint32_t slices) {
    if (recorder_ != nullptr && slices > 0) {
      record_backoff(self, tx, static_cast<std::uint64_t>(now_ns() - wait_begin), slices);
    }
  };
  for (std::uint32_t k = 0; k < attempts; ++k) {
    if (!tx.is_active()) {
      trace_wait(k);
      return stm::Resolution::kAbortSelf;
    }
    if (!enemy.is_active()) {
      trace_wait(k);
      return stm::Resolution::kRetry;
    }
    const std::uint32_t exp = k < 12 ? k : 12;  // cap one slice at ~4 ms
    const auto slice = std::chrono::nanoseconds(1000ULL << exp);
    yield_until(slice, [&] { return !enemy.is_active() || !tx.is_active(); });
  }
  trace_wait(attempts);
  if (!tx.is_active()) return stm::Resolution::kAbortSelf;
  if (!enemy.is_active()) return stm::Resolution::kRetry;
  return stm::Resolution::kAbortEnemy;
}

}  // namespace wstm::cm
