#include <chrono>

#include "cm/classic.hpp"
#include "stm/runtime.hpp"
#include "util/backoff.hpp"

namespace wstm::cm {

void Karma::on_begin(stm::ThreadCtx& self, stm::TxDesc& tx, bool is_retry) {
  if (!is_retry) *saved_karma_[self.slot()] = 0;
  tx.karma.store(*saved_karma_[self.slot()], std::memory_order_release);
}

void Karma::on_open(stm::ThreadCtx& self, stm::TxDesc& tx) {
  const std::uint32_t k = ++*saved_karma_[self.slot()];
  tx.karma.store(k, std::memory_order_release);
}

// Karma (Scherer & Scott): wait in short fixed slices, counting attempts;
// abort the enemy once attempts + own karma outweigh the enemy's karma.
stm::Resolution Karma::resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                               stm::ConflictKind kind) {
  (void)self, (void)kind;
  const std::uint32_t mine = tx.karma.load(std::memory_order_acquire);
  std::uint32_t attempts = 0;
  for (;;) {
    if (!tx.is_active()) return stm::Resolution::kAbortSelf;
    if (!enemy.is_active()) return stm::Resolution::kRetry;
    const std::uint32_t theirs = enemy.karma.load(std::memory_order_acquire);
    if (mine + attempts >= theirs) return stm::Resolution::kAbortEnemy;
    yield_until(std::chrono::microseconds(2),
                [&] { return !enemy.is_active() || !tx.is_active(); });
    ++attempts;
  }
}

}  // namespace wstm::cm
