// Scheduler-style contention managers from the paper's related-work section
// (Section I-D): unlike pure conflict arbiters, these also decide *when* a
// transaction may (re)start.
//
//   ATS (Adaptive Transaction Scheduling, Yoo & Lee SPAA'08, ref [25]):
//     every thread tracks its contention intensity CI; when CI exceeds a
//     threshold, the thread funnels its transactions through one global
//     serialization lane, trading parallelism for guaranteed progress under
//     pathological contention. Conflicts themselves resolve Timestamp-style.
//
//   Steal-On-Abort (Ansari et al., HiPEAC'09, ref [24]): a transaction
//     aborted by an enemy is "stolen" by it — the victim does not retry
//     until the aborter has finished, eliminating immediate repeat
//     conflicts between the pair.
#pragma once

#include <array>
#include <atomic>
#include <mutex>

#include "cm/manager.hpp"
#include "util/cacheline.hpp"
#include "window/ci_estimator.hpp"

namespace wstm::cm {

class Ats final : public ContentionManager {
 public:
  /// `ci_threshold`: serialize while the thread's CI exceeds this;
  /// `alpha`: CI smoothing (as in the window Adaptive-Improved variants).
  explicit Ats(double ci_threshold = 0.5, double alpha = 0.75)
      : threshold_(ci_threshold), alpha_(alpha) {}

  std::string name() const override { return "ATS"; }
  stm::Resolution resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                          stm::ConflictKind kind) override;
  void on_begin(stm::ThreadCtx& self, stm::TxDesc& tx, bool is_retry) override;
  void on_commit(stm::ThreadCtx& self, stm::TxDesc& tx) override;
  void on_abort(stm::ThreadCtx& self, stm::TxDesc& tx) override;

  double ci_of(unsigned slot) const { return state_[slot]->ci.value(); }
  std::uint64_t serialized_begins() const {
    return serialized_.load(std::memory_order_relaxed);
  }

 private:
  struct PerThread {
    window::CiEstimator ci;
    bool conflicted = false;
    bool holds_lane = false;
    bool initialized = false;
  };

  double threshold_;
  double alpha_;
  std::mutex lane_;  // the serialization lane
  std::atomic<std::uint64_t> serialized_{0};
  std::array<CacheAligned<PerThread>, 64> state_{};
};

class StealOnAbort final : public ContentionManager {
 public:
  std::string name() const override { return "Steal-On-Abort"; }
  stm::Resolution resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                          stm::ConflictKind kind) override;
  void on_begin(stm::ThreadCtx& self, stm::TxDesc& tx, bool is_retry) override;
  void on_abort(stm::ThreadCtx& self, stm::TxDesc& tx) override;

 private:
  struct PerThread {
    // The enemy that last aborted us; we wait for it before retrying.
    // Guarded by the EBR pin of our own next attempt? No — the pointer is
    // only compared/polled via its status with a reference held below.
    stm::TxDesc* aborter = nullptr;
  };
  std::array<CacheAligned<PerThread>, 64> state_{};
};

}  // namespace wstm::cm
