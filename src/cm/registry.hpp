// Name-based contention-manager factory used by the harness, benches, and
// examples, so every experiment selects managers with plain strings
// ("--cms=Online-Dynamic,Polka,Greedy").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cm/manager.hpp"

namespace wstm::cm {

/// Knobs shared by all managers; the window options subset is forwarded to
/// WindowCM (see window/window_cm.hpp for semantics).
struct Params {
  std::uint32_t threads = 1;  // M
  std::uint32_t window_n = 50;
  double frame_factor = 1.0;
  double frame_log_exponent = 1.0;
  double initial_c = 0.0;  // 0 = variant default
  double ci_alpha = 0.75;
  /// ATS: serialize while contention intensity exceeds this.
  double ats_ci_threshold = 0.5;
  /// Requester-waits arbitration for the window family (DESIGN.md §13);
  /// mirrors RuntimeConfig::arbitration == kWait. Classic managers take the
  /// mode from their attached WaitHooks instead.
  bool requester_waits = false;
};

/// Creates a manager by name. Throws std::invalid_argument for unknown
/// names; see manager_names() for the accepted set.
ManagerPtr make_manager(const std::string& name, const Params& params);

/// All managers, the window family, and the classic baselines.
std::vector<std::string> manager_names();
std::vector<std::string> window_manager_names();
std::vector<std::string> classic_manager_names();

bool is_window_manager(const std::string& name);

}  // namespace wstm::cm
