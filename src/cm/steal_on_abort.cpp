#include <thread>

#include "cm/schedulers.hpp"
#include "stm/runtime.hpp"

namespace wstm::cm {

// The aborter registers itself with the victim (TxDesc::aborted_by, with a
// reference so the pointer stays valid); the victim's retry then waits for
// the aborter to finish before restarting — "stolen" behind it. Conflicts
// themselves resolve Karma-free: the attacker wins (the steal compensates
// for the aggression by damping repeat conflicts).
stm::Resolution StealOnAbort::resolve(stm::ThreadCtx& self, stm::TxDesc& tx,
                                      stm::TxDesc& enemy, stm::ConflictKind kind) {
  (void)self, (void)kind;
  // Register as the enemy's aborter before the runtime kills it.
  tx.add_ref();
  stm::TxDesc* prev = enemy.aborted_by.exchange(&tx, std::memory_order_acq_rel);
  if (prev != nullptr) prev->release();
  return stm::Resolution::kAbortEnemy;
}

void StealOnAbort::on_begin(stm::ThreadCtx& self, stm::TxDesc& tx, bool is_retry) {
  (void)tx, (void)is_retry;
  PerThread& st = *state_[self.slot()];
  if (st.aborter != nullptr) {
    // We were stolen: wait until the transaction that aborted us finished.
    while (st.aborter->is_active()) std::this_thread::yield();
    st.aborter->release();
    st.aborter = nullptr;
  }
}

void StealOnAbort::on_abort(stm::ThreadCtx& self, stm::TxDesc& tx) {
  PerThread& st = *state_[self.slot()];
  stm::TxDesc* by = tx.aborted_by.exchange(nullptr, std::memory_order_acq_rel);
  if (by != nullptr) {
    // Defer the wait to the next on_begin so cleanup finishes first.
    if (st.aborter != nullptr) st.aborter->release();
    st.aborter = by;
  }
}

}  // namespace wstm::cm
