// Anchor TU for the ContentionManager interface (keeps the vtable and the
// out-of-line trace helpers in one object file).
#include "cm/manager.hpp"

#include "stm/runtime.hpp"
#include "trace/recorder.hpp"

namespace wstm::cm {

void ContentionManager::record_backoff(stm::ThreadCtx& self, const stm::TxDesc& tx,
                                       std::uint64_t waited_ns, std::uint64_t rounds) noexcept {
  if (recorder_ == nullptr) return;
  recorder_->record(self.slot(), trace::EventKind::kBackoff, tx.serial, 0, trace::kNoEnemy,
                    waited_ns, rounds);
}

}  // namespace wstm::cm
