// Anchor TU for the ContentionManager interface (keeps the vtable and any
// future out-of-line defaults in one object file).
#include "cm/manager.hpp"
