#include <chrono>

#include "cm/classic.hpp"
#include "stm/runtime.hpp"
#include "util/backoff.hpp"

namespace wstm::cm {

// Timestamp (Scherer & Scott): defer to an older enemy for a bounded series
// of waiting slices, then presume it dead and abort it. Younger enemies are
// aborted immediately.
stm::Resolution Timestamp::resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                                   stm::ConflictKind kind) {
  (void)self, (void)kind;
  const bool i_am_older =
      tx.first_begin_ns < enemy.first_begin_ns ||
      (tx.first_begin_ns == enemy.first_begin_ns && tx.thread_slot < enemy.thread_slot);
  if (i_am_older) return stm::Resolution::kAbortEnemy;

  constexpr std::uint32_t kPatience = 16;
  for (std::uint32_t k = 0; k < kPatience; ++k) {
    if (!tx.is_active()) return stm::Resolution::kAbortSelf;
    if (!enemy.is_active()) return stm::Resolution::kRetry;
    yield_until(std::chrono::microseconds(4),
                [&] { return !enemy.is_active() || !tx.is_active(); });
  }
  if (!tx.is_active()) return stm::Resolution::kAbortSelf;
  if (!enemy.is_active()) return stm::Resolution::kRetry;
  return stm::Resolution::kAbortEnemy;
}

}  // namespace wstm::cm
