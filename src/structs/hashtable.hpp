// Transactional chained hash table (extension): fixed power-of-two bucket
// array, each bucket a TObject holding a small sorted key vector. Conflicts
// are confined to a bucket, so contention falls with the table size — the
// substrate STAMP's genome benchmark uses for segment deduplication, and a
// fourth int-set shape (point-contention, no traversal chains) alongside
// List / RBTree / SkipList.
#pragma once

#include <memory>

#include "structs/intset.hpp"

namespace wstm::structs {

class HashTable final : public TxIntSet {
 public:
  /// `buckets` is rounded up to a power of two (default 64).
  explicit HashTable(std::size_t buckets = 64);
  ~HashTable() override = default;

  bool insert(stm::Tx& tx, long key) override;
  bool remove(stm::Tx& tx, long key) override;
  bool contains(stm::Tx& tx, long key) override;
  std::vector<long> quiescent_elements() const override;
  std::string kind() const override { return "hashtable"; }

  std::size_t bucket_count() const noexcept { return buckets_.size(); }

 private:
  struct BucketData {
    std::vector<long> keys;  // sorted, unique
  };
  using Bucket = stm::TObject<BucketData>;

  Bucket& bucket_for(long key) noexcept;
  static std::uint64_t mix(long key) noexcept;

  std::vector<std::unique_ptr<Bucket>> buckets_;
};

}  // namespace wstm::structs
