#include "structs/hashtable.hpp"

#include <algorithm>

namespace wstm::structs {

HashTable::HashTable(std::size_t buckets) {
  std::size_t n = 1;
  while (n < buckets) n <<= 1;
  buckets_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    buckets_.push_back(std::make_unique<Bucket>(BucketData{}));
  }
}

std::uint64_t HashTable::mix(long key) noexcept {
  // Fibonacci hashing over a splitmix-style finalizer.
  auto x = static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
  x ^= x >> 29;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 32;
  return x;
}

HashTable::Bucket& HashTable::bucket_for(long key) noexcept {
  return *buckets_[mix(key) & (buckets_.size() - 1)];
}

bool HashTable::insert(stm::Tx& tx, long key) {
  Bucket& b = bucket_for(key);
  const BucketData* data = b.open_read(tx);
  const auto it = std::lower_bound(data->keys.begin(), data->keys.end(), key);
  if (it != data->keys.end() && *it == key) return false;
  BucketData* mut = b.open_write(tx);
  mut->keys.insert(std::lower_bound(mut->keys.begin(), mut->keys.end(), key), key);
  return true;
}

bool HashTable::remove(stm::Tx& tx, long key) {
  Bucket& b = bucket_for(key);
  const BucketData* data = b.open_read(tx);
  const auto it = std::lower_bound(data->keys.begin(), data->keys.end(), key);
  if (it == data->keys.end() || *it != key) return false;
  BucketData* mut = b.open_write(tx);
  const auto mit = std::lower_bound(mut->keys.begin(), mut->keys.end(), key);
  mut->keys.erase(mit);
  return true;
}

bool HashTable::contains(stm::Tx& tx, long key) {
  const BucketData* data = bucket_for(key).open_read(tx);
  return std::binary_search(data->keys.begin(), data->keys.end(), key);
}

std::vector<long> HashTable::quiescent_elements() const {
  std::vector<long> out;
  for (const auto& bucket : buckets_) {
    const BucketData* data = bucket->peek();
    out.insert(out.end(), data->keys.begin(), data->keys.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace wstm::structs
