// Sequential reference implementation of the int-set interface, used as the
// oracle in the concurrent/property tests: apply the same operations to a
// TxIntSet and a SequentialSet (under a lock or single-threaded) and the
// observable results and final contents must agree.
#pragma once

#include <set>
#include <vector>

namespace wstm::structs {

class SequentialSet {
 public:
  bool insert(long key) { return set_.insert(key).second; }
  bool remove(long key) { return set_.erase(key) > 0; }
  bool contains(long key) const { return set_.count(key) > 0; }
  std::vector<long> elements() const { return {set_.begin(), set_.end()}; }
  std::size_t size() const { return set_.size(); }

 private:
  std::set<long> set_;
};

}  // namespace wstm::structs
