#include "structs/rbtree.hpp"

namespace wstm::structs {

template class RBMapT<long>;

std::vector<long> RBTreeSet::quiescent_elements() const {
  std::vector<long> out;
  for (const auto& [k, v] : map_.quiescent_entries()) out.push_back(k);
  return out;
}

}  // namespace wstm::structs
