#include "structs/skiplist.hpp"

namespace wstm::structs {

SkipList::SkipList() : head_(NodeData{}) {}

SkipList::~SkipList() {
  const NodeData* hd = head_.peek();
  Node* n = hd->next[0];
  while (n != nullptr) {
    Node* next = n->peek()->next[0];
    delete n;
    n = next;
  }
}

int SkipList::random_height(Xoshiro256& rng) {
  int h = 1;
  while (h < kMaxLevel && (rng() & 1ULL) != 0) ++h;
  return h;
}

SkipList::Search SkipList::locate(stm::Tx& tx, long key) {
  Search s;
  Node* pred = &head_;
  const NodeData* pred_data = head_.open_read(tx);
  for (int level = kMaxLevel - 1; level >= 0; --level) {
    Node* curr = pred_data->next[static_cast<std::size_t>(level)];
    while (curr != nullptr) {
      const NodeData* curr_data = curr->open_read(tx);
      if (curr_data->key >= key) {
        if (curr_data->key == key) s.found = curr;
        break;
      }
      pred = curr;
      pred_data = curr_data;
      curr = curr_data->next[static_cast<std::size_t>(level)];
    }
    s.preds[static_cast<std::size_t>(level)] = pred;
    s.pred_data[static_cast<std::size_t>(level)] = pred_data;
  }
  return s;
}

bool SkipList::insert(stm::Tx& tx, long key) {
  Search s = locate(tx, key);
  if (s.found != nullptr) return false;

  const int height = random_height(tx.rng());
  NodeData fresh;
  fresh.key = key;
  fresh.height = height;
  for (int l = 0; l < height; ++l) {
    fresh.next[static_cast<std::size_t>(l)] =
        s.pred_data[static_cast<std::size_t>(l)]->next[static_cast<std::size_t>(l)];
  }
  Node* node = tx.make<Node>(fresh);
  for (int l = 0; l < height; ++l) {
    // open_write is idempotent within a transaction: towers sharing a
    // predecessor mutate the same private clone.
    s.preds[static_cast<std::size_t>(l)]->open_write(tx)->next[static_cast<std::size_t>(l)] =
        node;
  }
  return true;
}

bool SkipList::remove(stm::Tx& tx, long key) {
  Search s = locate(tx, key);
  if (s.found == nullptr) return false;
  const NodeData* victim = s.found->open_write(tx);
  for (int l = 0; l < victim->height; ++l) {
    NodeData* pred = s.preds[static_cast<std::size_t>(l)]->open_write(tx);
    // The predecessor at this level links to the victim unless the victim
    // is taller than where the search path last descended; linking is
    // re-checked against the clone to stay correct in every interleaving
    // of same-transaction writes.
    if (pred->next[static_cast<std::size_t>(l)] == s.found) {
      pred->next[static_cast<std::size_t>(l)] = victim->next[static_cast<std::size_t>(l)];
    }
  }
  tx.retire_on_commit(s.found);
  return true;
}

bool SkipList::contains(stm::Tx& tx, long key) {
  Search s = locate(tx, key);
  return s.found != nullptr;
}

std::vector<long> SkipList::quiescent_elements() const {
  std::vector<long> out;
  const Node* n = head_.peek()->next[0];
  while (n != nullptr) {
    const NodeData* d = n->peek();
    out.push_back(d->key);
    n = d->next[0];
  }
  return out;
}

}  // namespace wstm::structs
