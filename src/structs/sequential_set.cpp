// Factory for the transactional int-set benchmarks (and anchor TU for the
// sequential reference set).
#include "structs/sequential_set.hpp"

#include <stdexcept>

#include "structs/intset.hpp"
#include "structs/hashtable.hpp"
#include "structs/intset_list.hpp"
#include "structs/rbtree.hpp"
#include "structs/skiplist.hpp"

namespace wstm::structs {

std::unique_ptr<TxIntSet> make_intset(const std::string& kind) {
  if (kind == "list") return std::make_unique<IntSetList>();
  if (kind == "rbtree") return std::make_unique<RBTreeSet>();
  if (kind == "skiplist") return std::make_unique<SkipList>();
  if (kind == "hashtable") return std::make_unique<HashTable>();
  throw std::invalid_argument("unknown int-set kind: " + kind);
}

}  // namespace wstm::structs
