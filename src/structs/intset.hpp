// Common interface for the transactional integer-set benchmarks (List,
// RBTree, SkipList — paper Section III). Operations run inside a caller-
// provided transaction so one benchmark transaction can batch several
// operations (as Vacation does with its map).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stm/runtime.hpp"

namespace wstm::structs {

class TxIntSet {
 public:
  virtual ~TxIntSet() = default;

  /// Inserts `key`; returns false if it was already present.
  virtual bool insert(stm::Tx& tx, long key) = 0;
  /// Removes `key`; returns false if it was absent.
  virtual bool remove(stm::Tx& tx, long key) = 0;
  /// Membership test.
  virtual bool contains(stm::Tx& tx, long key) = 0;

  /// Sorted contents, read without synchronization — only valid at
  /// quiescence (tests and benchmark validation).
  virtual std::vector<long> quiescent_elements() const = 0;

  virtual std::string kind() const = 0;
};

/// Factory: kind is "list", "rbtree", "skiplist" or "hashtable" (extension).
std::unique_ptr<TxIntSet> make_intset(const std::string& kind);

}  // namespace wstm::structs
