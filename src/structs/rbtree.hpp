// Transactional red-black tree (the paper's RBTree benchmark; also the
// table substrate for Vacation, as in STAMP).
//
// The algorithm is the classic null-children/parent-pointer variant (as in
// java.util.TreeMap / CLR): no sentinel node, colorOf(null) = black. Every
// node is a TObject; reads always re-open (open_read after an own
// open_write returns the private clone, so a transaction sees its own
// writes), rotations and recolorings open the touched nodes for writing.
//
// RBMapT is generic over the value type V (copy-constructible — values are
// cloned with their node). RBMap = RBMapT<long> is explicitly instantiated
// in rbtree.cpp.
#pragma once

#include <climits>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "structs/intset.hpp"

namespace wstm::structs {

/// Transactional ordered map<long, V>.
template <typename V>
class RBMapT {
 public:
  RBMapT() : root_(RootData{}) {}
  ~RBMapT() { free_subtree(root_.peek()->root); }
  RBMapT(const RBMapT&) = delete;
  RBMapT& operator=(const RBMapT&) = delete;

  /// Inserts key->value; returns false (and changes nothing) if present.
  bool insert(stm::Tx& tx, long key, V value);
  /// Replaces the value of an existing key; returns false if absent.
  bool update(stm::Tx& tx, long key, V value);
  /// Removes key; returns false if absent.
  bool erase(stm::Tx& tx, long key);
  std::optional<V> get(stm::Tx& tx, long key);
  bool contains(stm::Tx& tx, long key) { return find(tx, key) != nullptr; }

  /// Opens the node of `key` for writing and returns its value slot for
  /// in-place mutation; null if absent.
  V* get_for_update(stm::Tx& tx, long key);

  /// In-order entries, unsynchronized — quiescence only.
  std::vector<std::pair<long, V>> quiescent_entries() const;

  /// Checks BST order, red-red freedom, black-height balance and parent
  /// links at quiescence. On failure stores a diagnostic in `why`.
  bool quiescent_invariants_ok(std::string* why = nullptr) const;

 private:
  struct NodeData;
  using Node = stm::TObject<NodeData>;

  struct NodeData {
    long key = 0;
    V value{};
    bool red = false;
    Node* left = nullptr;
    Node* right = nullptr;
    Node* parent = nullptr;
  };

  struct RootData {
    Node* root = nullptr;
  };

  // Fresh-open helpers (never cache across writes).
  static const NodeData* rd(stm::Tx& tx, Node* n) { return n->open_read(tx); }
  static NodeData* wr(stm::Tx& tx, Node* n) { return n->open_write(tx); }

  Node* root_node(stm::Tx& tx) { return root_.open_read(tx)->root; }
  void set_root(stm::Tx& tx, Node* n) { root_.open_write(tx)->root = n; }

  Node* parent_of(stm::Tx& tx, Node* n) { return n != nullptr ? rd(tx, n)->parent : nullptr; }
  Node* left_of(stm::Tx& tx, Node* n) { return n != nullptr ? rd(tx, n)->left : nullptr; }
  Node* right_of(stm::Tx& tx, Node* n) { return n != nullptr ? rd(tx, n)->right : nullptr; }
  bool is_red(stm::Tx& tx, Node* n) { return n != nullptr && rd(tx, n)->red; }
  void set_color(stm::Tx& tx, Node* n, bool red) {
    if (n != nullptr && rd(tx, n)->red != red) wr(tx, n)->red = red;
  }

  Node* find(stm::Tx& tx, long key);
  Node* successor(stm::Tx& tx, Node* n);
  void rotate_left(stm::Tx& tx, Node* p);
  void rotate_right(stm::Tx& tx, Node* p);
  void fix_after_insertion(stm::Tx& tx, Node* x);
  void fix_after_deletion(stm::Tx& tx, Node* x);
  void delete_entry(stm::Tx& tx, Node* p);

  static void free_subtree(Node* n) {
    if (n == nullptr) return;
    const NodeData* d = n->peek();
    free_subtree(d->left);
    free_subtree(d->right);
    delete n;
  }

  stm::TObject<RootData> root_;
};

using RBMap = RBMapT<long>;

/// TxIntSet adapter over RBMap (value = key).
class RBTreeSet final : public TxIntSet {
 public:
  bool insert(stm::Tx& tx, long key) override { return map_.insert(tx, key, key); }
  bool remove(stm::Tx& tx, long key) override { return map_.erase(tx, key); }
  bool contains(stm::Tx& tx, long key) override { return map_.contains(tx, key); }
  std::vector<long> quiescent_elements() const override;
  std::string kind() const override { return "rbtree"; }

  RBMap& map() noexcept { return map_; }
  const RBMap& map() const noexcept { return map_; }

 private:
  RBMap map_;
};

// ---------------------------------------------------------------------------
// implementation
// ---------------------------------------------------------------------------

template <typename V>
typename RBMapT<V>::Node* RBMapT<V>::find(stm::Tx& tx, long key) {
  Node* p = root_node(tx);
  while (p != nullptr) {
    const NodeData* d = rd(tx, p);
    if (key < d->key) {
      p = d->left;
    } else if (key > d->key) {
      p = d->right;
    } else {
      return p;
    }
  }
  return nullptr;
}

template <typename V>
std::optional<V> RBMapT<V>::get(stm::Tx& tx, long key) {
  Node* p = find(tx, key);
  if (p == nullptr) return std::nullopt;
  return rd(tx, p)->value;
}

template <typename V>
bool RBMapT<V>::update(stm::Tx& tx, long key, V value) {
  Node* p = find(tx, key);
  if (p == nullptr) return false;
  wr(tx, p)->value = std::move(value);
  return true;
}

template <typename V>
V* RBMapT<V>::get_for_update(stm::Tx& tx, long key) {
  Node* p = find(tx, key);
  if (p == nullptr) return nullptr;
  return &wr(tx, p)->value;
}

template <typename V>
bool RBMapT<V>::insert(stm::Tx& tx, long key, V value) {
  Node* t = root_node(tx);
  if (t == nullptr) {
    Node* n = tx.make<Node>(
        NodeData{key, std::move(value), /*red=*/false, nullptr, nullptr, nullptr});
    set_root(tx, n);
    return true;
  }
  Node* parent;
  for (;;) {
    const NodeData* d = rd(tx, t);
    parent = t;
    if (key < d->key) {
      t = d->left;
    } else if (key > d->key) {
      t = d->right;
    } else {
      return false;  // present
    }
    if (t == nullptr) break;
  }
  Node* n =
      tx.make<Node>(NodeData{key, std::move(value), /*red=*/true, nullptr, nullptr, parent});
  NodeData* pd = wr(tx, parent);
  if (key < pd->key) {
    pd->left = n;
  } else {
    pd->right = n;
  }
  fix_after_insertion(tx, n);
  return true;
}

template <typename V>
typename RBMapT<V>::Node* RBMapT<V>::successor(stm::Tx& tx, Node* n) {
  Node* r = right_of(tx, n);
  if (r != nullptr) {
    Node* p = r;
    for (Node* l = left_of(tx, p); l != nullptr; l = left_of(tx, p)) p = l;
    return p;
  }
  Node* p = parent_of(tx, n);
  Node* ch = n;
  while (p != nullptr && ch == right_of(tx, p)) {
    ch = p;
    p = parent_of(tx, p);
  }
  return p;
}

template <typename V>
void RBMapT<V>::rotate_left(stm::Tx& tx, Node* p) {
  Node* r = right_of(tx, p);
  Node* rl = left_of(tx, r);
  wr(tx, p)->right = rl;
  if (rl != nullptr) wr(tx, rl)->parent = p;
  Node* gp = parent_of(tx, p);
  wr(tx, r)->parent = gp;
  if (gp == nullptr) {
    set_root(tx, r);
  } else if (left_of(tx, gp) == p) {
    wr(tx, gp)->left = r;
  } else {
    wr(tx, gp)->right = r;
  }
  wr(tx, r)->left = p;
  wr(tx, p)->parent = r;
}

template <typename V>
void RBMapT<V>::rotate_right(stm::Tx& tx, Node* p) {
  Node* l = left_of(tx, p);
  Node* lr = right_of(tx, l);
  wr(tx, p)->left = lr;
  if (lr != nullptr) wr(tx, lr)->parent = p;
  Node* gp = parent_of(tx, p);
  wr(tx, l)->parent = gp;
  if (gp == nullptr) {
    set_root(tx, l);
  } else if (right_of(tx, gp) == p) {
    wr(tx, gp)->right = l;
  } else {
    wr(tx, gp)->left = l;
  }
  wr(tx, l)->right = p;
  wr(tx, p)->parent = l;
}

template <typename V>
void RBMapT<V>::fix_after_insertion(stm::Tx& tx, Node* x) {
  set_color(tx, x, true);
  while (x != nullptr && x != root_node(tx) && is_red(tx, parent_of(tx, x))) {
    Node* xp = parent_of(tx, x);
    Node* xpp = parent_of(tx, xp);
    if (xp == left_of(tx, xpp)) {
      Node* y = right_of(tx, xpp);
      if (is_red(tx, y)) {
        set_color(tx, xp, false);
        set_color(tx, y, false);
        set_color(tx, xpp, true);
        x = xpp;
      } else {
        if (x == right_of(tx, xp)) {
          x = xp;
          rotate_left(tx, x);
        }
        Node* xp2 = parent_of(tx, x);
        set_color(tx, xp2, false);
        Node* xpp2 = parent_of(tx, xp2);
        set_color(tx, xpp2, true);
        if (xpp2 != nullptr) rotate_right(tx, xpp2);
      }
    } else {
      Node* y = left_of(tx, xpp);
      if (is_red(tx, y)) {
        set_color(tx, xp, false);
        set_color(tx, y, false);
        set_color(tx, xpp, true);
        x = xpp;
      } else {
        if (x == left_of(tx, xp)) {
          x = xp;
          rotate_right(tx, x);
        }
        Node* xp2 = parent_of(tx, x);
        set_color(tx, xp2, false);
        Node* xpp2 = parent_of(tx, xp2);
        set_color(tx, xpp2, true);
        if (xpp2 != nullptr) rotate_left(tx, xpp2);
      }
    }
  }
  set_color(tx, root_node(tx), false);
}

template <typename V>
bool RBMapT<V>::erase(stm::Tx& tx, long key) {
  Node* p = find(tx, key);
  if (p == nullptr) return false;
  delete_entry(tx, p);
  return true;
}

template <typename V>
void RBMapT<V>::delete_entry(stm::Tx& tx, Node* p) {
  // Internal node: copy the successor's entry, then unlink the successor.
  if (left_of(tx, p) != nullptr && right_of(tx, p) != nullptr) {
    Node* s = successor(tx, p);
    const NodeData* sd = rd(tx, s);
    const long skey = sd->key;
    V sval = sd->value;
    NodeData* pd = wr(tx, p);
    pd->key = skey;
    pd->value = std::move(sval);
    p = s;
  }

  Node* replacement = left_of(tx, p) != nullptr ? left_of(tx, p) : right_of(tx, p);
  if (replacement != nullptr) {
    Node* pp = parent_of(tx, p);
    wr(tx, replacement)->parent = pp;
    if (pp == nullptr) {
      set_root(tx, replacement);
    } else if (p == left_of(tx, pp)) {
      wr(tx, pp)->left = replacement;
    } else {
      wr(tx, pp)->right = replacement;
    }
    const bool p_black = !is_red(tx, p);
    {
      NodeData* pd = wr(tx, p);
      pd->left = pd->right = pd->parent = nullptr;
    }
    if (p_black) fix_after_deletion(tx, replacement);
  } else if (parent_of(tx, p) == nullptr) {
    set_root(tx, nullptr);  // only node
  } else {
    // No children: p itself is the phantom replacement during fixup.
    if (!is_red(tx, p)) fix_after_deletion(tx, p);
    Node* pp = parent_of(tx, p);
    if (pp != nullptr) {
      NodeData* ppd = wr(tx, pp);
      if (ppd->left == p) {
        ppd->left = nullptr;
      } else if (ppd->right == p) {
        ppd->right = nullptr;
      }
      wr(tx, p)->parent = nullptr;
    }
  }
  tx.retire_on_commit(p);
}

template <typename V>
void RBMapT<V>::fix_after_deletion(stm::Tx& tx, Node* x) {
  while (x != root_node(tx) && !is_red(tx, x)) {
    Node* xp = parent_of(tx, x);
    if (x == left_of(tx, xp)) {
      Node* sib = right_of(tx, xp);
      if (is_red(tx, sib)) {
        set_color(tx, sib, false);
        set_color(tx, xp, true);
        rotate_left(tx, xp);
        xp = parent_of(tx, x);
        sib = right_of(tx, xp);
      }
      if (!is_red(tx, left_of(tx, sib)) && !is_red(tx, right_of(tx, sib))) {
        set_color(tx, sib, true);
        x = xp;
      } else {
        if (!is_red(tx, right_of(tx, sib))) {
          set_color(tx, left_of(tx, sib), false);
          set_color(tx, sib, true);
          rotate_right(tx, sib);
          xp = parent_of(tx, x);
          sib = right_of(tx, xp);
        }
        set_color(tx, sib, is_red(tx, xp));
        set_color(tx, xp, false);
        set_color(tx, right_of(tx, sib), false);
        rotate_left(tx, xp);
        x = root_node(tx);
      }
    } else {
      Node* sib = left_of(tx, xp);
      if (is_red(tx, sib)) {
        set_color(tx, sib, false);
        set_color(tx, xp, true);
        rotate_right(tx, xp);
        xp = parent_of(tx, x);
        sib = left_of(tx, xp);
      }
      if (!is_red(tx, right_of(tx, sib)) && !is_red(tx, left_of(tx, sib))) {
        set_color(tx, sib, true);
        x = xp;
      } else {
        if (!is_red(tx, left_of(tx, sib))) {
          set_color(tx, right_of(tx, sib), false);
          set_color(tx, sib, true);
          rotate_left(tx, sib);
          xp = parent_of(tx, x);
          sib = left_of(tx, xp);
        }
        set_color(tx, sib, is_red(tx, xp));
        set_color(tx, xp, false);
        set_color(tx, left_of(tx, sib), false);
        rotate_right(tx, xp);
        x = root_node(tx);
      }
    }
  }
  set_color(tx, x, false);
}

template <typename V>
std::vector<std::pair<long, V>> RBMapT<V>::quiescent_entries() const {
  std::vector<std::pair<long, V>> out;
  std::function<void(const Node*)> walk = [&](const Node* n) {
    if (n == nullptr) return;
    const NodeData* d = n->peek();
    walk(d->left);
    out.emplace_back(d->key, d->value);
    walk(d->right);
  };
  walk(root_.peek()->root);
  return out;
}

template <typename V>
bool RBMapT<V>::quiescent_invariants_ok(std::string* why) const {
  const Node* root = root_.peek()->root;
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (root == nullptr) return true;
  if (root->peek()->red) return fail("root is red");
  if (root->peek()->parent != nullptr) return fail("root has a parent");

  bool ok = true;
  std::string reason;
  // Returns the black height of the subtree, -1 on violation.
  std::function<int(const Node*, long, long)> check = [&](const Node* n, long lo,
                                                          long hi) -> int {
    if (n == nullptr) return 1;
    const NodeData* d = n->peek();
    if ((lo != LONG_MIN && d->key <= lo) || (hi != LONG_MAX && d->key >= hi)) {
      ok = false;
      reason = "BST order violated at key " + std::to_string(d->key);
      return -1;
    }
    if (d->red) {
      const bool left_red = d->left != nullptr && d->left->peek()->red;
      const bool right_red = d->right != nullptr && d->right->peek()->red;
      if (left_red || right_red) {
        ok = false;
        reason = "red-red violation at key " + std::to_string(d->key);
        return -1;
      }
    }
    if (d->left != nullptr && d->left->peek()->parent != n) {
      ok = false;
      reason = "bad parent link (left) at key " + std::to_string(d->key);
      return -1;
    }
    if (d->right != nullptr && d->right->peek()->parent != n) {
      ok = false;
      reason = "bad parent link (right) at key " + std::to_string(d->key);
      return -1;
    }
    const int bl = check(d->left, lo, d->key);
    const int br = check(d->right, d->key, hi);
    if (bl < 0 || br < 0) return -1;
    if (bl != br) {
      ok = false;
      reason = "black-height mismatch at key " + std::to_string(d->key);
      return -1;
    }
    return bl + (d->red ? 0 : 1);
  };
  check(root, LONG_MIN, LONG_MAX);
  if (!ok) return fail(reason);
  return true;
}

extern template class RBMapT<long>;

}  // namespace wstm::structs
