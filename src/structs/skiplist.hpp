// Transactional skip list (the paper's SkipList benchmark): a sorted list
// with a tower of forward pointers per node; expected O(log n) search makes
// conflicts rarer than in List, which is exactly why the paper uses it as
// its low-conflict benchmark.
#pragma once

#include <array>
#include <climits>

#include "structs/intset.hpp"

namespace wstm::structs {

class SkipList final : public TxIntSet {
 public:
  static constexpr int kMaxLevel = 16;

  SkipList();
  ~SkipList() override;

  bool insert(stm::Tx& tx, long key) override;
  bool remove(stm::Tx& tx, long key) override;
  bool contains(stm::Tx& tx, long key) override;
  std::vector<long> quiescent_elements() const override;
  std::string kind() const override { return "skiplist"; }

 private:
  struct NodeData;
  using Node = stm::TObject<NodeData>;

  struct NodeData {
    long key = LONG_MIN;
    int height = kMaxLevel;
    std::array<Node*, kMaxLevel> next{};  // next[l] valid for l < height
  };

  struct Search {
    std::array<Node*, kMaxLevel> preds{};
    std::array<const NodeData*, kMaxLevel> pred_data{};
    Node* found = nullptr;  // node with exactly `key`, if any
  };
  Search locate(stm::Tx& tx, long key);

  /// Geometric tower height in [1, kMaxLevel] (p = 1/2).
  static int random_height(Xoshiro256& rng);

  Node head_;  // sentinel, full height
};

}  // namespace wstm::structs
