#include "structs/intset_list.hpp"

namespace wstm::structs {

IntSetList::IntSetList() : head_(NodeData{LONG_MIN, nullptr}) {}

IntSetList::~IntSetList() {
  // Quiescent teardown: walk the committed chain and free every node.
  const auto* hd = head_.peek();
  Node* n = hd->next;
  while (n != nullptr) {
    Node* next = n->peek()->next;
    delete n;
    n = next;
  }
}

IntSetList::Cursor IntSetList::locate(stm::Tx& tx, long key) {
  Node* prev = &head_;
  const NodeData* prev_data = head_.open_read(tx);
  Node* curr = prev_data->next;
  const NodeData* curr_data = nullptr;
  while (curr != nullptr) {
    curr_data = curr->open_read(tx);
    if (curr_data->key >= key) break;
    prev = curr;
    prev_data = curr_data;
    curr = curr_data->next;
    curr_data = nullptr;
  }
  return Cursor{prev, prev_data, curr, curr_data};
}

bool IntSetList::insert(stm::Tx& tx, long key) {
  Cursor c = locate(tx, key);
  if (c.curr != nullptr && c.curr_data->key == key) return false;
  Node* node = tx.make<Node>(NodeData{key, c.curr});
  c.prev->open_write(tx)->next = node;
  return true;
}

bool IntSetList::remove(stm::Tx& tx, long key) {
  Cursor c = locate(tx, key);
  if (c.curr == nullptr || c.curr_data->key != key) return false;
  // Open the victim for writing too: concurrent operations that hold it in
  // their read/write sets conflict here instead of vanishing silently.
  const NodeData* victim = c.curr->open_write(tx);
  c.prev->open_write(tx)->next = victim->next;
  tx.retire_on_commit(c.curr);
  return true;
}

bool IntSetList::contains(stm::Tx& tx, long key) {
  Cursor c = locate(tx, key);
  return c.curr != nullptr && c.curr_data->key == key;
}

std::vector<long> IntSetList::quiescent_elements() const {
  std::vector<long> out;
  const Node* n = head_.peek()->next;
  while (n != nullptr) {
    const NodeData* d = n->peek();
    out.push_back(d->key);
    n = d->next;
  }
  return out;
}

}  // namespace wstm::structs
