// Transactionally sorted singly-linked list (the paper's List benchmark,
// after the IntSet benchmark of the original DSTM paper). Every node is a
// TObject; traversal opens each node for reading (visible reads), insert/
// remove open the affected nodes for writing.
#pragma once

#include <climits>

#include "structs/intset.hpp"

namespace wstm::structs {

class IntSetList final : public TxIntSet {
 public:
  IntSetList();
  ~IntSetList() override;

  bool insert(stm::Tx& tx, long key) override;
  bool remove(stm::Tx& tx, long key) override;
  bool contains(stm::Tx& tx, long key) override;
  std::vector<long> quiescent_elements() const override;
  std::string kind() const override { return "list"; }

 private:
  struct NodeData;
  using Node = stm::TObject<NodeData>;

  struct NodeData {
    long key = LONG_MIN;
    Node* next = nullptr;
  };

  /// Positions the cursor at the first node with key >= `key`.
  struct Cursor {
    Node* prev;
    const NodeData* prev_data;
    Node* curr;               // null = end of list
    const NodeData* curr_data;  // null iff curr is null
  };
  Cursor locate(stm::Tx& tx, long key);

  Node head_;  // sentinel, key = LONG_MIN
};

}  // namespace wstm::structs
