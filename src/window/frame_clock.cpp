#include "window/frame_clock.hpp"

#include <algorithm>
#include <cmath>

namespace wstm::window {

void FrameClock::start(std::int64_t now_ns, std::int64_t frame_len_ns) noexcept {
  start_ns_ = now_ns;
  frame_len_ns_ = frame_len_ns > 0 ? frame_len_ns : 1;
}

std::uint64_t FrameClock::frame_at(std::int64_t now_ns) const noexcept {
  if (now_ns <= start_ns_) return 0;
  return static_cast<std::uint64_t>((now_ns - start_ns_) / frame_len_ns_);
}

std::int64_t FrameClock::frame_begin_ns(std::uint64_t frame) const noexcept {
  return start_ns_ + static_cast<std::int64_t>(frame) * frame_len_ns_;
}

std::int64_t frame_length_ns(std::uint32_t m, std::uint32_t n, double factor, double exponent,
                             std::int64_t tau_ns) {
  const double mn = std::max(2.0, static_cast<double>(m) * static_cast<double>(n));
  const double log_term = std::pow(std::log(mn), exponent);
  const double len = factor * log_term * static_cast<double>(tau_ns);
  return std::max<std::int64_t>(1000, static_cast<std::int64_t>(len));
}

std::uint64_t delay_range_alpha(double c_est, std::uint32_t m, std::uint32_t n) {
  const double mn = std::max(2.0, static_cast<double>(m) * static_cast<double>(n));
  const double alpha = c_est / std::log(mn);
  const double clamped = std::clamp(alpha, 1.0, static_cast<double>(n));
  return static_cast<std::uint64_t>(clamped);
}

}  // namespace wstm::window
