#include "window/controller.hpp"

#include <cassert>

namespace wstm::window {

WindowController::WindowController(std::size_t capacity) : pending_(capacity) {}

void WindowController::register_tx(std::uint64_t frame, std::int64_t now_ns) {
  assert(frame >= current_frame() || pending(frame) >= 0);
  assert(frame < current_frame() + pending_.size());
  // Pure occupancy counters: no payload is published through them, so the
  // RMWs need no ordering of their own (the old acq_rel paired with
  // nothing). The release on the max_registered_ CAS below still makes this
  // increment visible to any maybe_advance() that acquires the watermark.
  slot(frame).fetch_add(1, std::memory_order_relaxed);
  total_pending_->fetch_add(1, std::memory_order_relaxed);
  // Track the furthest frame anybody waits for, so contraction knows when
  // skipping empty frames is useful.
  std::uint64_t seen = max_registered_->load(std::memory_order_relaxed);
  while (seen < frame &&
         !max_registered_->compare_exchange_weak(seen, frame, std::memory_order_acq_rel)) {
  }
  maybe_advance(now_ns);
}

void WindowController::complete_tx(std::uint64_t frame, std::int64_t now_ns) {
  // Occupancy counters only (see register_tx); the same-thread
  // maybe_advance() below reads them sequenced-after anyway.
  slot(frame).fetch_sub(1, std::memory_order_relaxed);
  total_pending_->fetch_sub(1, std::memory_order_relaxed);
  maybe_advance(now_ns);
}

std::uint64_t WindowController::maybe_advance(std::int64_t now_ns) {
  std::uint64_t advanced = 0;
  for (;;) {
    const std::uint64_t cur = current_->load(std::memory_order_acquire);
    // Relaxed: the slot count carries no payload, and the acquire on
    // max_registered_ below already orders this poll against the release
    // a registrant performed after bumping its slot.
    if (slot(cur).load(std::memory_order_relaxed) != 0) return advanced;  // frame still busy
    const bool someone_waits = max_registered_->load(std::memory_order_acquire) > cur &&
                               total_pending_->load(std::memory_order_relaxed) > 0;
    if (!someone_waits) return advanced;
    std::uint64_t expected = cur;
    if (current_->compare_exchange_strong(expected, cur + 1, std::memory_order_acq_rel)) {
      frame_start_ns_.store(now_ns, std::memory_order_release);
      advances_.fetch_add(1, std::memory_order_relaxed);
      advanced++;
    }
    // Loop: several consecutive frames may be empty (contraction skips
    // them all at once).
  }
}

std::int64_t WindowController::pending(std::uint64_t frame) const noexcept {
  return slot(frame).load(std::memory_order_relaxed);  // diagnostics only
}

}  // namespace wstm::window
