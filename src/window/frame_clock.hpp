// Static (time-based) frame clock, per thread.
//
// The theory (paper Section II) divides time into frames of Θ(ln MN) or
// Θ(ln² MN) *steps*, each step being one transaction duration τ. A real STM
// has no global step counter, so — as a DSTM2 implementation must — we
// realize a frame as a wall-clock interval Φ = φ · ln(MN)^e · τ_est, where
// τ_est is an online estimate of the transaction duration and φ, e are
// tunables (see bench/ablation_frames).
#pragma once

#include <cstdint>

namespace wstm::window {

class FrameClock {
 public:
  /// Starts counting frames of length `frame_len_ns` from `now_ns`.
  void start(std::int64_t now_ns, std::int64_t frame_len_ns) noexcept;

  /// Frame index at time `now_ns` (0 before/at start).
  std::uint64_t frame_at(std::int64_t now_ns) const noexcept;

  /// Time at which `frame` begins.
  std::int64_t frame_begin_ns(std::uint64_t frame) const noexcept;

  std::int64_t frame_len_ns() const noexcept { return frame_len_ns_; }
  std::int64_t start_ns() const noexcept { return start_ns_; }

 private:
  std::int64_t start_ns_ = 0;
  std::int64_t frame_len_ns_ = 1;
};

/// Frame length Φ = factor · ln(MN)^exponent · tau, floored at 1us so a
/// mis-estimated tau cannot collapse frames to nothing.
std::int64_t frame_length_ns(std::uint32_t m, std::uint32_t n, double factor, double exponent,
                             std::int64_t tau_ns);

/// α_i = C_i / ln(MN), clamped to [1, N] (the paper caps α at N).
std::uint64_t delay_range_alpha(double c_est, std::uint32_t m, std::uint32_t n);

}  // namespace wstm::window
