// Shared frame controller for the *dynamic* window variants.
//
// Paper, Section III-B: "as soon as the last transaction inside a
// particular frame finishes, we start the new frame" (contraction), and if
// transactions are still pending at the nominal frame end the frame simply
// keeps running (expansion). Both rules reduce to one advance condition:
//
//     advance past frame f  ⇔  no registered-but-uncommitted transaction is
//                              assigned to f, and something is waiting in a
//                              later frame.
//
// Threads register each logical transaction under its assigned frame at the
// first attempt and complete it at commit; retries keep the registration.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/cacheline.hpp"

namespace wstm::window {

class WindowController {
 public:
  explicit WindowController(std::size_t capacity = std::size_t{1} << 14);

  std::uint64_t current_frame() const noexcept {
    return current_->load(std::memory_order_acquire);
  }

  /// When the current frame started (for diagnostics / expiry metrics).
  std::int64_t frame_start_ns() const noexcept {
    return frame_start_ns_.load(std::memory_order_acquire);
  }

  /// Announce a logical transaction assigned to `frame`. Frames at most
  /// `capacity` ahead of the current frame are representable.
  void register_tx(std::uint64_t frame, std::int64_t now_ns);

  /// The transaction assigned to `frame` committed.
  void complete_tx(std::uint64_t frame, std::int64_t now_ns);

  /// Contraction: advance while the current frame is drained and somebody
  /// is waiting for a later one. Safe to call from any thread at any time.
  /// Returns the number of frames this call advanced past (0 = none), so
  /// tracing callers can attribute the advance to the thread that drove it.
  std::uint64_t maybe_advance(std::int64_t now_ns);

  /// Pending registrations for `frame` (tests/diagnostics).
  std::int64_t pending(std::uint64_t frame) const noexcept;

  /// Total frames advanced by contraction while txs waited (diagnostics).
  std::uint64_t advances() const noexcept { return advances_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t>& slot(std::uint64_t frame) noexcept {
    return *pending_[frame % pending_.size()];
  }
  const std::atomic<std::int64_t>& slot(std::uint64_t frame) const noexcept {
    return *pending_[frame % pending_.size()];
  }

  std::vector<CacheAligned<std::atomic<std::int64_t>>> pending_;
  // Each process-wide word gets its own line: total_pending_ is RMW'd by
  // every register/complete, and sharing its line with current_ would make
  // every registration invalidate the word every maybe_advance() polls.
  CacheAligned<std::atomic<std::uint64_t>> current_{};
  CacheAligned<std::atomic<std::uint64_t>> max_registered_{};
  CacheAligned<std::atomic<std::int64_t>> total_pending_{};
  // Written only on (rare) frame advances; fine to share one line.
  std::atomic<std::int64_t> frame_start_ns_{0};
  std::atomic<std::uint64_t> advances_{0};
};

}  // namespace wstm::window
