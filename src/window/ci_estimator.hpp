// Contention-intensity estimator, after Adaptive Transaction Scheduling
// (Yoo & Lee, SPAA'08), used by the Adaptive-Improved window variants.
//
// CI is an exponentially weighted fraction of attempts that encountered a
// conflict: CI ← α·CI + (1−α)·[conflicted]. The window algorithms need a
// contention *count* C_i (how many transactions one of ours may conflict
// with inside the window), so we interpolate between the extremes:
// C'_i = 1 + CI · (M−1) · N — no conflicts maps to C=1, conflicting with
// every other transaction in the window maps to C=(M−1)·N.
#pragma once

#include <cstdint>

namespace wstm::window {

class CiEstimator {
 public:
  CiEstimator() noexcept = default;
  explicit CiEstimator(double alpha) noexcept : alpha_(alpha) {}

  void set_alpha(double alpha) noexcept { alpha_ = alpha; }

  void on_attempt_end(bool conflicted) noexcept {
    ci_ = alpha_ * ci_ + (1.0 - alpha_) * (conflicted ? 1.0 : 0.0);
  }

  double value() const noexcept { return ci_; }

  /// Contention estimate for an M-thread, N-transaction window.
  double contention_estimate(std::uint32_t m, std::uint32_t n) const noexcept {
    const double peers = m > 1 ? static_cast<double>(m - 1) : 0.0;
    return 1.0 + ci_ * peers * static_cast<double>(n);
  }

  void reset() noexcept { ci_ = 0.0; }

 private:
  double alpha_ = 0.75;
  double ci_ = 0.0;
};

}  // namespace wstm::window
