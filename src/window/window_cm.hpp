// The window-based contention managers (the paper's contribution).
//
// One class implements the whole family; the five published variants are
// points in its option space (see make_window_manager below):
//
//   Online                    static frames, C_i known (configured)
//   Online-Dynamic            + frame contraction/expansion via controller
//   Adaptive                  C_i guessed, doubling on bad events
//   Adaptive-Improved         C_i from the ATS-style CI estimator
//   Adaptive-Improved-Dynamic + dynamic frames
//
// Mechanics per thread P_i (paper Section II):
//  * A window = the next N logical transactions of the thread. Windows
//    auto-roll: when one ends the next begins at the next transaction.
//  * At window start the thread draws q_i uniform in [0, α_i − 1] with
//    α_i = C_i / ln(MN) (clamped to [1, N]). Transaction j's assigned frame
//    is F_ij = q_i + j.
//  * The transaction runs immediately but in LOW priority (π1 = 1) until
//    frame F_ij begins, then switches to HIGH (π1 = 0) until it commits.
//  * π2 is a RandomizedRounds priority in [1, M], redrawn at every attempt
//    begin and at the low→high switch.
//  * Conflicts resolve by lexicographic (π1, π2, slot) — lower wins.
//  * Bad event: the transaction commits only after its assigned frame has
//    passed. Adaptive doubles C_i and restarts the window with the
//    remaining transactions; Adaptive-Improved recomputes C_i from CI.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "cm/manager.hpp"
#include "util/cacheline.hpp"
#include "window/ci_estimator.hpp"
#include "window/controller.hpp"
#include "window/frame_clock.hpp"

namespace wstm::window {

struct WindowOptions {
  std::uint32_t threads = 1;  // M: sizes the π2 draw and the CI mapping
  std::uint32_t window_n = 50;
  bool dynamic_frames = false;

  enum class Adapt { kNone, kDoubling, kContentionIntensity };
  Adapt adapt = Adapt::kNone;

  /// Initial contention estimate C_i. 0 selects the default: M for
  /// non-adaptive variants ("C_i known": each transaction expected to
  /// conflict with its column), 1 for adaptive variants (the paper's
  /// starting guess).
  double initial_c = 0.0;

  /// Frame length Φ = frame_factor · ln(MN)^frame_log_exponent · τ_est.
  double frame_factor = 1.0;
  double frame_log_exponent = 1.0;

  /// CI smoothing for Adaptive-Improved.
  double ci_alpha = 0.75;

  /// τ estimate before the first commit is measured.
  std::int64_t tau_init_ns = 20'000;

  /// Requester-waits arbitration (DESIGN.md §13): a low-priority loser
  /// against a high-priority winner parks for up to one frame length
  /// instead of burning the abort — the winner's commit (which also drives
  /// the frame controller's complete_tx/advance) is the unpark edge, and by
  /// wakeup the loser's own frame has typically begun. Equal-class losses
  /// (π2/slot ties) still abort: RandomizedRounds' symmetry-breaking
  /// depends on them.
  bool requester_waits = false;
};

class WindowCM final : public cm::ContentionManager {
 public:
  WindowCM(std::string name, WindowOptions options);

  std::string name() const override { return name_; }

  stm::Resolution resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                          stm::ConflictKind kind) override;
  void on_begin(stm::ThreadCtx& self, stm::TxDesc& tx, bool is_retry) override;
  void on_commit(stm::ThreadCtx& self, stm::TxDesc& tx) override;
  void on_abort(stm::ThreadCtx& self, stm::TxDesc& tx) override;
  void on_window_start(stm::ThreadCtx& self, std::uint32_t n_transactions) override;
  /// Escalation-ladder boost: forced high priority with the assigned frame
  /// pinned to the observed frame (the transaction behaves as if its frame
  /// had just begun), and π2 = 0 — below every regular draw in [1, M].
  void on_boost(stm::ThreadCtx& self, stm::TxDesc& tx, std::uint32_t level) override;

  /// Serving-layer frame query. Dynamic variants report the shared
  /// controller frame directly. Static variants have only per-thread
  /// FrameClocks that restart every window, so no global frame exists;
  /// instead the schedule reports a synthetic frame — wall-clock elapsed
  /// since construction over the current frame length Φ — which is monotone
  /// apart from Φ re-estimates and advances at the same rate as the
  /// per-thread clocks. α comes from a racy c_est beacon updated at commits.
  bool frame_schedule(cm::FrameSchedule* out) const override;

  // --- introspection (tests, diagnostics, EXPERIMENTS.md reporting) ---

  struct ThreadSnapshot {
    std::uint32_t window_n = 0;
    std::uint32_t next_index = 0;
    std::uint64_t delay_q = 0;
    double c_est = 0.0;
    double ci = 0.0;
    std::uint64_t windows_started = 0;
    std::uint64_t bad_events = 0;
  };
  ThreadSnapshot snapshot(unsigned slot) const;

  std::int64_t tau_estimate_ns() const noexcept {
    return tau_ns_.load(std::memory_order_relaxed);
  }
  const WindowController& controller() const noexcept { return controller_; }
  const WindowOptions& options() const noexcept { return options_; }

 private:
  struct PerThread {
    bool in_window = false;
    std::uint32_t pending_n = 0;  // size of the next window (0 = default N)
    std::uint32_t n = 0;
    std::uint32_t j = 0;  // index of the current/next transaction
    std::uint64_t q = 0;
    double c_est = 1.0;
    std::uint64_t base_frame = 0;      // dynamic: controller frame at window start
    FrameClock clock;                  // static variants
    std::uint64_t assigned_frame = 0;  // F for the in-flight transaction
    bool registered = false;
    bool high = false;
    bool conflicted_this_attempt = false;
    CiEstimator ci;
    std::uint64_t windows_started = 0;
    std::uint64_t bad_events = 0;
    std::uint64_t last_seen_frame = 0;  // tracing: last frame this thread observed
  };

  void start_window(stm::ThreadCtx& self, PerThread& st);
  /// Recomputes π1 (and redraws π2 at the low→high edge).
  void refresh_priority(stm::ThreadCtx& self, PerThread& st, stm::TxDesc& tx);
  std::uint64_t frame_now(const PerThread& st) const;
  void note_tau_sample(std::int64_t sample_ns);

  /// Tracing: records a kFrameAdvance when this thread's observed frame
  /// moved since it last looked. No-op without a recorder.
  void maybe_trace_frame(stm::ThreadCtx& self, PerThread& st, const stm::TxDesc& tx);
  /// Dynamic variants: runs the controller's contraction rule and records
  /// any advance it performed.
  void advance_dynamic(stm::ThreadCtx& self, const stm::TxDesc& tx, std::int64_t now);

  std::string name_;
  WindowOptions options_;
  WindowController controller_;
  std::atomic<std::int64_t> tau_ns_;
  /// frame_schedule() support: construction epoch for the static-variant
  /// synthetic frame, and a last-writer-wins c_est beacon updated at every
  /// commit so cross-thread readers never touch PerThread state.
  std::int64_t epoch_ns_ = 0;
  std::atomic<double> c_beacon_{0.0};
  std::array<CacheAligned<PerThread>, 64> state_{};
};

/// Factory for the five published variants (and "Adaptive-Dynamic" as an
/// extension): name must be one of Online, Online-Dynamic, Adaptive,
/// Adaptive-Dynamic, Adaptive-Improved, Adaptive-Improved-Dynamic.
/// Throws std::invalid_argument otherwise.
cm::ManagerPtr make_window_manager(const std::string& name, WindowOptions options);

}  // namespace wstm::window
