#include "window/window_cm.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "stm/runtime.hpp"
#include "trace/recorder.hpp"
#include "util/timing.hpp"

namespace wstm::window {

WindowCM::WindowCM(std::string name, WindowOptions options)
    : name_(std::move(name)),
      options_(options),
      tau_ns_(options.tau_init_ns),
      epoch_ns_(now_ns()) {
  if (options_.threads == 0 || options_.threads > 64) {
    throw std::invalid_argument("WindowCM: threads must be in [1, 64]");
  }
  if (options_.window_n == 0) throw std::invalid_argument("WindowCM: window_n must be > 0");
  if (options_.initial_c == 0.0) {
    options_.initial_c =
        options_.adapt == WindowOptions::Adapt::kNone ? options_.threads : 1.0;
  }
}

void WindowCM::start_window(stm::ThreadCtx& self, PerThread& st) {
  if (st.windows_started == 0) {
    st.c_est = options_.initial_c;
    st.ci.set_alpha(options_.ci_alpha);
  }
  st.n = st.pending_n != 0 ? st.pending_n : options_.window_n;
  st.pending_n = 0;
  st.j = 0;
  st.in_window = true;
  st.windows_started++;

  const std::int64_t now = now_ns();
  const std::int64_t tau = tau_ns_.load(std::memory_order_relaxed);
  const std::int64_t phi = frame_length_ns(options_.threads, st.n, options_.frame_factor,
                                           options_.frame_log_exponent, tau);
  const std::uint64_t alpha = delay_range_alpha(st.c_est, options_.threads, st.n);
  st.q = self.rng().below(alpha);
  if (options_.dynamic_frames) {
    st.base_frame = controller_.current_frame();
  } else {
    st.clock.start(now, phi);
    st.base_frame = 0;
  }
  // Tracing baseline: static clocks restart at the window start, so the
  // "last observed frame" restarts with them.
  st.last_seen_frame = st.base_frame;
}

std::uint64_t WindowCM::frame_now(const PerThread& st) const {
  return options_.dynamic_frames ? controller_.current_frame() : st.clock.frame_at(now_ns());
}

void WindowCM::refresh_priority(stm::ThreadCtx& self, PerThread& st, stm::TxDesc& tx) {
  if (st.high) return;
  const std::uint64_t observed = frame_now(st);
  if (observed >= st.assigned_frame) {
    st.high = true;
    // π2 is (re)drawn "on start of the frame F_ij" (paper Section II-B2).
    tx.rand_prio.store(1 + self.rng().below(options_.threads), std::memory_order_release);
    tx.prio_class.store(0, std::memory_order_release);
    if (recorder_ != nullptr) {
      recorder_->record(self.slot(), trace::EventKind::kPrioritySwitch, tx.serial, 0,
                        trace::kNoEnemy, st.assigned_frame, observed);
    }
  }
}

void WindowCM::maybe_trace_frame(stm::ThreadCtx& self, PerThread& st, const stm::TxDesc& tx) {
  if (recorder_ == nullptr) return;
  const std::uint64_t observed = frame_now(st);
  if (observed != st.last_seen_frame) {
    recorder_->record(self.slot(), trace::EventKind::kFrameAdvance, tx.serial, 0, trace::kNoEnemy,
                      observed, st.last_seen_frame);
    st.last_seen_frame = observed;
  }
}

void WindowCM::advance_dynamic(stm::ThreadCtx& self, const stm::TxDesc& tx, std::int64_t now) {
  const std::uint64_t advanced = controller_.maybe_advance(now);
  if (recorder_ != nullptr && advanced > 0) {
    const std::uint64_t cur = controller_.current_frame();
    recorder_->record(self.slot(), trace::EventKind::kFrameAdvance, tx.serial, 1, trace::kNoEnemy,
                      cur, cur - advanced);
  }
}

void WindowCM::on_begin(stm::ThreadCtx& self, stm::TxDesc& tx, bool is_retry) {
  PerThread& st = *state_[self.slot()];
  const std::int64_t now = now_ns();

  if (!is_retry) {
    const bool fresh = !st.in_window || st.j >= st.n;
    if (fresh) start_window(self, st);
    st.assigned_frame = st.base_frame + st.q + st.j;
    if (options_.dynamic_frames) {
      controller_.register_tx(st.assigned_frame, now);
      st.registered = true;
    }
    if (recorder_ != nullptr && fresh) {
      recorder_->record(self.slot(), trace::EventKind::kWindowStart, tx.serial, 0, trace::kNoEnemy,
                        st.q, st.n);
      recorder_->record(self.slot(), trace::EventKind::kCiUpdate, tx.serial, 0, trace::kNoEnemy,
                        trace::pack_double(st.c_est), trace::pack_double(st.ci.value()));
    }
  }
  st.conflicted_this_attempt = false;
  st.high = false;

  // Every attempt redraws π2 ("... and after every abort").
  tx.rand_prio.store(1 + self.rng().below(options_.threads), std::memory_order_release);
  tx.prio_class.store(1, std::memory_order_release);
  maybe_trace_frame(self, st, tx);
  refresh_priority(self, st, tx);

  if (options_.dynamic_frames) advance_dynamic(self, tx, now);
}

stm::Resolution WindowCM::resolve(stm::ThreadCtx& self, stm::TxDesc& tx, stm::TxDesc& enemy,
                                  stm::ConflictKind kind) {
  (void)kind;
  PerThread& st = *state_[self.slot()];
  st.conflicted_this_attempt = true;
  if (options_.dynamic_frames) advance_dynamic(self, tx, now_ns());
  refresh_priority(self, st, tx);

  // Lexicographic comparison of the priority vectors (π1, π2), ties broken
  // by slot. Lower compares smaller = higher priority = wins. Each value is
  // loaded exactly once so the traced kResolve event carries the very
  // vectors this decision compared (the ScheduleChecker replays them).
  const std::uint64_t my_pc = tx.prio_class.load(std::memory_order_acquire);
  const std::uint64_t en_pc = enemy.prio_class.load(std::memory_order_acquire);
  std::uint64_t my_p2 = 0;
  std::uint64_t en_p2 = 0;
  stm::Resolution res;
  if (my_pc != en_pc) {
    res = my_pc < en_pc ? stm::Resolution::kAbortEnemy : stm::Resolution::kAbortSelf;
    if (res == stm::Resolution::kAbortSelf && options_.requester_waits &&
        waiter_ != nullptr) {
      // Low priority vs high: wait for our frame instead of burning the
      // abort. Park at most one frame length Φ — the winner's commit fires
      // the unpark edge, and refresh_priority on the retry path flips us
      // high once F_ij has begun. Refused parks (cycle, abort mode,
      // irrevocable self) fall back to the historical abort.
      const std::int64_t phi = frame_length_ns(
          options_.threads, st.n != 0 ? st.n : options_.window_n, options_.frame_factor,
          options_.frame_log_exponent, tau_ns_.load(std::memory_order_relaxed));
      if (waiter_->park_until_inactive(self, tx, enemy, phi)) {
        res = stm::Resolution::kRetry;
      }
    }
    if (recorder_ != nullptr) {
      my_p2 = tx.rand_prio.load(std::memory_order_acquire);
      en_p2 = enemy.rand_prio.load(std::memory_order_acquire);
    }
  } else {
    my_p2 = tx.rand_prio.load(std::memory_order_acquire);
    en_p2 = enemy.rand_prio.load(std::memory_order_acquire);
    if (my_p2 != en_p2) {
      res = my_p2 < en_p2 ? stm::Resolution::kAbortEnemy : stm::Resolution::kAbortSelf;
    } else {
      res = tx.thread_slot < enemy.thread_slot ? stm::Resolution::kAbortEnemy
                                               : stm::Resolution::kAbortSelf;
    }
  }
  if (recorder_ != nullptr) {
    recorder_->record(self.slot(), trace::EventKind::kResolve, tx.serial,
                      static_cast<std::uint8_t>(res), enemy.thread_slot, enemy.serial,
                      trace::pack_resolve_prios(my_pc, my_p2, en_pc, en_p2));
  }
  return res;
}

void WindowCM::on_commit(stm::ThreadCtx& self, stm::TxDesc& tx) {
  PerThread& st = *state_[self.slot()];
  const std::int64_t now = now_ns();
  note_tau_sample(now - tx.begin_ns);
  st.ci.on_attempt_end(st.conflicted_this_attempt);

  const std::uint64_t commit_frame = frame_now(st);
  // frame_schedule() beacon: last-writer-wins contention estimate. Lost
  // updates only lag the serving layer's α by a commit or two.
  c_beacon_.store(st.c_est, std::memory_order_relaxed);
  if (options_.dynamic_frames && st.registered) {
    controller_.complete_tx(st.assigned_frame, now);
    st.registered = false;
  }

  const bool bad_event = commit_frame > st.assigned_frame;
  if (recorder_ != nullptr) {
    recorder_->record(self.slot(), trace::EventKind::kWindowCommit, tx.serial,
                      bad_event ? 1 : 0, trace::kNoEnemy, st.assigned_frame, commit_frame);
  }
  st.j++;
  if (bad_event) {
    st.bad_events++;
    const double old_c = st.c_est;
    switch (options_.adapt) {
      case WindowOptions::Adapt::kNone:
        break;  // Online trusts its configured C_i
      case WindowOptions::Adapt::kDoubling:
        st.c_est = std::min(st.c_est * 2.0,
                            static_cast<double>(options_.threads) * st.n);
        break;
      case WindowOptions::Adapt::kContentionIntensity:
        st.c_est = st.ci.contention_estimate(options_.threads, st.n);
        break;
    }
    if (recorder_ != nullptr && st.c_est != old_c) {
      recorder_->record(self.slot(), trace::EventKind::kCiUpdate, tx.serial, 1, trace::kNoEnemy,
                        trace::pack_double(st.c_est), trace::pack_double(st.ci.value()));
    }
    if (options_.adapt != WindowOptions::Adapt::kNone && st.j < st.n) {
      // "start over again with the remaining transactions" — the next
      // on_begin opens a fresh window of the leftover length with a delay
      // drawn from the updated C_i.
      st.pending_n = st.n - st.j;
      st.in_window = false;
    }
  }
  if (st.j >= st.n) st.in_window = false;
}

void WindowCM::on_abort(stm::ThreadCtx& self, stm::TxDesc& tx) {
  PerThread& st = *state_[self.slot()];
  st.ci.on_attempt_end(true);
  // A low-priority loser will conflict with the same high-priority winner
  // again immediately; yield once so the winner can use the core. This is
  // a single-scheduler-quantum courtesy, not a backoff policy. yield_safe
  // keeps it a no-op under the deterministic checker, whose serialized
  // executor owns all interleaving.
  if (tx.prio_class.load(std::memory_order_acquire) == 1) {
    record_backoff(self, tx, 0, 1);
    if (waiter_ != nullptr) {
      waiter_->yield_safe();
    } else {
      std::this_thread::yield();
    }
  }
}

void WindowCM::on_window_start(stm::ThreadCtx& self, std::uint32_t n_transactions) {
  PerThread& st = *state_[self.slot()];
  st.pending_n = n_transactions;
  st.in_window = false;  // next on_begin starts the window
}

void WindowCM::on_boost(stm::ThreadCtx& self, stm::TxDesc& tx, std::uint32_t level) {
  (void)level;
  PerThread& st = *state_[self.slot()];
  if (st.high) return;  // already high; the boost field still breaks ties
  // Forced low→high switch: pin the assigned frame to the frame we observe
  // now, i.e. treat the escalated transaction as if its frame had just
  // begun. (Recording observed as both frames keeps the ScheduleChecker's
  // "switched at or after the assigned frame" invariant true by
  // construction.) π2 = 0 undercuts every regular draw in [1, M].
  const std::uint64_t observed = frame_now(st);
  st.assigned_frame = observed;
  st.high = true;
  tx.rand_prio.store(0, std::memory_order_release);
  tx.prio_class.store(0, std::memory_order_release);
  if (recorder_ != nullptr) {
    recorder_->record(self.slot(), trace::EventKind::kPrioritySwitch, tx.serial, 1,
                      trace::kNoEnemy, observed, observed);
  }
}

void WindowCM::note_tau_sample(std::int64_t sample_ns) {
  // EWMA with racy read-modify-write: lost updates only slow the estimate's
  // convergence, which is acceptable for a frame-length heuristic.
  const std::int64_t cur = tau_ns_.load(std::memory_order_relaxed);
  const std::int64_t next = cur - cur / 8 + sample_ns / 8;
  tau_ns_.store(next > 0 ? next : 1, std::memory_order_relaxed);
}

bool WindowCM::frame_schedule(cm::FrameSchedule* out) const {
  if (options_.dynamic_frames) {
    out->current_frame = controller_.current_frame();
  } else {
    const std::int64_t phi =
        frame_length_ns(options_.threads, options_.window_n, options_.frame_factor,
                        options_.frame_log_exponent, tau_ns_.load(std::memory_order_relaxed));
    const std::int64_t elapsed = now_ns() - epoch_ns_;
    out->current_frame =
        phi > 0 && elapsed > 0 ? static_cast<std::uint64_t>(elapsed / phi) : 0;
  }
  out->window_n = options_.window_n;
  const double c = c_beacon_.load(std::memory_order_relaxed);
  out->alpha = delay_range_alpha(c > 0.0 ? c : options_.initial_c, options_.threads,
                                 options_.window_n);
  return true;
}

WindowCM::ThreadSnapshot WindowCM::snapshot(unsigned slot) const {
  const PerThread& st = *state_[slot];
  ThreadSnapshot s;
  s.window_n = st.n;
  s.next_index = st.j;
  s.delay_q = st.q;
  s.c_est = st.c_est;
  s.ci = st.ci.value();
  s.windows_started = st.windows_started;
  s.bad_events = st.bad_events;
  return s;
}

cm::ManagerPtr make_window_manager(const std::string& name, WindowOptions options) {
  using Adapt = WindowOptions::Adapt;
  if (name == "Online") {
    options.dynamic_frames = false;
    options.adapt = Adapt::kNone;
  } else if (name == "Online-Dynamic") {
    options.dynamic_frames = true;
    options.adapt = Adapt::kNone;
  } else if (name == "Adaptive") {
    options.dynamic_frames = false;
    options.adapt = Adapt::kDoubling;
  } else if (name == "Adaptive-Dynamic") {
    options.dynamic_frames = true;
    options.adapt = Adapt::kDoubling;
  } else if (name == "Adaptive-Improved") {
    options.dynamic_frames = false;
    options.adapt = Adapt::kContentionIntensity;
  } else if (name == "Adaptive-Improved-Dynamic") {
    options.dynamic_frames = true;
    options.adapt = Adapt::kContentionIntensity;
  } else {
    throw std::invalid_argument("unknown window manager: " + name);
  }
  return std::make_unique<WindowCM>(name, options);
}

}  // namespace wstm::window
