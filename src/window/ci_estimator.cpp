// CiEstimator is header-only; this TU exists so the module shows up as its
// own object file and to host any future out-of-line additions.
#include "window/ci_estimator.hpp"
