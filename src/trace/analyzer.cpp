#include "trace/analyzer.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>
#include <unordered_map>

namespace wstm::trace {

namespace {

/// (thread slot, serial) key for attempt lookup maps.
std::uint64_t key_of(std::uint32_t slot, std::uint64_t serial) {
  // Serials are per-thread counters; 48 bits is far beyond any run length.
  return (static_cast<std::uint64_t>(slot) << 48) | (serial & 0xffffffffffffULL);
}

}  // namespace

Analyzer::Analyzer(std::vector<Event> events) : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(), [](const Event& a, const Event& b) {
    return a.t_ns != b.t_ns ? a.t_ns < b.t_ns : a.thread < b.thread;
  });

  // Pass 1: reconstruct attempts, kill edges, and frame occupancy.
  std::unordered_map<std::uint64_t, std::size_t> open;     // (slot,serial) -> attempts_ idx
  std::unordered_map<std::uint64_t, std::size_t> by_key;   // all attempts ever seen
  struct Edge {
    std::uint32_t killer_slot;
    std::uint64_t killer_serial;
  };
  std::unordered_map<std::uint64_t, Edge> kill_edge;       // victim key -> latest winner
  std::map<std::uint64_t, std::set<std::uint16_t>> frame_threads;

  auto open_attempt = [&](const Event& e) -> Attempt* {
    auto it = open.find(key_of(e.thread, e.serial));
    return it == open.end() ? nullptr : &attempts_[it->second];
  };

  for (const Event& e : events_) {
    ThreadStats& ts = threads_[e.thread];
    switch (e.kind) {
      case EventKind::kBegin: {
        Attempt a;
        a.thread = e.thread;
        a.serial = e.serial;
        a.begin_ns = e.t_ns;
        a.is_retry = (e.detail & 1) != 0;
        attempts_.push_back(a);
        open[key_of(e.thread, e.serial)] = attempts_.size() - 1;
        by_key[key_of(e.thread, e.serial)] = attempts_.size() - 1;
        break;
      }
      case EventKind::kConflict:
      case EventKind::kResolve: {
        if (Attempt* a = open_attempt(e)) a->conflicts++;
        ts.conflicts++;
        const stm::Resolution res = e.kind == EventKind::kConflict
                                        ? resolution_of(e.detail)
                                        : static_cast<stm::Resolution>(e.detail);
        if (res == stm::Resolution::kAbortEnemy && e.enemy != kNoEnemy) {
          kill_edge[key_of(e.enemy, e.a0)] = Edge{e.thread, e.serial};
        }
        break;
      }
      case EventKind::kWait:
        if (Attempt* a = open_attempt(e)) a->waits++;
        ts.waits++;
        break;
      case EventKind::kBackoff:
        ts.backoffs++;
        break;
      case EventKind::kCommit:
      case EventKind::kAbort: {
        auto it = open.find(key_of(e.thread, e.serial));
        if (it == open.end()) break;  // begin fell off the ring
        Attempt& a = attempts_[it->second];
        a.end_ns = e.t_ns;
        a.closed = true;
        a.committed = e.kind == EventKind::kCommit;
        if (a.committed) {
          ts.commits++;
          ts.committed_ns += a.duration_ns();
        } else {
          ts.aborts++;
          ts.wasted_ns += a.duration_ns();
          auto edge = kill_edge.find(key_of(e.thread, e.serial));
          if (edge != kill_edge.end()) {
            a.killer_slot = edge->second.killer_slot;
            a.killer_serial = edge->second.killer_serial;
          } else if (e.enemy != kNoEnemy) {
            a.killer_slot = e.enemy;  // manager-registered aborted_by
            a.killer_serial = e.a1;
          }
        }
        open.erase(it);
        break;
      }
      case EventKind::kPrioritySwitch: {
        FrameOccupancy& f = frames_[e.a1];
        f.high_entries++;
        frame_threads[e.a1].insert(e.thread);
        break;
      }
      case EventKind::kWindowCommit: {
        FrameOccupancy& f = frames_[e.a1];
        f.commits++;
        if (e.detail & 1) f.bad_commits++;
        break;
      }
      case EventKind::kSnapshotExtend: {
        ts.extensions++;
        ts.extension_reads += e.a0;
        break;
      }
      case EventKind::kClockBump: {
        ts.clock_bumps++;
        break;
      }
      default:
        break;  // kWindowStart/kFrameAdvance/kCiUpdate need no aggregation
    }
  }
  for (auto& [frame, occ] : frames_) {
    auto it = frame_threads.find(frame);
    occ.distinct_threads = it == frame_threads.end()
                               ? 0
                               : static_cast<std::uint32_t>(it->second.size());
  }

  // Pass 2: chain depth. depth(aborted a) = 1 + depth(killer attempt) when
  // the killer's attempt is known and itself aborted; cycles (possible under
  // racy mutual kills) and unknown killers terminate at 1.
  std::vector<std::uint8_t> state(attempts_.size(), 0);  // 0 new, 1 visiting, 2 done
  for (std::size_t i = 0; i < attempts_.size(); ++i) {
    if (state[i] == 2) continue;
    std::vector<std::size_t> stack{i};
    while (!stack.empty()) {
      const std::size_t cur = stack.back();
      Attempt& a = attempts_[cur];
      if (state[cur] == 2) {
        stack.pop_back();
        continue;
      }
      if (!a.closed || a.committed || a.killer_slot == kNoEnemy) {
        a.chain_depth = a.closed && !a.committed ? 1 : 0;
        state[cur] = 2;
        stack.pop_back();
        continue;
      }
      auto it = by_key.find(key_of(a.killer_slot, a.killer_serial));
      if (it == by_key.end()) {
        a.chain_depth = 1;
        state[cur] = 2;
        stack.pop_back();
        continue;
      }
      const std::size_t killer = it->second;
      if (state[killer] == 2) {
        const Attempt& k = attempts_[killer];
        a.chain_depth = 1 + (k.closed && !k.committed ? k.chain_depth : 0);
        state[cur] = 2;
        stack.pop_back();
      } else if (state[killer] == 1 || killer == cur) {
        a.chain_depth = 1;  // cycle: both attempts recorded a winning kill
        state[cur] = 2;
        stack.pop_back();
      } else {
        state[cur] = 1;
        stack.push_back(killer);
      }
    }
  }

  for (const Attempt& a : attempts_) {
    if (a.closed && !a.committed && a.killer_slot != kNoEnemy) {
      threads_[a.killer_slot].caused_wasted_ns += a.duration_ns();
    }
  }
}

std::map<std::uint32_t, std::int64_t> Analyzer::wasted_by_killer() const {
  std::map<std::uint32_t, std::int64_t> out;
  for (const Attempt& a : attempts_) {
    if (a.closed && !a.committed) out[a.killer_slot] += a.duration_ns();
  }
  return out;
}

std::vector<std::uint64_t> Analyzer::chain_depth_histogram() const {
  std::vector<std::uint64_t> hist;
  for (const Attempt& a : attempts_) {
    if (!a.closed || a.committed) continue;
    if (a.chain_depth >= hist.size()) hist.resize(a.chain_depth + 1, 0);
    hist[a.chain_depth]++;
  }
  return hist;
}

std::uint64_t Analyzer::high_high_frames() const {
  std::uint64_t n = 0;
  for (const auto& [frame, occ] : frames_) {
    if (occ.distinct_threads >= 2) n++;
  }
  return n;
}

std::string Analyzer::summary() const {
  char buf[256];
  std::string out;
  std::uint64_t commits = 0, aborts = 0, conflicts = 0;
  std::int64_t wasted = 0, committed_ns = 0;
  for (const auto& [slot, ts] : threads_) {
    commits += ts.commits;
    aborts += ts.aborts;
    conflicts += ts.conflicts;
    wasted += ts.wasted_ns;
    committed_ns += ts.committed_ns;
  }
  std::snprintf(buf, sizeof(buf),
                "trace: %zu events, %zu attempts, %" PRIu64 " commits, %" PRIu64
                " aborts, %" PRIu64 " conflicts\n",
                events_.size(), attempts_.size(), commits, aborts, conflicts);
  out += buf;
  const double total_ns = static_cast<double>(wasted + committed_ns);
  std::snprintf(buf, sizeof(buf), "wasted work: %.3f ms (%.1f%% of in-transaction time)\n",
                static_cast<double>(wasted) / 1e6,
                total_ns > 0 ? 100.0 * static_cast<double>(wasted) / total_ns : 0.0);
  out += buf;

  for (const auto& [slot, ts] : threads_) {
    std::snprintf(buf, sizeof(buf),
                  "  t%-2u commits=%-7" PRIu64 " aborts=%-7" PRIu64 " conflicts=%-7" PRIu64
                  " waits=%-6" PRIu64 " wasted=%.2fms caused=%.2fms\n",
                  slot, ts.commits, ts.aborts, ts.conflicts, ts.waits,
                  static_cast<double>(ts.wasted_ns) / 1e6,
                  static_cast<double>(ts.caused_wasted_ns) / 1e6);
    out += buf;
  }

  std::uint64_t extensions = 0, extension_reads = 0, clock_bumps = 0;
  for (const auto& [slot, ts] : threads_) {
    extensions += ts.extensions;
    extension_reads += ts.extension_reads;
    clock_bumps += ts.clock_bumps;
  }
  if (extensions > 0) {
    std::snprintf(buf, sizeof(buf),
                  "snapshot extensions: %" PRIu64 " passes over %" PRIu64
                  " read-set entries (%.2f entries/pass)\n",
                  extensions, extension_reads,
                  static_cast<double>(extension_reads) / static_cast<double>(extensions));
    out += buf;
  }
  if (clock_bumps > 0) {
    std::snprintf(buf, sizeof(buf),
                  "clock bumps: %" PRIu64
                  " shared-line writes (%.1f%% of extension passes)\n",
                  clock_bumps,
                  100.0 * static_cast<double>(clock_bumps) /
                      static_cast<double>(extensions > 0 ? extensions : 1));
    out += buf;
  }

  const auto hist = chain_depth_histogram();
  if (hist.size() > 1) {
    out += "abort chain depth:";
    for (std::size_t d = 1; d < hist.size(); ++d) {
      std::snprintf(buf, sizeof(buf), " %zu:%" PRIu64, d, hist[d]);
      out += buf;
    }
    out += "\n";
  }

  if (!frames_.empty()) {
    std::uint32_t max_high = 0;
    for (const auto& [frame, occ] : frames_) max_high = std::max(max_high, occ.high_entries);
    std::snprintf(buf, sizeof(buf),
                  "frames: %zu with activity, high/high collisions in %" PRIu64
                  ", max high entries %u\n",
                  frames_.size(), high_high_frames(), max_high);
    out += buf;
  }
  return out;
}

}  // namespace wstm::trace
