// Low-overhead per-thread event recorder.
//
// Each thread slot owns a cache-line-padded ring of Events; record() is a
// store into the owning thread's ring plus a release bump of its head
// counter — no locks, no allocation, no sharing. When the ring wraps, the
// oldest events are overwritten (drop-oldest keeps the interesting end of a
// long run). Tracing is toggled by *presence*: the Runtime holds a
// `Recorder*` that is null when tracing is off, so the disabled hot path
// pays exactly one predictable-null branch per instrumentation site.
//
// drain_sorted()/clear() are quiescent-only: call them after the worker
// threads have joined (the joins are the synchronization edge that makes
// the plain Event writes visible).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "trace/event.hpp"
#include "util/cacheline.hpp"
#include "util/timing.hpp"

namespace wstm::trace {

class Recorder {
 public:
  static constexpr unsigned kMaxThreads = 64;

  struct Options {
    /// Thread slots with a ring (events from slots >= threads are ignored).
    unsigned threads = kMaxThreads;
    /// Ring capacity in events per thread, rounded up to a power of two.
    /// Oldest events are overwritten once the ring is full.
    std::size_t capacity_per_thread = std::size_t{1} << 16;
  };

  Recorder() : Recorder(Options{}) {}
  explicit Recorder(Options options);

  /// Record one event from thread `slot` (owning thread only). Safe to call
  /// with an out-of-range slot (dropped), so detached helpers cannot crash.
  void record(unsigned slot, EventKind kind, std::uint64_t serial, std::uint8_t detail = 0,
              std::uint32_t enemy = kNoEnemy, std::uint64_t a0 = 0,
              std::uint64_t a1 = 0) noexcept {
    if (slot >= threads_) return;
    Ring& ring = rings_[slot];
    const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
    Event& e = ring.buf[head & mask_];
    e.t_ns = now_ns();
    e.serial = serial;
    e.a0 = a0;
    e.a1 = a1;
    e.enemy = enemy;
    e.thread = static_cast<std::uint16_t>(slot);
    e.kind = kind;
    e.detail = detail;
    ring.head.store(head + 1, std::memory_order_release);
  }

  unsigned threads() const noexcept { return threads_; }
  std::size_t capacity_per_thread() const noexcept { return mask_ + 1; }

  /// Events ever recorded from `slot` (including overwritten ones).
  std::uint64_t recorded(unsigned slot) const noexcept;
  /// Events from `slot` lost to ring wraparound.
  std::uint64_t dropped(unsigned slot) const noexcept;

  /// All surviving events, ordered by timestamp (ties by thread slot).
  /// Quiescent-only.
  std::vector<Event> drain_sorted() const;

  /// Forget everything recorded so far (e.g. between populate and the
  /// measured interval). Quiescent-only.
  void clear() noexcept;

 private:
  struct alignas(kCacheLine) Ring {
    std::atomic<std::uint64_t> head{0};
    std::unique_ptr<Event[]> buf;
  };

  unsigned threads_;
  std::size_t mask_;
  std::array<Ring, kMaxThreads> rings_;
};

}  // namespace wstm::trace
