#include "trace/recorder.hpp"

#include <algorithm>
#include <stdexcept>

namespace wstm::trace {

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

Recorder::Recorder(Options options)
    : threads_(options.threads < kMaxThreads ? options.threads : kMaxThreads),
      mask_(round_up_pow2(options.capacity_per_thread < 2 ? 2 : options.capacity_per_thread) -
            1) {
  if (options.threads == 0) throw std::invalid_argument("Recorder: threads must be > 0");
  for (unsigned i = 0; i < threads_; ++i) {
    rings_[i].buf = std::make_unique<Event[]>(mask_ + 1);
  }
}

std::uint64_t Recorder::recorded(unsigned slot) const noexcept {
  if (slot >= threads_) return 0;
  return rings_[slot].head.load(std::memory_order_acquire);
}

std::uint64_t Recorder::dropped(unsigned slot) const noexcept {
  const std::uint64_t head = recorded(slot);
  const std::uint64_t cap = mask_ + 1;
  return head > cap ? head - cap : 0;
}

std::vector<Event> Recorder::drain_sorted() const {
  std::vector<Event> out;
  for (unsigned slot = 0; slot < threads_; ++slot) {
    const Ring& ring = rings_[slot];
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    const std::uint64_t cap = mask_ + 1;
    const std::uint64_t n = head < cap ? head : cap;
    for (std::uint64_t i = head - n; i < head; ++i) {
      out.push_back(ring.buf[i & mask_]);
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    return a.t_ns != b.t_ns ? a.t_ns < b.t_ns : a.thread < b.thread;
  });
  return out;
}

void Recorder::clear() noexcept {
  for (unsigned i = 0; i < threads_; ++i) {
    rings_[i].head.store(0, std::memory_order_release);
  }
}

const char* kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kBegin: return "begin";
    case EventKind::kCommit: return "commit";
    case EventKind::kAbort: return "abort";
    case EventKind::kConflict: return "conflict";
    case EventKind::kWait: return "wait";
    case EventKind::kBackoff: return "backoff";
    case EventKind::kResolve: return "resolve";
    case EventKind::kPrioritySwitch: return "priority_switch";
    case EventKind::kFrameAdvance: return "frame_advance";
    case EventKind::kWindowStart: return "window_start";
    case EventKind::kWindowCommit: return "window_commit";
    case EventKind::kCiUpdate: return "ci_update";
    case EventKind::kWatchdog: return "watchdog";
    case EventKind::kEscalate: return "escalate";
    case EventKind::kSerialToken: return "serial_token";
    case EventKind::kChaos: return "chaos";
    case EventKind::kSnapshotExtend: return "snapshot_extend";
    case EventKind::kEnqueue: return "enqueue";
    case EventKind::kDequeue: return "dequeue";
    case EventKind::kClockBump: return "clock_bump";
    case EventKind::kPark: return "park";
    case EventKind::kUnpark: return "unpark";
  }
  return "?";
}

}  // namespace wstm::trace
