// Replay a trace and assert the window-CM invariants.
//
// The checker is the correctness oracle for the five window variants: it
// re-executes every recorded priority decision and frame transition and
// fails loudly when the trace contradicts the model of paper Section II:
//
//  1. Lifecycle: per thread, attempts open (kBegin) before they close
//     (kCommit/kAbort), never nest, and serials strictly increase; every
//     conflict/resolve/wait belongs to the open attempt.
//  2. Decision order: every kResolve outcome must match the lexicographic
//     (π1, π2, slot) comparison of the vectors it recorded — in particular
//     a LOW-priority transaction may never win against a HIGH one.
//  3. Priority switch timing: a transaction turns HIGH only once its
//     assigned frame F_ij = q_i + j has begun (observed frame ≥ assigned).
//  4. Frame monotonicity: a thread's observed frame never moves backwards
//     within one window.
//  5. Bad-event flags on kWindowCommit agree with the recorded frames.
//
// Only kResolve events (recorded by WindowCM with the exact values the
// decision used) are checked against invariant 2; generic kConflict events
// are exempt because other managers order by different criteria.
#pragma once

#include <string>
#include <vector>

#include "trace/event.hpp"

namespace wstm::trace {

struct CheckResult {
  /// First kMaxViolationMessages violation descriptions.
  std::vector<std::string> violations;
  /// Total violations found (may exceed violations.size()).
  std::size_t total_violations = 0;
  std::size_t events_checked = 0;
  std::size_t resolves_checked = 0;

  bool ok() const noexcept { return total_violations == 0; }
  std::string to_string() const;
};

/// Caps the number of violation messages retained (the count keeps growing).
inline constexpr std::size_t kMaxViolationMessages = 32;

class ScheduleChecker {
 public:
  /// Replays `events` (sorted internally) and returns every violation found.
  static CheckResult check(std::vector<Event> events);
};

}  // namespace wstm::trace
