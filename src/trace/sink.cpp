#include "trace/sink.hpp"

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace wstm::trace {

namespace {

constexpr char kMagic[8] = {'W', 'S', 'T', 'M', 'T', 'R', 'C', '1'};
constexpr std::uint32_t kVersion = 1;

struct BinaryHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t event_size;
  std::uint64_t count;
};
static_assert(sizeof(BinaryHeader) == 24);

/// Microseconds relative to `base`, as Chrome's "ts" expects.
double rel_us(std::int64_t t_ns, std::int64_t base) {
  return static_cast<double>(t_ns - base) / 1000.0;
}

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void begin() { out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"; }
  void end() { out_ << "\n]}\n"; }

  /// Starts one trace-event object with the common fields.
  void open(const char* ph, unsigned tid, double ts, const char* name) {
    if (!first_) out_ << ",\n";
    first_ = false;
    char buf[160];
    std::snprintf(buf, sizeof(buf), "{\"ph\":\"%s\",\"pid\":0,\"tid\":%u,\"ts\":%.3f,\"name\":\"%s\"",
                  ph, tid, ts, name);
    out_ << buf;
  }

  void field_num(const char* key, double v) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), ",\"%s\":%.6g", key, v);
    out_ << buf;
  }
  void field_u64(const char* key, std::uint64_t v) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), ",\"%s\":%" PRIu64, key, v);
    out_ << buf;
  }
  void field_str(const char* key, const char* v) {
    out_ << ",\"" << key << "\":\"" << v << "\"";
  }
  void raw(const char* text) { out_ << text; }
  void close() { out_ << "}"; }

 private:
  std::ostream& out_;
  bool first_ = true;
};

}  // namespace

void write_chrome_json(const std::vector<Event>& events, std::ostream& out) {
  const std::int64_t base = events.empty() ? 0 : events.front().t_ns;

  JsonWriter w(out);
  w.begin();
  w.open("M", 0, 0.0, "process_name");
  w.raw(",\"args\":{\"name\":\"wstm\"}");
  w.close();

  // One pending begin per thread slot: paired with the next commit/abort on
  // the same slot into a complete ("X") duration event.
  struct Pending {
    bool open = false;
    std::int64_t t_ns = 0;
    std::uint64_t serial = 0;
    bool is_retry = false;
  };
  Pending pending[64] = {};
  bool named[64] = {};

  for (const Event& e : events) {
    const unsigned tid = e.thread;
    if (tid < 64 && !named[tid]) {
      named[tid] = true;
      w.open("M", tid, 0.0, "thread_name");
      char buf[64];
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"name\":\"worker %u\"}", tid);
      w.raw(buf);
      w.close();
    }
    switch (e.kind) {
      case EventKind::kBegin:
        if (tid < 64) pending[tid] = {true, e.t_ns, e.serial, (e.detail & 1) != 0};
        break;
      case EventKind::kCommit:
      case EventKind::kAbort: {
        const bool committed = e.kind == EventKind::kCommit;
        if (tid < 64 && pending[tid].open && pending[tid].serial == e.serial) {
          w.open("X", tid, rel_us(pending[tid].t_ns, base), committed ? "tx" : "tx(abort)");
          w.field_num("dur", static_cast<double>(e.t_ns - pending[tid].t_ns) / 1000.0);
          w.field_str("cat", committed ? "commit" : "abort");
          w.raw(",\"args\":{");
          char buf[128];
          std::snprintf(buf, sizeof(buf), "\"serial\":%" PRIu64 ",\"retry\":%d",
                        e.serial, pending[tid].is_retry ? 1 : 0);
          w.raw(buf);
          if (!committed && e.enemy != kNoEnemy) {
            std::snprintf(buf, sizeof(buf), ",\"killer\":%u,\"killer_serial\":%" PRIu64,
                          e.enemy, e.a1);
            w.raw(buf);
          }
          w.raw("}");
          w.close();
          pending[tid].open = false;
        }
        break;
      }
      case EventKind::kCiUpdate:
        w.open("C", tid, rel_us(e.t_ns, base), "contention");
        w.raw(",\"args\":{");
        {
          char buf[96];
          std::snprintf(buf, sizeof(buf), "\"c_est\":%.6g,\"ci\":%.6g",
                        unpack_double(e.a0), unpack_double(e.a1));
          w.raw(buf);
        }
        w.raw("}");
        w.close();
        break;
      default:
        w.open("i", tid, rel_us(e.t_ns, base), kind_name(e.kind));
        w.raw(",\"s\":\"t\",\"args\":{");
        {
          char buf[224];
          if (e.enemy != kNoEnemy) {
            std::snprintf(buf, sizeof(buf),
                          "\"serial\":%" PRIu64 ",\"enemy\":%u,\"a0\":%" PRIu64 ",\"a1\":%" PRIu64
                          ",\"detail\":%u", e.serial, e.enemy, e.a0, e.a1, e.detail);
          } else {
            std::snprintf(buf, sizeof(buf),
                          "\"serial\":%" PRIu64 ",\"a0\":%" PRIu64 ",\"a1\":%" PRIu64
                          ",\"detail\":%u", e.serial, e.a0, e.a1, e.detail);
          }
          w.raw(buf);
        }
        w.raw("}");
        w.close();
        break;
    }
  }
  w.end();
}

void write_binary(const std::vector<Event>& events, std::ostream& out) {
  BinaryHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kVersion;
  h.event_size = sizeof(Event);
  h.count = events.size();
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  if (!events.empty()) {
    out.write(reinterpret_cast<const char*>(events.data()),
              static_cast<std::streamsize>(events.size() * sizeof(Event)));
  }
}

std::vector<Event> read_binary(std::istream& in) {
  BinaryHeader h{};
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!in || std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("trace: not a wstm binary trace (bad magic)");
  }
  if (h.version != kVersion || h.event_size != sizeof(Event)) {
    throw std::runtime_error("trace: unsupported trace version/layout");
  }
  std::vector<Event> events(h.count);
  if (h.count != 0) {
    in.read(reinterpret_cast<char*>(events.data()),
            static_cast<std::streamsize>(h.count * sizeof(Event)));
    if (!in) throw std::runtime_error("trace: truncated trace file");
  }
  return events;
}

bool write_trace_file(const std::string& path, const std::vector<Event>& events) {
  const bool json = path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  std::ofstream out(path, json ? std::ios::out : std::ios::out | std::ios::binary);
  if (!out) return false;
  if (json) {
    write_chrome_json(events, out);
  } else {
    write_binary(events, out);
  }
  out.flush();
  return static_cast<bool>(out);
}

std::string path_with_suffix(const std::string& path, const std::string& suffix) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + suffix;
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

}  // namespace wstm::trace
