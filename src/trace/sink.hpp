// Trace export/import.
//
// Two formats:
//  * Chrome trace_event JSON — load in chrome://tracing or Perfetto.
//    Transaction attempts become duration ("X") events on one track per
//    thread; everything else becomes instant events; C_i/CI updates also
//    emit counter tracks. Write-only (we never parse JSON back).
//  * wstm binary — an 8-byte magic + header followed by the raw Event
//    array. Compact, loss-free, and what the `wstm-trace` tool reads.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace wstm::trace {

/// Writes `events` (must be time-sorted, as from Recorder::drain_sorted) as
/// Chrome trace_event JSON.
void write_chrome_json(const std::vector<Event>& events, std::ostream& out);

/// Writes the binary format (header + raw dump).
void write_binary(const std::vector<Event>& events, std::ostream& out);

/// Reads a binary trace. Throws std::runtime_error on a bad magic/version.
std::vector<Event> read_binary(std::istream& in);

/// Writes `events` to `path`, picking the format by extension: ".json" →
/// Chrome JSON, anything else → binary. Returns false on I/O failure.
bool write_trace_file(const std::string& path, const std::vector<Event>& events);

/// Inserts `suffix` before the extension: ("out.json", "-list") →
/// "out-list.json"; appends when there is no extension.
std::string path_with_suffix(const std::string& path, const std::string& suffix);

}  // namespace wstm::trace
