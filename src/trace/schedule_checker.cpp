#include "trace/schedule_checker.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace wstm::trace {

namespace {

struct ThreadState {
  bool open = false;
  std::uint64_t serial = 0;
  std::uint64_t last_serial = 0;
  bool saw_attempt = false;
  // Frame tracking within the current window. Static variants restart their
  // clock at every window start, so kWindowStart resets this.
  bool frame_known = false;
  std::uint64_t last_frame = 0;
};

class Reporter {
 public:
  explicit Reporter(CheckResult& result) : result_(result) {}

  void violation(const Event& e, const char* what, const std::string& extra = {}) {
    result_.total_violations++;
    if (result_.violations.size() >= kMaxViolationMessages) return;
    char buf[192];
    std::snprintf(buf, sizeof(buf), "[t=%.3fus thread=%u serial=%" PRIu64 " %s] %s",
                  static_cast<double>(e.t_ns - base_ns_) / 1000.0, e.thread, e.serial,
                  kind_name(e.kind), what);
    result_.violations.push_back(extra.empty() ? std::string(buf)
                                               : std::string(buf) + " — " + extra);
  }

  void set_base(std::int64_t base_ns) { base_ns_ = base_ns; }

 private:
  CheckResult& result_;
  std::int64_t base_ns_ = 0;
};

/// Lexicographic window comparison: true when (my) wins against (enemy).
bool my_vector_wins(const ResolvePrios& p, std::uint16_t my_slot, std::uint32_t enemy_slot) {
  if (p.my_pc != p.en_pc) return p.my_pc < p.en_pc;
  if (p.my_p2 != p.en_p2) return p.my_p2 < p.en_p2;
  return my_slot < enemy_slot;
}

}  // namespace

CheckResult ScheduleChecker::check(std::vector<Event> events) {
  std::stable_sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.t_ns != b.t_ns ? a.t_ns < b.t_ns : a.thread < b.thread;
  });

  CheckResult result;
  Reporter report(result);
  if (!events.empty()) report.set_base(events.front().t_ns);
  ThreadState state[64];

  for (const Event& e : events) {
    if (e.thread >= 64) continue;
    ThreadState& st = state[e.thread];
    result.events_checked++;

    switch (e.kind) {
      case EventKind::kBegin:
        if (st.open) report.violation(e, "attempt begins while another is open");
        // The first visible serial may follow ring-dropped predecessors, so
        // only strict monotonicity is required, not density.
        if (st.saw_attempt && e.serial <= st.last_serial) {
          report.violation(e, "attempt serial not strictly increasing");
        }
        st.open = true;
        st.serial = e.serial;
        st.last_serial = e.serial;
        st.saw_attempt = true;
        break;

      case EventKind::kCommit:
      case EventKind::kAbort:
        if (!st.open || st.serial != e.serial) {
          // A begin that fell off the ring is fine only at the very start of
          // the thread's surviving window of events.
          if (st.saw_attempt) report.violation(e, "close without matching open attempt");
        }
        st.open = false;
        break;

      case EventKind::kConflict:
      case EventKind::kWait:
        if (!st.open || st.serial != e.serial) {
          if (st.saw_attempt) report.violation(e, "conflict outside an open attempt");
        }
        break;

      case EventKind::kPark:
        if (!st.open || st.serial != e.serial) {
          if (st.saw_attempt) report.violation(e, "park outside an open attempt");
        }
        break;

      case EventKind::kResolve: {
        result.resolves_checked++;
        if (st.saw_attempt && (!st.open || st.serial != e.serial)) {
          report.violation(e, "resolve outside an open attempt");
        }
        const ResolvePrios p = unpack_resolve_prios(e.a1);
        const auto res = static_cast<stm::Resolution>(e.detail);
        const bool won = my_vector_wins(p, e.thread, e.enemy);
        char extra[128];
        std::snprintf(extra, sizeof(extra),
                      "mine=(pi1=%u,pi2=%u,slot=%u) enemy=(pi1=%u,pi2=%u,slot=%u)", p.my_pc,
                      p.my_p2, e.thread, p.en_pc, p.en_p2, e.enemy);
        if (res == stm::Resolution::kRetry) {
          // Requester-waits mode parks a low-priority loser against a
          // high-priority winner instead of aborting; any other wait —
          // in particular from a winning position — is still a violation.
          if (!(p.my_pc > p.en_pc)) {
            report.violation(e, "window decision waited from a winning position", extra);
          }
        } else if (won != (res == stm::Resolution::kAbortEnemy)) {
          report.violation(e,
                           p.my_pc > p.en_pc && res == stm::Resolution::kAbortEnemy
                               ? "LOW priority won against HIGH"
                               : "decision contradicts lexicographic priority order",
                           extra);
        }
        break;
      }

      case EventKind::kPrioritySwitch:
        if (e.a1 < e.a0) {
          report.violation(e, "switched to HIGH before the assigned frame began");
        }
        if (st.frame_known && e.a1 < st.last_frame) {
          report.violation(e, "observed frame moved backwards");
        }
        st.frame_known = true;
        st.last_frame = e.a1;
        break;

      case EventKind::kFrameAdvance:
        if (st.frame_known && e.a0 < st.last_frame) {
          report.violation(e, "observed frame moved backwards");
        }
        st.frame_known = true;
        st.last_frame = e.a0;
        break;

      case EventKind::kWindowStart:
        // Static variants restart their frame clock here; forget the frame.
        st.frame_known = false;
        st.last_frame = 0;
        break;

      case EventKind::kWindowCommit: {
        const bool bad = (e.detail & 1) != 0;
        if (bad != (e.a1 > e.a0)) {
          report.violation(e, "bad-event flag disagrees with assigned/commit frames");
        }
        if (st.frame_known && e.a1 < st.last_frame) {
          report.violation(e, "observed frame moved backwards");
        }
        st.frame_known = true;
        st.last_frame = e.a1;
        break;
      }

      default:
        break;  // kBackoff / kCiUpdate carry no checkable invariant
    }
  }
  return result;
}

std::string CheckResult::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "checked %zu events (%zu window decisions): ", events_checked,
                resolves_checked);
  std::string out = buf;
  if (ok()) {
    out += "all window invariants hold\n";
    return out;
  }
  std::snprintf(buf, sizeof(buf), "%zu violations\n", total_violations);
  out += buf;
  for (const std::string& v : violations) {
    out += "  ";
    out += v;
    out += "\n";
  }
  if (total_violations > violations.size()) {
    std::snprintf(buf, sizeof(buf), "  ... and %zu more\n", total_violations - violations.size());
    out += buf;
  }
  return out;
}

}  // namespace wstm::trace
