// Transaction trace events.
//
// One Event is a fixed 40-byte POD so a per-thread ring buffer can record
// millions of them without allocation and a binary trace file is a plain
// byte dump (see sink.hpp). The payload fields a0/a1/enemy/detail are
// interpreted per EventKind; the packing helpers below keep the encoding in
// one place for the recorder (writers) and the analyzer/checker (readers).
//
// Who records what:
//  * stm::Runtime      — kBegin, kCommit, kAbort, kConflict, kWait
//  * cm::* managers    — kBackoff (Polka slice waits, window courtesy yield)
//  * window::WindowCM  — kResolve (the exact priority vectors a decision
//    used), kPrioritySwitch, kFrameAdvance, kWindowStart, kWindowCommit,
//    kCiUpdate
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

#include "stm/fwd.hpp"

namespace wstm::trace {

/// `enemy` value meaning "no enemy recorded".
inline constexpr std::uint32_t kNoEnemy = 0xffffffffu;

enum class EventKind : std::uint8_t {
  kBegin = 0,       // detail bit0 = is_retry
  kCommit,          // a0 = attempt elapsed ns, a1 = response ns (since first begin)
  kAbort,           // a0 = attempt elapsed ns; enemy/a1 = registered killer slot/serial
                    // (kNoEnemy unless a manager registered aborted_by);
                    // detail bit0 = 1 when the deterministic checker's fault
                    // injector forced this abort (src/check/)
  kConflict,        // detail = pack_conflict(kind, resolution); enemy/a0 = enemy slot/serial
  kWait,            // conflict resolved to kRetry (the manager typically waited);
                    // enemy/a0 = enemy slot/serial
  kBackoff,         // a0 = waited ns, a1 = rounds/slices
  kResolve,         // window decision: detail = resolution, enemy/a0 = enemy slot/serial,
                    // a1 = pack_resolve_prios(...) — the exact vectors compared
  kPrioritySwitch,  // low->high: a0 = assigned frame F_ij, a1 = observed frame;
                    // detail bit0 = 1 when forced by the escalation ladder
                    // (liveness boost) rather than the frame clock
  kFrameAdvance,    // a0 = new frame, a1 = previously observed frame;
                    // detail bit0 = 1 when reported by the dynamic controller
  kWindowStart,     // a0 = random delay q_i, a1 = window length N
  kWindowCommit,    // a0 = assigned frame, a1 = commit frame; detail bit0 = bad event
  kCiUpdate,        // a0/a1 = C_i / CI estimate as double bit patterns;
                    // detail bit0 = 1 when triggered by a bad event

  // Liveness layer (src/resilience/), recorded by stm::Runtime in the
  // owning thread's ring:
  kWatchdog,        // watchdog detection collected by the owner: detail bit0 =
                    // abort storm, bit1 = stalled attempt; a0 = consecutive
                    // aborts, a1 = logical-transaction age ns
  kEscalate,        // escalation-ladder step taken for this attempt:
                    // detail = level (1 backoff, 2 priority boost, 3 serial
                    // fallback attempt); a0 = consecutive aborts
  kSerialToken,     // irrevocable serial-fallback token: detail 1 = acquired,
                    // 0 = released
  kChaos,           // chaos fault suffered: detail = ChaosInjector::Fault,
                    // a0 = injected sleep in microseconds
  kSnapshotExtend,  // invisible-read extension pass (commit clock advanced
                    // past the attempt's snapshot): a0 = read-set entries
                    // validated, a1 = sampled clock value; detail bit0 = 1
                    // when the snapshot advanced (no pending writer seen)

  // Serving front-end (src/serve/). kEnqueue is recorded in the producer's
  // ring (producers attach to the runtime for a slot when tracing),
  // kDequeue in the worker's; `serial` carries the request's conflict key
  // so enqueue/dequeue pairs can be joined offline.
  kEnqueue,         // a0 = queue index, a1 = queue depth after the push
  kDequeue,         // a0 = queue index, a1 = queue wait ns (submit→dequeue);
                    // detail bit0 = 1 when the request was shed as expired

  kClockBump,       // deferred-clock shared-line write (extension-path CAS
                    // advance; see DESIGN.md §11): a0 = trigger stamp the
                    // clock was raised to cover. Absent in eager mode, where
                    // every write-commit bumps the line and recording each
                    // would double trace volume for no attribution value.

  // Requester-waits arbitration (src/stm/park.hpp; DESIGN.md §13), recorded
  // by stm::Runtime. Absent in abort mode.
  kPark,            // real futex-style park: enemy/a1 = enemy slot/serial,
                    // a0 = parked ns; detail bit0 = 1 when the wakeup was
                    // spurious (enemy still active afterwards)
  kUnpark,          // status transition woke waiters: enemy = the slot whose
                    // descriptor the waiters were parked on, a0 = waiter count
};

inline constexpr std::uint8_t kNumEventKinds = 22;

const char* kind_name(EventKind kind) noexcept;

struct Event {
  std::int64_t t_ns = 0;      // steady-clock timestamp (util/timing.hpp epoch)
  std::uint64_t serial = 0;   // attempt serial of the recording thread
  std::uint64_t a0 = 0;       // payload, meaning per kind
  std::uint64_t a1 = 0;       // payload, meaning per kind
  std::uint32_t enemy = kNoEnemy;  // enemy thread slot where applicable
  std::uint16_t thread = 0;   // recording thread slot
  EventKind kind = EventKind::kBegin;
  std::uint8_t detail = 0;    // small payload, meaning per kind
};

static_assert(sizeof(Event) == 40, "Event must stay a packed 40-byte POD");
static_assert(std::is_trivially_copyable_v<Event>, "Event is dumped to disk verbatim");

// ---- kConflict payload ----------------------------------------------------

inline constexpr std::uint8_t pack_conflict(stm::ConflictKind kind, stm::Resolution res) {
  return static_cast<std::uint8_t>((static_cast<std::uint8_t>(kind) << 2) |
                                   static_cast<std::uint8_t>(res));
}
inline constexpr stm::ConflictKind conflict_kind_of(std::uint8_t detail) {
  return static_cast<stm::ConflictKind>(detail >> 2);
}
inline constexpr stm::Resolution resolution_of(std::uint8_t detail) {
  return static_cast<stm::Resolution>(detail & 0x3);
}

// ---- kResolve payload -----------------------------------------------------

/// The two window priority vectors as compared: π1 ∈ {0, 1} and π2 ∈ [1, M]
/// (M ≤ 64) both fit comfortably in 16 bits each.
inline constexpr std::uint64_t pack_resolve_prios(std::uint64_t my_pc, std::uint64_t my_p2,
                                                  std::uint64_t en_pc, std::uint64_t en_p2) {
  return (my_pc << 48) | ((my_p2 & 0xffff) << 32) | ((en_pc & 0xffff) << 16) | (en_p2 & 0xffff);
}

struct ResolvePrios {
  std::uint16_t my_pc, my_p2, en_pc, en_p2;
};

inline constexpr ResolvePrios unpack_resolve_prios(std::uint64_t a1) {
  return ResolvePrios{static_cast<std::uint16_t>(a1 >> 48),
                      static_cast<std::uint16_t>((a1 >> 32) & 0xffff),
                      static_cast<std::uint16_t>((a1 >> 16) & 0xffff),
                      static_cast<std::uint16_t>(a1 & 0xffff)};
}

// ---- double payloads (kCiUpdate) ------------------------------------------

inline std::uint64_t pack_double(double v) { return std::bit_cast<std::uint64_t>(v); }
inline double unpack_double(std::uint64_t bits) { return std::bit_cast<double>(bits); }

}  // namespace wstm::trace
