// Offline schedule analysis over a recorded event stream.
//
// The analyzer reconstructs the run the way the paper reasons about it:
// attempts (who ran when, who killed whom), wasted-work attribution (the
// aborted nanoseconds charged to the thread whose transaction won the
// conflict), abort chains (a victim's killer may itself have been killed —
// chain depth measures how far conflict costs cascade, in the sense of
// Alistarh et al.'s transactional conflict problem), and per-frame
// occupancy for window runs (how many threads went HIGH in each frame —
// the paper's claim is that the random shift keeps this near 1).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace wstm::trace {

/// One transaction attempt, reconstructed from kBegin + kCommit/kAbort.
struct Attempt {
  std::uint16_t thread = 0;
  std::uint64_t serial = 0;
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;  // 0 while unmatched (run stopped mid-attempt)
  bool closed = false;
  bool committed = false;
  bool is_retry = false;
  std::uint32_t conflicts = 0;
  std::uint32_t waits = 0;
  /// Thread/serial of the conflict winner that killed this attempt
  /// (kNoEnemy when the killer could not be attributed).
  std::uint32_t killer_slot = kNoEnemy;
  std::uint64_t killer_serial = 0;
  /// 0 for committed attempts; for aborted ones, 1 + the chain depth of the
  /// killer's own attempt (cycles and unattributed kills count as 1).
  std::uint32_t chain_depth = 0;

  std::int64_t duration_ns() const { return closed ? end_ns - begin_ns : 0; }
};

struct ThreadStats {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t waits = 0;
  std::uint64_t backoffs = 0;
  std::int64_t committed_ns = 0;
  std::int64_t wasted_ns = 0;
  /// Wasted ns of *other* threads' aborted attempts this thread caused.
  std::int64_t caused_wasted_ns = 0;
  /// Invisible-read snapshot extensions (kSnapshotExtend events) and the
  /// read-set entries those passes re-validated — the residual O(R) cost
  /// the commit-clock fast path did not skip.
  std::uint64_t extensions = 0;
  std::uint64_t extension_reads = 0;
  /// Deferred-clock shared-line writes (kClockBump events): how often this
  /// thread actually dirtied the process-wide commit-clock line. Compare
  /// against `extensions` to attribute clock-line stalls — every bump is an
  /// extension, but a bump invalidates every other core's cached clock.
  std::uint64_t clock_bumps = 0;
};

/// Window-run occupancy of one frame.
struct FrameOccupancy {
  std::uint32_t high_entries = 0;    // kPrioritySwitch events landing here
  std::uint32_t distinct_threads = 0;  // distinct threads among them
  std::uint32_t commits = 0;         // kWindowCommit events in this frame
  std::uint32_t bad_commits = 0;     // of which bad events
};

class Analyzer {
 public:
  /// Takes a (time-sorted or unsorted) event stream; sorts it internally.
  explicit Analyzer(std::vector<Event> events);

  const std::vector<Event>& events() const noexcept { return events_; }
  const std::vector<Attempt>& attempts() const noexcept { return attempts_; }
  const std::map<unsigned, ThreadStats>& threads() const noexcept { return threads_; }

  /// Frame index → occupancy, from the window events (empty for non-window
  /// traces).
  const std::map<std::uint64_t, FrameOccupancy>& frames() const noexcept { return frames_; }

  /// Wasted nanoseconds by killer thread slot (kNoEnemy bucket = aborts the
  /// trace could not attribute).
  std::map<std::uint32_t, std::int64_t> wasted_by_killer() const;

  /// histogram[d] = number of aborted attempts with chain depth d (index 0
  /// unused).
  std::vector<std::uint64_t> chain_depth_histogram() const;

  /// Frames in which two or more distinct threads switched to HIGH — the
  /// high/high collisions the random shift is supposed to make rare.
  std::uint64_t high_high_frames() const;

  /// Human-readable multi-line report of all of the above.
  std::string summary() const;

 private:
  std::vector<Event> events_;
  std::vector<Attempt> attempts_;
  std::map<unsigned, ThreadStats> threads_;
  std::map<std::uint64_t, FrameOccupancy> frames_;
};

}  // namespace wstm::trace
