// Quickstart: the smallest complete wstm program.
//
//   1. pick a contention manager and build a Runtime,
//   2. wrap shared state in TObject<T>,
//   3. attach each thread and run transactions with atomically().
//
// The example runs concurrent bank transfers: the invariant (total balance
// is conserved) only holds because each transfer commits atomically.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "cm/registry.hpp"
#include "stm/runtime.hpp"
#include "util/affinity.hpp"
#include "util/rng.hpp"

int main() {
  using namespace wstm;

  constexpr unsigned kThreads = 4;
  constexpr int kAccounts = 6;
  constexpr long kInitialBalance = 1000;
  constexpr int kTransfersPerThread = 5000;

  // Any manager from cm::manager_names() works here; Online-Dynamic is the
  // paper's best-performing window-based contention manager.
  cm::Params params;
  params.threads = kThreads;
  // Emulate multicore interleaving when the host has fewer hardware
  // threads than workers (see stm::RuntimeConfig).
  stm::RuntimeConfig rt_config;
  if (hardware_cpus() < kThreads) rt_config.preempt_yield_permille = 25;
  stm::Runtime rt(cm::make_manager("Online-Dynamic", params), rt_config);

  std::vector<std::unique_ptr<stm::TObject<long>>> accounts;
  for (int i = 0; i < kAccounts; ++i) {
    accounts.push_back(std::make_unique<stm::TObject<long>>(kInitialBalance));
  }

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      stm::ThreadCtx& tc = rt.attach_thread();  // once per OS thread
      Xoshiro256 rng(t + 1);
      for (int i = 0; i < kTransfersPerThread; ++i) {
        const auto from = static_cast<std::size_t>(rng.below(kAccounts));
        auto to = static_cast<std::size_t>(rng.below(kAccounts));
        if (to == from) to = (to + 1) % kAccounts;
        const long amount = static_cast<long>(rng.below(100));

        // The lambda may run several times (aborted attempts retry); all
        // its shared-memory effects go through open_read/open_write.
        rt.atomically(tc, [&](stm::Tx& tx) {
          long* a = accounts[from]->open_write(tx);
          if (*a < amount) return;  // insufficient funds: commit a no-op
          long* b = accounts[to]->open_write(tx);
          *a -= amount;
          *b += amount;
        });
      }
    });
  }
  for (auto& w : workers) w.join();

  long total = 0;
  for (const auto& account : accounts) total += *account->peek();
  const stm::ThreadMetrics m = rt.total_metrics();
  std::printf("accounts total: %ld (expected %ld)\n", total,
              static_cast<long>(kAccounts) * kInitialBalance);
  std::printf("commits: %llu, aborts: %llu (%.3f aborts/commit)\n",
              static_cast<unsigned long long>(m.commits),
              static_cast<unsigned long long>(m.aborts),
              m.commits ? static_cast<double>(m.aborts) / static_cast<double>(m.commits) : 0.0);
  return total == static_cast<long>(kAccounts) * kInitialBalance ? 0 : 1;
}
