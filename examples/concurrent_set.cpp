// Concurrent transactional set demo: pick a data structure and a contention
// manager from the command line, hammer the set from several threads, and
// print the paper's metrics (throughput, aborts/commit, wasted work).
//
//   ./build/examples/concurrent_set --structure=rbtree --cm=Polka --threads=8
//   ./build/examples/concurrent_set --cm=Online-Dynamic --update-percent=20
#include <cstdio>
#include <iostream>

#include "harness/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace wstm;

  Cli cli;
  cli.add_flag("structure", "list | rbtree | skiplist", std::string("list"));
  std::string cm_help = "contention manager, one of:";
  for (const auto& name : cm::manager_names()) cm_help += " " + name;
  cli.add_flag("cm", cm_help, std::string("Online-Dynamic"));
  cli.add_flag("threads", "worker threads", static_cast<std::int64_t>(4));
  cli.add_flag("seconds", "run duration", 1.0);
  cli.add_flag("key-range", "keys drawn from [0, range)", static_cast<std::int64_t>(256));
  cli.add_flag("update-percent", "percent of insert/remove transactions",
               static_cast<std::int64_t>(100));
  if (!cli.parse(argc, argv)) return 1;

  harness::RunConfig cfg;
  cfg.threads = static_cast<std::uint32_t>(cli.get_int("threads"));
  cfg.duration_ms = static_cast<std::int64_t>(cli.get_double("seconds") * 1000.0);

  auto workload = harness::make_workload(
      cli.get_string("structure"), static_cast<std::uint32_t>(cli.get_int("update-percent")),
      cli.get_int("key-range"));

  std::printf("running %s with %s on %u threads for %.1fs...\n",
              cli.get_string("structure").c_str(), cli.get_string("cm").c_str(), cfg.threads,
              static_cast<double>(cfg.duration_ms) / 1000.0);

  const harness::RunResult r =
      harness::run_workload(cli.get_string("cm"), cm::Params{}, *workload, cfg);

  std::printf("  %s\n", r.summary.to_string().c_str());
  std::printf("  structure valid after run: %s%s%s\n", r.valid ? "yes" : "NO",
              r.valid ? "" : " — ", r.why.c_str());
  return r.valid ? 0 : 1;
}
