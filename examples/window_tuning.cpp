// Window-tuning walkthrough: runs an adaptive window-based contention
// manager on a contended list and shows its internals evolve — the per-
// thread contention estimates C_i, the contention-intensity (CI) values,
// window restarts caused by bad events, the frame-clock tau estimate, and
// dynamic frame contraction. Useful for understanding what the knobs in
// window::WindowOptions actually do before sweeping bench/ablation_frames.
//
//   ./build/examples/window_tuning --cm=Adaptive-Improved-Dynamic --threads=8
#include <cstdio>
#include <thread>
#include <vector>

#include "cm/registry.hpp"
#include "stm/runtime.hpp"
#include "structs/intset.hpp"
#include "util/cli.hpp"
#include "util/affinity.hpp"
#include "util/rng.hpp"
#include "window/window_cm.hpp"

int main(int argc, char** argv) {
  using namespace wstm;

  Cli cli;
  cli.add_flag("cm", "a window manager: Online, Online-Dynamic, Adaptive, "
                     "Adaptive-Improved, Adaptive-Improved-Dynamic",
               std::string("Adaptive-Improved-Dynamic"));
  cli.add_flag("threads", "worker threads", static_cast<std::int64_t>(4));
  cli.add_flag("transactions", "transactions per thread", static_cast<std::int64_t>(4000));
  cli.add_flag("window-n", "window length N", static_cast<std::int64_t>(50));
  cli.add_flag("key-range", "keys drawn from [0, range)", static_cast<std::int64_t>(64));
  if (!cli.parse(argc, argv)) return 1;

  const std::string cm_name = cli.get_string("cm");
  if (!cm::is_window_manager(cm_name)) {
    std::fprintf(stderr, "%s is not a window-based manager\n", cm_name.c_str());
    return 1;
  }

  const auto threads = static_cast<unsigned>(cli.get_int("threads"));
  cm::Params params;
  params.threads = threads;
  params.window_n = static_cast<std::uint32_t>(cli.get_int("window-n"));

  // Emulate multicore interleaving when the host has fewer hardware
  // threads than workers (see stm::RuntimeConfig).
  stm::RuntimeConfig rt_config;
  if (hardware_cpus() < threads) rt_config.preempt_yield_permille = 25;
  stm::Runtime rt(cm::make_manager(cm_name, params), rt_config);
  auto* wcm = dynamic_cast<window::WindowCM*>(&rt.manager());

  auto set = structs::make_intset("list");
  const long range = cli.get_int("key-range");
  const auto per_thread = static_cast<int>(cli.get_int("transactions"));

  std::vector<std::thread> workers;
  std::vector<unsigned> slots(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      stm::ThreadCtx& tc = rt.attach_thread();
      slots[t] = tc.slot();
      Xoshiro256 rng(7 + t);
      for (int i = 0; i < per_thread; ++i) {
        const long key = static_cast<long>(rng.below(static_cast<std::uint64_t>(range)));
        if (rng.below(2) == 0) {
          rt.atomically(tc, [&](stm::Tx& tx) { return set->insert(tx, key); });
        } else {
          rt.atomically(tc, [&](stm::Tx& tx) { return set->remove(tx, key); });
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  std::printf("%s after %u threads x %d transactions (N = %u):\n\n", cm_name.c_str(), threads,
              per_thread, params.window_n);
  std::printf("%-8s %-10s %-10s %-10s %-10s %-10s\n", "thread", "windows", "bad-events",
              "C_i", "CI", "delay q_i");
  for (unsigned t = 0; t < threads; ++t) {
    const auto snap = wcm->snapshot(slots[t]);
    std::printf("%-8u %-10llu %-10llu %-10.2f %-10.3f %-10llu\n", t,
                static_cast<unsigned long long>(snap.windows_started),
                static_cast<unsigned long long>(snap.bad_events), snap.c_est, snap.ci,
                static_cast<unsigned long long>(snap.delay_q));
  }
  std::printf("\nglobal tau estimate: %.1f us (frame length scales with it)\n",
              static_cast<double>(wcm->tau_estimate_ns()) / 1000.0);
  if (wcm->options().dynamic_frames) {
    std::printf("dynamic frame contractions: %llu (frames advanced as soon as drained)\n",
                static_cast<unsigned long long>(wcm->controller().advances()));
  }
  const stm::ThreadMetrics m = rt.total_metrics();
  std::printf("commits: %llu, aborts: %llu\n", static_cast<unsigned long long>(m.commits),
              static_cast<unsigned long long>(m.aborts));
  return 0;
}
