// Tracing walkthrough: records a short contended run under a window-based
// contention manager, then inspects it programmatically — the Analyzer's
// attempt/wasted-work reconstruction, per-frame HIGH occupancy, and the
// ScheduleChecker's invariant replay. Also writes both sink formats so the
// result can be opened in chrome://tracing or fed to the wstm-trace CLI.
//
//   ./build/examples/trace_inspect --cm=Adaptive --threads=4
//   ./build/tools/wstm-trace summary trace_inspect.bin
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cm/registry.hpp"
#include "stm/runtime.hpp"
#include "trace/analyzer.hpp"
#include "trace/recorder.hpp"
#include "trace/schedule_checker.hpp"
#include "trace/sink.hpp"
#include "util/affinity.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

struct Cell {
  long value = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace wstm;

  Cli cli;
  cli.add_flag("cm", "contention manager to trace", std::string("Adaptive"));
  cli.add_flag("threads", "worker threads", static_cast<std::int64_t>(4));
  cli.add_flag("transactions", "transactions per thread", static_cast<std::int64_t>(2000));
  cli.add_flag("out", "output basename (.bin and .json are written)",
               std::string("trace_inspect"));
  if (!cli.parse(argc, argv)) return 1;

  const std::string cm_name = cli.get_string("cm");
  const auto threads = static_cast<unsigned>(cli.get_int("threads"));
  const auto transactions = static_cast<int>(cli.get_int("transactions"));

  // 1. Record: the recorder outlives the runtime; tracing is enabled simply
  //    by handing the runtime a non-null pointer.
  trace::Recorder recorder;
  cm::Params params;
  params.threads = threads;
  params.window_n = 16;
  stm::RuntimeConfig rt_config;
  rt_config.recorder = &recorder;
  if (hardware_cpus() < threads) rt_config.preempt_yield_permille = 60;
  stm::Runtime rt(cm::make_manager(cm_name, params), rt_config);

  // A tiny pool of hot accounts: every transaction opens two of them for
  // write, so attempts overlap and conflicts (the interesting part of a
  // trace) actually happen.
  constexpr int kAccounts = 4;
  std::vector<std::unique_ptr<stm::TObject<Cell>>> accounts;
  for (int i = 0; i < kAccounts; ++i) {
    accounts.push_back(std::make_unique<stm::TObject<Cell>>(Cell{0}));
  }
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      pin_current_thread(t);
      stm::ThreadCtx& tc = rt.attach_thread();
      Xoshiro256 rng(t + 1);
      for (int i = 0; i < transactions; ++i) {
        const auto from = static_cast<std::size_t>(rng.below(kAccounts));
        auto to = static_cast<std::size_t>(rng.below(kAccounts));
        if (to == from) to = (to + 1) % kAccounts;
        rt.atomically(tc, [&](stm::Tx& tx) {
          accounts[from]->open_write(tx)->value -= 1;
          accounts[to]->open_write(tx)->value += 1;
        });
      }
    });
  }
  for (auto& w : workers) w.join();

  long total = 0;
  for (const auto& a : accounts) total += a->peek()->value;
  const std::vector<trace::Event> events = recorder.drain_sorted();
  std::printf("recorded %zu events over %llu commits (account sum %ld, expected 0)\n",
              events.size(), static_cast<unsigned long long>(rt.total_metrics().commits),
              total);
  for (unsigned t = 0; t < threads; ++t) {
    if (recorder.dropped(t) > 0) {
      std::printf("  note: thread %u dropped %llu events to ring wraparound\n", t,
                  static_cast<unsigned long long>(recorder.dropped(t)));
    }
  }

  // 2. Analyze: reconstruction and wasted-work attribution.
  trace::Analyzer analyzer(events);
  std::printf("\n%s", analyzer.summary().c_str());

  const auto wasted = analyzer.wasted_by_killer();
  if (!wasted.empty()) {
    std::printf("wasted ns by killer:");
    for (const auto& [slot, ns] : wasted) {
      if (slot == trace::kNoEnemy) {
        std::printf(" unattributed:%lld", static_cast<long long>(ns));
      } else {
        std::printf(" t%u:%lld", slot, static_cast<long long>(ns));
      }
    }
    std::printf("\n");
  }

  // 3. Check: replay the window-CM invariants over the recorded decisions.
  const trace::CheckResult check = trace::ScheduleChecker::check(events);
  std::printf("\n%s", check.to_string().c_str());

  // 4. Export both formats.
  const std::string base = cli.get_string("out");
  if (!trace::write_trace_file(base + ".bin", events) ||
      !trace::write_trace_file(base + ".json", events)) {
    std::fprintf(stderr, "failed to write %s.{bin,json}\n", base.c_str());
    return 1;
  }
  std::printf("\nwrote %s.bin (wstm-trace) and %s.json (chrome://tracing)\n", base.c_str(),
              base.c_str());
  return check.ok() ? 0 : 1;
}
