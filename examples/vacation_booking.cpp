// Vacation demo: a travel-booking database (flight/room/car tables +
// customers) under concurrent mixed traffic, exactly the workload the
// paper's fourth benchmark models. Shows the Manager API directly — compose
// several queries and reservations into one atomic action — and verifies
// database consistency afterwards.
//
//   ./build/examples/vacation_booking --cm=Adaptive-Improved-Dynamic --threads=8
#include <cstdio>
#include <thread>
#include <vector>

#include "cm/registry.hpp"
#include "stm/runtime.hpp"
#include "util/cli.hpp"
#include "util/affinity.hpp"
#include "util/rng.hpp"
#include "vacation/client.hpp"

int main(int argc, char** argv) {
  using namespace wstm;

  Cli cli;
  cli.add_flag("cm", "contention manager", std::string("Online-Dynamic"));
  cli.add_flag("threads", "worker threads", static_cast<std::int64_t>(4));
  cli.add_flag("actions", "client actions per thread", static_cast<std::int64_t>(2000));
  cli.add_flag("relations", "rows per table", static_cast<std::int64_t>(64));
  if (!cli.parse(argc, argv)) return 1;

  const auto threads = static_cast<unsigned>(cli.get_int("threads"));
  const auto actions = static_cast<int>(cli.get_int("actions"));

  cm::Params params;
  params.threads = threads;
  // Emulate multicore interleaving when the host has fewer hardware
  // threads than workers (see stm::RuntimeConfig).
  stm::RuntimeConfig rt_config;
  if (hardware_cpus() < threads) rt_config.preempt_yield_permille = 25;
  stm::Runtime rt(cm::make_manager(cli.get_string("cm"), params), rt_config);

  vacation::Manager manager;
  vacation::ClientConfig config = vacation::high_contention_config();
  config.relations = cli.get_int("relations");
  vacation::Client client(manager, config);

  {
    stm::ThreadCtx& tc = rt.attach_thread();
    client.populate(rt, tc);
    rt.detach_thread(tc);
  }
  std::printf("populated %ld rows per table, %ld customers\n", config.relations,
              config.relations);

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      stm::ThreadCtx& tc = rt.attach_thread();
      Xoshiro256 rng(100 + t);
      for (int i = 0; i < actions; ++i) client.run_one(rt, tc, rng);
    });
  }
  for (auto& w : workers) w.join();

  // Book-keeping after the storm: how much inventory is in use?
  long used = 0, total = 0, customers = 0, bookings = 0;
  for (int t = 0; t < vacation::kNumReservationTypes; ++t) {
    for (const auto& [id, row] :
         manager.table(static_cast<vacation::ReservationType>(t)).quiescent_entries()) {
      used += row.num_used;
      total += row.num_total;
    }
  }
  for (const auto& [id, customer] : manager.customers().quiescent_entries()) {
    ++customers;
    bookings += static_cast<long>(customer.reservations.size());
  }
  const stm::ThreadMetrics m = rt.total_metrics();

  std::printf("inventory in use: %ld / %ld units; %ld customers hold %ld bookings\n", used,
              total, customers, bookings);
  std::printf("commits: %llu, aborts: %llu\n", static_cast<unsigned long long>(m.commits),
              static_cast<unsigned long long>(m.aborts));

  std::string why;
  const bool ok = manager.quiescent_consistent(&why);
  std::printf("database consistent: %s%s%s\n", ok ? "yes" : "NO", ok ? "" : " — ",
              why.c_str());
  return ok ? 0 : 1;
}
