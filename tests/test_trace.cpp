// Trace subsystem tests: recorder ring semantics, binary/JSON sinks, the
// offline analyzer's attribution, and the ScheduleChecker as an oracle over
// both real concurrent runs and hand-built pathological traces.
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cm/registry.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "stm/runtime.hpp"
#include "trace/analyzer.hpp"
#include "trace/recorder.hpp"
#include "trace/schedule_checker.hpp"
#include "trace/sink.hpp"

namespace wstm::trace {
namespace {

Event mk(std::int64_t t, std::uint16_t thread, EventKind kind, std::uint64_t serial,
         std::uint8_t detail = 0, std::uint32_t enemy = kNoEnemy, std::uint64_t a0 = 0,
         std::uint64_t a1 = 0) {
  Event e;
  e.t_ns = t;
  e.thread = thread;
  e.kind = kind;
  e.serial = serial;
  e.detail = detail;
  e.enemy = enemy;
  e.a0 = a0;
  e.a1 = a1;
  return e;
}

// ---- recorder -------------------------------------------------------------

TEST(Recorder, WraparoundKeepsNewestAndCountsDrops) {
  Recorder::Options opts;
  opts.threads = 1;
  opts.capacity_per_thread = 8;
  Recorder rec(opts);
  ASSERT_EQ(rec.capacity_per_thread(), 8u);

  for (std::uint64_t i = 0; i < 20; ++i) {
    rec.record(0, EventKind::kBegin, i);
  }
  EXPECT_EQ(rec.recorded(0), 20u);
  EXPECT_EQ(rec.dropped(0), 12u);

  const std::vector<Event> events = rec.drain_sorted();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].serial, 12 + i) << "drop-oldest must keep the newest events";
  }

  rec.clear();
  EXPECT_EQ(rec.recorded(0), 0u);
  EXPECT_TRUE(rec.drain_sorted().empty());
}

TEST(Recorder, OutOfRangeSlotIsIgnored) {
  Recorder::Options opts;
  opts.threads = 2;
  opts.capacity_per_thread = 4;
  Recorder rec(opts);
  rec.record(2, EventKind::kBegin, 1);
  rec.record(63, EventKind::kBegin, 1);
  EXPECT_EQ(rec.recorded(2), 0u);
  EXPECT_TRUE(rec.drain_sorted().empty());
}

TEST(Recorder, CapacityRoundsUpToPowerOfTwo) {
  Recorder::Options opts;
  opts.threads = 1;
  opts.capacity_per_thread = 5;
  Recorder rec(opts);
  EXPECT_EQ(rec.capacity_per_thread(), 8u);
  EXPECT_THROW(Recorder(Recorder::Options{0, 8}), std::invalid_argument);
}

// ---- binary sink ----------------------------------------------------------

TEST(Sink, BinaryRoundTripPreservesEvents) {
  std::vector<Event> events{
      mk(100, 0, EventKind::kBegin, 1),
      mk(150, 1, EventKind::kConflict, 3, pack_conflict(stm::ConflictKind::kWriteWrite,
                                                        stm::Resolution::kAbortEnemy),
         0, 1),
      mk(200, 0, EventKind::kCommit, 1, 0, kNoEnemy, 100, 100),
      mk(250, 1, EventKind::kCiUpdate, 3, 0, kNoEnemy, pack_double(2.5), pack_double(0.75)),
  };
  std::stringstream buf;
  write_binary(events, buf);
  const std::vector<Event> back = read_binary(buf);
  ASSERT_EQ(back.size(), events.size());
  EXPECT_EQ(0, std::memcmp(back.data(), events.data(), events.size() * sizeof(Event)));
  EXPECT_DOUBLE_EQ(unpack_double(back[3].a0), 2.5);
}

TEST(Sink, BinaryRejectsGarbageAndTruncation) {
  {
    std::stringstream buf("definitely not a trace file");
    EXPECT_THROW(read_binary(buf), std::runtime_error);
  }
  {
    std::stringstream buf;
    write_binary({mk(1, 0, EventKind::kBegin, 1), mk(2, 0, EventKind::kCommit, 1)}, buf);
    std::string bytes = buf.str();
    bytes.resize(bytes.size() - 10);  // cut into the event payload
    std::stringstream cut(bytes);
    EXPECT_THROW(read_binary(cut), std::runtime_error);
  }
}

TEST(Sink, PathSuffixInsertsBeforeExtension) {
  EXPECT_EQ(path_with_suffix("out.json", "-list"), "out-list.json");
  EXPECT_EQ(path_with_suffix("dir.d/out.bin", "-r2"), "dir.d/out-r2.bin");
  EXPECT_EQ(path_with_suffix("trace", "-x"), "trace-x");
  EXPECT_EQ(path_with_suffix("some.dir/trace", "-x"), "some.dir/trace-x");
}

// ---- Chrome JSON sink -----------------------------------------------------

// Minimal JSON parser: enough to assert the sink's output is syntactically
// valid and to walk its structure. Throws std::runtime_error on bad input.
class MiniJson {
 public:
  static void validate(const std::string& text) {
    MiniJson p(text);
    p.skip_ws();
    p.value();
    p.skip_ws();
    if (p.pos_ != text.size()) throw std::runtime_error("trailing bytes after JSON value");
  }

 private:
  explicit MiniJson(const std::string& s) : s_(s) {}

  [[noreturn]] void fail(const char* what) {
    throw std::runtime_error(std::string(what) + " at offset " + std::to_string(pos_));
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) pos_++;
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    pos_++;
  }
  void value() {
    switch (peek()) {
      case '{': object(); break;
      case '[': array(); break;
      case '"': string(); break;
      case 't': literal("true"); break;
      case 'f': literal("false"); break;
      case 'n': literal("null"); break;
      default: number(); break;
    }
  }
  void object() {
    expect('{');
    skip_ws();
    if (peek() == '}') { pos_++; return; }
    for (;;) {
      skip_ws();
      string();
      skip_ws();
      expect(':');
      skip_ws();
      value();
      skip_ws();
      if (peek() == ',') { pos_++; continue; }
      expect('}');
      return;
    }
  }
  void array() {
    expect('[');
    skip_ws();
    if (peek() == ']') { pos_++; return; }
    for (;;) {
      skip_ws();
      value();
      skip_ws();
      if (peek() == ',') { pos_++; continue; }
      expect(']');
      return;
    }
  }
  void string() {
    expect('"');
    while (peek() != '"') {
      if (s_[pos_] == '\\') pos_++;
      pos_++;
    }
    pos_++;
  }
  void literal(const char* lit) {
    for (const char* p = lit; *p; ++p) expect(*p);
  }
  void number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
      pos_++;
    }
    if (pos_ == start) fail("expected a number");
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Sink, ChromeJsonIsWellFormed) {
  std::vector<Event> events{
      mk(1000, 0, EventKind::kBegin, 1),
      mk(1100, 1, EventKind::kBegin, 4, 1),
      mk(1200, 0, EventKind::kConflict, 1, pack_conflict(stm::ConflictKind::kWriteWrite,
                                                         stm::Resolution::kAbortEnemy),
         1, 4),
      mk(1300, 1, EventKind::kAbort, 4, 0, 0, 200, 1),
      mk(1400, 0, EventKind::kWindowCommit, 1, 0, kNoEnemy, 3, 3),
      mk(1500, 0, EventKind::kCommit, 1, 0, kNoEnemy, 500, 500),
      mk(1600, 0, EventKind::kCiUpdate, 1, 1, kNoEnemy, pack_double(2.0), pack_double(0.5)),
      mk(1700, 0, EventKind::kBegin, 2),  // left open: run stopped mid-attempt
  };
  std::stringstream out;
  write_chrome_json(events, out);
  const std::string text = out.str();

  ASSERT_NO_THROW(MiniJson::validate(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos) << "expected duration events";
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos) << "expected a counter event";
  EXPECT_NE(text.find("tx(abort)"), std::string::npos);
  EXPECT_NE(text.find("\"killer\":0"), std::string::npos);
}

TEST(Sink, WriteTraceFilePicksFormatByExtension) {
  const std::vector<Event> events{mk(10, 0, EventKind::kBegin, 1),
                                  mk(20, 0, EventKind::kCommit, 1)};
  const std::string dir = ::testing::TempDir();
  const std::string bin_path = dir + "/wstm_trace_test.bin";
  const std::string json_path = dir + "/wstm_trace_test.json";

  ASSERT_TRUE(write_trace_file(bin_path, events));
  std::ifstream bin(bin_path, std::ios::binary);
  EXPECT_EQ(read_binary(bin).size(), 2u);

  ASSERT_TRUE(write_trace_file(json_path, events));
  std::ifstream json(json_path);
  std::stringstream text;
  text << json.rdbuf();
  ASSERT_NO_THROW(MiniJson::validate(text.str()));
}

// ---- analyzer -------------------------------------------------------------

TEST(Analyzer, AttributesKillersAndChainsAcrossThreads) {
  // Thread 2 kills thread 0's attempt; thread 0 (before dying) kills thread
  // 1's. Expected chain depths: t0 attempt = 1, t1 attempt = 2.
  constexpr auto kKill =
      pack_conflict(stm::ConflictKind::kWriteWrite, stm::Resolution::kAbortEnemy);
  std::vector<Event> events{
      mk(100, 0, EventKind::kBegin, 5),
      mk(105, 2, EventKind::kBegin, 1),
      mk(110, 1, EventKind::kBegin, 7),
      mk(120, 0, EventKind::kConflict, 5, kKill, 1, 7),
      mk(130, 1, EventKind::kAbort, 7, 0, kNoEnemy, 20),
      mk(135, 2, EventKind::kConflict, 1, kKill, 0, 5),
      mk(140, 0, EventKind::kAbort, 5, 0, kNoEnemy, 40),
      mk(145, 2, EventKind::kCommit, 1, 0, kNoEnemy, 40, 40),
      mk(150, 1, EventKind::kBegin, 8, 1),
      mk(160, 1, EventKind::kCommit, 8, 0, kNoEnemy, 10, 50),
  };
  Analyzer an(events);

  ASSERT_EQ(an.attempts().size(), 4u);
  const Attempt* t0 = nullptr;
  const Attempt* t1 = nullptr;
  for (const Attempt& a : an.attempts()) {
    if (a.thread == 0 && a.serial == 5) t0 = &a;
    if (a.thread == 1 && a.serial == 7) t1 = &a;
  }
  ASSERT_NE(t0, nullptr);
  ASSERT_NE(t1, nullptr);

  EXPECT_EQ(t1->killer_slot, 0u);
  EXPECT_EQ(t1->killer_serial, 5u);
  EXPECT_EQ(t1->chain_depth, 2u) << "killer was itself killed";
  EXPECT_EQ(t0->killer_slot, 2u);
  EXPECT_EQ(t0->chain_depth, 1u);

  const auto wasted = an.wasted_by_killer();
  EXPECT_EQ(wasted.at(0), 20);  // t1's 20ns attempt, charged to thread 0
  EXPECT_EQ(wasted.at(2), 40);  // t0's 40ns attempt, charged to thread 2
  EXPECT_EQ(an.threads().at(0).caused_wasted_ns, 20);
  EXPECT_EQ(an.threads().at(2).caused_wasted_ns, 40);

  const auto hist = an.chain_depth_histogram();
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 1u);

  EXPECT_FALSE(an.summary().empty());
}

TEST(Analyzer, FrameOccupancyCountsHighEntriesAndBadCommits) {
  std::vector<Event> events{
      mk(100, 0, EventKind::kBegin, 1),
      mk(110, 0, EventKind::kPrioritySwitch, 1, 0, kNoEnemy, 3, 3),
      mk(115, 1, EventKind::kBegin, 1),
      mk(120, 1, EventKind::kPrioritySwitch, 1, 0, kNoEnemy, 3, 3),
      mk(130, 0, EventKind::kWindowCommit, 1, 0, kNoEnemy, 3, 3),
      mk(135, 0, EventKind::kCommit, 1, 0, kNoEnemy, 30, 30),
      mk(140, 1, EventKind::kWindowCommit, 1, 1, kNoEnemy, 3, 4),  // bad event
      mk(145, 1, EventKind::kCommit, 1, 0, kNoEnemy, 30, 30),
  };
  Analyzer an(events);
  ASSERT_EQ(an.frames().count(3), 1u);
  EXPECT_EQ(an.frames().at(3).high_entries, 2u);
  EXPECT_EQ(an.frames().at(3).distinct_threads, 2u);
  EXPECT_EQ(an.frames().at(3).commits, 1u);
  EXPECT_EQ(an.frames().at(4).commits, 1u);
  EXPECT_EQ(an.frames().at(4).bad_commits, 1u);
  EXPECT_EQ(an.high_high_frames(), 1u);
}

// ---- schedule checker -----------------------------------------------------

TEST(ScheduleChecker, RejectsLowBeatingHigh) {
  std::vector<Event> events{
      mk(100, 0, EventKind::kBegin, 1),
      mk(110, 0, EventKind::kResolve, 1, static_cast<std::uint8_t>(stm::Resolution::kAbortEnemy),
         1, 9, pack_resolve_prios(/*my_pc=*/1, /*my_p2=*/3, /*en_pc=*/0, /*en_p2=*/2)),
      mk(120, 0, EventKind::kCommit, 1),
  };
  const CheckResult r = ScheduleChecker::check(events);
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.violations.empty());
  EXPECT_NE(r.violations[0].find("LOW priority won against HIGH"), std::string::npos)
      << r.to_string();
}

TEST(ScheduleChecker, RejectsEarlyHighSwitchAndBackwardFrames) {
  std::vector<Event> events{
      mk(100, 0, EventKind::kBegin, 1),
      // Switched HIGH while the observed frame (3) was before the assigned
      // frame (5).
      mk(110, 0, EventKind::kPrioritySwitch, 1, 0, kNoEnemy, 5, 3),
      mk(120, 0, EventKind::kFrameAdvance, 1, 0, kNoEnemy, 2, 3),  // frame went backwards
      mk(130, 0, EventKind::kCommit, 1),
  };
  const CheckResult r = ScheduleChecker::check(events);
  EXPECT_EQ(r.total_violations, 2u) << r.to_string();
}

TEST(ScheduleChecker, RejectsBrokenLifecycle) {
  std::vector<Event> events{
      mk(100, 0, EventKind::kBegin, 2),
      mk(110, 0, EventKind::kBegin, 1),   // nested begin + serial going backwards
      mk(120, 0, EventKind::kCommit, 1),
      mk(130, 0, EventKind::kCommit, 1),  // close without an open attempt
  };
  const CheckResult r = ScheduleChecker::check(events);
  EXPECT_EQ(r.total_violations, 3u) << r.to_string();
}

TEST(ScheduleChecker, AcceptsMismatchedBadEventFlagOnlyWhenConsistent) {
  std::vector<Event> events{
      mk(100, 0, EventKind::kBegin, 1),
      mk(110, 0, EventKind::kWindowCommit, 1, /*bad=*/0, kNoEnemy, 3, 4),  // flag should be 1
      mk(120, 0, EventKind::kCommit, 1),
  };
  EXPECT_FALSE(ScheduleChecker::check(events).ok());
  events[1].detail = 1;
  EXPECT_TRUE(ScheduleChecker::check(events).ok());
}

// ---- live concurrent runs -------------------------------------------------

/// Runs the shared-counter workload under `cm_name` with a recorder attached
/// and returns the drained events.
std::vector<Event> record_counter_run(const std::string& cm_name, unsigned threads,
                                      int increments, Recorder& rec) {
  struct Cell {
    long value = 0;
  };
  cm::Params params;
  params.threads = threads;
  params.window_n = 8;
  stm::RuntimeConfig cfg;
  cfg.recorder = &rec;
  stm::Runtime rt(cm::make_manager(cm_name, params), cfg);
  stm::TObject<Cell> counter(Cell{0});

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      stm::ThreadCtx& tc = rt.attach_thread();
      for (int i = 0; i < increments; ++i) {
        rt.atomically(tc, [&](stm::Tx& tx) { counter.open_write(tx)->value += 1; });
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter.peek()->value, static_cast<long>(threads) * increments);
  return rec.drain_sorted();
}

TEST(TraceLive, ConcurrentRecordingMatchesMetricsAndLifecycle) {
  constexpr unsigned kThreads = 4;
  constexpr int kIncrements = 250;
  Recorder rec;
  const std::vector<Event> events =
      record_counter_run("Online", kThreads, kIncrements, rec);
  for (unsigned t = 0; t < kThreads; ++t) {
    EXPECT_EQ(rec.dropped(t), 0u) << "default capacity must hold this run";
  }

  std::uint64_t begins = 0, commits = 0, aborts = 0;
  for (const Event& e : events) {
    if (e.kind == EventKind::kBegin) begins++;
    if (e.kind == EventKind::kCommit) commits++;
    if (e.kind == EventKind::kAbort) aborts++;
  }
  EXPECT_EQ(commits, static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(begins, commits + aborts) << "every attempt must open and close";

  const CheckResult r = ScheduleChecker::check(events);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.events_checked, events.size());

  // The analyzer must agree with the raw counts.
  Analyzer an(events);
  std::uint64_t an_commits = 0;
  for (const auto& [slot, ts] : an.threads()) an_commits += ts.commits;
  EXPECT_EQ(an_commits, commits);
}

TEST(TraceLive, ScheduleCheckerPassesAllWindowVariants) {
  for (const char* cm : {"Online", "Online-Dynamic", "Adaptive", "Adaptive-Improved",
                         "Adaptive-Improved-Dynamic"}) {
    Recorder rec;
    const std::vector<Event> events = record_counter_run(cm, 4, 150, rec);
    const CheckResult r = ScheduleChecker::check(events);
    EXPECT_TRUE(r.ok()) << cm << ": " << r.to_string();
    EXPECT_GT(r.resolves_checked + 1, 0u);
  }
}

TEST(TraceLive, HarnessWritesTraceFilesThroughRunConfig) {
  auto w = harness::make_workload("list", 100, 64);
  harness::RunConfig cfg;
  cfg.threads = 2;
  cfg.duration_ms = 80;
  cfg.trace_path = ::testing::TempDir() + "/wstm_harness_trace.bin";
  const harness::RunResult r = harness::run_workload("Adaptive", cm::Params{}, *w, cfg);
  EXPECT_TRUE(r.valid) << r.why;

  std::ifstream in(cfg.trace_path, std::ios::binary);
  ASSERT_TRUE(in.good());
  const std::vector<Event> events = read_binary(in);
  EXPECT_FALSE(events.empty());
  const CheckResult check = ScheduleChecker::check(events);
  EXPECT_TRUE(check.ok()) << check.to_string();
}

}  // namespace
}  // namespace wstm::trace
