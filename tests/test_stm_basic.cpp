// Single-threaded semantics of the STM runtime: commit/abort visibility,
// read-own-write, transactional allocation, metrics accounting.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "cm/registry.hpp"
#include "stm/runtime.hpp"

namespace wstm::stm {
namespace {

struct Box {
  int value = 0;
};

std::unique_ptr<Runtime> make_runtime(const std::string& cm_name = "Aggressive") {
  cm::Params params;
  params.threads = 4;
  return std::make_unique<Runtime>(cm::make_manager(cm_name, params));
}

TEST(StmBasic, CommitMakesWritesVisible) {
  auto rt = make_runtime();
  ThreadCtx& tc = rt->attach_thread();
  TObject<Box> obj(Box{1});
  rt->atomically(tc, [&](Tx& tx) { obj.open_write(tx)->value = 42; });
  EXPECT_EQ(obj.peek()->value, 42);
  const int seen = rt->atomically(tc, [&](Tx& tx) { return obj.open_read(tx)->value; });
  EXPECT_EQ(seen, 42);
}

TEST(StmBasic, ReturnValuePropagates) {
  auto rt = make_runtime();
  ThreadCtx& tc = rt->attach_thread();
  const std::string s = rt->atomically(tc, [&](Tx&) { return std::string("hello"); });
  EXPECT_EQ(s, "hello");
}

TEST(StmBasic, ReadOwnWriteWithinTransaction) {
  auto rt = make_runtime();
  ThreadCtx& tc = rt->attach_thread();
  TObject<Box> obj(Box{5});
  rt->atomically(tc, [&](Tx& tx) {
    obj.open_write(tx)->value = 9;
    EXPECT_EQ(obj.open_read(tx)->value, 9);   // sees own write
    EXPECT_EQ(obj.open_write(tx)->value, 9);  // same clone again
  });
  EXPECT_EQ(obj.peek()->value, 9);
}

TEST(StmBasic, RestartRetriesTheBody) {
  auto rt = make_runtime();
  ThreadCtx& tc = rt->attach_thread();
  TObject<Box> obj(Box{0});
  int attempts = 0;
  rt->atomically(tc, [&](Tx& tx) {
    obj.open_write(tx)->value += 1;
    if (++attempts < 3) tx.restart();
  });
  EXPECT_EQ(attempts, 3);
  // Aborted attempts' writes were discarded: exactly one increment landed.
  EXPECT_EQ(obj.peek()->value, 1);
}

TEST(StmBasic, UserExceptionAbortsAndPropagates) {
  auto rt = make_runtime();
  ThreadCtx& tc = rt->attach_thread();
  TObject<Box> obj(Box{7});
  EXPECT_THROW(rt->atomically(tc,
                              [&](Tx& tx) {
                                obj.open_write(tx)->value = 100;
                                throw std::runtime_error("boom");
                              }),
               std::runtime_error);
  EXPECT_EQ(obj.peek()->value, 7);  // write rolled back
  EXPECT_EQ(rt->total_metrics().aborts, 1u);
}

TEST(StmBasic, MakeIsRolledBackOnAbort) {
  static int live = 0;
  struct Counted {
    Counted() { ++live; }
    Counted(const Counted&) { ++live; }
    ~Counted() { --live; }
  };
  auto rt = make_runtime();
  ThreadCtx& tc = rt->attach_thread();
  int attempts = 0;
  Counted* kept = nullptr;
  rt->atomically(tc, [&](Tx& tx) {
    kept = tx.make<Counted>();
    if (++attempts < 2) tx.restart();
  });
  // The first attempt's allocation was deleted on abort; the committed
  // attempt's survives and is owned by the caller.
  EXPECT_EQ(live, 1);
  delete kept;
  EXPECT_EQ(live, 0);
}

TEST(StmBasic, RetireOnCommitFreesAfterGrace) {
  static int destroyed = 0;
  struct Tracked {
    ~Tracked() { ++destroyed; }
  };
  destroyed = 0;
  {
    auto rt = make_runtime();
    ThreadCtx& tc = rt->attach_thread();
    auto* obj = new Tracked();
    rt->atomically(tc, [&](Tx& tx) { tx.retire_on_commit(obj); });
    rt->detach_thread(tc);
  }  // runtime teardown drains the EBR domain
  EXPECT_EQ(destroyed, 1);
}

TEST(StmBasic, RetireOnCommitSkippedOnAbort) {
  static int destroyed = 0;
  struct Tracked {
    ~Tracked() { ++destroyed; }
  };
  destroyed = 0;
  auto rt = make_runtime();
  ThreadCtx& tc = rt->attach_thread();
  auto* obj = new Tracked();
  int attempts = 0;
  rt->atomically(tc, [&](Tx& tx) {
    if (++attempts < 2) {
      tx.retire_on_commit(obj);
      tx.restart();  // retire request must be dropped
    }
  });
  EXPECT_EQ(destroyed, 0);
  delete obj;
}

TEST(StmBasic, MetricsCountCommitsAndAborts) {
  auto rt = make_runtime();
  ThreadCtx& tc = rt->attach_thread();
  TObject<Box> obj(Box{0});
  int attempts = 0;
  rt->atomically(tc, [&](Tx& tx) {
    obj.open_write(tx)->value++;
    if (++attempts < 4) tx.restart();
  });
  const ThreadMetrics m = rt->total_metrics();
  EXPECT_EQ(m.commits, 1u);
  EXPECT_EQ(m.aborts, 3u);
  EXPECT_GT(m.committed_ns, 0);
  EXPECT_GT(m.response_ns, 0);
}

TEST(StmBasic, ResetMetricsClears) {
  auto rt = make_runtime();
  ThreadCtx& tc = rt->attach_thread();
  TObject<Box> obj(Box{0});
  rt->atomically(tc, [&](Tx& tx) { obj.open_write(tx)->value = 1; });
  rt->reset_metrics();
  EXPECT_EQ(rt->total_metrics().commits, 0u);
}

TEST(StmBasic, SequentialTransactionsOnManyObjects) {
  auto rt = make_runtime();
  ThreadCtx& tc = rt->attach_thread();
  std::vector<std::unique_ptr<TObject<Box>>> objs;
  for (int i = 0; i < 50; ++i) objs.push_back(std::make_unique<TObject<Box>>(Box{i}));
  rt->atomically(tc, [&](Tx& tx) {
    for (auto& o : objs) o->open_write(tx)->value *= 2;
  });
  for (int i = 0; i < 50; ++i) EXPECT_EQ(objs[static_cast<std::size_t>(i)]->peek()->value, 2 * i);
}

TEST(StmBasic, RuntimeRequiresManager) {
  EXPECT_THROW(Runtime(nullptr), std::invalid_argument);
}

TEST(StmBasic, SlotExhaustionThrows) {
  auto rt = make_runtime();
  std::vector<ThreadCtx*> ctxs;
  for (unsigned i = 0; i < Runtime::kMaxThreads; ++i) ctxs.push_back(&rt->attach_thread());
  EXPECT_THROW(rt->attach_thread(), std::runtime_error);
  rt->detach_thread(*ctxs.back());
  EXPECT_NO_THROW(rt->attach_thread());
}

TEST(StmBasic, DetachThreadTwiceIsSafe) {
  auto rt = make_runtime();
  ThreadCtx& tc = rt->attach_thread();
  TObject<Box> obj(Box{0});
  rt->atomically(tc, [&](Tx& tx) { obj.open_write(tx)->value = 1; });
  rt->detach_thread(tc);
  rt->detach_thread(tc);  // second detach of the same context is a no-op
  // The slot is reusable, and the retired context stays valid until the
  // runtime dies (so a stale reference cannot dangle).
  ThreadCtx& tc2 = rt->attach_thread();
  rt->atomically(tc2, [&](Tx& tx) { obj.open_write(tx)->value = 2; });
  EXPECT_EQ(obj.peek()->value, 2);
  rt->detach_thread(tc2);
  rt->detach_thread(tc);  // still a no-op after the slot was recycled
  // Runtime destruction must not double-detach either context.
}

TEST(StmBasic, PoolingOffMatchesSemantics) {
  RuntimeConfig cfg;
  cfg.pooling = false;
  cm::Params params;
  params.threads = 4;
  Runtime rt(cm::make_manager("Aggressive", params), cfg);
  ThreadCtx& tc = rt.attach_thread();
  TObject<Box> obj(Box{3});
  for (int i = 0; i < 100; ++i) {
    rt.atomically(tc, [&](Tx& tx) { obj.open_write(tx)->value += 1; });
  }
  EXPECT_EQ(obj.peek()->value, 103);
  EXPECT_EQ(rt.total_metrics().commits, 100u);
}

TEST(StmBasic, SummarizeComputesDerivedMetrics) {
  ThreadMetrics t;
  t.commits = 100;
  t.aborts = 50;
  t.wasted_ns = 250;
  t.committed_ns = 750;
  t.response_ns = 100 * 2000;
  const MetricsSummary s = summarize(t, 1'000'000'000);  // 1 s
  EXPECT_DOUBLE_EQ(s.throughput_per_s, 100.0);
  EXPECT_DOUBLE_EQ(s.aborts_per_commit, 0.5);
  EXPECT_DOUBLE_EQ(s.wasted_fraction, 0.25);
  EXPECT_DOUBLE_EQ(s.mean_response_us, 2.0);
}

}  // namespace
}  // namespace wstm::stm
