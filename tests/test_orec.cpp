// Orec backend (src/stm/orec/): TL2-style lazy versioning behind the Backend
// concept — read sandwiches + rv extension, redo-log write buffering,
// commit-time lock acquisition with CM arbitration, and the liveness
// ladder's irrevocable serial fallback on the orec commit path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cm/registry.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "stm/runtime.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"

namespace wstm::stm {
namespace {

std::unique_ptr<Runtime> make_orec_runtime(const std::string& cm = "Polka",
                                           unsigned threads = 4,
                                           std::uint32_t orec_table_bits = 16) {
  cm::Params params;
  params.threads = threads;
  RuntimeConfig cfg;
  cfg.backend = BackendKind::kOrec;
  cfg.orec_table_bits = orec_table_bits;
  return std::make_unique<Runtime>(cm::make_manager(cm, params), cfg);
}

TEST(OrecBasic, ReadWriteCommitAndParse) {
  EXPECT_EQ(parse_backend("dstm"), BackendKind::kDstm);
  EXPECT_EQ(parse_backend("orec"), BackendKind::kOrec);
  EXPECT_THROW(parse_backend("tl3"), std::invalid_argument);

  auto rt = make_orec_runtime();
  EXPECT_EQ(rt->backend_kind(), BackendKind::kOrec);
  ThreadCtx& tc = rt->attach_thread();
  TObject<long> obj(10);
  const long v = rt->atomically(tc, [&](Tx& tx) { return *obj.open_read(tx); });
  EXPECT_EQ(v, 10);
  rt->atomically(tc, [&](Tx& tx) { *obj.open_write(tx) = 20; });
  EXPECT_EQ(*obj.peek(), 20);  // quiescent_version must follow orec_body_
  rt->atomically(tc, [&](Tx& tx) { *obj.open_write(tx) = 30; });
  EXPECT_EQ(*obj.peek(), 30);  // second write-back retires the first body
  const ThreadMetrics m = rt->total_metrics();
  EXPECT_EQ(m.aborts, 0u);
  EXPECT_EQ(m.orec_write_backs, 2u);
  EXPECT_EQ(m.orec_lock_acquires, 2u);
}

TEST(OrecBasic, ReadYourWritesAndUpgrade) {
  auto rt = make_orec_runtime();
  ThreadCtx& tc = rt->attach_thread();
  TObject<long> obj(1);
  rt->atomically(tc, [&](Tx& tx) {
    EXPECT_EQ(*obj.open_read(tx), 1);
    *obj.open_write(tx) = 2;         // redo clone, nothing locked yet
    EXPECT_EQ(*obj.open_read(tx), 2);  // read-own-writes via the write log
    EXPECT_EQ(*obj.peek(), 1);       // not committed: the clone is private
  });
  EXPECT_EQ(*obj.peek(), 2);
  EXPECT_EQ(rt->total_metrics().aborts, 0u);
}

TEST(OrecBasic, RestartDropsBufferedWrites) {
  auto rt = make_orec_runtime();
  ThreadCtx& tc = rt->attach_thread();
  TObject<long> obj(5);
  int attempts = 0;
  rt->atomically(tc, [&](Tx& tx) {
    *obj.open_write(tx) = 99;
    if (attempts++ == 0) tx.restart();  // clone must be dropped, not leaked
    *obj.open_write(tx) = 7;
  });
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(*obj.peek(), 7);
  EXPECT_EQ(rt->total_metrics().aborts, 1u);
}

// A read-only transaction whose snapshot is overtaken mid-flight must extend
// (not abort) when the overtaking commit left its read set intact.
TEST(OrecBasic, RemoteCommitForcesExtensionNotAbort) {
  auto rt = make_orec_runtime("Polka", 2);
  TObject<long> x(3);
  TObject<long> y(0);

  std::atomic<bool> reader_read_x{false};
  std::atomic<bool> writer_done{false};

  std::thread reader([&] {
    ThreadCtx& tc = rt->attach_thread();
    const auto pair = rt->atomically(tc, [&](Tx& tx) {
      const long a = *x.open_read(tx);
      if (!reader_read_x.exchange(true, std::memory_order_acq_rel)) {
        while (!writer_done.load(std::memory_order_acquire)) std::this_thread::yield();
      }
      const long b = *y.open_read(tx);  // version > rv: extension pass here
      return std::pair<long, long>(a, b);
    });
    EXPECT_EQ(pair.first, 3);
    EXPECT_EQ(pair.second, 7);
  });

  while (!reader_read_x.load(std::memory_order_acquire)) std::this_thread::yield();
  {
    ThreadCtx& tc = rt->attach_thread();
    rt->atomically(tc, [&](Tx& tx) { *y.open_write(tx) = 7; });  // x untouched
    rt->detach_thread(tc);
  }
  writer_done.store(true, std::memory_order_release);
  reader.join();

  const ThreadMetrics m = rt->total_metrics();
  EXPECT_EQ(m.aborts, 0u);
  EXPECT_GE(m.extensions, 1u);
}

// A torn (old x, new y) view must never commit: after the writer moves both
// objects, the reader's second open either extends onto the new snapshot
// (seeing both new values) or validation kills the attempt.
TEST(OrecBasic, NoTornSnapshotAcrossRemoteCommit) {
  auto rt = make_orec_runtime("Aggressive", 2);
  TObject<long> x(0);
  TObject<long> y(0);

  std::atomic<bool> reader_read_x{false};
  std::atomic<bool> writer_done{false};
  std::atomic<int> reader_attempts{0};

  std::thread reader([&] {
    ThreadCtx& tc = rt->attach_thread();
    const auto pair = rt->atomically(tc, [&](Tx& tx) {
      const int attempt = reader_attempts.fetch_add(1, std::memory_order_acq_rel);
      const long a = *x.open_read(tx);
      if (attempt == 0) {
        reader_read_x.store(true, std::memory_order_release);
        while (!writer_done.load(std::memory_order_acquire)) std::this_thread::yield();
      }
      const long b = *y.open_read(tx);
      return std::pair<long, long>(a, b);
    });
    EXPECT_EQ(pair.first, pair.second) << "torn (old, new) view committed";
    EXPECT_EQ(pair.first, 7);
  });

  while (!reader_read_x.load(std::memory_order_acquire)) std::this_thread::yield();
  {
    ThreadCtx& tc = rt->attach_thread();
    rt->atomically(tc, [&](Tx& tx) {
      *x.open_write(tx) = 7;
      *y.open_write(tx) = 7;
    });
    rt->detach_thread(tc);
  }
  writer_done.store(true, std::memory_order_release);
  reader.join();
}

// ---- harness matrix ---------------------------------------------------------

// Every benchmark structure survives a concurrent churn on the orec backend
// with the post-run invariant check; a 4-orec table forces constant false
// sharing of locks, exercising the collision dedup in acquire_locks.
class OrecWorkloads : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(Structs, OrecWorkloads,
                         ::testing::Values("list", "rbtree", "skiplist", "hashtable"),
                         [](const auto& info) { return info.param; });

TEST_P(OrecWorkloads, ConcurrentChurnValidates) {
  for (const std::uint32_t table_bits : {16u, 2u}) {
    auto workload = harness::make_workload(GetParam(), /*update_percent=*/100,
                                           /*key_range=*/64, /*zipf_alpha=*/0.0);
    harness::RunConfig run;
    run.threads = 4;
    run.duration_ms = 150;
    run.backend = "orec";
    run.seed = 7 + table_bits;
    // RunConfig has no orec_table_bits knob (the default is right for real
    // runs); drive the collision case through the runtime directly instead.
    if (table_bits == 16) {
      const harness::RunResult r =
          harness::run_workload("Polka", cm::Params{}, *workload, run);
      EXPECT_TRUE(r.valid) << GetParam() << ": " << r.why;
      EXPECT_GT(r.totals.commits, 0u) << GetParam();
      EXPECT_GT(r.totals.orec_write_backs, 0u) << GetParam();
    } else {
      cm::Params params;
      params.threads = 4;
      RuntimeConfig cfg;
      cfg.backend = BackendKind::kOrec;
      cfg.orec_table_bits = 2;  // 4 orecs: every commit collides
      Runtime rt(cm::make_manager("Polka", params), cfg);
      {
        ThreadCtx& tc = rt.attach_thread();
        workload->populate(rt, tc);
        rt.detach_thread(tc);
      }
      std::atomic<bool> stop{false};
      std::vector<std::thread> workers;
      for (unsigned t = 0; t < 4; ++t) {
        workers.emplace_back([&, t] {
          ThreadCtx& tc = rt.attach_thread();
          Xoshiro256 rng(0x5eedu + t);
          while (!stop.load(std::memory_order_acquire)) {
            workload->run_one(rt, tc, rng);
          }
        });
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      stop.store(true, std::memory_order_release);
      for (auto& w : workers) w.join();
      std::string why;
      EXPECT_TRUE(workload->validate(&why)) << GetParam() << " @4 orecs: " << why;
      EXPECT_GT(rt.total_metrics().commits, 0u);
    }
  }
}

// ---- liveness: the serial-fallback token on the orec commit path -----------
// (ISSUE 8 satellite: irrevocable attempts bypass lock stealing.)

struct Cell {
  long value = 0;
};

void spin_ns(std::int64_t ns) {
  const std::int64_t until = now_ns() + ns;
  while (now_ns() < until) {
  }
}

TEST(OrecLiveness, LongWriterClimbsLadderAndCommitsIrrevocably) {
  // Orec mirror of the DSTM starvation regression: one long writer that
  // keeps losing to quick enemies must climb the ladder to the irrevocable
  // token and then commit — which on this backend requires that (a) an
  // irrevocable committer steals contended orec locks by killing active
  // holders, and (b) nobody steals the token holder's own commit locks
  // (try_abort refuses irrevocable targets), so its write-back always
  // completes. Exactness of both counters proves no lost updates either way.
  constexpr int kMinLongCommits = 6;
  constexpr int kMaxLongCommits = 80;
  constexpr unsigned kShortThreads = 3;

  cm::Params params;
  params.threads = kShortThreads + 1;
  params.window_n = 8;
  RuntimeConfig cfg;
  cfg.backend = BackendKind::kOrec;
  cfg.liveness.enabled = true;
  cfg.liveness.backoff_after = 1;
  cfg.liveness.boost_after = 4;
  cfg.liveness.serial_after = 4;
  cfg.liveness.backoff_base_us = 1;
  cfg.liveness.backoff_cap_us = 20;
  cfg.liveness.deadline_ns = 60'000'000'000;
  cfg.liveness.watchdog_period_ns = 100'000;
  cfg.liveness.stall_timeout_ns = 2'000'000'000;
  cfg.liveness.storm_threshold = 2;
  Runtime rt(cm::make_manager("Polka", params), cfg);
  TObject<Cell> counter(Cell{0});

  constexpr long kBig = 1'000'000'000;
  std::atomic<bool> stop_short{false};
  std::atomic<long> short_total{0};
  std::vector<std::thread> shorts;
  for (unsigned t = 0; t < kShortThreads; ++t) {
    shorts.emplace_back([&] {
      ThreadCtx& tc = rt.attach_thread();
      while (!stop_short.load(std::memory_order_acquire)) {
        rt.atomically(tc, [&](Tx& tx) { counter.open_write(tx)->value += 1; });
        short_total.fetch_add(1, std::memory_order_acq_rel);
      }
    });
  }

  int long_commits = 0;
  {
    ThreadCtx& tc = rt.attach_thread();
    while (long_commits < kMaxLongCommits) {
      rt.atomically(tc, [&](Tx& tx) {
        Cell* c = counter.open_write(tx);
        for (int s = 0; s < 60; ++s) {  // ~300 us held, yielding throughout
          spin_ns(5'000);
          std::this_thread::yield();
        }
        c->value += kBig;
      });
      ++long_commits;
      if (long_commits >= kMinLongCommits && tc.metrics().serial_fallbacks > 0 &&
          rt.liveness()->stats().storms_flagged > 0) {
        break;
      }
    }
    stop_short.store(true, std::memory_order_release);
  }
  for (auto& w : shorts) w.join();

  const long final_value = counter.peek()->value;
  EXPECT_EQ(final_value / kBig, long_commits) << "long-writer commits lost";
  EXPECT_EQ(final_value % kBig, short_total.load()) << "short-writer commits lost";

  const ThreadMetrics totals = rt.total_metrics();
  EXPECT_GT(totals.escalations, 0u) << "ladder never engaged on orec";
  EXPECT_GT(totals.serial_fallbacks, 0u)
      << "starved writer never reached the irrevocable level on orec";
  EXPECT_GT(totals.orec_write_backs, 0u);
  EXPECT_EQ(totals.timeouts, 0u);

  const resilience::LivenessManager::Stats ls = rt.liveness()->stats();
  EXPECT_LE(ls.max_token_holders, 1u);
  EXPECT_EQ(ls.token_overlap_violations, 0u);
}

}  // namespace
}  // namespace wstm::stm
