// Unit tests for the utility layer: RNG, statistics, CLI, tables, backoff.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/backoff.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace wstm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenIsInclusive) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values hit
}

TEST(Rng, Uniform01Bounds) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Xoshiro256 rng(17);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) counts[rng.below(kBuckets)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Stats, WelfordMatchesDirectComputation) {
  RunningStats s;
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  double sum = 0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
}

TEST(Stats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(Stats, PercentileEmptyIsZero) { EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0); }

TEST(Stats, MeanAndGeomean) {
  EXPECT_DOUBLE_EQ(mean_of({2, 4, 6}), 4.0);
  EXPECT_NEAR(geomean_of({1, 8}), std::sqrt(8.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(Cli, ParsesTypedFlags) {
  Cli cli;
  cli.add_flag("name", "a string", std::string("x"));
  cli.add_flag("count", "an int", static_cast<std::int64_t>(3));
  cli.add_flag("ratio", "a double", 0.5);
  cli.add_flag("fast", "a bool", false);
  const char* argv[] = {"prog", "--name=hello", "--count", "42", "--ratio=1.25", "--fast"};
  ASSERT_TRUE(cli.parse(6, argv));
  EXPECT_EQ(cli.get_string("name"), "hello");
  EXPECT_EQ(cli.get_int("count"), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio"), 1.25);
  EXPECT_TRUE(cli.get_bool("fast"));
}

TEST(Cli, DefaultsSurviveWhenUnset) {
  Cli cli;
  cli.add_flag("count", "an int", static_cast<std::int64_t>(3));
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("count"), 3);
}

TEST(Cli, RejectsUnknownFlag) {
  Cli cli;
  cli.add_flag("count", "an int", static_cast<std::int64_t>(3));
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, NegatedBoolean) {
  Cli cli;
  cli.add_flag("fast", "a bool", true);
  const char* argv[] = {"prog", "--no-fast"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_FALSE(cli.get_bool("fast"));
}

TEST(Cli, IntAndStringLists) {
  Cli cli;
  cli.add_flag("threads", "list", std::string("1,2,4"));
  cli.add_flag("cms", "list", std::string("Polka,Greedy"));
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int_list("threads"), (std::vector<std::int64_t>{1, 2, 4}));
  EXPECT_EQ(cli.get_string_list("cms"), (std::vector<std::string>{"Polka", "Greedy"}));
}

TEST(Table, AlignsAndCountsRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("333"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvQuotesSpecials) {
  Table t({"x"});
  t.add_row({"a,b"});
  EXPECT_NE(t.to_csv().find("\"a,b\""), std::string::npos);
}

TEST(Backoff, RoundsAdvanceAndReset) {
  Backoff b(4, 4);
  for (int i = 0; i < 10; ++i) b.pause();
  EXPECT_EQ(b.rounds(), 10u);
  b.reset();
  EXPECT_EQ(b.rounds(), 0u);
}

TEST(Backoff, YieldUntilHonorsPredicate) {
  int calls = 0;
  const bool done = yield_until(std::chrono::milliseconds(50), [&] { return ++calls >= 2; });
  EXPECT_TRUE(done);
  EXPECT_GE(calls, 2);
}

}  // namespace
}  // namespace wstm
