// Vacation benchmark tests: manager semantics, client action mix, and
// concurrent consistency of the booking database.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "cm/registry.hpp"
#include "stm/runtime.hpp"
#include "vacation/client.hpp"
#include "vacation/manager.hpp"

namespace wstm::vacation {
namespace {

std::unique_ptr<stm::Runtime> make_runtime(const std::string& cm = "Polka",
                                           unsigned threads = 4) {
  cm::Params params;
  params.threads = threads;
  params.window_n = 16;
  return std::make_unique<stm::Runtime>(cm::make_manager(cm, params));
}

TEST(Reservation, CapacityAndBookingRules) {
  Reservation r;
  EXPECT_TRUE(r.add_capacity(3));
  EXPECT_EQ(r.num_free, 3);
  EXPECT_EQ(r.num_total, 3);
  EXPECT_TRUE(r.make());
  EXPECT_EQ(r.num_used, 1);
  EXPECT_FALSE(r.add_capacity(-3));  // would strand the used unit
  EXPECT_TRUE(r.add_capacity(-2));
  EXPECT_EQ(r.num_total, 1);
  EXPECT_FALSE(r.make());  // sold out
  EXPECT_TRUE(r.cancel());
  EXPECT_FALSE(r.cancel());  // nothing booked
  EXPECT_TRUE(r.invariant_ok());
}

class ManagerTest : public ::testing::Test {
 protected:
  ManagerTest() : rt_(make_runtime()), tc_(&rt_->attach_thread()) {}

  template <typename F>
  auto tx(F&& fn) {
    return rt_->atomically(*tc_, std::forward<F>(fn));
  }

  std::unique_ptr<stm::Runtime> rt_;
  stm::ThreadCtx* tc_;
  Manager mgr_;
};

TEST_F(ManagerTest, AddReservationCreatesUpdatesAndRemoves) {
  EXPECT_TRUE(tx([&](stm::Tx& t) { return mgr_.add_reservation(t, ReservationType::kCar, 1, 10, 50); }));
  EXPECT_EQ(tx([&](stm::Tx& t) { return mgr_.query_free(t, ReservationType::kCar, 1); }), 10);
  EXPECT_EQ(tx([&](stm::Tx& t) { return mgr_.query_price(t, ReservationType::kCar, 1); }), 50);
  // Grow + reprice.
  EXPECT_TRUE(tx([&](stm::Tx& t) { return mgr_.add_reservation(t, ReservationType::kCar, 1, 5, 60); }));
  EXPECT_EQ(tx([&](stm::Tx& t) { return mgr_.query_free(t, ReservationType::kCar, 1); }), 15);
  EXPECT_EQ(tx([&](stm::Tx& t) { return mgr_.query_price(t, ReservationType::kCar, 1); }), 60);
  // Shrink to zero removes the row.
  EXPECT_TRUE(tx([&](stm::Tx& t) { return mgr_.add_reservation(t, ReservationType::kCar, 1, -15, -1); }));
  EXPECT_EQ(tx([&](stm::Tx& t) { return mgr_.query_free(t, ReservationType::kCar, 1); }), -1);
}

TEST_F(ManagerTest, AddReservationRejectsBadCreation) {
  EXPECT_FALSE(tx([&](stm::Tx& t) { return mgr_.add_reservation(t, ReservationType::kRoom, 9, -5, 10); }));
  EXPECT_FALSE(tx([&](stm::Tx& t) { return mgr_.add_reservation(t, ReservationType::kRoom, 9, 5, -2); }));
}

TEST_F(ManagerTest, ReserveBooksAndBills) {
  tx([&](stm::Tx& t) {
    mgr_.add_reservation(t, ReservationType::kFlight, 7, 2, 300);
    mgr_.add_customer(t, 42);
  });
  EXPECT_TRUE(tx([&](stm::Tx& t) { return mgr_.reserve(t, ReservationType::kFlight, 42, 7); }));
  EXPECT_EQ(tx([&](stm::Tx& t) { return mgr_.query_free(t, ReservationType::kFlight, 7); }), 1);
  EXPECT_EQ(tx([&](stm::Tx& t) { return *mgr_.query_customer_bill(t, 42); }), 300);
  // Unknown customer / row.
  EXPECT_FALSE(tx([&](stm::Tx& t) { return mgr_.reserve(t, ReservationType::kFlight, 99, 7); }));
  EXPECT_FALSE(tx([&](stm::Tx& t) { return mgr_.reserve(t, ReservationType::kFlight, 42, 99); }));
  std::string why;
  EXPECT_TRUE(mgr_.quiescent_consistent(&why)) << why;
}

TEST_F(ManagerTest, ReserveFailsWhenSoldOut) {
  tx([&](stm::Tx& t) {
    mgr_.add_reservation(t, ReservationType::kRoom, 1, 1, 100);
    mgr_.add_customer(t, 1);
    mgr_.add_customer(t, 2);
  });
  EXPECT_TRUE(tx([&](stm::Tx& t) { return mgr_.reserve(t, ReservationType::kRoom, 1, 1); }));
  EXPECT_FALSE(tx([&](stm::Tx& t) { return mgr_.reserve(t, ReservationType::kRoom, 2, 1); }));
}

TEST_F(ManagerTest, CancelReleasesBooking) {
  tx([&](stm::Tx& t) {
    mgr_.add_reservation(t, ReservationType::kCar, 3, 1, 80);
    mgr_.add_customer(t, 5);
    mgr_.reserve(t, ReservationType::kCar, 5, 3);
  });
  EXPECT_TRUE(tx([&](stm::Tx& t) { return mgr_.cancel(t, ReservationType::kCar, 5, 3); }));
  EXPECT_EQ(tx([&](stm::Tx& t) { return mgr_.query_free(t, ReservationType::kCar, 3); }), 1);
  EXPECT_EQ(tx([&](stm::Tx& t) { return *mgr_.query_customer_bill(t, 5); }), 0);
  EXPECT_FALSE(tx([&](stm::Tx& t) { return mgr_.cancel(t, ReservationType::kCar, 5, 3); }));
  std::string why;
  EXPECT_TRUE(mgr_.quiescent_consistent(&why)) << why;
}

TEST_F(ManagerTest, DeleteCustomerReleasesEverything) {
  tx([&](stm::Tx& t) {
    mgr_.add_reservation(t, ReservationType::kCar, 1, 1, 10);
    mgr_.add_reservation(t, ReservationType::kRoom, 2, 1, 20);
    mgr_.add_customer(t, 9);
    mgr_.reserve(t, ReservationType::kCar, 9, 1);
    mgr_.reserve(t, ReservationType::kRoom, 9, 2);
  });
  const auto bill = tx([&](stm::Tx& t) { return mgr_.delete_customer(t, 9); });
  EXPECT_EQ(bill, std::optional<long>(30));
  EXPECT_EQ(tx([&](stm::Tx& t) { return mgr_.query_free(t, ReservationType::kCar, 1); }), 1);
  EXPECT_EQ(tx([&](stm::Tx& t) { return mgr_.query_free(t, ReservationType::kRoom, 2); }), 1);
  EXPECT_EQ(tx([&](stm::Tx& t) { return mgr_.delete_customer(t, 9); }), std::nullopt);
  std::string why;
  EXPECT_TRUE(mgr_.quiescent_consistent(&why)) << why;
}

TEST_F(ManagerTest, CannotRetireUsedCapacity) {
  tx([&](stm::Tx& t) {
    mgr_.add_reservation(t, ReservationType::kFlight, 4, 1, 10);
    mgr_.add_customer(t, 1);
    mgr_.reserve(t, ReservationType::kFlight, 1, 4);
  });
  EXPECT_FALSE(tx([&](stm::Tx& t) { return mgr_.add_reservation(t, ReservationType::kFlight, 4, -1, -1); }));
  std::string why;
  EXPECT_TRUE(mgr_.quiescent_consistent(&why)) << why;
}

TEST(VacationClient, PopulateFillsTables) {
  auto rt = make_runtime();
  stm::ThreadCtx& tc = rt->attach_thread();
  Manager mgr;
  ClientConfig cfg;
  cfg.relations = 16;
  Client client(mgr, cfg);
  client.populate(*rt, tc);
  for (int t = 0; t < kNumReservationTypes; ++t) {
    EXPECT_EQ(mgr.table(static_cast<ReservationType>(t)).quiescent_entries().size(), 16u);
  }
  EXPECT_EQ(mgr.customers().quiescent_entries().size(), 16u);
  std::string why;
  EXPECT_TRUE(mgr.quiescent_consistent(&why)) << why;
}

TEST(VacationClient, SingleThreadedActionMixStaysConsistent) {
  auto rt = make_runtime();
  stm::ThreadCtx& tc = rt->attach_thread();
  Manager mgr;
  Client client(mgr, high_contention_config());
  client.populate(*rt, tc);
  Xoshiro256 rng(5);
  int made = 0, deleted = 0, updated = 0;
  for (int i = 0; i < 600; ++i) {
    switch (client.run_one(*rt, tc, rng)) {
      case Client::Action::kMakeReservation: ++made; break;
      case Client::Action::kDeleteCustomer: ++deleted; break;
      case Client::Action::kUpdateTables: ++updated; break;
    }
  }
  // The mix must include every action type at these counts.
  EXPECT_GT(made, 0);
  EXPECT_GT(deleted, 0);
  EXPECT_GT(updated, 0);
  std::string why;
  EXPECT_TRUE(mgr.quiescent_consistent(&why)) << why;
}

class VacationConcurrent : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(Cms, VacationConcurrent,
                         ::testing::Values("Polka", "Greedy", "Priority", "Online-Dynamic",
                                           "Adaptive-Improved-Dynamic"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST_P(VacationConcurrent, DatabaseStaysConsistentUnderContention) {
  constexpr unsigned kThreads = 4;
  auto rt = make_runtime(GetParam(), kThreads);
  Manager mgr;
  Client client(mgr, high_contention_config());
  {
    stm::ThreadCtx& tc = rt->attach_thread();
    client.populate(*rt, tc);
    rt->detach_thread(tc);
  }
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      stm::ThreadCtx& tc = rt->attach_thread();
      Xoshiro256 rng(31 + t);
      for (int i = 0; i < 150; ++i) client.run_one(*rt, tc, rng);
    });
  }
  for (auto& w : workers) w.join();
  std::string why;
  EXPECT_TRUE(mgr.quiescent_consistent(&why)) << why;
}

}  // namespace
}  // namespace wstm::vacation
