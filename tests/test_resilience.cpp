// Liveness layer (src/resilience/): serial-fallback token mutual exclusion,
// starvation escalation up to the irrevocable level, hard deadlines, the
// stall watchdog, quiescence-safe shutdown, chaos injection, and the
// harness's worker-exception reporting.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cm/registry.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "resilience/chaos.hpp"
#include "resilience/errors.hpp"
#include "resilience/liveness.hpp"
#include "stm/runtime.hpp"
#include "util/timing.hpp"

namespace wstm {
namespace {

using resilience::LivenessConfig;
using resilience::LivenessManager;
using resilience::RuntimeStoppedError;
using resilience::TxTimeoutError;
using stm::Runtime;
using stm::ThreadCtx;
using stm::TObject;
using stm::Tx;

struct Cell {
  long value = 0;
};

void spin_ns(std::int64_t ns) {
  const std::int64_t until = now_ns() + ns;
  while (now_ns() < until) {
  }
}

// ---- serial-fallback token (mechanism unit test) ---------------------------

TEST(SerialToken, NeverAdmitsTwoHolders) {
  LivenessManager lm(LivenessConfig{});
  constexpr unsigned kThreads = 8;
  constexpr int kRounds = 4000;
  std::atomic<int> inside{0};
  std::atomic<int> overlap_seen{0};

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        if (!lm.try_acquire_token(t)) continue;
        if (inside.fetch_add(1, std::memory_order_acq_rel) != 0) {
          overlap_seen.fetch_add(1, std::memory_order_relaxed);
        }
        inside.fetch_sub(1, std::memory_order_acq_rel);
        lm.release_token(t);
      }
    });
  }
  for (auto& w : workers) w.join();

  const LivenessManager::Stats s = lm.stats();
  EXPECT_EQ(overlap_seen.load(), 0);
  EXPECT_GT(s.token_acquisitions, 0u);
  EXPECT_LE(s.max_token_holders, 1u);
  EXPECT_EQ(s.token_overlap_violations, 0u);
  EXPECT_EQ(lm.token_owner(), -1);
}

// ---- user exception escaping an irrevocable attempt ------------------------

struct UserError : std::runtime_error {
  UserError() : std::runtime_error("user error from irrevocable attempt") {}
};

TEST(SerialToken, UserExceptionEscapingIrrevocableAttemptDemotes) {
  // Climb the ladder to the irrevocable level via restart(), then throw a
  // user (non-TxAbort) exception out of the serial attempt. The unwind must
  // demote before finalizing: release the token and abort the descriptor.
  // Regression: try_abort refuses while the irrevocable flag is set, so an
  // un-demoted unwind left a permanently kActive descriptor that a Greedy
  // enemy would wait on forever (here: until the liveness deadline).
  cm::Params params;
  params.threads = 2;
  stm::RuntimeConfig cfg;
  cfg.liveness.enabled = true;
  cfg.liveness.backoff_after = 1;
  cfg.liveness.boost_after = 2;
  cfg.liveness.serial_after = 3;
  cfg.liveness.backoff_base_us = 0;
  cfg.liveness.deadline_ns = 5'000'000'000;  // bounds the failure mode
  cfg.liveness.watchdog_period_ns = 0;       // worker-driven ladder only
  Runtime rt(cm::make_manager("Greedy", params), cfg);
  TObject<Cell> cell(Cell{0});

  ThreadCtx& tc = rt.attach_thread();
  bool was_irrevocable = false;
  EXPECT_THROW(rt.atomically(tc,
                             [&](Tx& tx) {
                               cell.open_write(tx)->value += 1;
                               if (tc.current()->irrevocable.load()) {
                                 was_irrevocable = true;
                                 throw UserError{};
                               }
                               tx.restart();  // climbs the ladder
                             }),
               UserError);
  ASSERT_TRUE(was_irrevocable) << "ladder never reached the serial level";

  // Token released and the published descriptor finalized (not kActive).
  EXPECT_EQ(rt.liveness()->token_owner(), -1);
  stm::TxDesc* stale = rt.tx_of_slot(tc.slot());
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->status.load(), stm::TxStatus::kAborted);
  EXPECT_FALSE(stale->irrevocable.load());

  // A conflicting enemy must get the object without waiting on the corpse.
  std::thread enemy([&] {
    ThreadCtx& etc = rt.attach_thread();
    rt.atomically(etc, [&](Tx& tx) { cell.open_write(tx)->value += 10; });
  });
  enemy.join();
  EXPECT_EQ(cell.peek()->value, 10);  // the thrown attempt's write rolled back
  EXPECT_EQ(rt.total_metrics().timeouts, 0u);

  // The escaped attempt ended the logical transaction: the next one starts
  // at level 0 and commits first try.
  rt.atomically(tc, [&](Tx& tx) { cell.open_write(tx)->value += 100; });
  EXPECT_EQ(cell.peek()->value, 110);
  EXPECT_EQ(rt.liveness()->token_owner(), -1);
}

// ---- starvation: escalation reaches the serial fallback --------------------

class StarvationCMs : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(CMs, StarvationCMs, ::testing::Values("Polka", "Adaptive"),
                         [](const auto& info) { return info.param; });

TEST_P(StarvationCMs, LongWriterClimbsLadderAndCommits) {
  // One long writer (holds the shared object while yielding, so it keeps
  // losing to quick enemies — the yields matter on single-core hosts, where
  // a pure busy-spin would never let the enemies run at all) against three
  // short writers hammering the same object. The liveness layer must walk
  // it up the ladder to the irrevocable token; the run must stay exact (no
  // lost updates) and the token single-holder. boost_after == serial_after
  // on purpose: a *working* boost level heals the storm before the token is
  // ever needed, so reaching the token in-test requires jumping over it
  // (the boost itself is still applied at level 3).
  constexpr int kMinLongCommits = 6;
  constexpr int kMaxLongCommits = 80;
  constexpr unsigned kShortThreads = 3;

  cm::Params params;
  params.threads = kShortThreads + 1;
  params.window_n = 8;
  stm::RuntimeConfig cfg;
  cfg.liveness.enabled = true;
  cfg.liveness.backoff_after = 1;
  cfg.liveness.boost_after = 4;
  cfg.liveness.serial_after = 4;
  cfg.liveness.backoff_base_us = 1;
  cfg.liveness.backoff_cap_us = 20;
  cfg.liveness.deadline_ns = 60'000'000'000;  // generous: never expected to fire
  cfg.liveness.watchdog_period_ns = 100'000;
  cfg.liveness.stall_timeout_ns = 2'000'000'000;  // no stall kicks in this test
  cfg.liveness.storm_threshold = 2;
  Runtime rt(cm::make_manager(GetParam(), params), cfg);
  TObject<Cell> counter(Cell{0});

  constexpr long kBig = 1'000'000'000;  // long-writer increments, > any short total
  std::atomic<bool> stop_short{false};
  std::atomic<long> short_total{0};
  std::vector<std::thread> shorts;
  for (unsigned t = 0; t < kShortThreads; ++t) {
    shorts.emplace_back([&] {
      // Sustained contention for the whole long-writer run.
      ThreadCtx& tc = rt.attach_thread();
      while (!stop_short.load(std::memory_order_acquire)) {
        rt.atomically(tc, [&](Tx& tx) { counter.open_write(tx)->value += 1; });
        short_total.fetch_add(1, std::memory_order_acq_rel);
      }
    });
  }

  int long_commits = 0;
  {
    ThreadCtx& tc = rt.attach_thread();
    while (long_commits < kMaxLongCommits) {
      rt.atomically(tc, [&](Tx& tx) {
        Cell* c = counter.open_write(tx);
        for (int s = 0; s < 60; ++s) {  // ~300 us held, yielding throughout
          spin_ns(5'000);
          std::this_thread::yield();
        }
        c->value += kBig;
      });
      ++long_commits;
      if (long_commits >= kMinLongCommits && tc.metrics().serial_fallbacks > 0 &&
          rt.liveness()->stats().storms_flagged > 0) {
        break;
      }
    }
    stop_short.store(true, std::memory_order_release);
  }
  for (auto& w : shorts) w.join();

  const long final_value = counter.peek()->value;
  EXPECT_EQ(final_value / kBig, long_commits) << "long-writer commits lost";
  EXPECT_EQ(final_value % kBig, short_total.load()) << "short-writer commits lost";

  const stm::ThreadMetrics totals = rt.total_metrics();
  EXPECT_GT(totals.escalations, 0u) << "ladder never engaged under " << GetParam();
  EXPECT_GT(totals.serial_fallbacks, 0u)
      << "starved writer never reached the irrevocable level under " << GetParam();
  EXPECT_EQ(totals.timeouts, 0u);

  const LivenessManager::Stats ls = rt.liveness()->stats();
  EXPECT_GT(ls.scans, 0u) << "watchdog thread never scanned";
  EXPECT_GT(ls.storms_flagged, 0u) << "watchdog never flagged the abort storm";
  EXPECT_LE(ls.max_token_holders, 1u);
  EXPECT_EQ(ls.token_overlap_violations, 0u);
}

// ---- hard deadline ---------------------------------------------------------

TEST(Deadline, BlockedTransactionThrowsTxTimeoutError) {
  // Under Greedy the younger transaction waits for the older one; with the
  // older one parked inside its transaction, the younger spins in kRetry
  // until the liveness deadline converts the wait into TxTimeoutError.
  cm::Params params;
  params.threads = 2;
  stm::RuntimeConfig cfg;
  cfg.liveness.enabled = true;
  cfg.liveness.deadline_ns = 50'000'000;  // 50 ms
  // Park the ladder far away so only the deadline is in play.
  cfg.liveness.backoff_after = 1'000'000;
  cfg.liveness.boost_after = 1'000'000;
  cfg.liveness.serial_after = 1'000'000;
  cfg.liveness.watchdog_period_ns = 0;
  Runtime rt(cm::make_manager("Greedy", params), cfg);
  TObject<Cell> obj(Cell{0});

  std::atomic<bool> holder_in_tx{false};
  std::atomic<bool> release_holder{false};
  std::thread holder([&] {
    ThreadCtx& tc = rt.attach_thread();
    rt.atomically(tc, [&](Tx& tx) {
      obj.open_write(tx)->value += 1;
      if (!holder_in_tx.exchange(true, std::memory_order_acq_rel)) {
        while (!release_holder.load(std::memory_order_acquire)) std::this_thread::yield();
      }
    });
  });
  while (!holder_in_tx.load(std::memory_order_acquire)) std::this_thread::yield();

  ThreadCtx& tc = rt.attach_thread();
  bool timed_out = false;
  const std::int64_t t0 = now_ns();
  try {
    rt.atomically(tc, [&](Tx& tx) { obj.open_write(tx)->value += 10; });
  } catch (const TxTimeoutError& e) {
    timed_out = true;
    EXPECT_EQ(e.slot(), tc.slot());
    EXPECT_GE(e.age_ns(), cfg.liveness.deadline_ns);
    EXPECT_NE(std::string(e.what()).find("deadline exceeded"), std::string::npos);
  }
  const std::int64_t waited = now_ns() - t0;
  release_holder.store(true, std::memory_order_release);
  holder.join();

  EXPECT_TRUE(timed_out);
  EXPECT_GE(waited, cfg.liveness.deadline_ns);
  EXPECT_EQ(rt.total_metrics().timeouts, 1u);
  EXPECT_EQ(obj.peek()->value, 1);  // the timed-out +10 never happened
}

// ---- watchdog stall detection + kick ---------------------------------------

TEST(Watchdog, KicksStalledTransactionWhichThenCommits) {
  cm::Params params;
  params.threads = 1;
  stm::RuntimeConfig cfg;
  cfg.liveness.enabled = true;
  cfg.liveness.watchdog_period_ns = 1'000'000;   // 1 ms scans
  cfg.liveness.stall_timeout_ns = 5'000'000;     // 5 ms without progress = stalled
  cfg.liveness.kick_stalled = true;
  cfg.liveness.storm_threshold = 1'000'000;      // storms out of the picture
  cfg.liveness.backoff_after = 1'000'000;
  cfg.liveness.boost_after = 1'000'000;
  cfg.liveness.serial_after = 1'000'000;
  Runtime rt(cm::make_manager("Polka", params), cfg);
  TObject<Cell> obj(Cell{0});

  ThreadCtx& tc = rt.attach_thread();
  std::atomic<int> attempts{0};
  rt.atomically(tc, [&](Tx& tx) {
    const int attempt = attempts.fetch_add(1, std::memory_order_acq_rel);
    obj.open_write(tx)->value += 1;
    if (attempt == 0) {
      // No schedule-point progress for well past the stall timeout: the
      // watchdog must flag this attempt and kick (abort) it.
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
  });

  EXPECT_GE(attempts.load(), 2) << "stalled attempt was never kicked";
  EXPECT_EQ(obj.peek()->value, 1);
  const LivenessManager::Stats ls = rt.liveness()->stats();
  EXPECT_GE(ls.stalls_flagged, 1u);
  EXPECT_GE(ls.kicks, 1u);
  EXPECT_GT(rt.total_metrics().watchdog_flags, 0u);
}

// ---- quiescence-safe shutdown ----------------------------------------------

TEST(Shutdown, DrainsInFlightTransactionsAndRefusesNewOnes) {
  cm::Params params;
  params.threads = 4;
  auto rt = std::make_unique<Runtime>(cm::make_manager("Polka", params));
  TObject<Cell> counter(Cell{0});

  constexpr unsigned kThreads = 4;
  std::atomic<unsigned> saw_stop{0};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      ThreadCtx& tc = rt->attach_thread();
      try {
        for (;;) {
          rt->atomically(tc, [&](Tx& tx) {
            Cell* c = counter.open_write(tx);
            spin_ns(5'000);  // keep attempts in flight while shutdown lands
            c->value += 1;
          });
        }
      } catch (const RuntimeStoppedError&) {
        saw_stop.fetch_add(1, std::memory_order_acq_rel);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(8));
  rt->shutdown();  // mid-flight: workers must unwind, not hang or corrupt
  rt->shutdown();  // idempotent
  for (auto& w : workers) w.join();

  EXPECT_EQ(saw_stop.load(), kThreads);
  EXPECT_TRUE(rt->stopping());
  EXPECT_GT(rt->total_metrics().commits, 0u);
  const long value = counter.peek()->value;
  EXPECT_EQ(static_cast<std::uint64_t>(value), rt->total_metrics().commits)
      << "a drained/refused attempt leaked a partial update";
  rt.reset();  // destroy with workers gone: must not hang or double-free
}

// ---- chaos injection -------------------------------------------------------

TEST(Chaos, InjectedFaultsDoNotBreakProgressOrSafety) {
  harness::RunConfig run;
  run.threads = 4;
  run.duration_ms = 150;
  run.liveness.enabled = true;
  run.chaos = resilience::default_chaos(4.0);  // crank it: this is a smoke test
  run.chaos.ebr_pressure_every = 8;

  auto workload = harness::make_workload("list", 100, 64);
  cm::Params params;
  params.threads = run.threads;
  const harness::RunResult r = harness::run_workload("Polka", params, *workload, run);

  EXPECT_TRUE(r.valid) << r.why;
  EXPECT_TRUE(r.thread_errors.empty());
  EXPECT_GT(r.totals.commits, 0u) << "chaos starved the run completely";
  EXPECT_GT(r.totals.chaos_faults, 0u) << "injector never fired at intensity 4";
  EXPECT_LE(r.liveness_stats.max_token_holders, 1u);
  EXPECT_EQ(r.liveness_stats.token_overlap_violations, 0u);
}

// ---- harness worker-exception containment ----------------------------------

class ThrowingWorkload final : public harness::Workload {
 public:
  std::string name() const override { return "throwing"; }
  void populate(Runtime&, ThreadCtx&) override {}
  void run_one(Runtime& rt, ThreadCtx& tc, Xoshiro256&) override {
    if (ops_.fetch_add(1, std::memory_order_acq_rel) == 25) {
      throw std::runtime_error("boom: workload-level failure");
    }
    rt.atomically(tc, [&](Tx& tx) { counter_.open_write(tx)->value += 1; });
  }
  bool validate(std::string*) const override { return true; }

 private:
  TObject<Cell> counter_{Cell{0}};
  std::atomic<int> ops_{0};
};

TEST(Harness, WorkerExceptionFailsCellWithReadableReport) {
  ThrowingWorkload workload;
  harness::RunConfig run;
  run.threads = 3;
  run.duration_ms = 2000;  // the throw ends the run long before this
  cm::Params params;
  params.threads = run.threads;
  const harness::RunResult r = harness::run_workload("Polka", params, workload, run);

  EXPECT_FALSE(r.valid);
  ASSERT_FALSE(r.thread_errors.empty());
  EXPECT_NE(r.thread_errors.front().find("thread "), std::string::npos);
  EXPECT_NE(r.why.find("worker thread(s) died on an exception"), std::string::npos);
  EXPECT_NE(r.why.find("boom: workload-level failure"), std::string::npos);
}

}  // namespace
}  // namespace wstm
