// Tests for the kmeans extension workload (harness/kmeans.hpp).
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "harness/kmeans.hpp"
#include "harness/runner.hpp"

namespace wstm::harness {
namespace {

TEST(KMeans, RejectsBadConfig) {
  KMeansConfig cfg;
  cfg.dims = 0;
  EXPECT_THROW(KMeansWorkload{cfg}, std::invalid_argument);
  cfg.dims = 9;
  EXPECT_THROW(KMeansWorkload{cfg}, std::invalid_argument);
  cfg.dims = 4;
  cfg.clusters = 0;
  EXPECT_THROW(KMeansWorkload{cfg}, std::invalid_argument);
}

TEST(KMeans, SingleThreadedAssignmentsBalance) {
  KMeansConfig cfg;
  cfg.clusters = 4;
  cfg.points = 256;
  KMeansWorkload w(cfg);
  cm::Params params;
  params.threads = 1;
  stm::Runtime rt(cm::make_manager("Polka", params));
  stm::ThreadCtx& tc = rt.attach_thread();
  w.populate(rt, tc);
  Xoshiro256 rng(1);
  for (int i = 0; i < 500; ++i) w.run_one(rt, tc, rng);
  std::string why;
  EXPECT_TRUE(w.validate(&why)) << why;
}

TEST(KMeans, CentroidsStayInUnitCube) {
  KMeansConfig cfg;
  cfg.clusters = 3;
  KMeansWorkload w(cfg);
  cm::Params params;
  params.threads = 1;
  stm::Runtime rt(cm::make_manager("Greedy", params));
  stm::ThreadCtx& tc = rt.attach_thread();
  w.populate(rt, tc);
  Xoshiro256 rng(2);
  for (int i = 0; i < 300; ++i) w.run_one(rt, tc, rng);
  for (std::uint32_t k = 0; k < cfg.clusters; ++k) {
    for (const double x : w.quiescent_centroid(k)) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);
    }
  }
}

TEST(KMeans, ConcurrentAssignmentsAreConserved) {
  constexpr unsigned kThreads = 4;
  KMeansConfig cfg;
  cfg.clusters = 2;  // hot
  KMeansWorkload w(cfg);
  cm::Params params;
  params.threads = kThreads;
  stm::RuntimeConfig rt_cfg;
  rt_cfg.preempt_yield_permille = 50;  // force interleaving on small hosts
  stm::Runtime rt(cm::make_manager("Online-Dynamic", params), rt_cfg);
  {
    stm::ThreadCtx& tc = rt.attach_thread();
    w.populate(rt, tc);
    rt.detach_thread(tc);
  }
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      stm::ThreadCtx& tc = rt.attach_thread();
      Xoshiro256 rng(t + 3);
      for (int i = 0; i < 300; ++i) w.run_one(rt, tc, rng);
    });
  }
  for (auto& worker : workers) worker.join();
  std::string why;
  EXPECT_TRUE(w.validate(&why)) << why;
  EXPECT_EQ(rt.total_metrics().commits, static_cast<std::uint64_t>(kThreads) * 300);
}

TEST(KMeans, FactoryMapsUpdatePercentToHotness) {
  EXPECT_EQ(make_workload("kmeans", 100)->name(), "kmeans");
  EXPECT_EQ(make_workload("kmeans", 20)->name(), "kmeans");
}

TEST(KMeans, RunsThroughTheHarness) {
  RunConfig cfg;
  cfg.threads = 2;
  cfg.duration_ms = 80;
  const RunResult r = run_workload("Adaptive", cm::Params{}, *make_workload("kmeans", 100), cfg);
  EXPECT_TRUE(r.valid) << r.why;
  EXPECT_GT(r.totals.commits, 0u);
}

}  // namespace
}  // namespace wstm::harness
