// Deterministic-checker coverage for the orec backend (ISSUE 8 satellites):
// schedule points on the commit-time lock CAS and read-set validation, the
// six-variant window-CM decision parity, orec opacity under exploration, the
// seeded skip-read-validation bug with replay + shrink coverage, and the
// schedule file's backend key round-trip.
#include <gtest/gtest.h>

#include <string>

#include "check/checker.hpp"
#include "check/hooks.hpp"
#include "check/schedule.hpp"

namespace wstm::check {
namespace {

CheckConfig orec_check_config(const std::string& cm) {
  CheckConfig c;
  c.backend = "orec";
  c.threads = 3;
  c.ops_per_thread = 16;
  c.key_range = 16;
  c.window_n = 6;
  c.cm = cm;
  c.seed = 12345;
  return c;
}

// Same policy seed -> bit-identical decisions, twice in a row, for every
// window variant on the orec backend. This is the PR 5 run_once identity
// property carried to the new engine: nothing in the orec commit path
// (first-touch orec ids, address-ordered lock acquisition, validation
// arbitration) may leak run-to-run nondeterminism into CM decisions.
TEST(OrecChecker, WindowVariantDecisionsAreDeterministic) {
  for (const char* cm :
       {"Online", "Online-Dynamic", "Adaptive", "Adaptive-Dynamic", "Adaptive-Improved",
        "Adaptive-Improved-Dynamic"}) {
    const CheckConfig c = orec_check_config(cm);
    for (const std::uint64_t policy_seed : {1u, 2u, 3u}) {
      const RunResult a = Checker(c).run_once(policy_seed);
      const RunResult b = Checker(c).run_once(policy_seed);
      EXPECT_FALSE(a.violation) << cm << ": " << a.diagnosis;
      EXPECT_EQ(a.schedule.decisions, b.schedule.decisions) << cm;
      EXPECT_EQ(a.metrics.commits, b.metrics.commits) << cm;
      EXPECT_EQ(a.metrics.aborts, b.metrics.aborts) << cm;
      EXPECT_GT(a.metrics.commits, 0u) << cm;
    }
  }
}

// The orec engine ignores the visible_reads flag (its reads are always
// timestamp-validated). Flipping the flag must change nothing at all.
TEST(OrecChecker, VisibleReadsFlagIsInertOnOrec) {
  CheckConfig vis = orec_check_config("Adaptive-Improved");
  vis.visible_reads = true;
  CheckConfig invis = vis;
  invis.visible_reads = false;
  const RunResult a = Checker(vis).run_once(2);
  const RunResult b = Checker(invis).run_once(2);
  EXPECT_FALSE(a.violation) << a.diagnosis;
  EXPECT_EQ(a.schedule.decisions, b.schedule.decisions);
  EXPECT_EQ(a.metrics.commits, b.metrics.commits);
  EXPECT_EQ(a.metrics.aborts, b.metrics.aborts);
}

// Clean-protocol exploration across all six window variants: zero oracle
// violations (linearizability against the ghost sequential set AND the
// engine's own opacity ghost check in open_read), and the new schedule
// points must actually be exercised — a run that never parks at orec-lock
// or orec-validate is not testing the commit protocol.
TEST(OrecChecker, ExplorationIsCleanOnAllWindowVariants) {
  for (const char* cm :
       {"Online", "Online-Dynamic", "Adaptive", "Adaptive-Dynamic", "Adaptive-Improved",
        "Adaptive-Improved-Dynamic"}) {
    Checker checker(orec_check_config(cm));
    const ExploreResult er = checker.explore(8);
    EXPECT_EQ(er.violations, 0u)
        << cm << ": " << er.first_violation.diagnosis;
    EXPECT_EQ(er.schedules_run, 8u) << cm;
  }
}

// Spurious injected aborts at the new points (policy abort_applies covers
// kOrecLock/kOrecValidate) must be survivable: the engine releases held
// commit locks on the injected abort and the run stays clean.
TEST(OrecChecker, InjectedAbortsAtOrecPointsAreSurvivable) {
  CheckConfig c = orec_check_config("Aggressive");
  c.faults.p_abort = 0.05;
  Checker checker(c);
  const ExploreResult er = checker.explore(10);
  EXPECT_EQ(er.violations, 0u) << er.first_violation.diagnosis;
}

// Seeded bug: an orec commit that skips its read-set validation publishes
// writes derived from a possibly-overwritten snapshot. The ghost oracle
// must catch it within the exploration budget, the pinned schedule must
// replay to the same verdict with zero divergence, and shrinking must
// preserve the failure. (Aggressive for the same budget reason as the DSTM
// seeded-bug tests: no karma wait slices under the executor token.)
TEST(OrecChecker, SkipReadValidationBugIsCaughtReplayedAndShrunk) {
  CheckConfig c = orec_check_config("Aggressive");
  c.bug = "skip-read-validation";
  Checker buggy(c);
  const ExploreResult er = buggy.explore(40);
  ASSERT_GE(er.violations, 1u);
  EXPECT_NE(er.first_violation.diagnosis.find("opacity"), std::string::npos)
      << er.first_violation.diagnosis;
  EXPECT_NE(er.first_violation.diagnosis.find("validation"), std::string::npos)
      << er.first_violation.diagnosis;

  Checker replayer(er.first_violation.schedule.config);
  const RunResult again = replayer.replay(er.first_violation.schedule);
  EXPECT_EQ(again.divergences, 0u);
  EXPECT_TRUE(again.violation);

  const Checker::ShrinkResult sr = replayer.shrink(er.first_violation.schedule, 300);
  ASSERT_TRUE(sr.still_fails);
  EXPECT_LE(sr.schedule.decisions.size(), er.first_violation.schedule.decisions.size());
  const RunResult min_run = Checker(sr.schedule.config).replay(sr.schedule);
  EXPECT_TRUE(min_run.violation);

  // The clean protocol survives the identical budget.
  CheckConfig clean = orec_check_config("Aggressive");
  Checker ok(clean);
  EXPECT_EQ(ok.explore(40).violations, 0u);
}

// The schedule file carries the backend, so `wstm-check replay fail.sched`
// reconstructs an orec run with no extra flags; files from before the
// backend key default to dstm.
TEST(OrecChecker, ScheduleTextRoundTripsBackend) {
  Checker checker(orec_check_config("Online"));
  const RunResult r = checker.run_once(1);
  const std::string text = to_text(r.schedule);
  EXPECT_NE(text.find("backend orec"), std::string::npos);
  const Schedule parsed = schedule_from_text(text);
  EXPECT_EQ(parsed.config.backend, "orec");
  EXPECT_EQ(parsed.decisions, r.schedule.decisions);

  const RunResult again = Checker(parsed.config).replay(parsed);
  EXPECT_EQ(again.divergences, 0u);

  // Back-compat: a pre-backend file (no key) parses as dstm.
  std::string legacy = text;
  const std::size_t pos = legacy.find("backend orec\n");
  ASSERT_NE(pos, std::string::npos);
  legacy.erase(pos, std::string("backend orec\n").size());
  EXPECT_EQ(schedule_from_text(legacy).config.backend, "dstm");
}

// The new points are wired into the diagnostics name table.
TEST(OrecChecker, PointNamesCoverOrecPoints) {
  EXPECT_STREQ(point_name(Point::kOrecLock), "orec-lock");
  EXPECT_STREQ(point_name(Point::kOrecValidate), "orec-validate");
}

}  // namespace
}  // namespace wstm::check
