// Deferred commit clock (GV5-style; DESIGN.md §11): write-commits stamp
// `clock+1` into their descriptor without touching the shared clock line,
// which only moves on the snapshot-extension path. These tests cover the
// live-thread protocol (stamps accumulate, bumps stay rare), the
// deterministic checker's full six-variant exploration with the deferred
// clock armed, and the ghost opacity oracle catching the seeded
// "stamp-without-pending-check" bug within the CI schedule budget.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "check/checker.hpp"
#include "cm/registry.hpp"
#include "stm/runtime.hpp"
#include "structs/intset.hpp"
#include "util/rng.hpp"

namespace wstm::stm {
namespace {

std::unique_ptr<Runtime> make_runtime(bool deferred, unsigned threads = 4,
                                      const std::string& cm = "Polka") {
  cm::Params params;
  params.threads = threads;
  RuntimeConfig cfg;
  cfg.visible_reads = false;
  cfg.snapshot_ext = true;
  cfg.deferred_clock = deferred;
  return std::make_unique<Runtime>(cm::make_manager(cm, params), cfg);
}

TEST(DeferredClock, SingleThreadBasics) {
  auto rt = make_runtime(true, 1);
  ThreadCtx& tc = rt->attach_thread();
  TObject<long> obj(10);
  EXPECT_EQ(rt->atomically(tc, [&](Tx& tx) { return *obj.open_read(tx); }), 10);
  rt->atomically(tc, [&](Tx& tx) { *obj.open_write(tx) = 20; });
  EXPECT_EQ(*obj.peek(), 20);
  rt->atomically(tc, [&](Tx& tx) {
    EXPECT_EQ(*obj.open_read(tx), 20);
    *obj.open_write(tx) = 30;
    EXPECT_EQ(*obj.open_read(tx), 30);
  });
  EXPECT_EQ(*obj.peek(), 30);
  const ThreadMetrics m = rt->total_metrics();
  EXPECT_EQ(m.aborts, 0u);
  EXPECT_EQ(m.deferred_stamps, 2u);  // one per write-commit
}

// The ≥5x acceptance criterion's mechanism, in-process: under the
// BM_IntsetWriteHeavy-class workload (write-heavy, low-conflict — a
// hashtable with a wide key range) the shared clock line is written far
// less often than under the eager protocol, which pays one bump per
// write-commit (clock_bumps == write-commit count). Two effects compound:
// concurrent writers observing the same clock stamp the same generation
// (one bump covers all of them), and begin_attempt re-establishes the
// snapshot, so opens of anything committed before the attempt began
// fast-accept without ever touching the line.
TEST(DeferredClock, BumpsAreFarRarerThanStamps) {
  constexpr unsigned kThreads = 8;
  constexpr int kOpsPerThread = 3000;
  constexpr long kKeyRange = 1024;
  auto rt = make_runtime(true, kThreads);
  auto set_ptr = structs::make_intset("hashtable");
  structs::TxIntSet& set = *set_ptr;
  {
    ThreadCtx& tc = rt->attach_thread();
    for (long k = 0; k < kKeyRange; k += 2) {
      rt->atomically(tc, [&](Tx& tx) { return set.insert(tx, k); });
    }
  }
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ThreadCtx& tc = rt->attach_thread();
      Xoshiro256 rng(1000 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const long k = static_cast<long>(rng.below(kKeyRange));
        rt->atomically(tc, [&](Tx& tx) {
          return rng.below(2) == 0 ? set.insert(tx, k) : set.remove(tx, k);
        });
      }
    });
  }
  for (auto& w : workers) w.join();
  const ThreadMetrics m = rt->total_metrics();
  // 24k update ops: thousands of write-commits stamped...
  EXPECT_GT(m.deferred_stamps, 10000u);
  // ...with at most one shared-line write per stamped generation. Eager
  // mode would have written the line deferred_stamps times.
  EXPECT_LT(m.clock_bumps * 5, m.deferred_stamps);
}

// Deferred mode must commit the same logical history as eager mode when run
// without interference: a single-thread op stream ends in the same set.
TEST(DeferredClock, MatchesEagerResultSingleThreaded) {
  long expected = 0;
  for (const bool deferred : {false, true}) {
    auto rt = make_runtime(deferred, 1);
    ThreadCtx& tc = rt->attach_thread();
    auto set_ptr = structs::make_intset("list");
    structs::TxIntSet& set = *set_ptr;
    Xoshiro256 rng(7);
    long checksum = 0;
    for (int i = 0; i < 400; ++i) {
      const long k = static_cast<long>(rng.below(24));
      const bool r = rt->atomically(tc, [&](Tx& tx) {
        return (i % 3 == 0) ? set.remove(tx, k) : set.insert(tx, k);
      });
      checksum = checksum * 31 + (r ? k + 1 : 0);
    }
    if (!deferred) {
      expected = checksum;
    } else {
      EXPECT_EQ(checksum, expected);
    }
  }
}

// ---- deterministic-checker coverage ----------------------------------------

check::CheckConfig deferred_check_config(const std::string& cm) {
  check::CheckConfig c;
  c.threads = 3;
  c.ops_per_thread = 16;
  c.key_range = 16;
  c.window_n = 6;
  c.cm = cm;
  c.visible_reads = false;
  c.snapshot_ext = true;
  c.deferred_clock = true;
  c.seed = 12345;
  return c;
}

// Acceptance: the checker passes the full six-variant exploration with
// snapshot extension AND the deferred clock on — the ghost opacity oracle
// stays silent across random schedules for every window variant.
TEST(DeferredClock, SixVariantExploreIsClean) {
  for (const char* cm :
       {"Online", "Online-Dynamic", "Adaptive", "Adaptive-Dynamic", "Adaptive-Improved",
        "Adaptive-Improved-Dynamic"}) {
    check::CheckConfig c = deferred_check_config(cm);
    const check::ExploreResult er = check::Checker(c).explore(10);
    EXPECT_EQ(er.violations, 0u) << cm << ": " << er.first_violation.diagnosis;
  }
}

// A schedule's config round-trips through the text format, including the new
// deferred_clock key; files without the key replay as eager (the behavior
// pre-deferred runs actually had — their decision streams lack the extra
// commit point).
TEST(DeferredClock, ScheduleSerializationRoundTripsAndBackCompats) {
  check::CheckConfig c = deferred_check_config("Adaptive");
  const check::RunResult r = check::Checker(c).run_once(1);
  check::Schedule restored = check::schedule_from_text(check::to_text(r.schedule));
  EXPECT_TRUE(restored.config.deferred_clock);
  EXPECT_EQ(restored.decisions, r.schedule.decisions);

  std::string text = check::to_text(r.schedule);
  const std::string key = "deferred_clock 1\n";
  const auto pos = text.find(key);
  ASSERT_NE(pos, std::string::npos);
  text.erase(pos, key.size());
  EXPECT_FALSE(check::schedule_from_text(text).config.deferred_clock);
}

// Seeded-bug acceptance: dropping the pending-set membership check from the
// deferred fast path (bug "stamp-no-pending") accepts a stamp from a writer
// whose status CAS may postdate the snapshot instant. The ghost opacity
// oracle must flag it within 100 schedules, the pinned schedule must replay
// to the same verdict, and the clean protocol must survive the same budget.
TEST(DeferredClock, StampWithoutPendingCheckIsCaught) {
  check::CheckConfig c = deferred_check_config("Aggressive");
  c.update_percent = 70;  // update-heavy: more concurrent write-commits
  c.key_range = 8;        // small range: stamps land on objects readers open
  c.bug = "stamp-no-pending";
  check::Checker buggy(c);
  const check::ExploreResult er = buggy.explore(100);
  ASSERT_GE(er.violations, 1u);
  EXPECT_NE(er.first_violation.diagnosis.find("deferred-clock"), std::string::npos)
      << er.first_violation.diagnosis;

  check::Checker replayer(er.first_violation.schedule.config);
  const check::RunResult again = replayer.replay(er.first_violation.schedule);
  EXPECT_EQ(again.divergences, 0u);
  EXPECT_TRUE(again.violation);

  c.bug = "none";
  EXPECT_EQ(check::Checker(c).explore(100).violations, 0u);
}

}  // namespace
}  // namespace wstm::stm
