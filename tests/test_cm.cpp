// Decision-table tests for the classic contention managers: craft enemy
// descriptors in known states and check each manager's verdict.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "cm/classic.hpp"
#include "cm/schedulers.hpp"
#include "cm/registry.hpp"
#include "stm/runtime.hpp"
#include "trace/recorder.hpp"
#include "util/timing.hpp"

namespace wstm::cm {
namespace {

using stm::ConflictKind;
using stm::Resolution;
using stm::TxDesc;
using stm::TxStatus;

class CmTest : public ::testing::Test {
 protected:
  CmTest()
      : rt_(std::make_unique<stm::Runtime>(make_manager("Aggressive", Params{}))),
        tc_(&rt_->attach_thread()) {}

  /// A descriptor that looks like an attempt of thread `slot` whose first
  /// attempt began at `first_begin`.
  static void init_desc(TxDesc& d, std::uint32_t slot, std::int64_t first_begin) {
    d.thread_slot = slot;
    d.first_begin_ns = first_begin;
    d.begin_ns = first_begin;
  }

  std::unique_ptr<stm::Runtime> rt_;
  stm::ThreadCtx* tc_;
};

TEST_F(CmTest, AggressiveAlwaysAbortsEnemy) {
  Aggressive cm;
  TxDesc me, enemy;
  init_desc(me, 0, 100);
  init_desc(enemy, 1, 1);
  EXPECT_EQ(cm.resolve(*tc_, me, enemy, ConflictKind::kWriteWrite), Resolution::kAbortEnemy);
  EXPECT_EQ(cm.resolve(*tc_, me, enemy, ConflictKind::kReadWrite), Resolution::kAbortEnemy);
}

TEST_F(CmTest, PriorityOlderWinsYoungerDies) {
  Priority cm;
  TxDesc old_tx, young_tx;
  init_desc(old_tx, 0, 10);
  init_desc(young_tx, 1, 20);
  EXPECT_EQ(cm.resolve(*tc_, old_tx, young_tx, ConflictKind::kWriteWrite),
            Resolution::kAbortEnemy);
  EXPECT_EQ(cm.resolve(*tc_, young_tx, old_tx, ConflictKind::kWriteWrite),
            Resolution::kAbortSelf);
}

TEST_F(CmTest, PriorityTieBreaksBySlot) {
  Priority cm;
  TxDesc a, b;
  init_desc(a, 0, 10);
  init_desc(b, 1, 10);
  EXPECT_EQ(cm.resolve(*tc_, a, b, ConflictKind::kWriteWrite), Resolution::kAbortEnemy);
  EXPECT_EQ(cm.resolve(*tc_, b, a, ConflictKind::kWriteWrite), Resolution::kAbortSelf);
}

TEST_F(CmTest, GreedyOlderAbortsYounger) {
  Greedy cm;
  TxDesc old_tx, young_tx;
  init_desc(old_tx, 0, 10);
  init_desc(young_tx, 1, 20);
  EXPECT_EQ(cm.resolve(*tc_, old_tx, young_tx, ConflictKind::kWriteWrite),
            Resolution::kAbortEnemy);
}

TEST_F(CmTest, GreedyYoungerWaitsForRunningOlder) {
  Greedy cm;
  TxDesc old_tx, young_tx;
  init_desc(old_tx, 0, 10);
  init_desc(young_tx, 1, 20);
  // Older is active and not waiting: the younger must wait (kRetry).
  EXPECT_EQ(cm.resolve(*tc_, young_tx, old_tx, ConflictKind::kWriteWrite), Resolution::kRetry);
}

TEST_F(CmTest, GreedyYoungerKillsWaitingOlder) {
  Greedy cm;
  TxDesc old_tx, young_tx;
  init_desc(old_tx, 0, 10);
  init_desc(young_tx, 1, 20);
  old_tx.waiting.store(true);
  EXPECT_EQ(cm.resolve(*tc_, young_tx, old_tx, ConflictKind::kWriteWrite),
            Resolution::kAbortEnemy);
}

TEST_F(CmTest, GreedyReturnsAbortSelfWhenKilled) {
  Greedy cm;
  TxDesc old_tx, young_tx;
  init_desc(old_tx, 0, 10);
  init_desc(young_tx, 1, 20);
  young_tx.status.store(TxStatus::kAborted);
  EXPECT_EQ(cm.resolve(*tc_, young_tx, old_tx, ConflictKind::kWriteWrite),
            Resolution::kAbortSelf);
}

TEST_F(CmTest, PolkaLowerKarmaEnemyDiesImmediately) {
  Polka cm;
  TxDesc me, enemy;
  init_desc(me, 0, 10);
  init_desc(enemy, 1, 20);
  me.karma.store(5);
  enemy.karma.store(3);
  EXPECT_EQ(cm.resolve(*tc_, me, enemy, ConflictKind::kWriteWrite), Resolution::kAbortEnemy);
}

TEST_F(CmTest, PolkaRetriesWhenEnemyFinishesDuringWait) {
  Polka cm;
  TxDesc me, enemy;
  init_desc(me, 0, 10);
  init_desc(enemy, 1, 20);
  me.karma.store(0);
  enemy.karma.store(3);
  enemy.status.store(TxStatus::kCommitted);  // finishes before/while waiting
  EXPECT_EQ(cm.resolve(*tc_, me, enemy, ConflictKind::kWriteWrite), Resolution::kRetry);
}

TEST_F(CmTest, PolkaAbortsStubbornHigherKarmaEnemy) {
  Polka cm;
  TxDesc me, enemy;
  init_desc(me, 0, 10);
  init_desc(enemy, 1, 20);
  me.karma.store(0);
  enemy.karma.store(2);  // two short waiting slices, then the kill
  EXPECT_EQ(cm.resolve(*tc_, me, enemy, ConflictKind::kWriteWrite), Resolution::kAbortEnemy);
}

TEST_F(CmTest, PolkaKarmaAccruesPerOpenAndResetsOnCommit) {
  Polka cm;
  TxDesc tx;
  init_desc(tx, tc_->slot(), 10);
  cm.on_begin(*tc_, tx, /*is_retry=*/false);
  cm.on_open(*tc_, tx);
  cm.on_open(*tc_, tx);
  EXPECT_EQ(tx.karma.load(), 2u);
  // Karma persists into a retry of the same transaction...
  TxDesc retry;
  init_desc(retry, tc_->slot(), 10);
  cm.on_begin(*tc_, retry, /*is_retry=*/true);
  EXPECT_EQ(retry.karma.load(), 2u);
  // ...and resets for a fresh transaction.
  cm.on_commit(*tc_, retry);
  TxDesc fresh;
  init_desc(fresh, tc_->slot(), 30);
  cm.on_begin(*tc_, fresh, /*is_retry=*/false);
  EXPECT_EQ(fresh.karma.load(), 0u);
}

TEST_F(CmTest, PolkaClampsBackoffTraceWhenClockRewinds) {
  // Regression: Polka's kBackoff event computed `now_ns() - wait_begin` and
  // converted straight to unsigned. Under the deterministic checker the
  // virtual clock can move backwards across a park (the executor advances
  // it per decision, and a replayed prefix restarts it), so a negative wait
  // truncated to ~2^64 ns and poisoned every backoff statistic downstream.
  // Drive resolve() with a recorder attached and a wait hook that rewinds
  // the virtual clock mid-wait; the recorded wait must clamp to 0.
  std::atomic<std::int64_t> vclock{1'000'000};
  set_virtual_clock(&vclock);

  trace::Recorder::Options opts;
  opts.threads = 2;
  opts.capacity_per_thread = 64;
  trace::Recorder rec(opts);

  struct RewindingWaiter : WaitHooks {
    std::atomic<std::int64_t>* clock = nullptr;
    stm::TxDesc* enemy_to_finish = nullptr;
    bool park_until_inactive(stm::ThreadCtx&, const stm::TxDesc&, const stm::TxDesc&,
                             std::int64_t) noexcept override {
      clock->store(0, std::memory_order_relaxed);  // rewind past wait_begin
      enemy_to_finish->status.store(TxStatus::kCommitted);
      return true;
    }
    void yield_safe() noexcept override {}
  };

  Polka cm;
  TxDesc me, enemy;
  init_desc(me, 0, 10);
  init_desc(enemy, 1, 20);
  me.karma.store(0);
  enemy.karma.store(1);  // one wait slice before the kill threshold

  RewindingWaiter waiter;
  waiter.clock = &vclock;
  waiter.enemy_to_finish = &enemy;
  cm.attach_recorder(&rec);
  cm.attach_wait_hooks(&waiter);
  EXPECT_EQ(cm.resolve(*tc_, me, enemy, ConflictKind::kWriteWrite), Resolution::kRetry);
  set_virtual_clock(nullptr);

  bool found = false;
  for (const trace::Event& e : rec.drain_sorted()) {
    if (e.kind != trace::EventKind::kBackoff) continue;
    found = true;
    EXPECT_EQ(e.a0, 0u) << "negative wait must clamp to 0, not wrap to ~2^64";
    EXPECT_EQ(e.a1, 1u);  // one slice waited
  }
  EXPECT_TRUE(found) << "the wait was never traced";
}

TEST_F(CmTest, KarmaWaitCountsTowardPriority) {
  Karma cm;
  TxDesc me, enemy;
  init_desc(me, 0, 10);
  init_desc(enemy, 1, 20);
  me.karma.store(1);
  enemy.karma.store(3);
  // attempts accumulate until mine + attempts >= theirs, then kill.
  EXPECT_EQ(cm.resolve(*tc_, me, enemy, ConflictKind::kWriteWrite), Resolution::kAbortEnemy);
}

TEST_F(CmTest, PoliteBacksOffThenAbortsEnemy) {
  Polite cm;
  TxDesc me, enemy;
  init_desc(me, 0, 10);
  init_desc(enemy, 1, 20);
  EXPECT_EQ(cm.resolve(*tc_, me, enemy, ConflictKind::kWriteWrite), Resolution::kAbortEnemy);
}

TEST_F(CmTest, PoliteRetriesIfEnemyFinished) {
  Polite cm;
  TxDesc me, enemy;
  init_desc(me, 0, 10);
  init_desc(enemy, 1, 20);
  enemy.status.store(TxStatus::kCommitted);
  EXPECT_EQ(cm.resolve(*tc_, me, enemy, ConflictKind::kWriteWrite), Resolution::kRetry);
}

TEST_F(CmTest, TimestampOlderKillsImmediately) {
  Timestamp cm;
  TxDesc old_tx, young_tx;
  init_desc(old_tx, 0, 10);
  init_desc(young_tx, 1, 20);
  EXPECT_EQ(cm.resolve(*tc_, old_tx, young_tx, ConflictKind::kWriteWrite),
            Resolution::kAbortEnemy);
}

TEST_F(CmTest, KindergartenDefersOnceThenTakesItsTurn) {
  Kindergarten cm;
  TxDesc me, enemy;
  init_desc(me, tc_->slot(), 10);
  init_desc(enemy, 1, 20);
  cm.on_begin(*tc_, me, /*is_retry=*/false);
  // First meeting: back off and let the enemy run.
  EXPECT_EQ(cm.resolve(*tc_, me, enemy, ConflictKind::kWriteWrite), Resolution::kRetry);
  // Second meeting with the same thread: our turn.
  EXPECT_EQ(cm.resolve(*tc_, me, enemy, ConflictKind::kWriteWrite), Resolution::kAbortEnemy);
}

TEST_F(CmTest, KindergartenForgetsOnFreshTransaction) {
  Kindergarten cm;
  TxDesc me, enemy;
  init_desc(me, tc_->slot(), 10);
  init_desc(enemy, 1, 20);
  cm.on_begin(*tc_, me, false);
  EXPECT_EQ(cm.resolve(*tc_, me, enemy, ConflictKind::kWriteWrite), Resolution::kRetry);
  cm.on_begin(*tc_, me, false);  // new logical transaction: list reset
  EXPECT_EQ(cm.resolve(*tc_, me, enemy, ConflictKind::kWriteWrite), Resolution::kRetry);
}

TEST_F(CmTest, EruptionHigherPressureWins) {
  Eruption cm;
  TxDesc me, enemy;
  init_desc(me, tc_->slot(), 10);
  init_desc(enemy, 1, 20);
  me.karma.store(5);
  enemy.karma.store(2);
  EXPECT_EQ(cm.resolve(*tc_, me, enemy, ConflictKind::kWriteWrite), Resolution::kAbortEnemy);
}

TEST_F(CmTest, EruptionTransfersPressureWhileBlocked) {
  Eruption cm;
  TxDesc me, enemy;
  init_desc(me, tc_->slot(), 10);
  init_desc(enemy, 1, 20);
  me.karma.store(3);
  enemy.karma.store(7);
  EXPECT_EQ(cm.resolve(*tc_, me, enemy, ConflictKind::kWriteWrite), Resolution::kRetry);
  // Our pressure (3 + 1) moved onto the blocker.
  EXPECT_EQ(enemy.karma.load(), 11u);
}

TEST_F(CmTest, RandomizedRoundsLowerDrawWins) {
  RandomizedRounds cm(8);
  TxDesc me, enemy;
  init_desc(me, 0, 10);
  init_desc(enemy, 1, 20);
  me.rand_prio.store(2);
  enemy.rand_prio.store(5);
  EXPECT_EQ(cm.resolve(*tc_, me, enemy, ConflictKind::kWriteWrite), Resolution::kAbortEnemy);
  me.rand_prio.store(7);
  EXPECT_EQ(cm.resolve(*tc_, me, enemy, ConflictKind::kWriteWrite), Resolution::kAbortSelf);
}

TEST_F(CmTest, RandomizedRoundsTieBreaksBySlot) {
  RandomizedRounds cm(8);
  TxDesc me, enemy;
  init_desc(me, 0, 10);
  init_desc(enemy, 1, 20);
  me.rand_prio.store(4);
  enemy.rand_prio.store(4);
  EXPECT_EQ(cm.resolve(*tc_, me, enemy, ConflictKind::kWriteWrite), Resolution::kAbortEnemy);
}

TEST_F(CmTest, RandomizedRoundsDrawsInRange) {
  RandomizedRounds cm(8);
  for (int i = 0; i < 100; ++i) {
    TxDesc tx;
    init_desc(tx, tc_->slot(), 10);
    cm.on_begin(*tc_, tx, false);
    const auto p = tx.rand_prio.load();
    EXPECT_GE(p, 1u);
    EXPECT_LE(p, 8u);
  }
}

TEST_F(CmTest, AtsSerializesAboveThreshold) {
  Ats cm(/*ci_threshold=*/0.5, /*alpha=*/0.0);  // alpha 0: CI = last outcome
  TxDesc tx;
  init_desc(tx, tc_->slot(), 10);
  // Low CI: no serialization.
  cm.on_begin(*tc_, tx, false);
  cm.on_commit(*tc_, tx);
  EXPECT_EQ(cm.serialized_begins(), 0u);
  // An abort pushes CI to 1 > threshold: the next begin takes the lane.
  cm.on_begin(*tc_, tx, false);
  cm.on_abort(*tc_, tx);
  EXPECT_GT(cm.ci_of(tc_->slot()), 0.5);
  cm.on_begin(*tc_, tx, true);
  EXPECT_EQ(cm.serialized_begins(), 1u);
  cm.on_commit(*tc_, tx);  // releases the lane
  EXPECT_LT(cm.ci_of(tc_->slot()), 0.5);
}

TEST_F(CmTest, AtsResolvesLikeTimestamp) {
  Ats cm;
  TxDesc old_tx, young_tx;
  init_desc(old_tx, 0, 10);
  init_desc(young_tx, 1, 20);
  EXPECT_EQ(cm.resolve(*tc_, old_tx, young_tx, ConflictKind::kWriteWrite),
            Resolution::kAbortEnemy);
  young_tx.status.store(TxStatus::kAborted);
  EXPECT_EQ(cm.resolve(*tc_, young_tx, old_tx, ConflictKind::kWriteWrite),
            Resolution::kAbortSelf);
}

TEST_F(CmTest, StealOnAbortRegistersTheAborter) {
  StealOnAbort cm;
  TxDesc me, enemy;
  init_desc(me, tc_->slot(), 10);
  init_desc(enemy, 1, 20);
  const auto refs_before = me.refs.load();
  EXPECT_EQ(cm.resolve(*tc_, me, enemy, ConflictKind::kWriteWrite), Resolution::kAbortEnemy);
  EXPECT_EQ(enemy.aborted_by.load(), &me);
  EXPECT_EQ(me.refs.load(), refs_before + 1);
  // The victim's cleanup path releases the registration.
  TxDesc* by = enemy.aborted_by.exchange(nullptr);
  by->release();
  EXPECT_EQ(me.refs.load(), refs_before);
}

TEST_F(CmTest, StealOnAbortVictimWaitsForFinishedAborter) {
  StealOnAbort cm;
  TxDesc me, aborter;
  init_desc(me, tc_->slot(), 10);
  init_desc(aborter, 1, 5);
  aborter.add_ref();
  me.aborted_by.store(&aborter);
  aborter.status.store(TxStatus::kCommitted);  // already done: no blocking
  cm.on_abort(*tc_, me);     // claims the registration
  cm.on_begin(*tc_, me, true);  // waits (returns immediately) and releases
  EXPECT_EQ(me.aborted_by.load(), nullptr);
  EXPECT_EQ(aborter.refs.load(), 1);
}

TEST(CmRegistry, CreatesEveryAdvertisedManager) {
  Params params;
  params.threads = 4;
  for (const auto& name : manager_names()) {
    ManagerPtr mgr = make_manager(name, params);
    ASSERT_NE(mgr, nullptr) << name;
    EXPECT_EQ(mgr->name(), name);
  }
}

TEST(CmRegistry, RejectsUnknownName) {
  EXPECT_THROW(make_manager("NoSuchManager", Params{}), std::invalid_argument);
}

TEST(CmRegistry, ClassifiesWindowManagers) {
  EXPECT_TRUE(is_window_manager("Online-Dynamic"));
  EXPECT_FALSE(is_window_manager("Polka"));
  for (const auto& name : window_manager_names()) EXPECT_TRUE(is_window_manager(name));
  for (const auto& name : classic_manager_names()) EXPECT_FALSE(is_window_manager(name));
}

}  // namespace
}  // namespace wstm::cm
