// Data-structure tests: oracle-checked sequential semantics (parameterized
// over list/rbtree/skiplist), red-black invariants, and concurrent stress
// with structural validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "cm/registry.hpp"
#include "stm/runtime.hpp"
#include "structs/intset.hpp"
#include "structs/rbtree.hpp"
#include "structs/sequential_set.hpp"
#include "structs/skiplist.hpp"
#include "util/rng.hpp"

namespace wstm::structs {
namespace {

std::unique_ptr<stm::Runtime> make_runtime(const std::string& cm = "Polka", unsigned threads = 4) {
  cm::Params params;
  params.threads = threads;
  params.window_n = 16;
  return std::make_unique<stm::Runtime>(cm::make_manager(cm, params));
}

class EveryKind : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(Kinds, EveryKind,
                         ::testing::Values("list", "rbtree", "skiplist", "hashtable"));

TEST_P(EveryKind, BasicInsertRemoveContains) {
  auto rt = make_runtime();
  stm::ThreadCtx& tc = rt->attach_thread();
  auto set = make_intset(GetParam());

  auto ins = [&](long k) { return rt->atomically(tc, [&](stm::Tx& tx) { return set->insert(tx, k); }); };
  auto rem = [&](long k) { return rt->atomically(tc, [&](stm::Tx& tx) { return set->remove(tx, k); }); };
  auto has = [&](long k) { return rt->atomically(tc, [&](stm::Tx& tx) { return set->contains(tx, k); }); };

  EXPECT_FALSE(has(5));
  EXPECT_TRUE(ins(5));
  EXPECT_FALSE(ins(5));  // duplicate
  EXPECT_TRUE(has(5));
  EXPECT_TRUE(ins(3));
  EXPECT_TRUE(ins(7));
  EXPECT_EQ(set->quiescent_elements(), (std::vector<long>{3, 5, 7}));
  EXPECT_TRUE(rem(5));
  EXPECT_FALSE(rem(5));  // absent
  EXPECT_FALSE(has(5));
  EXPECT_EQ(set->quiescent_elements(), (std::vector<long>{3, 7}));
}

TEST_P(EveryKind, MatchesOracleOverRandomOperations) {
  auto rt = make_runtime();
  stm::ThreadCtx& tc = rt->attach_thread();
  auto set = make_intset(GetParam());
  SequentialSet oracle;
  Xoshiro256 rng(2024);

  for (int i = 0; i < 4000; ++i) {
    const long key = static_cast<long>(rng.below(128));
    switch (rng.below(3)) {
      case 0: {
        const bool a = rt->atomically(tc, [&](stm::Tx& tx) { return set->insert(tx, key); });
        EXPECT_EQ(a, oracle.insert(key));
        break;
      }
      case 1: {
        const bool a = rt->atomically(tc, [&](stm::Tx& tx) { return set->remove(tx, key); });
        EXPECT_EQ(a, oracle.remove(key));
        break;
      }
      default: {
        const bool a = rt->atomically(tc, [&](stm::Tx& tx) { return set->contains(tx, key); });
        EXPECT_EQ(a, oracle.contains(key));
      }
    }
  }
  EXPECT_EQ(set->quiescent_elements(), oracle.elements());
}

TEST_P(EveryKind, OperationsComposeWithinOneTransaction) {
  auto rt = make_runtime();
  stm::ThreadCtx& tc = rt->attach_thread();
  auto set = make_intset(GetParam());
  // Move key 1 -> 2 atomically, inserting both first.
  rt->atomically(tc, [&](stm::Tx& tx) { set->insert(tx, 1); });
  rt->atomically(tc, [&](stm::Tx& tx) {
    EXPECT_TRUE(set->remove(tx, 1));
    EXPECT_TRUE(set->insert(tx, 2));
    EXPECT_FALSE(set->contains(tx, 1));
    EXPECT_TRUE(set->contains(tx, 2));
  });
  EXPECT_EQ(set->quiescent_elements(), (std::vector<long>{2}));
}

TEST_P(EveryKind, AbortedTransactionLeavesNoTrace) {
  auto rt = make_runtime();
  stm::ThreadCtx& tc = rt->attach_thread();
  auto set = make_intset(GetParam());
  rt->atomically(tc, [&](stm::Tx& tx) { set->insert(tx, 10); });
  int attempts = 0;
  rt->atomically(tc, [&](stm::Tx& tx) {
    set->insert(tx, 11);
    set->remove(tx, 10);
    if (++attempts < 3) tx.restart();
  });
  EXPECT_EQ(set->quiescent_elements(), (std::vector<long>{11}));
}

TEST_P(EveryKind, ConcurrentDistinctKeyInsertsAllLand) {
  constexpr unsigned kThreads = 4;
  constexpr long kPerThread = 60;
  auto rt = make_runtime("Online-Dynamic", kThreads);
  auto set = make_intset(GetParam());

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      stm::ThreadCtx& tc = rt->attach_thread();
      for (long i = 0; i < kPerThread; ++i) {
        const long key = static_cast<long>(t) * kPerThread + i;
        const bool ok = rt->atomically(tc, [&](stm::Tx& tx) { return set->insert(tx, key); });
        EXPECT_TRUE(ok);
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto elements = set->quiescent_elements();
  ASSERT_EQ(elements.size(), kThreads * kPerThread);
  for (long i = 0; i < static_cast<long>(kThreads * kPerThread); ++i) {
    EXPECT_EQ(elements[static_cast<std::size_t>(i)], i);
  }
}

class KindByCm : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};
INSTANTIATE_TEST_SUITE_P(
    Stress, KindByCm,
    ::testing::Combine(::testing::Values("list", "rbtree", "skiplist", "hashtable"),
                       ::testing::Values("Polka", "Greedy", "Priority", "Online-Dynamic",
                                         "Adaptive-Improved-Dynamic")),
    [](const auto& info) {
      std::string n = std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST_P(KindByCm, ConcurrentMixedStressKeepsStructureConsistent) {
  const auto& [kind, cm_name] = GetParam();
  constexpr unsigned kThreads = 4;
  constexpr int kOpsPerThread = 250;
  auto rt = make_runtime(cm_name, kThreads);
  auto set = make_intset(kind);
  std::atomic<long> net{0};

  {
    stm::ThreadCtx& tc = rt->attach_thread();
    for (long k = 0; k < 32; k += 2) {
      rt->atomically(tc, [&](stm::Tx& tx) { set->insert(tx, k); });
      net.fetch_add(1);
    }
    rt->detach_thread(tc);
  }

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      stm::ThreadCtx& tc = rt->attach_thread();
      Xoshiro256 rng(77 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const long key = static_cast<long>(rng.below(32));
        if (rng.below(2) == 0) {
          if (rt->atomically(tc, [&](stm::Tx& tx) { return set->insert(tx, key); })) {
            net.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          if (rt->atomically(tc, [&](stm::Tx& tx) { return set->remove(tx, key); })) {
            net.fetch_sub(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto elements = set->quiescent_elements();
  EXPECT_TRUE(std::is_sorted(elements.begin(), elements.end()));
  EXPECT_EQ(std::adjacent_find(elements.begin(), elements.end()), elements.end());
  EXPECT_EQ(static_cast<long>(elements.size()), net.load());
}

TEST(RBTreeInvariants, HoldAfterRandomChurn) {
  auto rt = make_runtime();
  stm::ThreadCtx& tc = rt->attach_thread();
  RBTreeSet set;
  Xoshiro256 rng(99);
  for (int i = 0; i < 3000; ++i) {
    const long key = static_cast<long>(rng.below(200));
    if (rng.below(2) == 0) {
      rt->atomically(tc, [&](stm::Tx& tx) { set.insert(tx, key); });
    } else {
      rt->atomically(tc, [&](stm::Tx& tx) { set.remove(tx, key); });
    }
    if (i % 250 == 0) {
      std::string why;
      ASSERT_TRUE(set.map().quiescent_invariants_ok(&why)) << why;
    }
  }
  std::string why;
  EXPECT_TRUE(set.map().quiescent_invariants_ok(&why)) << why;
}

TEST(RBTreeInvariants, HoldAfterConcurrentChurn) {
  constexpr unsigned kThreads = 4;
  auto rt = make_runtime("Online-Dynamic", kThreads);
  RBTreeSet set;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      stm::ThreadCtx& tc = rt->attach_thread();
      Xoshiro256 rng(1000 + t);
      for (int i = 0; i < 300; ++i) {
        const long key = static_cast<long>(rng.below(64));
        if (rng.below(2) == 0) {
          rt->atomically(tc, [&](stm::Tx& tx) { set.insert(tx, key); });
        } else {
          rt->atomically(tc, [&](stm::Tx& tx) { set.remove(tx, key); });
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  std::string why;
  EXPECT_TRUE(set.map().quiescent_invariants_ok(&why)) << why;
}

TEST(RBMapSemantics, GetUpdateAndGetForUpdate) {
  auto rt = make_runtime();
  stm::ThreadCtx& tc = rt->attach_thread();
  RBMap map;
  rt->atomically(tc, [&](stm::Tx& tx) {
    EXPECT_TRUE(map.insert(tx, 1, 100));
    EXPECT_FALSE(map.insert(tx, 1, 200));  // duplicate keeps old value
  });
  rt->atomically(tc, [&](stm::Tx& tx) {
    EXPECT_EQ(map.get(tx, 1), std::optional<long>(100));
    EXPECT_EQ(map.get(tx, 2), std::nullopt);
    EXPECT_TRUE(map.update(tx, 1, 150));
    EXPECT_FALSE(map.update(tx, 2, 1));
  });
  rt->atomically(tc, [&](stm::Tx& tx) {
    long* v = map.get_for_update(tx, 1);
    ASSERT_NE(v, nullptr);
    *v += 5;
    EXPECT_EQ(map.get_for_update(tx, 42), nullptr);
  });
  const auto entries = map.quiescent_entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0], (std::pair<long, long>(1, 155)));
}

TEST(IntSetFactory, RejectsUnknownKind) {
  EXPECT_THROW(make_intset("btree"), std::invalid_argument);
}

TEST(SkipListShape, ElementsStaySortedUnderPrepend) {
  auto rt = make_runtime();
  stm::ThreadCtx& tc = rt->attach_thread();
  SkipList sl;
  for (long k = 100; k >= 0; --k) {
    rt->atomically(tc, [&](stm::Tx& tx) { sl.insert(tx, k); });
  }
  const auto elements = sl.quiescent_elements();
  ASSERT_EQ(elements.size(), 101u);
  EXPECT_TRUE(std::is_sorted(elements.begin(), elements.end()));
}

}  // namespace
}  // namespace wstm::structs
