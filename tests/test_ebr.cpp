// Tests for the epoch-based reclamation domain.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ebr/ebr.hpp"

namespace wstm::ebr {
namespace {

std::atomic<int> g_freed{0};

struct Tracked {
  ~Tracked() { g_freed.fetch_add(1, std::memory_order_relaxed); }
};

class EbrTest : public ::testing::Test {
 protected:
  void SetUp() override { g_freed.store(0); }
};

TEST_F(EbrTest, RetireDefersUntilEpochsPass) {
  Domain domain;
  Handle h = domain.attach();
  h.pin();
  h.retire(new Tracked());
  EXPECT_EQ(g_freed.load(), 0);  // same epoch: must not free yet
  h.unpin();

  // Advance twice; the bin is only swept on reuse or collect, so push the
  // epoch and trigger another retire cycle.
  EXPECT_TRUE(domain.try_advance());
  EXPECT_TRUE(domain.try_advance());
  h.pin();
  h.retire(new Tracked());  // lands in a different bin
  h.unpin();
  EXPECT_TRUE(domain.try_advance());
  h.pin();
  h.retire(new Tracked());
  h.unpin();
  // First object was retired 3 epochs ago; its bin got reused and freed it.
  EXPECT_GE(g_freed.load(), 1);
}

TEST_F(EbrTest, PinnedThreadBlocksAdvance) {
  Domain domain;
  Handle a = domain.attach();
  Handle b = domain.attach();
  a.pin();
  EXPECT_TRUE(domain.try_advance());   // a observed the current epoch
  EXPECT_FALSE(domain.try_advance());  // now a is pinned one epoch behind
  a.unpin();
  EXPECT_TRUE(domain.try_advance());
  b.detach();
}

TEST_F(EbrTest, DetachMovesGarbageToOrphans) {
  {
    Domain domain;
    {
      Handle h = domain.attach();
      h.pin();
      h.retire(new Tracked());
      h.unpin();
      h.detach();
    }
    EXPECT_EQ(g_freed.load(), 0);  // parked as orphan
    domain.drain();
    EXPECT_EQ(g_freed.load(), 1);
  }
}

TEST_F(EbrTest, DomainDestructorFreesOrphans) {
  {
    Domain domain;
    Handle h = domain.attach();
    h.pin();
    h.retire(new Tracked());
    h.unpin();
    h.detach();
  }
  EXPECT_EQ(g_freed.load(), 1);
}

TEST_F(EbrTest, PendingCountsUnfreedRetirements) {
  Domain domain;
  Handle h = domain.attach();
  h.pin();
  h.retire(new Tracked());
  h.retire(new Tracked());
  EXPECT_EQ(h.pending(), 2u);
  h.unpin();
  h.detach();
  domain.drain();
  EXPECT_EQ(g_freed.load(), 2);
}

TEST_F(EbrTest, SlotsAreReusedAfterDetach) {
  Domain domain;
  std::vector<Handle> handles;
  for (unsigned i = 0; i < Domain::kMaxThreads; ++i) handles.push_back(domain.attach());
  EXPECT_THROW(domain.attach(), std::runtime_error);
  handles.pop_back();  // detaches one slot
  EXPECT_NO_THROW({ Handle h = domain.attach(); });
}

TEST_F(EbrTest, HandleMoveTransfersOwnership) {
  Domain domain;
  Handle a = domain.attach();
  a.pin();
  a.retire(new Tracked());
  a.unpin();
  Handle b = std::move(a);
  EXPECT_FALSE(a.attached());
  EXPECT_TRUE(b.attached());
  EXPECT_EQ(b.pending(), 1u);
}

// Stress: one writer repeatedly swaps a shared node and retires the old
// one; readers chase the pointer under a guard and must always observe a
// live object (checked via a magic field that the destructor poisons).
TEST_F(EbrTest, ConcurrentSwapAndReadStress) {
  struct MagicNode {
    std::atomic<std::uint64_t> magic{0xfeedfacecafebeefULL};
    ~MagicNode() { magic.store(0xdeadULL, std::memory_order_relaxed); }
  };

  Domain domain;
  std::atomic<MagicNode*> shared{new MagicNode()};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad_reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      Handle h = domain.attach();
      while (!stop.load(std::memory_order_acquire)) {
        Guard g(h);
        MagicNode* node = shared.load(std::memory_order_acquire);
        if (node->magic.load(std::memory_order_relaxed) != 0xfeedfacecafebeefULL) {
          bad_reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::thread writer([&] {
    Handle h = domain.attach();
    for (int i = 0; i < 3000; ++i) {
      Guard g(h);
      MagicNode* fresh = new MagicNode();
      MagicNode* old = shared.exchange(fresh, std::memory_order_acq_rel);
      h.retire(old);
    }
    stop.store(true, std::memory_order_release);
  });

  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad_reads.load(), 0u);
  delete shared.load();
}

}  // namespace
}  // namespace wstm::ebr
