// Tests for the thread-local slab/freelist pool (util/pool.hpp): alignment,
// recycling, size-class separation, cross-thread (remote) frees, the
// acquire/park registry, and multi-thread churn (the TSan target).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "util/pool.hpp"

namespace {

using wstm::util::Pool;
using wstm::util::pool_new;

struct PoolGuard {
  Pool* pool = Pool::acquire();
  ~PoolGuard() { Pool::park(pool); }
};

TEST(Pool, BlocksAreAlignedAndDistinct) {
  PoolGuard g;
  std::vector<void*> blocks;
  for (int i = 0; i < 100; ++i) {
    void* p = Pool::allocate(g.pool, 48);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % Pool::kBlockAlign, 0u);
    std::memset(p, 0xab, 48);  // the block must be fully writable
    for (void* q : blocks) EXPECT_NE(p, q);
    blocks.push_back(p);
  }
  for (void* p : blocks) Pool::deallocate(p);
}

TEST(Pool, LocalFreeIsRecycled) {
  PoolGuard g;
  void* p = Pool::allocate(g.pool, sizeof(long));
  Pool::deallocate(p);
  const std::uint64_t carved = g.pool->carved();
  void* q = Pool::allocate(g.pool, sizeof(long));
  EXPECT_EQ(q, p);                        // same block comes straight back
  EXPECT_EQ(g.pool->carved(), carved);    // without carving a new one
  EXPECT_GE(g.pool->reused(), 1u);
  Pool::deallocate(q);
}

TEST(Pool, SizeClassesDoNotMix) {
  PoolGuard g;
  void* small = Pool::allocate(g.pool, 64);
  void* large = Pool::allocate(g.pool, 1024);
  Pool::deallocate(small);
  Pool::deallocate(large);
  // A large request must not be satisfied by the freed small block.
  void* large2 = Pool::allocate(g.pool, 1024);
  EXPECT_EQ(large2, large);
  EXPECT_NE(large2, small);
  Pool::deallocate(large2);
}

TEST(Pool, OversizeAndNullPoolFallThrough) {
  PoolGuard g;
  void* huge = Pool::allocate(g.pool, Pool::kMaxBlock + 1);
  ASSERT_NE(huge, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(huge) % Pool::kBlockAlign, 0u);
  std::memset(huge, 0xcd, Pool::kMaxBlock + 1);
  Pool::deallocate(huge);  // owner == nullptr → straight to operator delete

  void* direct = Pool::allocate(nullptr, 64);
  ASSERT_NE(direct, nullptr);
  Pool::deallocate(direct);
}

TEST(Pool, RemoteFreeReturnsBlockToOwner) {
  PoolGuard g;
  void* p = Pool::allocate(g.pool, 64);
  std::thread other([p] { Pool::deallocate(p); });  // cross-thread free
  other.join();
  EXPECT_GE(g.pool->remote_freed(), 1u);
  // The owner's next free-list *miss* drains the remote stack and reuses p.
  // (The local free list may hold leftovers when several tests share one
  // parked pool in a single process, so allocate until it is exhausted; the
  // drain must hand p back before any fresh block is carved.)
  const std::uint64_t carved = g.pool->carved();
  std::vector<void*> held;
  void* q = nullptr;
  for (int i = 0; i < 100000 && q == nullptr; ++i) {
    void* r = Pool::allocate(g.pool, 64);
    if (r == p) {
      q = r;
    } else {
      held.push_back(r);
      ASSERT_EQ(g.pool->carved(), carved)
          << "remote-freed block must be drained before carving fresh blocks";
    }
  }
  ASSERT_EQ(q, p);
  Pool::deallocate(q);
  for (void* r : held) Pool::deallocate(r);
}

TEST(Pool, AcquireReusesParkedPool) {
  Pool* a = Pool::acquire();
  Pool::park(a);
  Pool* b = Pool::acquire();
  EXPECT_EQ(b, a);  // LIFO reuse of parked pools
  Pool::park(b);
}

TEST(Pool, PoolNewConstructsAndRoundTrips) {
  PoolGuard g;
  struct Probe {
    std::uint64_t a, b;
  };
  Probe* p = pool_new<Probe>(g.pool, Probe{1, 2});
  EXPECT_EQ(p->a, 1u);
  EXPECT_EQ(p->b, 2u);
  p->~Probe();
  Pool::deallocate(p);
}

// Producer/consumer churn across threads: each worker allocates from its own
// pool and frees blocks handed over by the previous worker (always a remote
// free). Run under TSan in CI.
TEST(Pool, ConcurrentRemoteChurn) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 2000;
  std::vector<std::atomic<void*>> mailbox(kThreads);
  for (auto& m : mailbox) m.store(nullptr);
  std::atomic<int> done{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Pool* pool = Pool::acquire();
      const int next = (t + 1) % kThreads;
      for (int i = 0; i < kRounds; ++i) {
        auto* block = static_cast<std::uint64_t*>(Pool::allocate(pool, 64));
        *block = static_cast<std::uint64_t>(t) << 32 | static_cast<std::uint32_t>(i);
        // Hand the block to the next worker; free whatever arrives for us.
        void* expected = nullptr;
        while (!mailbox[next].compare_exchange_weak(expected, block,
                                                    std::memory_order_acq_rel)) {
          expected = nullptr;
          if (void* in = mailbox[t].exchange(nullptr, std::memory_order_acq_rel)) {
            Pool::deallocate(in);
          }
        }
        if (void* in = mailbox[t].exchange(nullptr, std::memory_order_acq_rel)) {
          Pool::deallocate(in);
        }
      }
      done.fetch_add(1);
      // Keep draining until everyone is finished so no mailbox leaks.
      while (done.load() < kThreads) {
        if (void* in = mailbox[t].exchange(nullptr, std::memory_order_acq_rel)) {
          Pool::deallocate(in);
        }
        std::this_thread::yield();
      }
      Pool::park(pool);
    });
  }
  for (auto& w : workers) w.join();
  for (auto& m : mailbox) {
    if (void* in = m.exchange(nullptr)) Pool::deallocate(in);
  }
}

}  // namespace
