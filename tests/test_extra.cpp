// Additional cross-cutting coverage: read/write upgrades, wait metrics,
// window bookkeeping corner cases, harness matrix output, preemption
// emulation plumbing, and simulator option handling.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "sim/experiment.hpp"
#include "stm/runtime.hpp"
#include "vacation/manager.hpp"
#include "window/window_cm.hpp"

namespace wstm {
namespace {

TEST(StmUpgrade, ReadThenWriteThenReadSeesOwnValue) {
  cm::Params params;
  params.threads = 1;
  stm::Runtime rt(cm::make_manager("Polka", params));
  stm::ThreadCtx& tc = rt.attach_thread();
  stm::TObject<long> obj(5);
  rt.atomically(tc, [&](stm::Tx& tx) {
    EXPECT_EQ(*obj.open_read(tx), 5);
    *obj.open_write(tx) = 6;            // upgrade
    EXPECT_EQ(*obj.open_read(tx), 6);   // read-own-write after upgrade
    *obj.open_write(tx) = 7;            // second write reuses the clone
    EXPECT_EQ(*obj.open_read(tx), 7);
  });
  EXPECT_EQ(*obj.peek(), 7);
}

TEST(StmPeek, ReflectsOnlyCommittedState) {
  cm::Params params;
  params.threads = 1;
  stm::Runtime rt(cm::make_manager("Polka", params));
  stm::ThreadCtx& tc = rt.attach_thread();
  stm::TObject<long> obj(1);
  int attempts = 0;
  rt.atomically(tc, [&](stm::Tx& tx) {
    *obj.open_write(tx) = 99;
    if (++attempts == 1) tx.restart();  // first attempt aborts
  });
  EXPECT_EQ(*obj.peek(), 99);
  EXPECT_EQ(attempts, 2);
}

TEST(WindowExplicitStart, HonorsRequestedWindowLength) {
  cm::Params params;
  params.threads = 1;
  params.window_n = 50;
  stm::Runtime rt(cm::make_manager("Online", params));
  auto* wcm = dynamic_cast<window::WindowCM*>(&rt.manager());
  ASSERT_NE(wcm, nullptr);
  stm::ThreadCtx& tc = rt.attach_thread();
  rt.manager().on_window_start(tc, 3);  // explicit short window
  stm::TObject<int> obj(0);
  for (int i = 0; i < 3; ++i) {
    rt.atomically(tc, [&](stm::Tx& tx) { *obj.open_write(tx) += 1; });
  }
  auto snap = wcm->snapshot(tc.slot());
  EXPECT_EQ(snap.window_n, 3u);
  EXPECT_EQ(snap.windows_started, 1u);
  // The next transaction rolls into a default-length window.
  rt.atomically(tc, [&](stm::Tx& tx) { *obj.open_write(tx) += 1; });
  snap = wcm->snapshot(tc.slot());
  EXPECT_EQ(snap.window_n, 50u);
  EXPECT_EQ(snap.windows_started, 2u);
}

TEST(WindowOptionsRespected, ExplicitInitialCOverridesDefault) {
  window::WindowOptions opt;
  opt.threads = 8;
  opt.initial_c = 33.0;
  window::WindowCM cm("Online", opt);
  EXPECT_DOUBLE_EQ(cm.options().initial_c, 33.0);
}

TEST(HarnessPreempt, ExplicitPermilleRunsCleanly) {
  for (const std::int32_t permille : {0, 200}) {
    harness::RunConfig cfg;
    cfg.threads = 2;
    cfg.duration_ms = 60;
    cfg.preempt_permille = permille;
    auto w = harness::make_workload("list", 100, 64);
    const harness::RunResult r = harness::run_workload("Greedy", cm::Params{}, *w, cfg);
    EXPECT_TRUE(r.valid) << "permille=" << permille << ": " << r.why;
    EXPECT_GT(r.totals.commits, 0u);
  }
}

TEST(HarnessMatrix, PrintsOneTablePerBenchmark) {
  harness::MatrixSpec spec;
  spec.benchmarks = {"list", "rbtree"};
  spec.cms = {"Aggressive"};
  spec.thread_counts = {1};
  spec.base.duration_ms = 30;
  spec.repetitions = 1;
  std::ostringstream out;
  EXPECT_TRUE(harness::run_matrix_and_print(spec, harness::Metric::kThroughput, out));
  const std::string text = out.str();
  EXPECT_NE(text.find("# list"), std::string::npos);
  EXPECT_NE(text.find("# rbtree"), std::string::npos);
  EXPECT_NE(text.find("Aggressive"), std::string::npos);
}

TEST(MetricsWaits, CountedWhenManagerWaits) {
  // Greedy waits when the enemy is older: provoke one wait via two threads.
  cm::Params params;
  params.threads = 2;
  stm::Runtime rt(cm::make_manager("Greedy", params));
  stm::TObject<long> obj(0);

  std::atomic<bool> holder_ready{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    stm::ThreadCtx& tc = rt.attach_thread();
    rt.atomically(tc, [&](stm::Tx& tx) {
      *obj.open_write(tx) += 1;
      if (!holder_ready.exchange(true)) {
        while (!release.load(std::memory_order_acquire)) std::this_thread::yield();
      }
    });
  });
  while (!holder_ready.load(std::memory_order_acquire)) std::this_thread::yield();

  std::thread younger([&] {
    stm::ThreadCtx& tc = rt.attach_thread();
    // Younger attacker vs older active holder: Greedy waits, then the
    // holder finishes and the attacker retries successfully.
    rt.atomically(tc, [&](stm::Tx& tx) { *obj.open_write(tx) += 1; });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true, std::memory_order_release);
  holder.join();
  younger.join();

  EXPECT_EQ(*obj.peek(), 2);
  EXPECT_GE(rt.total_metrics().waits, 1u);
}

TEST(SimOptions, COverrideChangesDelays) {
  const sim::SimWindow w = sim::make_random_window(8, 8, 16, 2, 3);
  const sim::ConflictGraph g(w);
  sim::SchedulerOptions opt;
  opt.mode = sim::SchedulerOptions::Mode::kOnline;
  opt.c_override = 1.0;  // alpha = 1 everywhere: q_i = 0, no delays
  Xoshiro256 rng(4);
  const sim::SimResult r = sim::run_scheduler(w, g, opt, rng);
  EXPECT_EQ(r.commits, w.total());
}

TEST(SimOptions, QuadraticFrameExponentRuns) {
  const sim::SimWindow w = sim::make_random_window(4, 6, 16, 2, 5);
  const sim::ConflictGraph g(w);
  sim::SchedulerOptions opt;
  opt.mode = sim::SchedulerOptions::Mode::kOnline;
  opt.frame_log_exponent = 2.0;  // the Online theory's frame length
  Xoshiro256 rng(6);
  const sim::SimResult r = sim::run_scheduler(w, g, opt, rng);
  EXPECT_EQ(r.commits, w.total());
}

TEST(VacationQueries, MissingRowsReturnMinusOne) {
  cm::Params params;
  params.threads = 1;
  stm::Runtime rt(cm::make_manager("Polka", params));
  stm::ThreadCtx& tc = rt.attach_thread();
  vacation::Manager mgr;
  rt.atomically(tc, [&](stm::Tx& tx) {
    EXPECT_EQ(mgr.query_free(tx, vacation::ReservationType::kCar, 404), -1);
    EXPECT_EQ(mgr.query_price(tx, vacation::ReservationType::kRoom, 404), -1);
    EXPECT_EQ(mgr.query_customer_bill(tx, 404), std::nullopt);
  });
}

}  // namespace
}  // namespace wstm
