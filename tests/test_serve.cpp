// Serving front-end (src/serve/): bounded MPMC queue semantics including
// both backpressure modes, admission-policy placement determinism, worker
// pool drain/shutdown behaviour, TxServer lifecycle, and an end-to-end
// open-loop smoke run. Suite names all start with "Serve" so the CI TSan
// regex picks the whole file up.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cm/registry.hpp"
#include "harness/open_loop.hpp"
#include "harness/workload.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "stm/runtime.hpp"
#include "util/timing.hpp"

namespace wstm {
namespace {

using serve::AdmissionScheduler;
using serve::Backpressure;
using serve::BoundedQueue;
using serve::SchedulerConfig;
using serve::SubmitResult;
using serve::TxRequest;
using serve::TxServer;
using stm::Runtime;
using stm::Tx;

TxRequest req_with_key(std::uint64_t key) {
  TxRequest r;
  r.key = key;
  r.arg = key;
  return r;
}

// ---- bounded queue ---------------------------------------------------------

TEST(ServeQueue, CapacityRoundsUpAndRejectsWhenFull) {
  BoundedQueue q(5);  // rounds up to 8
  EXPECT_EQ(q.capacity(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(q.try_push(req_with_key(i)), BoundedQueue::PushResult::kOk);
  }
  // Reject-mode backpressure: a full ring fails fast, no blocking.
  EXPECT_EQ(q.try_push(req_with_key(99)), BoundedQueue::PushResult::kFull);
  EXPECT_EQ(q.stats().rejected_full, 1u);
  EXPECT_EQ(q.depth(), 8u);

  TxRequest out;
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.try_pop(&out));
    EXPECT_EQ(out.key, i);  // FIFO
  }
  EXPECT_FALSE(q.try_pop(&out));
  const BoundedQueue::Stats s = q.stats();
  EXPECT_EQ(s.enqueued, 8u);
  EXPECT_EQ(s.dequeued, 8u);
  EXPECT_EQ(s.max_depth, 8u);
}

TEST(ServeQueue, BlockModePushWaitsForSpace) {
  BoundedQueue q(2);
  ASSERT_EQ(q.try_push(req_with_key(0)), BoundedQueue::PushResult::kOk);
  ASSERT_EQ(q.try_push(req_with_key(1)), BoundedQueue::PushResult::kOk);

  // Block-mode backpressure: the producer parks until a consumer frees a
  // slot, then the push lands (never kFull).
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_EQ(q.push_wait(req_with_key(2)), BoundedQueue::PushResult::kOk);
    pushed.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load(std::memory_order_acquire));

  TxRequest out;
  ASSERT_TRUE(q.try_pop(&out));
  producer.join();
  EXPECT_TRUE(pushed.load(std::memory_order_acquire));
  EXPECT_EQ(q.depth(), 2u);
}

TEST(ServeQueue, CloseWakesWaitersAndDrainsRemainder) {
  BoundedQueue q(4);
  ASSERT_EQ(q.try_push(req_with_key(7)), BoundedQueue::PushResult::kOk);

  // A parked consumer on an empty-after-drain queue must wake on close()
  // instead of sleeping out its timeout budget forever.
  std::thread waiter([&] {
    TxRequest out;
    // First pop gets the item; the second observes closed+empty → false.
    EXPECT_TRUE(q.pop_wait(&out, std::int64_t{5'000'000'000}));
    EXPECT_EQ(out.key, 7u);
    EXPECT_FALSE(q.pop_wait(&out, std::int64_t{5'000'000'000}));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  waiter.join();

  EXPECT_EQ(q.try_push(req_with_key(8)), BoundedQueue::PushResult::kClosed);
  EXPECT_EQ(q.push_wait(req_with_key(9)), BoundedQueue::PushResult::kClosed);
}

TEST(ServeQueue, CloseRacingParkedConsumerReturnsPromptly) {
  // Regression for a lost shutdown wakeup: pop_wait checked closed_ only
  // *before* announcing itself in pop_waiters_, so a close() landing between
  // the announcement and the condition-variable wait delivered its
  // notify_all to nobody and the consumer slept out its full timeout. Same
  // window existed in push_wait for a producer blocked on a full queue. The
  // fix re-checks closed_ under wait_mutex_ (close() stores the flag before
  // taking the mutex to notify, so the mutex-held re-check cannot miss it).
  // Hammer the window: with the bug, iterations that lose the race cost the
  // full 300 ms timeout each and blow the elapsed bound; fixed, every close
  // returns the waiters near-instantly. TSan covers the ordering claim.
  constexpr int kIters = 60;
  constexpr std::int64_t kPopTimeoutNs = 300'000'000;
  const auto begin = std::chrono::steady_clock::now();
  for (int iter = 0; iter < kIters; ++iter) {
    BoundedQueue q(2);
    // Full queue so the producer side parks too.
    ASSERT_EQ(q.try_push(req_with_key(1)), BoundedQueue::PushResult::kOk);
    ASSERT_EQ(q.try_push(req_with_key(2)), BoundedQueue::PushResult::kOk);
    std::atomic<int> ready{0};
    std::thread producer([&] {
      ready.fetch_add(1, std::memory_order_acq_rel);
      // kOk when the consumer freed a slot first, kClosed when close() won
      // the race — either way it must return, never sleep out the shutdown.
      EXPECT_NE(q.push_wait(req_with_key(3)), BoundedQueue::PushResult::kFull);
    });
    std::thread consumer([&] {
      TxRequest out;
      // Drain the two items, then park on the empty queue until close().
      while (q.pop_wait(&out, kPopTimeoutNs)) {
      }
      ready.fetch_add(1, std::memory_order_acq_rel);
    });
    while (ready.load(std::memory_order_acquire) < 1) std::this_thread::yield();
    q.close();  // races the consumer's park and the producer's full-queue park
    producer.join();
    consumer.join();
  }
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  // Fixed: the whole loop is thread churn, far under one second. Buggy: a
  // handful of lost wakeups alone exceed this bound.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            10LL * kIters)
      << "close() left a parked waiter sleeping out its timeout";
}

TEST(ServeQueue, MpmcStressKeepsEveryItemExactlyOnce) {
  constexpr unsigned kProducers = 4;
  constexpr unsigned kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 2000;
  BoundedQueue q(64);
  std::atomic<std::uint64_t> popped_sum{0};
  std::atomic<std::uint64_t> popped_count{0};

  std::vector<std::thread> threads;
  for (unsigned p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v = p * kPerProducer + i + 1;
        while (q.push_wait(req_with_key(v)) != BoundedQueue::PushResult::kOk) {
        }
      }
    });
  }
  for (unsigned c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      TxRequest out;
      while (q.pop_wait(&out, std::int64_t{2'000'000})) {
        popped_sum.fetch_add(out.key, std::memory_order_relaxed);
        popped_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (unsigned p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (unsigned c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  const std::uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(popped_count.load(), n);
  EXPECT_EQ(popped_sum.load(), n * (n + 1) / 2);
  EXPECT_EQ(q.stats().enqueued, n);
  EXPECT_EQ(q.stats().dequeued, n);
}

// ---- admission policies ----------------------------------------------------

std::vector<unsigned> placements(AdmissionScheduler& s, const std::vector<std::uint64_t>& keys) {
  std::vector<unsigned> out;
  out.reserve(keys.size());
  for (const std::uint64_t k : keys) out.push_back(s.place(req_with_key(k)));
  return out;
}

TEST(ServePolicy, FactoryKnowsEveryAdvertisedName) {
  SchedulerConfig sc;
  sc.n_queues = 4;
  for (const std::string& name : serve::scheduler_names()) {
    auto s = serve::make_scheduler(name, sc);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(s->name(), name);
    EXPECT_EQ(s->n_queues(), 4u);
    // Placement always stays in range.
    for (std::uint64_t k = 0; k < 100; ++k) {
      EXPECT_LT(s->place(req_with_key(k * 40503u)), 4u) << name;
    }
  }
  EXPECT_THROW(serve::make_scheduler("no-such-policy", sc), std::invalid_argument);
}

TEST(ServePolicy, RoundRobinCyclesAllQueues) {
  SchedulerConfig sc;
  sc.n_queues = 3;
  auto s = serve::make_scheduler("round-robin", sc);
  const auto p = placements(*s, {9, 9, 9, 9, 9, 9});
  // Key-oblivious rotation: every queue hit once per period.
  for (std::size_t i = 0; i + 3 < p.size(); ++i) EXPECT_EQ(p[i], p[i + 3]);
  EXPECT_EQ(std::set<unsigned>(p.begin(), p.end()).size(), 3u);
}

TEST(ServePolicy, PlacementIsDeterministicAcrossInstances) {
  const std::vector<std::uint64_t> keys = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
  SchedulerConfig sc;
  sc.n_queues = 4;
  sc.seed = 0xfeedface;
  for (const std::string& name : serve::scheduler_names()) {
    auto a = serve::make_scheduler(name, sc);
    auto b = serve::make_scheduler(name, sc);
    // Two identically-configured instances place a fixed key stream
    // identically — reproducibility of the fig_serve_scaling sweeps.
    EXPECT_EQ(placements(*a, keys), placements(*b, keys)) << name;
  }
}

TEST(ServePolicy, KeyHashIsStablePerKey) {
  SchedulerConfig sc;
  sc.n_queues = 8;
  auto s = serve::make_scheduler("key-hash", sc);
  for (std::uint64_t k = 0; k < 64; ++k) {
    const unsigned first = s->place(req_with_key(k));
    for (int rep = 0; rep < 4; ++rep) EXPECT_EQ(s->place(req_with_key(k)), first);
  }
}

TEST(ServePolicy, ConflictGraphIsolatesHotKeysAfterFeedback) {
  SchedulerConfig sc;
  sc.n_queues = 8;
  sc.hot_threshold = 0.25;
  sc.hot_lane_fraction = 0.25;  // 2 hot lanes of 8 queues
  auto s = serve::make_scheduler("conflict-graph", sc);

  constexpr std::uint64_t kHot = 42;
  // Cold key, cold system: spreads (round-robin) — placements vary.
  std::set<unsigned> before;
  for (int i = 0; i < 16; ++i) before.insert(s->place(req_with_key(kHot)));
  EXPECT_GT(before.size(), 1u);

  // Workers report the key aborting heavily; its EWMA crosses the hot
  // threshold and the global contention estimate rises with it.
  for (int i = 0; i < 64; ++i) s->on_executed(kHot, 4);

  // Hot key, hot system: pinned into the hot-lane set — one stable queue.
  std::set<unsigned> after;
  for (int i = 0; i < 16; ++i) after.insert(s->place(req_with_key(kHot)));
  EXPECT_EQ(after.size(), 1u);
  EXPECT_LT(*after.begin(), 2u);  // inside the 2 reserved hot lanes
}

TEST(ServePolicy, WindowFrameRotatesWithTheFrameClock) {
  // With a real window CM the schedule rotates: the same key maps to
  // different queues as current_frame advances. Drive the frame forward by
  // committing transactions (static variants derive a synthetic frame from
  // elapsed time; use the dynamic controller for a deterministic hop).
  cm::Params params;
  params.threads = 2;
  params.window_n = 4;
  auto manager = cm::make_manager("Online-Dynamic", params);

  SchedulerConfig sc;
  sc.n_queues = 4;
  sc.manager = manager.get();
  auto s = serve::make_scheduler("window-frame", sc);

  cm::FrameSchedule fs;
  ASSERT_TRUE(manager->frame_schedule(&fs));
  const unsigned q0 = s->place(req_with_key(5));
  // Same frame, same key → same queue (determinism within a frame).
  EXPECT_EQ(s->place(req_with_key(5)), q0);

  // Without a manager the policy degrades to static key-hash placement.
  SchedulerConfig bare;
  bare.n_queues = 4;
  auto fallback = serve::make_scheduler("window-frame", bare);
  const unsigned f0 = fallback->place(req_with_key(5));
  EXPECT_EQ(fallback->place(req_with_key(5)), f0);
}

// ---- worker pool + TxServer lifecycle --------------------------------------

struct CounterCtx {
  stm::TObject<long>* cell = nullptr;
  std::atomic<std::uint64_t> done_calls{0};
};

std::uint64_t increment_fn(Tx& tx, void* ctx, std::uint64_t) {
  auto* c = static_cast<CounterCtx*>(ctx);
  long& v = *c->cell->open_write(tx);
  v += 1;
  return static_cast<std::uint64_t>(v);
}

void count_done(void* ctx, std::uint64_t, std::uint64_t) {
  static_cast<CounterCtx*>(ctx)->done_calls.fetch_add(1, std::memory_order_relaxed);
}

TEST(ServeServer, GracefulStopDrainsEverythingAccepted) {
  cm::Params params;
  params.threads = 4;
  Runtime rt(cm::make_manager("Polka", params));
  stm::TObject<long> cell(0L);
  CounterCtx ctx{&cell, {}};

  serve::ServerConfig cfg;
  cfg.n_workers = 4;
  cfg.queue_capacity = 256;
  cfg.backpressure = Backpressure::kBlock;  // lossless for this test
  TxServer server(rt, cfg);
  server.start();

  constexpr std::uint64_t kRequests = 2000;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    TxRequest r;
    r.fn = increment_fn;
    r.done = count_done;
    r.ctx = &ctx;
    r.key = i % 17;
    ASSERT_EQ(server.submit(r), SubmitResult::kAccepted);
  }
  server.stop();  // closes queues; workers drain the backlog, then exit

  EXPECT_EQ(cell.peek() != nullptr ? *cell.peek() : -1L, static_cast<long>(kRequests));
  EXPECT_EQ(ctx.done_calls.load(), kRequests);
  const TxServer::Stats s = server.stats();
  EXPECT_EQ(s.accepted, kRequests);
  EXPECT_EQ(s.enqueued, kRequests);
  EXPECT_EQ(s.dequeued, kRequests);
  EXPECT_EQ(rt.total_metrics().serve_completed, kRequests);
  // After stop, submits are refused, not queued.
  TxRequest late;
  late.fn = increment_fn;
  late.ctx = &ctx;
  EXPECT_EQ(server.submit(late), SubmitResult::kRejectedStopping);
}

TEST(ServeServer, RejectModeShedsWhenQueuesFill) {
  cm::Params params;
  params.threads = 1;
  Runtime rt(cm::make_manager("Aggressive", params));
  stm::TObject<long> cell(0L);
  CounterCtx ctx{&cell, {}};

  serve::ServerConfig cfg;
  cfg.n_workers = 1;
  cfg.queue_capacity = 4;
  cfg.backpressure = Backpressure::kReject;
  TxServer server(rt, cfg);  // workers not started: queue can only fill

  unsigned accepted = 0, rejected = 0;
  for (int i = 0; i < 64; ++i) {
    TxRequest r;
    r.fn = increment_fn;
    r.ctx = &ctx;
    (server.submit(r) == SubmitResult::kAccepted ? accepted : rejected)++;
  }
  EXPECT_EQ(accepted, 4u);
  EXPECT_EQ(rejected, 60u);
  EXPECT_EQ(server.stats().rejected_full, 60u);

  server.start();  // drain the 4 queued ones, then stop
  server.stop();
  EXPECT_EQ(rt.total_metrics().serve_completed, 4u);
}

TEST(ServeServer, RuntimeShutdownShedsBacklogAsCancelled) {
  cm::Params params;
  params.threads = 2;
  Runtime rt(cm::make_manager("Polka", params));
  stm::TObject<long> cell(0L);
  CounterCtx ctx{&cell, {}};

  serve::ServerConfig cfg;
  cfg.n_workers = 2;
  cfg.queue_capacity = 4096;
  TxServer server(rt, cfg);
  // Queue a large backlog before any worker runs.
  constexpr std::uint64_t kRequests = 3000;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    TxRequest r;
    r.fn = increment_fn;
    r.done = count_done;
    r.ctx = &ctx;
    ASSERT_EQ(server.submit(r), SubmitResult::kAccepted);
  }

  server.start();
  rt.shutdown();  // atomically() now throws RuntimeStoppedError
  server.stop();  // must return: workers shed the backlog instead of hanging

  const stm::ThreadMetrics m = rt.total_metrics();
  // Every dequeued request either committed (before shutdown won the race)
  // or was cancelled — nothing is silently lost and done fires only for
  // the commits.
  EXPECT_EQ(m.serve_completed + m.serve_cancelled, m.serve_dequeued);
  EXPECT_GT(m.serve_cancelled, 0u);
  EXPECT_EQ(ctx.done_calls.load(), m.serve_completed);
  EXPECT_EQ(cell.peek() != nullptr ? static_cast<std::uint64_t>(*cell.peek()) : 0u,
            m.serve_completed);
  // And the server refuses new work once the runtime is stopping.
  TxRequest late;
  late.fn = increment_fn;
  late.ctx = &ctx;
  EXPECT_EQ(server.submit(late), SubmitResult::kRejectedStopping);
}

TEST(ServeServer, ExpiredRequestsAreShedNotExecuted) {
  cm::Params params;
  params.threads = 1;
  Runtime rt(cm::make_manager("Polka", params));
  stm::TObject<long> cell(0L);
  CounterCtx ctx{&cell, {}};

  serve::ServerConfig cfg;
  cfg.n_workers = 1;
  cfg.queue_capacity = 64;
  TxServer server(rt, cfg);  // not started yet

  for (int i = 0; i < 10; ++i) {
    TxRequest r;
    r.fn = increment_fn;
    r.done = count_done;
    r.ctx = &ctx;
    r.deadline_ns = now_ns() - 1;  // already past due
    ASSERT_EQ(server.submit(r), SubmitResult::kAccepted);
  }
  server.start();
  server.stop();

  const stm::ThreadMetrics m = rt.total_metrics();
  EXPECT_EQ(m.serve_expired, 10u);
  EXPECT_EQ(m.serve_completed, 0u);
  EXPECT_EQ(ctx.done_calls.load(), 0u);  // done never fires for shed work
  EXPECT_EQ(cell.peek() != nullptr ? *cell.peek() : -1L, 0L);
}

// ---- end-to-end open loop --------------------------------------------------

TEST(ServeOpenLoop, SmokeAtEightWorkersSustainsLoadAndValidates) {
  auto workload = harness::make_workload("hashtable", 50, 512, 0.8);
  ASSERT_TRUE(workload->open_loop_capable());

  harness::RunConfig run;
  run.threads = 8;
  run.duration_ms = 200;
  run.seed = 7;
  run.pin_threads = false;

  harness::ServeConfig serve_cfg;
  serve_cfg.arrival_rate = 20'000.0;
  serve_cfg.producers = 2;
  serve_cfg.policy = "conflict-graph";
  serve_cfg.queue_capacity = 1024;

  const harness::OpenLoopResult r =
      harness::run_open_loop("Karma", cm::Params{}, *workload, run, serve_cfg);

  EXPECT_TRUE(r.base.valid) << r.base.why;
  EXPECT_GT(r.offered, 0u);
  EXPECT_GT(r.server.accepted, 0u);
  EXPECT_LE(r.server.accepted, r.offered);
  EXPECT_GT(r.base.summary.commits, 0u);
  EXPECT_GT(r.completed_per_s, 0.0);
  // Every accepted request is accounted for: completed, expired (none here
  // — no deadline), or cancelled (none — graceful stop).
  EXPECT_EQ(r.base.totals.serve_completed + r.expired + r.cancelled, r.server.dequeued);
  EXPECT_EQ(r.server.dequeued, r.server.enqueued);
  // Sojourn percentiles came from the reservoir and are ordered.
  EXPECT_GT(r.base.latency_count, 0u);
  EXPECT_LE(r.base.p50_us, r.base.p95_us);
  EXPECT_LE(r.base.p95_us, r.base.p99_us);
}

TEST(ServeOpenLoop, AllPoliciesRunTheSameWorkloadValidly) {
  for (const std::string& policy : serve::scheduler_names()) {
    auto workload = harness::make_workload("hashtable", 50, 256, 0.0);
    harness::RunConfig run;
    run.threads = 4;
    run.duration_ms = 80;
    run.seed = 11;
    run.pin_threads = false;

    harness::ServeConfig serve_cfg;
    serve_cfg.arrival_rate = 10'000.0;
    serve_cfg.policy = policy;

    const harness::OpenLoopResult r =
        harness::run_open_loop("Online", cm::Params{}, *workload, run, serve_cfg);
    EXPECT_TRUE(r.base.valid) << policy << ": " << r.base.why;
    EXPECT_GT(r.base.totals.serve_completed, 0u) << policy;
  }
}

}  // namespace
}  // namespace wstm
