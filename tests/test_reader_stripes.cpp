// Striped visible-reader records and the sharded EBR/pool registries.
//
// The single 64-bit reader bitmap capped the process at 64 visible readers
// and funneled every announce/clear through one cache line; these tests pin
// the stripe arithmetic, drive more than 64 simultaneous visible readers
// through one object (impossible before), and churn threads through the
// sharded pool registry and EBR domain from many threads at once — the
// latter two run under TSan in CI (suite names carry Pool/Ebr/Stripes).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "cm/registry.hpp"
#include "ebr/ebr.hpp"
#include "stm/runtime.hpp"
#include "stm/tobject.hpp"
#include "util/pool.hpp"

namespace wstm::stm {
namespace {

TEST(ReaderStripes, SlotArithmeticRoundTrips) {
  for (unsigned slot = 0; slot < ReaderStripes::kCapacity; ++slot) {
    const unsigned stripe = ReaderStripes::stripe_of(slot);
    const std::uint64_t bit = ReaderStripes::bit_of(slot);
    EXPECT_LT(stripe, ReaderStripes::kStripes);
    EXPECT_NE(bit, 0u);
    const unsigned bit_index = static_cast<unsigned>(__builtin_ctzll(bit));
    EXPECT_EQ(ReaderStripes::slot_at(stripe, bit_index), slot);
  }
  static_assert(Runtime::kMaxThreads <= ReaderStripes::kCapacity);
}

TEST(ReaderStripes, AnnounceClearAllSlotsIndependently) {
  ReaderStripes rs;
  for (unsigned slot = 0; slot < ReaderStripes::kCapacity; ++slot) {
    EXPECT_FALSE(rs.announced(slot));
    rs.announce(slot);
    EXPECT_TRUE(rs.announced(slot));
  }
  // Every stripe word is fully populated: 64 bits each.
  for (unsigned s = 0; s < ReaderStripes::kStripes; ++s) {
    EXPECT_EQ(rs.load_stripe(s, std::memory_order_relaxed), ~std::uint64_t{0});
  }
  for (unsigned slot = 0; slot < ReaderStripes::kCapacity; slot += 2) rs.clear(slot);
  for (unsigned slot = 0; slot < ReaderStripes::kCapacity; ++slot) {
    EXPECT_EQ(rs.announced(slot), slot % 2 == 1);
  }
}

// More than 64 threads hold visible-read transactions on ONE object at the
// same instant — beyond the old bitmap's ceiling. Each parks inside its
// transaction until every thread has its read announced, then commits.
TEST(ReaderStripes, MoreThanSixtyFourSimultaneousVisibleReaders) {
  constexpr unsigned kReaders = 80;
  static_assert(kReaders > 64 && kReaders <= Runtime::kMaxThreads);
  cm::Params params;
  params.threads = kReaders;
  RuntimeConfig cfg;  // visible reads (default)
  auto rt = std::make_unique<Runtime>(cm::make_manager("Polite", params), cfg);
  TObject<long> obj(42);
  std::atomic<unsigned> inside{0};
  std::vector<std::thread> readers;
  for (unsigned t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      ThreadCtx& tc = rt->attach_thread();
      const long v = rt->atomically(tc, [&](Tx& tx) {
        const long x = *obj.open_read(tx);
        inside.fetch_add(1, std::memory_order_acq_rel);
        // Read-only transactions cannot conflict; wait until all 80 reads
        // are simultaneously announced on the stripes.
        while (inside.load(std::memory_order_acquire) < kReaders) {
          std::this_thread::yield();
        }
        return x;
      });
      EXPECT_EQ(v, 42);
    });
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(rt->total_metrics().commits, kReaders);
  EXPECT_EQ(rt->total_metrics().aborts, 0u);
}

// A writer must resolve readers across ALL stripes: park more than 64
// readers inside announced read transactions on one object, then commit a
// single Aggressive write. The acquire scans every stripe word and aborts
// every announced reader — beyond the old bitmap's 64-slot reach.
TEST(ReaderStripes, WriterResolvesReadersAcrossStripes) {
  constexpr unsigned kReaders = 72;
  cm::Params params;
  params.threads = kReaders + 1;
  RuntimeConfig cfg;
  auto rt = std::make_unique<Runtime>(cm::make_manager("Aggressive", params), cfg);
  TObject<long> obj(0);
  std::atomic<unsigned> inside{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> readers;
  for (unsigned t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      ThreadCtx& tc = rt->attach_thread();
      bool counted = false;
      const long v = rt->atomically(tc, [&](Tx& tx) {
        const long x = *obj.open_read(tx);
        if (!counted) {
          counted = true;
          inside.fetch_add(1, std::memory_order_acq_rel);
        }
        // Hold the read announced until the writer has committed. The write
        // aborts this attempt; the retry sees `go` set, falls straight
        // through, and commits against the new version.
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        return x;
      });
      EXPECT_TRUE(v == 0 || v == 1);
    });
  }
  {
    ThreadCtx& tc = rt->attach_thread();
    while (inside.load(std::memory_order_acquire) < kReaders) {
      std::this_thread::yield();
    }
    // All 72 reads are simultaneously announced across the stripes.
    rt->atomically(tc, [&](Tx& tx) { *obj.open_write(tx) = 1; });
    go.store(true, std::memory_order_release);
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(*obj.peek(), 1);
  // Aggressive resolves every announced reader at acquire time; finding all
  // 72 requires scanning slots past bit 63, i.e. stripes beyond the first.
  EXPECT_GE(rt->total_metrics().wr_conflicts, kReaders);
}

// Thread churn through the sharded pool registry: pools parked in one
// shard must be re-acquirable (possibly via cross-shard steal) and blocks
// freed cross-thread must survive the park/acquire cycle. TSan coverage
// for the per-shard locks + remote-free stacks.
TEST(PoolShardedRegistry, CrossThreadChurnRecyclesPools) {
  constexpr unsigned kThreads = 16;
  constexpr int kRounds = 40;
  std::vector<std::thread> workers;
  std::atomic<void*> handoff[kThreads] = {};
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        util::Pool* pool = util::Pool::acquire();
        void* block = util::Pool::allocate(pool, 128);
        // Hand the block to the next worker's slot; whoever finds one
        // frees it remotely (exercises the remote-free stack of a pool
        // that may be parked or re-owned by then).
        void* prev = handoff[(t + 1) % kThreads].exchange(block, std::memory_order_acq_rel);
        if (prev != nullptr) util::Pool::deallocate(prev);
        util::Pool::park(pool);
      }
    });
  }
  for (auto& w : workers) w.join();
  for (auto& h : handoff) {
    if (void* p = h.load(std::memory_order_acquire)) util::Pool::deallocate(p);
  }
}

// EBR with the sharded slot array: attach across shards, retire under churn,
// and verify the sync counter hook counts full-domain epoch advances.
TEST(EbrShardedDomain, RetireChurnAcrossShardsReclaimsAndCountsSyncs) {
  ebr::Domain domain;
  constexpr unsigned kThreads = 12;
  constexpr int kRetires = 3000;
  std::vector<std::uint64_t> syncs(kThreads, 0);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ebr::Handle h = domain.attach();
      h.set_sync_counter(&syncs[t]);
      for (int i = 0; i < kRetires; ++i) {
        ebr::Guard g(h);
        h.retire(new std::uint64_t(static_cast<std::uint64_t>(i)),
                 [](void* q) { delete static_cast<std::uint64_t*>(q); });
      }
    });
  }
  for (auto& w : workers) w.join();
  domain.drain();
  std::uint64_t total_syncs = 0;
  for (const std::uint64_t s : syncs) total_syncs += s;
  // kThreads * kRetires retirements at one advance attempt per 64 retires:
  // plenty of opportunities; at least some must have fully synced.
  EXPECT_GT(total_syncs, 0u);
  EXPECT_LT(domain.epoch(), static_cast<std::uint64_t>(kThreads) * kRetires);
}

TEST(EbrShardedDomain, AttachFillsAllShardsUpToCapacity) {
  ebr::Domain domain;
  std::vector<ebr::Handle> handles;
  handles.reserve(ebr::Domain::kMaxThreads);
  for (unsigned i = 0; i < ebr::Domain::kMaxThreads; ++i) {
    handles.push_back(domain.attach());
  }
  EXPECT_THROW(domain.attach(), std::runtime_error);
  handles.clear();  // detach all
  // Slots released: attach works again.
  ebr::Handle again = domain.attach();
  EXPECT_TRUE(again.attached());
}

}  // namespace
}  // namespace wstm::stm
