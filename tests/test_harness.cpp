// Harness tests: workload construction and validation, the timed and
// fixed-commit runners, and repetition averaging.
#include <gtest/gtest.h>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"

namespace wstm::harness {
namespace {

TEST(Workloads, FactoryBuildsEveryBenchmark) {
  for (const char* name : {"list", "rbtree", "skiplist", "vacation"}) {
    auto w = make_workload(name);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->name(), name);
  }
  EXPECT_THROW(make_workload("queue"), std::invalid_argument);
}

TEST(Workloads, IntSetPopulatesHalfTheRange) {
  IntSetConfig cfg;
  cfg.kind = "list";
  cfg.key_range = 64;
  IntSetWorkload w(cfg);
  cm::Params params;
  params.threads = 1;
  stm::Runtime rt(cm::make_manager("Polka", params));
  stm::ThreadCtx& tc = rt.attach_thread();
  w.populate(rt, tc);
  EXPECT_EQ(w.set().quiescent_elements().size(), 32u);
  std::string why;
  EXPECT_TRUE(w.validate(&why)) << why;
}

TEST(Workloads, ValidationCatchesSizeDrift) {
  IntSetConfig cfg;
  cfg.kind = "list";
  cfg.key_range = 16;
  IntSetWorkload w(cfg);
  cm::Params params;
  params.threads = 1;
  stm::Runtime rt(cm::make_manager("Polka", params));
  stm::ThreadCtx& tc = rt.attach_thread();
  w.populate(rt, tc);
  // Run one op the workload doesn't know about: the book-keeping no longer
  // matches the structure, and validate must notice.
  auto* set = const_cast<structs::TxIntSet*>(&w.set());
  rt.atomically(tc, [&](stm::Tx& tx) { set->insert(tx, 1); });
  std::string why;
  EXPECT_FALSE(w.validate(&why));
  EXPECT_FALSE(why.empty());
}

TEST(Runner, TimedRunProducesCommitsAndValidates) {
  auto w = make_workload("list", 100, 64);
  RunConfig cfg;
  cfg.threads = 2;
  cfg.duration_ms = 120;
  const RunResult r = run_workload("Polka", cm::Params{}, *w, cfg);
  EXPECT_TRUE(r.valid) << r.why;
  EXPECT_GT(r.totals.commits, 0u);
  EXPECT_GT(r.summary.throughput_per_s, 0.0);
  EXPECT_GE(r.elapsed_ns, 100 * 1'000'000);
}

TEST(Runner, FixedCommitRunStopsAtTarget) {
  auto w = make_workload("rbtree", 100, 64);
  RunConfig cfg;
  cfg.threads = 2;
  cfg.fixed_commits = 500;
  const RunResult r = run_workload("Greedy", cm::Params{}, *w, cfg);
  EXPECT_TRUE(r.valid) << r.why;
  EXPECT_GE(r.totals.commits, 500u);
  // Threads stop promptly: no more than target + threads extra.
  EXPECT_LE(r.totals.commits, 500u + cfg.threads);
}

TEST(Runner, WindowManagersRunThroughTheHarness) {
  auto w = make_workload("skiplist", 100, 64);
  RunConfig cfg;
  cfg.threads = 2;
  cfg.duration_ms = 100;
  const RunResult r = run_workload("Adaptive-Improved-Dynamic", cm::Params{}, *w, cfg);
  EXPECT_TRUE(r.valid) << r.why;
  EXPECT_GT(r.totals.commits, 0u);
}

TEST(Runner, RepeatedRunsAggregate) {
  RunConfig cfg;
  cfg.threads = 2;
  cfg.duration_ms = 60;
  const RepeatedResult r = run_repeated(
      "Polka", cm::Params{}, [] { return make_workload("list", 100, 64); }, cfg, 2);
  EXPECT_TRUE(r.valid) << r.why;
  EXPECT_GT(r.mean_throughput, 0.0);
}

TEST(Report, MetricNamesAreDistinct) {
  EXPECT_NE(metric_name(Metric::kThroughput), metric_name(Metric::kAbortsPerCommit));
  EXPECT_NE(metric_name(Metric::kElapsedMs), metric_name(Metric::kWastedFraction));
}

TEST(Report, CliRoundTripBuildsSpec) {
  Cli cli;
  register_matrix_flags(cli, "list", "Polka,Greedy", "1,2", 100, 1);
  const char* argv[] = {"prog", "--threads=1", "--ms=50", "--update-percent=60",
                        "--csv"};
  ASSERT_TRUE(cli.parse(5, argv));
  const MatrixSpec spec = matrix_from_cli(cli);
  EXPECT_EQ(spec.benchmarks, (std::vector<std::string>{"list"}));
  EXPECT_EQ(spec.cms, (std::vector<std::string>{"Polka", "Greedy"}));
  EXPECT_EQ(spec.thread_counts, (std::vector<std::int64_t>{1}));
  EXPECT_EQ(spec.base.duration_ms, 50);
  EXPECT_EQ(spec.update_percent, 60u);
  EXPECT_TRUE(spec.csv);
}

}  // namespace
}  // namespace wstm::harness
