// Simulator tests: window generation, conflict graphs, coloring, and the
// discrete-time schedulers (completion, lower bounds, theory-bound sanity).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/conflict_graph.hpp"
#include "sim/experiment.hpp"
#include "sim/model.hpp"
#include "sim/schedulers.hpp"

namespace wstm::sim {
namespace {

TEST(SimModel, RandomWindowShape) {
  const SimWindow w = make_random_window(4, 10, 100, 3, 1);
  EXPECT_EQ(w.total(), 40u);
  EXPECT_EQ(w.txs.size(), 40u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = 0; j < 10; ++j) {
      const SimTransaction& t = w.tx(i, j);
      EXPECT_EQ(t.thread, i);
      EXPECT_EQ(t.index, j);
      EXPECT_EQ(t.resources.size(), 3u);
      std::set<std::uint32_t> uniq(t.resources.begin(), t.resources.end());
      EXPECT_EQ(uniq.size(), t.resources.size());  // distinct
      for (const auto r : t.resources) EXPECT_LT(r, 100u);
    }
  }
}

TEST(SimModel, ColumnarWindowConfinesResourcesToColumns) {
  const SimWindow w = make_columnar_window(4, 6, 10, 2, 2);
  for (const SimTransaction& t : w.txs) {
    for (const auto r : t.resources) {
      EXPECT_GE(r, t.index * 10);
      EXPECT_LT(r, (t.index + 1) * 10);
    }
  }
}

TEST(ConflictGraphTest, EdgesMatchSharedResources) {
  SimWindow w;
  w.m = 3;
  w.n = 1;
  w.num_resources = 4;
  w.txs = {
      SimTransaction{0, 0, {0, 1}},
      SimTransaction{1, 0, {1, 2}},
      SimTransaction{2, 0, {3}},
  };
  const ConflictGraph g(w);
  EXPECT_TRUE(g.conflicts(0, 1));
  EXPECT_TRUE(g.conflicts(1, 0));
  EXPECT_FALSE(g.conflicts(0, 2));
  EXPECT_FALSE(g.conflicts(1, 2));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.max_degree(), 1u);
  EXPECT_EQ(g.max_degree_of_thread(2), 0u);
}

TEST(ConflictGraphTest, ColumnarWindowsHaveNoCrossColumnEdges) {
  const SimWindow w = make_columnar_window(6, 4, 3, 2, 3);
  const ConflictGraph g(w);
  for (std::uint32_t a = 0; a < w.total(); ++a) {
    for (const std::uint32_t b : g.neighbors(a)) {
      EXPECT_EQ(w.txs[a].index, w.txs[b].index);  // same column only
    }
  }
}

TEST(ConflictGraphTest, GreedyColoringIsProper) {
  const SimWindow w = make_random_window(8, 6, 30, 3, 4);
  const ConflictGraph g(w);
  std::vector<std::uint32_t> colors;
  const std::uint32_t k = g.greedy_coloring(&colors);
  EXPECT_GE(k, 1u);
  EXPECT_LE(k, g.max_degree() + 1);  // greedy bound
  for (std::uint32_t v = 0; v < g.size(); ++v) {
    for (const std::uint32_t u : g.neighbors(v)) EXPECT_NE(colors[v], colors[u]);
  }
}

class EveryScheduler : public ::testing::TestWithParam<SchedulerOptions::Mode> {};
INSTANTIATE_TEST_SUITE_P(Modes, EveryScheduler,
                         ::testing::Values(SchedulerOptions::Mode::kOffline,
                                           SchedulerOptions::Mode::kOnline,
                                           SchedulerOptions::Mode::kOneshotRR,
                                           SchedulerOptions::Mode::kGreedyTimestamp));

TEST_P(EveryScheduler, CommitsEverythingAndRespectsLowerBound) {
  const SimWindow w = make_random_window(6, 8, 40, 2, 7);
  const ConflictGraph g(w);
  SchedulerOptions opt;
  opt.mode = GetParam();
  Xoshiro256 rng(3);
  const SimResult r = run_scheduler(w, g, opt, rng);
  EXPECT_EQ(r.commits, w.total());
  // N is a trivial lower bound (thread-serial execution).
  EXPECT_GE(r.makespan, static_cast<std::uint64_t>(w.n));
  EXPECT_GT(r.throughput(), 0.0);
}

TEST_P(EveryScheduler, ConflictFreeWindowFinishesInExactlyNSteps) {
  // Each thread uses a private resource: no conflicts at all.
  SimWindow w;
  w.m = 4;
  w.n = 5;
  w.num_resources = 4;
  for (std::uint32_t i = 0; i < w.m; ++i) {
    for (std::uint32_t j = 0; j < w.n; ++j) w.txs.push_back(SimTransaction{i, j, {i}});
  }
  const ConflictGraph g(w);
  SchedulerOptions opt;
  opt.mode = GetParam();
  Xoshiro256 rng(11);
  const SimResult r = run_scheduler(w, g, opt, rng);
  EXPECT_EQ(r.commits, w.total());
  EXPECT_EQ(r.makespan, static_cast<std::uint64_t>(w.n));
  EXPECT_EQ(r.aborts, 0u);
}

TEST(SchedulerBehavior, FullConflictSerializes) {
  // Everybody uses the same resource: M*N transactions must serialize.
  SimWindow w;
  w.m = 4;
  w.n = 3;
  w.num_resources = 1;
  for (std::uint32_t i = 0; i < w.m; ++i) {
    for (std::uint32_t j = 0; j < w.n; ++j) w.txs.push_back(SimTransaction{i, j, {0}});
  }
  const ConflictGraph g(w);
  SchedulerOptions opt;
  opt.mode = SchedulerOptions::Mode::kGreedyTimestamp;
  Xoshiro256 rng(5);
  const SimResult r = run_scheduler(w, g, opt, rng);
  EXPECT_EQ(r.makespan, static_cast<std::uint64_t>(w.m) * w.n);
}

TEST(SchedulerBehavior, OfflineMakespanWithinTheoryBound) {
  // Theorem 2.1: makespan = O(C + N log MN). Check the ratio against the
  // bound (with constant 1) stays modest across several contention levels.
  for (const std::uint32_t pool : {4u, 16u, 64u}) {
    const SimWindow w = make_columnar_window(16, 10, pool, 2, 21);
    const ConflictGraph g(w);
    SchedulerOptions opt;
    opt.mode = SchedulerOptions::Mode::kOffline;
    const AveragedSim avg = average_runs(w, g, opt, 3, 77);
    const double bound = offline_bound(w.m, w.n, g.max_degree());
    EXPECT_LT(avg.makespan, 3.0 * bound)
        << "pool=" << pool << " C=" << g.max_degree() << " makespan=" << avg.makespan;
  }
}

TEST(SchedulerBehavior, DynamicFramesNeverSlowerThanStatic) {
  const SimWindow w = make_columnar_window(8, 12, 8, 2, 9);
  const ConflictGraph g(w);
  SchedulerOptions st;
  st.mode = SchedulerOptions::Mode::kOnline;
  st.dynamic_frames = false;
  st.frame_factor = 2.0;
  SchedulerOptions dy = st;
  dy.dynamic_frames = true;
  const AveragedSim s = average_runs(w, g, st, 4, 13);
  const AveragedSim d = average_runs(w, g, dy, 4, 13);
  EXPECT_LE(d.makespan, s.makespan * 1.05);  // contraction only helps
}

TEST(SchedulerBehavior, NamesDistinguishVariants) {
  SchedulerOptions opt;
  opt.mode = SchedulerOptions::Mode::kOnline;
  EXPECT_EQ(scheduler_name(opt), "Sim-Online");
  opt.dynamic_frames = true;
  EXPECT_EQ(scheduler_name(opt), "Sim-Online-Dynamic");
  opt.mode = SchedulerOptions::Mode::kGreedyTimestamp;
  EXPECT_EQ(scheduler_name(opt), "Sim-Greedy");
}

TEST(TheoryBounds, GrowWithContentionAndWindow) {
  EXPECT_LT(offline_bound(4, 10, 2), offline_bound(4, 10, 50));
  EXPECT_LT(offline_bound(4, 10, 2), offline_bound(4, 100, 2));
  EXPECT_LT(offline_bound(4, 10, 10), online_bound(4, 10, 10));  // log factors
}

TEST(Averaging, ReportsStableStatistics) {
  const SimWindow w = make_random_window(4, 6, 30, 2, 15);
  const ConflictGraph g(w);
  SchedulerOptions opt;
  opt.mode = SchedulerOptions::Mode::kOneshotRR;
  const AveragedSim a = average_runs(w, g, opt, 5, 1);
  EXPECT_GT(a.makespan, 0.0);
  EXPECT_GE(a.makespan_stddev, 0.0);
  EXPECT_GT(a.throughput, 0.0);
}

}  // namespace
}  // namespace wstm::sim
