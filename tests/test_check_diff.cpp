// Differential testing of the transactional structures against
// structs::SequentialSet under forced-abort injection (src/check/).
//
// Every structure runs the same deterministic concurrent program through the
// serialized executor while the fault injector forces spurious aborts and
// locator-CAS failures; the linearizability oracle then checks the observed
// history against sequential set semantics (witnesses are re-verified through
// SequentialSet itself) and the final contents against quiescent_elements().
// Both read modes are covered: visible (reader bitmaps) and invisible
// (validation sets) take different abort paths under injection.
#include <gtest/gtest.h>

#include <string>

#include "check/checker.hpp"

namespace {

using wstm::check::CheckConfig;
using wstm::check::Checker;
using wstm::check::ExploreResult;

class DiffTest : public ::testing::TestWithParam<std::tuple<std::string, bool>> {};

TEST_P(DiffTest, MatchesSequentialSetUnderForcedAborts) {
  const auto& [structure, visible] = GetParam();
  CheckConfig c;
  c.structure = structure;
  c.visible_reads = visible;
  c.threads = 3;
  c.ops_per_thread = 10;
  c.key_range = 12;
  // Aggressive has no backoff slices: Polka's real-clock waits while holding
  // the serialized-executor token make each schedule take seconds, and the CM
  // choice is irrelevant to what this suite tests (structure vs oracle).
  c.cm = "Aggressive";
  c.seed = 2024;
  // High injection pressure: roughly one in six reads/writes/commits dies
  // spuriously, and locator CASes fail outright, exercising the retry and
  // cleanup paths the benchmarks rarely hit.
  c.faults.p_abort = 0.15;
  c.faults.p_fail_cas = 0.10;
  c.faults.p_stall = 0.05;
  c.faults.stall_steps = 12;
  Checker checker(c);
  const ExploreResult er = checker.explore(/*num_schedules=*/4, /*stop_on_violation=*/true);
  EXPECT_EQ(er.violations, 0u) << structure << (visible ? " visible" : " invisible") << ":\n"
                               << er.first_violation.diagnosis;
  EXPECT_EQ(er.schedules_run, 4u);
}

INSTANTIATE_TEST_SUITE_P(
    Structures, DiffTest,
    ::testing::Combine(::testing::Values("rbtree", "skiplist", "hashtable", "list"),
                       ::testing::Values(true, false)),
    [](const ::testing::TestParamInfo<DiffTest::ParamType>& info) {
      return std::get<0>(info.param) + (std::get<1>(info.param) ? "Visible" : "Invisible");
    });

}  // namespace
