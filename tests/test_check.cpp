// Deterministic concurrency checker (src/check/): oracle unit tests,
// executor determinism, seeded-bug detection, replay fidelity, shrinking,
// and schedule-file round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "check/history.hpp"
#include "check/schedule.hpp"

namespace {

using namespace wstm;
using check::CheckConfig;
using check::Checker;
using check::Op;
using check::OpKind;
using check::RunResult;
using check::Schedule;

// ---- linearizability oracle on hand-built histories ------------------------

Op make_op(int vid, OpKind kind, long a, long b, bool r0, bool r1, std::uint64_t invoke,
           std::uint64_t response) {
  Op op;
  op.vid = vid;
  op.kind = kind;
  op.a = a;
  op.b = b;
  op.r0 = r0;
  op.r1 = r1;
  op.invoke = invoke;
  op.response = response;
  op.complete = true;
  return op;
}

TEST(Oracle, AcceptsSequentialHistory) {
  std::vector<Op> ops = {
      make_op(0, OpKind::kInsert, 3, 0, true, false, 0, 1),
      make_op(0, OpKind::kContains, 3, 0, true, false, 2, 3),
      make_op(0, OpKind::kRemove, 3, 0, true, false, 4, 5),
      make_op(0, OpKind::kContains, 3, 0, false, false, 6, 7),
  };
  const auto r = check::check_linearizable(ops, 0, 0, 16);
  EXPECT_TRUE(r.ok) << r.diagnosis;
  EXPECT_EQ(r.witness.size(), 4u);
}

TEST(Oracle, AcceptsOverlappingOpsNeedingReorder) {
  // contains(5) overlaps insert(5) and already sees it: legal, linearize the
  // insert first even though its response comes later.
  std::vector<Op> ops = {
      make_op(0, OpKind::kInsert, 5, 0, true, false, 0, 3),
      make_op(1, OpKind::kContains, 5, 0, true, false, 1, 2),
  };
  const auto r = check::check_linearizable(ops, 0, std::uint64_t{1} << 5, 16);
  EXPECT_TRUE(r.ok) << r.diagnosis;
}

TEST(Oracle, RejectsLostUpdate) {
  // Both inserts of distinct keys claim success, but key 2 is missing from
  // the final contents: some committed update was lost.
  std::vector<Op> ops = {
      make_op(0, OpKind::kInsert, 1, 0, true, false, 0, 2),
      make_op(1, OpKind::kInsert, 2, 0, true, false, 1, 3),
  };
  const auto r = check::check_linearizable(ops, 0, std::uint64_t{1} << 1, 16);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.diagnosis.find("no legal linearization"), std::string::npos);
}

TEST(Oracle, RejectsRealTimeOrderViolation) {
  // remove(7) completed (returned true) strictly before contains(7) began,
  // yet contains(7) still observed the key with nobody re-inserting it.
  std::vector<Op> ops = {
      make_op(0, OpKind::kRemove, 7, 0, true, false, 0, 1),
      make_op(1, OpKind::kContains, 7, 0, true, false, 2, 3),
  };
  const auto r = check::check_linearizable(ops, std::uint64_t{1} << 7, 0, 16);
  EXPECT_FALSE(r.ok);
}

TEST(Oracle, RejectsNonAtomicPairRead) {
  // move(3 -> 4) is atomic, so no pair-read may observe "3 gone, 4 not yet
  // there". The pair-read overlaps nothing: it runs strictly after.
  std::vector<Op> ops = {
      make_op(0, OpKind::kMove, 3, 4, true, true, 0, 1),
      make_op(1, OpKind::kPairRead, 3, 4, false, false, 2, 3),
  };
  const auto r =
      check::check_linearizable(ops, std::uint64_t{1} << 3, std::uint64_t{1} << 4, 16);
  EXPECT_FALSE(r.ok);
}

TEST(Oracle, AllowsIncompleteOpToTakeEffectOrNot) {
  // The incomplete insert(9) may or may not have landed; both final states
  // are legal.
  std::vector<Op> ops = {make_op(0, OpKind::kInsert, 9, 0, false, false, 0, 0)};
  ops[0].complete = false;
  EXPECT_TRUE(check::check_linearizable(ops, 0, 0, 16).ok);
  EXPECT_TRUE(check::check_linearizable(ops, 0, std::uint64_t{1} << 9, 16).ok);
  EXPECT_FALSE(check::check_linearizable(ops, 0, std::uint64_t{1} << 8, 16).ok);
}

TEST(Oracle, RejectsKeyOutOfRange) {
  std::vector<Op> ops = {make_op(0, OpKind::kInsert, 64, 0, true, false, 0, 1)};
  const auto r = check::check_linearizable(ops, 0, 0, 64);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.diagnosis.find("out of range"), std::string::npos);
}

// ---- schedule file round-trip ---------------------------------------------

TEST(Schedule, TextRoundTrip) {
  Schedule s;
  s.config.structure = "rbtree";
  s.config.cm = "Adaptive-Dynamic";
  s.config.threads = 4;
  s.config.visible_reads = false;
  s.config.snapshot_ext = false;  // non-default: must survive the round-trip
  s.config.op_mix = "insert-heavy";
  s.config.seed = 0xabcdef;
  s.config.strategy = "pct";
  s.config.faults.p_abort = 0.125;
  s.config.faults.p_stall_any = 0.0625;
  s.config.faults.stall_steps = 7;
  s.config.liveness = true;
  s.config.bug = "blind-commit";
  s.decisions = {
      {0, check::Point::kBegin, check::Action::kProceed},
      {3, check::Point::kCas, check::Action::kFailCas},
      {1, check::Point::kCommit, check::Action::kInjectAbort},
      {2, check::Point::kReaderResolve, check::Action::kProceed},
  };
  const Schedule back = check::schedule_from_text(check::to_text(s));
  EXPECT_EQ(back.config.structure, s.config.structure);
  EXPECT_EQ(back.config.cm, s.config.cm);
  EXPECT_EQ(back.config.threads, s.config.threads);
  EXPECT_EQ(back.config.visible_reads, s.config.visible_reads);
  EXPECT_EQ(back.config.snapshot_ext, s.config.snapshot_ext);
  EXPECT_EQ(back.config.op_mix, s.config.op_mix);
  EXPECT_EQ(back.config.seed, s.config.seed);
  EXPECT_EQ(back.config.strategy, s.config.strategy);
  EXPECT_DOUBLE_EQ(back.config.faults.p_abort, s.config.faults.p_abort);
  EXPECT_DOUBLE_EQ(back.config.faults.p_stall_any, s.config.faults.p_stall_any);
  EXPECT_EQ(back.config.faults.stall_steps, s.config.faults.stall_steps);
  EXPECT_EQ(back.config.liveness, s.config.liveness);
  EXPECT_EQ(back.config.bug, s.config.bug);
  ASSERT_EQ(back.decisions.size(), s.decisions.size());
  for (std::size_t i = 0; i < s.decisions.size(); ++i) {
    EXPECT_EQ(back.decisions[i], s.decisions[i]) << "decision " << i;
  }
  EXPECT_EQ(s.injected_faults(), 2u);
}

TEST(Schedule, OldFilesWithoutNewKeysStillLoad) {
  // Schedules written before p_stall_any/liveness existed must keep loading
  // with the old defaults.
  const std::string old_text =
      "wstm-schedule v1\nstructure list\ncm Polka\nthreads 2\ng 0 B p\n";
  const Schedule s = check::schedule_from_text(old_text);
  EXPECT_DOUBLE_EQ(s.config.faults.p_stall_any, 0.0);
  EXPECT_FALSE(s.config.liveness);
  EXPECT_TRUE(s.config.snapshot_ext);  // pre-snapshot_ext files get the default
  EXPECT_EQ(s.decisions.size(), 1u);
}

TEST(Schedule, RejectsMalformedText) {
  EXPECT_THROW(check::schedule_from_text("not a schedule"), std::runtime_error);
  EXPECT_THROW(check::schedule_from_text("wstm-schedule v1\ng 0 Z p\n"), std::runtime_error);
  EXPECT_THROW(check::schedule_from_text("wstm-schedule v1\nthreads banana\n"),
               std::runtime_error);
  EXPECT_THROW(check::schedule_from_text("wstm-schedule v1\nmystery 3\n"), std::runtime_error);
}

// ---- end-to-end determinism ------------------------------------------------

CheckConfig small_config() {
  CheckConfig c;
  c.threads = 3;
  c.ops_per_thread = 8;
  c.key_range = 8;
  c.cm = "Polka";
  c.seed = 7;
  return c;
}

TEST(CheckerDeterminism, SameSeedSameSchedule) {
  for (const char* strategy : {"random", "pct"}) {
    CheckConfig c = small_config();
    c.strategy = strategy;
    RunResult a = Checker(c).run_once(/*schedule_seed=*/99);
    RunResult b = Checker(c).run_once(/*schedule_seed=*/99);
    EXPECT_FALSE(a.violation) << strategy << ": " << a.diagnosis;
    EXPECT_FALSE(a.over_budget) << strategy;
    ASSERT_EQ(a.schedule.decisions.size(), b.schedule.decisions.size()) << strategy;
    EXPECT_EQ(a.schedule.decisions, b.schedule.decisions) << strategy;
    EXPECT_EQ(a.metrics.commits, b.metrics.commits) << strategy;
    EXPECT_EQ(a.metrics.aborts, b.metrics.aborts) << strategy;
  }
}

TEST(CheckerDeterminism, DifferentSeedsDiverge) {
  CheckConfig c = small_config();
  Checker checker(c);
  const RunResult a = checker.run_once(1);
  const RunResult b = checker.run_once(2);
  // Same program, different interleavings (astronomically unlikely to tie).
  EXPECT_NE(a.schedule.decisions, b.schedule.decisions);
}

TEST(CheckerDeterminism, ReplayReproducesBitIdentically) {
  CheckConfig c = small_config();
  c.faults.p_abort = 0.05;
  c.faults.p_fail_cas = 0.05;
  Checker checker(c);
  const RunResult once = checker.run_once(3);
  ASSERT_FALSE(once.over_budget);
  const RunResult again = checker.replay(once.schedule);
  EXPECT_EQ(again.divergences, 0u);
  EXPECT_EQ(once.schedule.decisions, again.schedule.decisions);
  EXPECT_EQ(once.violation, again.violation);
  EXPECT_EQ(once.metrics.commits, again.metrics.commits);
  EXPECT_EQ(once.metrics.aborts, again.metrics.aborts);
  EXPECT_EQ(once.metrics.injected_aborts, again.metrics.injected_aborts);
}

TEST(CheckerFaults, InjectedAbortsAreCountedAndHarmless) {
  CheckConfig c = small_config();
  c.cm = "Aggressive";  // no CM wait slices: keeps injection runs fast
  c.faults.p_abort = 0.1;
  c.faults.p_fail_cas = 0.1;
  c.faults.p_stall = 0.05;
  c.faults.stall_steps = 8;
  Checker checker(c);
  std::uint64_t injected = 0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const RunResult r = checker.run_once(seed);
    EXPECT_FALSE(r.violation) << r.diagnosis;
    injected += r.metrics.injected_aborts;
  }
  EXPECT_GT(injected, 0u) << "fault injector never fired at p=0.1";
}

// ---- seeded bugs -----------------------------------------------------------

TEST(CheckerSeededBug, FindsBlindCommitWithinBudget) {
  CheckConfig c;
  c.threads = 3;
  c.ops_per_thread = 16;
  c.key_range = 16;
  c.cm = "Polka";
  c.bug = "blind-commit";
  c.op_mix = "insert-heavy";  // no retirement: lost updates stay memory-safe
  Checker checker(c);
  const auto er = checker.explore(/*num_schedules=*/40);
  ASSERT_GT(er.violations, 0u) << "blind-commit not found in 40 schedules";
  EXPECT_NE(er.first_violation.diagnosis.find("linearizability"), std::string::npos);

  // The failing schedule must reproduce and survive shrinking.
  const RunResult again = checker.replay(er.first_violation.schedule);
  EXPECT_TRUE(again.violation);
  const auto sr = checker.shrink(er.first_violation.schedule, /*max_replays=*/60);
  EXPECT_TRUE(sr.still_fails);
  EXPECT_LE(sr.schedule.decisions.size(), er.first_violation.schedule.decisions.size());
  EXPECT_TRUE(checker.replay(sr.schedule).violation) << "shrunk schedule lost the failure";
}

TEST(CheckerSeededBug, FindsSkipReaderAbortWithinBudget) {
  CheckConfig c;
  c.threads = 3;
  c.ops_per_thread = 16;
  c.key_range = 16;
  c.cm = "Polka";
  c.bug = "skip-reader-abort";  // visible-read mode atomicity bug
  Checker checker(c);
  const auto er = checker.explore(/*num_schedules=*/40);
  EXPECT_GT(er.violations, 0u) << "skip-reader-abort not found in 40 schedules";
}

TEST(CheckerSeededBug, CleanProtocolSurvivesSameBudget) {
  CheckConfig c;
  c.threads = 3;
  c.ops_per_thread = 16;
  c.key_range = 16;
  c.cm = "Aggressive";  // no CM wait slices: keeps the 10-schedule run fast
  Checker checker(c);
  const auto er = checker.explore(/*num_schedules=*/10, /*stop_on_violation=*/true);
  EXPECT_EQ(er.violations, 0u) << er.first_violation.diagnosis;
}

// ---- stall-anywhere fault + liveness layer under exploration ---------------

TEST(CheckerFaults, StallAnywhereStaysCleanAndReplays) {
  CheckConfig c = small_config();
  c.cm = "Aggressive";
  c.faults.p_stall_any = 0.08;
  c.faults.stall_steps = 6;
  Checker checker(c);
  const RunResult once = checker.run_once(11);
  EXPECT_FALSE(once.violation) << once.diagnosis;
  ASSERT_FALSE(once.over_budget);
  const RunResult again = checker.replay(once.schedule);
  EXPECT_EQ(again.divergences, 0u);
  EXPECT_EQ(once.schedule.decisions, again.schedule.decisions);
  EXPECT_EQ(once.metrics.commits, again.metrics.commits);
}

TEST(CheckerLiveness, SerialTokenNeverHasTwoHolders) {
  // Spurious aborts drive transactions up the escalation ladder until some
  // reach the irrevocable serial-fallback level; across many explored
  // interleavings the token must never admit two concurrent holders, and
  // every run must still linearize.
  CheckConfig c;
  c.threads = 3;
  c.ops_per_thread = 12;
  c.key_range = 8;
  c.cm = "Polka";
  c.liveness = true;
  c.faults.p_abort = 0.25;
  std::uint64_t total_acquisitions = 0;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Checker checker(c);
    const RunResult r = checker.run_once(seed);
    EXPECT_FALSE(r.violation) << "seed " << seed << ": " << r.diagnosis;
    EXPECT_LE(r.max_token_holders, 1u) << "seed " << seed;
    EXPECT_EQ(r.token_overlap_violations, 0u) << "seed " << seed;
    total_acquisitions += r.token_acquisitions;
  }
  EXPECT_GT(total_acquisitions, 0u)
      << "escalation never reached the serial-fallback level; thresholds too loose";
}

TEST(CheckerLiveness, LivenessRunsReplayDeterministically) {
  CheckConfig c;
  c.threads = 3;
  c.ops_per_thread = 10;
  c.key_range = 8;
  c.cm = "Polka";
  c.liveness = true;
  c.faults.p_abort = 0.2;
  Checker checker(c);
  const RunResult once = checker.run_once(5);
  ASSERT_FALSE(once.over_budget);
  const RunResult again = checker.replay(once.schedule);
  EXPECT_EQ(again.divergences, 0u);
  EXPECT_EQ(once.schedule.decisions, again.schedule.decisions);
  EXPECT_EQ(once.metrics.commits, again.metrics.commits);
  EXPECT_EQ(once.token_acquisitions, again.token_acquisitions);
}

// ---- window invariants ride along ------------------------------------------

TEST(CheckerWindow, WindowManagerRunsStayClean) {
  CheckConfig c;
  c.threads = 3;
  c.ops_per_thread = 8;
  c.key_range = 8;
  c.cm = "Adaptive";
  c.window_n = 4;
  Checker checker(c);
  const auto er = checker.explore(/*num_schedules=*/3, /*stop_on_violation=*/true);
  EXPECT_EQ(er.violations, 0u) << er.first_violation.diagnosis;
}

}  // namespace
