// Requester-waits arbitration (DESIGN.md §13): deterministic-checker
// coverage for the kPark/kUnpark schedule points and the park-deadlock
// oracle, the seeded lost-wakeup bug with replay + shrink, wait-vs-abort
// decision parity across all six window variants on both backends, and
// real-mode parking — a younger Greedy transaction parks on the older one's
// descriptor, and a parked low-priority transaction still climbs the
// escalation ladder to the irrevocable serial token (no priority inversion
// through the ParkingLot).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "check/checker.hpp"
#include "check/hooks.hpp"
#include "check/schedule.hpp"
#include "cm/registry.hpp"
#include "resilience/liveness.hpp"
#include "stm/backend.hpp"
#include "stm/runtime.hpp"
#include "util/timing.hpp"

namespace wstm {
namespace {

using check::CheckConfig;
using check::Checker;
using check::ExploreResult;
using check::RunResult;
using check::Schedule;

constexpr const char* kWindowVariants[] = {
    "Online",           "Online-Dynamic",   "Adaptive",
    "Adaptive-Dynamic", "Adaptive-Improved", "Adaptive-Improved-Dynamic"};

CheckConfig wait_config(const std::string& cm, const std::string& backend) {
  CheckConfig c;
  c.backend = backend;
  c.threads = 3;
  c.ops_per_thread = 14;
  c.key_range = 12;  // small range: conflicts (and thus parks) are common
  c.window_n = 6;
  c.cm = cm;
  c.seed = 9090;
  c.arbitration = "wait";
  return c;
}

// ---- mode parsing ----------------------------------------------------------

TEST(ArbitrationChecker, ModeNamesRoundTrip) {
  EXPECT_EQ(stm::parse_arbitration("abort"), stm::ArbitrationMode::kAbort);
  EXPECT_EQ(stm::parse_arbitration("wait"), stm::ArbitrationMode::kWait);
  EXPECT_STREQ(stm::arbitration_name(stm::ArbitrationMode::kAbort), "abort");
  EXPECT_STREQ(stm::arbitration_name(stm::ArbitrationMode::kWait), "wait");
  EXPECT_THROW(stm::parse_arbitration("spin"), std::invalid_argument);
}

// ---- wait-vs-abort decision parity (all six variants, both backends) -------

// Exploration in wait mode must stay clean on every window variant and both
// execution engines: the linearizability oracle holds, the ScheduleChecker's
// relaxed window invariant holds (a decision may wait only from a *losing*
// priority position — waiting from a winning one is still a violation), and
// the park-deadlock oracle (every runnable thread parked, no unpark edge
// pending) never fires for the clean protocol.
TEST(ArbitrationChecker, WaitModeExplorationIsCleanOnAllVariantsBothBackends) {
  for (const char* backend : {"dstm", "orec"}) {
    for (const char* cm : kWindowVariants) {
      Checker checker(wait_config(cm, backend));
      const ExploreResult er = checker.explore(6);
      EXPECT_EQ(er.violations, 0u)
          << backend << "/" << cm << ": " << er.first_violation.diagnosis;
      EXPECT_EQ(er.schedules_run, 6u) << backend << "/" << cm;
    }
  }
}

// Decision parity: for the same program (same config seed) the abort-mode
// and wait-mode runs must both be clean and both make progress on every
// variant and backend. Wait mode changes *what the loser does* (park +
// retry instead of abort), never *who wins*, so neither mode may trade
// safety for its loser policy. Within one mode, the run stays bit-identical
// across re-execution — the parking points are schedule points like any
// other, not a nondeterminism leak.
TEST(ArbitrationChecker, WaitAndAbortModesAreBothCleanAndDeterministic) {
  for (const char* backend : {"dstm", "orec"}) {
    for (const char* cm : kWindowVariants) {
      CheckConfig wait_cfg = wait_config(cm, backend);
      CheckConfig abort_cfg = wait_cfg;
      abort_cfg.arbitration = "abort";
      for (const std::uint64_t policy_seed : {1u, 5u}) {
        const RunResult w1 = Checker(wait_cfg).run_once(policy_seed);
        const RunResult w2 = Checker(wait_cfg).run_once(policy_seed);
        const RunResult a = Checker(abort_cfg).run_once(policy_seed);
        EXPECT_FALSE(w1.violation) << backend << "/" << cm << ": " << w1.diagnosis;
        EXPECT_FALSE(a.violation) << backend << "/" << cm << ": " << a.diagnosis;
        EXPECT_GT(w1.metrics.commits, 0u) << backend << "/" << cm;
        EXPECT_GT(a.metrics.commits, 0u) << backend << "/" << cm;
        // Same mode, same seed: bit-identical decisions. Counters are only
        // schedule-determined while the decision budget holds — once a run
        // goes over budget the executor free-runs the tail, so the park
        // counter (but never safety) may drift between re-executions.
        EXPECT_EQ(w1.schedule.decisions, w2.schedule.decisions) << backend << "/" << cm;
        if (!w1.over_budget && !w2.over_budget) {
          EXPECT_EQ(w1.metrics.commits, w2.metrics.commits) << backend << "/" << cm;
          EXPECT_EQ(w1.metrics.parks, w2.metrics.parks) << backend << "/" << cm;
        }
      }
    }
  }
}

// The park points must actually be exercised: across a handful of seeds on
// a contended Polka config, at least one run records parks. A wait-mode
// checker that never parks is not testing the protocol.
TEST(ArbitrationChecker, ParksAreExercisedAndCounted) {
  CheckConfig c = wait_config("Polka", "dstm");
  std::uint64_t parks = 0;
  for (std::uint64_t seed = 1; seed <= 10 && parks == 0; ++seed) {
    const RunResult r = Checker(c).run_once(seed);
    EXPECT_FALSE(r.violation) << r.diagnosis;
    parks += r.metrics.parks;
  }
  EXPECT_GT(parks, 0u) << "no schedule ever reached a kPark point";
}

// ---- seeded lost-wakeup bug ------------------------------------------------

// The seeded bug drops the unpark edge on the commit path (abort-path
// signals stay). The executor's park-deadlock oracle must catch it within
// the exploration budget, the pinned schedule must replay to the same
// verdict with zero divergence, shrinking must preserve the failure, and
// the clean protocol must survive the identical budget.
TEST(ArbitrationChecker, ParkLostWakeupBugIsCaughtReplayedAndShrunk) {
  CheckConfig c = wait_config("Polka", "dstm");
  c.bug = "park-lost-wakeup";
  Checker buggy(c);
  const ExploreResult er = buggy.explore(40);
  ASSERT_GE(er.violations, 1u) << "lost wakeup never detected";
  EXPECT_NE(er.first_violation.diagnosis.find("park"), std::string::npos)
      << er.first_violation.diagnosis;

  Checker replayer(er.first_violation.schedule.config);
  const RunResult again = replayer.replay(er.first_violation.schedule);
  EXPECT_EQ(again.divergences, 0u);
  EXPECT_TRUE(again.violation);

  const Checker::ShrinkResult sr = replayer.shrink(er.first_violation.schedule, 150);
  ASSERT_TRUE(sr.still_fails);
  EXPECT_LE(sr.schedule.decisions.size(), er.first_violation.schedule.decisions.size());
  EXPECT_TRUE(Checker(sr.schedule.config).replay(sr.schedule).violation);

  // Clean protocol, identical budget: no false positives from the oracle.
  EXPECT_EQ(Checker(wait_config("Polka", "dstm")).explore(40).violations, 0u);
}

// The schedule file carries the arbitration mode, so `wstm-check replay`
// reconstructs a wait-mode run (with its extra kPark/kUnpark points) with
// no extra flags; pre-parking files default to abort.
TEST(ArbitrationChecker, ScheduleTextRoundTripsArbitration) {
  Checker checker(wait_config("Adaptive", "dstm"));
  const RunResult r = checker.run_once(3);
  const std::string text = to_text(r.schedule);
  EXPECT_NE(text.find("arbitration wait"), std::string::npos);
  const Schedule parsed = check::schedule_from_text(text);
  EXPECT_EQ(parsed.config.arbitration, "wait");
  EXPECT_EQ(parsed.decisions, r.schedule.decisions);
  EXPECT_EQ(Checker(parsed.config).replay(parsed).divergences, 0u);

  std::string legacy = text;
  const std::size_t pos = legacy.find("arbitration wait\n");
  ASSERT_NE(pos, std::string::npos);
  legacy.erase(pos, std::string("arbitration wait\n").size());
  EXPECT_EQ(check::schedule_from_text(legacy).config.arbitration, "abort");
}

TEST(ArbitrationChecker, PointNamesCoverParkPoints) {
  EXPECT_STREQ(check::point_name(check::Point::kPark), "park");
  EXPECT_STREQ(check::point_name(check::Point::kUnpark), "unpark");
}

// ---- real-mode parking -----------------------------------------------------

struct Cell {
  long value = 0;
};

// Two real threads under Greedy in wait mode: the older transaction holds
// the only object for several milliseconds; the younger one conflicts,
// loses (Greedy: older wins), and must *park* on the older descriptor
// instead of burning the wait on yields — its parks counter advances and
// the total parked time is of the same order as the hold. The older
// commit's unpark edge (or the slice timeout) wakes it and it commits.
TEST(ArbitrationReal, YoungerGreedyTransactionParksUntilOlderCommits) {
  stm::RuntimeConfig cfg;
  cfg.arbitration = stm::ArbitrationMode::kWait;
  stm::Runtime rt(cm::make_manager("Greedy", cm::Params{}), cfg);
  stm::TObject<Cell> cell(Cell{0});

  std::atomic<bool> older_opened{false};
  std::atomic<bool> younger_started{false};
  std::thread older([&] {
    stm::ThreadCtx& tc = rt.attach_thread();
    rt.atomically(tc, [&](stm::Tx& tx) {
      cell.open_write(tx)->value += 1;
      older_opened.store(true, std::memory_order_release);
      // Hold the object long enough that the younger thread's 50 us Greedy
      // park slices must fire many times over.
      const std::int64_t until = now_ns() + 5'000'000;
      while (now_ns() < until && !younger_started.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      const std::int64_t tail = now_ns() + 3'000'000;
      while (now_ns() < tail) std::this_thread::yield();
    });
  });

  std::uint64_t younger_parks = 0;
  std::uint64_t younger_park_ns = 0;
  std::thread younger([&] {
    stm::ThreadCtx& tc = rt.attach_thread();
    while (!older_opened.load(std::memory_order_acquire)) std::this_thread::yield();
    younger_started.store(true, std::memory_order_release);
    rt.atomically(tc, [&](stm::Tx& tx) { cell.open_write(tx)->value += 10; });
    younger_parks = tc.metrics().parks;
    younger_park_ns = tc.metrics().park_ns;
  });
  older.join();
  younger.join();

  EXPECT_EQ(cell.peek()->value, 11);
  EXPECT_GT(younger_parks, 0u) << "the losing transaction never parked";
  EXPECT_GT(younger_park_ns, 0u);
  const stm::ThreadMetrics totals = rt.total_metrics();
  EXPECT_EQ(totals.parks, younger_parks) << "the winner must never park";
}

// In abort mode the same contention pattern must never park: the parking
// layer is strictly opt-in and the abort-mode hot path stays park-free.
TEST(ArbitrationReal, AbortModeNeverParks) {
  stm::Runtime rt(cm::make_manager("Greedy", cm::Params{}));
  stm::TObject<Cell> cell(Cell{0});
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      stm::ThreadCtx& tc = rt.attach_thread();
      for (int i = 0; i < 200; ++i) {
        rt.atomically(tc, [&](stm::Tx& tx) { cell.open_write(tx)->value += 1; });
      }
      });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(cell.peek()->value, 600);
  const stm::ThreadMetrics totals = rt.total_metrics();
  EXPECT_EQ(totals.parks, 0u);
  EXPECT_EQ(totals.unparks, 0u);
}

// Starvation ladder under requester-waits: one long writer that keeps
// losing to three short writers, in wait mode under Polka (karma ties go to
// the requester, so the long writer is slaughtered just like in abort mode,
// while karma *asymmetry* among the short writers produces real parks). The
// escalation ladder must still walk the starved writer to the irrevocable
// serial token — a parked transaction is invisible to the watchdog's
// *stall* detector (Beacon.parked) but its abort storm is not, and a
// serial-token holder never parks, so the ladder terminates. Exact counts
// and the single-holder token invariant must survive parking.
TEST(ArbitrationReal, ParkedLowPriorityClimbsLadderToIrrevocability) {
  constexpr int kMinLongCommits = 4;
  constexpr int kMaxLongCommits = 80;
  constexpr unsigned kShortThreads = 3;

  cm::Params params;
  params.threads = kShortThreads + 1;
  params.window_n = 8;
  params.requester_waits = true;
  stm::RuntimeConfig cfg;
  cfg.arbitration = stm::ArbitrationMode::kWait;
  cfg.liveness.enabled = true;
  cfg.liveness.backoff_after = 1;
  cfg.liveness.boost_after = 4;
  cfg.liveness.serial_after = 4;
  cfg.liveness.backoff_base_us = 1;
  cfg.liveness.backoff_cap_us = 20;
  cfg.liveness.deadline_ns = 60'000'000'000;  // generous: never expected to fire
  cfg.liveness.watchdog_period_ns = 100'000;
  cfg.liveness.stall_timeout_ns = 2'000'000'000;
  cfg.liveness.storm_threshold = 2;
  stm::Runtime rt(cm::make_manager("Polka", params), cfg);
  stm::TObject<Cell> counter(Cell{0});

  constexpr long kBig = 1'000'000'000;
  std::atomic<bool> stop_short{false};
  std::atomic<long> short_total{0};
  std::vector<std::thread> shorts;
  for (unsigned t = 0; t < kShortThreads; ++t) {
    shorts.emplace_back([&] {
      stm::ThreadCtx& tc = rt.attach_thread();
      while (!stop_short.load(std::memory_order_acquire)) {
        rt.atomically(tc, [&](stm::Tx& tx) { counter.open_write(tx)->value += 1; });
        short_total.fetch_add(1, std::memory_order_acq_rel);
      }
      });
  }

  int long_commits = 0;
  {
    stm::ThreadCtx& tc = rt.attach_thread();
    while (long_commits < kMaxLongCommits) {
      rt.atomically(tc, [&](stm::Tx& tx) {
        Cell* c = counter.open_write(tx);
        for (int s = 0; s < 60; ++s) {  // ~300 us held, yielding throughout
          const std::int64_t until = now_ns() + 5'000;
          while (now_ns() < until) {
          }
          std::this_thread::yield();
        }
        c->value += kBig;
      });
      ++long_commits;
      if (long_commits >= kMinLongCommits && tc.metrics().serial_fallbacks > 0 &&
          rt.total_metrics().parks > 0) {
        break;
      }
    }
    stop_short.store(true, std::memory_order_release);
  }
  for (auto& w : shorts) w.join();

  const long final_value = counter.peek()->value;
  EXPECT_EQ(final_value / kBig, long_commits) << "long-writer commits lost";
  EXPECT_EQ(final_value % kBig, short_total.load()) << "short-writer commits lost";

  const stm::ThreadMetrics totals = rt.total_metrics();
  EXPECT_GT(totals.escalations, 0u) << "ladder never engaged";
  EXPECT_GT(totals.serial_fallbacks, 0u)
      << "starved writer never reached the irrevocable level under parking";
  EXPECT_GT(totals.parks, 0u) << "the run never actually parked";
  EXPECT_EQ(totals.timeouts, 0u);

  const resilience::LivenessManager::Stats ls = rt.liveness()->stats();
  EXPECT_LE(ls.max_token_holders, 1u);
  EXPECT_EQ(ls.token_overlap_violations, 0u);
}

}  // namespace
}  // namespace wstm
