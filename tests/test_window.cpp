// Tests for the window-based contention management machinery: frame math,
// the dynamic frame controller, the CI estimator, and WindowCM behavior.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cm/registry.hpp"
#include "stm/runtime.hpp"
#include "window/ci_estimator.hpp"
#include "window/controller.hpp"
#include "window/frame_clock.hpp"
#include "window/window_cm.hpp"

namespace wstm::window {
namespace {

TEST(FrameClock, FramesAdvanceWithTime) {
  FrameClock clock;
  clock.start(1000, 100);
  EXPECT_EQ(clock.frame_at(999), 0u);
  EXPECT_EQ(clock.frame_at(1000), 0u);
  EXPECT_EQ(clock.frame_at(1099), 0u);
  EXPECT_EQ(clock.frame_at(1100), 1u);
  EXPECT_EQ(clock.frame_at(1000 + 100 * 7 + 5), 7u);
  EXPECT_EQ(clock.frame_begin_ns(3), 1300);
}

TEST(FrameClock, ZeroLengthIsClampedToOne) {
  FrameClock clock;
  clock.start(0, 0);
  EXPECT_EQ(clock.frame_at(5), 5u);
}

TEST(FrameClock, FrameLengthScalesWithLogMNAndTau) {
  const auto base = frame_length_ns(4, 50, 1.0, 1.0, 10'000);
  EXPECT_NEAR(static_cast<double>(base), std::log(200.0) * 10'000, 1.0);
  // Quadratic exponent (Online theory) lengthens frames.
  EXPECT_GT(frame_length_ns(4, 50, 1.0, 2.0, 10'000), base);
  // The floor keeps frames meaningful under a broken tau estimate.
  EXPECT_GE(frame_length_ns(4, 50, 1.0, 1.0, 0), 1000);
}

TEST(FrameClock, AlphaClampsToOneAndN) {
  // Tiny C: alpha floors at 1 (q is then always 0).
  EXPECT_EQ(delay_range_alpha(0.5, 4, 50), 1u);
  // Huge C: the paper caps alpha at N.
  EXPECT_EQ(delay_range_alpha(1e9, 4, 50), 50u);
  // In-between: C / ln(MN).
  const double c = 30.0;
  const auto expected = static_cast<std::uint64_t>(c / std::log(200.0));
  EXPECT_EQ(delay_range_alpha(c, 4, 50), expected);
}

TEST(Controller, AdvancesWhenFrameDrainsAndSomeoneWaits) {
  WindowController ctl;
  ctl.register_tx(0, 0);
  ctl.register_tx(1, 0);
  EXPECT_EQ(ctl.current_frame(), 0u);
  ctl.complete_tx(0, 10);
  // Frame 0 drained and frame 1 has a waiter: contraction advances.
  EXPECT_EQ(ctl.current_frame(), 1u);
  ctl.complete_tx(1, 20);
  // Nothing waits beyond: no pointless advance.
  EXPECT_EQ(ctl.current_frame(), 1u);
}

TEST(Controller, SkipsRunsOfEmptyFrames) {
  WindowController ctl;
  ctl.register_tx(0, 0);
  ctl.register_tx(7, 0);
  ctl.complete_tx(0, 5);
  EXPECT_EQ(ctl.current_frame(), 7u);  // frames 1..6 were empty
}

TEST(Controller, ExpansionHoldsFrameWhilePending) {
  WindowController ctl;
  ctl.register_tx(0, 0);
  ctl.register_tx(0, 0);
  ctl.register_tx(1, 0);
  ctl.complete_tx(0, 5);
  EXPECT_EQ(ctl.current_frame(), 0u);  // one tx still pending in frame 0
  ctl.complete_tx(0, 6);
  EXPECT_EQ(ctl.current_frame(), 1u);
}

TEST(Controller, PendingCountsPerFrame) {
  WindowController ctl;
  ctl.register_tx(3, 0);
  ctl.register_tx(3, 0);
  EXPECT_EQ(ctl.pending(3), 2);
  ctl.complete_tx(3, 1);
  EXPECT_EQ(ctl.pending(3), 1);
}

TEST(CiEstimatorTest, ConvergesTowardConflictRate) {
  CiEstimator ci(0.5);
  for (int i = 0; i < 20; ++i) ci.on_attempt_end(true);
  EXPECT_GT(ci.value(), 0.99);
  for (int i = 0; i < 20; ++i) ci.on_attempt_end(false);
  EXPECT_LT(ci.value(), 0.01);
}

TEST(CiEstimatorTest, ContentionEstimateInterpolates) {
  CiEstimator ci(0.0);  // alpha 0: CI equals the last observation
  ci.on_attempt_end(false);
  EXPECT_DOUBLE_EQ(ci.contention_estimate(8, 50), 1.0);  // no conflicts -> C = 1
  ci.on_attempt_end(true);
  EXPECT_DOUBLE_EQ(ci.contention_estimate(8, 50), 1.0 + 7.0 * 50.0);
  // Single-thread windows cannot conflict.
  EXPECT_DOUBLE_EQ(ci.contention_estimate(1, 50), 1.0);
}

class WindowCmTest : public ::testing::Test {
 protected:
  static WindowOptions base_options(bool dynamic, WindowOptions::Adapt adapt) {
    WindowOptions opt;
    opt.threads = 4;
    opt.window_n = 8;
    opt.dynamic_frames = dynamic;
    opt.adapt = adapt;
    return opt;
  }
};

TEST_F(WindowCmTest, FactoryConfiguresTheFiveVariantsPlusExtension) {
  WindowOptions opt;
  opt.threads = 4;
  for (const char* name : {"Online", "Online-Dynamic", "Adaptive", "Adaptive-Dynamic",
                           "Adaptive-Improved", "Adaptive-Improved-Dynamic"}) {
    auto mgr = make_window_manager(name, opt);
    EXPECT_EQ(mgr->name(), name);
  }
  EXPECT_THROW(make_window_manager("Offline", opt), std::invalid_argument);
}

TEST_F(WindowCmTest, DefaultsInitialCByVariant) {
  WindowOptions opt;
  opt.threads = 8;
  opt.adapt = WindowOptions::Adapt::kNone;
  WindowCM online("Online", opt);
  EXPECT_DOUBLE_EQ(online.options().initial_c, 8.0);  // "C_i known": M

  opt.adapt = WindowOptions::Adapt::kDoubling;
  WindowCM adaptive("Adaptive", opt);
  EXPECT_DOUBLE_EQ(adaptive.options().initial_c, 1.0);  // guess from 1
}

TEST_F(WindowCmTest, RejectsBadOptions) {
  WindowOptions opt;
  opt.threads = 0;
  EXPECT_THROW(WindowCM("x", opt), std::invalid_argument);
  opt.threads = 65;
  EXPECT_THROW(WindowCM("x", opt), std::invalid_argument);
  opt.threads = 4;
  opt.window_n = 0;
  EXPECT_THROW(WindowCM("x", opt), std::invalid_argument);
}

TEST_F(WindowCmTest, WindowsAutoRollEveryNTransactions) {
  cm::Params params;
  params.threads = 1;
  params.window_n = 5;
  stm::Runtime rt(cm::make_manager("Online-Dynamic", params));
  auto* wcm = dynamic_cast<WindowCM*>(&rt.manager());
  ASSERT_NE(wcm, nullptr);
  stm::ThreadCtx& tc = rt.attach_thread();

  stm::TObject<int> obj(0);
  for (int i = 0; i < 12; ++i) {
    rt.atomically(tc, [&](stm::Tx& tx) { *obj.open_write(tx) += 1; });
  }
  const auto snap = wcm->snapshot(tc.slot());
  // 12 transactions with N = 5: windows of 5 + 5 + (2 so far) = 3 windows.
  EXPECT_EQ(snap.windows_started, 3u);
  EXPECT_EQ(snap.next_index, 2u);
  EXPECT_EQ(*obj.peek(), 12);
}

TEST_F(WindowCmTest, TauEstimateTracksCommittedDurations) {
  cm::Params params;
  params.threads = 1;
  stm::Runtime rt(cm::make_manager("Online", params));
  auto* wcm = dynamic_cast<WindowCM*>(&rt.manager());
  stm::ThreadCtx& tc = rt.attach_thread();
  const auto initial = wcm->tau_estimate_ns();
  stm::TObject<int> obj(0);
  for (int i = 0; i < 200; ++i) {
    rt.atomically(tc, [&](stm::Tx& tx) { *obj.open_write(tx) += 1; });
  }
  // Trivial transactions are far faster than the initial 20us guess: the
  // EWMA must have moved down.
  EXPECT_LT(wcm->tau_estimate_ns(), initial);
  EXPECT_GT(wcm->tau_estimate_ns(), 0);
}

TEST_F(WindowCmTest, ResolvePrefersHighPriorityClass) {
  WindowOptions opt = base_options(false, WindowOptions::Adapt::kNone);
  WindowCM cm("Online", opt);
  stm::Runtime rt(cm::make_manager("Aggressive", cm::Params{}));
  stm::ThreadCtx& tc = rt.attach_thread();

  stm::TxDesc me, enemy;
  me.thread_slot = 0;
  enemy.thread_slot = 1;
  me.prio_class.store(0);   // high
  enemy.prio_class.store(1);  // low
  me.rand_prio.store(3);
  enemy.rand_prio.store(1);
  // High beats low regardless of pi(2).
  EXPECT_EQ(cm.resolve(tc, me, enemy, stm::ConflictKind::kWriteWrite),
            stm::Resolution::kAbortEnemy);

  me.prio_class.store(1);
  enemy.prio_class.store(0);
  EXPECT_EQ(cm.resolve(tc, me, enemy, stm::ConflictKind::kWriteWrite),
            stm::Resolution::kAbortSelf);
}

TEST_F(WindowCmTest, ResolveUsesRandomPriorityWithinClass) {
  WindowOptions opt = base_options(false, WindowOptions::Adapt::kNone);
  WindowCM cm("Online", opt);
  stm::Runtime rt(cm::make_manager("Aggressive", cm::Params{}));
  stm::ThreadCtx& tc = rt.attach_thread();

  stm::TxDesc me, enemy;
  me.thread_slot = 0;
  enemy.thread_slot = 1;
  me.prio_class.store(0);
  enemy.prio_class.store(0);
  me.rand_prio.store(2);
  enemy.rand_prio.store(6);
  EXPECT_EQ(cm.resolve(tc, me, enemy, stm::ConflictKind::kWriteWrite),
            stm::Resolution::kAbortEnemy);
  me.rand_prio.store(6);
  enemy.rand_prio.store(2);
  EXPECT_EQ(cm.resolve(tc, me, enemy, stm::ConflictKind::kWriteWrite),
            stm::Resolution::kAbortSelf);
  // Tie: lower slot wins.
  enemy.rand_prio.store(6);
  EXPECT_EQ(cm.resolve(tc, me, enemy, stm::ConflictKind::kWriteWrite),
            stm::Resolution::kAbortEnemy);
}

TEST_F(WindowCmTest, AdaptiveDoublingReactsToBadEvents) {
  // Force bad events with an artificially long tau and tiny frames? Easier:
  // run a contended workload and just assert the adaptive estimate can only
  // be >= its start and <= the cap.
  cm::Params params;
  params.threads = 2;
  params.window_n = 4;
  stm::Runtime rt(cm::make_manager("Adaptive", params));
  auto* wcm = dynamic_cast<WindowCM*>(&rt.manager());
  stm::ThreadCtx& tc = rt.attach_thread();
  stm::TObject<int> obj(0);
  for (int i = 0; i < 40; ++i) {
    rt.atomically(tc, [&](stm::Tx& tx) { *obj.open_write(tx) += 1; });
  }
  const auto snap = wcm->snapshot(tc.slot());
  EXPECT_GE(snap.c_est, 1.0);
  EXPECT_LE(snap.c_est, 2.0 * 4 * 2);  // <= 2 * M * N
}

TEST_F(WindowCmTest, SnapshotReportsDelayWithinAlpha) {
  cm::Params params;
  params.threads = 4;
  params.window_n = 50;
  params.initial_c = 100.0;
  stm::Runtime rt(cm::make_manager("Online", params));
  auto* wcm = dynamic_cast<WindowCM*>(&rt.manager());
  stm::ThreadCtx& tc = rt.attach_thread();
  stm::TObject<int> obj(0);
  rt.atomically(tc, [&](stm::Tx& tx) { *obj.open_write(tx) += 1; });
  const auto snap = wcm->snapshot(tc.slot());
  const auto alpha = delay_range_alpha(100.0, 4, 50);
  EXPECT_LT(snap.delay_q, alpha);
}

}  // namespace
}  // namespace wstm::window
