// Concurrent correctness of the STM under every contention manager:
// atomicity (no lost updates), isolation (conserved invariants), and
// progress under conflicts. Parameterized over all manager names so each
// CM's resolve() path is exercised against real races.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "cm/registry.hpp"
#include "stm/runtime.hpp"
#include "util/rng.hpp"

namespace wstm::stm {
namespace {

struct Cell {
  long value = 0;
};

class AllManagers : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Managers, AllManagers, ::testing::ValuesIn(cm::manager_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST_P(AllManagers, CounterHasNoLostUpdates) {
  constexpr unsigned kThreads = 4;
  constexpr int kIncrements = 400;
  cm::Params params;
  params.threads = kThreads;
  params.window_n = 16;
  Runtime rt(cm::make_manager(GetParam(), params));
  TObject<Cell> counter(Cell{0});

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      ThreadCtx& tc = rt.attach_thread();
      for (int i = 0; i < kIncrements; ++i) {
        rt.atomically(tc, [&](Tx& tx) { counter.open_write(tx)->value += 1; });
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter.peek()->value, static_cast<long>(kThreads) * kIncrements);
  EXPECT_EQ(rt.total_metrics().commits, static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST_P(AllManagers, TransfersConserveTotal) {
  constexpr unsigned kThreads = 4;
  constexpr int kAccounts = 8;
  constexpr int kTransfers = 300;
  constexpr long kInitial = 1000;

  cm::Params params;
  params.threads = kThreads;
  params.window_n = 16;
  Runtime rt(cm::make_manager(GetParam(), params));

  std::vector<std::unique_ptr<TObject<Cell>>> accounts;
  for (int i = 0; i < kAccounts; ++i) {
    accounts.push_back(std::make_unique<TObject<Cell>>(Cell{kInitial}));
  }

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ThreadCtx& tc = rt.attach_thread();
      Xoshiro256 rng(t + 1);
      for (int i = 0; i < kTransfers; ++i) {
        const auto from = static_cast<std::size_t>(rng.below(kAccounts));
        auto to = static_cast<std::size_t>(rng.below(kAccounts));
        if (to == from) to = (to + 1) % kAccounts;
        const long amount = static_cast<long>(rng.below(50));
        rt.atomically(tc, [&](Tx& tx) {
          // Reads of both balances and the two writes are one atom: any
          // interleaving that could observe/create a partial transfer must
          // have been aborted.
          Cell* a = accounts[from]->open_write(tx);
          if (a->value < amount) return;
          Cell* b = accounts[to]->open_write(tx);
          a->value -= amount;
          b->value += amount;
        });
      }
    });
  }
  for (auto& w : workers) w.join();

  long total = 0;
  for (const auto& acc : accounts) total += acc->peek()->value;
  EXPECT_EQ(total, static_cast<long>(kAccounts) * kInitial);
}

TEST_P(AllManagers, ReadersSeeConsistentPairs) {
  // Writer keeps x == y at every commit; readers atomically read both and
  // must never observe x != y (visible-read consistency).
  constexpr int kWrites = 300;
  cm::Params params;
  params.threads = 3;
  params.window_n = 16;
  Runtime rt(cm::make_manager(GetParam(), params));
  TObject<Cell> x(Cell{0});
  TObject<Cell> y(Cell{0});
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> mismatches{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      ThreadCtx& tc = rt.attach_thread();
      while (!stop.load(std::memory_order_acquire)) {
        const auto pair = rt.atomically(tc, [&](Tx& tx) {
          const long a = x.open_read(tx)->value;
          const long b = y.open_read(tx)->value;
          return std::pair<long, long>(a, b);
        });
        if (pair.first != pair.second) mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  {
    std::thread writer([&] {
      ThreadCtx& tc = rt.attach_thread();
      for (int i = 1; i <= kWrites; ++i) {
        rt.atomically(tc, [&](Tx& tx) {
          x.open_write(tx)->value = i;
          y.open_write(tx)->value = i;
        });
      }
      stop.store(true, std::memory_order_release);
    });
    writer.join();
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(x.peek()->value, kWrites);
  EXPECT_EQ(y.peek()->value, kWrites);
}

TEST(StmConcurrent, RemoteAbortKillsActiveTransaction) {
  cm::Params params;
  params.threads = 2;
  Runtime rt(cm::make_manager("Aggressive", params));
  TObject<Cell> obj(Cell{0});

  std::atomic<bool> holder_in_tx{false};
  std::atomic<bool> release_holder{false};
  std::atomic<int> holder_attempts{0};

  // Holder opens the object and lingers; the attacker (Aggressive) must be
  // able to steal ownership and commit while the holder is mid-flight.
  std::thread holder([&] {
    ThreadCtx& tc = rt.attach_thread();
    rt.atomically(tc, [&](Tx& tx) {
      const int attempt = holder_attempts.fetch_add(1, std::memory_order_acq_rel);
      obj.open_write(tx)->value += 10;
      if (attempt == 0) {
        holder_in_tx.store(true, std::memory_order_release);
        while (!release_holder.load(std::memory_order_acquire)) std::this_thread::yield();
      }
    });
  });

  while (!holder_in_tx.load(std::memory_order_acquire)) std::this_thread::yield();
  {
    ThreadCtx& tc = rt.attach_thread();
    rt.atomically(tc, [&](Tx& tx) { obj.open_write(tx)->value += 1; });
    rt.detach_thread(tc);
  }
  release_holder.store(true, std::memory_order_release);
  holder.join();

  // Attacker committed +1; the holder's first attempt died (its +10 was
  // discarded) and a retry committed another +10.
  EXPECT_EQ(obj.peek()->value, 11);
  EXPECT_GE(holder_attempts.load(), 2);
}

TEST(StmConcurrent, WriterAbortsVisibleReader) {
  cm::Params params;
  params.threads = 2;
  Runtime rt(cm::make_manager("Aggressive", params));
  TObject<Cell> obj(Cell{0});

  std::atomic<bool> reader_has_read{false};
  std::atomic<bool> release_reader{false};
  std::atomic<int> reader_attempts{0};

  std::thread reader([&] {
    ThreadCtx& tc = rt.attach_thread();
    rt.atomically(tc, [&](Tx& tx) {
      const int attempt = reader_attempts.fetch_add(1, std::memory_order_acq_rel);
      (void)obj.open_read(tx)->value;
      if (attempt == 0) {
        reader_has_read.store(true, std::memory_order_release);
        while (!release_reader.load(std::memory_order_acquire)) std::this_thread::yield();
      }
    });
  });

  while (!reader_has_read.load(std::memory_order_acquire)) std::this_thread::yield();
  {
    ThreadCtx& tc = rt.attach_thread();
    rt.atomically(tc, [&](Tx& tx) { obj.open_write(tx)->value = 99; });
    rt.detach_thread(tc);
  }
  release_reader.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(obj.peek()->value, 99);
  EXPECT_GE(reader_attempts.load(), 2);  // reader was aborted at least once
}

}  // namespace
}  // namespace wstm::stm
