// Invisible-read mode tests: DSTM-style read-set validation instead of
// visible reader bitmaps (DSTM2's other read mode; the paper used visible).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "cm/registry.hpp"
#include "stm/runtime.hpp"
#include "structs/intset.hpp"
#include "structs/sequential_set.hpp"
#include "util/rng.hpp"

namespace wstm::stm {
namespace {

std::unique_ptr<Runtime> make_invisible_runtime(const std::string& cm = "Polka",
                                                unsigned threads = 4,
                                                std::uint32_t preempt = 0) {
  cm::Params params;
  params.threads = threads;
  RuntimeConfig cfg;
  cfg.visible_reads = false;
  cfg.preempt_yield_permille = preempt;
  return std::make_unique<Runtime>(cm::make_manager(cm, params), cfg);
}

TEST(InvisibleReads, BasicReadWriteCommit) {
  auto rt = make_invisible_runtime();
  ThreadCtx& tc = rt->attach_thread();
  TObject<long> obj(10);
  const long v = rt->atomically(tc, [&](Tx& tx) { return *obj.open_read(tx); });
  EXPECT_EQ(v, 10);
  rt->atomically(tc, [&](Tx& tx) { *obj.open_write(tx) = 20; });
  EXPECT_EQ(*obj.peek(), 20);
}

TEST(InvisibleReads, UpgradeKeepsReadValid) {
  auto rt = make_invisible_runtime();
  ThreadCtx& tc = rt->attach_thread();
  TObject<long> obj(1);
  rt->atomically(tc, [&](Tx& tx) {
    EXPECT_EQ(*obj.open_read(tx), 1);
    *obj.open_write(tx) = 2;  // acquire after reading: must not self-abort
    EXPECT_EQ(*obj.open_read(tx), 2);
  });
  EXPECT_EQ(*obj.peek(), 2);
  EXPECT_EQ(rt->total_metrics().aborts, 0u);
}

TEST(InvisibleReads, StaleReadIsDetectedAtNextOpen) {
  auto rt = make_invisible_runtime("Aggressive", 2);
  TObject<long> x(0);
  TObject<long> y(0);

  std::atomic<bool> reader_read_x{false};
  std::atomic<bool> writer_done{false};
  std::atomic<int> reader_attempts{0};

  std::thread reader([&] {
    ThreadCtx& tc = rt->attach_thread();
    const auto pair = rt->atomically(tc, [&](Tx& tx) {
      const int attempt = reader_attempts.fetch_add(1, std::memory_order_acq_rel);
      const long a = *x.open_read(tx);
      if (attempt == 0) {
        reader_read_x.store(true, std::memory_order_release);
        while (!writer_done.load(std::memory_order_acquire)) std::this_thread::yield();
      }
      const long b = *y.open_read(tx);  // validation must kill attempt 0 here
      return std::pair<long, long>(a, b);
    });
    EXPECT_EQ(pair.first, pair.second);  // never a torn (old, new) view
    EXPECT_EQ(pair.first, 7);
  });

  while (!reader_read_x.load(std::memory_order_acquire)) std::this_thread::yield();
  {
    ThreadCtx& tc = rt->attach_thread();
    rt->atomically(tc, [&](Tx& tx) {
      *x.open_write(tx) = 7;
      *y.open_write(tx) = 7;
    });
    rt->detach_thread(tc);
  }
  writer_done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GE(reader_attempts.load(), 2);  // first attempt failed validation
}

TEST(InvisibleReads, ReadersSeeConsistentPairsUnderChurn) {
  auto rt = make_invisible_runtime("Polka", 3, /*preempt=*/25);
  TObject<long> x(0);
  TObject<long> y(0);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> mismatches{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      ThreadCtx& tc = rt->attach_thread();
      while (!stop.load(std::memory_order_acquire)) {
        const auto pair = rt->atomically(tc, [&](Tx& tx) {
          return std::pair<long, long>(*x.open_read(tx), *y.open_read(tx));
        });
        if (pair.first != pair.second) mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  {
    std::thread writer([&] {
      ThreadCtx& tc = rt->attach_thread();
      for (int i = 1; i <= 400; ++i) {
        rt->atomically(tc, [&](Tx& tx) {
          *x.open_write(tx) = i;
          *y.open_write(tx) = i;
        });
      }
      stop.store(true, std::memory_order_release);
    });
    writer.join();
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(InvisibleReads, IntSetMatchesOracle) {
  auto rt = make_invisible_runtime();
  ThreadCtx& tc = rt->attach_thread();
  auto set = structs::make_intset("list");
  structs::SequentialSet oracle;
  Xoshiro256 rng(31);
  for (int i = 0; i < 1500; ++i) {
    const long key = static_cast<long>(rng.below(64));
    if (rng.below(2) == 0) {
      EXPECT_EQ(rt->atomically(tc, [&](Tx& tx) { return set->insert(tx, key); }),
                oracle.insert(key));
    } else {
      EXPECT_EQ(rt->atomically(tc, [&](Tx& tx) { return set->remove(tx, key); }),
                oracle.remove(key));
    }
  }
  EXPECT_EQ(set->quiescent_elements(), oracle.elements());
}

TEST(InvisibleReads, ConcurrentCounterHasNoLostUpdates) {
  constexpr unsigned kThreads = 4;
  constexpr int kIncrements = 300;
  auto rt = make_invisible_runtime("Greedy", kThreads, /*preempt=*/25);
  TObject<long> counter(0);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      ThreadCtx& tc = rt->attach_thread();
      for (int i = 0; i < kIncrements; ++i) {
        rt->atomically(tc, [&](Tx& tx) { *counter.open_write(tx) += 1; });
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(*counter.peek(), static_cast<long>(kThreads) * kIncrements);
}

}  // namespace
}  // namespace wstm::stm
