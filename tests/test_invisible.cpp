// Invisible-read mode tests: DSTM-style read-set validation instead of
// visible reader bitmaps (DSTM2's other read mode; the paper used visible).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "check/checker.hpp"
#include "cm/registry.hpp"
#include "stm/runtime.hpp"
#include "structs/intset.hpp"
#include "structs/sequential_set.hpp"
#include "util/rng.hpp"

namespace wstm::stm {
namespace {

std::unique_ptr<Runtime> make_invisible_runtime(const std::string& cm = "Polka",
                                                unsigned threads = 4,
                                                std::uint32_t preempt = 0,
                                                bool snapshot_ext = true) {
  cm::Params params;
  params.threads = threads;
  RuntimeConfig cfg;
  cfg.visible_reads = false;
  cfg.preempt_yield_permille = preempt;
  cfg.snapshot_ext = snapshot_ext;
  return std::make_unique<Runtime>(cm::make_manager(cm, params), cfg);
}

TEST(InvisibleReads, BasicReadWriteCommit) {
  auto rt = make_invisible_runtime();
  ThreadCtx& tc = rt->attach_thread();
  TObject<long> obj(10);
  const long v = rt->atomically(tc, [&](Tx& tx) { return *obj.open_read(tx); });
  EXPECT_EQ(v, 10);
  rt->atomically(tc, [&](Tx& tx) { *obj.open_write(tx) = 20; });
  EXPECT_EQ(*obj.peek(), 20);
}

TEST(InvisibleReads, UpgradeKeepsReadValid) {
  auto rt = make_invisible_runtime();
  ThreadCtx& tc = rt->attach_thread();
  TObject<long> obj(1);
  rt->atomically(tc, [&](Tx& tx) {
    EXPECT_EQ(*obj.open_read(tx), 1);
    *obj.open_write(tx) = 2;  // acquire after reading: must not self-abort
    EXPECT_EQ(*obj.open_read(tx), 2);
  });
  EXPECT_EQ(*obj.peek(), 2);
  EXPECT_EQ(rt->total_metrics().aborts, 0u);
}

TEST(InvisibleReads, StaleReadIsDetectedAtNextOpen) {
  auto rt = make_invisible_runtime("Aggressive", 2);
  TObject<long> x(0);
  TObject<long> y(0);

  std::atomic<bool> reader_read_x{false};
  std::atomic<bool> writer_done{false};
  std::atomic<int> reader_attempts{0};

  std::thread reader([&] {
    ThreadCtx& tc = rt->attach_thread();
    const auto pair = rt->atomically(tc, [&](Tx& tx) {
      const int attempt = reader_attempts.fetch_add(1, std::memory_order_acq_rel);
      const long a = *x.open_read(tx);
      if (attempt == 0) {
        reader_read_x.store(true, std::memory_order_release);
        while (!writer_done.load(std::memory_order_acquire)) std::this_thread::yield();
      }
      const long b = *y.open_read(tx);  // validation must kill attempt 0 here
      return std::pair<long, long>(a, b);
    });
    EXPECT_EQ(pair.first, pair.second);  // never a torn (old, new) view
    EXPECT_EQ(pair.first, 7);
  });

  while (!reader_read_x.load(std::memory_order_acquire)) std::this_thread::yield();
  {
    ThreadCtx& tc = rt->attach_thread();
    rt->atomically(tc, [&](Tx& tx) {
      *x.open_write(tx) = 7;
      *y.open_write(tx) = 7;
    });
    rt->detach_thread(tc);
  }
  writer_done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GE(reader_attempts.load(), 2);  // first attempt failed validation
}

TEST(InvisibleReads, ReadersSeeConsistentPairsUnderChurn) {
  auto rt = make_invisible_runtime("Polka", 3, /*preempt=*/25);
  TObject<long> x(0);
  TObject<long> y(0);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> mismatches{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      ThreadCtx& tc = rt->attach_thread();
      while (!stop.load(std::memory_order_acquire)) {
        const auto pair = rt->atomically(tc, [&](Tx& tx) {
          return std::pair<long, long>(*x.open_read(tx), *y.open_read(tx));
        });
        if (pair.first != pair.second) mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  {
    std::thread writer([&] {
      ThreadCtx& tc = rt->attach_thread();
      for (int i = 1; i <= 400; ++i) {
        rt->atomically(tc, [&](Tx& tx) {
          *x.open_write(tx) = i;
          *y.open_write(tx) = i;
        });
      }
      stop.store(true, std::memory_order_release);
    });
    writer.join();
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(InvisibleReads, IntSetMatchesOracle) {
  auto rt = make_invisible_runtime();
  ThreadCtx& tc = rt->attach_thread();
  auto set = structs::make_intset("list");
  structs::SequentialSet oracle;
  Xoshiro256 rng(31);
  for (int i = 0; i < 1500; ++i) {
    const long key = static_cast<long>(rng.below(64));
    if (rng.below(2) == 0) {
      EXPECT_EQ(rt->atomically(tc, [&](Tx& tx) { return set->insert(tx, key); }),
                oracle.insert(key));
    } else {
      EXPECT_EQ(rt->atomically(tc, [&](Tx& tx) { return set->remove(tx, key); }),
                oracle.remove(key));
    }
  }
  EXPECT_EQ(set->quiescent_elements(), oracle.elements());
}

TEST(InvisibleReads, ConcurrentCounterHasNoLostUpdates) {
  constexpr unsigned kThreads = 4;
  constexpr int kIncrements = 300;
  auto rt = make_invisible_runtime("Greedy", kThreads, /*preempt=*/25);
  TObject<long> counter(0);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      ThreadCtx& tc = rt->attach_thread();
      for (int i = 0; i < kIncrements; ++i) {
        rt->atomically(tc, [&](Tx& tx) { *counter.open_write(tx) += 1; });
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(*counter.peek(), static_cast<long>(kThreads) * kIncrements);
}

// ---- commit-clock snapshot extension ---------------------------------------

// The O(R^2) pathology fix: a transaction reading N distinct objects must not
// run a full read-set validation on every open. With the fast path the clock
// never moves (no concurrent writer), so every open skips its pass; with it
// off, every open pays one (the original validate-on-every-open behavior).
TEST(InvisibleSnapshot, ValidationCostIsAmortizedO1) {
  constexpr int kReads = 64;
  for (const bool ext : {true, false}) {
    auto rt = make_invisible_runtime("Polka", 1, /*preempt=*/0, ext);
    ThreadCtx& tc = rt->attach_thread();
    std::vector<std::unique_ptr<TObject<long>>> objs;
    for (int i = 0; i < kReads; ++i) objs.push_back(std::make_unique<TObject<long>>(i));
    long sum = 0;
    rt->atomically(tc, [&](Tx& tx) {
      sum = 0;
      for (const auto& o : objs) sum += *o->open_read(tx);
    });
    EXPECT_EQ(sum, kReads * (kReads - 1) / 2);
    const ThreadMetrics m = rt->total_metrics();
    if (ext) {
      // kReads opens + the commit-point check, all skipped: the clock never
      // advanced past the begin snapshot. O(distinct objects) total work.
      EXPECT_EQ(m.validations, 0u);
      EXPECT_EQ(m.validated_reads, 0u);
      EXPECT_EQ(m.validations_skipped, static_cast<std::uint64_t>(kReads) + 1);
    } else {
      // One full pass per open + one at commit; entries validated grow
      // quadratically with the read set: the pathology this PR fixes.
      EXPECT_EQ(m.validations, static_cast<std::uint64_t>(kReads) + 1);
      EXPECT_GE(m.validated_reads,
                static_cast<std::uint64_t>(kReads) * (kReads - 1) / 2);
    }
  }
}

// Re-reading an object must not append a second read-set entry (that would
// make R the read *count*, not the footprint) and must hand back the version
// recorded at first read.
TEST(InvisibleSnapshot, DuplicateReadsAreDeduped) {
  constexpr int kRereads = 16;
  for (const bool ext : {true, false}) {
    auto rt = make_invisible_runtime("Polka", 1, /*preempt=*/0, ext);
    ThreadCtx& tc = rt->attach_thread();
    TObject<long> obj(42);
    rt->atomically(tc, [&](Tx& tx) {
      const long* first = obj.open_read(tx);
      for (int i = 1; i < kRereads; ++i) {
        EXPECT_EQ(obj.open_read(tx), first);  // same committed version object
      }
    });
    const ThreadMetrics m = rt->total_metrics();
    EXPECT_EQ(m.dup_reads, static_cast<std::uint64_t>(kRereads) - 1);
    if (!ext) {
      // Every pass sees exactly one entry, never kRereads of them.
      EXPECT_EQ(m.validated_reads, static_cast<std::uint64_t>(kRereads));
    }
    EXPECT_EQ(m.aborts, 0u);
  }
}

// A remote write-commit advances the clock, so the reader's next open runs
// one full extension pass (not an abort: the read set is still valid) and
// adopts the new snapshot.
TEST(InvisibleSnapshot, RemoteCommitForcesOneExtensionPass) {
  auto rt = make_invisible_runtime("Polka", 2);
  TObject<long> x(3);
  TObject<long> y(0);

  std::atomic<bool> reader_read_x{false};
  std::atomic<bool> writer_done{false};

  std::thread reader([&] {
    ThreadCtx& tc = rt->attach_thread();
    const auto pair = rt->atomically(tc, [&](Tx& tx) {
      const long a = *x.open_read(tx);
      if (!reader_read_x.exchange(true, std::memory_order_acq_rel)) {
        while (!writer_done.load(std::memory_order_acquire)) std::this_thread::yield();
      }
      const long b = *y.open_read(tx);  // clock moved: extension pass here
      return std::pair<long, long>(a, b);
    });
    EXPECT_EQ(pair.first, 3);
    EXPECT_EQ(pair.second, 7);
  });

  while (!reader_read_x.load(std::memory_order_acquire)) std::this_thread::yield();
  {
    ThreadCtx& tc = rt->attach_thread();
    rt->atomically(tc, [&](Tx& tx) { *y.open_write(tx) = 7; });  // x untouched
    rt->detach_thread(tc);
  }
  writer_done.store(true, std::memory_order_release);
  reader.join();

  const ThreadMetrics m = rt->total_metrics();
  EXPECT_EQ(m.aborts, 0u);  // the pass extends; it must not kill the reader
  EXPECT_GE(m.extensions, 1u);
}

// ---- deterministic-checker coverage ----------------------------------------

check::CheckConfig invisible_check_config(const std::string& cm) {
  check::CheckConfig c;
  c.threads = 3;
  c.ops_per_thread = 16;
  c.key_range = 16;
  c.window_n = 6;
  c.cm = cm;
  c.visible_reads = false;
  c.seed = 12345;
  return c;
}

// The fast path must be behavior-neutral: with the same policy seed, ext
// on and ext off take the same scheduling decisions and commit the same
// history, across all six window variants. (A skipped pass would have
// succeeded anyway — invariant I in DESIGN.md §5 — so no branch differs.)
TEST(InvisibleChecker, SnapshotExtensionIsBehaviorNeutral) {
  for (const char* cm :
       {"Online", "Online-Dynamic", "Adaptive", "Adaptive-Dynamic", "Adaptive-Improved",
        "Adaptive-Improved-Dynamic"}) {
    check::CheckConfig on = invisible_check_config(cm);
    on.snapshot_ext = true;
    // Pin the eager clock: neutrality (identical decisions/commits/aborts)
    // only holds when ext changes nothing but skip-vs-validate. The deferred
    // clock adds a commit schedule point and per-open fast accepts, so its
    // histories legitimately differ; it gets its own tests below.
    on.deferred_clock = false;
    check::CheckConfig off = on;
    off.snapshot_ext = false;
    for (const std::uint64_t policy_seed : {1u, 2u, 3u}) {
      const check::RunResult a = check::Checker(on).run_once(policy_seed);
      const check::RunResult b = check::Checker(off).run_once(policy_seed);
      EXPECT_FALSE(a.violation) << cm << ": " << a.diagnosis;
      EXPECT_FALSE(b.violation) << cm << ": " << b.diagnosis;
      EXPECT_EQ(a.schedule.decisions, b.schedule.decisions) << cm;
      EXPECT_EQ(a.metrics.commits, b.metrics.commits) << cm;
      EXPECT_EQ(a.metrics.aborts, b.metrics.aborts) << cm;
      // The runs are identical except that ext replaced full passes with
      // skip-checks; the off run must never validate less.
      EXPECT_GT(a.metrics.validations_skipped, 0u) << cm;
      EXPECT_EQ(b.metrics.validations_skipped, 0u) << cm;
      EXPECT_GE(b.metrics.validated_reads, a.metrics.validated_reads) << cm;
    }
  }
}

// The validate->recheck window in open_read_invisible has a schedule point,
// so the checker can drive a writer's commit exactly between a successful
// validation and the locator recheck. With the recheck seeded out
// (skip-cas-recheck) the ghost opacity oracle must catch the torn snapshot
// within the CI budget, and the pinned schedule must replay to the same
// verdict; the clean protocol must survive the identical budget.
TEST(InvisibleChecker, CommitInValidateRecheckWindowIsCaught) {
  // Aggressive has no wait slices: Polka-style karma waits burn real time
  // while holding the executor token, which makes a clean 40-schedule
  // budget take minutes in invisible mode (same reason CheckerFaults uses
  // it). The seeded bug is manager-independent, so nothing is lost.
  check::CheckConfig c = invisible_check_config("Aggressive");
  c.snapshot_ext = true;
  c.bug = "skip-cas-recheck";
  check::Checker buggy(c);
  const check::ExploreResult er = buggy.explore(40);
  ASSERT_GE(er.violations, 1u);
  EXPECT_NE(er.first_violation.diagnosis.find("opacity"), std::string::npos)
      << er.first_violation.diagnosis;

  check::Checker replayer(er.first_violation.schedule.config);
  const check::RunResult again = replayer.replay(er.first_violation.schedule);
  EXPECT_EQ(again.divergences, 0u);
  EXPECT_TRUE(again.violation);

  c.bug = "none";
  EXPECT_EQ(check::Checker(c).explore(40).violations, 0u);
}

}  // namespace
}  // namespace wstm::stm
