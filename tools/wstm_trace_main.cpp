// wstm-trace: offline inspection of binary traces recorded by the harness
// (--trace out.bin on any bench binary, or RunConfig::trace_path).
//
//   wstm-trace summary <trace.bin>   reconstruction report (Analyzer)
//   wstm-trace check   <trace.bin>   window-invariant replay (ScheduleChecker);
//                                    exit code 1 when violations are found
//   wstm-trace json    <trace.bin> [out.json]   convert to Chrome trace_event
//   wstm-trace frames  <trace.bin>   per-frame occupancy table
//
// Binary traces only: JSON output is for chrome://tracing, not for reading
// back.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "trace/analyzer.hpp"
#include "trace/schedule_checker.hpp"
#include "trace/sink.hpp"

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <summary|check|json|frames> <trace.bin> [out.json]\n"
               "  summary  attempt/abort/wasted-work reconstruction\n"
               "  check    replay window-CM invariants (exit 1 on violation)\n"
               "  json     convert to Chrome trace_event JSON (default stdout)\n"
               "  frames   per-frame HIGH occupancy and bad-event table\n",
               prog);
  return 2;
}

std::vector<wstm::trace::Event> load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return wstm::trace::read_binary(in);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string command = argv[1];
  const std::string path = argv[2];

  try {
    std::vector<wstm::trace::Event> events = load(path);

    if (command == "summary") {
      wstm::trace::Analyzer analyzer(std::move(events));
      std::cout << analyzer.summary();
      return 0;
    }
    if (command == "check") {
      const wstm::trace::CheckResult result = wstm::trace::ScheduleChecker::check(std::move(events));
      std::cout << result.to_string();
      return result.ok() ? 0 : 1;
    }
    if (command == "json") {
      if (argc >= 4) {
        std::ofstream out(argv[3], std::ios::binary);
        if (!out) throw std::runtime_error(std::string("cannot open ") + argv[3]);
        wstm::trace::write_chrome_json(events, out);
        if (!out) throw std::runtime_error(std::string("write failed: ") + argv[3]);
      } else {
        wstm::trace::write_chrome_json(events, std::cout);
      }
      return 0;
    }
    if (command == "frames") {
      wstm::trace::Analyzer analyzer(std::move(events));
      if (analyzer.frames().empty()) {
        std::cout << "no window events in trace\n";
        return 0;
      }
      std::printf("%10s %8s %8s %8s %8s\n", "frame", "high", "threads", "commits", "bad");
      for (const auto& [frame, occ] : analyzer.frames()) {
        std::printf("%10llu %8u %8u %8u %8u\n", static_cast<unsigned long long>(frame),
                    occ.high_entries, occ.distinct_threads, occ.commits, occ.bad_commits);
      }
      std::printf("high/high collision frames: %llu\n",
                  static_cast<unsigned long long>(analyzer.high_high_frames()));
      return 0;
    }
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wstm-trace: %s\n", e.what());
    return 2;
  }
}
