#!/usr/bin/env python3
"""Gate on the alloc-pressure microbench output (BENCH_micro.json).

The pooled hot path must be allocation-free in steady state: the
`BM_AllocPressureWriteTx/1` run (pooling on) reports global-allocator calls
per transaction attempt via the interposed operator new, and anything above
the threshold means a TxDesc/Locator/clone/EBR-chunk slipped back onto the
global allocator.

Usage: check_bench.py BENCH_micro.json [--max-allocs-per-attempt 0.5]
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path")
    parser.add_argument("--max-allocs-per-attempt", type=float, default=0.5)
    args = parser.parse_args()

    try:
        with open(args.json_path, encoding="utf-8") as f:
            report = json.load(f)
    except FileNotFoundError:
        print(
            f"check_bench: {args.json_path}: no such file "
            "(did the benchmark run produce it? check --benchmark_out)",
            file=sys.stderr,
        )
        return 1
    except OSError as e:
        print(f"check_bench: {args.json_path}: cannot read: {e}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as e:
        print(
            f"check_bench: {args.json_path}: not valid JSON ({e}); "
            "a truncated file usually means the benchmark was killed mid-run",
            file=sys.stderr,
        )
        return 1

    if not isinstance(report, dict) or not isinstance(report.get("benchmarks"), list):
        print(
            f"check_bench: {args.json_path}: no 'benchmarks' array; "
            "expected Google Benchmark --benchmark_out_format=json output",
            file=sys.stderr,
        )
        return 1

    pooled = [
        b
        for b in report["benchmarks"]
        if b.get("name", "").startswith("BM_AllocPressureWriteTx/1")
        and b.get("run_type", "iteration") == "iteration"
    ]
    if not pooled:
        print("check_bench: BM_AllocPressureWriteTx/1 missing from report", file=sys.stderr)
        return 1

    failed = False
    for b in pooled:
        name = b.get("name", "<unnamed>")
        allocs = b.get("allocs_per_attempt")
        if not isinstance(allocs, (int, float)):
            print(
                f"check_bench: {name} lacks a numeric allocs_per_attempt counter "
                "(was the bench built with the alloc-interposing micro_stm target?)",
                file=sys.stderr,
            )
            failed = True
            continue
        verdict = "ok" if allocs <= args.max_allocs_per_attempt else "FAIL"
        print(
            f"check_bench: {name}: allocs_per_attempt={allocs:.4f} "
            f"(limit {args.max_allocs_per_attempt}) {verdict}"
        )
        if allocs > args.max_allocs_per_attempt:
            failed = True

    # Informational: show the malloc baseline and the 8-thread numbers.
    for b in report["benchmarks"]:
        name = b.get("name", "")
        if (
            name.startswith("BM_AllocPressureWriteTx/0")
            or name.startswith("BM_IntsetWriteHeavy")
        ) and b.get("run_type", "iteration") == "iteration":
            allocs = b.get("allocs_per_attempt")
            if isinstance(allocs, (int, float)):
                print(f"check_bench: (info) {name}: allocs_per_attempt={allocs:.4f}")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
