#!/usr/bin/env python3
"""Gate on microbench JSON output (Google Benchmark --benchmark_out).

Two modes:

* --mode alloc (default, BENCH_micro.json): the pooled hot path must be
  allocation-free in steady state. `BM_AllocPressureWriteTx/1` (pooling on)
  reports global-allocator calls per transaction attempt via the interposed
  operator new; anything above the threshold means a TxDesc/Locator/clone/
  EBR-chunk slipped back onto the global allocator.

* --mode readval (BENCH_readval.json): the invisible-read snapshot-extension
  fast path must keep validation amortized O(1) per open. The
  `BM_ReadSetScaling/<R>/1` rows (extension on) report read-set entries
  validated per open; anything above the threshold means opens regressed
  toward the O(R) validate-on-every-open pathology.

Usage: check_bench.py BENCH_micro.json [--max-allocs-per-attempt 0.5]
       check_bench.py BENCH_readval.json --mode readval \
           [--max-validations-per-read 1.05]
"""

import argparse
import json
import sys


def load_report(json_path: str):
    try:
        with open(json_path, encoding="utf-8") as f:
            report = json.load(f)
    except FileNotFoundError:
        print(
            f"check_bench: {json_path}: no such file "
            "(did the benchmark run produce it? check --benchmark_out)",
            file=sys.stderr,
        )
        return None
    except OSError as e:
        print(f"check_bench: {json_path}: cannot read: {e}", file=sys.stderr)
        return None
    except json.JSONDecodeError as e:
        print(
            f"check_bench: {json_path}: not valid JSON ({e}); "
            "a truncated file usually means the benchmark was killed mid-run",
            file=sys.stderr,
        )
        return None

    if not isinstance(report, dict) or not isinstance(report.get("benchmarks"), list):
        print(
            f"check_bench: {json_path}: no 'benchmarks' array; "
            "expected Google Benchmark --benchmark_out_format=json output",
            file=sys.stderr,
        )
        return None
    return report


def gate(report, prefix: str, counter: str, limit: float, info_prefixes) -> int:
    """Fail when any `prefix` iteration row's `counter` exceeds `limit`."""
    gated = [
        b
        for b in report["benchmarks"]
        if b.get("name", "").startswith(prefix)
        and b.get("run_type", "iteration") == "iteration"
    ]
    if not gated:
        print(f"check_bench: {prefix} missing from report", file=sys.stderr)
        return 1

    failed = False
    for b in gated:
        name = b.get("name", "<unnamed>")
        value = b.get(counter)
        if not isinstance(value, (int, float)):
            print(
                f"check_bench: {name} lacks a numeric {counter} counter "
                "(was the bench built with the instrumented micro_stm target?)",
                file=sys.stderr,
            )
            failed = True
            continue
        verdict = "ok" if value <= limit else "FAIL"
        print(f"check_bench: {name}: {counter}={value:.4f} (limit {limit}) {verdict}")
        if value > limit:
            failed = True

    # Informational: the ungated baseline rows for context in CI logs.
    for b in report["benchmarks"]:
        name = b.get("name", "")
        if any(name.startswith(p) for p in info_prefixes) and (
            b.get("run_type", "iteration") == "iteration"
        ):
            value = b.get(counter)
            if isinstance(value, (int, float)):
                print(f"check_bench: (info) {name}: {counter}={value:.4f}")

    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path")
    parser.add_argument("--mode", choices=("alloc", "readval"), default="alloc")
    parser.add_argument("--max-allocs-per-attempt", type=float, default=0.5)
    parser.add_argument("--max-validations-per-read", type=float, default=1.05)
    args = parser.parse_args()

    report = load_report(args.json_path)
    if report is None:
        return 1

    if args.mode == "alloc":
        return gate(
            report,
            "BM_AllocPressureWriteTx/1",
            "allocs_per_attempt",
            args.max_allocs_per_attempt,
            ("BM_AllocPressureWriteTx/0", "BM_IntsetWriteHeavy"),
        )
    # readval: only the /1 (extension-on) rows are gated; the /0 rows are the
    # O(R) pathology shown for contrast.
    failed = 0
    for r in (8, 64, 256):
        failed |= gate(
            report,
            f"BM_ReadSetScaling/{r}/1",
            "validations_per_read",
            args.max_validations_per_read,
            (f"BM_ReadSetScaling/{r}/0",),
        )
    return failed


if __name__ == "__main__":
    sys.exit(main())
