#!/usr/bin/env python3
"""Gate on microbench JSON output (Google Benchmark --benchmark_out).

Modes:

* --mode alloc (default, BENCH_micro.json): the pooled hot path must be
  allocation-free in steady state. `BM_AllocPressureWriteTx/1` (pooling on)
  reports global-allocator calls per transaction attempt via the interposed
  operator new; anything above the threshold means a TxDesc/Locator/clone/
  EBR-chunk slipped back onto the global allocator.

* --mode readval (BENCH_readval.json): the invisible-read snapshot-extension
  fast path must keep validation amortized O(1) per open. The
  `BM_ReadSetScaling/<R>/1` rows (extension on) report read-set entries
  validated per open; anything above the threshold means opens regressed
  toward the O(R) validate-on-every-open pathology.

* --mode scaling (BENCH_scaling.json, from bench/fig_scaling_matrix --json):
  the shared commit-clock line must actually go quiet under the deferred
  protocol. Always gated, per row: validation passed and attempt
  conservation (attempts == commits + aborts). The contention-ratio clauses
  — at M=8 the deferred row's clock_bumps stay at or below
  --max-bump-ratio x deferred_stamps (the eager protocol's shared-line
  write count), and at M in {2,4} deferred throughput is at least
  --min-deferred-throughput-ratio x the eager A/B row's — are additionally
  gated only when context.host_cpus >= 16; an oversubscribed host
  serializes the writers and measures the OS scheduler, not the clock.

* --mode backend (BENCH_backend.json, from bench/fig_backend --json): the
  eager-vs-lazy engine sweep. Always gated, per row: validation passed,
  attempt conservation (attempts == commits + aborts), commits > 0, and the
  backend split is sane (every (benchmark, M) cell has BOTH a dstm and an
  orec row; orec rows recorded write-backs, dstm rows recorded none). The
  performance clause — on the low-contention intset ("list") cell at M=8,
  orec sustains at least --min-orec-attempt-ratio x dstm's attempts/s (lazy
  commit-time locking beats eager per-open locator CAS when conflicts are
  rare) — is additionally gated only when context.host_cpus >= 8.

* --mode serve (BENCH_serve.json, from bench/fig_serve_scaling --json): the
  serving front-end must not lose requests. Always gated, per cell:
  validation passed, accepted == enqueued == dequeued, and
  completed + expired + cancelled == dequeued (exact conservation across
  queue, workers, and drain). The conflict-aware-policy clause — at every
  arrival rate, conflict-graph and window-frame each sustain at least
  --min-throughput-ratio x round-robin's completions/s OR keep p99 at most
  --max-p99-ratio x round-robin's — is additionally gated when the
  producing host had at least `threads` CPUs (context.host_cpus); on an
  oversubscribed host the ratios measure the OS scheduler, not the
  admission policy, so they are reported informationally instead.

* --mode arbitration (BENCH_arbitration.json, from bench/fig_arbitration
  --json): the abort-vs-wait arbitration sweep. Always gated, per row:
  validation passed, attempt conservation, commits > 0, and the mode split
  is sane (every (benchmark, M) cell has BOTH an abort and a wait row;
  wait rows on these contended cells recorded parks, abort rows recorded
  none — parking is strictly opt-in). The performance clauses — at every
  M >= 16 cell, wait mode cuts involuntary context switches per commit to
  at most --max-wait-nivcsw-ratio x abort mode's AND cuts CPU time per
  commit to at most --max-wait-cpu-ratio x abort mode's, while sustaining
  at least --min-wait-attempt-ratio x abort mode's attempts/s — are
  additionally gated only when context.host_cpus >= 16; an oversubscribed
  host preempts everything constantly, drowning exactly the
  voluntary-vs-involuntary switch signal the clause measures.

Usage: check_bench.py BENCH_micro.json [--max-allocs-per-attempt 0.5]
       check_bench.py BENCH_readval.json --mode readval \
           [--max-validations-per-read 1.05]
       check_bench.py BENCH_serve.json --mode serve \
           [--min-throughput-ratio 1.2] [--max-p99-ratio 0.7]
       check_bench.py BENCH_scaling.json --mode scaling \
           [--max-bump-ratio 0.2] [--min-deferred-throughput-ratio 0.9]
       check_bench.py BENCH_backend.json --mode backend \
           [--min-orec-attempt-ratio 1.5]
       check_bench.py BENCH_arbitration.json --mode arbitration \
           [--max-wait-nivcsw-ratio 0.9] [--max-wait-cpu-ratio 0.95] \
           [--min-wait-attempt-ratio 0.95]
"""

import argparse
import json
import sys


def load_report(json_path: str):
    try:
        with open(json_path, encoding="utf-8") as f:
            report = json.load(f)
    except FileNotFoundError:
        print(
            f"check_bench: {json_path}: no such file "
            "(did the benchmark run produce it? check --benchmark_out)",
            file=sys.stderr,
        )
        return None
    except OSError as e:
        print(f"check_bench: {json_path}: cannot read: {e}", file=sys.stderr)
        return None
    except json.JSONDecodeError as e:
        print(
            f"check_bench: {json_path}: not valid JSON ({e}); "
            "a truncated file usually means the benchmark was killed mid-run",
            file=sys.stderr,
        )
        return None

    if not isinstance(report, dict) or not isinstance(report.get("benchmarks"), list):
        print(
            f"check_bench: {json_path}: no 'benchmarks' array; "
            "expected Google Benchmark --benchmark_out_format=json output",
            file=sys.stderr,
        )
        return None
    return report


def gate(report, prefix: str, counter: str, limit: float, info_prefixes) -> int:
    """Fail when any `prefix` iteration row's `counter` exceeds `limit`."""
    gated = [
        b
        for b in report["benchmarks"]
        if b.get("name", "").startswith(prefix)
        and b.get("run_type", "iteration") == "iteration"
    ]
    if not gated:
        print(f"check_bench: {prefix} missing from report", file=sys.stderr)
        return 1

    failed = False
    for b in gated:
        name = b.get("name", "<unnamed>")
        value = b.get(counter)
        if not isinstance(value, (int, float)):
            print(
                f"check_bench: {name} lacks a numeric {counter} counter "
                "(was the bench built with the instrumented micro_stm target?)",
                file=sys.stderr,
            )
            failed = True
            continue
        verdict = "ok" if value <= limit else "FAIL"
        print(f"check_bench: {name}: {counter}={value:.4f} (limit {limit}) {verdict}")
        if value > limit:
            failed = True

    # Informational: the ungated baseline rows for context in CI logs.
    for b in report["benchmarks"]:
        name = b.get("name", "")
        if any(name.startswith(p) for p in info_prefixes) and (
            b.get("run_type", "iteration") == "iteration"
        ):
            value = b.get(counter)
            if isinstance(value, (int, float)):
                print(f"check_bench: (info) {name}: {counter}={value:.4f}")

    return 1 if failed else 0


def load_serve_report(json_path: str):
    """BENCH_serve.json is fig_serve_scaling's own format, not Google
    Benchmark's: {"context": {...}, "serve": [cell rows]}."""
    try:
        with open(json_path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: {json_path}: cannot load: {e}", file=sys.stderr)
        return None
    if not isinstance(report, dict) or not isinstance(report.get("serve"), list):
        print(
            f"check_bench: {json_path}: no 'serve' array; expected "
            "fig_serve_scaling --json output",
            file=sys.stderr,
        )
        return None
    return report


def gate_serve(report, min_throughput_ratio: float, max_p99_ratio: float) -> int:
    rows = report["serve"]
    if not rows:
        print("check_bench: serve report has no cells", file=sys.stderr)
        return 1
    context = report.get("context", {})
    failed = False

    # Structural gates: every cell validated and conserved every request.
    for r in rows:
        name = f"{r.get('policy', '?')}@{r.get('arrival_rate', '?')}/s"
        if not r.get("valid", False):
            print(f"check_bench: {name}: workload validation FAILED", file=sys.stderr)
            failed = True
        accepted = r.get("accepted", -1)
        enqueued = r.get("enqueued", -2)
        dequeued = r.get("dequeued", -3)
        accounted = r.get("completed", 0) + r.get("expired", 0) + r.get("cancelled", 0)
        if not (accepted == enqueued == dequeued == accounted):
            print(
                f"check_bench: {name}: request conservation FAILED "
                f"(accepted={accepted} enqueued={enqueued} dequeued={dequeued} "
                f"completed+expired+cancelled={accounted})",
                file=sys.stderr,
            )
            failed = True
        else:
            print(f"check_bench: {name}: conserved {dequeued} requests, valid ok")

    # Conflict-aware clause: per (threads, rate) group, conflict-graph and
    # window-frame vs the round-robin baseline. Enforced per group, only
    # when the producing host had enough CPUs to actually run that group's
    # workers concurrently (rows carry their own thread count now that
    # fig_serve_scaling sweeps M; older reports fall back to the context).
    host_cpus = context.get("host_cpus", 0)
    context_threads = context.get("threads", 0)
    by_group = {}
    for r in rows:
        key = (r.get("threads", context_threads), r.get("arrival_rate"))
        by_group.setdefault(key, {})[r.get("policy")] = r
    any_ungated = False
    for (threads, rate), policies in sorted(
        by_group.items(), key=lambda kv: (kv[0][0] or 0, kv[0][1] or 0)
    ):
        enforce = (
            isinstance(host_cpus, int)
            and isinstance(threads, int)
            and host_cpus >= threads
        )
        any_ungated = any_ungated or not enforce
        base = policies.get("round-robin")
        if base is None or base.get("completed_per_s", 0) <= 0:
            continue
        for name in ("conflict-graph", "window-frame"):
            row = policies.get(name)
            if row is None:
                continue
            thr_ratio = row.get("completed_per_s", 0) / base["completed_per_s"]
            base_p99 = base.get("p99_us", 0)
            p99_ratio = row.get("p99_us", 0) / base_p99 if base_p99 > 0 else float("inf")
            ok = thr_ratio >= min_throughput_ratio or p99_ratio <= max_p99_ratio
            verdict = "ok" if ok else ("FAIL" if enforce else "miss (not gated)")
            print(
                f"check_bench: {name}@M={threads}/{rate}/s vs round-robin: "
                f"throughput x{thr_ratio:.2f} (need >= {min_throughput_ratio}) "
                f"p99 x{p99_ratio:.2f} (need <= {max_p99_ratio}) {verdict}"
            )
            if not ok and enforce:
                failed = True
    if any_ungated:
        print(
            f"check_bench: ratio clause informational for groups with "
            f"threads > host_cpus={host_cpus}"
        )
    return 1 if failed else 0


def load_scaling_report(json_path: str):
    """BENCH_scaling.json is fig_scaling_matrix's own format:
    {"context": {...}, "scaling": [rows]}."""
    try:
        with open(json_path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: {json_path}: cannot load: {e}", file=sys.stderr)
        return None
    if not isinstance(report, dict) or not isinstance(report.get("scaling"), list):
        print(
            f"check_bench: {json_path}: no 'scaling' array; expected "
            "fig_scaling_matrix --json output",
            file=sys.stderr,
        )
        return None
    return report


def gate_scaling(report, max_bump_ratio: float, min_deferred_throughput_ratio: float) -> int:
    rows = report["scaling"]
    if not rows:
        print("check_bench: scaling report has no rows", file=sys.stderr)
        return 1
    context = report.get("context", {})
    host_cpus = context.get("host_cpus", 0)
    failed = False

    # Structural gates, always enforced: every row validated, and attempts
    # conserve exactly into commits + aborts.
    for r in rows:
        name = f"M={r.get('threads', '?')}/{r.get('clock', '?')}"
        if not r.get("valid", False):
            print(f"check_bench: {name}: workload validation FAILED", file=sys.stderr)
            failed = True
        attempts = r.get("attempts", -1)
        accounted = r.get("commits", 0) + r.get("aborts", 0)
        if attempts != accounted:
            print(
                f"check_bench: {name}: attempt conservation FAILED "
                f"(attempts={attempts} commits+aborts={accounted})",
                file=sys.stderr,
            )
            failed = True
        else:
            print(f"check_bench: {name}: conserved {attempts} attempts, valid ok")
        # Deferred rows must actually stamp; eager rows must not.
        stamps = r.get("deferred_stamps", 0)
        if r.get("clock") == "deferred" and r.get("commits", 0) > 0 and stamps == 0:
            print(
                f"check_bench: {name}: deferred row recorded no stamps "
                "(deferred clock not active?)",
                file=sys.stderr,
            )
            failed = True
        if r.get("clock") == "eager" and stamps != 0:
            print(
                f"check_bench: {name}: eager row recorded deferred stamps",
                file=sys.stderr,
            )
            failed = True

    # Contention-ratio clauses: only meaningful with real concurrency.
    enforce = isinstance(host_cpus, int) and host_cpus >= 16
    by_key = {(r.get("threads"), r.get("clock")): r for r in rows}
    deferred8 = by_key.get((8, "deferred"))
    if deferred8 is not None:
        stamps = deferred8.get("deferred_stamps", 0)
        bumps = deferred8.get("clock_bumps", 0)
        ratio = bumps / stamps if stamps > 0 else float("inf")
        ok = ratio <= max_bump_ratio
        verdict = "ok" if ok else ("FAIL" if enforce else "miss (not gated)")
        print(
            f"check_bench: M=8 deferred shared-line writes: "
            f"clock_bumps/deferred_stamps={ratio:.3f} "
            f"(need <= {max_bump_ratio}) {verdict}"
        )
        if not ok and enforce:
            failed = True
    for m in (2, 4):
        d = by_key.get((m, "deferred"))
        e = by_key.get((m, "eager"))
        if d is None or e is None or e.get("throughput_per_s", 0) <= 0:
            continue
        ratio = d.get("throughput_per_s", 0) / e["throughput_per_s"]
        ok = ratio >= min_deferred_throughput_ratio
        verdict = "ok" if ok else ("FAIL" if enforce else "miss (not gated)")
        print(
            f"check_bench: M={m} deferred vs eager throughput: x{ratio:.3f} "
            f"(need >= {min_deferred_throughput_ratio}) {verdict}"
        )
        if not ok and enforce:
            failed = True
    if not enforce:
        print(
            f"check_bench: contention-ratio clauses informational only "
            f"(host_cpus={host_cpus} < 16)"
        )
    return 1 if failed else 0


def load_backend_report(json_path: str):
    """BENCH_backend.json is fig_backend's own format:
    {"context": {...}, "backend": [rows]}."""
    try:
        with open(json_path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: {json_path}: cannot load: {e}", file=sys.stderr)
        return None
    if not isinstance(report, dict) or not isinstance(report.get("backend"), list):
        print(
            f"check_bench: {json_path}: no 'backend' array; expected "
            "fig_backend --json output",
            file=sys.stderr,
        )
        return None
    return report


def gate_backend(report, min_orec_attempt_ratio: float) -> int:
    rows = report["backend"]
    if not rows:
        print("check_bench: backend report has no rows", file=sys.stderr)
        return 1
    context = report.get("context", {})
    host_cpus = context.get("host_cpus", 0)
    failed = False

    # Structural gates, always enforced.
    cells = {}
    for r in rows:
        name = (
            f"{r.get('benchmark', '?')}/M={r.get('threads', '?')}/"
            f"{r.get('backend', '?')}"
        )
        if not r.get("valid", False):
            print(f"check_bench: {name}: workload validation FAILED", file=sys.stderr)
            failed = True
        attempts = r.get("attempts", -1)
        accounted = r.get("commits", 0) + r.get("aborts", 0)
        if attempts != accounted:
            print(
                f"check_bench: {name}: attempt conservation FAILED "
                f"(attempts={attempts} commits+aborts={accounted})",
                file=sys.stderr,
            )
            failed = True
        elif r.get("commits", 0) <= 0:
            print(f"check_bench: {name}: zero commits", file=sys.stderr)
            failed = True
        else:
            print(f"check_bench: {name}: conserved {attempts} attempts, valid ok")
        # The orec counters separate the engines: the lazy engine commits by
        # write-back, the eager engine never touches that path.
        write_backs = r.get("orec_write_backs", 0)
        if r.get("backend") == "orec" and r.get("commits", 0) > 0 and write_backs == 0:
            print(
                f"check_bench: {name}: orec row recorded no write-backs "
                "(lazy engine not active?)",
                file=sys.stderr,
            )
            failed = True
        if r.get("backend") == "dstm" and write_backs != 0:
            print(
                f"check_bench: {name}: dstm row recorded orec write-backs",
                file=sys.stderr,
            )
            failed = True
        cells.setdefault((r.get("benchmark"), r.get("threads")), set()).add(
            r.get("backend")
        )
    for (benchmark, threads), backends in sorted(cells.items()):
        if backends != {"dstm", "orec"}:
            print(
                f"check_bench: {benchmark}/M={threads}: cell is missing a backend "
                f"(have {sorted(backends)})",
                file=sys.stderr,
            )
            failed = True

    # Performance clause: lazy commit-time locking must beat the eager
    # per-open locator CAS on the low-contention intset cell — but only
    # where the committers actually run concurrently.
    enforce = isinstance(host_cpus, int) and host_cpus >= 8
    by_key = {
        (r.get("benchmark"), r.get("threads"), r.get("backend")): r for r in rows
    }
    dstm8 = by_key.get(("list", 8, "dstm"))
    orec8 = by_key.get(("list", 8, "orec"))
    if dstm8 is not None and orec8 is not None and dstm8.get("attempts_per_s", 0) > 0:
        ratio = orec8.get("attempts_per_s", 0) / dstm8["attempts_per_s"]
        ok = ratio >= min_orec_attempt_ratio
        verdict = "ok" if ok else ("FAIL" if enforce else "miss (not gated)")
        print(
            f"check_bench: list M=8 orec vs dstm attempts/s: x{ratio:.3f} "
            f"(need >= {min_orec_attempt_ratio}) {verdict}"
        )
        if not ok and enforce:
            failed = True
    if not enforce:
        print(
            f"check_bench: backend performance clause informational only "
            f"(host_cpus={host_cpus} < 8)"
        )
    return 1 if failed else 0


def load_arbitration_report(json_path: str):
    """BENCH_arbitration.json is fig_arbitration's own format:
    {"context": {...}, "arbitration": [rows]}."""
    try:
        with open(json_path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: {json_path}: cannot load: {e}", file=sys.stderr)
        return None
    if not isinstance(report, dict) or not isinstance(report.get("arbitration"), list):
        print(
            f"check_bench: {json_path}: no 'arbitration' array; expected "
            "fig_arbitration --json output",
            file=sys.stderr,
        )
        return None
    return report


def gate_arbitration(
    report,
    max_wait_nivcsw_ratio: float,
    max_wait_cpu_ratio: float,
    min_wait_attempt_ratio: float,
) -> int:
    rows = report["arbitration"]
    if not rows:
        print("check_bench: arbitration report has no rows", file=sys.stderr)
        return 1
    context = report.get("context", {})
    host_cpus = context.get("host_cpus", 0)
    failed = False

    # Structural gates, always enforced.
    cells = {}
    for r in rows:
        name = (
            f"{r.get('benchmark', '?')}/M={r.get('threads', '?')}/"
            f"{r.get('mode', '?')}"
        )
        if not r.get("valid", False):
            print(f"check_bench: {name}: workload validation FAILED", file=sys.stderr)
            failed = True
        attempts = r.get("attempts", -1)
        accounted = r.get("commits", 0) + r.get("aborts", 0)
        if attempts != accounted:
            print(
                f"check_bench: {name}: attempt conservation FAILED "
                f"(attempts={attempts} commits+aborts={accounted})",
                file=sys.stderr,
            )
            failed = True
        elif r.get("commits", 0) <= 0:
            print(f"check_bench: {name}: zero commits", file=sys.stderr)
            failed = True
        else:
            print(f"check_bench: {name}: conserved {attempts} attempts, valid ok")
        # Parking is strictly opt-in: abort rows must never park; wait rows
        # on these contended cells must actually exercise the ParkingLot
        # (a conflict-heavy run that never parks means the wait verb is
        # not wired through the managers).
        parks = r.get("parks", 0)
        if r.get("mode") == "abort" and (parks != 0 or r.get("unparks", 0) != 0):
            print(
                f"check_bench: {name}: abort row recorded parks/unparks "
                "(parking must be opt-in)",
                file=sys.stderr,
            )
            failed = True
        if r.get("mode") == "wait" and r.get("aborts", 0) > 0 and parks == 0:
            print(
                f"check_bench: {name}: contended wait row never parked "
                "(wait verb not reaching the managers?)",
                file=sys.stderr,
            )
            failed = True
        cells.setdefault((r.get("benchmark"), r.get("threads")), set()).add(
            r.get("mode")
        )
    for (benchmark, threads), modes in sorted(cells.items()):
        if modes != {"abort", "wait"}:
            print(
                f"check_bench: {benchmark}/M={threads}: cell is missing a mode "
                f"(have {sorted(modes)})",
                file=sys.stderr,
            )
            failed = True

    # Performance clauses: parking must cut the costs it exists to cut —
    # involuntary preemptions of spinning losers and the CPU they burn —
    # without giving back offered work. Only meaningful where the M >= 16
    # workers actually run concurrently.
    enforce = isinstance(host_cpus, int) and host_cpus >= 16
    by_key = {(r.get("benchmark"), r.get("threads"), r.get("mode")): r for r in rows}
    compared = False
    for (benchmark, threads), modes in sorted(cells.items()):
        if not isinstance(threads, int) or threads < 16:
            continue
        abort_row = by_key.get((benchmark, threads, "abort"))
        wait_row = by_key.get((benchmark, threads, "wait"))
        if abort_row is None or wait_row is None:
            continue
        compared = True
        label = f"{benchmark}/M={threads} wait vs abort"
        checks = (
            ("nivcsw/commit", "nivcsw_per_commit", max_wait_nivcsw_ratio, "<="),
            ("cpu/commit", "cpu_us_per_commit", max_wait_cpu_ratio, "<="),
            ("attempts/s", "attempts_per_s", min_wait_attempt_ratio, ">="),
        )
        for what, key, limit, op in checks:
            base = abort_row.get(key, 0)
            ratio = wait_row.get(key, 0) / base if base > 0 else float("inf")
            ok = ratio <= limit if op == "<=" else ratio >= limit
            verdict = "ok" if ok else ("FAIL" if enforce else "miss (not gated)")
            print(
                f"check_bench: {label}: {what} x{ratio:.3f} "
                f"(need {op} {limit}) {verdict}"
            )
            if not ok and enforce:
                failed = True
    if not compared:
        print("check_bench: no M >= 16 cell to compare", file=sys.stderr)
        failed = True
    if not enforce:
        print(
            f"check_bench: arbitration performance clauses informational only "
            f"(host_cpus={host_cpus} < 16)"
        )
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path")
    parser.add_argument(
        "--mode",
        choices=("alloc", "readval", "serve", "scaling", "backend", "arbitration"),
        default="alloc",
    )
    parser.add_argument("--max-allocs-per-attempt", type=float, default=0.5)
    parser.add_argument("--max-validations-per-read", type=float, default=1.05)
    parser.add_argument("--min-throughput-ratio", type=float, default=1.2)
    parser.add_argument("--max-p99-ratio", type=float, default=0.7)
    parser.add_argument("--max-bump-ratio", type=float, default=0.2)
    parser.add_argument("--min-deferred-throughput-ratio", type=float, default=0.9)
    parser.add_argument("--min-orec-attempt-ratio", type=float, default=1.5)
    parser.add_argument("--max-wait-nivcsw-ratio", type=float, default=0.9)
    parser.add_argument("--max-wait-cpu-ratio", type=float, default=0.95)
    parser.add_argument("--min-wait-attempt-ratio", type=float, default=0.95)
    args = parser.parse_args()

    if args.mode == "arbitration":
        report = load_arbitration_report(args.json_path)
        if report is None:
            return 1
        return gate_arbitration(
            report,
            args.max_wait_nivcsw_ratio,
            args.max_wait_cpu_ratio,
            args.min_wait_attempt_ratio,
        )

    if args.mode == "backend":
        report = load_backend_report(args.json_path)
        if report is None:
            return 1
        return gate_backend(report, args.min_orec_attempt_ratio)

    if args.mode == "serve":
        report = load_serve_report(args.json_path)
        if report is None:
            return 1
        return gate_serve(report, args.min_throughput_ratio, args.max_p99_ratio)

    if args.mode == "scaling":
        report = load_scaling_report(args.json_path)
        if report is None:
            return 1
        return gate_scaling(
            report, args.max_bump_ratio, args.min_deferred_throughput_ratio
        )

    report = load_report(args.json_path)
    if report is None:
        return 1

    if args.mode == "alloc":
        return gate(
            report,
            "BM_AllocPressureWriteTx/1",
            "allocs_per_attempt",
            args.max_allocs_per_attempt,
            ("BM_AllocPressureWriteTx/0", "BM_IntsetWriteHeavy"),
        )
    # readval: only the /1 (extension-on) rows are gated; the /0 rows are the
    # O(R) pathology shown for contrast.
    failed = 0
    for r in (8, 64, 256):
        failed |= gate(
            report,
            f"BM_ReadSetScaling/{r}/1",
            "validations_per_read",
            args.max_validations_per_read,
            (f"BM_ReadSetScaling/{r}/0",),
        )
    return failed


if __name__ == "__main__":
    sys.exit(main())
