// wstm-serve: load-test CLI for the serving front-end (src/serve/).
//
// Two modes:
//
//   * Fixed rate (default): drive one open-loop run at --rate and print the
//     full serving report — offered/accepted/completed rates, sojourn
//     percentiles, queue accounting, shed/expired/miss counters.
//
//   * --saturate: find the saturation point of a (policy, workload, M)
//     configuration. Doubles the arrival rate from --rate until the system
//     stops sustaining it (completions fall below --sustain-fraction of
//     offered), then binary-searches the bracket and reports the highest
//     sustained rate. This is the per-policy capacity number the
//     fig_serve_scaling sweep brackets from both sides.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "harness/open_loop.hpp"
#include "harness/workload.hpp"
#include "serve/scheduler.hpp"
#include "util/cli.hpp"

namespace {

using namespace wstm;

struct CliConfig {
  std::string cm;
  std::string benchmark;
  harness::RunConfig run;
  harness::ServeConfig serve;
  std::uint32_t update_percent = 100;
  long key_range = 64;
  double zipf_alpha = 1.2;
};

harness::OpenLoopResult run_once(const CliConfig& cfg, double rate) {
  auto workload =
      harness::make_workload(cfg.benchmark, cfg.update_percent, cfg.key_range, cfg.zipf_alpha);
  harness::ServeConfig serve = cfg.serve;
  serve.arrival_rate = rate;
  return harness::run_open_loop(cfg.cm, cm::Params{}, *workload, cfg.run, serve);
}

void print_report(const harness::OpenLoopResult& r, double rate) {
  std::printf("rate %.0f/s: offered %.0f/s accepted %.0f/s completed %.0f/s\n", rate,
              r.offered_per_s, r.accepted_per_s, r.completed_per_s);
  std::printf("  sojourn p50 %.1f us  p95 %.1f us  p99 %.1f us  (%llu sampled ops)\n",
              r.base.p50_us, r.base.p95_us, r.base.p99_us,
              static_cast<unsigned long long>(r.base.latency_count));
  std::printf("  queues: accepted %llu  shed-full %llu  max depth %llu\n",
              static_cast<unsigned long long>(r.server.accepted),
              static_cast<unsigned long long>(r.server.rejected_full),
              static_cast<unsigned long long>(r.server.max_depth));
  std::printf("  expired %llu  deadline misses %llu  cancelled %llu  aborts/commit %.3f%s\n",
              static_cast<unsigned long long>(r.expired),
              static_cast<unsigned long long>(r.deadline_misses),
              static_cast<unsigned long long>(r.cancelled), r.base.summary.aborts_per_commit,
              r.base.valid ? "" : "  VALIDATION FAILED");
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_flag("cm", "contention manager for the serving runtime", std::string("Polka"));
  cli.add_flag("benchmark", "open-loop-capable workload", std::string("skiplist"));
  cli.add_flag("threads", "worker threads", std::int64_t{8});
  cli.add_flag("ms", "production window per run, milliseconds", std::int64_t{300});
  cli.add_flag("rate", "arrival rate, requests/s (the starting rate with --saturate)",
               100'000.0);
  cli.add_flag("policy", "admission policy: round-robin | key-hash | conflict-graph | "
                         "window-frame",
               std::string("round-robin"));
  cli.add_flag("producers", "producer threads", std::int64_t{2});
  cli.add_flag("queues", "submit queues (0 = one per worker)", std::int64_t{0});
  cli.add_flag("queue-capacity", "bounded queue capacity", std::int64_t{1024});
  cli.add_flag("deadline-ms", "per-request relative deadline (0 = none)", std::int64_t{0});
  cli.add_flag("block", "full queue blocks the producer instead of shedding", false);
  cli.add_flag("steal", "idle workers steal from other queues", false);
  cli.add_flag("update-percent", "percent of update transactions", std::int64_t{100});
  cli.add_flag("key-range", "int-set key range", std::int64_t{64});
  cli.add_flag("zipf-alpha", "Zipf skew of the key draw (0 = uniform)", 1.2);
  cli.add_flag("seed", "base RNG seed", std::int64_t{42});
  cli.add_flag("backend", "execution engine: dstm | orec", std::string("dstm"));
  cli.add_flag("arbitration", "conflict arbitration: abort | wait (requester-waits parking)",
               std::string("abort"));
  cli.add_flag("saturate", "search for the highest sustained arrival rate", false);
  cli.add_flag("sustain-fraction",
               "--saturate: a rate is sustained when completions reach this fraction of "
               "offered load",
               0.95);
  cli.add_flag("search-steps", "--saturate: binary-search refinement steps", std::int64_t{4});
  if (!cli.parse(argc, argv)) return 2;

  CliConfig cfg;
  cfg.cm = cli.get_string("cm");
  cfg.benchmark = cli.get_string("benchmark");
  cfg.update_percent = static_cast<std::uint32_t>(cli.get_int("update-percent"));
  cfg.key_range = cli.get_int("key-range");
  cfg.zipf_alpha = cli.get_double("zipf-alpha");
  cfg.run.threads = static_cast<std::uint32_t>(cli.get_int("threads"));
  cfg.run.duration_ms = cli.get_int("ms");
  cfg.run.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  cfg.run.backend = cli.get_string("backend");
  cfg.run.arbitration = cli.get_string("arbitration");
  cfg.serve.policy = cli.get_string("policy");
  cfg.serve.producers = static_cast<unsigned>(cli.get_int("producers"));
  cfg.serve.n_queues = static_cast<unsigned>(cli.get_int("queues"));
  cfg.serve.queue_capacity = static_cast<std::size_t>(cli.get_int("queue-capacity"));
  cfg.serve.deadline_ms = cli.get_int("deadline-ms");
  cfg.serve.backpressure =
      cli.get_bool("block") ? serve::Backpressure::kBlock : serve::Backpressure::kReject;
  cfg.serve.steal = cli.get_bool("steal");

  try {
    if (!cli.get_bool("saturate")) {
      const harness::OpenLoopResult r = run_once(cfg, cli.get_double("rate"));
      print_report(r, cli.get_double("rate"));
      return r.base.valid ? 0 : 1;
    }

    // Saturation search: geometric ramp to bracket, then binary refine.
    const double sustain = cli.get_double("sustain-fraction");
    bool all_valid = true;
    auto sustained = [&](double rate, double* completed) {
      const harness::OpenLoopResult r = run_once(cfg, rate);
      all_valid = all_valid && r.base.valid;
      *completed = r.completed_per_s;
      const bool ok = r.completed_per_s >= sustain * r.offered_per_s;
      std::fprintf(stderr, "[saturate] %.0f/s -> completed %.0f/s %s\n", rate,
                   r.completed_per_s, ok ? "sustained" : "NOT sustained");
      return ok;
    };

    double completed = 0.0;
    double good = 0.0, good_completed = 0.0;
    double rate = cli.get_double("rate");
    for (int i = 0; i < 12; ++i) {  // bracket: at most x4096 the start rate
      if (!sustained(rate, &completed)) break;
      good = rate;
      good_completed = completed;
      rate *= 2;
    }
    if (good == 0.0) {
      std::printf("not sustained even at %.0f/s (completed %.0f/s); lower --rate\n",
                  cli.get_double("rate"), completed);
      return all_valid ? 0 : 1;
    }
    double bad = rate;
    for (std::int64_t i = 0; i < cli.get_int("search-steps"); ++i) {
      const double mid = (good + bad) / 2;
      if (sustained(mid, &completed)) {
        good = mid;
        good_completed = completed;
      } else {
        bad = mid;
      }
    }
    std::printf("%s/%s %s M=%llu: saturation ~%.0f requests/s (completed %.0f/s; "
                "next probe %.0f/s was not sustained)\n",
                cfg.benchmark.c_str(), cfg.cm.c_str(), cfg.serve.policy.c_str(),
                static_cast<unsigned long long>(cfg.run.threads), good, good_completed, bad);
    return all_valid ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wstm-serve: %s\n", e.what());
    return 2;
  }
}
