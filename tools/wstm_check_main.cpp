// wstm-check: deterministic concurrency checking for the STM (src/check/).
//
//   wstm-check explore [flags]            run N random/PCT schedules; exit 1
//                                         and write --out on the first oracle
//                                         violation (0 = all clean)
//   wstm-check replay  <schedule> [flags] re-execute a recorded schedule
//                                         bit-identically; exit 1 if the
//                                         violation reproduces
//   wstm-check shrink  <schedule> [flags] greedily minimize a failing
//                                         schedule, write --out
//
// With --expect-violation the explore exit code flips (0 = a violation was
// found), so CI can assert that a seeded bug IS caught within a budget.
//
// Everything a run needs is in the schedule file, so
// `wstm-check replay fail.sched` works with no further flags.
#include <cstdio>
#include <exception>
#include <iostream>
#include <string>

#include "check/checker.hpp"
#include "check/schedule.hpp"
#include "util/cli.hpp"

namespace {

using wstm::check::CheckConfig;
using wstm::check::Checker;
using wstm::check::RunResult;
using wstm::check::Schedule;

void add_config_flags(wstm::Cli& cli, const CheckConfig& d) {
  cli.add_flag("structure", "data structure: list|rbtree|skiplist|hashtable", d.structure);
  cli.add_flag("cm", "contention manager name (see --cms on bench binaries)", d.cm);
  cli.add_flag("threads", "virtual worker threads", static_cast<std::int64_t>(d.threads));
  cli.add_flag("ops", "operations per thread", static_cast<std::int64_t>(d.ops_per_thread));
  cli.add_flag("key-range", "keys drawn from [0, key-range); max 64",
               static_cast<std::int64_t>(d.key_range));
  cli.add_flag("backend", "execution engine: dstm (eager locator) | orec (lazy TL2-style)",
               d.backend);
  cli.add_flag("arbitration",
               "conflict arbitration: abort (requester-wins/aborts) | wait "
               "(requester parks on the enemy; adds kPark/kUnpark points)",
               d.arbitration);
  cli.add_flag("visible-reads", "visible (true) or invisible (false) read mode",
               d.visible_reads);
  cli.add_flag("snapshot-ext",
               "commit-clock snapshot-extension fast path for invisible reads "
               "(off = validate the read set on every open)",
               d.snapshot_ext);
  cli.add_flag("deferred-clock",
               "defer commit-clock bumps to snapshot-extension time (GV5-style; "
               "only effective with --snapshot-ext and invisible reads)",
               d.deferred_clock);
  cli.add_flag("op-mix", "op mix: default|insert-heavy", d.op_mix);
  cli.add_flag("update-percent", "percent of single-key ops that write",
               static_cast<std::int64_t>(d.update_percent));
  cli.add_flag("pair-percent", "percent of ops that are atomic move/pair-read",
               static_cast<std::int64_t>(d.pair_percent));
  cli.add_flag("seed", "base seed for op streams, RNGs and policy seeds",
               static_cast<std::int64_t>(d.seed));
  cli.add_flag("strategy", "exploration strategy: random|pct", d.strategy);
  cli.add_flag("pct-depth", "PCT bug depth d (d-1 priority change points)",
               static_cast<std::int64_t>(d.pct_depth));
  cli.add_flag("max-steps", "scheduling-step budget per run (0 = auto)",
               static_cast<std::int64_t>(d.max_steps));
  cli.add_flag("window-n", "window length N for window managers",
               static_cast<std::int64_t>(d.window_n));
  cli.add_flag("p-abort", "spurious-abort injection probability", d.faults.p_abort);
  cli.add_flag("p-fail-cas", "forced locator-CAS failure probability", d.faults.p_fail_cas);
  cli.add_flag("p-stall", "stalled-commit injection probability", d.faults.p_stall);
  cli.add_flag("p-stall-any", "stall injection probability at ANY protocol point",
               d.faults.p_stall_any);
  cli.add_flag("stall-steps", "scheduling steps a stalled commit waits",
               static_cast<std::int64_t>(d.faults.stall_steps));
  cli.add_flag("liveness",
               "arm the escalation ladder + serial-fallback token (checker-tuned "
               "thresholds, no sleeps, no watchdog thread)",
               d.liveness);
  cli.add_flag("bug",
               "seeded protocol bug: none|blind-commit|skip-reader-abort|"
               "skip-cas-recheck|stamp-no-pending|skip-read-validation (orec)|"
               "park-lost-wakeup (arbitration=wait)",
               d.bug);
}

CheckConfig config_from_cli(const wstm::Cli& cli) {
  CheckConfig c;
  c.structure = cli.get_string("structure");
  c.cm = cli.get_string("cm");
  c.threads = static_cast<unsigned>(cli.get_int("threads"));
  c.ops_per_thread = static_cast<unsigned>(cli.get_int("ops"));
  c.key_range = cli.get_int("key-range");
  c.backend = cli.get_string("backend");
  c.arbitration = cli.get_string("arbitration");
  c.visible_reads = cli.get_bool("visible-reads");
  c.snapshot_ext = cli.get_bool("snapshot-ext");
  c.deferred_clock = cli.get_bool("deferred-clock");
  c.op_mix = cli.get_string("op-mix");
  c.update_percent = static_cast<std::uint32_t>(cli.get_int("update-percent"));
  c.pair_percent = static_cast<std::uint32_t>(cli.get_int("pair-percent"));
  c.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  c.strategy = cli.get_string("strategy");
  c.pct_depth = static_cast<std::uint32_t>(cli.get_int("pct-depth"));
  c.max_steps = static_cast<std::uint64_t>(cli.get_int("max-steps"));
  c.window_n = static_cast<std::uint32_t>(cli.get_int("window-n"));
  c.faults.p_abort = cli.get_double("p-abort");
  c.faults.p_fail_cas = cli.get_double("p-fail-cas");
  c.faults.p_stall = cli.get_double("p-stall");
  c.faults.p_stall_any = cli.get_double("p-stall-any");
  c.faults.stall_steps = static_cast<std::uint32_t>(cli.get_int("stall-steps"));
  c.liveness = cli.get_bool("liveness");
  c.bug = cli.get_string("bug");
  return c;
}

void print_run(const RunResult& r) {
  std::printf("steps=%llu decisions=%zu switches=%zu faults=%zu commits=%llu aborts=%llu "
              "injected=%llu%s\n",
              static_cast<unsigned long long>(r.steps), r.schedule.decisions.size(),
              r.schedule.context_switches(), r.schedule.injected_faults(),
              static_cast<unsigned long long>(r.metrics.commits),
              static_cast<unsigned long long>(r.metrics.aborts),
              static_cast<unsigned long long>(r.metrics.injected_aborts),
              r.over_budget ? " OVER-BUDGET" : "");
  if (r.schedule.config.liveness) {
    std::printf("serial-token: acquisitions=%llu max_holders=%llu overlaps=%llu\n",
                static_cast<unsigned long long>(r.token_acquisitions),
                static_cast<unsigned long long>(r.max_token_holders),
                static_cast<unsigned long long>(r.token_overlap_violations));
  }
}

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <explore|replay|shrink> [schedule-file] [--flags]\n"
               "  explore            run --schedules seeds, stop at the first violation\n"
               "  replay <file>      re-execute a recorded schedule bit-identically\n"
               "  shrink <file>      greedily minimize a failing schedule\n"
               "run '%s explore --help' for the full flag list\n",
               prog, prog);
  return 2;
}

int cmd_explore(int argc, const char* const* argv) {
  wstm::Cli cli;
  add_config_flags(cli, CheckConfig{});
  cli.add_flag("schedules", "number of schedules to explore", std::int64_t{200});
  cli.add_flag("keep-going", "do not stop at the first violation", false);
  cli.add_flag("expect-violation", "invert the exit code: fail when NO violation is found",
               false);
  cli.add_flag("out", "where to write the first failing schedule", std::string("fail.sched"));
  if (!cli.parse(argc, argv)) return 2;

  Checker checker(config_from_cli(cli));
  const auto n = static_cast<unsigned>(cli.get_int("schedules"));
  const bool expect = cli.get_bool("expect-violation");
  const wstm::check::ExploreResult er = checker.explore(n, !cli.get_bool("keep-going"));

  std::printf("explored %u/%u schedules (%s, seed %llu): %u violation(s)\n", er.schedules_run, n,
              checker.config().strategy.c_str(),
              static_cast<unsigned long long>(checker.config().seed), er.violations);
  if (er.violations > 0) {
    const RunResult& r = er.first_violation;
    print_run(r);
    std::printf("%s\n", r.diagnosis.c_str());
    const std::string out = cli.get_string("out");
    if (wstm::check::save_schedule(out, r.schedule)) {
      std::printf("failing schedule written to %s\n", out.c_str());
    } else {
      std::fprintf(stderr, "wstm-check: cannot write %s\n", out.c_str());
    }
  }
  if (expect) return er.violations > 0 ? 0 : 1;
  return er.violations > 0 ? 1 : 0;
}

int cmd_replay(const std::string& path, int argc, const char* const* argv) {
  wstm::Cli cli;
  cli.add_flag("quiet", "print only the verdict", false);
  if (!cli.parse(argc, argv)) return 2;

  const Schedule schedule = wstm::check::load_schedule(path);
  Checker checker(schedule.config);
  const RunResult r = checker.replay(schedule);
  if (!cli.get_bool("quiet")) print_run(r);
  if (r.divergences > 0) {
    std::printf("replay diverged from the log (%llu divergence(s))\n",
                static_cast<unsigned long long>(r.divergences));
  }
  if (r.violation) {
    std::printf("violation reproduced:\n%s\n", r.diagnosis.c_str());
    return 1;
  }
  std::printf("no violation\n");
  return 0;
}

int cmd_shrink(const std::string& path, int argc, const char* const* argv) {
  wstm::Cli cli;
  cli.add_flag("out", "where to write the minimized schedule", std::string());
  cli.add_flag("max-replays", "replay budget for shrinking", std::int64_t{500});
  if (!cli.parse(argc, argv)) return 2;

  const Schedule schedule = wstm::check::load_schedule(path);
  Checker checker(schedule.config);
  const Checker::ShrinkResult sr =
      checker.shrink(schedule, static_cast<unsigned>(cli.get_int("max-replays")));
  if (!sr.still_fails) {
    std::fprintf(stderr, "wstm-check: %s does not reproduce a violation; nothing to shrink\n",
                 path.c_str());
    return 1;
  }
  std::printf("shrunk %zu -> %zu decisions (%zu switches, %zu faults) in %u replays\n",
              schedule.decisions.size(), sr.schedule.decisions.size(),
              sr.schedule.context_switches(), sr.schedule.injected_faults(), sr.replays);
  std::string out = cli.get_string("out");
  if (out.empty()) out = path + ".min";
  if (!wstm::check::save_schedule(out, sr.schedule)) {
    std::fprintf(stderr, "wstm-check: cannot write %s\n", out.c_str());
    return 2;
  }
  std::printf("minimized schedule written to %s\n", out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];
  try {
    if (command == "explore") return cmd_explore(argc - 1, argv + 1);
    if (command == "replay" || command == "shrink") {
      if (argc < 3 || argv[2][0] == '-') {
        std::fprintf(stderr, "wstm-check: %s needs a schedule file\n", command.c_str());
        return 2;
      }
      // argv[2] is the schedule file; pass the rest through the flag parser.
      const std::string path = argv[2];
      argv[2] = argv[1];
      if (command == "replay") return cmd_replay(path, argc - 2, argv + 2);
      return cmd_shrink(path, argc - 2, argv + 2);
    }
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wstm-check: %s\n", e.what());
    return 2;
  }
}
