// wstm-chaos: chaos-mode progress assertion runner.
//
// Runs real multithreaded workloads with live fault injection (thread
// stalls, spurious aborts, delayed commits, EBR pressure) AND the liveness
// layer armed, then asserts progress floors per cell:
//
//   * the workload still validates (no lost ops, structure invariants hold);
//   * no worker thread died on an exception (incl. TxTimeoutError);
//   * commits were made (no silent hang);
//   * the irrevocable serial-fallback token never had two holders;
//   * serial fallbacks stay a small fraction of commits (the ladder is a
//     safety valve, not the steady state).
//
// --serve switches to the open-loop serving front-end (src/serve/) under
// the same injection, now including stall-at-dequeue faults, and asserts
// the serving progress floors instead: every accepted request is resolved
// (completed, shed at its deadline, or cancelled — nothing starves in a
// queue), completions happen, and completed-but-late requests stay below
// --max-miss-fraction. A request sitting past its deadline is *shed and
// counted*, never silently stuck — that accounting identity is the gate.
//
// Exit 0 when every cell holds its floors, 1 with a readable report
// otherwise. CI runs this over all six window CM variants.
#include <cstdio>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "harness/open_loop.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "resilience/chaos.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace wstm;

struct CellVerdict {
  std::string label;
  bool ok = true;
  std::vector<std::string> failures;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_flag("benchmarks", "comma-separated: list,rbtree,skiplist,vacation",
               std::string("list,vacation"));
  cli.add_flag("cms", "comma-separated contention manager names",
               std::string("Online,Online-Dynamic,Adaptive,Adaptive-Dynamic,"
                           "Adaptive-Improved,Adaptive-Improved-Dynamic"));
  cli.add_flag("threads", "worker threads per cell", std::int64_t{4});
  cli.add_flag("ms", "measured milliseconds per cell", std::int64_t{250});
  cli.add_flag("seed", "base RNG seed", std::int64_t{42});
  cli.add_flag("backend", "execution engine: dstm | orec", std::string("dstm"));
  cli.add_flag("arbitration", "conflict arbitration: abort | wait (requester-waits parking)",
               std::string("abort"));
  cli.add_flag("intensity", "chaos fault-probability scale factor", 1.0);
  cli.add_flag("deadline-ms", "hard per-transaction deadline (0 = none)",
               std::int64_t{10'000});
  cli.add_flag("max-serial-fraction",
               "floor: serial fallbacks must stay below this fraction of commits", 0.05);
  cli.add_flag("key-range", "int-set key range", std::int64_t{64});
  cli.add_flag("update-percent", "percent of update transactions", std::int64_t{100});
  cli.add_flag("serve", "open-loop serving front-end cells instead of the closed loop", false);
  cli.add_flag("arrival-rate", "total offered load with --serve, requests/second", 50'000.0);
  cli.add_flag("policy", "admission policy with --serve", std::string("conflict-graph"));
  cli.add_flag("producers", "producer threads with --serve", std::int64_t{1});
  cli.add_flag("serve-deadline-ms", "per-request deadline with --serve (0 = none)",
               std::int64_t{100});
  cli.add_flag("max-miss-fraction",
               "floor with --serve: completed-past-deadline fraction of completions", 0.05);
  cli.add_flag("csv", "emit CSV instead of an aligned table", false);
  if (!cli.parse(argc, argv)) return 2;

  harness::RunConfig run;
  run.threads = static_cast<std::uint32_t>(cli.get_int("threads"));
  run.duration_ms = cli.get_int("ms");
  run.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  run.backend = cli.get_string("backend");
  run.arbitration = cli.get_string("arbitration");
  run.liveness.enabled = true;
  run.liveness.deadline_ns = cli.get_int("deadline-ms") * 1'000'000;
  run.chaos = resilience::default_chaos(cli.get_double("intensity"));

  const auto benchmarks = cli.get_string_list("benchmarks");
  const auto cms = cli.get_string_list("cms");
  const double max_serial_fraction = cli.get_double("max-serial-fraction");
  const auto update_percent = static_cast<std::uint32_t>(cli.get_int("update-percent"));
  const long key_range = cli.get_int("key-range");

  cm::Params params;
  params.threads = run.threads;

  const bool serve_mode = cli.get_bool("serve");
  const double max_miss_fraction = cli.get_double("max-miss-fraction");
  std::vector<CellVerdict> verdicts;
  Table table(serve_mode ? std::vector<std::string>{"cell", "offered", "completed", "expired",
                                                    "cancel", "timeout", "misses", "chaos",
                                                    "verdict"}
                         : std::vector<std::string>{"cell", "commits", "aborts", "chaos",
                                                    "escal", "serial", "flags", "verdict"});

  for (const std::string& benchmark : benchmarks) {
    for (const std::string& cm_name : cms) {
      if (serve_mode) {
        CellVerdict v;
        v.label = benchmark + "/" + cm_name + "/" + cli.get_string("policy");
        std::fprintf(stderr, "[chaos-serve] %s ...\n", v.label.c_str());
        harness::OpenLoopResult r;
        try {
          auto workload = harness::make_workload(benchmark, update_percent, key_range);
          harness::ServeConfig serve_cfg;
          serve_cfg.arrival_rate = cli.get_double("arrival-rate");
          serve_cfg.producers = static_cast<unsigned>(cli.get_int("producers"));
          serve_cfg.policy = cli.get_string("policy");
          serve_cfg.deadline_ms = cli.get_int("serve-deadline-ms");
          r = harness::run_open_loop(cm_name, params, *workload, run, serve_cfg);
        } catch (const std::exception& e) {
          v.ok = false;
          v.failures.push_back(std::string("run threw: ") + e.what());
          verdicts.push_back(std::move(v));
          table.add_row({verdicts.back().label, "-", "-", "-", "-", "-", "-", "-", "FAIL"});
          continue;
        }

        const stm::ThreadMetrics& t = r.base.totals;
        if (!r.base.valid) v.failures.push_back("validation failed: " + r.base.why);
        if (t.serve_completed == 0) v.failures.push_back("no completions (silent hang)");
        // The starvation gate: every dequeued request must be resolved —
        // committed, shed at its deadline, cancelled by shutdown, or timed
        // out by the liveness ladder. A gap means a request vanished into a
        // queue past its deadline with nothing to show for it.
        const std::uint64_t resolved =
            t.serve_completed + t.serve_expired + t.serve_cancelled + t.timeouts;
        if (resolved != t.serve_dequeued) {
          v.failures.push_back("request starvation: dequeued " +
                               std::to_string(t.serve_dequeued) + " but resolved only " +
                               std::to_string(resolved));
        }
        if (r.server.accepted != r.server.enqueued || r.server.enqueued != r.server.dequeued) {
          v.failures.push_back(
              "queue accounting broken: accepted=" + std::to_string(r.server.accepted) +
              " enqueued=" + std::to_string(r.server.enqueued) +
              " dequeued=" + std::to_string(r.server.dequeued));
        }
        if (t.serve_completed > 0) {
          const double miss_frac = static_cast<double>(t.serve_deadline_misses) /
                                   static_cast<double>(t.serve_completed);
          if (miss_frac > max_miss_fraction) {
            v.failures.push_back("deadline-miss fraction " + std::to_string(miss_frac) +
                                 " exceeds floor " + std::to_string(max_miss_fraction));
          }
        }
        v.ok = v.failures.empty();

        table.add_row({v.label, std::to_string(r.offered), std::to_string(t.serve_completed),
                       std::to_string(t.serve_expired), std::to_string(t.serve_cancelled),
                       std::to_string(t.timeouts), std::to_string(t.serve_deadline_misses),
                       std::to_string(t.chaos_faults), v.ok ? "ok" : "FAIL"});
        verdicts.push_back(std::move(v));
        continue;
      }

      CellVerdict v;
      v.label = benchmark + "/" + cm_name;
      std::fprintf(stderr, "[chaos] %s ...\n", v.label.c_str());
      harness::RunResult r;
      try {
        auto workload = harness::make_workload(benchmark, update_percent, key_range);
        r = harness::run_workload(cm_name, params, *workload, run);
      } catch (const std::exception& e) {
        v.ok = false;
        v.failures.push_back(std::string("run threw: ") + e.what());
        verdicts.push_back(std::move(v));
        table.add_row({verdicts.back().label, "-", "-", "-", "-", "-", "-", "FAIL"});
        continue;
      }

      if (!r.valid) v.failures.push_back("validation failed: " + r.why);
      for (const std::string& e : r.thread_errors) v.failures.push_back(e);
      if (r.totals.commits == 0) v.failures.push_back("no commits (silent hang)");
      if (r.totals.timeouts > 0) {
        v.failures.push_back("hit the hard deadline " + std::to_string(r.totals.timeouts) +
                             " time(s): the escalation ladder failed to make progress");
      }
      if (r.liveness_stats.max_token_holders > 1 ||
          r.liveness_stats.token_overlap_violations > 0) {
        v.failures.push_back(
            "serial-token invariant broken: max_holders=" +
            std::to_string(r.liveness_stats.max_token_holders) +
            " overlaps=" + std::to_string(r.liveness_stats.token_overlap_violations));
      }
      if (r.totals.commits > 0) {
        const double frac = static_cast<double>(r.totals.serial_fallbacks) /
                            static_cast<double>(r.totals.commits);
        if (frac > max_serial_fraction) {
          v.failures.push_back("serial-fallback fraction " + std::to_string(frac) +
                               " exceeds floor " + std::to_string(max_serial_fraction));
        }
      }
      v.ok = v.failures.empty();

      table.add_row({v.label, std::to_string(r.totals.commits),
                     std::to_string(r.totals.aborts), std::to_string(r.totals.chaos_faults),
                     std::to_string(r.totals.escalations),
                     std::to_string(r.totals.serial_fallbacks),
                     std::to_string(r.totals.watchdog_flags), v.ok ? "ok" : "FAIL"});
      verdicts.push_back(std::move(v));
    }
  }

  std::cout << (cli.get_bool("csv") ? table.to_csv() : table.to_text());

  bool all_ok = true;
  for (const CellVerdict& v : verdicts) {
    if (v.ok) continue;
    all_ok = false;
    std::fprintf(stderr, "FAIL %s\n", v.label.c_str());
    for (const std::string& f : v.failures) std::fprintf(stderr, "  %s\n", f.c_str());
  }
  if (all_ok) {
    std::printf("all %zu chaos cells held their %sprogress floors\n", verdicts.size(),
                serve_mode ? "serving " : "");
    return 0;
  }
  return 1;
}
