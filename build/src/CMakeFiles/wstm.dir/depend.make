# Empty dependencies file for wstm.
# This may be replaced when dependencies are built.
