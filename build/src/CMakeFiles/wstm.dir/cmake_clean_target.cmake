file(REMOVE_RECURSE
  "libwstm.a"
)
