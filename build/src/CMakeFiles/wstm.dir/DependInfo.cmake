
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cm/aggressive.cpp" "src/CMakeFiles/wstm.dir/cm/aggressive.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/cm/aggressive.cpp.o.d"
  "/root/repo/src/cm/ats.cpp" "src/CMakeFiles/wstm.dir/cm/ats.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/cm/ats.cpp.o.d"
  "/root/repo/src/cm/eruption.cpp" "src/CMakeFiles/wstm.dir/cm/eruption.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/cm/eruption.cpp.o.d"
  "/root/repo/src/cm/greedy.cpp" "src/CMakeFiles/wstm.dir/cm/greedy.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/cm/greedy.cpp.o.d"
  "/root/repo/src/cm/karma.cpp" "src/CMakeFiles/wstm.dir/cm/karma.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/cm/karma.cpp.o.d"
  "/root/repo/src/cm/kindergarten.cpp" "src/CMakeFiles/wstm.dir/cm/kindergarten.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/cm/kindergarten.cpp.o.d"
  "/root/repo/src/cm/manager.cpp" "src/CMakeFiles/wstm.dir/cm/manager.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/cm/manager.cpp.o.d"
  "/root/repo/src/cm/polite.cpp" "src/CMakeFiles/wstm.dir/cm/polite.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/cm/polite.cpp.o.d"
  "/root/repo/src/cm/polka.cpp" "src/CMakeFiles/wstm.dir/cm/polka.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/cm/polka.cpp.o.d"
  "/root/repo/src/cm/priority.cpp" "src/CMakeFiles/wstm.dir/cm/priority.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/cm/priority.cpp.o.d"
  "/root/repo/src/cm/randomized_rounds.cpp" "src/CMakeFiles/wstm.dir/cm/randomized_rounds.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/cm/randomized_rounds.cpp.o.d"
  "/root/repo/src/cm/registry.cpp" "src/CMakeFiles/wstm.dir/cm/registry.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/cm/registry.cpp.o.d"
  "/root/repo/src/cm/steal_on_abort.cpp" "src/CMakeFiles/wstm.dir/cm/steal_on_abort.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/cm/steal_on_abort.cpp.o.d"
  "/root/repo/src/cm/timestamp.cpp" "src/CMakeFiles/wstm.dir/cm/timestamp.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/cm/timestamp.cpp.o.d"
  "/root/repo/src/ebr/ebr.cpp" "src/CMakeFiles/wstm.dir/ebr/ebr.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/ebr/ebr.cpp.o.d"
  "/root/repo/src/harness/kmeans.cpp" "src/CMakeFiles/wstm.dir/harness/kmeans.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/harness/kmeans.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/CMakeFiles/wstm.dir/harness/report.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/harness/report.cpp.o.d"
  "/root/repo/src/harness/runner.cpp" "src/CMakeFiles/wstm.dir/harness/runner.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/harness/runner.cpp.o.d"
  "/root/repo/src/harness/workload.cpp" "src/CMakeFiles/wstm.dir/harness/workload.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/harness/workload.cpp.o.d"
  "/root/repo/src/sim/conflict_graph.cpp" "src/CMakeFiles/wstm.dir/sim/conflict_graph.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/sim/conflict_graph.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/wstm.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/model.cpp" "src/CMakeFiles/wstm.dir/sim/model.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/sim/model.cpp.o.d"
  "/root/repo/src/sim/offline_scheduler.cpp" "src/CMakeFiles/wstm.dir/sim/offline_scheduler.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/sim/offline_scheduler.cpp.o.d"
  "/root/repo/src/stm/metrics.cpp" "src/CMakeFiles/wstm.dir/stm/metrics.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/stm/metrics.cpp.o.d"
  "/root/repo/src/stm/runtime.cpp" "src/CMakeFiles/wstm.dir/stm/runtime.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/stm/runtime.cpp.o.d"
  "/root/repo/src/stm/tx.cpp" "src/CMakeFiles/wstm.dir/stm/tx.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/stm/tx.cpp.o.d"
  "/root/repo/src/structs/hashtable.cpp" "src/CMakeFiles/wstm.dir/structs/hashtable.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/structs/hashtable.cpp.o.d"
  "/root/repo/src/structs/intset_list.cpp" "src/CMakeFiles/wstm.dir/structs/intset_list.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/structs/intset_list.cpp.o.d"
  "/root/repo/src/structs/rbtree.cpp" "src/CMakeFiles/wstm.dir/structs/rbtree.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/structs/rbtree.cpp.o.d"
  "/root/repo/src/structs/sequential_set.cpp" "src/CMakeFiles/wstm.dir/structs/sequential_set.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/structs/sequential_set.cpp.o.d"
  "/root/repo/src/structs/skiplist.cpp" "src/CMakeFiles/wstm.dir/structs/skiplist.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/structs/skiplist.cpp.o.d"
  "/root/repo/src/util/affinity.cpp" "src/CMakeFiles/wstm.dir/util/affinity.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/util/affinity.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/wstm.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/wstm.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/wstm.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/util/table.cpp.o.d"
  "/root/repo/src/vacation/client.cpp" "src/CMakeFiles/wstm.dir/vacation/client.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/vacation/client.cpp.o.d"
  "/root/repo/src/vacation/customer.cpp" "src/CMakeFiles/wstm.dir/vacation/customer.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/vacation/customer.cpp.o.d"
  "/root/repo/src/vacation/manager.cpp" "src/CMakeFiles/wstm.dir/vacation/manager.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/vacation/manager.cpp.o.d"
  "/root/repo/src/vacation/reservation.cpp" "src/CMakeFiles/wstm.dir/vacation/reservation.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/vacation/reservation.cpp.o.d"
  "/root/repo/src/window/ci_estimator.cpp" "src/CMakeFiles/wstm.dir/window/ci_estimator.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/window/ci_estimator.cpp.o.d"
  "/root/repo/src/window/controller.cpp" "src/CMakeFiles/wstm.dir/window/controller.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/window/controller.cpp.o.d"
  "/root/repo/src/window/frame_clock.cpp" "src/CMakeFiles/wstm.dir/window/frame_clock.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/window/frame_clock.cpp.o.d"
  "/root/repo/src/window/window_cm.cpp" "src/CMakeFiles/wstm.dir/window/window_cm.cpp.o" "gcc" "src/CMakeFiles/wstm.dir/window/window_cm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
