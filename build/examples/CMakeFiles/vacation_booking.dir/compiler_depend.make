# Empty compiler generated dependencies file for vacation_booking.
# This may be replaced when dependencies are built.
