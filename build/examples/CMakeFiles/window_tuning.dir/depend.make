# Empty dependencies file for window_tuning.
# This may be replaced when dependencies are built.
