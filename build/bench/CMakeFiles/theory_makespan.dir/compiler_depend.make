# Empty compiler generated dependencies file for theory_makespan.
# This may be replaced when dependencies are built.
