file(REMOVE_RECURSE
  "CMakeFiles/theory_makespan.dir/theory_makespan.cpp.o"
  "CMakeFiles/theory_makespan.dir/theory_makespan.cpp.o.d"
  "theory_makespan"
  "theory_makespan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_makespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
