# Empty dependencies file for ablation_reads.
# This may be replaced when dependencies are built.
