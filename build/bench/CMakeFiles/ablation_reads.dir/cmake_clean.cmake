file(REMOVE_RECURSE
  "CMakeFiles/ablation_reads.dir/ablation_reads.cpp.o"
  "CMakeFiles/ablation_reads.dir/ablation_reads.cpp.o.d"
  "ablation_reads"
  "ablation_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
