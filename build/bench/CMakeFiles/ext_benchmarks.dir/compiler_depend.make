# Empty compiler generated dependencies file for ext_benchmarks.
# This may be replaced when dependencies are built.
