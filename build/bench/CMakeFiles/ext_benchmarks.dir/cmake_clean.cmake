file(REMOVE_RECURSE
  "CMakeFiles/ext_benchmarks.dir/ext_benchmarks.cpp.o"
  "CMakeFiles/ext_benchmarks.dir/ext_benchmarks.cpp.o.d"
  "ext_benchmarks"
  "ext_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
