file(REMOVE_RECURSE
  "CMakeFiles/ext_metrics.dir/ext_metrics.cpp.o"
  "CMakeFiles/ext_metrics.dir/ext_metrics.cpp.o.d"
  "ext_metrics"
  "ext_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
