# Empty compiler generated dependencies file for ext_metrics.
# This may be replaced when dependencies are built.
