file(REMOVE_RECURSE
  "CMakeFiles/fig3_vs_classic.dir/fig3_vs_classic.cpp.o"
  "CMakeFiles/fig3_vs_classic.dir/fig3_vs_classic.cpp.o.d"
  "fig3_vs_classic"
  "fig3_vs_classic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_vs_classic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
