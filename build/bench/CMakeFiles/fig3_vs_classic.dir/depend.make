# Empty dependencies file for fig3_vs_classic.
# This may be replaced when dependencies are built.
