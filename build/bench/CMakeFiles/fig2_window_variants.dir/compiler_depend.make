# Empty compiler generated dependencies file for fig2_window_variants.
# This may be replaced when dependencies are built.
