file(REMOVE_RECURSE
  "CMakeFiles/fig2_window_variants.dir/fig2_window_variants.cpp.o"
  "CMakeFiles/fig2_window_variants.dir/fig2_window_variants.cpp.o.d"
  "fig2_window_variants"
  "fig2_window_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_window_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
