file(REMOVE_RECURSE
  "CMakeFiles/fig4_aborts_per_commit.dir/fig4_aborts_per_commit.cpp.o"
  "CMakeFiles/fig4_aborts_per_commit.dir/fig4_aborts_per_commit.cpp.o.d"
  "fig4_aborts_per_commit"
  "fig4_aborts_per_commit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_aborts_per_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
