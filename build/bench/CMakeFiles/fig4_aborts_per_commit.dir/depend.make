# Empty dependencies file for fig4_aborts_per_commit.
# This may be replaced when dependencies are built.
