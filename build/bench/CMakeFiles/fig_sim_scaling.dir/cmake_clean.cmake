file(REMOVE_RECURSE
  "CMakeFiles/fig_sim_scaling.dir/fig_sim_scaling.cpp.o"
  "CMakeFiles/fig_sim_scaling.dir/fig_sim_scaling.cpp.o.d"
  "fig_sim_scaling"
  "fig_sim_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_sim_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
