# Empty dependencies file for fig_sim_scaling.
# This may be replaced when dependencies are built.
