# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_ebr[1]_include.cmake")
include("/root/repo/build/tests/test_stm_basic[1]_include.cmake")
include("/root/repo/build/tests/test_stm_concurrent[1]_include.cmake")
include("/root/repo/build/tests/test_cm[1]_include.cmake")
include("/root/repo/build/tests/test_window[1]_include.cmake")
include("/root/repo/build/tests/test_structs[1]_include.cmake")
include("/root/repo/build/tests/test_vacation[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_kmeans[1]_include.cmake")
include("/root/repo/build/tests/test_extra[1]_include.cmake")
include("/root/repo/build/tests/test_invisible[1]_include.cmake")
