# Empty dependencies file for test_invisible.
# This may be replaced when dependencies are built.
