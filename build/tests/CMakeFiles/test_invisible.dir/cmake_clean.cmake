file(REMOVE_RECURSE
  "CMakeFiles/test_invisible.dir/test_invisible.cpp.o"
  "CMakeFiles/test_invisible.dir/test_invisible.cpp.o.d"
  "test_invisible"
  "test_invisible.pdb"
  "test_invisible[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_invisible.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
