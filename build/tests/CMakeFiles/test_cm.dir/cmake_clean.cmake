file(REMOVE_RECURSE
  "CMakeFiles/test_cm.dir/test_cm.cpp.o"
  "CMakeFiles/test_cm.dir/test_cm.cpp.o.d"
  "test_cm"
  "test_cm.pdb"
  "test_cm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
