file(REMOVE_RECURSE
  "CMakeFiles/test_structs.dir/test_structs.cpp.o"
  "CMakeFiles/test_structs.dir/test_structs.cpp.o.d"
  "test_structs"
  "test_structs.pdb"
  "test_structs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_structs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
