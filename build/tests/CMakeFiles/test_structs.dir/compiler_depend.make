# Empty compiler generated dependencies file for test_structs.
# This may be replaced when dependencies are built.
