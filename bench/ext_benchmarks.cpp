// Extension benchmarks beyond the paper's four: kmeans (from the paper's
// future-work list: wide read sets over all K centroids, one hot write;
// update-percent maps to cluster hotness — 100 -> K=4, 60 -> K=8, else 16)
// and hashtable (point contention without traversal chains, the substrate
// STAMP's genome uses).
#include <iostream>

#include "harness/report.hpp"

int main(int argc, char** argv) {
  using namespace wstm;
  Cli cli;
  harness::register_matrix_flags(
      cli, /*benchmarks=*/"kmeans,hashtable",
      /*cms=*/"Online-Dynamic,Adaptive-Improved-Dynamic,Polka,Greedy,Priority",
      /*threads=*/"1,4,16,32,64", /*ms=*/300, /*runs=*/1);
  if (!cli.parse(argc, argv)) return 1;
  const harness::MatrixSpec spec = harness::matrix_from_cli(cli);
  std::cout << "== Extension benchmarks: kmeans, hashtable ==\n\n";
  bool ok = harness::run_matrix_and_print(spec, harness::Metric::kThroughput, std::cout);
  ok = harness::run_matrix_and_print(spec, harness::Metric::kAbortsPerCommit, std::cout) && ok;
  return ok ? 0 : 2;
}
