// Serving front-end scaling: admission policy × arrival rate, open loop.
//
// Sweeps the four admission policies over a ramp of Poisson arrival rates
// on a Zipfian-skewed hashtable intset and reports, per cell, sustained
// throughput (completions/s) and the sojourn percentiles. Below saturation
// every policy tracks the offered rate; past it, the conflict-aware
// policies (conflict-graph, window-frame) keep hot keys serialized in a
// queue instead of aborting across workers, which shows up as higher
// sustained throughput and a flatter p99 than round-robin's.
//
// --json=BENCH_serve.json writes a machine-readable report gated in CI by
// tools/check_bench.py --mode serve (conflict-aware policies must either
// out-sustain round-robin by the throughput ratio or beat its p99).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "harness/open_loop.hpp"
#include "harness/report.hpp"
#include "harness/workload.hpp"
#include "serve/scheduler.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

struct Row {
  std::string policy;
  long threads = 0;
  double rate = 0.0;
  double offered_per_s = 0.0;
  double completed_per_s = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double aborts_per_commit = 0.0;
  // Conservation counters summed over runs: accepted == enqueued ==
  // dequeued and completed + expired + cancelled == dequeued after a
  // graceful drain — check_bench gates on these identities holding.
  std::uint64_t accepted = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t expired = 0;
  std::uint64_t max_depth = 0;
  bool valid = true;
};

void write_json(const std::string& path, const std::vector<Row>& rows, const std::string& cm,
                const std::string& benchmark, double zipf_alpha) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "fig_serve_scaling: cannot write %s\n", path.c_str());
    return;
  }
  // host_cpus lets the CI gate decide whether the throughput/p99 ratio
  // clauses are meaningful (an oversubscribed host measures the OS
  // scheduler, not the admission policy).
  // threads moved into each row (the sweep is now policy x rate x M), so
  // the gate can compare host_cpus against the row's own worker count.
  out << "{\n  \"context\": {\"cm\": \"" << cm << "\", \"benchmark\": \"" << benchmark
      << "\", \"zipf_alpha\": " << zipf_alpha
      << ", \"host_cpus\": " << std::thread::hardware_concurrency() << "},\n"
      << "  \"serve\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"policy\": \"" << r.policy << "\", \"threads\": " << r.threads
        << ", \"arrival_rate\": " << r.rate
        << ", \"offered_per_s\": " << r.offered_per_s
        << ", \"completed_per_s\": " << r.completed_per_s << ", \"p50_us\": " << r.p50_us
        << ", \"p95_us\": " << r.p95_us << ", \"p99_us\": " << r.p99_us
        << ", \"aborts_per_commit\": " << r.aborts_per_commit
        << ", \"accepted\": " << r.accepted << ", \"enqueued\": " << r.enqueued
        << ", \"dequeued\": " << r.dequeued << ", \"completed\": " << r.completed
        << ", \"cancelled\": " << r.cancelled << ", \"deadline_misses\": " << r.deadline_misses
        << ", \"rejected_full\": " << r.rejected_full << ", \"expired\": " << r.expired
        << ", \"max_depth\": " << r.max_depth << ", \"valid\": " << (r.valid ? "true" : "false")
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "fig_serve_scaling: wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wstm;
  Cli cli;
  cli.add_flag("policies", "admission policies to sweep (comma list)",
               std::string("round-robin,key-hash,conflict-graph,window-frame"));
  cli.add_flag("rates", "arrival rates to sweep, requests/s (comma list)",
               std::string("250000,1000000"));
  cli.add_flag("threads", "worker thread counts M to sweep (comma list)",
               std::string("8"));
  cli.add_flag("ms", "production window per cell, milliseconds", std::int64_t{300});
  cli.add_flag("runs", "repetitions per cell (means reported)", std::int64_t{1});
  cli.add_flag("cm", "contention manager for the serving runtime", std::string("Polka"));
  cli.add_flag("benchmark", "workload (must be open-loop capable)", std::string("skiplist"));
  cli.add_flag("update", "update percentage", std::int64_t{100});
  cli.add_flag("range", "key range", std::int64_t{64});
  cli.add_flag("zipf-alpha", "Zipf skew of the key draw (0 = uniform)", 1.2);
  cli.add_flag("producers", "open-loop producer threads", std::int64_t{2});
  cli.add_flag("queue-capacity", "bounded queue capacity", std::int64_t{1024});
  cli.add_flag("deadline-ms", "per-request relative deadline, 0 = none", std::int64_t{0});
  cli.add_flag("seed", "base RNG seed", std::int64_t{42});
  cli.add_flag("json", "write a machine-readable report here (empty = off)", std::string(""));
  cli.add_flag("csv", "CSV tables instead of aligned text", false);
  if (!cli.parse(argc, argv)) return 1;

  const auto policies = cli.get_string_list("policies");
  const std::string cm_name = cli.get_string("cm");
  const std::string benchmark = cli.get_string("benchmark");
  const std::vector<std::int64_t> thread_counts = cli.get_int_list("threads");
  const double zipf_alpha = cli.get_double("zipf-alpha");
  const unsigned runs = static_cast<unsigned>(cli.get_int("runs"));

  std::vector<double> rates;
  for (const std::string& r : cli.get_string_list("rates")) rates.push_back(std::stod(r));

  std::cout << "== Serving front-end: policy x arrival rate, " << benchmark << " zipf "
            << zipf_alpha << ", " << cm_name << " ==\n\n";

  std::vector<Row> rows;
  bool all_valid = true;
  for (const std::int64_t threads : thread_counts) {
  for (const double rate : rates) {
    std::vector<std::string> header{"policy \\ M=" + std::to_string(threads) + " rate " +
                                    Table::num(rate, 0)};
    header.insert(header.end(), {"completed/s", "p50 us", "p95 us", "p99 us", "aborts/commit",
                                 "shed", "expired", "maxq"});
    Table table(header);

    for (const std::string& policy : policies) {
      std::fprintf(stderr, "[M=%lld rate=%.0f] %s ...\n", static_cast<long long>(threads), rate,
                   policy.c_str());
      RunningStats completed, p50, p95, p99, aborts;
      Row row;
      row.policy = policy;
      row.threads = static_cast<long>(threads);
      row.rate = rate;
      for (unsigned i = 0; i < runs; ++i) {
        auto workload =
            harness::make_workload(benchmark, static_cast<std::uint32_t>(cli.get_int("update")),
                                   cli.get_int("range"), zipf_alpha);
        harness::RunConfig run;
        run.threads = static_cast<std::uint32_t>(threads);
        run.duration_ms = cli.get_int("ms");
        run.seed = static_cast<std::uint64_t>(cli.get_int("seed")) + i * 7919;

        harness::ServeConfig serve_cfg;
        serve_cfg.arrival_rate = rate;
        serve_cfg.producers = static_cast<unsigned>(cli.get_int("producers"));
        serve_cfg.policy = policy;
        serve_cfg.queue_capacity = static_cast<std::size_t>(cli.get_int("queue-capacity"));
        serve_cfg.deadline_ms = cli.get_int("deadline-ms");

        const harness::OpenLoopResult r =
            harness::run_open_loop(cm_name, cm::Params{}, *workload, run, serve_cfg);
        completed.add(r.completed_per_s);
        p50.add(r.base.p50_us);
        p95.add(r.base.p95_us);
        p99.add(r.base.p99_us);
        aborts.add(r.base.summary.aborts_per_commit);
        row.offered_per_s += r.offered_per_s / runs;
        row.accepted += r.server.accepted;
        row.enqueued += r.server.enqueued;
        row.dequeued += r.server.dequeued;
        row.completed += r.base.totals.serve_completed;
        row.cancelled += r.cancelled;
        row.deadline_misses += r.deadline_misses;
        row.rejected_full += r.server.rejected_full;
        row.expired += r.expired;
        row.max_depth = std::max(row.max_depth, r.server.max_depth);
        if (!r.base.valid) {
          row.valid = false;
          all_valid = false;
          std::fprintf(stderr, "VALIDATION FAILED [%s M=%lld @ %.0f/s]: %s\n", policy.c_str(),
                       static_cast<long long>(threads), rate, r.base.why.c_str());
        }
      }
      row.completed_per_s = completed.mean();
      row.p50_us = p50.mean();
      row.p95_us = p95.mean();
      row.p99_us = p99.mean();
      row.aborts_per_commit = aborts.mean();
      rows.push_back(row);

      table.add_row({policy, Table::num(row.completed_per_s, 0), Table::num(row.p50_us, 1),
                     Table::num(row.p95_us, 1), Table::num(row.p99_us, 1),
                     Table::num(row.aborts_per_commit, 3),
                     std::to_string(row.rejected_full), std::to_string(row.expired),
                     std::to_string(row.max_depth)});
    }
    std::cout << (cli.get_bool("csv") ? table.to_csv() : table.to_text()) << "\n";
  }
  }

  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) write_json(json_path, rows, cm_name, benchmark, zipf_alpha);
  return all_valid ? 0 : 2;
}
