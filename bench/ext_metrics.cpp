// Extension: the additional performance measures the paper's conclusion
// defers to future work — wasted work (fraction of execution time spent in
// attempts that aborted) and mean response time of committed transactions
// (first attempt begin -> commit, including retries). The runtime already
// collects both per thread; this bench reports them across the same
// CM x benchmark x threads matrix as Figs. 3/4.
//
// Expected relationship (paper Section IV): aborts/commit, wasted work and
// repeat conflicts are correlated — managers that reduce aborts via the
// window randomization should show proportionally less wasted work and
// smaller response-time tails.
#include <iostream>

#include "harness/report.hpp"

int main(int argc, char** argv) {
  using namespace wstm;
  Cli cli;
  harness::register_matrix_flags(
      cli, /*benchmarks=*/"list,rbtree,skiplist,vacation",
      /*cms=*/"Online-Dynamic,Adaptive-Improved-Dynamic,Polka,Greedy,Priority",
      /*threads=*/"4,16,32,64", /*ms=*/300, /*runs=*/1);
  if (!cli.parse(argc, argv)) return 1;
  const harness::MatrixSpec spec = harness::matrix_from_cli(cli);

  std::cout << "== Extension: wasted-work fraction ==\n\n";
  bool ok = harness::run_matrix_and_print(spec, harness::Metric::kWastedFraction, std::cout);
  std::cout << "== Extension: mean response time (us, committed transactions) ==\n\n";
  ok = harness::run_matrix_and_print(spec, harness::Metric::kResponseUs, std::cout) && ok;
  std::cout << "== Extension: repeat conflicts per commit ==\n\n";
  ok = harness::run_matrix_and_print(spec, harness::Metric::kRepeatConflictsPerCommit,
                                     std::cout) &&
       ok;
  return ok ? 0 : 2;
}
