// Scaling matrix for the process-wide hot-spot work (DESIGN.md §11): one
// closed-loop write-heavy run per M ∈ {2,4,8,16,32,64} under the deferred
// commit clock, plus eager-clock A/B rows at the low thread counts, all on
// invisible reads + snapshot extension so the clock protocol is actually
// exercised. Each row reports throughput and the shared-line contention
// counters (clock_bumps, deferred_stamps, snapshot_interference,
// reader_stripe_retries, ebr_shard_syncs).
//
// --json=BENCH_scaling.json writes a machine-readable report gated in CI by
// tools/check_bench.py --mode scaling: per-row validation + attempt
// conservation always; the deferred-vs-eager ratio clauses (bumps ≤
// stamps/5 at M=8, deferred throughput ≥ 0.9× eager at M ∈ {2,4}) only on
// hosts with enough CPUs to make the contention real.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

struct Row {
  long threads = 0;
  std::string cm;
  std::string clock;  // "deferred" | "eager"
  double throughput_per_s = 0.0;
  std::uint64_t attempts = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t clock_bumps = 0;
  std::uint64_t deferred_stamps = 0;
  std::uint64_t snapshot_interference = 0;
  std::uint64_t reader_stripe_retries = 0;
  std::uint64_t ebr_shard_syncs = 0;
  bool valid = true;
};

void write_json(const std::string& path, const std::vector<Row>& rows,
                const std::string& benchmark, long key_range, long update_percent,
                long ms) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "fig_scaling_matrix: cannot write %s\n", path.c_str());
    return;
  }
  // host_cpus lets the CI gate decide whether the contention-ratio clauses
  // are meaningful: an oversubscribed host serializes the "concurrent"
  // writers, which deflates deferred_stamps batching artificially.
  out << "{\n  \"context\": {\"benchmark\": \"" << benchmark
      << "\", \"key_range\": " << key_range << ", \"update_percent\": " << update_percent
      << ", \"ms\": " << ms
      << ", \"host_cpus\": " << std::thread::hardware_concurrency() << "},\n"
      << "  \"scaling\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"threads\": " << r.threads << ", \"cm\": \"" << r.cm << "\", \"clock\": \""
        << r.clock << "\", \"throughput_per_s\": " << r.throughput_per_s
        << ", \"attempts\": " << r.attempts << ", \"commits\": " << r.commits
        << ", \"aborts\": " << r.aborts << ", \"clock_bumps\": " << r.clock_bumps
        << ", \"deferred_stamps\": " << r.deferred_stamps
        << ", \"snapshot_interference\": " << r.snapshot_interference
        << ", \"reader_stripe_retries\": " << r.reader_stripe_retries
        << ", \"ebr_shard_syncs\": " << r.ebr_shard_syncs
        << ", \"valid\": " << (r.valid ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "fig_scaling_matrix: wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wstm;
  Cli cli;
  cli.add_flag("threads", "M values for the deferred-clock sweep (comma list)",
               std::string("2,4,8,16,32,64"));
  cli.add_flag("ab-threads", "M values that additionally run the eager-clock A/B",
               std::string("2,4,8"));
  cli.add_flag("cm", "contention manager", std::string("Polka"));
  cli.add_flag("benchmark", "workload (BM_IntsetWriteHeavy-class: write-heavy intset)",
               std::string("hashtable"));
  cli.add_flag("key-range", "int-set key range (wide = low conflict)", std::int64_t{1024});
  cli.add_flag("update-percent", "percent of update transactions", std::int64_t{100});
  cli.add_flag("ms", "measured milliseconds per cell", std::int64_t{300});
  cli.add_flag("seed", "base RNG seed", std::int64_t{42});
  cli.add_flag("json", "write a machine-readable report here (empty = off)",
               std::string("BENCH_scaling.json"));
  cli.add_flag("csv", "CSV table instead of aligned text", false);
  if (!cli.parse(argc, argv)) return 1;

  const std::string cm_name = cli.get_string("cm");
  const std::string benchmark = cli.get_string("benchmark");
  const long key_range = cli.get_int("key-range");
  const long update_percent = cli.get_int("update-percent");
  const long ms = cli.get_int("ms");
  const std::vector<std::int64_t> sweep = cli.get_int_list("threads");
  const std::vector<std::int64_t> ab = cli.get_int_list("ab-threads");

  std::cout << "== Scaling matrix: " << benchmark << " range " << key_range << ", "
            << update_percent << "% updates, " << cm_name
            << ", invisible reads + snapshot extension ==\n\n";

  Table table({"M", "clock", "commits/s", "aborts/commit", "clock_bumps", "deferred_stamps",
               "stripe_retries", "ebr_syncs"});
  std::vector<Row> rows;
  bool all_valid = true;

  auto run_cell = [&](std::int64_t m, bool deferred) {
    std::fprintf(stderr, "[M=%lld] %s clock ...\n", static_cast<long long>(m),
                 deferred ? "deferred" : "eager");
    auto workload = harness::make_workload(
        benchmark, static_cast<std::uint32_t>(update_percent), key_range, /*zipf_alpha=*/0.0);
    harness::RunConfig run;
    run.threads = static_cast<std::uint32_t>(m);
    run.duration_ms = ms;
    run.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    run.visible_reads = false;
    run.snapshot_ext = true;
    run.deferred_clock = deferred;
    const harness::RunResult r = harness::run_workload(cm_name, cm::Params{}, *workload, run);

    Row row;
    row.threads = static_cast<long>(m);
    row.cm = cm_name;
    row.clock = deferred ? "deferred" : "eager";
    row.throughput_per_s = r.summary.throughput_per_s;
    row.commits = r.totals.commits;
    row.aborts = r.totals.aborts;
    row.attempts = r.totals.commits + r.totals.aborts;
    row.clock_bumps = r.totals.clock_bumps;
    row.deferred_stamps = r.totals.deferred_stamps;
    row.snapshot_interference = r.totals.snapshot_interference;
    row.reader_stripe_retries = r.totals.reader_stripe_retries;
    row.ebr_shard_syncs = r.totals.ebr_shard_syncs;
    row.valid = r.valid;
    if (!r.valid) {
      all_valid = false;
      std::fprintf(stderr, "VALIDATION FAILED [M=%lld %s]: %s\n", static_cast<long long>(m),
                   row.clock.c_str(), r.why.c_str());
    }
    rows.push_back(row);

    table.add_row({std::to_string(m), row.clock, Table::num(row.throughput_per_s, 0),
                   Table::num(r.summary.aborts_per_commit, 3), std::to_string(row.clock_bumps),
                   std::to_string(row.deferred_stamps),
                   std::to_string(row.reader_stripe_retries),
                   std::to_string(row.ebr_shard_syncs)});
  };

  for (const std::int64_t m : sweep) {
    run_cell(m, /*deferred=*/true);
    for (const std::int64_t a : ab) {
      if (a == m) run_cell(m, /*deferred=*/false);
    }
  }

  std::cout << (cli.get_bool("csv") ? table.to_csv() : table.to_text()) << "\n";

  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    write_json(json_path, rows, benchmark, key_range, update_percent, ms);
  }
  return all_valid ? 0 : 2;
}
