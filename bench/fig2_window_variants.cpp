// Figure 2: throughput of the window-based variants (Online,
// Online-Dynamic, Adaptive, Adaptive-Improved, Adaptive-Improved-Dynamic)
// on List, RBTree, SkipList and Vacation over M = 1..32 threads, N = 50.
//
// Paper settings: --ms=10000 --runs=6 (defaults here are scaled down so the
// whole suite finishes quickly on a small host; the shape is unaffected).
#include <iostream>

#include "harness/report.hpp"

int main(int argc, char** argv) {
  using namespace wstm;
  Cli cli;
  harness::register_matrix_flags(
      cli, /*benchmarks=*/"list,rbtree,skiplist,vacation",
      /*cms=*/"Online,Online-Dynamic,Adaptive,Adaptive-Improved,Adaptive-Improved-Dynamic",
      /*threads=*/"1,2,4,8,16,32,64", /*ms=*/400, /*runs=*/1);
  if (!cli.parse(argc, argv)) return 1;
  const harness::MatrixSpec spec = harness::matrix_from_cli(cli);
  std::cout << "== Fig. 2: window-based variants, throughput ==\n\n";
  const bool ok = harness::run_matrix_and_print(spec, harness::Metric::kThroughput, std::cout);
  return ok ? 0 : 2;
}
