// Ablation: visible vs invisible reads (DSTM2's two read modes — the paper
// ran with visible reads). Visible readers pay a bitmap CAS per object and
// get aborted eagerly by writers; invisible readers pay O(read set) of
// validation per open. Expect invisible to lose ground as read sets grow
// (List traversals) and to be competitive on point reads (hashtable).
#include <iostream>

#include "harness/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wstm;
  Cli cli;
  cli.add_flag("benchmarks", "comma-separated benchmarks",
               std::string("list,rbtree,skiplist,hashtable"));
  cli.add_flag("cms", "comma-separated contention managers",
               std::string("Online-Dynamic,Polka"));
  cli.add_flag("threads", "worker threads M", static_cast<std::int64_t>(8));
  cli.add_flag("ms", "measured milliseconds per run", static_cast<std::int64_t>(300));
  cli.add_flag("runs", "repetitions per point", static_cast<std::int64_t>(1));
  cli.add_flag("key-range", "int-set key range", static_cast<std::int64_t>(256));
  cli.add_flag("seed", "base RNG seed", static_cast<std::int64_t>(42));
  cli.add_flag("csv", "emit CSV", false);
  if (!cli.parse(argc, argv)) return 1;

  harness::RunConfig base;
  base.threads = static_cast<std::uint32_t>(cli.get_int("threads"));
  base.duration_ms = cli.get_int("ms");
  base.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto runs = static_cast<unsigned>(cli.get_int("runs"));
  const long key_range = cli.get_int("key-range");

  std::cout << "== Ablation: visible vs invisible reads (M=" << base.threads << ") ==\n\n";
  bool all_valid = true;
  Table table({"benchmark", "CM", "visible tput", "invisible tput", "visible a/c",
               "invisible a/c"});
  for (const std::string& benchmark : cli.get_string_list("benchmarks")) {
    for (const std::string& cm_name : cli.get_string_list("cms")) {
      harness::RepeatedResult results[2];
      for (int mode = 0; mode < 2; ++mode) {
        harness::RunConfig cfg = base;
        cfg.visible_reads = mode == 0;
        std::fprintf(stderr, "[%s] %s %s ...\n", benchmark.c_str(), cm_name.c_str(),
                     cfg.visible_reads ? "visible" : "invisible");
        results[mode] = harness::run_repeated(
            cm_name, cm::Params{},
            [&] { return harness::make_workload(benchmark, 100, key_range); }, cfg, runs);
        if (!results[mode].valid) {
          all_valid = false;
          std::fprintf(stderr, "VALIDATION FAILED: %s\n", results[mode].why.c_str());
        }
      }
      table.add_row({benchmark, cm_name, Table::num(results[0].mean_throughput, 0),
                     Table::num(results[1].mean_throughput, 0),
                     Table::num(results[0].mean_aborts_per_commit, 3),
                     Table::num(results[1].mean_aborts_per_commit, 3)});
    }
  }
  std::cout << (cli.get_bool("csv") ? table.to_csv() : table.to_text());
  return all_valid ? 0 : 2;
}
